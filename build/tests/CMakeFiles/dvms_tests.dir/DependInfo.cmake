
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/axis_test.cc" "tests/CMakeFiles/dvms_tests.dir/axis_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/axis_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/dvms_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/composition_test.cc" "tests/CMakeFiles/dvms_tests.dir/composition_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/composition_test.cc.o.d"
  "/root/repo/tests/concurrency_test.cc" "tests/CMakeFiles/dvms_tests.dir/concurrency_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/concurrency_test.cc.o.d"
  "/root/repo/tests/crossfilter_program_test.cc" "tests/CMakeFiles/dvms_tests.dir/crossfilter_program_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/crossfilter_program_test.cc.o.d"
  "/root/repo/tests/dvms_test.cc" "tests/CMakeFiles/dvms_tests.dir/dvms_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/dvms_test.cc.o.d"
  "/root/repo/tests/engine_features_test.cc" "tests/CMakeFiles/dvms_tests.dir/engine_features_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/engine_features_test.cc.o.d"
  "/root/repo/tests/eval_test.cc" "tests/CMakeFiles/dvms_tests.dir/eval_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/eval_test.cc.o.d"
  "/root/repo/tests/events_test.cc" "tests/CMakeFiles/dvms_tests.dir/events_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/events_test.cc.o.d"
  "/root/repo/tests/executor_test.cc" "tests/CMakeFiles/dvms_tests.dir/executor_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/executor_test.cc.o.d"
  "/root/repo/tests/ivm_test.cc" "tests/CMakeFiles/dvms_tests.dir/ivm_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/ivm_test.cc.o.d"
  "/root/repo/tests/optimizer_test.cc" "tests/CMakeFiles/dvms_tests.dir/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/optimizer_test.cc.o.d"
  "/root/repo/tests/parser_fuzz_test.cc" "tests/CMakeFiles/dvms_tests.dir/parser_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/parser_fuzz_test.cc.o.d"
  "/root/repo/tests/parser_test.cc" "tests/CMakeFiles/dvms_tests.dir/parser_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/parser_test.cc.o.d"
  "/root/repo/tests/planner_test.cc" "tests/CMakeFiles/dvms_tests.dir/planner_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/planner_test.cc.o.d"
  "/root/repo/tests/precision_test.cc" "tests/CMakeFiles/dvms_tests.dir/precision_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/precision_test.cc.o.d"
  "/root/repo/tests/priority_test.cc" "tests/CMakeFiles/dvms_tests.dir/priority_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/priority_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/dvms_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/provenance_test.cc" "tests/CMakeFiles/dvms_tests.dir/provenance_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/provenance_test.cc.o.d"
  "/root/repo/tests/render_order_test.cc" "tests/CMakeFiles/dvms_tests.dir/render_order_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/render_order_test.cc.o.d"
  "/root/repo/tests/render_test.cc" "tests/CMakeFiles/dvms_tests.dir/render_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/render_test.cc.o.d"
  "/root/repo/tests/script_ast_test.cc" "tests/CMakeFiles/dvms_tests.dir/script_ast_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/script_ast_test.cc.o.d"
  "/root/repo/tests/small_multiples_test.cc" "tests/CMakeFiles/dvms_tests.dir/small_multiples_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/small_multiples_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/dvms_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/streaming_test.cc" "tests/CMakeFiles/dvms_tests.dir/streaming_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/streaming_test.cc.o.d"
  "/root/repo/tests/table_udf_test.cc" "tests/CMakeFiles/dvms_tests.dir/table_udf_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/table_udf_test.cc.o.d"
  "/root/repo/tests/tiles_test.cc" "tests/CMakeFiles/dvms_tests.dir/tiles_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/tiles_test.cc.o.d"
  "/root/repo/tests/trails_test.cc" "tests/CMakeFiles/dvms_tests.dir/trails_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/trails_test.cc.o.d"
  "/root/repo/tests/udf_registry_test.cc" "tests/CMakeFiles/dvms_tests.dir/udf_registry_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/udf_registry_test.cc.o.d"
  "/root/repo/tests/undo_optimizer_test.cc" "tests/CMakeFiles/dvms_tests.dir/undo_optimizer_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/undo_optimizer_test.cc.o.d"
  "/root/repo/tests/view_test.cc" "tests/CMakeFiles/dvms_tests.dir/view_test.cc.o" "gcc" "tests/CMakeFiles/dvms_tests.dir/view_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dvms.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
