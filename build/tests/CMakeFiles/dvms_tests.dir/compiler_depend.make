# Empty compiler generated dependencies file for dvms_tests.
# This may be replaced when dependencies are built.
