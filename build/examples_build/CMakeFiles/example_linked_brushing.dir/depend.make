# Empty dependencies file for example_linked_brushing.
# This may be replaced when dependencies are built.
