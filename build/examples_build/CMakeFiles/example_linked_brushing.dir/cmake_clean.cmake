file(REMOVE_RECURSE
  "../examples/example_linked_brushing"
  "../examples/example_linked_brushing.pdb"
  "CMakeFiles/example_linked_brushing.dir/linked_brushing.cpp.o"
  "CMakeFiles/example_linked_brushing.dir/linked_brushing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_linked_brushing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
