file(REMOVE_RECURSE
  "../examples/example_interaction_taxonomy"
  "../examples/example_interaction_taxonomy.pdb"
  "CMakeFiles/example_interaction_taxonomy.dir/interaction_taxonomy.cpp.o"
  "CMakeFiles/example_interaction_taxonomy.dir/interaction_taxonomy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_interaction_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
