# Empty compiler generated dependencies file for example_interaction_taxonomy.
# This may be replaced when dependencies are built.
