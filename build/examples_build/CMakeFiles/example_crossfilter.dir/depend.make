# Empty dependencies file for example_crossfilter.
# This may be replaced when dependencies are built.
