file(REMOVE_RECURSE
  "../examples/example_crossfilter"
  "../examples/example_crossfilter.pdb"
  "CMakeFiles/example_crossfilter.dir/crossfilter.cpp.o"
  "CMakeFiles/example_crossfilter.dir/crossfilter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_crossfilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
