file(REMOVE_RECURSE
  "../examples/example_precision_interfaces"
  "../examples/example_precision_interfaces.pdb"
  "CMakeFiles/example_precision_interfaces.dir/precision_interfaces.cpp.o"
  "CMakeFiles/example_precision_interfaces.dir/precision_interfaces.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_precision_interfaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
