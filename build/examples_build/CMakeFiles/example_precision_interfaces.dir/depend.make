# Empty dependencies file for example_precision_interfaces.
# This may be replaced when dependencies are built.
