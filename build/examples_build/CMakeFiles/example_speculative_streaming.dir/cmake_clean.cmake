file(REMOVE_RECURSE
  "../examples/example_speculative_streaming"
  "../examples/example_speculative_streaming.pdb"
  "CMakeFiles/example_speculative_streaming.dir/speculative_streaming.cpp.o"
  "CMakeFiles/example_speculative_streaming.dir/speculative_streaming.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_speculative_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
