# Empty dependencies file for example_speculative_streaming.
# This may be replaced when dependencies are built.
