file(REMOVE_RECURSE
  "../bench/bench_fig5_concurrency"
  "../bench/bench_fig5_concurrency.pdb"
  "CMakeFiles/bench_fig5_concurrency.dir/bench_fig5_concurrency.cpp.o"
  "CMakeFiles/bench_fig5_concurrency.dir/bench_fig5_concurrency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
