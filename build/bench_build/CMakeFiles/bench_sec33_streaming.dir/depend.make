# Empty dependencies file for bench_sec33_streaming.
# This may be replaced when dependencies are built.
