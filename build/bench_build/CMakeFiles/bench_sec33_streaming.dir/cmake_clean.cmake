file(REMOVE_RECURSE
  "../bench/bench_sec33_streaming"
  "../bench/bench_sec33_streaming.pdb"
  "CMakeFiles/bench_sec33_streaming.dir/bench_sec33_streaming.cpp.o"
  "CMakeFiles/bench_sec33_streaming.dir/bench_sec33_streaming.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec33_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
