file(REMOVE_RECURSE
  "../bench/bench_table1_events"
  "../bench/bench_table1_events.pdb"
  "CMakeFiles/bench_table1_events.dir/bench_table1_events.cpp.o"
  "CMakeFiles/bench_table1_events.dir/bench_table1_events.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
