file(REMOVE_RECURSE
  "../bench/bench_fig7_interfaces"
  "../bench/bench_fig7_interfaces.pdb"
  "CMakeFiles/bench_fig7_interfaces.dir/bench_fig7_interfaces.cpp.o"
  "CMakeFiles/bench_fig7_interfaces.dir/bench_fig7_interfaces.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_interfaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
