# Empty dependencies file for bench_fig7_interfaces.
# This may be replaced when dependencies are built.
