# Empty dependencies file for bench_fig2_brushing.
# This may be replaced when dependencies are built.
