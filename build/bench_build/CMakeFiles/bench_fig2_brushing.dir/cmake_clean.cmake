file(REMOVE_RECURSE
  "../bench/bench_fig2_brushing"
  "../bench/bench_fig2_brushing.pdb"
  "CMakeFiles/bench_fig2_brushing.dir/bench_fig2_brushing.cpp.o"
  "CMakeFiles/bench_fig2_brushing.dir/bench_fig2_brushing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_brushing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
