file(REMOVE_RECURSE
  "../bench/bench_fig6_transform_graph"
  "../bench/bench_fig6_transform_graph.pdb"
  "CMakeFiles/bench_fig6_transform_graph.dir/bench_fig6_transform_graph.cpp.o"
  "CMakeFiles/bench_fig6_transform_graph.dir/bench_fig6_transform_graph.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_transform_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
