# Empty compiler generated dependencies file for bench_fig6_transform_graph.
# This may be replaced when dependencies are built.
