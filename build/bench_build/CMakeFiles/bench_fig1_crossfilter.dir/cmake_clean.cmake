file(REMOVE_RECURSE
  "../bench/bench_fig1_crossfilter"
  "../bench/bench_fig1_crossfilter.pdb"
  "CMakeFiles/bench_fig1_crossfilter.dir/bench_fig1_crossfilter.cpp.o"
  "CMakeFiles/bench_fig1_crossfilter.dir/bench_fig1_crossfilter.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_crossfilter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
