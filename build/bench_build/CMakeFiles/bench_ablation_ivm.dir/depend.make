# Empty dependencies file for bench_ablation_ivm.
# This may be replaced when dependencies are built.
