file(REMOVE_RECURSE
  "../bench/bench_ablation_ivm"
  "../bench/bench_ablation_ivm.pdb"
  "CMakeFiles/bench_ablation_ivm.dir/bench_ablation_ivm.cpp.o"
  "CMakeFiles/bench_ablation_ivm.dir/bench_ablation_ivm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ivm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
