file(REMOVE_RECURSE
  "../bench/bench_sec31_provenance"
  "../bench/bench_sec31_provenance.pdb"
  "CMakeFiles/bench_sec31_provenance.dir/bench_sec31_provenance.cpp.o"
  "CMakeFiles/bench_sec31_provenance.dir/bench_sec31_provenance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec31_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
