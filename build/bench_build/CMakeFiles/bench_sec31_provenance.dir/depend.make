# Empty dependencies file for bench_sec31_provenance.
# This may be replaced when dependencies are built.
