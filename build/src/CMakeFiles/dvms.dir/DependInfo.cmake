
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/dvms.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/dvms.dir/common/rng.cc.o.d"
  "/root/repo/src/common/schema.cc" "src/CMakeFiles/dvms.dir/common/schema.cc.o" "gcc" "src/CMakeFiles/dvms.dir/common/schema.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/dvms.dir/common/status.cc.o" "gcc" "src/CMakeFiles/dvms.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/dvms.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/dvms.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/dvms.dir/common/value.cc.o" "gcc" "src/CMakeFiles/dvms.dir/common/value.cc.o.d"
  "/root/repo/src/concurrency/policy.cc" "src/CMakeFiles/dvms.dir/concurrency/policy.cc.o" "gcc" "src/CMakeFiles/dvms.dir/concurrency/policy.cc.o.d"
  "/root/repo/src/concurrency/small_multiples.cc" "src/CMakeFiles/dvms.dir/concurrency/small_multiples.cc.o" "gcc" "src/CMakeFiles/dvms.dir/concurrency/small_multiples.cc.o.d"
  "/root/repo/src/concurrency/study.cc" "src/CMakeFiles/dvms.dir/concurrency/study.cc.o" "gcc" "src/CMakeFiles/dvms.dir/concurrency/study.cc.o.d"
  "/root/repo/src/core/dvms.cc" "src/CMakeFiles/dvms.dir/core/dvms.cc.o" "gcc" "src/CMakeFiles/dvms.dir/core/dvms.cc.o.d"
  "/root/repo/src/events/event.cc" "src/CMakeFiles/dvms.dir/events/event.cc.o" "gcc" "src/CMakeFiles/dvms.dir/events/event.cc.o.d"
  "/root/repo/src/events/interaction.cc" "src/CMakeFiles/dvms.dir/events/interaction.cc.o" "gcc" "src/CMakeFiles/dvms.dir/events/interaction.cc.o.d"
  "/root/repo/src/events/nfa.cc" "src/CMakeFiles/dvms.dir/events/nfa.cc.o" "gcc" "src/CMakeFiles/dvms.dir/events/nfa.cc.o.d"
  "/root/repo/src/events/pattern.cc" "src/CMakeFiles/dvms.dir/events/pattern.cc.o" "gcc" "src/CMakeFiles/dvms.dir/events/pattern.cc.o.d"
  "/root/repo/src/events/recognizer.cc" "src/CMakeFiles/dvms.dir/events/recognizer.cc.o" "gcc" "src/CMakeFiles/dvms.dir/events/recognizer.cc.o.d"
  "/root/repo/src/expr/builtin_udfs.cc" "src/CMakeFiles/dvms.dir/expr/builtin_udfs.cc.o" "gcc" "src/CMakeFiles/dvms.dir/expr/builtin_udfs.cc.o.d"
  "/root/repo/src/expr/eval.cc" "src/CMakeFiles/dvms.dir/expr/eval.cc.o" "gcc" "src/CMakeFiles/dvms.dir/expr/eval.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/CMakeFiles/dvms.dir/expr/expr.cc.o" "gcc" "src/CMakeFiles/dvms.dir/expr/expr.cc.o.d"
  "/root/repo/src/expr/udf_registry.cc" "src/CMakeFiles/dvms.dir/expr/udf_registry.cc.o" "gcc" "src/CMakeFiles/dvms.dir/expr/udf_registry.cc.o.d"
  "/root/repo/src/parser/lexer.cc" "src/CMakeFiles/dvms.dir/parser/lexer.cc.o" "gcc" "src/CMakeFiles/dvms.dir/parser/lexer.cc.o.d"
  "/root/repo/src/parser/parser.cc" "src/CMakeFiles/dvms.dir/parser/parser.cc.o" "gcc" "src/CMakeFiles/dvms.dir/parser/parser.cc.o.d"
  "/root/repo/src/parser/planner.cc" "src/CMakeFiles/dvms.dir/parser/planner.cc.o" "gcc" "src/CMakeFiles/dvms.dir/parser/planner.cc.o.d"
  "/root/repo/src/precision/interface_synth.cc" "src/CMakeFiles/dvms.dir/precision/interface_synth.cc.o" "gcc" "src/CMakeFiles/dvms.dir/precision/interface_synth.cc.o.d"
  "/root/repo/src/precision/rules.cc" "src/CMakeFiles/dvms.dir/precision/rules.cc.o" "gcc" "src/CMakeFiles/dvms.dir/precision/rules.cc.o.d"
  "/root/repo/src/precision/script_ast.cc" "src/CMakeFiles/dvms.dir/precision/script_ast.cc.o" "gcc" "src/CMakeFiles/dvms.dir/precision/script_ast.cc.o.d"
  "/root/repo/src/precision/sql_ast.cc" "src/CMakeFiles/dvms.dir/precision/sql_ast.cc.o" "gcc" "src/CMakeFiles/dvms.dir/precision/sql_ast.cc.o.d"
  "/root/repo/src/precision/transform_graph.cc" "src/CMakeFiles/dvms.dir/precision/transform_graph.cc.o" "gcc" "src/CMakeFiles/dvms.dir/precision/transform_graph.cc.o.d"
  "/root/repo/src/provenance/trace.cc" "src/CMakeFiles/dvms.dir/provenance/trace.cc.o" "gcc" "src/CMakeFiles/dvms.dir/provenance/trace.cc.o.d"
  "/root/repo/src/query/binder.cc" "src/CMakeFiles/dvms.dir/query/binder.cc.o" "gcc" "src/CMakeFiles/dvms.dir/query/binder.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/CMakeFiles/dvms.dir/query/executor.cc.o" "gcc" "src/CMakeFiles/dvms.dir/query/executor.cc.o.d"
  "/root/repo/src/query/ivm.cc" "src/CMakeFiles/dvms.dir/query/ivm.cc.o" "gcc" "src/CMakeFiles/dvms.dir/query/ivm.cc.o.d"
  "/root/repo/src/query/maintenance.cc" "src/CMakeFiles/dvms.dir/query/maintenance.cc.o" "gcc" "src/CMakeFiles/dvms.dir/query/maintenance.cc.o.d"
  "/root/repo/src/query/optimizer.cc" "src/CMakeFiles/dvms.dir/query/optimizer.cc.o" "gcc" "src/CMakeFiles/dvms.dir/query/optimizer.cc.o.d"
  "/root/repo/src/query/plan.cc" "src/CMakeFiles/dvms.dir/query/plan.cc.o" "gcc" "src/CMakeFiles/dvms.dir/query/plan.cc.o.d"
  "/root/repo/src/query/view.cc" "src/CMakeFiles/dvms.dir/query/view.cc.o" "gcc" "src/CMakeFiles/dvms.dir/query/view.cc.o.d"
  "/root/repo/src/render/axis.cc" "src/CMakeFiles/dvms.dir/render/axis.cc.o" "gcc" "src/CMakeFiles/dvms.dir/render/axis.cc.o.d"
  "/root/repo/src/render/pixels.cc" "src/CMakeFiles/dvms.dir/render/pixels.cc.o" "gcc" "src/CMakeFiles/dvms.dir/render/pixels.cc.o.d"
  "/root/repo/src/render/rasterizer.cc" "src/CMakeFiles/dvms.dir/render/rasterizer.cc.o" "gcc" "src/CMakeFiles/dvms.dir/render/rasterizer.cc.o.d"
  "/root/repo/src/render/scale.cc" "src/CMakeFiles/dvms.dir/render/scale.cc.o" "gcc" "src/CMakeFiles/dvms.dir/render/scale.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/dvms.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/dvms.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/dvms.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/dvms.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/versioned_table.cc" "src/CMakeFiles/dvms.dir/storage/versioned_table.cc.o" "gcc" "src/CMakeFiles/dvms.dir/storage/versioned_table.cc.o.d"
  "/root/repo/src/streaming/intent_model.cc" "src/CMakeFiles/dvms.dir/streaming/intent_model.cc.o" "gcc" "src/CMakeFiles/dvms.dir/streaming/intent_model.cc.o.d"
  "/root/repo/src/streaming/scheduler.cc" "src/CMakeFiles/dvms.dir/streaming/scheduler.cc.o" "gcc" "src/CMakeFiles/dvms.dir/streaming/scheduler.cc.o.d"
  "/root/repo/src/streaming/simulation.cc" "src/CMakeFiles/dvms.dir/streaming/simulation.cc.o" "gcc" "src/CMakeFiles/dvms.dir/streaming/simulation.cc.o.d"
  "/root/repo/src/streaming/tiles.cc" "src/CMakeFiles/dvms.dir/streaming/tiles.cc.o" "gcc" "src/CMakeFiles/dvms.dir/streaming/tiles.cc.o.d"
  "/root/repo/src/streaming/wavelet.cc" "src/CMakeFiles/dvms.dir/streaming/wavelet.cc.o" "gcc" "src/CMakeFiles/dvms.dir/streaming/wavelet.cc.o.d"
  "/root/repo/src/workload/mouse.cc" "src/CMakeFiles/dvms.dir/workload/mouse.cc.o" "gcc" "src/CMakeFiles/dvms.dir/workload/mouse.cc.o.d"
  "/root/repo/src/workload/sdss.cc" "src/CMakeFiles/dvms.dir/workload/sdss.cc.o" "gcc" "src/CMakeFiles/dvms.dir/workload/sdss.cc.o.d"
  "/root/repo/src/workload/tpch.cc" "src/CMakeFiles/dvms.dir/workload/tpch.cc.o" "gcc" "src/CMakeFiles/dvms.dir/workload/tpch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
