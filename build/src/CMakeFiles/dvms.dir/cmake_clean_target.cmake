file(REMOVE_RECURSE
  "libdvms.a"
)
