# Empty dependencies file for dvms.
# This may be replaced when dependencies are built.
