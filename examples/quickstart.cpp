// Quickstart: load data, declare a static visualization in DeVIL, render it,
// and inspect the marks and pixels relations.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <cstdio>

#include "core/dvms.h"
#include "core/session.h"

int main() {
  using namespace dvms;

  Dvms::Options options;
  options.canvas_width = 320;
  options.canvas_height = 240;
  Dvms engine(options);

  // 1. Base data: a small product table.
  Status st = engine.CreateBaseTable(
      "Sales", Schema({{"productId", ValueType::kInt64},
                       {"profit", ValueType::kDouble},
                       {"revenue", ValueType::kDouble}}));
  if (!st.ok()) {
    std::fprintf(stderr, "create: %s\n", st.ToString().c_str());
    return 1;
  }
  std::vector<Row> rows;
  for (int i = 1; i <= 12; ++i) {
    rows.push_back({Value::Int(i), Value::Double(5.0 * i),
                    Value::Double(8.0 * i + (i % 3) * 11.0)});
  }
  st = engine.Insert("Sales", rows);
  if (!st.ok()) {
    std::fprintf(stderr, "insert: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. Scale relations (the paper's scale_x / scale_y).
  (void)engine.CreateScale("scale_x", 0, 110, 10, 310);
  (void)engine.CreateScale("scale_y", 0, 70, 230, 10);

  // 3. The static visualization of DeVIL 1: a scatterplot as a view.
  const char* program = R"(
    SPLOT_POINTS = SELECT
        5 AS radius, 'steelblue' AS fill, 'black' AS stroke,
        linear_scale(Sales.revenue, sx.domain_min, sx.domain_max,
                     sx.range_min, sx.range_max) AS center_x,
        linear_scale(Sales.profit, sy.domain_min, sy.domain_max,
                     sy.range_min, sy.range_max) AS center_y,
        productId
      FROM Sales, scale_x AS sx, scale_y AS sy;

    P = render(SELECT * FROM SPLOT_POINTS);
  )";
  st = engine.LoadProgram(program);
  if (!st.ok()) {
    std::fprintf(stderr, "program: %s\n", st.ToString().c_str());
    return 1;
  }

  // 4. Inspect the marks relation...
  const Table* marks = engine.GetTable("SPLOT_POINTS").value();
  std::printf("SPLOT_POINTS (%zu marks):\n%s\n", marks->num_rows(),
              marks->ToString(6).c_str());

  // ...run an ad-hoc query through a read session — the snapshot-isolated,
  // lock-free path concurrent readers (dashboards, replicas) use...
  Session session(&engine);
  Table summary =
      session.Query("SELECT COUNT(*) AS n, AVG(revenue) AS avg_rev FROM Sales")
          .value();
  std::printf("Summary:\n%s\n", summary.ToString().c_str());

  // ...and write the pixels relation P as an image.
  std::printf("painted pixels: %zu\n", engine.pixels().CountPainted());
  st = engine.pixels().WritePpm("quickstart.ppm");
  std::printf("wrote quickstart.ppm: %s\n", st.ToString().c_str());
  return 0;
}
