// Figure 2: linked brushing between a scatterplot and a histogram,
// expressed entirely in DeVIL — including the drag EVENT pattern, the
// selection view, and transactional rollback.
//
// Writes step0.ppm (static), step1.ppm (mid-drag selection), and
// step2.ppm (after rollback).

#include <cstdio>

#include "common/rng.h"
#include "core/dvms.h"
#include "render/axis.h"

namespace {

using namespace dvms;

constexpr const char* kProgram = R"(
  -- DeVIL 2: the drag interaction as a compound event stream.
  C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
      RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
             (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);

  BBOX = SELECT x AS x0, y AS y0, x + dx AS x1, y + dy AS y1
    FROM C ORDER BY t DESC LIMIT 1;

  -- DeVIL 1: the static scatterplot (revenue vs profit).
  SPLOT_POINTS = SELECT
      6 AS radius, 'gray' AS stroke, 'gray' AS fill,
      linear_scale(Sales.revenue, sx.domain_min, sx.domain_max,
                   sx.range_min, sx.range_max) AS center_x,
      linear_scale(Sales.profit, sy.domain_min, sy.domain_max,
                   sy.range_min, sy.range_max) AS center_y,
      productId
    FROM Sales, scale_x AS sx, scale_y AS sy;

  -- DeVIL 3: hit testing against the interaction-start marks.
  selected = SELECT SP.productId AS productId
    FROM BBOX, SPLOT_POINTS@vnow-1 AS SP
    WHERE in_rectangle(SP.center_x, SP.center_y,
                       BBOX.x0, BBOX.y0, BBOX.x1, BBOX.y1);

  SPLOT_POINTS = SELECT
      6 AS radius, 'gray' AS stroke, 'gray' AS fill,
      linear_scale(Sales.revenue, sx.domain_min, sx.domain_max,
                   sx.range_min, sx.range_max) AS center_x,
      linear_scale(Sales.profit, sy.domain_min, sy.domain_max,
                   sy.range_min, sy.range_max) AS center_y,
      productId
    FROM Sales, scale_x AS sx, scale_y AS sy
    WHERE productId NOT IN selected
    UNION SELECT
      6 AS radius, 'red' AS stroke, 'red' AS fill,
      linear_scale(Sales.revenue, sx.domain_min, sx.domain_max,
                   sx.range_min, sx.range_max) AS center_x,
      linear_scale(Sales.profit, sy.domain_min, sy.domain_max,
                   sy.range_min, sy.range_max) AS center_y,
      productId
    FROM Sales, scale_x AS sx, scale_y AS sy
    WHERE productId IN selected;

  -- Coordinated view: the price histogram shares the selected relation.
  HIST_BARS = SELECT
      band_scale(Sales.productId - 1, 12, 420.0, 780.0, 0.2) AS x,
      300.0 - Sales.price AS y,
      band_width(12, 420.0, 780.0, 0.2) AS width,
      Sales.price AS height,
      if(Sales.productId IN selected, 'red', 'steelblue') AS fill
    FROM Sales;

  AXES = render(SELECT * FROM axis_marks);
  P = render(SELECT * FROM SPLOT_POINTS);
  P2 = render(SELECT * FROM HIST_BARS);
)";

size_t CountFill(Dvms* engine, const char* view, const char* fill) {
  const Table* t = engine->GetTable(view).value();
  size_t idx = t->schema().FindColumn("fill").value();
  size_t n = 0;
  for (const Row& row : t->rows()) {
    if (row[idx].string_value() == fill) ++n;
  }
  return n;
}

}  // namespace

int main() {
  using namespace dvms;
  Dvms::Options options;
  options.canvas_width = 800;
  options.canvas_height = 320;
  Dvms engine(options);

  (void)engine.CreateBaseTable("Sales",
                               Schema({{"productId", ValueType::kInt64},
                                       {"price", ValueType::kDouble},
                                       {"profit", ValueType::kDouble},
                                       {"revenue", ValueType::kDouble}}));
  std::vector<Row> rows;
  Rng rng(17);
  for (int i = 1; i <= 12; ++i) {
    rows.push_back({Value::Int(i), Value::Double(rng.Uniform(40, 260)),
                    Value::Double(rng.Uniform(5, 95)),
                    Value::Double(rng.Uniform(5, 95))});
  }
  (void)engine.Insert("Sales", rows);
  (void)engine.CreateScale("scale_x", 0, 100, 20, 380);
  (void)engine.CreateScale("scale_y", 0, 100, 300, 20);

  // Axes for the scatterplot (Figure 2 draws Revenue/Profit axes).
  AxisSpec x_axis;
  x_axis.orientation = AxisOrientation::kBottom;
  x_axis.domain_min = 0;
  x_axis.domain_max = 100;
  x_axis.range_min = 20;
  x_axis.range_max = 380;
  x_axis.cross = 302;
  AxisSpec y_axis;
  y_axis.orientation = AxisOrientation::kLeft;
  y_axis.domain_min = 0;
  y_axis.domain_max = 100;
  y_axis.range_min = 20;
  y_axis.range_max = 300;
  y_axis.cross = 18;
  Table axes = MakeAxisMarks(x_axis);
  Table y_marks = MakeAxisMarks(y_axis);
  for (const Row& row : y_marks.rows()) {
    axes.AppendUnchecked(row);
  }
  (void)engine.CreateBaseTable("axis_marks", axes.schema());
  (void)engine.Insert("axis_marks", axes.rows());

  Status st = engine.LoadProgram(kProgram);
  if (!st.ok()) {
    std::fprintf(stderr, "program: %s\n", st.ToString().c_str());
    return 1;
  }

  // Step 0: the static visualization.
  std::printf("step 0: %zu gray points, %zu selected\n",
              CountFill(&engine, "SPLOT_POINTS", "gray"),
              engine.GetTable("selected").value()->num_rows());
  (void)engine.pixels().WritePpm("step0.ppm");

  // Step 1: drag a selection box over the left half of the scatterplot.
  (void)engine.PushEvent(InputEvent::MouseDown(0, 30, 40));
  (void)engine.PushEvent(InputEvent::MouseMove(40, 120, 160));
  (void)engine.PushEvent(InputEvent::MouseMove(80, 200, 260));
  std::printf("step 1: selection = {");
  const Table* selected = engine.GetTable("selected").value();
  for (size_t i = 0; i < selected->num_rows(); ++i) {
    std::printf("%s%lld", i ? ", " : "",
                static_cast<long long>(selected->row(i)[0].int_value()));
  }
  std::printf("} -> %zu red points, %zu red bars\n",
              CountFill(&engine, "SPLOT_POINTS", "red"),
              CountFill(&engine, "HIST_BARS", "red"));
  (void)engine.pixels().WritePpm("step1.ppm");

  // Step 2: roll back — a second MOUSE_DOWN mid-drag rejects the pattern,
  // aborting the interaction transaction and clearing C.
  (void)engine.PushEvent(InputEvent::MouseDown(120, 31, 41));
  std::printf("step 2 (rollback): %zu red points, aborts=%zu\n",
              CountFill(&engine, "SPLOT_POINTS", "red"),
              engine.stats().transactions_aborted);
  (void)engine.pixels().WritePpm("step2.ppm");

  for (const std::string& warning : engine.AnalyzeInteractions()) {
    std::printf("static analysis: %s\n", warning.c_str());
  }
  std::printf("wrote step0.ppm step1.ppm step2.ppm\n");
  return 0;
}
