// Figure 1: revenue breakdown with crossfilter over TPC-H-shaped data.
//
// Four group-by-sum charts (region, year, month, day-of-week) render as
// linked bar charts; brushing a year range on the year chart filters the
// other three. Each bar shows the unfiltered total in gray with the
// filtered partition overlaid in green — exactly the paper's encoding.

#include <cstdio>

#include "core/dvms.h"
#include "core/session.h"
#include "workload/tpch.h"

namespace {

using namespace dvms;

// Chart layout (canvas 800x600): year chart top-right is the brush target.
constexpr double kYearX0 = 420, kYearX1 = 780;

constexpr const char* kProgram = R"(
  -- Brush on the year chart: a horizontal range selection.
  C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
      WHERE D.x > 420 AND D.y < 280
      RETURN (D.t, D.x AS x, D.x AS x2),
             (M.t, D.x AS x, M.x AS x2);

  C_RANGE = SELECT min2(x, x2) AS lo, max2(x, x2) AS hi
    FROM C ORDER BY t DESC LIMIT 1;

  selected_years = SELECT yb.year AS year
    FROM C_RANGE, year_bands AS yb
    WHERE yb.x1 >= C_RANGE.lo AND yb.x0 <= C_RANGE.hi;

  -- Group-by-sum views: unfiltered totals and crossfiltered partitions.
  rev_region   = SELECT region, SUM(revenue) AS revenue FROM Sales GROUP BY region;
  rev_region_f = SELECT region, SUM(revenue) AS revenue FROM Sales
                 WHERE year IN selected_years GROUP BY region;
  rev_year     = SELECT year, SUM(revenue) AS revenue FROM Sales GROUP BY year;
  rev_year_f   = SELECT year, SUM(revenue) AS revenue FROM Sales
                 WHERE year IN selected_years GROUP BY year;
  rev_month    = SELECT month, SUM(revenue) AS revenue FROM Sales GROUP BY month;
  rev_month_f  = SELECT month, SUM(revenue) AS revenue FROM Sales
                 WHERE year IN selected_years GROUP BY month;
  rev_dow      = SELECT dow, SUM(revenue) AS revenue FROM Sales GROUP BY dow;
  rev_dow_f    = SELECT dow, SUM(revenue) AS revenue FROM Sales
                 WHERE year IN selected_years GROUP BY dow;

  -- Marks: gray total bars with green filtered overlays.
  REGION_BARS = SELECT
      band_scale(d.idx, 5, 20.0, 380.0, 0.2) AS x,
      280.0 - linear_scale(r.revenue, s.domain_min, s.domain_max,
                           s.range_min, s.range_max) AS y,
      band_width(5, 20.0, 380.0, 0.2) AS width,
      linear_scale(r.revenue, s.domain_min, s.domain_max,
                   s.range_min, s.range_max) AS height,
      'lightgray' AS fill
    FROM rev_region AS r, region_dim AS d, chart_scale AS s
    WHERE r.region = d.region;
  REGION_BARS_F = SELECT
      band_scale(d.idx, 5, 20.0, 380.0, 0.2) AS x,
      280.0 - linear_scale(r.revenue, s.domain_min, s.domain_max,
                           s.range_min, s.range_max) AS y,
      band_width(5, 20.0, 380.0, 0.2) AS width,
      linear_scale(r.revenue, s.domain_min, s.domain_max,
                   s.range_min, s.range_max) AS height,
      'green' AS fill
    FROM rev_region_f AS r, region_dim AS d, chart_scale AS s
    WHERE r.region = d.region;

  YEAR_BARS = SELECT
      band_scale(r.year - 1992, 7, 420.0, 780.0, 0.2) AS x,
      280.0 - linear_scale(r.revenue, s.domain_min, s.domain_max,
                           s.range_min, s.range_max) AS y,
      band_width(7, 420.0, 780.0, 0.2) AS width,
      linear_scale(r.revenue, s.domain_min, s.domain_max,
                   s.range_min, s.range_max) AS height,
      'lightgray' AS fill
    FROM rev_year AS r, chart_scale AS s;
  YEAR_BARS_F = SELECT
      band_scale(r.year - 1992, 7, 420.0, 780.0, 0.2) AS x,
      280.0 - linear_scale(r.revenue, s.domain_min, s.domain_max,
                           s.range_min, s.range_max) AS y,
      band_width(7, 420.0, 780.0, 0.2) AS width,
      linear_scale(r.revenue, s.domain_min, s.domain_max,
                   s.range_min, s.range_max) AS height,
      'green' AS fill
    FROM rev_year_f AS r, chart_scale AS s;

  MONTH_BARS = SELECT
      band_scale(r.month - 1, 12, 20.0, 380.0, 0.2) AS x,
      580.0 - linear_scale(r.revenue, s.domain_min, s.domain_max,
                           s.range_min, s.range_max) AS y,
      band_width(12, 20.0, 380.0, 0.2) AS width,
      linear_scale(r.revenue, s.domain_min, s.domain_max,
                   s.range_min, s.range_max) AS height,
      'lightgray' AS fill
    FROM rev_month AS r, chart_scale AS s;
  MONTH_BARS_F = SELECT
      band_scale(r.month - 1, 12, 20.0, 380.0, 0.2) AS x,
      580.0 - linear_scale(r.revenue, s.domain_min, s.domain_max,
                           s.range_min, s.range_max) AS y,
      band_width(12, 20.0, 380.0, 0.2) AS width,
      linear_scale(r.revenue, s.domain_min, s.domain_max,
                   s.range_min, s.range_max) AS height,
      'green' AS fill
    FROM rev_month_f AS r, chart_scale AS s;

  DOW_BARS = SELECT
      band_scale(r.dow, 7, 420.0, 780.0, 0.2) AS x,
      580.0 - linear_scale(r.revenue, s.domain_min, s.domain_max,
                           s.range_min, s.range_max) AS y,
      band_width(7, 420.0, 780.0, 0.2) AS width,
      linear_scale(r.revenue, s.domain_min, s.domain_max,
                   s.range_min, s.range_max) AS height,
      'lightgray' AS fill
    FROM rev_dow AS r, chart_scale AS s;
  DOW_BARS_F = SELECT
      band_scale(r.dow, 7, 420.0, 780.0, 0.2) AS x,
      580.0 - linear_scale(r.revenue, s.domain_min, s.domain_max,
                           s.range_min, s.range_max) AS y,
      band_width(7, 420.0, 780.0, 0.2) AS width,
      linear_scale(r.revenue, s.domain_min, s.domain_max,
                   s.range_min, s.range_max) AS height,
      'green' AS fill
    FROM rev_dow_f AS r, chart_scale AS s;

  P1 = render(SELECT * FROM REGION_BARS);
  P2 = render(SELECT * FROM REGION_BARS_F);
  P3 = render(SELECT * FROM YEAR_BARS);
  P4 = render(SELECT * FROM YEAR_BARS_F);
  P5 = render(SELECT * FROM MONTH_BARS);
  P6 = render(SELECT * FROM MONTH_BARS_F);
  P7 = render(SELECT * FROM DOW_BARS);
  P8 = render(SELECT * FROM DOW_BARS_F);
)";

void PrintChart(Dvms* engine, const char* title, const char* total_view,
                const char* filtered_view) {
  const Table* total = engine->GetTable(total_view).value();
  const Table* filtered = engine->GetTable(filtered_view).value();
  double max = 1;
  for (const Row& row : total->rows()) {
    max = std::max(max, row[1].double_value());
  }
  std::printf("%s\n", title);
  for (const Row& row : total->rows()) {
    double f = 0;
    for (const Row& frow : filtered->rows()) {
      if (frow[0].Equals(row[0])) f = frow[1].double_value();
    }
    int bars = static_cast<int>(40 * row[1].double_value() / max);
    int green = static_cast<int>(40 * f / max);
    std::printf("  %-12s |", row[0].ToString().c_str());
    for (int i = 0; i < bars; ++i) std::printf(i < green ? "#" : ".");
    std::printf("  %.3g (%.3g selected)\n", row[1].double_value(), f);
  }
}

}  // namespace

int main() {
  Dvms::Options options;
  options.canvas_width = 800;
  options.canvas_height = 600;
  Dvms engine(options);

  // TPC-H-shaped facts.
  TpchConfig tpch;
  tpch.num_rows = 20000;
  Table sales = GenerateTpchSales(tpch);
  (void)engine.CreateBaseTable("Sales", sales.schema());
  (void)engine.Insert("Sales", sales.rows());

  // Dimension helper tables: region order and year band pixel extents.
  (void)engine.CreateBaseTable("region_dim",
                               Schema({{"region", ValueType::kString},
                                       {"idx", ValueType::kInt64}}));
  std::vector<Row> regions;
  for (size_t i = 0; i < TpchRegions().size(); ++i) {
    regions.push_back({Value::String(TpchRegions()[i]),
                       Value::Int(static_cast<int64_t>(i))});
  }
  (void)engine.Insert("region_dim", regions);

  (void)engine.CreateBaseTable("year_bands",
                               Schema({{"year", ValueType::kInt64},
                                       {"x0", ValueType::kDouble},
                                       {"x1", ValueType::kDouble}}));
  std::vector<Row> bands;
  double band = (kYearX1 - kYearX0) / 7.0;
  for (int y = 0; y < 7; ++y) {
    bands.push_back({Value::Int(1992 + y),
                     Value::Double(kYearX0 + y * band),
                     Value::Double(kYearX0 + (y + 1) * band)});
  }
  (void)engine.Insert("year_bands", bands);

  // Bar-height scale sized to the largest monthly total (months have the
  // smallest group count, so the largest bars).
  Result<Table> totals =
      Session(&engine).Query(
          "SELECT region, SUM(revenue) AS r FROM Sales GROUP BY region");
  if (!totals.ok()) {
    std::fprintf(stderr, "setup query: %s\n", totals.status().ToString().c_str());
    return 1;
  }
  double max_total = 1;
  for (const Row& row : totals.value().rows()) {
    max_total = std::max(max_total, row[1].double_value());
  }
  (void)engine.CreateScale("chart_scale", 0, max_total * 1.05, 0, 240);

  Status st = engine.LoadProgram(kProgram);
  if (!st.ok()) {
    std::fprintf(stderr, "program: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("=== Before interaction (nothing selected) ===\n");
  PrintChart(&engine, "Revenue by region", "rev_region", "rev_region_f");
  (void)engine.pixels().WritePpm("crossfilter_before.ppm");

  // Brush years 1997-1998 on the year chart (bands 5 and 6).
  double lo = kYearX0 + 5 * band + 4;
  double hi = kYearX0 + 7 * band - 4;
  (void)engine.PushEvent(InputEvent::MouseDown(0, lo, 100));
  (void)engine.PushEvent(InputEvent::MouseMove(30, (lo + hi) / 2, 100));
  (void)engine.PushEvent(InputEvent::MouseMove(60, hi, 100));
  (void)engine.PushEvent(InputEvent::MouseUp(90, hi, 100));

  std::printf("\n=== After selecting years 1997-1998 ===\n");
  const Table* years = engine.GetTable("selected_years").value();
  std::printf("selected_years: %s\n", years->ToString().c_str());
  PrintChart(&engine, "Revenue by region", "rev_region", "rev_region_f");
  PrintChart(&engine, "Revenue by month", "rev_month", "rev_month_f");
  PrintChart(&engine, "Revenue by day of week", "rev_dow", "rev_dow_f");
  (void)engine.pixels().WritePpm("crossfilter_after.ppm");

  std::printf("\nevents=%zu commits=%zu renders=%zu\n",
              engine.stats().events_processed,
              engine.stats().transactions_committed, engine.stats().renders);
  std::printf("wrote crossfilter_before.ppm crossfilter_after.ppm\n");
  return 0;
}
