// §2.1.3: the primary interaction classes common across taxonomies, each
// expressed with DeVIL's core constructs:
//   1. interactive selection      — join of event stream and marks,
//   2. changing visual encodings  — modified projection clauses,
//   3. adding / removing marks    — INSERT / DELETE on base relations,
//   4. coordinated views          — views sharing the selection relation,
//   5. undo / redo                — the versioning semantics.

#include <cstdio>

#include "core/dvms.h"

namespace {

using namespace dvms;

const char* kProgram = R"(
  C = EVENT MOUSE_DOWN AS D, MOUSE_MOVE* AS M, MOUSE_UP AS U
      RETURN (D.t, D.x, D.y, 0 AS dx, 0 AS dy),
             (M.t, D.x, D.y, (M.x - D.x) AS dx, (M.y - D.y) AS dy);
  BBOX = SELECT x AS x0, y AS y0, x + dx AS x1, y + dy AS y1
    FROM C ORDER BY t DESC LIMIT 1;

  POINTS = SELECT 5 AS radius,
      linear_scale(Items.a, 0, 100, 10, 290) AS center_x,
      linear_scale(Items.b, 0, 100, 290, 10) AS center_y,
      id, 'gray' AS fill
    FROM Items;

  -- 1. Interactive selection: event stream x marks join, hit testing
  --    against the interaction-start version.
  selected = SELECT P.id AS id FROM BBOX, POINTS@vnow-1 AS P
    WHERE in_rectangle(P.center_x, P.center_y,
                       BBOX.x0, BBOX.y0, BBOX.x1, BBOX.y1);

  -- 2. Changing visual encodings: the fill projection depends on the
  --    selection, and size encodes the data value continuously.
  POINTS = SELECT
      3 + Items.b / 25 AS radius,
      linear_scale(Items.a, 0, 100, 10, 290) AS center_x,
      linear_scale(Items.b, 0, 100, 290, 10) AS center_y,
      id,
      if(Items.id IN selected, 'red',
         lerp_color(Items.b / 100, '#c7c7c7', '#1f77b4')) AS fill
    FROM Items;

  -- 4. Coordinated views: a second chart shares `selected`.
  COUNTS = SELECT if(id IN selected, 'selected', 'unselected') AS bucket,
      COUNT(*) AS n
    FROM Items GROUP BY if(id IN selected, 'selected', 'unselected');

  P = render(SELECT radius, center_x, center_y, fill FROM POINTS);
)";

void Show(Dvms* engine, const char* label) {
  const Table* counts = engine->GetTable("COUNTS").value();
  size_t selected = 0, total = 0;
  for (const Row& row : counts->rows()) {
    size_t n = static_cast<size_t>(row[1].int_value());
    total += n;
    if (row[0].string_value() == "selected") selected = n;
  }
  std::printf("%-28s %zu items, %zu selected\n", label, total, selected);
}

}  // namespace

int main() {
  Dvms::Options options;
  options.canvas_width = 300;
  options.canvas_height = 300;
  Dvms engine(options);

  (void)engine.CreateBaseTable("Items", Schema({{"id", ValueType::kInt64},
                                                {"a", ValueType::kDouble},
                                                {"b", ValueType::kDouble}}));
  std::vector<Row> rows;
  for (int i = 0; i < 20; ++i) {
    rows.push_back({Value::Int(i), Value::Double((i * 37) % 100),
                    Value::Double((i * 61) % 100)});
  }
  (void)engine.Insert("Items", rows);

  Status st = engine.LoadProgram(kProgram);
  if (!st.ok()) {
    std::fprintf(stderr, "program: %s\n", st.ToString().c_str());
    return 1;
  }
  Show(&engine, "initial");

  // 1+2+4: a brush selects; encodings and the coordinated chart follow.
  (void)engine.PushEvents({InputEvent::MouseDown(0, 20, 20),
                           InputEvent::MouseMove(1, 150, 150),
                           InputEvent::MouseUp(2, 150, 150)});
  Show(&engine, "after brush (committed)");

  // 3. Adding marks: INSERT flows through every view.
  (void)engine.Insert("Items", {{Value::Int(100), Value::Double(50),
                                 Value::Double(50)}});
  Show(&engine, "after adding a mark");

  // 3. Removing marks: DELETE does too.
  (void)engine.LoadProgram("DELETE FROM Items WHERE b < 20;");
  Show(&engine, "after removing b < 20");

  // 5. Undo / redo across committed interaction boundaries.
  (void)engine.Undo();
  Show(&engine, "after undo");
  (void)engine.Redo();
  Show(&engine, "after redo");

  std::printf("\nworkflow state:\n%s", engine.DumpState().c_str());
  std::printf("\nexplain POINTS:\n%s",
              engine.ExplainView("POINTS").value().c_str());
  (void)engine.pixels().WritePpm("taxonomy.ppm");
  std::printf("wrote taxonomy.ppm\n");
  return 0;
}
