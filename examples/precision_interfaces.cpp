// §3.4 Precision Interfaces: mine a (synthetic) SDSS-style query log for
// structured transformations, build the transformation graph of Figure 6,
// and synthesize the tailored interfaces of Figure 7 under a
// simplicity-preferring and a coverage-preferring budget.

#include <cstdio>

#include "precision/interface_synth.h"
#include "precision/transform_graph.h"
#include "workload/sdss.h"

int main() {
  using namespace dvms;

  // 1. The query log (synthetic stand-in for 3 days of SkyServer traffic).
  SdssLogConfig log_config;
  log_config.num_sessions = 600;
  SdssLog log = GenerateSdssLog(log_config);
  std::printf("query log: %zu queries in %zu sessions\n", log.total_queries,
              log.sessions.size());
  std::printf("sample session:\n");
  for (size_t i = 0; i < 3 && i < log.sessions[0].size(); ++i) {
    std::printf("  %s\n", log.sessions[0][i].c_str());
  }

  // 2. Mine transformations with the 8 hand-coded rules.
  std::vector<TransformRule> rules = DefaultSdssRules();
  TransformGraph graph = BuildTransformGraph(log.sessions, rules);
  std::printf("\ntransformation graph: %zu vertices, %zu edges\n",
              graph.queries.size(), graph.edges.size());
  std::printf("mapped to templates: %.1f%% of the log\n",
              100.0 * graph.ParsedFraction());
  std::printf("interaction mix:\n");
  for (const auto& [name, count] : graph.InteractionCounts()) {
    std::printf("  %-24s %6zu edges (%.1f%%)\n", name.c_str(), count,
                100.0 * graph.CoverageOf(name));
  }

  // 3. Synthesize interfaces under two budgets.
  auto report = [&graph](const char* label, const SynthesisConfig& config) {
    SynthesizedInterface iface =
        SynthesizeInterface(graph, DefaultWidgetLibrary(), config);
    std::printf("\n%s (max_vis=%.1f, penalty=%.1f):\n", label,
                config.max_visual_complexity, config.penalty);
    for (const WidgetSpec& w : iface.widgets) {
      std::printf("  + %-18s (vis %.1f, act %.1f)\n", w.name.c_str(),
                  w.visual_complexity, w.activation_cost);
    }
    std::printf("  objective (avg user cost) = %.2f, coverage = %.1f%%, "
                "visual complexity = %.1f\n",
                iface.objective, 100.0 * iface.coverage,
                iface.total_visual_complexity);
  };

  SynthesisConfig simple;
  simple.max_visual_complexity = 4.0;
  report("Generated interface - prefers simplicity", simple);

  SynthesisConfig broad;
  broad.max_visual_complexity = 12.0;
  report("Generated interface - prefers coverage", broad);

  return 0;
}
