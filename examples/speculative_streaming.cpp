// §3.3: pushing near-interactive visualizations past the 100 ms threshold
// with a continuously streaming client/server loop: the intent model
// predicts where the mouse is headed, and the server streams progressively
// encoded (Haar wavelet) tile prefixes under a bandwidth bound.

#include <cmath>
#include <cstdio>

#include "streaming/simulation.h"
#include "streaming/wavelet.h"

int main() {
  using namespace dvms;

  // Show the progressive-encoding property on one tile.
  std::vector<double> payload;
  for (int i = 0; i < 256; ++i) {
    payload.push_back(60 + 25 * std::sin(i * 0.07) + 10 * std::sin(i * 0.31));
  }
  ProgressiveEncoding enc(payload);
  std::printf("progressive tile (%zu coefficients):\n",
              enc.num_coefficients());
  for (size_t k : {4ul, 16ul, 32ul, 64ul, 128ul, 256ul}) {
    std::printf("  prefix %3zu coeffs (%5zu bytes): quality %.3f\n", k, k * 8,
                enc.PrefixQuality(k));
  }

  // Full client/server comparison.
  StreamingSimConfig config;
  config.num_interactions = 300;
  StreamingSimResult result = SimulateStreaming(config);

  std::printf("\nintent model: top-1 accuracy at 200 ms horizon = %.1f%%\n",
              100.0 * result.top1_accuracy);
  std::printf("\nper-interaction latency to a usable render:\n");
  std::printf("  %-22s mean %6.1f ms,  <100 ms: %5.1f%%\n",
              "request-response", result.mean_request_response_ms,
              100.0 * result.frac_rr_under_100ms);
  std::printf("  %-22s mean %6.1f ms,  <100 ms: %5.1f%%\n",
              "speculative streaming", result.mean_speculative_ms,
              100.0 * result.frac_speculative_under_100ms);
  std::printf("\nmean tile quality already delivered at click time: %.2f\n",
              result.mean_quality_at_click);
  return 0;
}
