#include "obs/trace.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <mutex>

namespace dvms {
namespace obs {
namespace {

std::atomic<bool> g_enabled{false};
thread_local bool t_suppressed = false;

// Innermost live span on this thread; 0 == root. The RAII chain itself is
// the stack: constructors push, destructors pop in LIFO order.
thread_local uint64_t t_current_span = 0;

// Small dense per-thread ids for SpanRow::thread (stable across the
// process, unlike recycled OS tids).
uint64_t ThreadId() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

constexpr int kHistoBuckets = 64;

// Log2-bucket histogram. Bucket 0 holds values < 1; bucket i (i >= 1)
// holds [2^(i-1), 2^i). POD on purpose: SavedState packs it bytewise.
struct Histo {
  uint64_t count = 0;
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  uint64_t buckets[kHistoBuckets] = {};

  void Record(double v) {
    ++count;
    sum += v;
    min = std::min(min, v);
    max = std::max(max, v);
    ++buckets[BucketOf(v)];
  }

  static int BucketOf(double v) {
    if (!(v >= 1.0)) return 0;  // also catches NaN
    int b = 1 + static_cast<int>(std::floor(std::log2(v)));
    return std::min(b, kHistoBuckets - 1);
  }

  static double Midpoint(int b) {
    if (b == 0) return 0.5;
    double lo = std::ldexp(1.0, b - 1);
    return lo * 1.5;
  }

  // Percentile estimate from bucket midpoints, clamped to [min, max].
  double Percentile(double q) const {
    if (count == 0) return 0;
    uint64_t target = static_cast<uint64_t>(std::ceil(q * count));
    if (target < 1) target = 1;
    uint64_t seen = 0;
    for (int b = 0; b < kHistoBuckets; ++b) {
      seen += buckets[b];
      if (seen >= target) {
        return std::clamp(Midpoint(b), min, max);
      }
    }
    return max;
  }
};

struct RingSpan {
  SpanRow row;
  uint64_t seq = 0;  // completion sequence; Restore trims by this
};

struct Registry {
  std::mutex mu;
  std::map<std::string, uint64_t> counters;
  std::map<std::string, Histo> histos;
  std::deque<RingSpan> spans;
  uint64_t next_seq = 1;
  std::atomic<uint64_t> next_span_id{1};

  static Registry& Get() {
    static Registry* r = new Registry();  // leaked: outlives static dtors
    return *r;
  }
};

}  // namespace

bool Enabled() {
  return g_enabled.load(std::memory_order_relaxed) && !t_suppressed;
}

void SetEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool InitFromEnv() {
  const char* v = std::getenv("DVMS_TRACE");
  if (v != nullptr) {
    std::string s(v);
    for (char& c : s) c = static_cast<char>(std::tolower(c));
    if (s == "1" || s == "true" || s == "on") SetEnabled(true);
    if (s == "0" || s == "false" || s == "off") SetEnabled(false);
  }
  return g_enabled.load(std::memory_order_relaxed);
}

SuppressScope::SuppressScope() : prev_(t_suppressed) { t_suppressed = true; }
SuppressScope::~SuppressScope() { t_suppressed = prev_; }

void Count(const char* name, uint64_t delta) {
  if (!Enabled()) return;
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  r.counters[name] += delta;
}

void Observe(const char* name, double value) {
  if (!Enabled()) return;
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  r.histos[name].Record(value);
}

int64_t NowMicros() {
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

Span::Span(const char* name) {
  if (!Enabled()) return;  // inert: name_ stays nullptr
  name_ = name;
  id_ = Registry::Get().next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_current_span;
  t_current_span = id_;
  start_us_ = NowMicros();
}

Span::~Span() {
  if (name_ == nullptr) return;
  t_current_span = parent_;
  int64_t end_us = NowMicros();
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  RingSpan rs;
  rs.row.id = id_;
  rs.row.parent = parent_;
  rs.row.name = name_;
  rs.row.thread = ThreadId();
  rs.row.start_us = start_us_;
  rs.row.dur_us = end_us - start_us_;
  rs.seq = r.next_seq++;
  r.spans.push_back(std::move(rs));
  if (r.spans.size() > kSpanRingCapacity) r.spans.pop_front();
}

std::vector<MetricRow> SnapshotMetrics() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<MetricRow> out;
  out.reserve(r.counters.size() + r.histos.size());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (const auto& [name, value] : r.counters) {
    MetricRow m;
    m.name = name;
    m.kind = "counter";
    m.count = value;
    m.sum = static_cast<double>(value);
    m.min = m.max = m.p50 = m.p95 = m.p99 = nan;
    out.push_back(std::move(m));
  }
  for (const auto& [name, h] : r.histos) {
    MetricRow m;
    m.name = name;
    m.kind = "histogram";
    m.count = h.count;
    m.sum = h.sum;
    m.min = h.count ? h.min : nan;
    m.max = h.count ? h.max : nan;
    m.p50 = h.count ? h.Percentile(0.50) : nan;
    m.p95 = h.count ? h.Percentile(0.95) : nan;
    m.p99 = h.count ? h.Percentile(0.99) : nan;
    out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricRow& a, const MetricRow& b) { return a.name < b.name; });
  return out;
}

std::vector<SpanRow> SnapshotSpans() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<SpanRow> out;
  out.reserve(r.spans.size());
  for (const auto& rs : r.spans) out.push_back(rs.row);
  return out;
}

SavedState Save() {
  if (!g_enabled.load(std::memory_order_relaxed)) return {};
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  SavedState s;
  s.counters.reserve(r.counters.size());
  for (const auto& [name, value] : r.counters) s.counters.push_back({name, value});
  s.histos.reserve(r.histos.size());
  for (const auto& [name, h] : r.histos) {
    s.histos.push_back(
        {name, std::string(reinterpret_cast<const char*>(&h), sizeof(Histo))});
  }
  s.spans_end = r.next_seq;
  s.valid = true;
  return s;
}

void Restore(const SavedState& s) {
  if (!s.valid) return;
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  r.counters.clear();
  for (const auto& c : s.counters) r.counters[c.name] = c.value;
  r.histos.clear();
  for (const auto& h : s.histos) {
    Histo histo;
    if (h.payload.size() == sizeof(Histo)) {
      std::memcpy(&histo, h.payload.data(), sizeof(Histo));
    }
    r.histos[h.name] = histo;
  }
  while (!r.spans.empty() && r.spans.back().seq >= s.spans_end) {
    r.spans.pop_back();
  }
  r.next_seq = s.spans_end;
}

void ResetForTesting() {
  Registry& r = Registry::Get();
  std::lock_guard<std::mutex> lock(r.mu);
  r.counters.clear();
  r.histos.clear();
  r.spans.clear();
  r.next_seq = 1;
}

}  // namespace obs
}  // namespace dvms
