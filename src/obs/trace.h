#ifndef DVMS_OBS_TRACE_H_
#define DVMS_OBS_TRACE_H_

/// Low-overhead tracing/metrics layer (the PR-4 observability subsystem).
///
/// Design goals, in priority order:
///   1. Near-zero cost when disabled: every instrumentation site guards on
///      `obs::Enabled()`, a single relaxed atomic load plus a thread-local
///      flag check. No locks, no allocation, no clock reads on the
///      disabled path.
///   2. Queryable from DeVIL itself: the registry snapshots into the
///      system relations `dvms_metrics` / `dvms_spans` (see
///      Dvms::SyncSystemRelationsLocked), dogfooding the paper's
///      "everything is a relation" philosophy.
///   3. Rollback-consistent: a mutation unit that rolls back must not leak
///      counters or spans into `dvms_metrics` (mirrors how UnitState
///      restores `Stats`). `Save()` / `Restore()` capture and rewind the
///      whole registry; `SuppressScope` silences recording during rollback
///      re-renders.
///
/// Only standard-library dependencies on purpose: common/thread_pool.cc,
/// events/nfa.cc and durability/wal.cc all include this header.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dvms {
namespace obs {

/// ---- enablement -------------------------------------------------------

/// True when tracing is on for this process AND not suppressed on this
/// thread. The hot-path guard: one relaxed atomic load + one thread-local
/// read.
bool Enabled();

/// Turns process-wide tracing on/off (Dvms::Options::trace and the
/// DVMS_TRACE env var both route here).
void SetEnabled(bool on);

/// Reads DVMS_TRACE ("1"/"true"/"on", case-insensitive) once and enables
/// tracing if set. Returns the resulting process-wide state.
bool InitFromEnv();

/// Silences all recording on the current thread for its lifetime (used
/// around rollback re-renders so compensating work is not observed).
class SuppressScope {
 public:
  SuppressScope();
  ~SuppressScope();
  SuppressScope(const SuppressScope&) = delete;
  SuppressScope& operator=(const SuppressScope&) = delete;

 private:
  bool prev_;
};

/// ---- recording --------------------------------------------------------

/// Adds `delta` to the named monotonic counter. No-op when disabled.
void Count(const char* name, uint64_t delta = 1);

/// Records one sample into the named histogram (count/sum/min/max + log2
/// buckets; percentiles are estimated from bucket midpoints). No-op when
/// disabled.
void Observe(const char* name, double value);

/// Steady-clock microseconds since process start (spans and EXPLAIN
/// ANALYZE share this clock).
int64_t NowMicros();

/// RAII span: records {id, parent, name, thread, start_us, dur_us} into a
/// bounded ring buffer on destruction. Nesting is tracked per thread via a
/// thread-local parent stack. When tracing is disabled at construction the
/// span is inert (no clock read, nothing recorded at destruction).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;  // nullptr == inert
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  int64_t start_us_ = 0;
};

/// ---- snapshots (feed dvms_metrics / dvms_spans) ------------------------

struct MetricRow {
  std::string name;
  std::string kind;  // "counter" | "histogram"
  uint64_t count = 0;
  double sum = 0;
  // Histogram-only; NaN for counters (rendered as NULL in dvms_metrics).
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

struct SpanRow {
  uint64_t id = 0;
  uint64_t parent = 0;  // 0 == root
  std::string name;
  uint64_t thread = 0;  // small dense id, not the OS tid
  int64_t start_us = 0;
  int64_t dur_us = 0;
};

/// Rows sorted by name. Includes every counter/histogram touched since
/// startup (or the last ResetForTesting), even if tracing is now off.
std::vector<MetricRow> SnapshotMetrics();

/// The span ring's contents in completion order (oldest first). Bounded:
/// at most kSpanRingCapacity most-recent spans are retained.
std::vector<SpanRow> SnapshotSpans();

inline constexpr size_t kSpanRingCapacity = 8192;

/// ---- rollback integration ---------------------------------------------

/// Opaque registry checkpoint. Cheap relative to a mutation unit: copies
/// the counter/histogram maps and remembers the span ring position.
struct SavedState {
  struct Counter {
    std::string name;
    uint64_t value;
  };
  struct Histo {
    std::string name;
    std::string payload;  // packed internal state
  };
  std::vector<Counter> counters;
  std::vector<Histo> histos;
  uint64_t spans_end = 0;  // ring sequence number at capture
  bool valid = false;
};

/// Captures the registry (for UnitState). Cheap no-op ({} with
/// valid=false) when tracing is disabled.
SavedState Save();

/// Rewinds the registry to `s`: counters/histograms revert to their saved
/// values and spans completed after the capture are dropped from the ring.
/// Metrics first touched after the capture are removed entirely. No-op if
/// !s.valid.
void Restore(const SavedState& s);

/// Test hook: clears every counter, histogram and span.
void ResetForTesting();

}  // namespace obs
}  // namespace dvms

#endif  // DVMS_OBS_TRACE_H_
