#include "common/status.h"

namespace dvms {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kReadOnlyReplica:
      return "ReadOnlyReplica";
    case StatusCode::kStorageDegraded:
      return "StorageDegraded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace dvms
