#include "common/rng.h"

#include <cmath>

namespace dvms {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());
  return lo + static_cast<int64_t>(NextUint64() % range);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Exponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 1e-18;
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 1e-18;
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace dvms
