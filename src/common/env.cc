#include "common/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/fault.h"
#include "common/schema.h"

namespace dvms {

namespace {

const char* kOpNames[kNumIoOps] = {"open",   "read",   "write", "fsync",
                                   "rename", "unlink", "list"};

const char* kKindNames[kNumIoErrorKinds] = {"eio", "enospc", "short-write",
                                            "fsync-fail"};

/// SplitMix64 finalizer: a high-quality 64 -> 64 mix (same generator the
/// logical FaultInjector uses, so composed schedules stay independent —
/// the op tag occupies different bits than the site tag).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Formats a failed POSIX call as a Status. ENOSPC/EDQUOT get a stable
/// machine-checkable tag so policy code (degraded mode) can classify
/// without string-matching locale-dependent strerror text.
Status PosixError(const char* what, const std::string& path, int err) {
  std::string msg = std::string("io: ") + what + " failed for " + path + ": " +
                    std::strerror(err);
  if (err == ENOSPC || err == EDQUOT) msg += " [errno:ENOSPC]";
  if (err == ENOENT) msg += " [errno:ENOENT]";
  return Status::ExecutionError(std::move(msg));
}

/// The real thing. EINTR is retried here — and only here — so no caller
/// ever sees it; short reads/writes still surface as partial counts for
/// the env::ReadFully / env::WriteFully loops.
class PosixEnv : public Env {
 public:
  Result<int> Open(const std::string& path, int flags, int mode) override {
    int fd;
    do {
      fd = ::open(path.c_str(), flags, mode);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) return PosixError("open", path, errno);
    return fd;
  }

  void Close(int fd) override {
    if (fd >= 0) ::close(fd);
  }

  Result<size_t> Read(int fd, char* data, size_t n,
                      const std::string& path) override {
    ssize_t got;
    do {
      got = ::read(fd, data, n);
    } while (got < 0 && errno == EINTR);
    if (got < 0) return PosixError("read", path, errno);
    return static_cast<size_t>(got);
  }

  Result<size_t> Write(int fd, const char* data, size_t n,
                       const std::string& path) override {
    ssize_t wrote;
    do {
      wrote = ::write(fd, data, n);
    } while (wrote < 0 && errno == EINTR);
    if (wrote < 0) return PosixError("write", path, errno);
    return static_cast<size_t>(wrote);
  }

  Status Fsync(int fd, const std::string& path) override {
    int rc;
    do {
      rc = ::fsync(fd);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) return PosixError("fsync", path, errno);
    return Status::OK();
  }

  Status Ftruncate(int fd, uint64_t len, const std::string& path) override {
    int rc;
    do {
      rc = ::ftruncate(fd, static_cast<off_t>(len));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) return PosixError("ftruncate", path, errno);
    return Status::OK();
  }

  Status Seek(int fd, uint64_t offset, const std::string& path) override {
    if (::lseek(fd, static_cast<off_t>(offset), SEEK_SET) < 0) {
      return PosixError("lseek", path, errno);
    }
    return Status::OK();
  }

  Result<uint64_t> FileSize(int fd, const std::string& path) override {
    struct stat st;
    if (::fstat(fd, &st) != 0) return PosixError("fstat", path, errno);
    return static_cast<uint64_t>(st.st_size);
  }

  Status Truncate(const std::string& path, uint64_t len) override {
    int rc;
    do {
      rc = ::truncate(path.c_str(), static_cast<off_t>(len));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) return PosixError("truncate", path, errno);
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return PosixError("rename", from + " -> " + to, errno);
    }
    return Status::OK();
  }

  Status Unlink(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return PosixError("unlink", path, errno);
    return Status::OK();
  }

  Status Mkdir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError("mkdir", path, errno);
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return PosixError("opendir", dir, errno);
    std::vector<std::string> names;
    errno = 0;
    while (struct dirent* entry = ::readdir(d)) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(std::move(name));
      errno = 0;
    }
    int read_errno = errno;
    ::closedir(d);
    if (read_errno != 0) return PosixError("readdir", dir, read_errno);
    return names;
  }

  Status SyncDir(const std::string& dir) override {
    DVMS_ASSIGN_OR_RETURN(int fd, Open(dir, O_RDONLY | O_DIRECTORY, 0));
    Status st = Fsync(fd, dir);
    Close(fd);
    return st;
  }
};

/// Error kinds that make physical sense per op: reads can only EIO;
/// writes can EIO, fill the disk, or land short; fsync failures are their
/// own kind (plus ENOSPC — delayed-allocation filesystems report it at
/// sync time); namespace ops (open/rename) can hit EIO or a full disk,
/// unlink/list only EIO (removing or reading names needs no new blocks).
uint32_t OpKindMask(IoOp op) {
  auto bit = [](IoErrorKind k) { return 1u << static_cast<uint32_t>(k); };
  switch (op) {
    case IoOp::kOpen:
    case IoOp::kRename:
      return bit(IoErrorKind::kEio) | bit(IoErrorKind::kEnospc);
    case IoOp::kRead:
    case IoOp::kUnlink:
    case IoOp::kList:
      return bit(IoErrorKind::kEio);
    case IoOp::kWrite:
      return bit(IoErrorKind::kEio) | bit(IoErrorKind::kEnospc) |
             bit(IoErrorKind::kShortWrite);
    case IoOp::kFsync:
      return bit(IoErrorKind::kFsyncFail) | bit(IoErrorKind::kEnospc);
  }
  return 0;
}

std::atomic<Env*> g_env{nullptr};
std::once_flag g_env_once;

/// Owns the FaultEnv parsed from DVMS_IO_FAULTS, when the variable is set.
FaultEnv* EnvVarFaultEnv() {
  static FaultEnv* from_env =
      env::FaultEnvFromSpecOrDie(std::getenv("DVMS_IO_FAULTS"));
  return from_env;
}

}  // namespace

const char* IoOpToString(IoOp op) {
  size_t i = static_cast<size_t>(op);
  return i < kNumIoOps ? kOpNames[i] : "?";
}

const char* IoErrorKindToString(IoErrorKind kind) {
  size_t i = static_cast<size_t>(kind);
  return i < kNumIoErrorKinds ? kKindNames[i] : "?";
}

Result<IoFaultConfig> ParseIoFaultSpec(const std::string& spec) {
  // <seed>:<rate>[:token,...] where a token names an op or an error kind.
  size_t first = spec.find(':');
  if (first == std::string::npos) {
    return Status::InvalidArgument(
        "io-fault spec '" + spec + "' is not <seed>:<rate>[:op,...]");
  }
  size_t second = spec.find(':', first + 1);
  std::string seed_text = spec.substr(0, first);
  std::string rate_text = spec.substr(
      first + 1,
      second == std::string::npos ? std::string::npos : second - first - 1);

  IoFaultConfig config;
  char* end = nullptr;
  config.seed = std::strtoull(seed_text.c_str(), &end, 10);
  if (end == seed_text.c_str() || *end != '\0') {
    return Status::InvalidArgument("io-fault spec seed '" + seed_text +
                                   "' is not an unsigned integer");
  }
  end = nullptr;
  config.rate = std::strtod(rate_text.c_str(), &end);
  if (end == rate_text.c_str() || *end != '\0' || config.rate < 0.0 ||
      config.rate > 1.0) {
    return Status::InvalidArgument("io-fault spec rate '" + rate_text +
                                   "' is not a probability in [0, 1]");
  }
  if (second != std::string::npos) {
    uint32_t op_mask = 0;
    uint32_t kind_mask = 0;
    std::string tokens = spec.substr(second + 1);
    size_t pos = 0;
    while (pos <= tokens.size()) {
      size_t comma = tokens.find(',', pos);
      std::string token = tokens.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      if (!token.empty()) {
        bool known = false;
        for (size_t i = 0; i < kNumIoOps && !known; ++i) {
          if (IdentEquals(token, kOpNames[i])) {
            op_mask |= 1u << static_cast<uint32_t>(i);
            known = true;
          }
        }
        for (size_t i = 0; i < kNumIoErrorKinds && !known; ++i) {
          if (IdentEquals(token, kKindNames[i])) {
            kind_mask |= 1u << static_cast<uint32_t>(i);
            known = true;
          }
        }
        if (!known) {
          return Status::InvalidArgument(
              "io-fault spec token '" + token +
              "' is neither an op (open, read, write, fsync, rename, unlink, "
              "list) nor an error kind (eio, enospc, short-write, "
              "fsync-fail)");
        }
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    // A class the spec never mentions stays fully enabled.
    if (op_mask != 0) config.op_mask = op_mask;
    if (kind_mask != 0) config.kind_mask = kind_mask;
  }
  return config;
}

FaultEnv::FaultEnv(Env* base, IoFaultConfig config)
    : base_(base), config_(config) {
  Reset();
}

void FaultEnv::Reset() {
  for (size_t i = 0; i < kNumIoOps; ++i) {
    op_checks_[i].store(0, std::memory_order_relaxed);
  }
  checks_.store(0, std::memory_order_relaxed);
  injections_.store(0, std::memory_order_relaxed);
}

bool FaultEnv::Decide(IoOp op, IoErrorKind* kind) {
  size_t i = static_cast<size_t>(op);
  uint64_t n = op_checks_[i].fetch_add(1, std::memory_order_relaxed);
  checks_.fetch_add(1, std::memory_order_relaxed);
  if (disarmed_.load(std::memory_order_relaxed)) return false;
  // Recovery, rollback, and promotion run suppressed — the same scope that
  // silences logical FaultSite injection keeps the disk "healthy" for the
  // code undoing an earlier fault's damage.
  if (fault::Suppressed()) return false;
  if (!config_.OpEnabled(op) || config_.rate <= 0.0) return false;
  uint32_t candidates = OpKindMask(op) & config_.kind_mask;
  if (candidates == 0) return false;
  // Decisions are a pure function of (seed, op, per-op index): the op tag
  // sits in the top byte so schedules never collide across ops.
  uint64_t h = Mix64(config_.seed ^ Mix64((uint64_t(i) << 56) | n));
  double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  if (u >= config_.rate) return false;
  if (config_.max_injections != 0) {
    uint64_t claimed = injections_.load(std::memory_order_relaxed);
    do {
      if (claimed >= config_.max_injections) return false;
    } while (!injections_.compare_exchange_weak(claimed, claimed + 1,
                                                std::memory_order_relaxed));
  } else {
    injections_.fetch_add(1, std::memory_order_relaxed);
  }
  // Second draw picks the kind among those legal for the op and enabled by
  // the config, uniformly.
  int ordinal = static_cast<int>(Mix64(h) %
                                 static_cast<uint64_t>(
                                     __builtin_popcount(candidates)));
  for (uint32_t k = 0; k < kNumIoErrorKinds; ++k) {
    if (!((candidates >> k) & 1u)) continue;
    if (ordinal-- == 0) {
      *kind = static_cast<IoErrorKind>(k);
      return true;
    }
  }
  return false;
}

Status FaultEnv::Injected(IoOp op, IoErrorKind kind, const std::string& path) {
  std::string msg = std::string("io: injected ") + IoErrorKindToString(kind) +
                    " at " + IoOpToString(op) + " for " + path +
                    " [env-fault #" +
                    std::to_string(injections_.load(std::memory_order_relaxed)) +
                    "]";
  if (kind == IoErrorKind::kEnospc) msg += " [errno:ENOSPC]";
  return Status::ExecutionError(std::move(msg));
}

Result<int> FaultEnv::Open(const std::string& path, int flags, int mode) {
  IoErrorKind kind;
  if (Decide(IoOp::kOpen, &kind)) return Injected(IoOp::kOpen, kind, path);
  return base_->Open(path, flags, mode);
}

void FaultEnv::Close(int fd) { base_->Close(fd); }

Result<size_t> FaultEnv::Read(int fd, char* data, size_t n,
                              const std::string& path) {
  IoErrorKind kind;
  if (Decide(IoOp::kRead, &kind)) return Injected(IoOp::kRead, kind, path);
  return base_->Read(fd, data, n, path);
}

Result<size_t> FaultEnv::Write(int fd, const char* data, size_t n,
                               const std::string& path) {
  IoErrorKind kind;
  if (Decide(IoOp::kWrite, &kind)) {
    // A short write lands a prefix on disk and reports it truthfully — the
    // caller's WriteFully loop retries the remainder (and may fault again).
    // Too-small writes degrade to EIO so a 1-byte write can't livelock at
    // "wrote 0 of 1".
    if (kind == IoErrorKind::kShortWrite && n >= 2) {
      return base_->Write(fd, data, n / 2, path);
    }
    return Injected(IoOp::kWrite,
                    kind == IoErrorKind::kShortWrite ? IoErrorKind::kEio : kind,
                    path);
  }
  return base_->Write(fd, data, n, path);
}

Status FaultEnv::Fsync(int fd, const std::string& path) {
  IoErrorKind kind;
  if (Decide(IoOp::kFsync, &kind)) return Injected(IoOp::kFsync, kind, path);
  return base_->Fsync(fd, path);
}

Status FaultEnv::Ftruncate(int fd, uint64_t len, const std::string& path) {
  // Truncation rewrites file extent metadata; it draws from the write
  // schedule (there is no separate user-visible op for it).
  IoErrorKind kind;
  if (Decide(IoOp::kWrite, &kind)) {
    return Injected(IoOp::kWrite,
                    kind == IoErrorKind::kShortWrite ? IoErrorKind::kEio : kind,
                    path);
  }
  return base_->Ftruncate(fd, len, path);
}

Status FaultEnv::Seek(int fd, uint64_t offset, const std::string& path) {
  return base_->Seek(fd, offset, path);
}

Result<uint64_t> FaultEnv::FileSize(int fd, const std::string& path) {
  return base_->FileSize(fd, path);
}

Status FaultEnv::Truncate(const std::string& path, uint64_t len) {
  IoErrorKind kind;
  if (Decide(IoOp::kWrite, &kind)) {
    return Injected(IoOp::kWrite,
                    kind == IoErrorKind::kShortWrite ? IoErrorKind::kEio : kind,
                    path);
  }
  return base_->Truncate(path, len);
}

Status FaultEnv::Rename(const std::string& from, const std::string& to) {
  IoErrorKind kind;
  if (Decide(IoOp::kRename, &kind)) {
    return Injected(IoOp::kRename, kind, from + " -> " + to);
  }
  return base_->Rename(from, to);
}

Status FaultEnv::Unlink(const std::string& path) {
  IoErrorKind kind;
  if (Decide(IoOp::kUnlink, &kind)) return Injected(IoOp::kUnlink, kind, path);
  return base_->Unlink(path);
}

Status FaultEnv::Mkdir(const std::string& path) {
  IoErrorKind kind;
  if (Decide(IoOp::kOpen, &kind)) return Injected(IoOp::kOpen, kind, path);
  return base_->Mkdir(path);
}

Result<std::vector<std::string>> FaultEnv::ListDir(const std::string& dir) {
  IoErrorKind kind;
  if (Decide(IoOp::kList, &kind)) return Injected(IoOp::kList, kind, dir);
  return base_->ListDir(dir);
}

Status FaultEnv::SyncDir(const std::string& dir) {
  IoErrorKind kind;
  if (Decide(IoOp::kFsync, &kind)) return Injected(IoOp::kFsync, kind, dir);
  return base_->SyncDir(dir);
}

namespace env {

Env* Posix() {
  static PosixEnv posix;
  return &posix;
}

Env* Active() {
  Env* installed = g_env.load(std::memory_order_acquire);
  if (installed != nullptr) return installed;
  std::call_once(g_env_once, [] {
    Env* from_env = EnvVarFaultEnv();
    if (from_env != nullptr) {
      Env* expected = nullptr;
      g_env.compare_exchange_strong(expected, from_env,
                                    std::memory_order_release,
                                    std::memory_order_relaxed);
    }
  });
  Env* e = g_env.load(std::memory_order_acquire);
  return e != nullptr ? e : Posix();
}

Env* InstallProcessEnv(Env* e) {
  return g_env.exchange(e, std::memory_order_acq_rel);
}

FaultEnv* ActiveFault() { return dynamic_cast<FaultEnv*>(Active()); }

FaultEnv* FaultEnvFromSpecOrDie(const char* spec) {
  if (spec == nullptr || spec[0] == '\0') return nullptr;
  Result<IoFaultConfig> config = ParseIoFaultSpec(spec);
  if (!config.ok()) {
    std::fprintf(stderr, "fatal: DVMS_IO_FAULTS='%s' is malformed: %s\n", spec,
                 config.status().message().c_str());
    std::abort();
  }
  return new FaultEnv(Posix(), std::move(config).value());
}

Status ReadFully(Env* e, int fd, char* data, size_t n, const std::string& path,
                 size_t* bytes_read) {
  size_t off = 0;
  while (off < n) {
    Result<size_t> got = e->Read(fd, data + off, n - off, path);
    if (!got.ok()) {
      if (bytes_read != nullptr) *bytes_read = off;
      return got.status();
    }
    if (got.value() == 0) break;  // EOF
    off += got.value();
  }
  if (bytes_read != nullptr) *bytes_read = off;
  return Status::OK();
}

Status WriteFully(Env* e, int fd, const char* data, size_t n,
                  const std::string& path) {
  size_t off = 0;
  while (off < n) {
    DVMS_ASSIGN_OR_RETURN(size_t wrote,
                          e->Write(fd, data + off, n - off, path));
    off += wrote;
  }
  return Status::OK();
}

Status FsyncOrPoison(Env* e, int* fd, const std::string& path) {
  if (*fd < 0) {
    return Status::ExecutionError("io: fsync on poisoned fd for " + path);
  }
  Status st = e->Fsync(*fd, path);
  if (!st.ok()) {
    // fsyncgate: the kernel may have marked the dirty pages clean without
    // writing them. Closing the fd forbids both further writes and the
    // retry-fsync-and-call-it-durable mistake.
    e->Close(*fd);
    *fd = -1;
  }
  return st;
}

bool IsOutOfSpace(const Status& st) {
  return !st.ok() && st.message().find("[errno:ENOSPC]") != std::string::npos;
}

bool IsInjectedIoFault(const Status& st) {
  return !st.ok() && st.message().find("[env-fault") != std::string::npos;
}

bool IsEnvIoError(const Status& st) {
  return !st.ok() && st.message().compare(0, 4, "io: ") == 0;
}

bool IsNotFound(const Status& st) {
  return !st.ok() && st.message().find("[errno:ENOENT]") != std::string::npos;
}

}  // namespace env

}  // namespace dvms
