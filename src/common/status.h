#ifndef DVMS_COMMON_STATUS_H_
#define DVMS_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace dvms {

/// Error categories used across the DVMS code base. Mirrors the
/// Arrow/RocksDB convention of status-based error handling: no exceptions
/// cross module boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kBindError,
  kTypeError,
  kExecutionError,
  kUnsupported,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
  kReadOnlyReplica,
  kStorageDegraded,
  kUnavailable,
};

/// Returns a human-readable name for `code` (e.g. "ParseError").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error outcome. Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ReadOnlyReplica(std::string msg) {
    return Status(StatusCode::kReadOnlyReplica, std::move(msg));
  }
  static Status StorageDegraded(std::string msg) {
    return Status(StatusCode::kStorageDegraded, std::move(msg));
  }
  /// An endpoint (replica / primary) cannot be reached at all — detached,
  /// destroyed, or no eligible endpoint exists. Always retryable at the
  /// cluster-routing layer, never produced by a healthy engine.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Analogous to
/// arrow::Result<T>.
template <typename T>
class Result {
 public:
  /// Implicit so functions can `return value;` or `return status;`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                         // NOLINT(runtime/explicit)
      : data_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Requires ok(). The stored value.
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  /// The error status; Status::OK() if this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace dvms

/// Propagates a non-OK Status from an expression returning Status.
#define DVMS_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::dvms::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates `rexpr` (a Result<T>), propagates the error or assigns the
/// value to `lhs`.
#define DVMS_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                               \
  if (!var.ok()) return var.status();               \
  lhs = std::move(var).value()

#define DVMS_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define DVMS_ASSIGN_OR_RETURN_NAME(x, y) DVMS_ASSIGN_OR_RETURN_CONCAT(x, y)

#define DVMS_ASSIGN_OR_RETURN(lhs, rexpr)                                     \
  DVMS_ASSIGN_OR_RETURN_IMPL(DVMS_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), \
                             lhs, rexpr)

#endif  // DVMS_COMMON_STATUS_H_
