#ifndef DVMS_COMMON_THREAD_POOL_H_
#define DVMS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dvms {

/// One fixed-size chunk of a larger iteration space. Morsel boundaries are
/// a pure function of (total, grain) — never of thread count — so any
/// computation whose result depends on how work was chunked (e.g. partial
/// floating-point sums merged by morsel index) produces identical bits at
/// every thread count.
struct MorselRange {
  size_t index;  // 0-based morsel number
  size_t begin;  // first item (inclusive)
  size_t end;    // last item (exclusive)
};

/// Number of morsels covering [0, total) at `grain` items per morsel.
size_t MorselCount(size_t total, size_t grain);

/// The `index`-th morsel of [0, total) at `grain` items per morsel.
MorselRange MorselAt(size_t total, size_t grain, size_t index);

/// A work-stealing thread pool for morsel-driven parallel execution.
///
/// A pool of total parallelism N owns N-1 worker threads; the thread that
/// calls ParallelFor always participates as the N-th worker, so a pool of
/// size 1 runs everything inline with zero synchronization. Each
/// ParallelFor partitions its morsels into one contiguous segment per
/// participant; a participant first drains its own segment, then steals
/// morsels one at a time from the busiest-looking victim until no work
/// remains anywhere. Completion order is nondeterministic — callers that
/// need determinism index their outputs by MorselRange::index and merge
/// after ParallelFor returns.
class ThreadPool {
 public:
  /// `parallelism` is the total worker count including the caller; 0 and 1
  /// both mean "inline, no threads".
  explicit ThreadPool(size_t parallelism);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism including the calling thread.
  size_t num_threads() const { return workers_.size() + 1; }

  /// The process-default parallelism: the DVMS_THREADS environment
  /// variable when set to a positive integer, otherwise
  /// std::thread::hardware_concurrency() (at least 1).
  static size_t DefaultThreadCount();

  /// Lazily constructed process-wide pool of DefaultThreadCount() threads.
  static ThreadPool* Global();

  using MorselFn = std::function<void(const MorselRange&)>;

  /// Runs `fn` once per morsel of [0, total) split at `grain` items.
  /// Blocks until every morsel has run. `max_threads` caps the number of
  /// participants (0 = use the whole pool); with an effective parallelism
  /// of 1 — or when called from inside another ParallelFor — all morsels
  /// run inline on the calling thread in index order. `fn` must not throw.
  void ParallelFor(size_t total, size_t grain, size_t max_threads,
                   const MorselFn& fn);

 private:
  struct ForState;

  void WorkerLoop();
  static void RunParticipant(ForState* state, size_t self);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace dvms

#endif  // DVMS_COMMON_THREAD_POOL_H_
