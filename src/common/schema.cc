#include "common/schema.h"

#include <cctype>

namespace dvms {

bool IdentEquals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string IdentKey(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<size_t> Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (IdentEquals(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  auto idx = FindColumn(name);
  if (!idx) return Status::NotFound("no column named '" + name + "'");
  return *idx;
}

namespace {

bool TypesCompatible(ValueType declared, ValueType actual) {
  if (actual == ValueType::kNull) return true;
  if (declared == actual) return true;
  auto numeric = [](ValueType t) {
    return t == ValueType::kBool || t == ValueType::kInt64 ||
           t == ValueType::kDouble;
  };
  return numeric(declared) && numeric(actual);
}

}  // namespace

bool Schema::UnionCompatible(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!TypesCompatible(columns_[i].type, other.columns_[i].type) &&
        !TypesCompatible(other.columns_[i].type, columns_[i].type)) {
      return false;
    }
  }
  return true;
}

bool Schema::RowMatches(const Row& row) const {
  if (row.size() != columns_.size()) return false;
  for (size_t i = 0; i < row.size(); ++i) {
    if (!TypesCompatible(columns_[i].type, row[i].type())) return false;
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeToString(columns_[i].type);
  }
  return out;
}

}  // namespace dvms
