#ifndef DVMS_COMMON_FAULT_H_
#define DVMS_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace dvms {

/// Where in the engine a fault can be injected. Every site guards one
/// failure-prone boundary; the framework exists so the error paths behind
/// those boundaries are exercised deterministically instead of never.
enum class FaultSite {
  kStorageAppend = 0,  // VersionedTable::Append (storage write failed)
  kIvmApply,           // ViewMaintainer::RecomputeView (delta/recompute)
  kThreadPoolTask,     // ThreadPool morsel start (transient task failure)
  kRasterBand,         // rasterizer band fill (render device hiccup)
  kStreamTick,         // streaming-scheduler coefficient send
  kDurabilityIo,       // interaction-log append/fsync, snapshot write/rename
  kReplication,        // replica WAL tailing: segment listing/scan reads
};

inline constexpr size_t kNumFaultSites = 7;

const char* FaultSiteToString(FaultSite site);

/// Parses a site name ("storage", "ivm", "pool", "raster", "stream",
/// "durability", "replication" — case-insensitive, matching
/// FaultSiteToString).
Result<FaultSite> FaultSiteFromName(const std::string& name);

/// Configuration for one injector. The schedule is a pure function of
/// (seed, site, per-site check index): the n-th check at a site fires iff
/// hash(seed, site, n) maps below `rate` — reproducible run-to-run and
/// independent of how checks interleave across threads.
struct FaultConfig {
  uint64_t seed = 0;
  double rate = 0.0;           // probability a check fires, in [0, 1]
  uint32_t site_mask = ~0u;    // bit (int)site enables that site
  uint64_t max_injections = 0; // total budget; 0 = unlimited

  bool SiteEnabled(FaultSite site) const {
    return (site_mask >> static_cast<uint32_t>(site)) & 1u;
  }
};

/// Parses the DVMS_FAULTS syntax: `<seed>:<rate>[:site,site,...]`.
/// Omitted site list = all sites. Examples: "42:0.05",
/// "7:0.5:storage,raster", "1:1.0:ivm".
Result<FaultConfig> ParseFaultSpec(const std::string& spec);

/// A seeded, site-tagged fault injector. Thread-safe; all counters are
/// atomic. Decisions are deterministic per (seed, site, check-index).
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  /// Draws the next decision for `site`. Advances the site's check index.
  bool ShouldInject(FaultSite site);

  /// ExecutionError tagged with the site and injection ordinal when the
  /// draw fires; OK otherwise.
  Status MaybeInject(FaultSite site);

  uint64_t checks(FaultSite site) const {
    return checks_[static_cast<size_t>(site)].load(std::memory_order_relaxed);
  }
  uint64_t injections(FaultSite site) const {
    return injections_[static_cast<size_t>(site)].load(
        std::memory_order_relaxed);
  }
  uint64_t total_injections() const {
    return total_injections_.load(std::memory_order_relaxed);
  }
  /// Transient-retry draws consumed (see fault::RetryTransient).
  uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }
  void add_retries(uint64_t n) {
    retries_.fetch_add(n, std::memory_order_relaxed);
  }

  const FaultConfig& config() const { return config_; }

  /// Rewinds every schedule to check index 0 and zeroes the stats.
  void Reset();

 private:
  FaultConfig config_;
  std::atomic<uint64_t> checks_[kNumFaultSites];
  std::atomic<uint64_t> injections_[kNumFaultSites];
  std::atomic<uint64_t> total_injections_{0};
  std::atomic<uint64_t> retries_{0};
};

namespace fault {

/// The injector consulted by every site, or nullptr when faults are off.
/// Defaults to a process injector configured from the DVMS_FAULTS
/// environment variable (parsed once, lazily); ScopedFaultInjector
/// overrides it.
FaultInjector* Active();

/// Installs `injector` as the process injector (nullptr disables). Returns
/// the previous injector. Not for concurrent use against active traffic.
FaultInjector* InstallProcessInjector(FaultInjector* injector);

/// Builds a heap-allocated injector from a DVMS_FAULTS-style spec. A
/// malformed spec prints a diagnostic to stderr and aborts: a typo'd spec
/// silently disabling fault injection would un-test every error path the
/// operator believed was being exercised. Null/empty returns nullptr
/// (faults off). Exposed so tests can cover the abort path directly — the
/// real environment parse runs only once per process.
FaultInjector* InjectorFromEnvSpecOrDie(const char* spec);

/// Null-safe, suppression-aware check. The hot fault-free path is one
/// relaxed atomic load and a branch.
Status MaybeInject(FaultSite site);
bool ShouldInject(FaultSite site);

/// Bounded retry-with-backoff for transient faults: draws the site's
/// schedule up to `max_retries + 1` times and returns the number of faulted
/// draws consumed (recorded in the injector's retry stats). The caller
/// proceeds exactly once afterwards — a transient fault delays work, never
/// corrupts or duplicates it.
size_t RetryTransient(FaultSite site, size_t max_retries);

/// True while a FaultSuppressScope is alive on the calling thread.
/// ThreadPool captures this at ParallelFor submission and re-establishes it
/// on each participant, so fanned-out recovery work inherits the
/// submitter's suppression without silencing unrelated threads.
bool Suppressed();

}  // namespace fault

/// RAII: installs an injector built from `config` for the process and
/// restores the previous one on destruction. Intended for tests/benches.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultConfig config)
      : injector_(config),
        prev_(fault::InstallProcessInjector(&injector_)) {}
  ~ScopedFaultInjector() { fault::InstallProcessInjector(prev_); }
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

  FaultInjector* injector() { return &injector_; }

 private:
  FaultInjector injector_;
  FaultInjector* prev_;
};

/// RAII: suppresses fault injection on the owning thread while alive.
/// Recovery paths (interaction rollback, the restoring re-render, replica
/// batch apply) run under this so an injected fault cannot cascade into the
/// very code undoing its damage. Thread-local so a writer's rollback never
/// silences a concurrent reader's checks; work fanned onto pool threads
/// inherits the submitter's suppression via ThreadPool::ParallelFor.
class FaultSuppressScope {
 public:
  FaultSuppressScope();
  ~FaultSuppressScope();
  FaultSuppressScope(const FaultSuppressScope&) = delete;
  FaultSuppressScope& operator=(const FaultSuppressScope&) = delete;
};

}  // namespace dvms

#endif  // DVMS_COMMON_FAULT_H_
