#ifndef DVMS_COMMON_STRING_UTIL_H_
#define DVMS_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace dvms {

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Splits on a single character; empty fields preserved.
std::vector<std::string> Split(const std::string& s, char sep);

/// Strips ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// ASCII lower-case copy.
std::string ToLower(const std::string& s);

/// ASCII upper-case copy.
std::string ToUpper(const std::string& s);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace dvms

#endif  // DVMS_COMMON_STRING_UTIL_H_
