#ifndef DVMS_COMMON_ENV_H_
#define DVMS_COMMON_ENV_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dvms {

/// The storage-environment boundary: every byte the durability subsystem
/// moves to or from disk crosses one of these operations. Centralizing the
/// boundary buys two things at once — one shared implementation of the
/// fiddly POSIX retry semantics (EINTR, short reads, short writes) instead
/// of six hand-rolled loops, and a seam where a deterministic fault
/// decorator (FaultEnv) can simulate the disk failures production actually
/// sees: EIO, ENOSPC, short writes, failed fsyncs.
enum class IoOp {
  kOpen = 0,
  kRead,
  kWrite,
  kFsync,
  kRename,
  kUnlink,
  kList,
};

inline constexpr size_t kNumIoOps = 7;

const char* IoOpToString(IoOp op);

/// How an injected fault manifests. Writes can fail outright (EIO), run
/// out of space (ENOSPC), or land partially (short write — the prefix
/// reaches the file and the caller's loop must cope); fsync failures are
/// their own kind because their handling is categorically different
/// (fsyncgate: a failed fsync may have dropped dirty pages, so it must
/// never be retried-and-assumed-durable).
enum class IoErrorKind {
  kEio = 0,
  kEnospc,
  kShortWrite,
  kFsyncFail,
};

inline constexpr size_t kNumIoErrorKinds = 4;

const char* IoErrorKindToString(IoErrorKind kind);

/// Abstract storage environment. Primitives mirror POSIX but are
/// injectable; implementations handle EINTR internally (it never surfaces),
/// while short reads/writes DO surface as partial counts — looping lives in
/// the shared env::ReadFully / env::WriteFully helpers so every caller gets
/// identical retry semantics.
class Env {
 public:
  virtual ~Env() = default;

  /// open(2). Returns the fd.
  virtual Result<int> Open(const std::string& path, int flags, int mode) = 0;
  virtual void Close(int fd) = 0;

  /// read(2): up to `n` bytes; may return fewer. 0 = EOF.
  virtual Result<size_t> Read(int fd, char* data, size_t n,
                              const std::string& path) = 0;
  /// write(2): may write fewer than `n` bytes (short write).
  virtual Result<size_t> Write(int fd, const char* data, size_t n,
                               const std::string& path) = 0;
  virtual Status Fsync(int fd, const std::string& path) = 0;
  virtual Status Ftruncate(int fd, uint64_t len, const std::string& path) = 0;
  virtual Status Seek(int fd, uint64_t offset, const std::string& path) = 0;
  virtual Result<uint64_t> FileSize(int fd, const std::string& path) = 0;

  virtual Status Truncate(const std::string& path, uint64_t len) = 0;
  virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual Status Unlink(const std::string& path) = 0;
  /// mkdir(2); an existing directory is success.
  virtual Status Mkdir(const std::string& path) = 0;
  /// Entry names (no paths, no "."/"..") of `dir`.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;
  /// fsync of the directory itself (durable renames/creates).
  virtual Status SyncDir(const std::string& dir) = 0;
};

/// Configuration for one FaultEnv. The schedule is a pure function of
/// (seed, op, per-op check index) — reproducible run-to-run, independent of
/// interleaving — mirroring common/fault.h. `op_mask` selects which
/// operations can fault; `kind_mask` which error kinds may be drawn (each
/// op intersects it with the kinds that make sense for that op).
struct IoFaultConfig {
  uint64_t seed = 0;
  double rate = 0.0;            // probability a check fires, in [0, 1]
  uint32_t op_mask = ~0u;       // bit (int)op enables that op
  uint32_t kind_mask = ~0u;     // bit (int)kind enables that kind
  uint64_t max_injections = 0;  // total budget; 0 = unlimited

  bool OpEnabled(IoOp op) const {
    return (op_mask >> static_cast<uint32_t>(op)) & 1u;
  }
  bool KindEnabled(IoErrorKind kind) const {
    return (kind_mask >> static_cast<uint32_t>(kind)) & 1u;
  }
};

/// Parses the DVMS_IO_FAULTS syntax: `<seed>:<rate>[:token,...]` where each
/// token is an op name (open, read, write, fsync, rename, unlink, list) or
/// an error kind (eio, enospc, short-write, fsync-fail). Op tokens restrict
/// op_mask, kind tokens restrict kind_mask; an omitted class stays fully
/// enabled. Examples: "42:0.05", "7:1.0:write,fsync", "3:0.5:enospc",
/// "1:1.0:write,short-write".
Result<IoFaultConfig> ParseIoFaultSpec(const std::string& spec);

/// Deterministic disk-fault decorator: delegates to `base` but fails a
/// seeded fraction of operations with EIO / ENOSPC / short writes / failed
/// fsyncs. Injection respects fault::Suppressed() — recovery, rollback,
/// and replica apply paths stay exempt, exactly like FaultSite injection —
/// so it composes with the existing chaos machinery. Thread-safe.
class FaultEnv : public Env {
 public:
  FaultEnv(Env* base, IoFaultConfig config);

  Result<int> Open(const std::string& path, int flags, int mode) override;
  void Close(int fd) override;
  Result<size_t> Read(int fd, char* data, size_t n,
                      const std::string& path) override;
  Result<size_t> Write(int fd, const char* data, size_t n,
                       const std::string& path) override;
  Status Fsync(int fd, const std::string& path) override;
  Status Ftruncate(int fd, uint64_t len, const std::string& path) override;
  Status Seek(int fd, uint64_t offset, const std::string& path) override;
  Result<uint64_t> FileSize(int fd, const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t len) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Unlink(const std::string& path) override;
  Status Mkdir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status SyncDir(const std::string& dir) override;

  uint64_t checks() const {
    return checks_.load(std::memory_order_relaxed);
  }
  uint64_t injections() const {
    return injections_.load(std::memory_order_relaxed);
  }
  const IoFaultConfig& config() const { return config_; }
  /// Rewinds every schedule to check index 0 and zeroes the stats.
  void Reset();
  /// Stops all further injection (as if the disk healed); existing
  /// counters are kept. Used by tests to model "space freed up".
  void Disarm() { disarmed_.store(true, std::memory_order_relaxed); }
  void Rearm() { disarmed_.store(false, std::memory_order_relaxed); }

 private:
  /// Draws the next decision for `op`; true = inject, with `*kind` set.
  bool Decide(IoOp op, IoErrorKind* kind);
  Status Injected(IoOp op, IoErrorKind kind, const std::string& path);

  Env* base_;
  IoFaultConfig config_;
  std::atomic<uint64_t> op_checks_[kNumIoOps];
  std::atomic<uint64_t> checks_{0};
  std::atomic<uint64_t> injections_{0};
  std::atomic<bool> disarmed_{false};
};

namespace env {

/// The real POSIX environment (process-lifetime singleton).
Env* Posix();

/// The environment every durability I/O call should use: an installed
/// override if present, else a FaultEnv built once from the DVMS_IO_FAULTS
/// environment variable (malformed specs fail loudly, mirroring
/// DVMS_FAULTS), else the plain POSIX env.
Env* Active();

/// Installs `e` as the process environment override (nullptr restores the
/// default resolution). Returns the previous override. Not for concurrent
/// use against active traffic.
Env* InstallProcessEnv(Env* e);

/// The active FaultEnv, or nullptr when the active env is not fault
/// injecting. For observability (dvms_storage) and tests.
FaultEnv* ActiveFault();

/// Builds a heap-allocated FaultEnv over Posix() from a DVMS_IO_FAULTS
/// spec. A malformed spec prints a diagnostic and aborts — a typo silently
/// disabling injection would un-test every error path the operator believed
/// was being exercised. Null/empty returns nullptr. Exposed for tests.
FaultEnv* FaultEnvFromSpecOrDie(const char* spec);

/// Reads exactly `n` bytes unless EOF intervenes: loops over Env::Read,
/// absorbing short reads. EOF before `n` bytes returns OK with
/// `*bytes_read < n` — the caller decides whether a short object is a
/// clean boundary (0 read) or torn data (partial read).
Status ReadFully(Env* e, int fd, char* data, size_t n,
                 const std::string& path, size_t* bytes_read);

/// Writes all `n` bytes: loops over Env::Write, absorbing short writes.
Status WriteFully(Env* e, int fd, const char* data, size_t n,
                  const std::string& path);

/// Fsyncgate-safe fsync: on failure the fd is closed and `*fd` set to -1 so
/// no caller can write more bytes through it or retry the fsync and mistake
/// a later success for durability of the earlier data (after a failed
/// fsync the kernel may have dropped the dirty pages; only re-verification
/// against the file, or a rewrite, can re-establish what is on disk).
Status FsyncOrPoison(Env* e, int* fd, const std::string& path);

/// True when `st` reports an out-of-space condition (real ENOSPC/EDQUOT or
/// an injected enospc fault) — the transient, degradable error class.
bool IsOutOfSpace(const Status& st);

/// True when `st` came from FaultEnv rather than a real device.
bool IsInjectedIoFault(const Status& st);

/// True when `st` was produced by the Env layer (real or injected device
/// error) rather than by content validation. Every Env error carries the
/// "io: " prefix by construction, so callers that read checksummed files
/// can separate "the device failed — maybe transient, retry later" from
/// "the bytes are wrong — corruption" without guessing.
bool IsEnvIoError(const Status& st);

/// True when `st` reports ENOENT — e.g. a file that a concurrent prune
/// removed between listing and opening, which is not an error at all for
/// scan-style callers.
bool IsNotFound(const Status& st);

}  // namespace env

/// RAII: installs an env override for the process and restores the
/// previous one on destruction. Intended for tests/benches.
class ScopedEnv {
 public:
  explicit ScopedEnv(Env* e) : prev_(env::InstallProcessEnv(e)) {}
  ~ScopedEnv() { env::InstallProcessEnv(prev_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  Env* prev_;
};

}  // namespace dvms

#endif  // DVMS_COMMON_ENV_H_
