#ifndef DVMS_COMMON_RNG_H_
#define DVMS_COMMON_RNG_H_

#include <cstdint>

namespace dvms {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64). Every
/// stochastic component in the repository draws from an explicitly seeded
/// Rng so benches and tests are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  /// Exponential with the given mean (mean > 0).
  double Exponential(double mean);

  /// Standard normal via Box-Muller, scaled to (mean, stddev).
  double Normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// Fork a statistically independent child stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace dvms

#endif  // DVMS_COMMON_RNG_H_
