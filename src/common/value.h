#ifndef DVMS_COMMON_VALUE_H_
#define DVMS_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace dvms {

/// Column/value types supported by the engine.
enum class ValueType {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
};

/// Returns "NULL", "BOOL", "INT64", "DOUBLE", or "STRING".
const char* ValueTypeToString(ValueType type);

/// A dynamically typed SQL value. NULL compares equal to NULL for grouping
/// purposes but is falsy in predicates (three-valued logic is collapsed to
/// "NULL predicate == false", which is what DeVIL needs).
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Storage(b)); }
  static Value Int(int64_t i) { return Value(Storage(i)); }
  static Value Double(double d) { return Value(Storage(d)); }
  static Value String(std::string s) { return Value(Storage(std::move(s))); }

  ValueType type() const {
    switch (data_.index()) {
      case 0:
        return ValueType::kNull;
      case 1:
        return ValueType::kBool;
      case 2:
        return ValueType::kInt64;
      case 3:
        return ValueType::kDouble;
      default:
        return ValueType::kString;
    }
  }

  bool is_null() const { return data_.index() == 0; }

  /// Typed accessors. Callers must check type() first; accessing the wrong
  /// alternative is a programming error.
  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const { return std::get<std::string>(data_); }

  /// Numeric coercion: INT64 and DOUBLE (and BOOL as 0/1) convert to double.
  /// Returns an error for STRING/NULL.
  Result<double> AsDouble() const;

  /// Numeric coercion to int64 (truncating for DOUBLE).
  Result<int64_t> AsInt() const;

  /// Truthiness for predicate evaluation: NULL -> false, BOOL -> itself,
  /// numbers -> != 0, STRING -> non-empty.
  bool IsTruthy() const;

  /// SQL-style equality used by joins/grouping: NULL == NULL is true here;
  /// INT64 and DOUBLE compare numerically.
  bool Equals(const Value& other) const;

  /// Total ordering for ORDER BY and map keys: NULL < BOOL < numbers <
  /// STRING; numbers compare numerically across INT64/DOUBLE.
  int Compare(const Value& other) const;

  /// Render for debugging / bench tables. Strings are unquoted.
  std::string ToString() const;

  /// Stable hash consistent with Equals.
  size_t Hash() const;

  friend bool operator==(const Value& a, const Value& b) { return a.Equals(b); }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }

 private:
  using Storage =
      std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Storage data) : data_(std::move(data)) {}

  Storage data_;
};

/// Total order on doubles for sorting/comparison: -0.0 == 0.0, and NaN
/// sorts after every other double (including +inf) with NaN == NaN. This
/// keeps Value::Compare a strict weak ordering in the presence of NaN.
int CompareDoublesTotal(double a, double b);

/// Exact comparison of an int64 against a double: classifies the double
/// against the int64 range before any widening, so integers of magnitude
/// > 2^53 are never misordered by a lossy double conversion. NaN compares
/// greater than every integer (consistent with CompareDoublesTotal).
int CompareInt64Double(int64_t a, double b);

/// A tuple of values. Row layout is positional against a Schema.
using Row = std::vector<Value>;

/// Hash of an entire row (order-sensitive).
size_t HashRow(const Row& row);

/// True iff rows have equal length and pairwise Equals values.
bool RowsEqual(const Row& a, const Row& b);

/// Lexicographic comparison of two rows via Value::Compare.
int CompareRows(const Row& a, const Row& b);

/// Functors for using Row in unordered containers.
struct RowHash {
  size_t operator()(const Row& row) const { return HashRow(row); }
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const { return RowsEqual(a, b); }
};

}  // namespace dvms

#endif  // DVMS_COMMON_VALUE_H_
