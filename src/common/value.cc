#include "common/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

namespace dvms {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

Result<double> Value::AsDouble() const {
  switch (type()) {
    case ValueType::kBool:
      return bool_value() ? 1.0 : 0.0;
    case ValueType::kInt64:
      return static_cast<double>(int_value());
    case ValueType::kDouble:
      return double_value();
    default:
      return Status::TypeError(std::string("cannot convert ") +
                               ValueTypeToString(type()) + " to DOUBLE");
  }
}

Result<int64_t> Value::AsInt() const {
  switch (type()) {
    case ValueType::kBool:
      return static_cast<int64_t>(bool_value());
    case ValueType::kInt64:
      return int_value();
    case ValueType::kDouble:
      return static_cast<int64_t>(double_value());
    default:
      return Status::TypeError(std::string("cannot convert ") +
                               ValueTypeToString(type()) + " to INT64");
  }
}

bool Value::IsTruthy() const {
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kBool:
      return bool_value();
    case ValueType::kInt64:
      return int_value() != 0;
    case ValueType::kDouble:
      return double_value() != 0.0;
    case ValueType::kString:
      return !string_value().empty();
  }
  return false;
}

namespace {

bool IsNumeric(ValueType t) {
  return t == ValueType::kBool || t == ValueType::kInt64 ||
         t == ValueType::kDouble;
}

double NumericOf(const Value& v) {
  switch (v.type()) {
    case ValueType::kBool:
      return v.bool_value() ? 1.0 : 0.0;
    case ValueType::kInt64:
      return static_cast<double>(v.int_value());
    default:
      return v.double_value();
  }
}

/// Shared numeric comparison for Compare/Equals: exact for int64 pairs and
/// int64-vs-double, total-ordered (NaN-last, NaN == NaN) for everything
/// that goes through doubles. BOOL participates via its 0/1 image, which
/// is always exactly representable.
int CompareNumericValues(const Value& a, const Value& b) {
  ValueType ta = a.type(), tb = b.type();
  if (ta == ValueType::kInt64 && tb == ValueType::kInt64) {
    int64_t x = a.int_value(), y = b.int_value();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (ta == ValueType::kInt64 && tb == ValueType::kDouble) {
    return CompareInt64Double(a.int_value(), b.double_value());
  }
  if (ta == ValueType::kDouble && tb == ValueType::kInt64) {
    return -CompareInt64Double(b.int_value(), a.double_value());
  }
  return CompareDoublesTotal(NumericOf(a), NumericOf(b));
}

}  // namespace

int CompareDoublesTotal(double a, double b) {
  bool na = std::isnan(a), nb = std::isnan(b);
  if (na || nb) return na == nb ? 0 : (na ? 1 : -1);
  return a < b ? -1 : (a > b ? 1 : 0);
}

int CompareInt64Double(int64_t a, double b) {
  if (std::isnan(b)) return -1;  // every number sorts before NaN
  // 2^63 and -2^63 are exactly representable as doubles, so classifying b
  // against the int64 range is exact.
  constexpr double kTwo63 = 9223372036854775808.0;
  if (b >= kTwo63) return -1;
  if (b < -kTwo63) return 1;
  // b is in [-2^63, 2^63): floor(b) fits in int64 and the cast is exact.
  double fb = std::floor(b);
  int64_t ib = static_cast<int64_t>(fb);
  if (a < ib) return -1;
  if (a > ib) return 1;
  // a == floor(b): equal unless b carries a fractional part.
  return b > fb ? -1 : 0;
}

bool Value::Equals(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (IsNumeric(type()) && IsNumeric(other.type())) {
    return CompareNumericValues(*this, other) == 0;
  }
  if (type() != other.type()) return false;
  if (type() == ValueType::kString) {
    return string_value() == other.string_value();
  }
  return false;
}

int Value::Compare(const Value& other) const {
  auto rank = [](ValueType t) {
    switch (t) {
      case ValueType::kNull:
        return 0;
      case ValueType::kBool:
      case ValueType::kInt64:
      case ValueType::kDouble:
        return 1;
      case ValueType::kString:
        return 2;
    }
    return 3;
  };
  int ra = rank(type());
  int rb = rank(other.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;
    case 1:
      return CompareNumericValues(*this, other);
    default: {
      const std::string& a = string_value();
      const std::string& b = other.string_value();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return bool_value() ? "true" : "false";
    case ValueType::kInt64:
      return std::to_string(int_value());
    case ValueType::kDouble: {
      double d = double_value();
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        // Render integral doubles without a trailing ".000000".
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f", d);
        return buf;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", d);
      return buf;
    }
    case ValueType::kString:
      return string_value();
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kBool:
    case ValueType::kInt64:
    case ValueType::kDouble: {
      // Hash all numerics via their double image so Equals-equal values
      // hash equal. (Int64s beyond 2^53 may collide with nearby doubles
      // they no longer Equal; collisions are fine, inconsistency is not.)
      double d = NumericOf(*this);
      if (d == 0.0) d = 0.0;  // normalize -0.0
      if (std::isnan(d)) return 0x7ff8dead5eedf00dULL;  // NaN == NaN now
      return std::hash<double>()(d);
    }
    case ValueType::kString:
      return std::hash<std::string>()(string_value());
  }
  return 0;
}

size_t HashRow(const Row& row) {
  size_t h = 0x51ed2701a3c5e891ULL;
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool RowsEqual(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].Equals(b[i])) return false;
  }
  return true;
}

int CompareRows(const Row& a, const Row& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

}  // namespace dvms
