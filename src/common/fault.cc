#include "common/fault.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/schema.h"

namespace dvms {

namespace {

const char* kSiteNames[kNumFaultSites] = {"storage", "ivm",        "pool",
                                          "raster",  "stream",     "durability",
                                          "replication"};

/// SplitMix64 finalizer: a high-quality 64 -> 64 mix.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::atomic<FaultInjector*> g_injector{nullptr};
/// Suppression is per-thread: a writer's rollback must not silence a
/// concurrent reader's checks. ThreadPool re-establishes the submitter's
/// suppression on participants (see ForState::fault_suppressed).
thread_local int t_suppress_depth = 0;
std::once_flag g_env_once;

/// Owns the injector parsed from DVMS_FAULTS, when the variable is set.
FaultInjector* EnvInjector() {
  static FaultInjector* env_injector =
      fault::InjectorFromEnvSpecOrDie(std::getenv("DVMS_FAULTS"));
  return env_injector;
}

}  // namespace

const char* FaultSiteToString(FaultSite site) {
  size_t i = static_cast<size_t>(site);
  return i < kNumFaultSites ? kSiteNames[i] : "?";
}

Result<FaultSite> FaultSiteFromName(const std::string& name) {
  for (size_t i = 0; i < kNumFaultSites; ++i) {
    if (IdentEquals(name, kSiteNames[i])) return static_cast<FaultSite>(i);
  }
  return Status::InvalidArgument("unknown fault site '" + name +
                                 "' (expected storage, ivm, pool, raster, "
                                 "stream, durability, or replication)");
}

Result<FaultConfig> ParseFaultSpec(const std::string& spec) {
  // <seed>:<rate>[:site,...]
  size_t first = spec.find(':');
  if (first == std::string::npos) {
    return Status::InvalidArgument(
        "fault spec '" + spec + "' is not <seed>:<rate>[:site,...]");
  }
  size_t second = spec.find(':', first + 1);
  std::string seed_text = spec.substr(0, first);
  std::string rate_text = spec.substr(
      first + 1,
      second == std::string::npos ? std::string::npos : second - first - 1);

  FaultConfig config;
  char* end = nullptr;
  config.seed = std::strtoull(seed_text.c_str(), &end, 10);
  if (end == seed_text.c_str() || *end != '\0') {
    return Status::InvalidArgument("fault spec seed '" + seed_text +
                                   "' is not an unsigned integer");
  }
  end = nullptr;
  config.rate = std::strtod(rate_text.c_str(), &end);
  if (end == rate_text.c_str() || *end != '\0' || config.rate < 0.0 ||
      config.rate > 1.0) {
    return Status::InvalidArgument("fault spec rate '" + rate_text +
                                   "' is not a probability in [0, 1]");
  }
  if (second != std::string::npos) {
    config.site_mask = 0;
    std::string sites = spec.substr(second + 1);
    size_t pos = 0;
    while (pos <= sites.size()) {
      size_t comma = sites.find(',', pos);
      std::string token = sites.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      if (!token.empty()) {
        DVMS_ASSIGN_OR_RETURN(FaultSite site, FaultSiteFromName(token));
        config.site_mask |= 1u << static_cast<uint32_t>(site);
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (config.site_mask == 0) {
      return Status::InvalidArgument("fault spec '" + spec +
                                     "' enables no sites");
    }
  }
  return config;
}

FaultInjector::FaultInjector(FaultConfig config) : config_(config) {
  Reset();
}

void FaultInjector::Reset() {
  for (size_t i = 0; i < kNumFaultSites; ++i) {
    checks_[i].store(0, std::memory_order_relaxed);
    injections_[i].store(0, std::memory_order_relaxed);
  }
  total_injections_.store(0, std::memory_order_relaxed);
  retries_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::ShouldInject(FaultSite site) {
  size_t i = static_cast<size_t>(site);
  uint64_t n = checks_[i].fetch_add(1, std::memory_order_relaxed);
  if (!config_.SiteEnabled(site) || config_.rate <= 0.0) return false;
  uint64_t h = Mix64(config_.seed ^ Mix64((uint64_t(i) << 56) | n));
  // Top 53 bits -> uniform double in [0, 1).
  double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  if (u >= config_.rate) return false;
  if (config_.max_injections != 0) {
    // Budgeted mode: claim one injection slot; past the budget the
    // injector goes quiet and the counter stays at the budget.
    uint64_t claimed = total_injections_.load(std::memory_order_relaxed);
    do {
      if (claimed >= config_.max_injections) return false;
    } while (!total_injections_.compare_exchange_weak(
        claimed, claimed + 1, std::memory_order_relaxed));
  } else {
    total_injections_.fetch_add(1, std::memory_order_relaxed);
  }
  injections_[i].fetch_add(1, std::memory_order_relaxed);
  return true;
}

Status FaultInjector::MaybeInject(FaultSite site) {
  if (!ShouldInject(site)) return Status::OK();
  return Status::ExecutionError(
      std::string("injected fault at site '") + FaultSiteToString(site) +
      "' (#" + std::to_string(total_injections()) + ")");
}

namespace fault {

FaultInjector* Active() {
  FaultInjector* installed = g_injector.load(std::memory_order_acquire);
  if (installed != nullptr) return installed;
  std::call_once(g_env_once, [] {
    FaultInjector* env = EnvInjector();
    if (env != nullptr) {
      FaultInjector* expected = nullptr;
      g_injector.compare_exchange_strong(expected, env,
                                         std::memory_order_release,
                                         std::memory_order_relaxed);
    }
  });
  return g_injector.load(std::memory_order_acquire);
}

FaultInjector* InstallProcessInjector(FaultInjector* injector) {
  return g_injector.exchange(injector, std::memory_order_acq_rel);
}

FaultInjector* InjectorFromEnvSpecOrDie(const char* spec) {
  if (spec == nullptr || spec[0] == '\0') return nullptr;
  Result<FaultConfig> config = ParseFaultSpec(spec);
  if (!config.ok()) {
    std::fprintf(stderr, "fatal: DVMS_FAULTS='%s' is malformed: %s\n", spec,
                 config.status().message().c_str());
    std::abort();
  }
  return new FaultInjector(std::move(config).value());
}

Status MaybeInject(FaultSite site) {
  FaultInjector* injector = Active();
  if (injector == nullptr || t_suppress_depth > 0) {
    return Status::OK();
  }
  return injector->MaybeInject(site);
}

bool ShouldInject(FaultSite site) {
  FaultInjector* injector = Active();
  if (injector == nullptr || t_suppress_depth > 0) {
    return false;
  }
  return injector->ShouldInject(site);
}

size_t RetryTransient(FaultSite site, size_t max_retries) {
  FaultInjector* injector = Active();
  if (injector == nullptr || t_suppress_depth > 0) {
    return 0;
  }
  size_t faulted = 0;
  while (faulted <= max_retries && injector->ShouldInject(site)) {
    ++faulted;
  }
  if (faulted > 0) injector->add_retries(faulted);
  return faulted;
}

bool Suppressed() { return t_suppress_depth > 0; }

}  // namespace fault

FaultSuppressScope::FaultSuppressScope() { ++t_suppress_depth; }

FaultSuppressScope::~FaultSuppressScope() { --t_suppress_depth; }

}  // namespace dvms
