#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <optional>
#include <string>

#include "common/fault.h"
#include "governor/governor.h"
#include "obs/trace.h"

namespace dvms {

namespace {

/// True while the current thread is executing inside a ParallelFor; nested
/// parallel regions degrade to inline execution instead of deadlocking the
/// pool on itself.
thread_local bool t_in_parallel_region = false;

}  // namespace

size_t MorselCount(size_t total, size_t grain) {
  if (total == 0) return 0;
  if (grain == 0) grain = 1;
  return (total + grain - 1) / grain;
}

MorselRange MorselAt(size_t total, size_t grain, size_t index) {
  if (grain == 0) grain = 1;
  size_t begin = index * grain;
  size_t end = begin + grain;
  if (end > total) end = total;
  return {index, begin, end};
}

size_t ThreadPool::DefaultThreadCount() {
  const char* env = std::getenv("DVMS_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<size_t>(parsed);
    }
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

ThreadPool* ThreadPool::Global() {
  static ThreadPool pool(DefaultThreadCount());
  return &pool;
}

ThreadPool::ThreadPool(size_t parallelism) {
  size_t workers = parallelism > 1 ? parallelism - 1 : 0;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    task();
  }
}

/// Shared state for one ParallelFor call. Lives on the caller's stack; the
/// caller does not return until `joined` participants reach `expected`, so
/// worker tasks never outlive it.
struct ThreadPool::ForState {
  size_t total = 0;
  size_t grain = 1;
  const MorselFn* fn = nullptr;
  /// Governor context of the submitting thread, installed around each
  /// participant so pool workers observe the submitter's deadline/budget
  /// (contexts are thread-local now that readers run concurrently).
  QueryContext* governor_ctx = nullptr;
  /// Suppression state of the submitting thread, re-established around each
  /// participant: fault/governor suppression is thread-local (a writer's
  /// rollback must not silence concurrent readers), but rollback and
  /// recovery work fans out here and must stay suppressed on the workers.
  bool fault_suppressed = false;
  bool governor_suppressed = false;

  /// Per-participant contiguous run of morsel indices. `next` is bumped by
  /// the owner and by thieves; claims at or past `end` are no-ops.
  struct Segment {
    std::atomic<size_t> next{0};
    size_t end = 0;
  };
  std::vector<Segment> segments;

  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t joined = 0;
  size_t expected = 0;
};

void ThreadPool::RunParticipant(ForState* state, size_t self) {
  t_in_parallel_region = true;
  QueryContext* prev_ctx = governor::InstallContext(state->governor_ctx);
  std::optional<FaultSuppressScope> fault_suppress;
  if (state->fault_suppressed) fault_suppress.emplace();
  std::optional<GovernorSuppressScope> governor_suppress;
  if (state->governor_suppressed) governor_suppress.emplace();
  auto run = [state](size_t morsel) {
    // Transient task-start faults are absorbed here with bounded retry:
    // the morsel then runs exactly once, so results stay bit-identical.
    fault::RetryTransient(FaultSite::kThreadPoolTask, 3);
    (*state->fn)(MorselAt(state->total, state->grain, morsel));
  };
  // Drain the participant's own segment.
  ForState::Segment& own = state->segments[self];
  for (size_t i = own.next.fetch_add(1); i < own.end; i = own.next.fetch_add(1)) {
    run(i);
  }
  // Steal: sweep the other segments until a full pass finds no morsel left.
  const size_t p = state->segments.size();
  size_t stolen = 0;
  bool found = true;
  while (found) {
    found = false;
    for (size_t k = 1; k < p; ++k) {
      ForState::Segment& victim = state->segments[(self + k) % p];
      size_t i = victim.next.fetch_add(1);
      if (i < victim.end) {
        run(i);
        found = true;
        ++stolen;
      }
    }
  }
  if (stolen > 0) obs::Count("pool.steals", stolen);
  governor::InstallContext(prev_ctx);
  t_in_parallel_region = false;
}

void ThreadPool::ParallelFor(size_t total, size_t grain, size_t max_threads,
                             const MorselFn& fn) {
  size_t morsels = MorselCount(total, grain);
  if (morsels == 0) return;
  if (obs::Enabled()) {
    obs::Count("pool.parallel_fors");
    obs::Count("pool.morsels", morsels);
  }
  size_t parallelism = num_threads();
  if (max_threads != 0 && max_threads < parallelism) parallelism = max_threads;
  if (parallelism > morsels) parallelism = morsels;
  if (parallelism <= 1 || t_in_parallel_region) {
    for (size_t i = 0; i < morsels; ++i) {
      fault::RetryTransient(FaultSite::kThreadPoolTask, 3);
      fn(MorselAt(total, grain, i));
    }
    return;
  }

  ForState state;
  state.total = total;
  state.grain = grain == 0 ? 1 : grain;
  state.fn = &fn;
  state.governor_ctx = governor::Current();
  state.fault_suppressed = fault::Suppressed();
  state.governor_suppressed = governor::Suppressed();
  state.segments = std::vector<ForState::Segment>(parallelism);
  // Contiguous partition of morsel indices: participant i owns
  // [i*per + min(i, extra), ...) — balanced to within one morsel.
  size_t per = morsels / parallelism;
  size_t extra = morsels % parallelism;
  size_t cursor = 0;
  for (size_t i = 0; i < parallelism; ++i) {
    size_t len = per + (i < extra ? 1 : 0);
    state.segments[i].next.store(cursor, std::memory_order_relaxed);
    state.segments[i].end = cursor + len;
    cursor += len;
  }
  state.expected = parallelism - 1;

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 1; i < parallelism; ++i) {
      queue_.emplace_back([&state, i] {
        RunParticipant(&state, i);
        // Notify while holding done_mu: the caller (who owns `state` on its
        // stack) can only observe joined == expected under the mutex, i.e.
        // after this worker's notify has finished touching the cv — so the
        // ForState never dies under a signaling thread.
        std::lock_guard<std::mutex> done_lock(state.done_mu);
        ++state.joined;
        state.done_cv.notify_one();
      });
    }
    // Depth after this enqueue: backlog the workers are facing. The obs
    // registry lock is a leaf, so taking it under mu_ cannot deadlock.
    if (obs::Enabled()) {
      obs::Observe("pool.queue_depth", static_cast<double>(queue_.size()));
    }
  }
  cv_.notify_all();

  RunParticipant(&state, 0);

  std::unique_lock<std::mutex> done_lock(state.done_mu);
  state.done_cv.wait(done_lock,
                     [&state] { return state.joined == state.expected; });
}

}  // namespace dvms
