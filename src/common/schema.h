#ifndef DVMS_COMMON_SCHEMA_H_
#define DVMS_COMMON_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace dvms {

/// A named, typed column.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// An ordered list of columns describing a relation's layout.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Case-insensitive lookup of `name`; nullopt if absent.
  std::optional<size_t> FindColumn(const std::string& name) const;

  /// Like FindColumn but returns a NotFound status naming the column.
  Result<size_t> IndexOf(const std::string& name) const;

  void AddColumn(Column column) { columns_.push_back(std::move(column)); }

  /// True iff both schemas have the same arity and pairwise equal types
  /// (names ignored) — the SQL union-compatibility test.
  bool UnionCompatible(const Schema& other) const;

  /// True iff `row` has matching arity and each value is NULL or of the
  /// declared column type (numeric columns accept any numeric value).
  bool RowMatches(const Row& row) const;

  /// "name:TYPE, name:TYPE, ..."
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

/// Case-insensitive string equality for SQL identifiers.
bool IdentEquals(const std::string& a, const std::string& b);

/// Lower-cases ASCII identifiers for use as map keys.
std::string IdentKey(const std::string& s);

}  // namespace dvms

#endif  // DVMS_COMMON_SCHEMA_H_
