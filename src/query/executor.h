#ifndef DVMS_QUERY_EXECUTOR_H_
#define DVMS_QUERY_EXECUTOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "expr/eval.h"
#include "expr/udf_registry.h"
#include "query/plan.h"
#include "storage/catalog.h"

namespace dvms {

/// One contribution to an output row: (child operator index, row index in
/// that child's output).
struct LineageEntry {
  uint32_t child;
  RowId row;
};

/// The materialized output of one plan node, with optional row-level
/// lineage and the full child results (so provenance can walk the tree down
/// to Scan leaves).
struct NodeResult {
  const PlanNode* node = nullptr;
  Table table;
  bool has_lineage = false;
  /// lineage[i] lists the child rows that produced output row i.
  std::vector<std::vector<LineageEntry>> lineage;
  std::vector<std::unique_ptr<NodeResult>> children;

  /// EXPLAIN ANALYZE accounting (filled when ExecOptions::analyze).
  /// Inclusive wall time for this operator and its subtree; the report
  /// derives self time as exec_us - sum(children exec_us).
  int64_t exec_us = 0;
  /// Morsels the operator was split into (1 for serial / non-morsel ops).
  size_t morsels_used = 1;
};

namespace exec {
/// Process-wide default for ExecOptions::vectorize: the DVMS_VECTORIZE
/// environment variable ("0" disables), overridable at runtime for
/// differential tests.
bool VectorizeDefault();
void SetVectorizeDefault(bool on);
}  // namespace exec

struct ExecOptions {
  /// Record row-level lineage at every operator (the "eager" strategy of
  /// §3.1). Costs memory and time; see bench_sec31_provenance.
  bool capture_lineage = false;
  /// Parallelism for morsel-driven operators (scan/filter/project/
  /// aggregate/sort): 0 = the pool's full width, 1 = serial inline.
  /// Results are bit-identical at every setting — partial results merge in
  /// morsel-index order, never completion order.
  size_t num_threads = 0;
  /// Rows per morsel. Fixed-size morsels define the shape of partial
  /// floating-point aggregation, so results are a function of this value
  /// and the input — never of num_threads.
  size_t morsel_rows = 2048;
  /// Pool to run on; nullptr = ThreadPool::Global().
  ThreadPool* pool = nullptr;
  /// Per-operator timing + morsel accounting for EXPLAIN ANALYZE. Off by
  /// default: two steady_clock reads per operator are cheap but not free.
  bool analyze = false;
  /// Columnar kernels for scan/filter/project/aggregate/sort: operate on
  /// typed column runs (dictionary ids for strings) instead of per-row
  /// Value dispatch. Bit-identical to the row-at-a-time paths — same
  /// values, same order, same lineage — at every thread count; operators
  /// whose expressions aren't vectorizable fall back per-operator.
  bool vectorize = exec::VectorizeDefault();
};

/// Where the executor reads relations from. The engine's locked path reads
/// the live catalog; concurrent session reads go through an immutable
/// snapshot view (see concurrency/snapshot.h) so no scan ever touches
/// mutable storage.
class RelationSource {
 public:
  virtual ~RelationSource() = default;
  /// Resolves `relation` at `version` to an immutable table.
  virtual Result<TablePtr> Read(const std::string& relation,
                                const VersionRef& version) const = 0;
};

/// RelationSource over the live catalog. Callers must hold the engine
/// write lock (or otherwise guarantee no concurrent mutation).
class CatalogRelationSource final : public RelationSource {
 public:
  explicit CatalogRelationSource(const Catalog* catalog) : catalog_(catalog) {}
  Result<TablePtr> Read(const std::string& relation,
                        const VersionRef& version) const override;

 private:
  const Catalog* catalog_;
};

/// Pull-style materializing executor over bound plans. Stateless; reads
/// relations from a RelationSource at the versions named by Scan nodes.
class Executor {
 public:
  Executor(const Catalog* catalog, const UdfRegistry* udfs)
      : owned_source_(std::make_unique<CatalogRelationSource>(catalog)),
        source_(owned_source_.get()),
        udfs_(udfs) {}

  Executor(const RelationSource* source, const UdfRegistry* udfs)
      : source_(source), udfs_(udfs) {}

  /// Executes a bound plan. Returns the full operator-result tree.
  Result<std::unique_ptr<NodeResult>> Execute(const PlanNode& plan,
                                              const ExecOptions& opts = {}) const;

  /// Convenience: executes and returns only the root table.
  Result<Table> ExecuteToTable(const PlanNode& plan) const;

 private:
  using InSets =
      std::unordered_map<std::string, std::shared_ptr<const ValueSet>>;

  /// Materializes the first column of every IN-referenced relation.
  Result<InSets> BuildInSets(const PlanNode& plan) const;

  /// Timing/metrics wrapper around ExecImpl/ExecScan (one node).
  Result<std::unique_ptr<NodeResult>> Exec(const PlanNode& node,
                                           const ExecOptions& opts,
                                           const EvalContext& ctx) const;

  Result<std::unique_ptr<NodeResult>> ExecImpl(const PlanNode& node,
                                               const ExecOptions& opts,
                                               const EvalContext& ctx) const;

  Result<std::unique_ptr<NodeResult>> ExecScan(const PlanNode& node,
                                               const ExecOptions& opts) const;

  std::unique_ptr<CatalogRelationSource> owned_source_;
  const RelationSource* source_;
  const UdfRegistry* udfs_;
};

}  // namespace dvms

#endif  // DVMS_QUERY_EXECUTOR_H_
