#include "query/optimizer.h"

#include <algorithm>

namespace dvms {

namespace {

/// Matches `Project(Aggregate(child))` where the Aggregate has exactly one
/// ColumnRef group expression and one SUM(ColumnRef) aggregate, and the
/// Project merely reorders the aggregate's two outputs.
bool MatchProjectAggregate(const PlanNode& plan, const PlanNode** aggregate,
                           std::string* group_out, std::string* agg_out,
                           bool* group_first) {
  if (plan.kind != PlanKind::kProject || plan.children.size() != 1) {
    return false;
  }
  const PlanNode& agg = *plan.children[0];
  if (agg.kind != PlanKind::kAggregate) return false;
  if (agg.group_by.size() != 1 || agg.aggregates.size() != 1) return false;
  if (agg.group_by[0]->kind != ExprKind::kColumnRef) return false;
  const AggSpec& spec = agg.aggregates[0];
  if (spec.func != AggFunc::kSum || spec.count_star ||
      spec.arg == nullptr || spec.arg->kind != ExprKind::kColumnRef) {
    return false;
  }
  // The projection must be exactly the two aggregate outputs as bare refs.
  if (plan.projections.size() != 2) return false;
  for (const ExprPtr& e : plan.projections) {
    if (e->kind != ExprKind::kColumnRef) return false;
  }
  const std::string& group_name = agg.group_names[0];
  const std::string& agg_name = spec.output_name;
  const std::string& first = plan.projections[0]->column;
  const std::string& second = plan.projections[1]->column;
  if (IdentEquals(first, group_name) && IdentEquals(second, agg_name)) {
    *group_first = true;
  } else if (IdentEquals(first, agg_name) && IdentEquals(second, group_name)) {
    *group_first = false;
  } else {
    return false;
  }
  *aggregate = &agg;
  *group_out = plan.projection_names[*group_first ? 0 : 1];
  *agg_out = plan.projection_names[*group_first ? 1 : 0];
  return true;
}

}  // namespace

bool CrossfilterOptimizer::TryAdopt(const std::string& view_name,
                                    const PlanNode& plan) {
  adopted_.erase(IdentKey(view_name));  // redefinition un-adopts first

  const PlanNode* agg = nullptr;
  AdoptedView view;
  bool group_first = true;
  if (!MatchProjectAggregate(plan, &agg, &view.group_out, &view.agg_out,
                             &group_first)) {
    return false;
  }
  view.group_first = group_first;
  view.group_col = agg->group_by[0]->column;
  view.measure = agg->aggregates[0].arg->column;

  const PlanNode* child = agg->children[0].get();
  if (child->kind == PlanKind::kFilter) {
    const Expr& pred = *child->predicate;
    if (pred.kind != ExprKind::kInRelation || pred.negated ||
        pred.children[0]->kind != ExprKind::kColumnRef) {
      return false;
    }
    view.filter_col = pred.children[0]->column;
    view.filter_rel = pred.in_relation;
    child = child->children[0].get();
  }
  if (child->kind != PlanKind::kScan || !child->version.is_current()) {
    return false;
  }
  // Only base relations: views can change shape under us.
  auto kind = catalog_->KindOf(child->relation);
  if (!kind.ok() || kind.value() != RelationKind::kBase) return false;
  view.fact = child->relation;
  // Grouping or filtering on the measure column itself is out of scope.
  if (IdentEquals(view.group_col, view.measure)) return false;
  if (!view.filter_col.empty() &&
      (IdentEquals(view.filter_col, view.group_col) ||
       IdentEquals(view.filter_col, view.measure))) {
    return false;
  }

  adopted_[IdentKey(view_name)] = std::move(view);
  return true;
}

std::string CrossfilterOptimizer::CubeKey(const AdoptedView& view) const {
  std::string a = IdentKey(view.group_col);
  std::string b = view.filter_col.empty() ? a : IdentKey(view.filter_col);
  if (b < a) std::swap(a, b);
  return IdentKey(view.fact) + "|" + IdentKey(view.measure) + "|" + a + "|" + b;
}

Result<const CrossfilterCube*> CrossfilterOptimizer::GetOrBuildCube(
    const AdoptedView& view) {
  std::string key = CubeKey(view);
  auto it = cubes_.find(key);
  if (it != cubes_.end()) return it->second.get();
  DVMS_ASSIGN_OR_RETURN(VersionedTable * fact, catalog_->Get(view.fact));
  std::vector<std::string> dims = {view.group_col};
  if (!view.filter_col.empty() &&
      !IdentEquals(view.filter_col, view.group_col)) {
    dims.push_back(view.filter_col);
  }
  if (dims.size() < 2) {
    // CrossfilterCube needs two dimensions; duplicate via any other fact
    // column is wasteful, so pair the group dim with itself is invalid —
    // instead reuse the group dim twice is rejected by Build. Use the
    // measure as a throwaway second dim only if distinct; otherwise bail.
    for (const Column& col : fact->schema().columns()) {
      if (!IdentEquals(col.name, view.group_col)) {
        dims.push_back(col.name);
        break;
      }
    }
    if (dims.size() < 2) {
      return Status::Unsupported("fact table has a single column");
    }
  }
  DVMS_ASSIGN_OR_RETURN(
      CrossfilterCube cube,
      CrossfilterCube::Build(fact->current(), dims, view.measure));
  ++cube_builds_;
  auto owned = std::make_unique<CrossfilterCube>(std::move(cube));
  const CrossfilterCube* ptr = owned.get();
  cubes_.emplace(std::move(key), std::move(owned));
  return ptr;
}

Result<Table> CrossfilterOptimizer::Refresh(const std::string& view_name) {
  auto it = adopted_.find(IdentKey(view_name));
  if (it == adopted_.end()) {
    return Status::NotFound("view '" + view_name + "' is not adopted");
  }
  const AdoptedView& view = it->second;
  DVMS_ASSIGN_OR_RETURN(const CrossfilterCube* cube, GetOrBuildCube(view));

  Table sums(Schema{});
  if (view.filter_rel.empty()) {
    DVMS_ASSIGN_OR_RETURN(sums, cube->GroupTotals(view.group_col));
  } else {
    DVMS_ASSIGN_OR_RETURN(VersionedTable * selection,
                          catalog_->Get(view.filter_rel));
    ValueSet values;
    for (const Row& row : selection->current().rows()) {
      if (!row[0].is_null()) values.insert(row[0]);
    }
    DVMS_ASSIGN_OR_RETURN(
        sums, cube->FilteredGroupSums(view.group_col, view.filter_col, values));
    // The scan-based plan produces no row for groups with no selected
    // facts; drop the cube's zero rows to match.
    Table nonzero(sums.schema());
    for (const Row& row : sums.rows()) {
      if (row[1].double_value() != 0.0) nonzero.AppendUnchecked(row);
    }
    sums = std::move(nonzero);
  }

  // Shape the output to the view's column order and names.
  Schema schema;
  if (view.group_first) {
    schema.AddColumn({view.group_out, ValueType::kNull});
    schema.AddColumn({view.agg_out, ValueType::kDouble});
  } else {
    schema.AddColumn({view.agg_out, ValueType::kDouble});
    schema.AddColumn({view.group_out, ValueType::kNull});
  }
  Table out(schema);
  for (const Row& row : sums.rows()) {
    if (view.group_first) {
      out.AppendUnchecked({row[0], row[1]});
    } else {
      out.AppendUnchecked({row[1], row[0]});
    }
  }
  ++hits_;
  return out;
}

void CrossfilterOptimizer::OnRelationChanged(const std::string& relation) {
  std::string key = IdentKey(relation);
  for (auto it = cubes_.begin(); it != cubes_.end();) {
    // Cube keys start with the fact relation key.
    if (it->first.compare(0, key.size(), key) == 0 &&
        it->first.size() > key.size() && it->first[key.size()] == '|') {
      it = cubes_.erase(it);
    } else {
      ++it;
    }
  }
}

bool CrossfilterOptimizer::IsAdopted(const std::string& view_name) const {
  return adopted_.count(IdentKey(view_name)) > 0;
}

}  // namespace dvms
