#include "query/executor.h"

#include <algorithm>
#include <map>

#include "governor/governor.h"
#include "obs/trace.h"

namespace dvms {

namespace {

/// Rough transient-memory footprint of `rows` materialized rows of
/// `cols` values each, charged against the request's governor budget.
/// Deliberately cheap (no per-value walk): the budget bounds blow-ups by
/// orders of magnitude, not bytes.
int64_t ApproxRowsBytes(size_t rows, size_t cols) {
  return static_cast<int64_t>(rows) *
         static_cast<int64_t>(sizeof(Row) + cols * 48);
}

/// Inner-loop work between cooperative governor checks in the serial
/// (non-morselized) operator loops: join emits, dedup probes, merge steps.
constexpr size_t kSerialCheckRows = 1024;

/// Group-by / dedup key: a row of values with value-equality semantics.
using KeyMap = std::unordered_map<Row, size_t, RowHash, RowEq>;

struct AggState {
  double sum = 0.0;
  int64_t count = 0;      // non-null inputs (or all rows for COUNT(*))
  Value min_value;        // NULL until first non-null input
  Value max_value;
};

void UpdateAgg(AggState* state, const AggSpec& spec, const Value& v) {
  if (spec.count_star) {
    ++state->count;
    return;
  }
  if (v.is_null()) return;
  ++state->count;
  auto as_double = v.AsDouble();
  if (as_double.ok()) state->sum += as_double.value();
  if (state->min_value.is_null() || v.Compare(state->min_value) < 0) {
    state->min_value = v;
  }
  if (state->max_value.is_null() || v.Compare(state->max_value) > 0) {
    state->max_value = v;
  }
}

/// Folds a partial aggregation state into `into`. Addition order is
/// morsel-index order, so the merged sum is a pure function of the morsel
/// layout (fixed by ExecOptions::morsel_rows), not of thread scheduling.
void MergeAgg(AggState* into, const AggState& from) {
  into->sum += from.sum;
  into->count += from.count;
  if (!from.min_value.is_null() &&
      (into->min_value.is_null() ||
       from.min_value.Compare(into->min_value) < 0)) {
    into->min_value = from.min_value;
  }
  if (!from.max_value.is_null() &&
      (into->max_value.is_null() ||
       from.max_value.Compare(into->max_value) > 0)) {
    into->max_value = from.max_value;
  }
}

Value FinalizeAgg(const AggState& state, const AggSpec& spec) {
  switch (spec.func) {
    case AggFunc::kCount:
      return Value::Int(state.count);
    case AggFunc::kSum:
      return state.count == 0 ? Value::Null() : Value::Double(state.sum);
    case AggFunc::kAvg:
      return state.count == 0
                 ? Value::Null()
                 : Value::Double(state.sum / static_cast<double>(state.count));
    case AggFunc::kMin:
      return state.min_value;
    case AggFunc::kMax:
      return state.max_value;
  }
  return Value::Null();
}

/// Resolved parallel-execution knobs for one operator.
struct ParallelCfg {
  ThreadPool* pool;
  size_t threads;
  size_t grain;
};

ParallelCfg ResolveParallel(const ExecOptions& opts) {
  ThreadPool* pool = opts.pool != nullptr ? opts.pool : ThreadPool::Global();
  size_t threads =
      opts.num_threads != 0 ? opts.num_threads : pool->num_threads();
  size_t grain = opts.morsel_rows == 0 ? 2048 : opts.morsel_rows;
  return {pool, threads, grain};
}

/// Runs `fn(morsel) -> Status` over every morsel of [0, total). Returns the
/// error of the lowest-indexed failing morsel — which, since each morsel
/// stops at its first failing row, is the error serial row-order execution
/// would have hit first.
template <typename Fn>
Status ForEachMorsel(const ParallelCfg& cfg, size_t total, Fn&& fn) {
  size_t morsels = MorselCount(total, cfg.grain);
  if (morsels == 0) return Status::OK();
  std::vector<Status> status(morsels);
  cfg.pool->ParallelFor(total, cfg.grain, cfg.threads,
                        [&](const MorselRange& r) {
                          // One governor check per morsel bounds how far a
                          // request can overrun its deadline: at most one
                          // morsel of work per worker.
                          Status st = governor::CheckPoint();
                          status[r.index] = st.ok() ? fn(r) : std::move(st);
                        });
  for (Status& s : status) {
    if (!s.ok()) return std::move(s);
  }
  return Status::OK();
}

}  // namespace

Result<TablePtr> CatalogRelationSource::Read(const std::string& relation,
                                             const VersionRef& version) const {
  DVMS_ASSIGN_OR_RETURN(VersionedTable * table, catalog_->Get(relation));
  switch (version.kind) {
    case VersionRef::Kind::kCurrent:
      return MakeTablePtr(table->current());
    case VersionRef::Kind::kVnow:
      return table->Version(version.offset);
    case VersionRef::Kind::kTnow:
      return table->StepVersion(version.offset);
  }
  return Status::Internal("bad version ref");
}

Result<Executor::InSets> Executor::BuildInSets(const PlanNode& plan) const {
  InSets sets;
  std::vector<std::string> names;
  plan.CollectInRelations(&names);
  for (const std::string& name : names) {
    std::string key = IdentKey(name);
    if (sets.count(key) > 0) continue;
    DVMS_ASSIGN_OR_RETURN(TablePtr table, source_->Read(name, VersionRef{}));
    auto set = std::make_shared<ValueSet>();
    const Table& t = *table;
    if (t.schema().num_columns() == 0) {
      return Status::ExecutionError("IN-relation '" + name + "' has no columns");
    }
    for (const Row& row : t.rows()) {
      if (!row[0].is_null()) set->insert(row[0]);
    }
    sets.emplace(std::move(key), std::move(set));
  }
  return sets;
}

Result<std::unique_ptr<NodeResult>> Executor::Execute(
    const PlanNode& plan, const ExecOptions& opts) const {
  if (!plan.bound) {
    return Status::BindError("plan must be bound before execution");
  }
  DVMS_ASSIGN_OR_RETURN(InSets in_sets, BuildInSets(plan));
  EvalContext ctx;
  ctx.udfs = udfs_;
  ctx.in_sets = &in_sets;
  return Exec(plan, opts, ctx);
}

Result<Table> Executor::ExecuteToTable(const PlanNode& plan) const {
  DVMS_ASSIGN_OR_RETURN(std::unique_ptr<NodeResult> result, Execute(plan));
  return std::move(result->table);
}

Result<std::unique_ptr<NodeResult>> Executor::ExecScan(
    const PlanNode& node, const ExecOptions& opts) const {
  auto out = std::make_unique<NodeResult>();
  out->node = &node;
  DVMS_ASSIGN_OR_RETURN(TablePtr src,
                        source_->Read(node.relation, node.version));
  // Morsel-parallel row copy; each morsel writes a disjoint slice.
  const std::vector<Row>& src_rows = src->rows();
  DVMS_RETURN_IF_ERROR(governor::CheckPoint());
  DVMS_RETURN_IF_ERROR(governor::ChargeMemory(
      ApproxRowsBytes(src_rows.size(), src->schema().num_columns())));
  ParallelCfg cfg = ResolveParallel(opts);
  out->morsels_used = std::max<size_t>(1, MorselCount(src_rows.size(), cfg.grain));
  std::vector<Row> rows(src_rows.size());
  cfg.pool->ParallelFor(src_rows.size(), cfg.grain, cfg.threads,
                        [&](const MorselRange& r) {
                          for (size_t i = r.begin; i < r.end; ++i) {
                            rows[i] = src_rows[i];
                          }
                        });
  out->table = Table(node.OutputSchema(), std::move(rows));
  if (opts.capture_lineage) {
    out->has_lineage = true;
    out->lineage.resize(out->table.num_rows());
    // A scan is a leaf: lineage maps output row i to "source row i", encoded
    // as child 0 / row i so provenance can read base-row ids directly.
    for (size_t i = 0; i < out->table.num_rows(); ++i) {
      out->lineage[i] = {{0, i}};
    }
  }
  return out;
}

Result<std::unique_ptr<NodeResult>> Executor::Exec(
    const PlanNode& node, const ExecOptions& opts,
    const EvalContext& ctx) const {
  const int64_t start_us = opts.analyze ? obs::NowMicros() : 0;
  Result<std::unique_ptr<NodeResult>> result =
      node.kind == PlanKind::kScan ? ExecScan(node, opts)
                                   : ExecImpl(node, opts, ctx);
  if (result.ok()) {
    NodeResult& r = *result.value();
    // Inclusive subtree time; the EXPLAIN ANALYZE report subtracts the
    // children to get self time.
    if (opts.analyze) r.exec_us = obs::NowMicros() - start_us;
    if (obs::Enabled()) {
      std::string key = std::string("exec.rows.") + PlanKindToString(node.kind);
      obs::Count(key.c_str(), r.table.num_rows());
    }
  }
  return result;
}

Result<std::unique_ptr<NodeResult>> Executor::ExecImpl(
    const PlanNode& node, const ExecOptions& opts,
    const EvalContext& ctx) const {
  auto out = std::make_unique<NodeResult>();
  out->node = &node;
  out->has_lineage = opts.capture_lineage;
  for (const auto& child : node.children) {
    DVMS_ASSIGN_OR_RETURN(std::unique_ptr<NodeResult> r,
                          Exec(*child, opts, ctx));
    out->children.push_back(std::move(r));
  }
  out->table = Table(node.OutputSchema());

  auto add_row = [&out, &opts](Row row, std::vector<LineageEntry> lin) {
    out->table.AppendUnchecked(std::move(row));
    if (opts.capture_lineage) out->lineage.push_back(std::move(lin));
  };

  // Morsel-driven parallelism where the plan hook allows it; partial
  // results always merge in morsel-index order so the output is identical
  // at every thread count.
  ParallelCfg cfg = ResolveParallel(opts);
  if (!node.Parallelizable()) cfg.threads = 1;

  switch (node.kind) {
    case PlanKind::kScan:
      return Status::Internal("unreachable");

    case PlanKind::kFilter: {
      const Table& in = out->children[0]->table;
      size_t morsels = MorselCount(in.num_rows(), cfg.grain);
      out->morsels_used = std::max<size_t>(1, morsels);
      std::vector<std::vector<size_t>> kept(morsels);
      DVMS_RETURN_IF_ERROR(ForEachMorsel(
          cfg, in.num_rows(), [&](const MorselRange& r) -> Status {
            std::vector<size_t>& k = kept[r.index];
            for (size_t i = r.begin; i < r.end; ++i) {
              DVMS_ASSIGN_OR_RETURN(
                  bool keep, EvalPredicate(*node.predicate, in.row(i), ctx));
              if (keep) k.push_back(i);
            }
            return Status::OK();
          }));
      size_t total_kept = 0;
      for (const std::vector<size_t>& k : kept) total_kept += k.size();
      DVMS_RETURN_IF_ERROR(governor::ChargeMemory(
          ApproxRowsBytes(total_kept, in.schema().num_columns())));
      for (const std::vector<size_t>& k : kept) {
        for (size_t i : k) add_row(in.row(i), {{0, i}});
      }
      break;
    }

    case PlanKind::kProject: {
      const Table& in = out->children[0]->table;
      size_t morsels = MorselCount(in.num_rows(), cfg.grain);
      out->morsels_used = std::max<size_t>(1, morsels);
      std::vector<std::vector<Row>> built(morsels);
      DVMS_RETURN_IF_ERROR(ForEachMorsel(
          cfg, in.num_rows(), [&](const MorselRange& r) -> Status {
            std::vector<Row>& rows = built[r.index];
            rows.reserve(r.end - r.begin);
            for (size_t i = r.begin; i < r.end; ++i) {
              Row row;
              row.reserve(node.projections.size());
              for (const auto& e : node.projections) {
                DVMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, in.row(i), ctx));
                row.push_back(std::move(v));
              }
              rows.push_back(std::move(row));
            }
            return governor::ChargeMemory(
                ApproxRowsBytes(rows.size(), node.projections.size()));
          }));
      for (size_t mi = 0; mi < morsels; ++mi) {
        size_t base = MorselAt(in.num_rows(), cfg.grain, mi).begin;
        for (size_t off = 0; off < built[mi].size(); ++off) {
          add_row(std::move(built[mi][off]), {{0, base + off}});
        }
      }
      break;
    }

    case PlanKind::kJoin: {
      const Table& left = out->children[0]->table;
      const Table& right = out->children[1]->table;
      // The emit path is where a cross join blows up, so both governor
      // limits ride on it: a cooperative check every kSerialCheckRows
      // pairs examined, and a memory charge per batch of produced rows —
      // an over-budget join aborts within one batch of slack instead of
      // growing toward an OOM kill.
      const size_t out_width =
          left.schema().num_columns() + right.schema().num_columns();
      size_t pairs_seen = 0;
      size_t rows_uncharged = 0;
      auto emit = [&](size_t li, size_t ri) -> Status {
        if (++pairs_seen % kSerialCheckRows == 0) {
          DVMS_RETURN_IF_ERROR(governor::CheckPoint());
        }
        Row combined = left.row(li);
        const Row& r = right.row(ri);
        combined.insert(combined.end(), r.begin(), r.end());
        if (node.predicate != nullptr) {
          DVMS_ASSIGN_OR_RETURN(bool keep,
                                EvalPredicate(*node.predicate, combined, ctx));
          if (!keep) return Status::OK();
        }
        if (++rows_uncharged == kSerialCheckRows) {
          DVMS_RETURN_IF_ERROR(governor::ChargeMemory(
              ApproxRowsBytes(rows_uncharged, out_width)));
          rows_uncharged = 0;
        }
        add_row(std::move(combined), {{0, li}, {1, ri}});
        return Status::OK();
      };
      if (!node.equi_keys.empty()) {
        // Hash join: build on the right side.
        std::unordered_map<Row, std::vector<size_t>, RowHash, RowEq> build;
        DVMS_RETURN_IF_ERROR(governor::ChargeMemory(ApproxRowsBytes(
            right.num_rows(), node.equi_keys.size() + 1)));
        for (size_t ri = 0; ri < right.num_rows(); ++ri) {
          if (ri % (4 * kSerialCheckRows) == 0) {
            DVMS_RETURN_IF_ERROR(governor::CheckPoint());
          }
          Row key;
          key.reserve(node.equi_keys.size());
          bool has_null = false;
          for (const auto& kv : node.equi_keys) {
            DVMS_ASSIGN_OR_RETURN(Value v,
                                  EvalExpr(*kv.second, right.row(ri), ctx));
            if (v.is_null()) has_null = true;
            key.push_back(std::move(v));
          }
          if (!has_null) build[std::move(key)].push_back(ri);
        }
        for (size_t li = 0; li < left.num_rows(); ++li) {
          if (li % (4 * kSerialCheckRows) == 0) {
            DVMS_RETURN_IF_ERROR(governor::CheckPoint());
          }
          Row key;
          key.reserve(node.equi_keys.size());
          bool has_null = false;
          for (const auto& kv : node.equi_keys) {
            DVMS_ASSIGN_OR_RETURN(Value v,
                                  EvalExpr(*kv.first, left.row(li), ctx));
            if (v.is_null()) has_null = true;
            key.push_back(std::move(v));
          }
          if (has_null) continue;
          auto it = build.find(key);
          if (it == build.end()) continue;
          for (size_t ri : it->second) {
            DVMS_RETURN_IF_ERROR(emit(li, ri));
          }
        }
      } else {
        for (size_t li = 0; li < left.num_rows(); ++li) {
          for (size_t ri = 0; ri < right.num_rows(); ++ri) {
            DVMS_RETURN_IF_ERROR(emit(li, ri));
          }
        }
      }
      break;
    }

    case PlanKind::kAggregate: {
      const Table& in = out->children[0]->table;
      struct Group {
        Row key;
        std::vector<AggState> states;
        std::vector<LineageEntry> contributors;
      };
      struct MorselGroups {
        KeyMap index;
        std::vector<Group> groups;
      };
      const bool global = node.group_by.empty();
      const size_t num_aggs = node.aggregates.size();
      // Phase 1: per-morsel partial aggregation into thread-local hash
      // tables (no shared state).
      size_t morsels = MorselCount(in.num_rows(), cfg.grain);
      out->morsels_used = std::max<size_t>(1, morsels);
      std::vector<MorselGroups> partials(morsels);
      DVMS_RETURN_IF_ERROR(ForEachMorsel(
          cfg, in.num_rows(), [&](const MorselRange& r) -> Status {
            MorselGroups& local = partials[r.index];
            if (global) {
              local.groups.push_back({{}, std::vector<AggState>(num_aggs), {}});
            }
            for (size_t i = r.begin; i < r.end; ++i) {
              size_t gi;
              if (global) {
                gi = 0;
              } else {
                Row key;
                key.reserve(node.group_by.size());
                for (const auto& e : node.group_by) {
                  DVMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, in.row(i), ctx));
                  key.push_back(std::move(v));
                }
                auto it = local.index.find(key);
                if (it == local.index.end()) {
                  gi = local.groups.size();
                  local.index.emplace(key, gi);
                  local.groups.push_back(
                      {std::move(key), std::vector<AggState>(num_aggs), {}});
                } else {
                  gi = it->second;
                }
              }
              Group& g = local.groups[gi];
              for (size_t a = 0; a < num_aggs; ++a) {
                const AggSpec& spec = node.aggregates[a];
                if (spec.count_star) {
                  UpdateAgg(&g.states[a], spec, Value::Null());
                } else {
                  DVMS_ASSIGN_OR_RETURN(Value v,
                                        EvalExpr(*spec.arg, in.row(i), ctx));
                  UpdateAgg(&g.states[a], spec, v);
                }
              }
              if (opts.capture_lineage) g.contributors.push_back({0, i});
            }
            // Group hash tables are the aggregate's scratch: charge what
            // this morsel discovered.
            return governor::ChargeMemory(ApproxRowsBytes(
                local.groups.size(), node.group_by.size() + num_aggs));
          }));
      // Phase 2: deterministic merge. Walking morsels in index order (and
      // each morsel's groups in first-seen order) makes global group
      // discovery order equal serial row order, and fixes the partial-sum
      // addition tree independent of thread scheduling.
      KeyMap index;
      std::vector<Group> groups;
      if (global) {
        groups.push_back({{}, std::vector<AggState>(num_aggs), {}});
      }
      for (MorselGroups& local : partials) {
        for (Group& lg : local.groups) {
          size_t gi;
          if (global) {
            gi = 0;
          } else {
            auto it = index.find(lg.key);
            if (it == index.end()) {
              gi = groups.size();
              index.emplace(lg.key, gi);
              groups.push_back(
                  {std::move(lg.key), std::vector<AggState>(num_aggs), {}});
            } else {
              gi = it->second;
            }
          }
          Group& g = groups[gi];
          for (size_t a = 0; a < num_aggs; ++a) {
            MergeAgg(&g.states[a], lg.states[a]);
          }
          if (opts.capture_lineage) {
            g.contributors.insert(g.contributors.end(),
                                  lg.contributors.begin(),
                                  lg.contributors.end());
          }
        }
      }
      // Deterministic output order: sort groups by key (stable, so any
      // keys comparing equal keep first-seen order).
      std::vector<size_t> order(groups.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(),
                       [&groups](size_t a, size_t b) {
                         return CompareRows(groups[a].key, groups[b].key) < 0;
                       });
      for (size_t gi : order) {
        Group& g = groups[gi];
        Row row = g.key;
        for (size_t a = 0; a < num_aggs; ++a) {
          row.push_back(FinalizeAgg(g.states[a], node.aggregates[a]));
        }
        add_row(std::move(row), std::move(g.contributors));
      }
      break;
    }

    case PlanKind::kUnion: {
      if (!node.union_distinct) {
        for (size_t c = 0; c < out->children.size(); ++c) {
          const Table& in = out->children[c]->table;
          for (size_t i = 0; i < in.num_rows(); ++i) {
            add_row(in.row(i), {{static_cast<uint32_t>(c), i}});
          }
        }
        break;
      }
      KeyMap seen;
      for (size_t c = 0; c < out->children.size(); ++c) {
        const Table& in = out->children[c]->table;
        for (size_t i = 0; i < in.num_rows(); ++i) {
          if (i % kSerialCheckRows == 0) {
            DVMS_RETURN_IF_ERROR(governor::CheckPoint());
          }
          auto it = seen.find(in.row(i));
          if (it == seen.end()) {
            seen.emplace(in.row(i), out->table.num_rows());
            add_row(in.row(i), {{static_cast<uint32_t>(c), i}});
          } else if (opts.capture_lineage) {
            // Duplicates contribute lineage to the surviving row.
            out->lineage[it->second].push_back({static_cast<uint32_t>(c), i});
          }
        }
        DVMS_RETURN_IF_ERROR(governor::ChargeMemory(
            ApproxRowsBytes(in.num_rows(), in.schema().num_columns())));
      }
      break;
    }

    case PlanKind::kMinus: {
      const Table& left = out->children[0]->table;
      const Table& right = out->children[1]->table;
      std::unordered_map<Row, bool, RowHash, RowEq> right_rows;
      DVMS_RETURN_IF_ERROR(governor::ChargeMemory(
          ApproxRowsBytes(right.num_rows(), right.schema().num_columns())));
      for (const Row& r : right.rows()) right_rows.emplace(r, true);
      KeyMap seen;
      for (size_t i = 0; i < left.num_rows(); ++i) {
        if (i % kSerialCheckRows == 0) {
          DVMS_RETURN_IF_ERROR(governor::CheckPoint());
        }
        if (right_rows.count(left.row(i)) > 0) continue;
        auto it = seen.find(left.row(i));
        if (it == seen.end()) {
          seen.emplace(left.row(i), out->table.num_rows());
          add_row(left.row(i), {{0, i}});
        } else if (opts.capture_lineage) {
          out->lineage[it->second].push_back({0, i});
        }
      }
      break;
    }

    case PlanKind::kDistinct: {
      const Table& in = out->children[0]->table;
      KeyMap seen;
      DVMS_RETURN_IF_ERROR(governor::ChargeMemory(
          ApproxRowsBytes(in.num_rows(), in.schema().num_columns())));
      for (size_t i = 0; i < in.num_rows(); ++i) {
        if (i % kSerialCheckRows == 0) {
          DVMS_RETURN_IF_ERROR(governor::CheckPoint());
        }
        auto it = seen.find(in.row(i));
        if (it == seen.end()) {
          seen.emplace(in.row(i), out->table.num_rows());
          add_row(in.row(i), {{0, i}});
        } else if (opts.capture_lineage) {
          out->lineage[it->second].push_back({0, i});
        }
      }
      break;
    }

    case PlanKind::kOrderBy: {
      const Table& in = out->children[0]->table;
      const size_t n = in.num_rows();
      out->morsels_used = std::max<size_t>(1, MorselCount(n, cfg.grain));
      // Phase 1: morsel-parallel sort-key evaluation into disjoint slots.
      // Key vector + permutation are the sort's scratch footprint.
      DVMS_RETURN_IF_ERROR(governor::ChargeMemory(
          ApproxRowsBytes(n, node.order_exprs.size()) +
          static_cast<int64_t>(n * sizeof(size_t))));
      std::vector<Row> keys(n);
      DVMS_RETURN_IF_ERROR(
          ForEachMorsel(cfg, n, [&](const MorselRange& r) -> Status {
            for (size_t i = r.begin; i < r.end; ++i) {
              Row key;
              key.reserve(node.order_exprs.size());
              for (const auto& e : node.order_exprs) {
                DVMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, in.row(i), ctx));
                key.push_back(std::move(v));
              }
              keys[i] = std::move(key);
            }
            return Status::OK();
          }));
      // The input-index tiebreak makes this a total order, so the sorted
      // permutation is unique: chunked parallel sort + k-way merge yields
      // exactly what one serial stable sort would.
      auto less = [&node, &keys](size_t a, size_t b) {
        const Row& ka = keys[a];
        const Row& kb = keys[b];
        for (size_t k = 0; k < ka.size(); ++k) {
          int c = ka[k].Compare(kb[k]);
          if (c != 0) return node.order_descending[k] ? c > 0 : c < 0;
        }
        return a < b;
      };
      std::vector<size_t> perm(n);
      for (size_t i = 0; i < n; ++i) perm[i] = i;
      size_t chunks = std::min(cfg.threads, MorselCount(n, cfg.grain));
      if (chunks <= 1) {
        std::sort(perm.begin(), perm.end(), less);
      } else {
        // Phase 2: sort one contiguous chunk per participant.
        std::vector<size_t> bounds(chunks + 1);
        for (size_t c = 0; c <= chunks; ++c) bounds[c] = n * c / chunks;
        cfg.pool->ParallelFor(chunks, 1, cfg.threads,
                              [&](const MorselRange& r) {
                                std::sort(perm.begin() + bounds[r.index],
                                          perm.begin() + bounds[r.index + 1],
                                          less);
                              });
        // Phase 3: serial k-way merge of the sorted chunks.
        std::vector<size_t> head(bounds.begin(), bounds.end() - 1);
        std::vector<size_t> merged;
        merged.reserve(n);
        while (merged.size() < n) {
          if (merged.size() % kSerialCheckRows == 0) {
            DVMS_RETURN_IF_ERROR(governor::CheckPoint());
          }
          size_t best = chunks;
          for (size_t c = 0; c < chunks; ++c) {
            if (head[c] == bounds[c + 1]) continue;
            if (best == chunks || less(perm[head[c]], perm[head[best]])) {
              best = c;
            }
          }
          merged.push_back(perm[head[best]++]);
        }
        perm = std::move(merged);
      }
      for (size_t i : perm) {
        add_row(in.row(i), {{0, i}});
      }
      break;
    }

    case PlanKind::kLimit: {
      const Table& in = out->children[0]->table;
      size_t n = std::min(node.limit, in.num_rows());
      for (size_t i = 0; i < n; ++i) {
        add_row(in.row(i), {{0, i}});
      }
      break;
    }

    case PlanKind::kAlias: {
      const Table& in = out->children[0]->table;
      for (size_t i = 0; i < in.num_rows(); ++i) {
        add_row(in.row(i), {{0, i}});
      }
      break;
    }
  }
  return out;
}

}  // namespace dvms
