#include "query/executor.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>

#include "governor/governor.h"
#include "obs/trace.h"
#include "storage/dict.h"

namespace dvms {

namespace exec {

namespace {
std::atomic<int> g_vectorize{-1};
}  // namespace

bool VectorizeDefault() {
  int v = g_vectorize.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* env = std::getenv("DVMS_VECTORIZE");
    v = (env != nullptr && env[0] == '0' && env[1] == '\0') ? 0 : 1;
    g_vectorize.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void SetVectorizeDefault(bool on) {
  g_vectorize.store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace exec

namespace {

/// Rough transient-memory footprint of `rows` materialized rows of
/// `cols` values each, charged against the request's governor budget.
/// Deliberately cheap (no per-value walk): the budget bounds blow-ups by
/// orders of magnitude, not bytes.
int64_t ApproxRowsBytes(size_t rows, size_t cols) {
  return static_cast<int64_t>(rows) *
         static_cast<int64_t>(sizeof(Row) + cols * 48);
}

/// Inner-loop work between cooperative governor checks in the serial
/// (non-morselized) operator loops: join emits, dedup probes, merge steps.
constexpr size_t kSerialCheckRows = 1024;

/// Group-by / dedup key: a row of values with value-equality semantics.
using KeyMap = std::unordered_map<Row, size_t, RowHash, RowEq>;

struct AggState {
  double sum = 0.0;
  int64_t count = 0;      // non-null inputs (or all rows for COUNT(*))
  Value min_value;        // NULL until first non-null input
  Value max_value;
};

void UpdateAgg(AggState* state, const AggSpec& spec, const Value& v) {
  if (spec.count_star) {
    ++state->count;
    return;
  }
  if (v.is_null()) return;
  ++state->count;
  auto as_double = v.AsDouble();
  if (as_double.ok()) state->sum += as_double.value();
  if (state->min_value.is_null() || v.Compare(state->min_value) < 0) {
    state->min_value = v;
  }
  if (state->max_value.is_null() || v.Compare(state->max_value) > 0) {
    state->max_value = v;
  }
}

/// Folds a partial aggregation state into `into`. Addition order is
/// morsel-index order, so the merged sum is a pure function of the morsel
/// layout (fixed by ExecOptions::morsel_rows), not of thread scheduling.
void MergeAgg(AggState* into, const AggState& from) {
  into->sum += from.sum;
  into->count += from.count;
  if (!from.min_value.is_null() &&
      (into->min_value.is_null() ||
       from.min_value.Compare(into->min_value) < 0)) {
    into->min_value = from.min_value;
  }
  if (!from.max_value.is_null() &&
      (into->max_value.is_null() ||
       from.max_value.Compare(into->max_value) > 0)) {
    into->max_value = from.max_value;
  }
}

Value FinalizeAgg(const AggState& state, const AggSpec& spec) {
  switch (spec.func) {
    case AggFunc::kCount:
      return Value::Int(state.count);
    case AggFunc::kSum:
      return state.count == 0 ? Value::Null() : Value::Double(state.sum);
    case AggFunc::kAvg:
      return state.count == 0
                 ? Value::Null()
                 : Value::Double(state.sum / static_cast<double>(state.count));
    case AggFunc::kMin:
      return state.min_value;
    case AggFunc::kMax:
      return state.max_value;
  }
  return Value::Null();
}

/// Resolved parallel-execution knobs for one operator.
struct ParallelCfg {
  ThreadPool* pool;
  size_t threads;
  size_t grain;
};

ParallelCfg ResolveParallel(const ExecOptions& opts) {
  ThreadPool* pool = opts.pool != nullptr ? opts.pool : ThreadPool::Global();
  size_t threads =
      opts.num_threads != 0 ? opts.num_threads : pool->num_threads();
  size_t grain = opts.morsel_rows == 0 ? 2048 : opts.morsel_rows;
  return {pool, threads, grain};
}

/// Runs `fn(morsel) -> Status` over every morsel of [0, total). Returns the
/// error of the lowest-indexed failing morsel — which, since each morsel
/// stops at its first failing row, is the error serial row-order execution
/// would have hit first.
template <typename Fn>
Status ForEachMorsel(const ParallelCfg& cfg, size_t total, Fn&& fn) {
  size_t morsels = MorselCount(total, cfg.grain);
  if (morsels == 0) return Status::OK();
  std::vector<Status> status(morsels);
  cfg.pool->ParallelFor(total, cfg.grain, cfg.threads,
                        [&](const MorselRange& r) {
                          // One governor check per morsel bounds how far a
                          // request can overrun its deadline: at most one
                          // morsel of work per worker.
                          Status st = governor::CheckPoint();
                          status[r.index] = st.ok() ? fn(r) : std::move(st);
                        });
  for (Status& s : status) {
    if (!s.ok()) return std::move(s);
  }
  return Status::OK();
}

// ---- Vectorized kernels -------------------------------------------------
//
// The columnar fast paths below reproduce the row-at-a-time semantics
// exactly: comparison verdicts come from the same total order as
// Value::Compare/Equals, floating-point sums add in the same (morsel-major,
// row-minor) order, group discovery order equals serial row order, and
// min/max keep the first occurrence. Anything the recognizers can't prove
// vectorizable falls back to the row view per operator.

/// True iff `e` is a bound column reference into a row of `num_cols` cells.
bool IsSimpleColumn(const Expr& e, size_t num_cols) {
  return e.kind == ExprKind::kColumnRef && e.resolved_index >= 0 &&
         static_cast<size_t>(e.resolved_index) < num_cols;
}

/// One conjunct of a vectorizable predicate, prepared for column runs.
struct FilterTerm {
  enum class Kind {
    kConstFalse,  // literal-vs-literal false, or a NULL literal operand
    kConstTrue,   // literal-vs-literal true
    kColLit,      // <column> op <literal> (or mirrored)
    kColCol,      // <column> op <column>
  };
  Kind kind = Kind::kConstFalse;
  BinaryOp op = BinaryOp::kEq;
  size_t lhs_col = 0, rhs_col = 0;  // kColCol
  size_t col = 0;                   // kColLit: the column side
  bool col_is_lhs = true;           // kColLit: which side the column is on
  Value lit;                        // kColLit: the (non-NULL) literal
  uint32_t lit_dict_id = strdict::kInvalidId;  // kColLit, string literal
};

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

/// Comparison verdict from a three-way compare, mirroring ApplyBinary
/// (Equals coincides with Compare()==0 for non-NULL values).
inline uint8_t CmpVerdict(BinaryOp op, int cmp) {
  switch (op) {
    case BinaryOp::kEq:
      return cmp == 0;
    case BinaryOp::kNe:
      return cmp != 0;
    case BinaryOp::kLt:
      return cmp < 0;
    case BinaryOp::kLe:
      return cmp <= 0;
    case BinaryOp::kGt:
      return cmp > 0;
    default:
      return cmp >= 0;
  }
}

/// Flattens `e` into AND-ed comparison terms over columns and literals.
/// Returns false if any conjunct is not of that shape (UDFs, IN, OR,
/// arithmetic, ...) — the caller then keeps the row-at-a-time path. Safe
/// w.r.t. short-circuiting because comparison conjuncts cannot error and
/// always produce non-NULL booleans.
bool CollectFilterTerms(const Expr& e, size_t num_cols,
                        std::vector<FilterTerm>* out) {
  if (e.kind != ExprKind::kBinary) return false;
  if (e.binary_op == BinaryOp::kAnd) {
    return CollectFilterTerms(*e.children[0], num_cols, out) &&
           CollectFilterTerms(*e.children[1], num_cols, out);
  }
  if (!IsComparisonOp(e.binary_op)) return false;
  const Expr& l = *e.children[0];
  const Expr& r = *e.children[1];
  FilterTerm t;
  t.op = e.binary_op;
  bool l_col = IsSimpleColumn(l, num_cols), l_lit = l.kind == ExprKind::kLiteral;
  bool r_col = IsSimpleColumn(r, num_cols), r_lit = r.kind == ExprKind::kLiteral;
  if (l_col && r_col) {
    t.kind = FilterTerm::Kind::kColCol;
    t.lhs_col = static_cast<size_t>(l.resolved_index);
    t.rhs_col = static_cast<size_t>(r.resolved_index);
  } else if ((l_col && r_lit) || (l_lit && r_col)) {
    const Expr& lit = l_lit ? l : r;
    if (lit.literal.is_null()) {
      // Comparisons with NULL are false for every row.
      t.kind = FilterTerm::Kind::kConstFalse;
    } else {
      t.kind = FilterTerm::Kind::kColLit;
      t.col = static_cast<size_t>((l_col ? l : r).resolved_index);
      t.col_is_lhs = l_col;
      t.lit = lit.literal;
      if (t.lit.type() == ValueType::kString) {
        t.lit_dict_id = strdict::Intern(t.lit.string_value());
      }
    }
  } else if (l_lit && r_lit) {
    if (l.literal.is_null() || r.literal.is_null()) {
      t.kind = FilterTerm::Kind::kConstFalse;
    } else {
      Result<Value> v = ApplyBinary(e.binary_op, l.literal, r.literal);
      if (!v.ok()) return false;
      t.kind = v.value().IsTruthy() ? FilterTerm::Kind::kConstTrue
                                    : FilterTerm::Kind::kConstFalse;
    }
  } else {
    return false;
  }
  out->push_back(std::move(t));
  return true;
}

/// ANDs one term's verdicts over rows [begin, end) into pass[] (1 = still
/// passing). Typed inner loops per encoding; NULL cells fail comparisons.
void EvalFilterTermRange(const Table& in, const FilterTerm& t, size_t begin,
                         size_t end, std::vector<uint8_t>* pass_out) {
  std::vector<uint8_t>& pass = *pass_out;
  if (t.kind == FilterTerm::Kind::kConstTrue) return;
  if (t.kind == FilterTerm::Kind::kConstFalse) {
    std::fill(pass.begin(), pass.end(), 0);
    return;
  }
  if (t.kind == FilterTerm::Kind::kColCol) {
    const ColumnVec& a = in.col(t.lhs_col);
    const ColumnVec& b = in.col(t.rhs_col);
    for (size_t i = begin; i < end; ++i) {
      uint8_t& p = pass[i - begin];
      if (!p) continue;
      p = (a.IsNull(i) || b.IsNull(i))
              ? 0
              : CmpVerdict(t.op, a.CompareCells(i, b, i));
    }
    return;
  }
  const ColumnVec& c = in.col(t.col);
  const int sign = t.col_is_lhs ? 1 : -1;
  switch (c.enc()) {
    case ColumnVec::Enc::kInt64: {
      const std::vector<int64_t>& v = c.ints();
      if (t.lit.type() == ValueType::kInt64) {
        const int64_t lit = t.lit.int_value();
        for (size_t i = begin; i < end; ++i) {
          uint8_t& p = pass[i - begin];
          if (!p) continue;
          if (c.IsNull(i)) {
            p = 0;
            continue;
          }
          int cmp = v[i] < lit ? -1 : (v[i] > lit ? 1 : 0);
          p = CmpVerdict(t.op, sign * cmp);
        }
        return;
      }
      if (t.lit.type() == ValueType::kDouble) {
        const double lit = t.lit.double_value();
        for (size_t i = begin; i < end; ++i) {
          uint8_t& p = pass[i - begin];
          if (!p) continue;
          p = c.IsNull(i)
                  ? 0
                  : CmpVerdict(t.op, sign * CompareInt64Double(v[i], lit));
        }
        return;
      }
      break;
    }
    case ColumnVec::Enc::kDouble: {
      const std::vector<double>& v = c.doubles();
      if (t.lit.type() == ValueType::kDouble) {
        const double lit = t.lit.double_value();
        for (size_t i = begin; i < end; ++i) {
          uint8_t& p = pass[i - begin];
          if (!p) continue;
          p = c.IsNull(i)
                  ? 0
                  : CmpVerdict(t.op, sign * CompareDoublesTotal(v[i], lit));
        }
        return;
      }
      if (t.lit.type() == ValueType::kInt64) {
        const int64_t lit = t.lit.int_value();
        for (size_t i = begin; i < end; ++i) {
          uint8_t& p = pass[i - begin];
          if (!p) continue;
          p = c.IsNull(i)
                  ? 0
                  : CmpVerdict(t.op, sign * -CompareInt64Double(lit, v[i]));
        }
        return;
      }
      break;
    }
    case ColumnVec::Enc::kDict: {
      if (t.lit.type() != ValueType::kString) break;
      const std::vector<uint32_t>& ids = c.dict_ids();
      if (t.op == BinaryOp::kEq || t.op == BinaryOp::kNe) {
        // Interned: byte equality is id equality — no string compares.
        const uint32_t want = t.lit_dict_id;
        const uint8_t on_eq = t.op == BinaryOp::kEq ? 1 : 0;
        for (size_t i = begin; i < end; ++i) {
          uint8_t& p = pass[i - begin];
          if (!p) continue;
          p = c.IsNull(i) ? 0 : ((ids[i] == want) == on_eq);
        }
        return;
      }
      // Ordering against a string literal: the verdict is a function of the
      // id alone, so memoize per distinct id within this morsel.
      std::unordered_map<uint32_t, uint8_t> verdicts;
      const std::string& lit = t.lit.string_value();
      for (size_t i = begin; i < end; ++i) {
        uint8_t& p = pass[i - begin];
        if (!p) continue;
        if (c.IsNull(i)) {
          p = 0;
          continue;
        }
        auto it = verdicts.find(ids[i]);
        if (it == verdicts.end()) {
          const std::string& s = strdict::Lookup(ids[i]);
          int cmp = s < lit ? -1 : (s > lit ? 1 : 0);
          it = verdicts.emplace(ids[i], CmpVerdict(t.op, sign * cmp)).first;
        }
        p = it->second;
      }
      return;
    }
    case ColumnVec::Enc::kBool: {
      if (t.lit.type() != ValueType::kBool) break;
      const std::vector<uint8_t>& v = c.bools();
      const int lit = t.lit.bool_value() ? 1 : 0;
      for (size_t i = begin; i < end; ++i) {
        uint8_t& p = pass[i - begin];
        if (!p) continue;
        if (c.IsNull(i)) {
          p = 0;
          continue;
        }
        int b = v[i] != 0 ? 1 : 0;
        p = CmpVerdict(t.op, sign * (b - lit));
      }
      return;
    }
    default:
      break;
  }
  // Mixed-type / variant cells: per-cell Values, still no row view.
  for (size_t i = begin; i < end; ++i) {
    uint8_t& p = pass[i - begin];
    if (!p) continue;
    if (c.IsNull(i)) {
      p = 0;
      continue;
    }
    Value cell = c.Get(i);
    int cmp = t.col_is_lhs ? cell.Compare(t.lit) : t.lit.Compare(cell);
    p = CmpVerdict(t.op, cmp);
  }
}

/// Aggregate partial state over one column within one morsel: sum/count
/// accumulate directly; min/max track the winning row index so the Value
/// materializes once per morsel instead of once per row.
struct VecAggState {
  double sum = 0.0;
  int64_t count = 0;
  size_t min_idx = SIZE_MAX;
  size_t max_idx = SIZE_MAX;
};

void UpdateVecAgg(VecAggState* s, const ColumnVec& col, size_t i) {
  if (col.IsNull(i)) return;
  ++s->count;
  switch (col.enc()) {
    case ColumnVec::Enc::kInt64:
      s->sum += static_cast<double>(col.ints()[i]);
      break;
    case ColumnVec::Enc::kDouble:
      s->sum += col.doubles()[i];
      break;
    case ColumnVec::Enc::kBool:
      s->sum += col.bools()[i] != 0 ? 1.0 : 0.0;
      break;
    case ColumnVec::Enc::kVariant: {
      auto d = col.variants()[i].AsDouble();
      if (d.ok()) s->sum += d.value();
      break;
    }
    default:  // strings: AsDouble fails, only count/min/max apply
      break;
  }
  if (s->min_idx == SIZE_MAX || col.CompareCells(i, col, s->min_idx) < 0) {
    s->min_idx = i;
  }
  if (s->max_idx == SIZE_MAX || col.CompareCells(i, col, s->max_idx) > 0) {
    s->max_idx = i;
  }
}

/// Folds a morsel-local vectorized state into the row-compatible AggState
/// (min/max materialize via ColumnVec::Get, preserving exact cell types).
void SealVecAgg(const VecAggState& vs, const ColumnVec& col, AggState* out) {
  out->sum = vs.sum;
  out->count = vs.count;
  if (vs.min_idx != SIZE_MAX) out->min_value = col.Get(vs.min_idx);
  if (vs.max_idx != SIZE_MAX) out->max_value = col.Get(vs.max_idx);
}

/// Sorts the identity permutation of [0, n) by `less` using the shared
/// chunked-parallel-sort + k-way-merge structure. `less` must be a total
/// order (callers tiebreak on the index), so the result is the unique
/// sorted permutation at every thread count.
template <typename Less>
Status SortPermutation(const ParallelCfg& cfg, size_t n, const Less& less,
                       std::vector<size_t>* out) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  size_t chunks = std::min(cfg.threads, MorselCount(n, cfg.grain));
  if (chunks <= 1) {
    std::sort(perm.begin(), perm.end(), less);
  } else {
    std::vector<size_t> bounds(chunks + 1);
    for (size_t c = 0; c <= chunks; ++c) bounds[c] = n * c / chunks;
    cfg.pool->ParallelFor(chunks, 1, cfg.threads, [&](const MorselRange& r) {
      std::sort(perm.begin() + bounds[r.index],
                perm.begin() + bounds[r.index + 1], less);
    });
    std::vector<size_t> head(bounds.begin(), bounds.end() - 1);
    std::vector<size_t> merged;
    merged.reserve(n);
    while (merged.size() < n) {
      if (merged.size() % kSerialCheckRows == 0) {
        DVMS_RETURN_IF_ERROR(governor::CheckPoint());
      }
      size_t best = chunks;
      for (size_t c = 0; c < chunks; ++c) {
        if (head[c] == bounds[c + 1]) continue;
        if (best == chunks || less(perm[head[c]], perm[head[best]])) {
          best = c;
        }
      }
      merged.push_back(perm[head[best]++]);
    }
    perm = std::move(merged);
  }
  *out = std::move(perm);
  return Status::OK();
}

}  // namespace

Result<TablePtr> CatalogRelationSource::Read(const std::string& relation,
                                             const VersionRef& version) const {
  DVMS_ASSIGN_OR_RETURN(VersionedTable * table, catalog_->Get(relation));
  switch (version.kind) {
    case VersionRef::Kind::kCurrent:
      return MakeTablePtr(table->current());
    case VersionRef::Kind::kVnow:
      return table->Version(version.offset);
    case VersionRef::Kind::kTnow:
      return table->StepVersion(version.offset);
  }
  return Status::Internal("bad version ref");
}

Result<Executor::InSets> Executor::BuildInSets(const PlanNode& plan) const {
  InSets sets;
  std::vector<std::string> names;
  plan.CollectInRelations(&names);
  for (const std::string& name : names) {
    std::string key = IdentKey(name);
    if (sets.count(key) > 0) continue;
    DVMS_ASSIGN_OR_RETURN(TablePtr table, source_->Read(name, VersionRef{}));
    auto set = std::make_shared<ValueSet>();
    const Table& t = *table;
    if (t.schema().num_columns() == 0) {
      return Status::ExecutionError("IN-relation '" + name + "' has no columns");
    }
    const ColumnVec& first = t.col(0);
    for (size_t i = 0; i < t.num_rows(); ++i) {
      if (!first.IsNull(i)) set->insert(first.Get(i));
    }
    sets.emplace(std::move(key), std::move(set));
  }
  return sets;
}

Result<std::unique_ptr<NodeResult>> Executor::Execute(
    const PlanNode& plan, const ExecOptions& opts) const {
  if (!plan.bound) {
    return Status::BindError("plan must be bound before execution");
  }
  DVMS_ASSIGN_OR_RETURN(InSets in_sets, BuildInSets(plan));
  EvalContext ctx;
  ctx.udfs = udfs_;
  ctx.in_sets = &in_sets;
  return Exec(plan, opts, ctx);
}

Result<Table> Executor::ExecuteToTable(const PlanNode& plan) const {
  DVMS_ASSIGN_OR_RETURN(std::unique_ptr<NodeResult> result, Execute(plan));
  return std::move(result->table);
}

Result<std::unique_ptr<NodeResult>> Executor::ExecScan(
    const PlanNode& node, const ExecOptions& opts) const {
  auto out = std::make_unique<NodeResult>();
  out->node = &node;
  DVMS_ASSIGN_OR_RETURN(TablePtr src,
                        source_->Read(node.relation, node.version));
  ParallelCfg cfg = ResolveParallel(opts);
  out->morsels_used =
      std::max<size_t>(1, MorselCount(src->num_rows(), cfg.grain));
  if (opts.vectorize) {
    // Columnar copy: bulk-append the source's column vectors (dictionary
    // ids stay ids); the shared source's row view is never materialized.
    DVMS_RETURN_IF_ERROR(governor::CheckPoint());
    DVMS_RETURN_IF_ERROR(governor::ChargeMemory(
        ApproxRowsBytes(src->num_rows(), src->schema().num_columns())));
    out->table = Table(node.OutputSchema());
    out->table.Reserve(src->num_rows());
    out->table.AppendRange(*src, 0, src->num_rows());
  } else {
    // Morsel-parallel row copy; each morsel writes a disjoint slice.
    const std::vector<Row>& src_rows = src->rows();
    DVMS_RETURN_IF_ERROR(governor::CheckPoint());
    DVMS_RETURN_IF_ERROR(governor::ChargeMemory(
        ApproxRowsBytes(src_rows.size(), src->schema().num_columns())));
    std::vector<Row> rows(src_rows.size());
    cfg.pool->ParallelFor(src_rows.size(), cfg.grain, cfg.threads,
                          [&](const MorselRange& r) {
                            for (size_t i = r.begin; i < r.end; ++i) {
                              rows[i] = src_rows[i];
                            }
                          });
    out->table = Table(node.OutputSchema(), std::move(rows));
  }
  if (opts.capture_lineage) {
    out->has_lineage = true;
    out->lineage.resize(out->table.num_rows());
    // A scan is a leaf: lineage maps output row i to "source row i", encoded
    // as child 0 / row i so provenance can read base-row ids directly.
    for (size_t i = 0; i < out->table.num_rows(); ++i) {
      out->lineage[i] = {{0, i}};
    }
  }
  return out;
}

Result<std::unique_ptr<NodeResult>> Executor::Exec(
    const PlanNode& node, const ExecOptions& opts,
    const EvalContext& ctx) const {
  const int64_t start_us = opts.analyze ? obs::NowMicros() : 0;
  Result<std::unique_ptr<NodeResult>> result =
      node.kind == PlanKind::kScan ? ExecScan(node, opts)
                                   : ExecImpl(node, opts, ctx);
  if (result.ok()) {
    NodeResult& r = *result.value();
    // Inclusive subtree time; the EXPLAIN ANALYZE report subtracts the
    // children to get self time.
    if (opts.analyze) r.exec_us = obs::NowMicros() - start_us;
    if (obs::Enabled()) {
      std::string key = std::string("exec.rows.") + PlanKindToString(node.kind);
      obs::Count(key.c_str(), r.table.num_rows());
    }
  }
  return result;
}

Result<std::unique_ptr<NodeResult>> Executor::ExecImpl(
    const PlanNode& node, const ExecOptions& opts,
    const EvalContext& ctx) const {
  auto out = std::make_unique<NodeResult>();
  out->node = &node;
  out->has_lineage = opts.capture_lineage;
  for (const auto& child : node.children) {
    DVMS_ASSIGN_OR_RETURN(std::unique_ptr<NodeResult> r,
                          Exec(*child, opts, ctx));
    out->children.push_back(std::move(r));
  }
  out->table = Table(node.OutputSchema());

  auto add_row = [&out, &opts](Row row, std::vector<LineageEntry> lin) {
    out->table.AppendUnchecked(std::move(row));
    if (opts.capture_lineage) out->lineage.push_back(std::move(lin));
  };

  // Morsel-driven parallelism where the plan hook allows it; partial
  // results always merge in morsel-index order so the output is identical
  // at every thread count.
  ParallelCfg cfg = ResolveParallel(opts);
  if (!node.Parallelizable()) cfg.threads = 1;

  switch (node.kind) {
    case PlanKind::kScan:
      return Status::Internal("unreachable");

    case PlanKind::kFilter: {
      const Table& in = out->children[0]->table;
      size_t morsels = MorselCount(in.num_rows(), cfg.grain);
      out->morsels_used = std::max<size_t>(1, morsels);
      std::vector<FilterTerm> terms;
      const bool vec =
          opts.vectorize && !in.IsRagged() &&
          CollectFilterTerms(*node.predicate, in.num_columns(), &terms);
      std::vector<std::vector<size_t>> kept(morsels);
      DVMS_RETURN_IF_ERROR(ForEachMorsel(
          cfg, in.num_rows(), [&](const MorselRange& r) -> Status {
            std::vector<size_t>& k = kept[r.index];
            if (vec) {
              // Term-major evaluation over the morsel's column runs.
              std::vector<uint8_t> pass(r.end - r.begin, 1);
              for (const FilterTerm& t : terms) {
                EvalFilterTermRange(in, t, r.begin, r.end, &pass);
              }
              for (size_t i = r.begin; i < r.end; ++i) {
                if (pass[i - r.begin]) k.push_back(i);
              }
              return Status::OK();
            }
            for (size_t i = r.begin; i < r.end; ++i) {
              DVMS_ASSIGN_OR_RETURN(
                  bool keep, EvalPredicate(*node.predicate, in.row(i), ctx));
              if (keep) k.push_back(i);
            }
            return Status::OK();
          }));
      size_t total_kept = 0;
      for (const std::vector<size_t>& k : kept) total_kept += k.size();
      DVMS_RETURN_IF_ERROR(governor::ChargeMemory(
          ApproxRowsBytes(total_kept, in.schema().num_columns())));
      out->table.Reserve(total_kept);
      for (const std::vector<size_t>& k : kept) {
        out->table.AppendGather(in, k);
        if (opts.capture_lineage) {
          for (size_t i : k) out->lineage.push_back({{0, i}});
        }
      }
      break;
    }

    case PlanKind::kProject: {
      const Table& in = out->children[0]->table;
      size_t morsels = MorselCount(in.num_rows(), cfg.grain);
      out->morsels_used = std::max<size_t>(1, morsels);
      std::vector<size_t> proj_cols;
      bool vec = opts.vectorize && !in.IsRagged();
      for (const auto& e : node.projections) {
        if (!vec) break;
        if (IsSimpleColumn(*e, in.num_columns())) {
          proj_cols.push_back(static_cast<size_t>(e->resolved_index));
        } else {
          vec = false;
        }
      }
      if (vec) {
        // Pure column selection: copy the referenced column vectors whole.
        DVMS_RETURN_IF_ERROR(governor::CheckPoint());
        DVMS_RETURN_IF_ERROR(governor::ChargeMemory(
            ApproxRowsBytes(in.num_rows(), node.projections.size())));
        out->table.Reserve(in.num_rows());
        out->table.AppendProjected(in, proj_cols);
        if (opts.capture_lineage) {
          for (size_t i = 0; i < in.num_rows(); ++i) {
            out->lineage.push_back({{0, i}});
          }
        }
        break;
      }
      std::vector<std::vector<Row>> built(morsels);
      DVMS_RETURN_IF_ERROR(ForEachMorsel(
          cfg, in.num_rows(), [&](const MorselRange& r) -> Status {
            std::vector<Row>& rows = built[r.index];
            rows.reserve(r.end - r.begin);
            for (size_t i = r.begin; i < r.end; ++i) {
              Row row;
              row.reserve(node.projections.size());
              for (const auto& e : node.projections) {
                DVMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, in.row(i), ctx));
                row.push_back(std::move(v));
              }
              rows.push_back(std::move(row));
            }
            return governor::ChargeMemory(
                ApproxRowsBytes(rows.size(), node.projections.size()));
          }));
      for (size_t mi = 0; mi < morsels; ++mi) {
        size_t base = MorselAt(in.num_rows(), cfg.grain, mi).begin;
        for (size_t off = 0; off < built[mi].size(); ++off) {
          add_row(std::move(built[mi][off]), {{0, base + off}});
        }
      }
      break;
    }

    case PlanKind::kJoin: {
      const Table& left = out->children[0]->table;
      const Table& right = out->children[1]->table;
      // The emit path is where a cross join blows up, so both governor
      // limits ride on it: a cooperative check every kSerialCheckRows
      // pairs examined, and a memory charge per batch of produced rows —
      // an over-budget join aborts within one batch of slack instead of
      // growing toward an OOM kill.
      const size_t out_width =
          left.schema().num_columns() + right.schema().num_columns();
      size_t pairs_seen = 0;
      size_t rows_uncharged = 0;
      auto emit = [&](size_t li, size_t ri) -> Status {
        if (++pairs_seen % kSerialCheckRows == 0) {
          DVMS_RETURN_IF_ERROR(governor::CheckPoint());
        }
        Row combined = left.row(li);
        const Row& r = right.row(ri);
        combined.insert(combined.end(), r.begin(), r.end());
        if (node.predicate != nullptr) {
          DVMS_ASSIGN_OR_RETURN(bool keep,
                                EvalPredicate(*node.predicate, combined, ctx));
          if (!keep) return Status::OK();
        }
        if (++rows_uncharged == kSerialCheckRows) {
          DVMS_RETURN_IF_ERROR(governor::ChargeMemory(
              ApproxRowsBytes(rows_uncharged, out_width)));
          rows_uncharged = 0;
        }
        add_row(std::move(combined), {{0, li}, {1, ri}});
        return Status::OK();
      };
      if (!node.equi_keys.empty()) {
        // Hash join: build on the right side.
        std::unordered_map<Row, std::vector<size_t>, RowHash, RowEq> build;
        DVMS_RETURN_IF_ERROR(governor::ChargeMemory(ApproxRowsBytes(
            right.num_rows(), node.equi_keys.size() + 1)));
        for (size_t ri = 0; ri < right.num_rows(); ++ri) {
          if (ri % (4 * kSerialCheckRows) == 0) {
            DVMS_RETURN_IF_ERROR(governor::CheckPoint());
          }
          Row key;
          key.reserve(node.equi_keys.size());
          bool has_null = false;
          for (const auto& kv : node.equi_keys) {
            DVMS_ASSIGN_OR_RETURN(Value v,
                                  EvalExpr(*kv.second, right.row(ri), ctx));
            if (v.is_null()) has_null = true;
            key.push_back(std::move(v));
          }
          if (!has_null) build[std::move(key)].push_back(ri);
        }
        for (size_t li = 0; li < left.num_rows(); ++li) {
          if (li % (4 * kSerialCheckRows) == 0) {
            DVMS_RETURN_IF_ERROR(governor::CheckPoint());
          }
          Row key;
          key.reserve(node.equi_keys.size());
          bool has_null = false;
          for (const auto& kv : node.equi_keys) {
            DVMS_ASSIGN_OR_RETURN(Value v,
                                  EvalExpr(*kv.first, left.row(li), ctx));
            if (v.is_null()) has_null = true;
            key.push_back(std::move(v));
          }
          if (has_null) continue;
          auto it = build.find(key);
          if (it == build.end()) continue;
          for (size_t ri : it->second) {
            DVMS_RETURN_IF_ERROR(emit(li, ri));
          }
        }
      } else {
        for (size_t li = 0; li < left.num_rows(); ++li) {
          for (size_t ri = 0; ri < right.num_rows(); ++ri) {
            DVMS_RETURN_IF_ERROR(emit(li, ri));
          }
        }
      }
      break;
    }

    case PlanKind::kAggregate: {
      const Table& in = out->children[0]->table;
      struct Group {
        Row key;
        std::vector<AggState> states;
        std::vector<LineageEntry> contributors;
      };
      struct MorselGroups {
        KeyMap index;
        std::vector<Group> groups;
      };
      const bool global = node.group_by.empty();
      const size_t num_aggs = node.aggregates.size();
      // Vectorizable when every group key and aggregate input is a plain
      // column: keys probe on cells (dictionary ids for a single string
      // key), updates run typed per-column loops, and min/max materialize
      // one Value per morsel-group instead of one per row. Sum order and
      // group discovery order match the row path exactly.
      std::vector<size_t> group_cols;
      std::vector<int> agg_cols;  // -1 = COUNT(*)
      bool vec = opts.vectorize && !in.IsRagged();
      for (const auto& e : node.group_by) {
        if (!vec) break;
        if (IsSimpleColumn(*e, in.num_columns())) {
          group_cols.push_back(static_cast<size_t>(e->resolved_index));
        } else {
          vec = false;
        }
      }
      for (const AggSpec& spec : node.aggregates) {
        if (!vec) break;
        if (spec.count_star) {
          agg_cols.push_back(-1);
        } else if (IsSimpleColumn(*spec.arg, in.num_columns())) {
          agg_cols.push_back(spec.arg->resolved_index);
        } else {
          vec = false;
        }
      }
      // Phase 1: per-morsel partial aggregation into thread-local hash
      // tables (no shared state).
      size_t morsels = MorselCount(in.num_rows(), cfg.grain);
      out->morsels_used = std::max<size_t>(1, morsels);
      std::vector<MorselGroups> partials(morsels);
      if (vec) {
        const bool dict_key =
            !global && group_cols.size() == 1 &&
            in.col(group_cols[0]).enc() == ColumnVec::Enc::kDict;
        DVMS_RETURN_IF_ERROR(ForEachMorsel(
            cfg, in.num_rows(), [&](const MorselRange& r) -> Status {
              MorselGroups& local = partials[r.index];
              std::vector<std::vector<VecAggState>> vstates;
              std::unordered_map<uint32_t, size_t> id_index;
              if (global) {
                local.groups.push_back(
                    {{}, std::vector<AggState>(num_aggs), {}});
                vstates.emplace_back(num_aggs);
              }
              for (size_t i = r.begin; i < r.end; ++i) {
                size_t gi;
                if (global) {
                  gi = 0;
                } else if (dict_key) {
                  // Interned string key: group on the id, no Value probe.
                  const ColumnVec& gcol = in.col(group_cols[0]);
                  uint32_t id = gcol.IsNull(i) ? strdict::kInvalidId
                                               : gcol.dict_ids()[i];
                  auto it = id_index.find(id);
                  if (it == id_index.end()) {
                    gi = local.groups.size();
                    id_index.emplace(id, gi);
                    local.groups.push_back({{gcol.Get(i)},
                                            std::vector<AggState>(num_aggs),
                                            {}});
                    vstates.emplace_back(num_aggs);
                  } else {
                    gi = it->second;
                  }
                } else {
                  Row key;
                  key.reserve(group_cols.size());
                  for (size_t gc : group_cols) key.push_back(in.ValueAt(i, gc));
                  auto it = local.index.find(key);
                  if (it == local.index.end()) {
                    gi = local.groups.size();
                    local.index.emplace(key, gi);
                    local.groups.push_back(
                        {std::move(key), std::vector<AggState>(num_aggs), {}});
                    vstates.emplace_back(num_aggs);
                  } else {
                    gi = it->second;
                  }
                }
                std::vector<VecAggState>& vs = vstates[gi];
                for (size_t a = 0; a < num_aggs; ++a) {
                  if (agg_cols[a] < 0) {
                    ++vs[a].count;  // COUNT(*): every row, NULLs included
                  } else {
                    UpdateVecAgg(&vs[a], in.col(agg_cols[a]), i);
                  }
                }
                if (opts.capture_lineage) {
                  local.groups[gi].contributors.push_back({0, i});
                }
              }
              for (size_t g = 0; g < local.groups.size(); ++g) {
                for (size_t a = 0; a < num_aggs; ++a) {
                  const ColumnVec* col =
                      agg_cols[a] < 0 ? nullptr : &in.col(agg_cols[a]);
                  if (col != nullptr) {
                    SealVecAgg(vstates[g][a], *col, &local.groups[g].states[a]);
                  } else {
                    local.groups[g].states[a].count = vstates[g][a].count;
                  }
                }
              }
              return governor::ChargeMemory(ApproxRowsBytes(
                  local.groups.size(), node.group_by.size() + num_aggs));
            }));
      } else {
      DVMS_RETURN_IF_ERROR(ForEachMorsel(
          cfg, in.num_rows(), [&](const MorselRange& r) -> Status {
            MorselGroups& local = partials[r.index];
            if (global) {
              local.groups.push_back({{}, std::vector<AggState>(num_aggs), {}});
            }
            for (size_t i = r.begin; i < r.end; ++i) {
              size_t gi;
              if (global) {
                gi = 0;
              } else {
                Row key;
                key.reserve(node.group_by.size());
                for (const auto& e : node.group_by) {
                  DVMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, in.row(i), ctx));
                  key.push_back(std::move(v));
                }
                auto it = local.index.find(key);
                if (it == local.index.end()) {
                  gi = local.groups.size();
                  local.index.emplace(key, gi);
                  local.groups.push_back(
                      {std::move(key), std::vector<AggState>(num_aggs), {}});
                } else {
                  gi = it->second;
                }
              }
              Group& g = local.groups[gi];
              for (size_t a = 0; a < num_aggs; ++a) {
                const AggSpec& spec = node.aggregates[a];
                if (spec.count_star) {
                  UpdateAgg(&g.states[a], spec, Value::Null());
                } else {
                  DVMS_ASSIGN_OR_RETURN(Value v,
                                        EvalExpr(*spec.arg, in.row(i), ctx));
                  UpdateAgg(&g.states[a], spec, v);
                }
              }
              if (opts.capture_lineage) g.contributors.push_back({0, i});
            }
            // Group hash tables are the aggregate's scratch: charge what
            // this morsel discovered.
            return governor::ChargeMemory(ApproxRowsBytes(
                local.groups.size(), node.group_by.size() + num_aggs));
          }));
      }
      // Phase 2: deterministic merge. Walking morsels in index order (and
      // each morsel's groups in first-seen order) makes global group
      // discovery order equal serial row order, and fixes the partial-sum
      // addition tree independent of thread scheduling.
      KeyMap index;
      std::vector<Group> groups;
      if (global) {
        groups.push_back({{}, std::vector<AggState>(num_aggs), {}});
      }
      for (MorselGroups& local : partials) {
        for (Group& lg : local.groups) {
          size_t gi;
          if (global) {
            gi = 0;
          } else {
            auto it = index.find(lg.key);
            if (it == index.end()) {
              gi = groups.size();
              index.emplace(lg.key, gi);
              groups.push_back(
                  {std::move(lg.key), std::vector<AggState>(num_aggs), {}});
            } else {
              gi = it->second;
            }
          }
          Group& g = groups[gi];
          for (size_t a = 0; a < num_aggs; ++a) {
            MergeAgg(&g.states[a], lg.states[a]);
          }
          if (opts.capture_lineage) {
            g.contributors.insert(g.contributors.end(),
                                  lg.contributors.begin(),
                                  lg.contributors.end());
          }
        }
      }
      // Deterministic output order: sort groups by key (stable, so any
      // keys comparing equal keep first-seen order).
      std::vector<size_t> order(groups.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(),
                       [&groups](size_t a, size_t b) {
                         return CompareRows(groups[a].key, groups[b].key) < 0;
                       });
      for (size_t gi : order) {
        Group& g = groups[gi];
        Row row = g.key;
        for (size_t a = 0; a < num_aggs; ++a) {
          row.push_back(FinalizeAgg(g.states[a], node.aggregates[a]));
        }
        add_row(std::move(row), std::move(g.contributors));
      }
      break;
    }

    case PlanKind::kUnion: {
      if (!node.union_distinct) {
        for (size_t c = 0; c < out->children.size(); ++c) {
          const Table& in = out->children[c]->table;
          out->table.AppendRange(in, 0, in.num_rows());
          if (opts.capture_lineage) {
            for (size_t i = 0; i < in.num_rows(); ++i) {
              out->lineage.push_back({{static_cast<uint32_t>(c), i}});
            }
          }
        }
        break;
      }
      KeyMap seen;
      for (size_t c = 0; c < out->children.size(); ++c) {
        const Table& in = out->children[c]->table;
        for (size_t i = 0; i < in.num_rows(); ++i) {
          if (i % kSerialCheckRows == 0) {
            DVMS_RETURN_IF_ERROR(governor::CheckPoint());
          }
          auto it = seen.find(in.row(i));
          if (it == seen.end()) {
            seen.emplace(in.row(i), out->table.num_rows());
            add_row(in.row(i), {{static_cast<uint32_t>(c), i}});
          } else if (opts.capture_lineage) {
            // Duplicates contribute lineage to the surviving row.
            out->lineage[it->second].push_back({static_cast<uint32_t>(c), i});
          }
        }
        DVMS_RETURN_IF_ERROR(governor::ChargeMemory(
            ApproxRowsBytes(in.num_rows(), in.schema().num_columns())));
      }
      break;
    }

    case PlanKind::kMinus: {
      const Table& left = out->children[0]->table;
      const Table& right = out->children[1]->table;
      std::unordered_map<Row, bool, RowHash, RowEq> right_rows;
      DVMS_RETURN_IF_ERROR(governor::ChargeMemory(
          ApproxRowsBytes(right.num_rows(), right.schema().num_columns())));
      for (const Row& r : right.rows()) right_rows.emplace(r, true);
      KeyMap seen;
      for (size_t i = 0; i < left.num_rows(); ++i) {
        if (i % kSerialCheckRows == 0) {
          DVMS_RETURN_IF_ERROR(governor::CheckPoint());
        }
        if (right_rows.count(left.row(i)) > 0) continue;
        auto it = seen.find(left.row(i));
        if (it == seen.end()) {
          seen.emplace(left.row(i), out->table.num_rows());
          add_row(left.row(i), {{0, i}});
        } else if (opts.capture_lineage) {
          out->lineage[it->second].push_back({0, i});
        }
      }
      break;
    }

    case PlanKind::kDistinct: {
      const Table& in = out->children[0]->table;
      KeyMap seen;
      DVMS_RETURN_IF_ERROR(governor::ChargeMemory(
          ApproxRowsBytes(in.num_rows(), in.schema().num_columns())));
      for (size_t i = 0; i < in.num_rows(); ++i) {
        if (i % kSerialCheckRows == 0) {
          DVMS_RETURN_IF_ERROR(governor::CheckPoint());
        }
        auto it = seen.find(in.row(i));
        if (it == seen.end()) {
          seen.emplace(in.row(i), out->table.num_rows());
          add_row(in.row(i), {{0, i}});
        } else if (opts.capture_lineage) {
          out->lineage[it->second].push_back({0, i});
        }
      }
      break;
    }

    case PlanKind::kOrderBy: {
      const Table& in = out->children[0]->table;
      const size_t n = in.num_rows();
      out->morsels_used = std::max<size_t>(1, MorselCount(n, cfg.grain));
      // Key vector + permutation are the sort's scratch footprint.
      DVMS_RETURN_IF_ERROR(governor::ChargeMemory(
          ApproxRowsBytes(n, node.order_exprs.size()) +
          static_cast<int64_t>(n * sizeof(size_t))));
      std::vector<size_t> order_cols;
      bool vec = opts.vectorize && !in.IsRagged();
      for (const auto& e : node.order_exprs) {
        if (!vec) break;
        if (IsSimpleColumn(*e, in.num_columns())) {
          order_cols.push_back(static_cast<size_t>(e->resolved_index));
        } else {
          vec = false;
        }
      }
      // The input-index tiebreak makes the comparator a total order, so
      // the sorted permutation is unique: chunked parallel sort + k-way
      // merge yields exactly what one serial stable sort would.
      std::vector<size_t> perm;
      if (vec) {
        // Sort keys are plain columns: compare cells in place (dictionary
        // ids short-circuit equal strings) — no key materialization.
        DVMS_RETURN_IF_ERROR(governor::CheckPoint());
        auto less = [&node, &in, &order_cols](size_t a, size_t b) {
          for (size_t k = 0; k < order_cols.size(); ++k) {
            const ColumnVec& c = in.col(order_cols[k]);
            int cmp = c.CompareCells(a, c, b);
            if (cmp != 0) return node.order_descending[k] ? cmp > 0 : cmp < 0;
          }
          return a < b;
        };
        DVMS_RETURN_IF_ERROR(SortPermutation(cfg, n, less, &perm));
      } else {
        // Phase 1: morsel-parallel sort-key evaluation into disjoint slots.
        std::vector<Row> keys(n);
        DVMS_RETURN_IF_ERROR(
            ForEachMorsel(cfg, n, [&](const MorselRange& r) -> Status {
              for (size_t i = r.begin; i < r.end; ++i) {
                Row key;
                key.reserve(node.order_exprs.size());
                for (const auto& e : node.order_exprs) {
                  DVMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, in.row(i), ctx));
                  key.push_back(std::move(v));
                }
                keys[i] = std::move(key);
              }
              return Status::OK();
            }));
        auto less = [&node, &keys](size_t a, size_t b) {
          const Row& ka = keys[a];
          const Row& kb = keys[b];
          for (size_t k = 0; k < ka.size(); ++k) {
            int c = ka[k].Compare(kb[k]);
            if (c != 0) return node.order_descending[k] ? c > 0 : c < 0;
          }
          return a < b;
        };
        DVMS_RETURN_IF_ERROR(SortPermutation(cfg, n, less, &perm));
      }
      out->table.Reserve(n);
      out->table.AppendGather(in, perm);
      if (opts.capture_lineage) {
        for (size_t i : perm) out->lineage.push_back({{0, i}});
      }
      break;
    }

    case PlanKind::kLimit: {
      const Table& in = out->children[0]->table;
      size_t n = std::min(node.limit, in.num_rows());
      out->table.Reserve(n);
      out->table.AppendRange(in, 0, n);
      if (opts.capture_lineage) {
        for (size_t i = 0; i < n; ++i) out->lineage.push_back({{0, i}});
      }
      break;
    }

    case PlanKind::kAlias: {
      const Table& in = out->children[0]->table;
      out->table.Reserve(in.num_rows());
      out->table.AppendRange(in, 0, in.num_rows());
      if (opts.capture_lineage) {
        for (size_t i = 0; i < in.num_rows(); ++i) {
          out->lineage.push_back({{0, i}});
        }
      }
      break;
    }
  }
  return out;
}

}  // namespace dvms
