#include "query/view.h"

#include <algorithm>

#include "common/schema.h"

namespace dvms {

void ComputeDependencies(ViewDef* def) {
  def->current_deps.clear();
  def->versioned_deps.clear();
  std::vector<std::pair<std::string, VersionRef>> scans;
  def->plan->CollectScans(&scans);
  std::unordered_set<std::string> current, versioned;
  for (const auto& [name, version] : scans) {
    std::string key = IdentKey(name);
    // `@tnow-j` states advance as events arrive within the transaction, so
    // they are live dependencies; only committed-past `@vnow-k` (k >= 1)
    // references are frozen during the interaction (and break recursion).
    bool live = version.is_current() || version.offset == 0 ||
                version.kind == VersionRef::Kind::kTnow;
    if (live) {
      if (current.insert(key).second) def->current_deps.push_back(name);
    } else {
      if (versioned.insert(key).second) def->versioned_deps.push_back(name);
    }
  }
  std::vector<std::string> in_rels;
  def->plan->CollectInRelations(&in_rels);
  for (const std::string& name : in_rels) {
    if (current.insert(IdentKey(name)).second) {
      def->current_deps.push_back(name);
    }
  }
}

Status ViewRegistry::CheckRecursion(const ViewDef& def) const {
  // DFS from def over current-version edges; reaching def.name again means
  // the program is recursive.
  std::string target = IdentKey(def.name);
  std::vector<std::string> stack(def.current_deps.begin(),
                                 def.current_deps.end());
  std::unordered_set<std::string> visited;
  while (!stack.empty()) {
    std::string key = IdentKey(stack.back());
    stack.pop_back();
    if (key == target) {
      return Status::BindError(
          "view '" + def.name +
          "' is recursive through current-version references; use @vnow-k "
          "(k >= 1) to reference a past version");
    }
    if (!visited.insert(key).second) continue;
    auto it = views_.find(key);
    if (it == views_.end()) continue;  // base/event relation: no out-edges
    for (const std::string& dep : it->second.current_deps) {
      stack.push_back(dep);
    }
  }
  return Status::OK();
}

Status ViewRegistry::Register(ViewDef def) {
  if (def.plan == nullptr) {
    return Status::InvalidArgument("view '" + def.name + "' has no plan");
  }
  ComputeDependencies(&def);
  DVMS_RETURN_IF_ERROR(CheckRecursion(def));
  std::string key = IdentKey(def.name);
  auto it = views_.find(key);
  if (it == views_.end()) {
    order_.push_back(key);
    views_.emplace(std::move(key), std::move(def));
  } else {
    it->second = std::move(def);  // redefinition (DeVIL 3 pattern)
  }
  return Status::OK();
}

Result<const ViewDef*> ViewRegistry::Get(const std::string& name) const {
  auto it = views_.find(IdentKey(name));
  if (it == views_.end()) {
    return Status::NotFound("no view named '" + name + "'");
  }
  return &it->second;
}

bool ViewRegistry::Has(const std::string& name) const {
  return views_.count(IdentKey(name)) > 0;
}

Result<std::vector<std::string>> ViewRegistry::TopoOrder() const {
  // Kahn's algorithm over view->view current-version edges.
  std::unordered_map<std::string, size_t> in_degree;
  std::unordered_map<std::string, std::vector<std::string>> rdeps;
  for (const std::string& key : order_) {
    in_degree.emplace(key, 0);
  }
  for (const std::string& key : order_) {
    const ViewDef& def = views_.at(key);
    for (const std::string& dep : def.current_deps) {
      std::string dep_key = IdentKey(dep);
      if (views_.count(dep_key) == 0) continue;
      rdeps[dep_key].push_back(key);
      ++in_degree[key];
    }
  }
  std::vector<std::string> ready;
  for (const std::string& key : order_) {
    if (in_degree[key] == 0) ready.push_back(key);
  }
  std::vector<std::string> out;
  while (!ready.empty()) {
    std::string key = ready.front();
    ready.erase(ready.begin());
    out.push_back(views_.at(key).name);
    auto it = rdeps.find(key);
    if (it == rdeps.end()) continue;
    for (const std::string& succ : it->second) {
      if (--in_degree[succ] == 0) ready.push_back(succ);
    }
  }
  if (out.size() != order_.size()) {
    return Status::Internal("view dependency graph contains a cycle");
  }
  return out;
}

Result<std::vector<std::string>> ViewRegistry::AffectedBy(
    const std::vector<std::string>& changed) const {
  std::unordered_set<std::string> dirty;
  for (const std::string& name : changed) dirty.insert(IdentKey(name));
  DVMS_ASSIGN_OR_RETURN(std::vector<std::string> topo, TopoOrder());
  std::vector<std::string> out;
  for (const std::string& name : topo) {
    const ViewDef& def = views_.at(IdentKey(name));
    bool affected = false;
    for (const std::string& dep : def.current_deps) {
      if (dirty.count(IdentKey(dep)) > 0) {
        affected = true;
        break;
      }
    }
    if (affected) {
      dirty.insert(IdentKey(name));
      out.push_back(name);
    }
  }
  return out;
}

std::vector<std::string> ViewRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(order_.size());
  for (const std::string& key : order_) {
    out.push_back(views_.at(key).name);
  }
  return out;
}

}  // namespace dvms
