#ifndef DVMS_QUERY_IVM_H_
#define DVMS_QUERY_IVM_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "expr/eval.h"
#include "storage/table.h"

namespace dvms {

/// Incremental maintenance structure for linked group-by-sum views under
/// crossfilter-style selection (Figure 1).
///
/// Recomputing every chart's `SELECT dim, SUM(measure) ... WHERE filter`
/// from the fact table on every brush change is the baseline the generic
/// ViewMaintainer implements. The crossfilter optimization precomputes the
/// 2-D marginal cube sum(measure | d_i, d_j) for every ordered dimension
/// pair, after which a selection on one dimension updates every other
/// chart by summing |selected| cube cells per group instead of scanning
/// the facts. bench_ablation_ivm measures both paths.
class CrossfilterCube {
 public:
  /// Builds marginals for all ordered pairs of `dims` over `measure`.
  static Result<CrossfilterCube> Build(const Table& fact,
                                       const std::vector<std::string>& dims,
                                       const std::string& measure);

  /// Unfiltered totals: one row (value, total) per distinct value of `dim`,
  /// sorted by value.
  Result<Table> GroupTotals(const std::string& dim) const;

  /// Filtered totals of `dim` with the selection `filter_dim IN values`.
  /// Schema (value, total), sorted by value; groups with no contribution
  /// appear with total 0 so bars keep their slots.
  Result<Table> FilteredGroupSums(const std::string& dim,
                                  const std::string& filter_dim,
                                  const ValueSet& values) const;

  /// Incremental append: folds new fact rows into every marginal.
  Status Update(const Table& delta);

  /// Number of (group value, filter value) cells across all pairs.
  size_t num_cells() const;

  const std::vector<std::string>& dims() const { return dims_; }

 private:
  using CellMap = std::unordered_map<Value, double, ValueHash, ValueEq>;
  struct Marginal {
    // group value -> (filter value -> sum)
    std::unordered_map<Value, CellMap, ValueHash, ValueEq> cells;
    // group value -> unfiltered total
    CellMap totals;
  };

  Result<const Marginal*> FindMarginal(const std::string& dim,
                                       const std::string& filter_dim) const;
  Status Fold(const Table& fact);

  std::vector<std::string> dims_;
  std::string measure_;
  std::vector<size_t> dim_cols_;
  size_t measure_col_ = 0;
  // marginals_[i * dims + j]: group dim i, filter dim j (i != j).
  std::vector<Marginal> marginals_;
  Schema fact_schema_;
};

}  // namespace dvms

#endif  // DVMS_QUERY_IVM_H_
