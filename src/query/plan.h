#ifndef DVMS_QUERY_PLAN_H_
#define DVMS_QUERY_PLAN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/schema.h"
#include "expr/expr.h"

namespace dvms {

enum class PlanKind {
  kScan,
  kFilter,
  kProject,
  kJoin,       // cross join + optional equi keys + residual predicate
  kAggregate,  // hash group-by
  kUnion,      // n-ary; distinct or ALL
  kMinus,      // set difference (distinct semantics)
  kDistinct,
  kOrderBy,
  kLimit,
  kAlias,  // re-qualifies child columns under a new relation alias
};

const char* PlanKindToString(PlanKind kind);

/// Which version of a relation a scan reads (DeVIL's `@vnow-k` / `@tnow-j`
/// suffixes). kCurrent is the working state.
struct VersionRef {
  enum class Kind { kCurrent, kVnow, kTnow };
  Kind kind = Kind::kCurrent;
  size_t offset = 0;

  static VersionRef Current() { return {}; }
  static VersionRef Vnow(size_t k) { return {Kind::kVnow, k}; }
  static VersionRef Tnow(size_t j) { return {Kind::kTnow, j}; }

  bool is_current() const { return kind == Kind::kCurrent; }
  std::string ToString() const;
};

/// One aggregate in an Aggregate node's output.
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  ExprPtr arg;  // null for COUNT(*)
  bool count_star = false;
  std::string output_name;
};

/// One column visible to expressions at some point in the plan, with the
/// qualifier it can be referenced through.
struct BoundField {
  std::string qualifier;  // table alias, may be empty
  std::string name;
  ValueType type = ValueType::kNull;
};

struct PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

/// A logical/physical plan node (the engine executes the logical plan
/// directly; the only physical choice — hash vs. nested-loop join — is made
/// inside the executor from `equi_keys`).
struct PlanNode {
  PlanKind kind;

  // kScan
  std::string relation;
  VersionRef version;
  std::string alias;  // defaults to relation name

  // kFilter / kJoin residual
  ExprPtr predicate;

  // kProject
  std::vector<ExprPtr> projections;
  std::vector<std::string> projection_names;

  // kJoin: pairs of (left-side expr, right-side expr) compared with '='.
  std::vector<std::pair<ExprPtr, ExprPtr>> equi_keys;

  // kAggregate
  std::vector<ExprPtr> group_by;
  std::vector<std::string> group_names;
  std::vector<AggSpec> aggregates;

  // kUnion
  bool union_distinct = true;

  // kOrderBy
  std::vector<ExprPtr> order_exprs;
  std::vector<bool> order_descending;

  // kLimit
  size_t limit = 0;

  std::vector<PlanPtr> children;

  // Filled in by the binder.
  bool bound = false;
  std::vector<BoundField> output_fields;

  /// Output schema derived from output_fields (after binding).
  Schema OutputSchema() const;

  /// Indented plan dump for debugging.
  std::string ToString(int indent = 0) const;

  /// Collects the names of relations scanned anywhere in this subtree,
  /// along with their version refs.
  void CollectScans(std::vector<std::pair<std::string, VersionRef>>* out) const;

  /// Collects relations referenced via IN/NOT IN predicates in this subtree.
  void CollectInRelations(std::vector<std::string>* out) const;

  /// Whether the executor may split this operator's input into morsels and
  /// process them on multiple threads. Order-sensitive hash operators
  /// (Union/Minus/Distinct) and the join build stay serial; the
  /// morsel-parallel operators merge partial results by morsel index so
  /// output is identical at any thread count.
  bool Parallelizable() const {
    switch (kind) {
      case PlanKind::kScan:
      case PlanKind::kFilter:
      case PlanKind::kProject:
      case PlanKind::kAggregate:
      case PlanKind::kOrderBy:
        return true;
      default:
        return false;
    }
  }
};

// ---- Construction helpers ----

PlanPtr MakeScan(std::string relation, VersionRef version = VersionRef::Current(),
                 std::string alias = "");
PlanPtr MakeFilter(PlanPtr child, ExprPtr predicate);
PlanPtr MakeProject(PlanPtr child, std::vector<ExprPtr> exprs,
                    std::vector<std::string> names);
PlanPtr MakeJoin(PlanPtr left, PlanPtr right,
                 std::vector<std::pair<ExprPtr, ExprPtr>> equi_keys = {},
                 ExprPtr residual = nullptr);
PlanPtr MakeAggregate(PlanPtr child, std::vector<ExprPtr> group_by,
                      std::vector<std::string> group_names,
                      std::vector<AggSpec> aggregates);
PlanPtr MakeUnion(std::vector<PlanPtr> children, bool distinct = true);
PlanPtr MakeMinus(PlanPtr left, PlanPtr right);
PlanPtr MakeDistinct(PlanPtr child);
PlanPtr MakeOrderBy(PlanPtr child, std::vector<ExprPtr> exprs,
                    std::vector<bool> descending);
PlanPtr MakeLimit(PlanPtr child, size_t limit);

/// Wraps a derived table (`FROM (SELECT ...) AS alias`) so its columns are
/// addressable through `alias`.
PlanPtr MakeAlias(PlanPtr child, std::string alias);

/// Deep copy (expressions are cloned too, so a bound copy can be re-bound).
PlanPtr ClonePlan(const PlanPtr& plan);

}  // namespace dvms

#endif  // DVMS_QUERY_PLAN_H_
