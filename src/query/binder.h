#ifndef DVMS_QUERY_BINDER_H_
#define DVMS_QUERY_BINDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "expr/udf_registry.h"
#include "query/plan.h"
#include "storage/catalog.h"

namespace dvms {

/// Supplies relation schemas during binding. Decoupled from Catalog so the
/// planner can resolve views that are declared but not yet materialized.
class SchemaResolver {
 public:
  virtual ~SchemaResolver() = default;
  virtual Result<Schema> ResolveRelation(const std::string& name) const = 0;
};

/// Resolver backed by a Catalog.
class CatalogSchemaResolver : public SchemaResolver {
 public:
  explicit CatalogSchemaResolver(const Catalog* catalog) : catalog_(catalog) {}
  Result<Schema> ResolveRelation(const std::string& name) const override;

 private:
  const Catalog* catalog_;
};

/// Resolves column references to flat row indexes, type-checks expressions,
/// verifies union compatibility, rejects impure scalar UDFs, and fills each
/// plan node's output_fields. Binding is idempotent.
class Binder {
 public:
  Binder(const SchemaResolver* resolver, const UdfRegistry* udfs)
      : resolver_(resolver), udfs_(udfs) {}

  /// Binds the whole tree bottom-up.
  Status Bind(PlanNode* node) const;

  /// Binds a standalone expression against an explicit field scope (used by
  /// the event recognizer for EVENT-statement predicates).
  Status BindExpr(Expr* expr, const std::vector<BoundField>& scope,
                  bool allow_aggregates = false) const;

 private:
  Status BindChildren(PlanNode* node) const;
  Status ResolveColumn(Expr* expr, const std::vector<BoundField>& scope) const;

  const SchemaResolver* resolver_;
  const UdfRegistry* udfs_;
};

}  // namespace dvms

#endif  // DVMS_QUERY_BINDER_H_
