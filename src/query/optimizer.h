#ifndef DVMS_QUERY_OPTIMIZER_H_
#define DVMS_QUERY_OPTIMIZER_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/ivm.h"
#include "query/plan.h"
#include "storage/catalog.h"

namespace dvms {

/// The Online Optimizer of Figure 3, specialized to the workload that
/// dominates Figure 1: crossfilter-shaped views.
///
/// When a view plan matches
///
///   SELECT g, SUM(m) FROM fact [WHERE f IN selection] GROUP BY g
///
/// with `fact` a base relation, the optimizer adopts the view and
/// maintains it from a precomputed 2-D marginal cube: a change to the
/// `selection` relation refreshes the view by summing |selection| cube
/// cells per group instead of rescanning the fact table. Cubes are shared
/// across views over the same (fact, measure, dim pair) and are
/// invalidated (lazily rebuilt) when the fact relation itself changes.
class CrossfilterOptimizer {
 public:
  explicit CrossfilterOptimizer(Catalog* catalog) : catalog_(catalog) {}

  /// Inspects a bound view plan; adopts it when it has the crossfilter
  /// shape. Safe to call for every view; returns true on adoption.
  /// Re-defining a view re-adopts (or un-adopts) it.
  bool TryAdopt(const std::string& view_name, const PlanNode& plan);

  /// Produces the adopted view's current contents from the cube.
  /// NotFound when the view is not adopted.
  Result<Table> Refresh(const std::string& view_name);

  /// Invalidates cubes built over `relation` (call when base data
  /// changes). Selection-relation changes need no invalidation — the
  /// selection is read fresh on every Refresh.
  void OnRelationChanged(const std::string& relation);

  bool IsAdopted(const std::string& view_name) const;
  size_t cube_count() const { return cubes_.size(); }
  size_t hits() const { return hits_; }
  size_t cube_builds() const { return cube_builds_; }

 private:
  struct AdoptedView {
    std::string fact;        // base relation scanned
    std::string group_col;   // fact column grouped on
    std::string measure;     // fact column summed
    std::string filter_col;  // fact column filtered (empty: totals view)
    std::string filter_rel;  // selection relation (empty: totals view)
    // Output schema details (the planner emits Project(Aggregate(...))).
    std::string group_out;
    std::string agg_out;
    bool group_first = true;  // column order in the view output
  };

  std::string CubeKey(const AdoptedView& view) const;
  Result<const CrossfilterCube*> GetOrBuildCube(const AdoptedView& view);

  Catalog* catalog_;
  std::unordered_map<std::string, AdoptedView> adopted_;  // key: view name
  std::unordered_map<std::string, std::unique_ptr<CrossfilterCube>> cubes_;
  size_t hits_ = 0;
  size_t cube_builds_ = 0;
};

}  // namespace dvms

#endif  // DVMS_QUERY_OPTIMIZER_H_
