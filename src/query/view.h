#ifndef DVMS_QUERY_VIEW_H_
#define DVMS_QUERY_VIEW_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "query/plan.h"

namespace dvms {

/// One DeVIL assignment statement `NAME = SELECT ...` compiled to a plan.
struct ViewDef {
  std::string name;
  PlanPtr plan;  // bound
  /// True when the statement was wrapped in render(...) — the view is a
  /// marks relation whose updates trigger rasterization.
  bool renders = false;
  /// Table UDF applied to the plan's output on every recompute (layout
  /// computations); empty for plain views.
  std::string table_udf;
  /// Relations this view reads at their *current* version (scan or IN).
  /// These edges drive recomputation order and the recursion check.
  std::vector<std::string> current_deps;
  /// Relations read at past versions (@vnow-k / @tnow-j). Excluded from the
  /// dependency graph — this is DeVIL's mechanism for breaking recursion.
  std::vector<std::string> versioned_deps;
};

/// Computes both dependency lists from the plan.
void ComputeDependencies(ViewDef* def);

/// The set of registered views plus their dependency graph. Enforces
/// DeVIL's recursion ban: a view may not (transitively) read its own
/// current version; references through `@vnow-k` (k >= 1) are allowed.
class ViewRegistry {
 public:
  /// Registers or redefines a view. Fails on recursion through
  /// current-version references.
  Status Register(ViewDef def);

  Result<const ViewDef*> Get(const std::string& name) const;
  bool Has(const std::string& name) const;

  /// All views in a valid evaluation order (dependencies first).
  Result<std::vector<std::string>> TopoOrder() const;

  /// Views that transitively depend on any relation in `changed`, in
  /// evaluation order.
  Result<std::vector<std::string>> AffectedBy(
      const std::vector<std::string>& changed) const;

  /// Registration order (view names as given).
  std::vector<std::string> Names() const;

 private:
  /// Detects a current-version cycle that would be introduced by `def`.
  Status CheckRecursion(const ViewDef& def) const;

  std::unordered_map<std::string, ViewDef> views_;  // key: IdentKey(name)
  std::vector<std::string> order_;                  // IdentKeys
};

}  // namespace dvms

#endif  // DVMS_QUERY_VIEW_H_
