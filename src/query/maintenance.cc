#include "query/maintenance.h"

#include "common/fault.h"
#include "governor/governor.h"
#include "obs/trace.h"

namespace dvms {

ViewMaintainer::ViewMaintainer(Catalog* catalog, const UdfRegistry* udfs)
    : catalog_(catalog), udfs_(udfs) {}

Status ViewMaintainer::DefineView(const std::string& name, PlanPtr plan,
                                  RelationKind kind,
                                  const std::string& table_udf) {
  CatalogSchemaResolver resolver(catalog_);
  Binder binder(&resolver, udfs_);
  DVMS_RETURN_IF_ERROR(binder.Bind(plan.get()));
  Schema schema = plan->OutputSchema();
  if (!table_udf.empty()) {
    DVMS_ASSIGN_OR_RETURN(const TableUdf* udf, udfs_->FindTable(table_udf));
    if (!udf->pure) {
      return Status::BindError("table UDF '" + table_udf +
                               "' is not pure; only render may have side "
                               "effects");
    }
    DVMS_ASSIGN_OR_RETURN(schema, udf->schema_fn(schema));
  }

  if (catalog_->Exists(name)) {
    DVMS_ASSIGN_OR_RETURN(RelationKind existing_kind, catalog_->KindOf(name));
    if (existing_kind == RelationKind::kBase ||
        existing_kind == RelationKind::kEvent) {
      return Status::BindError("cannot redefine " +
                               std::string(RelationKindToString(existing_kind)) +
                               " relation '" + name + "' as a view");
    }
    DVMS_ASSIGN_OR_RETURN(VersionedTable * table, catalog_->Get(name));
    if (!table->schema().UnionCompatible(schema)) {
      return Status::BindError(
          "redefinition of view '" + name +
          "' changes its schema incompatibly: [" + table->schema().ToString() +
          "] vs [" + schema.ToString() + "]");
    }
  } else {
    DVMS_RETURN_IF_ERROR(
        catalog_->CreateTable(name, std::move(schema), kind).status());
  }

  if (optimizer_ != nullptr && table_udf.empty()) {
    optimizer_->TryAdopt(name, *plan);
  }
  ViewDef def;
  def.name = name;
  def.plan = std::move(plan);
  def.renders = (kind == RelationKind::kMarks);
  def.table_udf = table_udf;
  return registry_.Register(std::move(def));
}

Status ViewMaintainer::RecomputeView(const std::string& name) {
  obs::Span span("view.recompute");
  obs::Count("view.recomputes");
  // Fault site: a failed delta application / recompute must leave the
  // surrounding statement batch rollbackable, never half-applied. The
  // governor check here bounds deadline overrun across a long view chain
  // to one recompute's morsels.
  DVMS_RETURN_IF_ERROR(fault::MaybeInject(FaultSite::kIvmApply));
  DVMS_RETURN_IF_ERROR(governor::CheckPoint());
  // Online-optimizer fast path: adopted views refresh from their cube.
  if (optimizer_ != nullptr && !capture_lineage_ &&
      optimizer_->IsAdopted(name)) {
    auto refreshed = optimizer_->Refresh(name);
    if (refreshed.ok()) {
      DVMS_ASSIGN_OR_RETURN(VersionedTable * table, catalog_->Get(name));
      DVMS_RETURN_IF_ERROR(table->SetCurrent(std::move(refreshed).value()));
      ++recompute_count_;
      return Status::OK();
    }
    // Fall back to plan execution on any optimizer error.
  }
  DVMS_ASSIGN_OR_RETURN(const ViewDef* def, registry_.Get(name));
  Executor exec(catalog_, udfs_);
  ExecOptions opts;
  opts.capture_lineage = capture_lineage_ && def->table_udf.empty();
  opts.pool = pool_;
  opts.num_threads = num_threads_;
  DVMS_ASSIGN_OR_RETURN(std::unique_ptr<NodeResult> result,
                        exec.Execute(*def->plan, opts));
  if (!def->table_udf.empty()) {
    // Layout post-processing; row-level lineage does not survive the UDF.
    DVMS_ASSIGN_OR_RETURN(const TableUdf* udf,
                          udfs_->FindTable(def->table_udf));
    DVMS_ASSIGN_OR_RETURN(result->table, udf->fn(result->table, {}));
  }
  DVMS_ASSIGN_OR_RETURN(VersionedTable * table, catalog_->Get(name));
  if (capture_lineage_ && def->table_udf.empty()) {
    // Keep the full operator-result tree (including the root table, whose
    // row order matches the materialized view) for provenance walks.
    DVMS_RETURN_IF_ERROR(table->SetCurrent(Table(result->table)));
    last_results_[IdentKey(name)] = std::move(result);
  } else {
    DVMS_RETURN_IF_ERROR(table->SetCurrent(std::move(result->table)));
  }
  ++recompute_count_;
  return Status::OK();
}

Status ViewMaintainer::RecomputeAll() {
  DVMS_ASSIGN_OR_RETURN(std::vector<std::string> order, registry_.TopoOrder());
  for (const std::string& name : order) {
    DVMS_RETURN_IF_ERROR(RecomputeView(name));
  }
  return Status::OK();
}

Status ViewMaintainer::OnChanged(const std::vector<std::string>& changed) {
  if (optimizer_ != nullptr) {
    for (const std::string& name : changed) {
      optimizer_->OnRelationChanged(name);
    }
  }
  DVMS_ASSIGN_OR_RETURN(std::vector<std::string> affected,
                        registry_.AffectedBy(changed));
  for (const std::string& name : affected) {
    DVMS_RETURN_IF_ERROR(RecomputeView(name));
  }
  return Status::OK();
}

Result<const NodeResult*> ViewMaintainer::LastResult(
    const std::string& view) const {
  auto it = last_results_.find(IdentKey(view));
  if (it == last_results_.end()) {
    return Status::NotFound("no lineage recorded for view '" + view +
                            "' (is capture_lineage on?)");
  }
  return it->second.get();
}

void ViewMaintainer::SnapshotCommitted() { committed_results_ = last_results_; }

Result<const NodeResult*> ViewMaintainer::CommittedResult(
    const std::string& view) const {
  auto it = committed_results_.find(IdentKey(view));
  if (it == committed_results_.end()) {
    return Status::NotFound("no committed lineage snapshot for view '" + view +
                            "'");
  }
  return it->second.get();
}

}  // namespace dvms
