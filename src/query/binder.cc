#include "query/binder.h"

namespace dvms {

Result<Schema> CatalogSchemaResolver::ResolveRelation(
    const std::string& name) const {
  DVMS_ASSIGN_OR_RETURN(VersionedTable * table, catalog_->Get(name));
  return table->schema();
}

Status Binder::ResolveColumn(Expr* expr,
                             const std::vector<BoundField>& scope) const {
  int found = -1;
  for (size_t i = 0; i < scope.size(); ++i) {
    const BoundField& f = scope[i];
    if (!IdentEquals(f.name, expr->column)) continue;
    if (!expr->qualifier.empty() && !IdentEquals(f.qualifier, expr->qualifier)) {
      continue;
    }
    if (found >= 0) {
      return Status::BindError("ambiguous column reference '" +
                               expr->ToString() + "'");
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    return Status::BindError("unknown column '" + expr->ToString() + "'");
  }
  expr->resolved_index = found;
  expr->resolved_type = scope[static_cast<size_t>(found)].type;
  return Status::OK();
}

Status Binder::BindExpr(Expr* expr, const std::vector<BoundField>& scope,
                        bool allow_aggregates) const {
  switch (expr->kind) {
    case ExprKind::kLiteral:
      expr->resolved_type = expr->literal.type();
      return Status::OK();
    case ExprKind::kColumnRef:
      return ResolveColumn(expr, scope);
    case ExprKind::kUnary: {
      DVMS_RETURN_IF_ERROR(
          BindExpr(expr->children[0].get(), scope, allow_aggregates));
      expr->resolved_type = expr->unary_op == UnaryOp::kNot
                                ? ValueType::kBool
                                : expr->children[0]->resolved_type;
      return Status::OK();
    }
    case ExprKind::kBinary: {
      DVMS_RETURN_IF_ERROR(
          BindExpr(expr->children[0].get(), scope, allow_aggregates));
      DVMS_RETURN_IF_ERROR(
          BindExpr(expr->children[1].get(), scope, allow_aggregates));
      switch (expr->binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod: {
          ValueType a = expr->children[0]->resolved_type;
          ValueType b = expr->children[1]->resolved_type;
          if (expr->binary_op == BinaryOp::kAdd && a == ValueType::kString &&
              b == ValueType::kString) {
            expr->resolved_type = ValueType::kString;
          } else if (a == ValueType::kInt64 && b == ValueType::kInt64) {
            expr->resolved_type = ValueType::kInt64;
          } else {
            expr->resolved_type = ValueType::kDouble;
          }
          return Status::OK();
        }
        default:
          expr->resolved_type = ValueType::kBool;
          return Status::OK();
      }
    }
    case ExprKind::kFunctionCall: {
      DVMS_ASSIGN_OR_RETURN(const ScalarUdf* udf,
                            udfs_->FindScalar(expr->function_name));
      if (!udf->pure) {
        return Status::BindError("UDF '" + expr->function_name +
                                 "' is not pure; DeVIL restricts scalar UDFs "
                                 "in view definitions to pure functions");
      }
      if (udf->arity >= 0 &&
          static_cast<size_t>(udf->arity) != expr->children.size()) {
        return Status::BindError(
            "UDF '" + expr->function_name + "' expects " +
            std::to_string(udf->arity) + " arguments, got " +
            std::to_string(expr->children.size()));
      }
      for (auto& c : expr->children) {
        DVMS_RETURN_IF_ERROR(BindExpr(c.get(), scope, allow_aggregates));
      }
      // `if(cond, a, b)` returns the type of its branches.
      if (IdentEquals(expr->function_name, "if") &&
          expr->children.size() == 3) {
        expr->resolved_type = expr->children[1]->resolved_type;
      } else {
        expr->resolved_type = udf->return_type;
      }
      return Status::OK();
    }
    case ExprKind::kAggregateCall: {
      if (!allow_aggregates) {
        return Status::BindError("aggregate '" + expr->ToString() +
                                 "' is not allowed in this context");
      }
      if (!expr->count_star) {
        DVMS_RETURN_IF_ERROR(BindExpr(expr->children[0].get(), scope,
                                      /*allow_aggregates=*/false));
      }
      switch (expr->agg_func) {
        case AggFunc::kCount:
          expr->resolved_type = ValueType::kInt64;
          break;
        case AggFunc::kSum:
        case AggFunc::kAvg:
          expr->resolved_type = ValueType::kDouble;
          break;
        case AggFunc::kMin:
        case AggFunc::kMax:
          expr->resolved_type =
              expr->count_star ? ValueType::kDouble
                               : expr->children[0]->resolved_type;
          break;
      }
      return Status::OK();
    }
    case ExprKind::kInRelation: {
      DVMS_RETURN_IF_ERROR(
          BindExpr(expr->children[0].get(), scope, allow_aggregates));
      // Verify the relation exists and has at least one column.
      DVMS_ASSIGN_OR_RETURN(Schema rel_schema,
                            resolver_->ResolveRelation(expr->in_relation));
      if (rel_schema.num_columns() == 0) {
        return Status::BindError("IN-relation '" + expr->in_relation +
                                 "' has no columns");
      }
      expr->resolved_type = ValueType::kBool;
      return Status::OK();
    }
  }
  return Status::Internal("unknown expression kind in binder");
}

Status Binder::BindChildren(PlanNode* node) const {
  for (auto& c : node->children) {
    DVMS_RETURN_IF_ERROR(Bind(c.get()));
  }
  return Status::OK();
}

Status Binder::Bind(PlanNode* node) const {
  DVMS_RETURN_IF_ERROR(BindChildren(node));
  node->output_fields.clear();

  switch (node->kind) {
    case PlanKind::kScan: {
      DVMS_ASSIGN_OR_RETURN(Schema schema,
                            resolver_->ResolveRelation(node->relation));
      for (const Column& col : schema.columns()) {
        node->output_fields.push_back({node->alias, col.name, col.type});
      }
      break;
    }
    case PlanKind::kFilter: {
      const auto& scope = node->children[0]->output_fields;
      DVMS_RETURN_IF_ERROR(BindExpr(node->predicate.get(), scope));
      node->output_fields = scope;
      break;
    }
    case PlanKind::kProject: {
      const auto& scope = node->children[0]->output_fields;
      if (node->projections.size() != node->projection_names.size()) {
        return Status::BindError("projection list and name list differ");
      }
      for (size_t i = 0; i < node->projections.size(); ++i) {
        DVMS_RETURN_IF_ERROR(BindExpr(node->projections[i].get(), scope));
        node->output_fields.push_back(
            {"", node->projection_names[i],
             node->projections[i]->resolved_type});
      }
      break;
    }
    case PlanKind::kJoin: {
      const auto& left = node->children[0]->output_fields;
      const auto& right = node->children[1]->output_fields;
      // Equi keys bind against their own side (the executor evaluates them
      // on the side's row alone).
      for (auto& kv : node->equi_keys) {
        DVMS_RETURN_IF_ERROR(BindExpr(kv.first.get(), left));
        DVMS_RETURN_IF_ERROR(BindExpr(kv.second.get(), right));
      }
      std::vector<BoundField> combined = left;
      combined.insert(combined.end(), right.begin(), right.end());
      if (node->predicate != nullptr) {
        DVMS_RETURN_IF_ERROR(BindExpr(node->predicate.get(), combined));
      }
      node->output_fields = std::move(combined);
      break;
    }
    case PlanKind::kAggregate: {
      const auto& scope = node->children[0]->output_fields;
      if (node->group_by.size() != node->group_names.size()) {
        return Status::BindError("GROUP BY list and name list differ");
      }
      for (size_t i = 0; i < node->group_by.size(); ++i) {
        DVMS_RETURN_IF_ERROR(BindExpr(node->group_by[i].get(), scope));
        node->output_fields.push_back(
            {"", node->group_names[i], node->group_by[i]->resolved_type});
      }
      for (AggSpec& agg : node->aggregates) {
        ValueType out_type = ValueType::kDouble;
        if (agg.count_star) {
          out_type = ValueType::kInt64;
        } else {
          if (agg.arg == nullptr) {
            return Status::BindError("aggregate without argument");
          }
          DVMS_RETURN_IF_ERROR(BindExpr(agg.arg.get(), scope));
          switch (agg.func) {
            case AggFunc::kCount:
              out_type = ValueType::kInt64;
              break;
            case AggFunc::kSum:
            case AggFunc::kAvg:
              out_type = ValueType::kDouble;
              break;
            case AggFunc::kMin:
            case AggFunc::kMax:
              out_type = agg.arg->resolved_type;
              break;
          }
        }
        node->output_fields.push_back({"", agg.output_name, out_type});
      }
      break;
    }
    case PlanKind::kUnion: {
      if (node->children.empty()) {
        return Status::BindError("UNION requires at least one input");
      }
      Schema first = node->children[0]->OutputSchema();
      for (size_t i = 1; i < node->children.size(); ++i) {
        Schema other = node->children[i]->OutputSchema();
        if (!first.UnionCompatible(other)) {
          return Status::BindError(
              "UNION inputs are not union-compatible: [" + first.ToString() +
              "] vs [" + other.ToString() + "]");
        }
      }
      node->output_fields = node->children[0]->output_fields;
      break;
    }
    case PlanKind::kMinus: {
      Schema left = node->children[0]->OutputSchema();
      Schema right = node->children[1]->OutputSchema();
      if (!left.UnionCompatible(right)) {
        return Status::BindError("MINUS inputs are not union-compatible: [" +
                                 left.ToString() + "] vs [" +
                                 right.ToString() + "]");
      }
      node->output_fields = node->children[0]->output_fields;
      break;
    }
    case PlanKind::kDistinct:
    case PlanKind::kLimit:
      node->output_fields = node->children[0]->output_fields;
      break;
    case PlanKind::kAlias:
      for (const BoundField& f : node->children[0]->output_fields) {
        node->output_fields.push_back({node->alias, f.name, f.type});
      }
      break;
    case PlanKind::kOrderBy: {
      const auto& scope = node->children[0]->output_fields;
      if (node->order_exprs.size() != node->order_descending.size()) {
        return Status::BindError("ORDER BY expression/direction lists differ");
      }
      for (auto& e : node->order_exprs) {
        DVMS_RETURN_IF_ERROR(BindExpr(e.get(), scope));
      }
      node->output_fields = scope;
      break;
    }
  }
  node->bound = true;
  return Status::OK();
}

}  // namespace dvms
