#include "query/ivm.h"

#include <algorithm>

#include "common/schema.h"
#include "common/thread_pool.h"
#include "governor/governor.h"
#include "obs/trace.h"

namespace dvms {

Result<CrossfilterCube> CrossfilterCube::Build(
    const Table& fact, const std::vector<std::string>& dims,
    const std::string& measure) {
  if (dims.size() < 2) {
    return Status::InvalidArgument(
        "crossfilter needs at least two dimensions");
  }
  CrossfilterCube cube;
  cube.dims_ = dims;
  cube.measure_ = measure;
  cube.fact_schema_ = fact.schema();
  for (const std::string& dim : dims) {
    DVMS_ASSIGN_OR_RETURN(size_t col, fact.schema().IndexOf(dim));
    cube.dim_cols_.push_back(col);
  }
  DVMS_ASSIGN_OR_RETURN(cube.measure_col_, fact.schema().IndexOf(measure));
  cube.marginals_.resize(dims.size() * dims.size());
  DVMS_RETURN_IF_ERROR(cube.Fold(fact));
  return cube;
}

Status CrossfilterCube::Fold(const Table& fact) {
  obs::Span span("ivm.fold");
  obs::Count("ivm.folds");
  obs::Count("ivm.fold_rows", fact.num_rows());
  const size_t d = dims_.size();
  // Morsel-batched delta application: each fixed-size batch of fact rows
  // folds into its own scratch marginal set (in parallel when threads are
  // available), then scratch sets merge into the cube in batch-index
  // order. Per-cell sums therefore depend only on the batch layout, never
  // on thread count.
  constexpr size_t kBatchRows = 4096;
  const size_t n = fact.num_rows();
  const size_t batches = MorselCount(n, kBatchRows);
  std::vector<std::vector<Marginal>> partials(batches);
  // Per-batch governor status: a deadline expiring mid-fold aborts within
  // one batch of work, and each batch charges its scratch marginals.
  std::vector<Status> batch_status(batches);
  ThreadPool::Global()->ParallelFor(
      n, kBatchRows, /*max_threads=*/0, [&](const MorselRange& r) {
        Status& st = batch_status[r.index];
        st = governor::CheckPoint();
        if (!st.ok()) return;
        std::vector<Marginal>& local = partials[r.index];
        local.resize(d * d);
        size_t touched = 0;
        // Columnar fold: the measure reads straight off its typed column
        // and each dimension cell materializes once per row — the fact
        // table's row view is never built.
        const ColumnVec& mcol = fact.col(measure_col_);
        std::vector<Value> dvals(d);
        for (size_t ri = r.begin; ri < r.end; ++ri) {
          if (mcol.IsNull(ri)) continue;  // NULL contributes nothing
          double v;
          switch (mcol.enc()) {
            case ColumnVec::Enc::kInt64:
              v = static_cast<double>(mcol.ints()[ri]);
              break;
            case ColumnVec::Enc::kDouble:
              v = mcol.doubles()[ri];
              break;
            case ColumnVec::Enc::kBool:
              v = mcol.bools()[ri] != 0 ? 1.0 : 0.0;
              break;
            default: {
              auto m = mcol.Get(ri).AsDouble();
              if (!m.ok()) continue;  // non-numeric contributes nothing
              v = m.value();
              break;
            }
          }
          for (size_t i = 0; i < d; ++i) dvals[i] = fact.ValueAt(ri, dim_cols_[i]);
          for (size_t i = 0; i < d; ++i) {
            const Value& gval = dvals[i];
            for (size_t j = 0; j < d; ++j) {
              if (i == j) continue;
              local[i * d + j].cells[gval][dvals[j]] += v;
            }
            local[i * d + (i == 0 ? 1 : 0)].totals[gval] += v;
          }
          touched += d * d;
        }
        // Upper bound on the cells this batch may have added (~48 bytes
        // per map node: key/value pair + bucket overhead).
        st = governor::ChargeMemory(static_cast<int64_t>(touched) * 48);
      });
  for (Status& st : batch_status) {
    DVMS_RETURN_IF_ERROR(std::move(st));
  }
  for (std::vector<Marginal>& local : partials) {
    for (size_t k = 0; k < local.size(); ++k) {
      for (auto& [gval, cells] : local[k].cells) {
        CellMap& dst = marginals_[k].cells[gval];
        for (auto& [fval, sum] : cells) dst[fval] += sum;
      }
      for (auto& [gval, sum] : local[k].totals) {
        marginals_[k].totals[gval] += sum;
      }
    }
  }
  return Status::OK();
}

Status CrossfilterCube::Update(const Table& delta) {
  if (!fact_schema_.UnionCompatible(delta.schema())) {
    return Status::TypeError("delta schema does not match fact schema");
  }
  return Fold(delta);
}

Result<const CrossfilterCube::Marginal*> CrossfilterCube::FindMarginal(
    const std::string& dim, const std::string& filter_dim) const {
  size_t gi = dims_.size(), fi = dims_.size();
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (IdentEquals(dims_[i], dim)) gi = i;
    if (IdentEquals(dims_[i], filter_dim)) fi = i;
  }
  if (gi == dims_.size()) {
    return Status::NotFound("'" + dim + "' is not a crossfilter dimension");
  }
  if (fi == dims_.size()) {
    return Status::NotFound("'" + filter_dim +
                            "' is not a crossfilter dimension");
  }
  if (gi == fi) {
    return Status::InvalidArgument(
        "group and filter dimension must differ (crossfilter never filters "
        "a chart by its own dimension)");
  }
  return &marginals_[gi * dims_.size() + fi];
}

namespace {

Table MakeSumsTable(std::vector<std::pair<Value, double>> rows) {
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.first.Compare(b.first) < 0;
  });
  Table out(Schema({{"value", ValueType::kNull}, {"total", ValueType::kDouble}}));
  for (auto& [value, total] : rows) {
    out.AppendUnchecked({value, Value::Double(total)});
  }
  return out;
}

}  // namespace

Result<Table> CrossfilterCube::GroupTotals(const std::string& dim) const {
  // Totals live on the (dim, other) marginal for an arbitrary other.
  size_t gi = dims_.size();
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (IdentEquals(dims_[i], dim)) gi = i;
  }
  if (gi == dims_.size()) {
    return Status::NotFound("'" + dim + "' is not a crossfilter dimension");
  }
  const Marginal& marginal = marginals_[gi * dims_.size() + (gi == 0 ? 1 : 0)];
  std::vector<std::pair<Value, double>> rows;
  rows.reserve(marginal.totals.size());
  for (const auto& [value, total] : marginal.totals) {
    rows.emplace_back(value, total);
  }
  return MakeSumsTable(std::move(rows));
}

Result<Table> CrossfilterCube::FilteredGroupSums(const std::string& dim,
                                                 const std::string& filter_dim,
                                                 const ValueSet& values) const {
  DVMS_ASSIGN_OR_RETURN(const Marginal* marginal,
                        FindMarginal(dim, filter_dim));
  std::vector<std::pair<Value, double>> rows;
  rows.reserve(marginal->cells.size());
  for (const auto& [gval, cells] : marginal->cells) {
    double sum = 0;
    for (const Value& f : values) {
      auto it = cells.find(f);
      if (it != cells.end()) sum += it->second;
    }
    rows.emplace_back(gval, sum);
  }
  return MakeSumsTable(std::move(rows));
}

size_t CrossfilterCube::num_cells() const {
  size_t n = 0;
  for (const Marginal& marginal : marginals_) {
    for (const auto& [gval, cells] : marginal.cells) {
      n += cells.size();
    }
  }
  return n;
}

}  // namespace dvms
