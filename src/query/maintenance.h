#ifndef DVMS_QUERY_MAINTENANCE_H_
#define DVMS_QUERY_MAINTENANCE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/binder.h"
#include "query/executor.h"
#include "query/optimizer.h"
#include "query/view.h"
#include "storage/catalog.h"

namespace dvms {

/// Maintains materialized views over the catalog: binds view plans, creates
/// their backing relations, and recomputes affected views in dependency
/// order when inputs change (the Executor role in Figure 3 of the paper).
///
/// Maintenance here is full recomputation of affected views; the
/// crossfilter-style incremental path lives in query/ivm.h and is compared
/// against this baseline in bench_ablation_ivm.
class ViewMaintainer {
 public:
  ViewMaintainer(Catalog* catalog, const UdfRegistry* udfs);

  /// Defines (or redefines) a view. Binds the plan, creates the catalog
  /// relation on first definition, and registers the dependency edges.
  /// `kind` should be kView or kMarks. A non-empty `table_udf` names a
  /// registered table UDF applied to the plan output on every recompute.
  Status DefineView(const std::string& name, PlanPtr plan,
                    RelationKind kind = RelationKind::kView,
                    const std::string& table_udf = "");

  /// Recomputes every view in dependency order.
  Status RecomputeAll();

  /// Recomputes one view (not its dependents).
  Status RecomputeView(const std::string& name);

  /// Recomputes the views transitively affected by changes to `changed`
  /// relations (base or event tables, or directly poked views).
  Status OnChanged(const std::vector<std::string>& changed);

  const ViewRegistry& registry() const { return registry_; }

  /// When true, every recompute captures row-level lineage (eager
  /// provenance, §3.1) and retains the operator-result tree per view.
  void set_capture_lineage(bool capture) { capture_lineage_ = capture; }
  bool capture_lineage() const { return capture_lineage_; }

  /// The operator-result tree from the most recent recompute of `view`.
  /// Requires capture_lineage(); NotFound before the first recompute.
  Result<const NodeResult*> LastResult(const std::string& view) const;

  /// Snapshots the current lineage trees as the "committed" generation.
  /// Provenance queries against `@vnow-1` versions (DeVIL 4) read these.
  void SnapshotCommitted();

  /// The lineage tree for `view` as of the last SnapshotCommitted().
  Result<const NodeResult*> CommittedResult(const std::string& view) const;

  /// View-cache (lineage tree) snapshot for engine rollback: both caches
  /// hold shared_ptrs, so save/restore is O(#views) pointer copies.
  struct LineageSnapshot {
    std::unordered_map<std::string, std::shared_ptr<NodeResult>> last;
    std::unordered_map<std::string, std::shared_ptr<NodeResult>> committed;
    size_t recompute_count = 0;
  };
  LineageSnapshot SaveLineage() const {
    return {last_results_, committed_results_, recompute_count_};
  }
  void RestoreLineage(LineageSnapshot snapshot) {
    last_results_ = std::move(snapshot.last);
    committed_results_ = std::move(snapshot.committed);
    recompute_count_ = snapshot.recompute_count;
  }

  /// Total number of view recomputations performed (for benches).
  size_t recompute_count() const { return recompute_count_; }

  /// Installs the Online Optimizer (Figure 3): adopted views refresh from
  /// precomputed structures instead of plan re-execution. Disabled while
  /// capture_lineage() is on (adopted refreshes carry no row lineage).
  void set_optimizer(CrossfilterOptimizer* optimizer) {
    optimizer_ = optimizer;
  }

  /// Parallelism for view recomputation: every plan execution runs with
  /// `num_threads` morsel workers on `pool` (nullptr = the global pool;
  /// num_threads 0 = the pool's width). Results are identical at any
  /// setting — see ExecOptions.
  void set_parallelism(ThreadPool* pool, size_t num_threads) {
    pool_ = pool;
    num_threads_ = num_threads;
  }

 private:
  Catalog* catalog_;
  const UdfRegistry* udfs_;
  CrossfilterOptimizer* optimizer_ = nullptr;
  ThreadPool* pool_ = nullptr;
  size_t num_threads_ = 0;
  ViewRegistry registry_;
  bool capture_lineage_ = false;
  std::unordered_map<std::string, std::shared_ptr<NodeResult>> last_results_;
  std::unordered_map<std::string, std::shared_ptr<NodeResult>>
      committed_results_;
  size_t recompute_count_ = 0;
};

}  // namespace dvms

#endif  // DVMS_QUERY_MAINTENANCE_H_
