#include "query/plan.h"

namespace dvms {

const char* PlanKindToString(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan:
      return "Scan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kUnion:
      return "Union";
    case PlanKind::kMinus:
      return "Minus";
    case PlanKind::kDistinct:
      return "Distinct";
    case PlanKind::kOrderBy:
      return "OrderBy";
    case PlanKind::kLimit:
      return "Limit";
    case PlanKind::kAlias:
      return "Alias";
  }
  return "?";
}

std::string VersionRef::ToString() const {
  switch (kind) {
    case Kind::kCurrent:
      return "";
    case Kind::kVnow:
      return "@vnow-" + std::to_string(offset);
    case Kind::kTnow:
      return "@tnow-" + std::to_string(offset);
  }
  return "";
}

Schema PlanNode::OutputSchema() const {
  Schema schema;
  for (const BoundField& f : output_fields) {
    schema.AddColumn({f.name, f.type});
  }
  return schema;
}

std::string PlanNode::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string out = pad + PlanKindToString(kind);
  switch (kind) {
    case PlanKind::kScan:
      out += " " + relation + version.ToString();
      if (!alias.empty() && alias != relation) out += " AS " + alias;
      break;
    case PlanKind::kFilter:
      out += " [" + predicate->ToString() + "]";
      break;
    case PlanKind::kProject: {
      out += " [";
      for (size_t i = 0; i < projections.size(); ++i) {
        if (i > 0) out += ", ";
        out += projections[i]->ToString() + " AS " + projection_names[i];
      }
      out += "]";
      break;
    }
    case PlanKind::kJoin: {
      if (!equi_keys.empty()) {
        out += " on [";
        for (size_t i = 0; i < equi_keys.size(); ++i) {
          if (i > 0) out += ", ";
          out += equi_keys[i].first->ToString() + " = " +
                 equi_keys[i].second->ToString();
        }
        out += "]";
      }
      if (predicate != nullptr) out += " where [" + predicate->ToString() + "]";
      break;
    }
    case PlanKind::kAggregate: {
      out += " group=[";
      for (size_t i = 0; i < group_by.size(); ++i) {
        if (i > 0) out += ", ";
        out += group_by[i]->ToString();
      }
      out += "] aggs=[";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) out += ", ";
        const AggSpec& a = aggregates[i];
        out += std::string(AggFuncToString(a.func)) + "(" +
               (a.count_star ? "*" : a.arg->ToString()) + ") AS " +
               a.output_name;
      }
      out += "]";
      break;
    }
    case PlanKind::kUnion:
      out += union_distinct ? " DISTINCT" : " ALL";
      break;
    case PlanKind::kLimit:
      out += " " + std::to_string(limit);
      break;
    case PlanKind::kAlias:
      out += " AS " + alias;
      break;
    default:
      break;
  }
  out += "\n";
  for (const auto& c : children) out += c->ToString(indent + 1);
  return out;
}

void PlanNode::CollectScans(
    std::vector<std::pair<std::string, VersionRef>>* out) const {
  if (kind == PlanKind::kScan) out->emplace_back(relation, version);
  for (const auto& c : children) c->CollectScans(out);
}

void PlanNode::CollectInRelations(std::vector<std::string>* out) const {
  auto visit_expr = [out](const ExprPtr& e) {
    if (e != nullptr) e->CollectInRelations(out);
  };
  visit_expr(predicate);
  for (const auto& e : projections) visit_expr(e);
  for (const auto& kv : equi_keys) {
    visit_expr(kv.first);
    visit_expr(kv.second);
  }
  for (const auto& e : group_by) visit_expr(e);
  for (const auto& a : aggregates) visit_expr(a.arg);
  for (const auto& e : order_exprs) visit_expr(e);
  for (const auto& c : children) c->CollectInRelations(out);
}

PlanPtr MakeScan(std::string relation, VersionRef version, std::string alias) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kScan;
  n->alias = alias.empty() ? relation : std::move(alias);
  n->relation = std::move(relation);
  n->version = version;
  return n;
}

PlanPtr MakeFilter(PlanPtr child, ExprPtr predicate) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kFilter;
  n->predicate = std::move(predicate);
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr MakeProject(PlanPtr child, std::vector<ExprPtr> exprs,
                    std::vector<std::string> names) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kProject;
  n->projections = std::move(exprs);
  n->projection_names = std::move(names);
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr MakeJoin(PlanPtr left, PlanPtr right,
                 std::vector<std::pair<ExprPtr, ExprPtr>> equi_keys,
                 ExprPtr residual) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kJoin;
  n->equi_keys = std::move(equi_keys);
  n->predicate = std::move(residual);
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  return n;
}

PlanPtr MakeAggregate(PlanPtr child, std::vector<ExprPtr> group_by,
                      std::vector<std::string> group_names,
                      std::vector<AggSpec> aggregates) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kAggregate;
  n->group_by = std::move(group_by);
  n->group_names = std::move(group_names);
  n->aggregates = std::move(aggregates);
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr MakeUnion(std::vector<PlanPtr> children, bool distinct) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kUnion;
  n->union_distinct = distinct;
  n->children = std::move(children);
  return n;
}

PlanPtr MakeMinus(PlanPtr left, PlanPtr right) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kMinus;
  n->children.push_back(std::move(left));
  n->children.push_back(std::move(right));
  return n;
}

PlanPtr MakeDistinct(PlanPtr child) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kDistinct;
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr MakeOrderBy(PlanPtr child, std::vector<ExprPtr> exprs,
                    std::vector<bool> descending) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kOrderBy;
  n->order_exprs = std::move(exprs);
  n->order_descending = std::move(descending);
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr MakeLimit(PlanPtr child, size_t limit) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kLimit;
  n->limit = limit;
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr MakeAlias(PlanPtr child, std::string alias) {
  auto n = std::make_shared<PlanNode>();
  n->kind = PlanKind::kAlias;
  n->alias = std::move(alias);
  n->children.push_back(std::move(child));
  return n;
}

PlanPtr ClonePlan(const PlanPtr& plan) {
  auto n = std::make_shared<PlanNode>(*plan);
  auto clone_expr = [](ExprPtr& e) {
    if (e != nullptr) e = CloneExpr(e);
  };
  clone_expr(n->predicate);
  for (auto& e : n->projections) clone_expr(e);
  for (auto& kv : n->equi_keys) {
    clone_expr(kv.first);
    clone_expr(kv.second);
  }
  for (auto& e : n->group_by) clone_expr(e);
  for (auto& a : n->aggregates) clone_expr(a.arg);
  for (auto& e : n->order_exprs) clone_expr(e);
  n->children.clear();
  for (const auto& c : plan->children) n->children.push_back(ClonePlan(c));
  return n;
}

}  // namespace dvms
