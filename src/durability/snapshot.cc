#include "durability/snapshot.h"

namespace dvms {

namespace {

constexpr uint8_t kSnapshotFormatVersion = 1;
constexpr uint64_t kMaxSnapshotCount = 1ull << 28;

Status CountError(uint64_t n, const char* what) {
  return Status::ExecutionError("snapshot decode: implausible " +
                                std::string(what) + " count " +
                                std::to_string(n));
}

void EncodeTablePtr(const TablePtr& t, BinaryWriter* w) {
  w->PutBool(t != nullptr);
  if (t != nullptr) EncodeTable(*t, w);
}

Result<TablePtr> DecodeTablePtr(BinaryReader* r) {
  DVMS_ASSIGN_OR_RETURN(bool present, r->GetBool());
  if (!present) return TablePtr();
  DVMS_ASSIGN_OR_RETURN(Table t, DecodeTable(r));
  return MakeTablePtr(std::move(t));
}

}  // namespace

void EncodeVersionedTableState(const VersionedTable::DurableState& s,
                               BinaryWriter* w) {
  EncodeTable(s.current, w);
  w->PutU32(static_cast<uint32_t>(s.committed.size()));
  for (const TablePtr& t : s.committed) EncodeTablePtr(t, w);
  w->PutU32(static_cast<uint32_t>(s.steps.size()));
  for (const TablePtr& t : s.steps) EncodeTablePtr(t, w);
  EncodeTablePtr(s.txn_base, w);
  w->PutBool(s.in_transaction);
  w->PutU64(s.epoch);
}

Result<VersionedTable::DurableState> DecodeVersionedTableState(
    BinaryReader* r) {
  VersionedTable::DurableState s;
  DVMS_ASSIGN_OR_RETURN(s.current, DecodeTable(r));
  DVMS_ASSIGN_OR_RETURN(uint32_t n_committed, r->GetU32());
  if (n_committed > kMaxSnapshotCount) return CountError(n_committed, "version");
  s.committed.reserve(n_committed);
  for (uint32_t i = 0; i < n_committed; ++i) {
    DVMS_ASSIGN_OR_RETURN(TablePtr t, DecodeTablePtr(r));
    s.committed.push_back(std::move(t));
  }
  DVMS_ASSIGN_OR_RETURN(uint32_t n_steps, r->GetU32());
  if (n_steps > kMaxSnapshotCount) return CountError(n_steps, "step");
  s.steps.reserve(n_steps);
  for (uint32_t i = 0; i < n_steps; ++i) {
    DVMS_ASSIGN_OR_RETURN(TablePtr t, DecodeTablePtr(r));
    s.steps.push_back(std::move(t));
  }
  DVMS_ASSIGN_OR_RETURN(s.txn_base, DecodeTablePtr(r));
  DVMS_ASSIGN_OR_RETURN(s.in_transaction, r->GetBool());
  DVMS_ASSIGN_OR_RETURN(s.epoch, r->GetU64());
  return s;
}

void EncodeMatcherState(const PatternMatcher::SavedState& s, BinaryWriter* w) {
  w->PutBool(s.active);
  w->PutU64(s.pos);
  EncodeRow(s.slots, w);
  w->PutU32(static_cast<uint32_t>(s.exists_satisfied.size()));
  for (bool b : s.exists_satisfied) w->PutBool(b);
}

Result<PatternMatcher::SavedState> DecodeMatcherState(BinaryReader* r) {
  PatternMatcher::SavedState s;
  DVMS_ASSIGN_OR_RETURN(s.active, r->GetBool());
  DVMS_ASSIGN_OR_RETURN(uint64_t pos, r->GetU64());
  s.pos = static_cast<size_t>(pos);
  DVMS_ASSIGN_OR_RETURN(s.slots, DecodeRow(r));
  DVMS_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  if (n > kMaxSnapshotCount) return CountError(n, "exists-flag");
  s.exists_satisfied.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    DVMS_ASSIGN_OR_RETURN(bool b, r->GetBool());
    s.exists_satisfied[i] = b;
  }
  return s;
}

void EncodeSchedulerState(const StreamScheduler::DurableState& s,
                          BinaryWriter* w) {
  w->PutU64(s.coeffs_per_tick);
  w->PutI64(s.policy.budget_us);
  w->PutU64(s.policy.max_retries);
  w->PutI64(s.policy.retry_backoff_us);
  w->PutU32(static_cast<uint32_t>(s.tiles.size()));
  for (const StreamScheduler::DurableState::TileEntry& e : s.tiles) {
    w->PutString(e.tile.id);
    w->PutU32(static_cast<uint32_t>(e.tile.utility.size()));
    for (double u : e.tile.utility) w->PutDouble(u);
    w->PutU64(e.tile.sent_coeffs);
    w->PutDouble(e.probability);
  }
  w->PutU64(s.total_sent);
  w->PutU64(s.stats.ticks);
  w->PutU64(s.stats.deadline_misses);
  w->PutU64(s.stats.faults_injected);
  w->PutU64(s.stats.retries);
  w->PutU64(s.stats.degraded_serves);
}

Result<StreamScheduler::DurableState> DecodeSchedulerState(BinaryReader* r) {
  StreamScheduler::DurableState s;
  DVMS_ASSIGN_OR_RETURN(uint64_t coeffs, r->GetU64());
  s.coeffs_per_tick = static_cast<size_t>(coeffs);
  DVMS_ASSIGN_OR_RETURN(s.policy.budget_us, r->GetI64());
  DVMS_ASSIGN_OR_RETURN(uint64_t max_retries, r->GetU64());
  s.policy.max_retries = static_cast<size_t>(max_retries);
  DVMS_ASSIGN_OR_RETURN(s.policy.retry_backoff_us, r->GetI64());
  DVMS_ASSIGN_OR_RETURN(uint32_t n_tiles, r->GetU32());
  if (n_tiles > kMaxSnapshotCount) return CountError(n_tiles, "tile");
  s.tiles.reserve(n_tiles);
  for (uint32_t i = 0; i < n_tiles; ++i) {
    StreamScheduler::DurableState::TileEntry e;
    DVMS_ASSIGN_OR_RETURN(e.tile.id, r->GetString());
    DVMS_ASSIGN_OR_RETURN(uint32_t n_u, r->GetU32());
    if (n_u > kMaxSnapshotCount) return CountError(n_u, "utility");
    e.tile.utility.reserve(n_u);
    for (uint32_t j = 0; j < n_u; ++j) {
      DVMS_ASSIGN_OR_RETURN(double u, r->GetDouble());
      e.tile.utility.push_back(u);
    }
    DVMS_ASSIGN_OR_RETURN(uint64_t sent, r->GetU64());
    e.tile.sent_coeffs = static_cast<size_t>(sent);
    DVMS_ASSIGN_OR_RETURN(e.probability, r->GetDouble());
    s.tiles.push_back(std::move(e));
  }
  DVMS_ASSIGN_OR_RETURN(uint64_t total_sent, r->GetU64());
  s.total_sent = static_cast<size_t>(total_sent);
  DVMS_ASSIGN_OR_RETURN(uint64_t v, r->GetU64());
  s.stats.ticks = static_cast<size_t>(v);
  DVMS_ASSIGN_OR_RETURN(v, r->GetU64());
  s.stats.deadline_misses = static_cast<size_t>(v);
  DVMS_ASSIGN_OR_RETURN(v, r->GetU64());
  s.stats.faults_injected = static_cast<size_t>(v);
  DVMS_ASSIGN_OR_RETURN(v, r->GetU64());
  s.stats.retries = static_cast<size_t>(v);
  DVMS_ASSIGN_OR_RETURN(v, r->GetU64());
  s.stats.degraded_serves = static_cast<size_t>(v);
  return s;
}

std::string EncodeEngineSnapshot(const EngineSnapshot& snapshot) {
  BinaryWriter w;
  w.PutU8(kSnapshotFormatVersion);
  w.PutU64(snapshot.last_lsn);

  w.PutU32(static_cast<uint32_t>(snapshot.definition_ops.size()));
  for (const std::string& op : snapshot.definition_ops) w.PutString(op);

  w.PutU32(static_cast<uint32_t>(snapshot.relations.size()));
  for (const EngineSnapshot::RelationState& rel : snapshot.relations) {
    w.PutString(rel.name);
    EncodeVersionedTableState(rel.state, &w);
  }

  w.PutU32(static_cast<uint32_t>(snapshot.matchers.size()));
  for (const PatternMatcher::SavedState& m : snapshot.matchers) {
    EncodeMatcherState(m, &w);
  }

  w.PutU64(snapshot.counters.events_processed);
  w.PutU64(snapshot.counters.transactions_started);
  w.PutU64(snapshot.counters.transactions_committed);
  w.PutU64(snapshot.counters.transactions_aborted);
  w.PutU64(snapshot.counters.renders);
  w.PutU64(snapshot.counters.trace_recomputes);
  w.PutU64(snapshot.counters.interactions_rolled_back);

  w.PutU32(static_cast<uint32_t>(snapshot.undo_history.size()));
  for (const auto& commit : snapshot.undo_history) {
    w.PutU32(static_cast<uint32_t>(commit.size()));
    for (const auto& [name, table] : commit) {
      w.PutString(name);
      EncodeTable(table, &w);
    }
  }
  w.PutU64(snapshot.undo_cursor);

  w.PutBool(snapshot.has_scheduler);
  if (snapshot.has_scheduler) EncodeSchedulerState(snapshot.scheduler, &w);
  return w.Take();
}

Result<EngineSnapshot> DecodeEngineSnapshot(const std::string& payload) {
  BinaryReader r(payload);
  EngineSnapshot s;
  DVMS_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != kSnapshotFormatVersion) {
    return Status::ExecutionError("snapshot decode: unsupported format v" +
                                  std::to_string(version));
  }
  DVMS_ASSIGN_OR_RETURN(s.last_lsn, r.GetU64());

  DVMS_ASSIGN_OR_RETURN(uint32_t n_defs, r.GetU32());
  if (n_defs > kMaxSnapshotCount) return CountError(n_defs, "definition-op");
  s.definition_ops.reserve(n_defs);
  for (uint32_t i = 0; i < n_defs; ++i) {
    DVMS_ASSIGN_OR_RETURN(std::string op, r.GetString());
    s.definition_ops.push_back(std::move(op));
  }

  DVMS_ASSIGN_OR_RETURN(uint32_t n_rels, r.GetU32());
  if (n_rels > kMaxSnapshotCount) return CountError(n_rels, "relation");
  s.relations.reserve(n_rels);
  for (uint32_t i = 0; i < n_rels; ++i) {
    EngineSnapshot::RelationState rel;
    DVMS_ASSIGN_OR_RETURN(rel.name, r.GetString());
    DVMS_ASSIGN_OR_RETURN(rel.state, DecodeVersionedTableState(&r));
    s.relations.push_back(std::move(rel));
  }

  DVMS_ASSIGN_OR_RETURN(uint32_t n_matchers, r.GetU32());
  if (n_matchers > kMaxSnapshotCount) return CountError(n_matchers, "matcher");
  s.matchers.reserve(n_matchers);
  for (uint32_t i = 0; i < n_matchers; ++i) {
    DVMS_ASSIGN_OR_RETURN(PatternMatcher::SavedState m, DecodeMatcherState(&r));
    s.matchers.push_back(std::move(m));
  }

  DVMS_ASSIGN_OR_RETURN(s.counters.events_processed, r.GetU64());
  DVMS_ASSIGN_OR_RETURN(s.counters.transactions_started, r.GetU64());
  DVMS_ASSIGN_OR_RETURN(s.counters.transactions_committed, r.GetU64());
  DVMS_ASSIGN_OR_RETURN(s.counters.transactions_aborted, r.GetU64());
  DVMS_ASSIGN_OR_RETURN(s.counters.renders, r.GetU64());
  DVMS_ASSIGN_OR_RETURN(s.counters.trace_recomputes, r.GetU64());
  DVMS_ASSIGN_OR_RETURN(s.counters.interactions_rolled_back, r.GetU64());

  DVMS_ASSIGN_OR_RETURN(uint32_t n_commits, r.GetU32());
  if (n_commits > kMaxSnapshotCount) return CountError(n_commits, "undo-commit");
  s.undo_history.reserve(n_commits);
  for (uint32_t i = 0; i < n_commits; ++i) {
    DVMS_ASSIGN_OR_RETURN(uint32_t n_tables, r.GetU32());
    if (n_tables > kMaxSnapshotCount) return CountError(n_tables, "undo-table");
    std::vector<std::pair<std::string, Table>> commit;
    commit.reserve(n_tables);
    for (uint32_t j = 0; j < n_tables; ++j) {
      DVMS_ASSIGN_OR_RETURN(std::string name, r.GetString());
      DVMS_ASSIGN_OR_RETURN(Table table, DecodeTable(&r));
      commit.emplace_back(std::move(name), std::move(table));
    }
    s.undo_history.push_back(std::move(commit));
  }
  DVMS_ASSIGN_OR_RETURN(s.undo_cursor, r.GetU64());

  DVMS_ASSIGN_OR_RETURN(s.has_scheduler, r.GetBool());
  if (s.has_scheduler) {
    DVMS_ASSIGN_OR_RETURN(s.scheduler, DecodeSchedulerState(&r));
  }
  if (!r.AtEnd()) {
    return Status::ExecutionError("snapshot decode: " +
                                  std::to_string(r.remaining()) +
                                  " trailing bytes");
  }
  return s;
}

}  // namespace dvms
