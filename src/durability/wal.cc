#include "durability/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cstring>

#include "common/env.h"
#include "common/fault.h"
#include "durability/crc32c.h"
#include "obs/trace.h"

namespace dvms {

namespace {

std::atomic<int64_t> g_crash_after_wal_bytes{-1};

/// WAL file writes honor the torn-write crash hook: when the hook's byte
/// budget runs out inside this chunk, the prefix that fits is written (and
/// synced, so the torn state is what recovery will actually see) and the
/// process exits as if SIGKILLed mid-write. Everything else delegates to
/// the shared env::WriteFully loop.
Status WalFileWrite(Env* env, int fd, const char* data, size_t n,
                    const std::string& path) {
  int64_t budget = g_crash_after_wal_bytes.load(std::memory_order_relaxed);
  if (budget >= 0) {
    if (static_cast<uint64_t>(budget) < n) {
      size_t partial = static_cast<size_t>(budget);
      while (partial > 0) {
        Result<size_t> w = env->Write(fd, data, partial, path);
        if (!w.ok() || w.value() == 0) break;
        data += w.value();
        partial -= w.value();
      }
      env->Fsync(fd, path);
      ::_exit(42);
    }
    g_crash_after_wal_bytes.store(budget - static_cast<int64_t>(n),
                                  std::memory_order_relaxed);
  }
  return env::WriteFully(env, fd, data, n, path);
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, 4);
  return v;  // the build targets are little-endian; codec.cc matches
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  std::memcpy(&v, p, 8);
  return v;
}

void StoreU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }
void StoreU64(char* p, uint64_t v) { std::memcpy(p, &v, 8); }

uint32_t FrameCrc(uint64_t lsn, const std::string& payload) {
  char lsn_bytes[8];
  StoreU64(lsn_bytes, lsn);
  uint32_t crc = Crc32c(lsn_bytes, sizeof(lsn_bytes));
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  return MaskCrc(crc);
}

}  // namespace

Result<WalFsyncMode> ParseWalFsyncMode(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "always") return WalFsyncMode::kAlways;
  if (lower == "batch") return WalFsyncMode::kBatch;
  if (lower == "off") return WalFsyncMode::kOff;
  return Status::InvalidArgument("unknown WAL fsync mode '" + name +
                                 "' (expected always, batch, or off)");
}

const char* WalFsyncModeToString(WalFsyncMode mode) {
  switch (mode) {
    case WalFsyncMode::kAlways:
      return "always";
    case WalFsyncMode::kBatch:
      return "batch";
    case WalFsyncMode::kOff:
      return "off";
  }
  return "?";
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path,
                                                     uint64_t first_lsn,
                                                     WalFsyncMode mode) {
  DVMS_RETURN_IF_ERROR(fault::MaybeInject(FaultSite::kDurabilityIo));
  Env* env = env::Active();
  DVMS_ASSIGN_OR_RETURN(
      int fd, env->Open(path, O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644));
  std::unique_ptr<WalWriter> writer(new WalWriter(path, fd, 0, mode));
  char header[kWalHeaderBytes];
  std::memcpy(header, kWalMagic, sizeof(kWalMagic));
  StoreU64(header + 8, first_lsn);
  DVMS_RETURN_IF_ERROR(WalFileWrite(env, fd, header, sizeof(header), path));
  writer->offset_ = kWalHeaderBytes;
  // The header must be durable before any frame is acknowledged; a segment
  // with frames but no header would be unrecoverable.
  if (mode != WalFsyncMode::kOff) DVMS_RETURN_IF_ERROR(writer->Sync());
  return writer;
}

Result<std::unique_ptr<WalWriter>> WalWriter::OpenForAppend(
    const std::string& path, uint64_t valid_bytes, WalFsyncMode mode) {
  DVMS_RETURN_IF_ERROR(fault::MaybeInject(FaultSite::kDurabilityIo));
  Env* env = env::Active();
  DVMS_ASSIGN_OR_RETURN(int fd, env->Open(path, O_WRONLY | O_CLOEXEC, 0));
  std::unique_ptr<WalWriter> writer(new WalWriter(path, fd, valid_bytes, mode));
  // Discard any torn tail beyond the validated prefix so new frames are
  // appended contiguously after the last good one.
  DVMS_RETURN_IF_ERROR(env->Ftruncate(fd, valid_bytes, path));
  DVMS_RETURN_IF_ERROR(env->Seek(fd, valid_bytes, path));
  return writer;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    if (pending_appends_ > 0 && mode_ != WalFsyncMode::kOff) {
      FaultSuppressScope suppress;  // best-effort final flush
      Flush();
    }
    env::Active()->Close(fd_);
  }
}

Status WalWriter::Append(uint64_t lsn, const std::string& payload) {
  if (fd_ < 0) {
    return Status::ExecutionError("wal: log poisoned by earlier I/O failure");
  }
  if (payload.size() > kMaxWalFramePayload) {
    return Status::InvalidArgument("wal: frame payload too large (" +
                                   std::to_string(payload.size()) + " bytes)");
  }
  obs::Span span("wal.append");
  const int64_t append_start =
      obs::Enabled() ? obs::NowMicros() : 0;
  Env* env = env::Active();
  Status fault = fault::MaybeInject(FaultSite::kDurabilityIo);
  const uint64_t pre_append = offset_;
  const size_t pre_pending = pending_appends_;
  Status st = fault;
  if (st.ok()) {
    char head[kWalFrameOverhead];
    StoreU32(head, static_cast<uint32_t>(payload.size()));
    StoreU32(head + 4, FrameCrc(lsn, payload));
    StoreU64(head + 8, lsn);
    st = WalFileWrite(env, fd_, head, sizeof(head), path_);
    if (st.ok()) {
      st = WalFileWrite(env, fd_, payload.data(), payload.size(), path_);
    }
    if (st.ok()) {
      offset_ = pre_append + kWalFrameOverhead + payload.size();
      ++pending_appends_;
      if (mode_ != WalFsyncMode::kOff) unsynced_.push_back({lsn, payload});
      if (mode_ == WalFsyncMode::kAlways ||
          (mode_ == WalFsyncMode::kBatch &&
           pending_appends_ >= kGroupCommitAppends)) {
        st = Sync();
      }
    }
  }
  if (!st.ok()) {
    if (sync_failed_) {
      // The write landed but its fsync failed: the writer is already
      // poisoned (fd closed — see Sync). This frame's append is being
      // reported failed, so it must not ride along when the manager
      // rotates the retained unsynced frames into a fresh segment.
      if (!unsynced_.empty() && unsynced_.back().lsn == lsn) {
        unsynced_.pop_back();
      }
      return st;
    }
    // Roll the file back to the pre-append length so the caller's failure
    // and the on-disk log agree. Runs fault-suppressed: this *is* the
    // recovery path for an injected append fault. The truncated frame
    // must not keep counting toward the group-commit threshold.
    FaultSuppressScope suppress;
    pending_appends_ = pre_pending;
    if (!env->Ftruncate(fd_, pre_append, path_).ok() ||
        !env->Seek(fd_, pre_append, path_).ok()) {
      // Can't restore a consistent tail: poison the writer (fail-stop) so
      // no later append lands after a half-written frame.
      env->Close(fd_);
      fd_ = -1;
      return Status::ExecutionError(
          "wal: failed to roll back torn append; log poisoned (" +
          st.message() + ")");
    }
    offset_ = pre_append;
    return st;
  }
  if (obs::Enabled()) {
    obs::Count("wal.appends");
    obs::Count("wal.append_bytes", kWalFrameOverhead + payload.size());
    obs::Observe("wal.append_us",
                 static_cast<double>(obs::NowMicros() - append_start));
  }
  return Status::OK();
}

Status WalWriter::Flush() {
  if (fd_ < 0) {
    return Status::ExecutionError("wal: log poisoned by earlier I/O failure");
  }
  if (pending_appends_ == 0 || mode_ == WalFsyncMode::kOff) {
    return Status::OK();
  }
  return Sync();
}

Status WalWriter::Sync() {
  obs::Span span("wal.fsync");
  const int64_t sync_start = obs::Enabled() ? obs::NowMicros() : 0;
  // The logical durability site fires *before* the fsync is issued: it
  // models a transient failure to reach the sync call at all, so the dirty
  // pages are still intact and the caller may roll back and retry. Only a
  // failure from the fsync itself (real or FaultEnv-injected) means the
  // kernel may have dropped dirty pages — that is the fsyncgate case.
  DVMS_RETURN_IF_ERROR(fault::MaybeInject(FaultSite::kDurabilityIo));
  Status st = env::FsyncOrPoison(env::Active(), &fd_, path_);
  if (!st.ok()) {
    sync_failed_ = true;
    obs::Count("storage.fsync_failures");
    return st;
  }
  synced_offset_ = offset_;
  unsynced_.clear();
  pending_appends_ = 0;
  ++fsyncs_;
  if (obs::Enabled()) {
    obs::Count("wal.fsyncs");
    obs::Observe("wal.fsync_us",
                 static_cast<double>(obs::NowMicros() - sync_start));
  }
  return Status::OK();
}

Result<WalScan> ScanWalSegment(const std::string& path) {
  Env* env = env::Active();
  DVMS_ASSIGN_OR_RETURN(int fd, env->Open(path, O_RDONLY | O_CLOEXEC, 0));
  struct FdCloser {
    Env* env;
    int fd;
    ~FdCloser() { env->Close(fd); }
  } closer{env, fd};

  WalScan scan;
  char header[kWalHeaderBytes];
  size_t got = 0;
  DVMS_RETURN_IF_ERROR(
      env::ReadFully(env, fd, header, sizeof(header), path, &got));
  if (got < sizeof(header) ||
      std::memcmp(header, kWalMagic, sizeof(kWalMagic)) != 0) {
    // Format violation, not an I/O failure: report it through the scan so
    // recovery can truncate here, reserving Status for errors where the
    // bytes themselves might still be fine.
    scan.bad_header = true;
    scan.tail_truncated = true;
    scan.tail_error = "short or invalid segment header in " + path;
    return scan;
  }
  scan.first_lsn = LoadU64(header + 8);
  scan.valid_bytes = kWalHeaderBytes;

  uint64_t expected_lsn = scan.first_lsn;
  std::string payload;
  for (;;) {
    char head[kWalFrameOverhead];
    DVMS_RETURN_IF_ERROR(
        env::ReadFully(env, fd, head, sizeof(head), path, &got));
    if (got == 0) break;  // clean EOF on a frame boundary
    if (got < sizeof(head)) {
      scan.tail_truncated = true;
      scan.tail_error = "torn frame header";
      break;
    }
    uint32_t len = LoadU32(head);
    uint32_t stored_crc = LoadU32(head + 4);
    uint64_t lsn = LoadU64(head + 8);
    if (len > kMaxWalFramePayload) {
      scan.tail_truncated = true;
      scan.tail_error = "implausible frame length " + std::to_string(len);
      break;
    }
    payload.resize(len);
    DVMS_RETURN_IF_ERROR(env::ReadFully(env, fd, payload.data(), len, path,
                                        &got));
    if (got < len) {
      scan.tail_truncated = true;
      scan.tail_error = "torn frame payload";
      break;
    }
    if (stored_crc != FrameCrc(lsn, payload)) {
      scan.tail_truncated = true;
      scan.tail_error = "frame checksum mismatch at lsn " + std::to_string(lsn);
      break;
    }
    if (lsn != expected_lsn) {
      scan.tail_truncated = true;
      scan.tail_error = "lsn discontinuity (expected " +
                        std::to_string(expected_lsn) + ", found " +
                        std::to_string(lsn) + ")";
      break;
    }
    scan.frames.push_back(WalFrame{lsn, payload});
    scan.valid_bytes += kWalFrameOverhead + len;
    ++expected_lsn;
  }
  return scan;
}

namespace durability_testing {

void CrashAfterWalBytes(int64_t n) {
  g_crash_after_wal_bytes.store(n, std::memory_order_relaxed);
}

}  // namespace durability_testing

}  // namespace dvms
