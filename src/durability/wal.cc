#include "durability/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "common/fault.h"
#include "durability/crc32c.h"
#include "obs/trace.h"

namespace dvms {

namespace {

std::atomic<int64_t> g_crash_after_wal_bytes{-1};

Status IoError(const std::string& what, const std::string& path) {
  return Status::ExecutionError("wal: " + what + " failed for " + path + ": " +
                                std::strerror(errno));
}

/// write(2) loop honoring the torn-write crash hook: when the hook's byte
/// budget runs out inside this chunk, the prefix that fits is written (and
/// synced, so the torn state is what recovery will actually see) and the
/// process exits as if SIGKILLed mid-write.
Status WriteFully(int fd, const char* data, size_t n, const std::string& path) {
  int64_t budget = g_crash_after_wal_bytes.load(std::memory_order_relaxed);
  if (budget >= 0) {
    if (static_cast<uint64_t>(budget) < n) {
      size_t partial = static_cast<size_t>(budget);
      while (partial > 0) {
        ssize_t w = ::write(fd, data, partial);
        if (w <= 0) break;
        data += w;
        partial -= static_cast<size_t>(w);
      }
      ::fsync(fd);
      ::_exit(42);
    }
    g_crash_after_wal_bytes.store(budget - static_cast<int64_t>(n),
                                  std::memory_order_relaxed);
  }
  while (n > 0) {
    ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return IoError("write", path);
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status ReadFully(int fd, char* data, size_t n, const std::string& path,
                 bool* short_read) {
  *short_read = false;
  while (n > 0) {
    ssize_t r = ::read(fd, data, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return IoError("read", path);
    }
    if (r == 0) {
      *short_read = true;
      return Status::OK();
    }
    data += r;
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, 4);
  return v;  // the build targets are little-endian; codec.cc matches
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  std::memcpy(&v, p, 8);
  return v;
}

void StoreU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }
void StoreU64(char* p, uint64_t v) { std::memcpy(p, &v, 8); }

uint32_t FrameCrc(uint64_t lsn, const std::string& payload) {
  char lsn_bytes[8];
  StoreU64(lsn_bytes, lsn);
  uint32_t crc = Crc32c(lsn_bytes, sizeof(lsn_bytes));
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  return MaskCrc(crc);
}

}  // namespace

Result<WalFsyncMode> ParseWalFsyncMode(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "always") return WalFsyncMode::kAlways;
  if (lower == "batch") return WalFsyncMode::kBatch;
  if (lower == "off") return WalFsyncMode::kOff;
  return Status::InvalidArgument("unknown WAL fsync mode '" + name +
                                 "' (expected always, batch, or off)");
}

const char* WalFsyncModeToString(WalFsyncMode mode) {
  switch (mode) {
    case WalFsyncMode::kAlways:
      return "always";
    case WalFsyncMode::kBatch:
      return "batch";
    case WalFsyncMode::kOff:
      return "off";
  }
  return "?";
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path,
                                                     uint64_t first_lsn,
                                                     WalFsyncMode mode) {
  DVMS_RETURN_IF_ERROR(fault::MaybeInject(FaultSite::kDurabilityIo));
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return IoError("open", path);
  std::unique_ptr<WalWriter> writer(new WalWriter(path, fd, 0, mode));
  char header[kWalHeaderBytes];
  std::memcpy(header, kWalMagic, sizeof(kWalMagic));
  StoreU64(header + 8, first_lsn);
  DVMS_RETURN_IF_ERROR(WriteFully(fd, header, sizeof(header), path));
  writer->offset_ = kWalHeaderBytes;
  // The header must be durable before any frame is acknowledged; a segment
  // with frames but no header would be unrecoverable.
  if (mode != WalFsyncMode::kOff) DVMS_RETURN_IF_ERROR(writer->Sync());
  return writer;
}

Result<std::unique_ptr<WalWriter>> WalWriter::OpenForAppend(
    const std::string& path, uint64_t valid_bytes, WalFsyncMode mode) {
  DVMS_RETURN_IF_ERROR(fault::MaybeInject(FaultSite::kDurabilityIo));
  int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) return IoError("open", path);
  std::unique_ptr<WalWriter> writer(new WalWriter(path, fd, valid_bytes, mode));
  // Discard any torn tail beyond the validated prefix so new frames are
  // appended contiguously after the last good one.
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    return IoError("ftruncate", path);
  }
  if (::lseek(fd, static_cast<off_t>(valid_bytes), SEEK_SET) < 0) {
    return IoError("lseek", path);
  }
  return writer;
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    if (pending_appends_ > 0 && mode_ != WalFsyncMode::kOff) {
      FaultSuppressScope suppress;  // best-effort final flush
      Flush();
    }
    ::close(fd_);
  }
}

Status WalWriter::Append(uint64_t lsn, const std::string& payload) {
  if (fd_ < 0) {
    return Status::ExecutionError("wal: log poisoned by earlier I/O failure");
  }
  if (payload.size() > kMaxWalFramePayload) {
    return Status::InvalidArgument("wal: frame payload too large (" +
                                   std::to_string(payload.size()) + " bytes)");
  }
  obs::Span span("wal.append");
  const int64_t append_start =
      obs::Enabled() ? obs::NowMicros() : 0;
  Status fault = fault::MaybeInject(FaultSite::kDurabilityIo);
  const uint64_t pre_append = offset_;
  const size_t pre_pending = pending_appends_;
  Status st = fault;
  if (st.ok()) {
    char head[kWalFrameOverhead];
    StoreU32(head, static_cast<uint32_t>(payload.size()));
    StoreU32(head + 4, FrameCrc(lsn, payload));
    StoreU64(head + 8, lsn);
    st = WriteFully(fd_, head, sizeof(head), path_);
    if (st.ok()) st = WriteFully(fd_, payload.data(), payload.size(), path_);
    if (st.ok()) {
      offset_ = pre_append + kWalFrameOverhead + payload.size();
      ++pending_appends_;
      if (mode_ == WalFsyncMode::kAlways ||
          (mode_ == WalFsyncMode::kBatch &&
           pending_appends_ >= kGroupCommitAppends)) {
        st = Sync();
      }
    }
  }
  if (!st.ok()) {
    // Roll the file back to the pre-append length so the caller's failure
    // and the on-disk log agree. Runs fault-suppressed: this *is* the
    // recovery path for an injected append/fsync fault. The truncated
    // frame must not keep counting toward the group-commit threshold.
    FaultSuppressScope suppress;
    pending_appends_ = pre_pending;
    if (::ftruncate(fd_, static_cast<off_t>(pre_append)) != 0 ||
        ::lseek(fd_, static_cast<off_t>(pre_append), SEEK_SET) < 0) {
      // Can't restore a consistent tail: poison the writer (fail-stop) so
      // no later append lands after a half-written frame.
      ::close(fd_);
      fd_ = -1;
      return Status::ExecutionError(
          "wal: failed to roll back torn append; log poisoned (" +
          st.message() + ")");
    }
    offset_ = pre_append;
    return st;
  }
  if (obs::Enabled()) {
    obs::Count("wal.appends");
    obs::Count("wal.append_bytes", kWalFrameOverhead + payload.size());
    obs::Observe("wal.append_us",
                 static_cast<double>(obs::NowMicros() - append_start));
  }
  return Status::OK();
}

Status WalWriter::Flush() {
  if (fd_ < 0) {
    return Status::ExecutionError("wal: log poisoned by earlier I/O failure");
  }
  if (pending_appends_ == 0 || mode_ == WalFsyncMode::kOff) {
    return Status::OK();
  }
  return Sync();
}

Status WalWriter::Sync() {
  obs::Span span("wal.fsync");
  const int64_t sync_start = obs::Enabled() ? obs::NowMicros() : 0;
  DVMS_RETURN_IF_ERROR(fault::MaybeInject(FaultSite::kDurabilityIo));
  if (::fsync(fd_) != 0) return IoError("fsync", path_);
  pending_appends_ = 0;
  ++fsyncs_;
  if (obs::Enabled()) {
    obs::Count("wal.fsyncs");
    obs::Observe("wal.fsync_us",
                 static_cast<double>(obs::NowMicros() - sync_start));
  }
  return Status::OK();
}

Result<WalScan> ScanWalSegment(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return IoError("open", path);
  struct FdCloser {
    int fd;
    ~FdCloser() { ::close(fd); }
  } closer{fd};

  WalScan scan;
  char header[kWalHeaderBytes];
  bool short_read = false;
  DVMS_RETURN_IF_ERROR(ReadFully(fd, header, sizeof(header), path, &short_read));
  if (short_read || std::memcmp(header, kWalMagic, sizeof(kWalMagic)) != 0) {
    // Format violation, not an I/O failure: report it through the scan so
    // recovery can truncate here, reserving Status for errors where the
    // bytes themselves might still be fine.
    scan.bad_header = true;
    scan.tail_truncated = true;
    scan.tail_error = "short or invalid segment header in " + path;
    return scan;
  }
  scan.first_lsn = LoadU64(header + 8);
  scan.valid_bytes = kWalHeaderBytes;

  uint64_t expected_lsn = scan.first_lsn;
  std::string payload;
  for (;;) {
    char head[kWalFrameOverhead];
    ssize_t r = ::read(fd, head, sizeof(head));
    if (r == 0) break;  // clean EOF on a frame boundary
    if (r < 0) {
      if (errno == EINTR) continue;
      return IoError("read", path);
    }
    if (static_cast<size_t>(r) < sizeof(head)) {
      scan.tail_truncated = true;
      scan.tail_error = "torn frame header";
      break;
    }
    uint32_t len = LoadU32(head);
    uint32_t stored_crc = LoadU32(head + 4);
    uint64_t lsn = LoadU64(head + 8);
    if (len > kMaxWalFramePayload) {
      scan.tail_truncated = true;
      scan.tail_error = "implausible frame length " + std::to_string(len);
      break;
    }
    payload.resize(len);
    DVMS_RETURN_IF_ERROR(ReadFully(fd, payload.data(), len, path, &short_read));
    if (short_read) {
      scan.tail_truncated = true;
      scan.tail_error = "torn frame payload";
      break;
    }
    if (stored_crc != FrameCrc(lsn, payload)) {
      scan.tail_truncated = true;
      scan.tail_error = "frame checksum mismatch at lsn " + std::to_string(lsn);
      break;
    }
    if (lsn != expected_lsn) {
      scan.tail_truncated = true;
      scan.tail_error = "lsn discontinuity (expected " +
                        std::to_string(expected_lsn) + ", found " +
                        std::to_string(lsn) + ")";
      break;
    }
    scan.frames.push_back(WalFrame{lsn, payload});
    scan.valid_bytes += kWalFrameOverhead + len;
    ++expected_lsn;
  }
  return scan;
}

namespace durability_testing {

void CrashAfterWalBytes(int64_t n) {
  g_crash_after_wal_bytes.store(n, std::memory_order_relaxed);
}

}  // namespace durability_testing

}  // namespace dvms
