#ifndef DVMS_DURABILITY_TAILER_H_
#define DVMS_DURABILITY_TAILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "durability/manager.h"
#include "durability/wal.h"

namespace dvms {

/// Seeded jitter over the replica tail-poll cadence. N replicas started
/// together would otherwise poll the primary's directory in lockstep (same
/// DVMS_REPLICA_POLL_MS, same start instant), turning every cadence tick
/// into a synchronized listing/read burst. Each wait is the base cadence —
/// shifted left under consecutive failures (capped exponential backoff, the
/// pre-jitter behavior) — scaled by a uniform draw in [0.5, 1.5) from a
/// per-replica seeded Rng, so schedules decorrelate deterministically:
/// the same seed always yields the same wait sequence.
class PollCadence {
 public:
  PollCadence(uint64_t base_ms, uint64_t seed) : base_ms_(base_ms), rng_(seed) {}

  /// Next cv-wait in ms: (base << min(failures, 6)) * U[0.5, 1.5), >= 1.
  uint64_t NextWaitMs(uint64_t consecutive_failures);

 private:
  uint64_t base_ms_;
  Rng rng_;
};

/// Counters describing what a WalTailer has seen and delivered. Surfaced
/// (merged with apply-side counters) through the dvms_replication relation.
struct TailerStats {
  uint64_t polls = 0;
  uint64_t frames_delivered = 0;
  uint64_t bytes_delivered = 0;      // frame payloads + framing overhead
  uint64_t torn_tail_retries = 0;    // in-flight tails left for a later poll
  uint64_t rotations = 0;            // drained across a segment boundary
  uint64_t segment_switches = 0;     // resume segment changed between polls
  uint64_t primary_lsn = 0;          // newest committed LSN visible on disk
};

/// Read-only recovery scan for a replica bootstrap: the newest valid
/// snapshot plus the contiguous valid frame suffix, exactly what
/// DurabilityManager::Recover() restores — but never repairing, truncating,
/// pruning, or opening the tail for append, because the replica does not
/// own the primary's directory. A torn or corrupt tail simply ends the scan
/// (those frames are still in flight on the primary and will be delivered
/// by a later poll); only open/read I/O failures surface as Status.
Result<RecoveredLog> ReadLogReadOnly(const std::string& dir);

/// Polls a primary's durability directory for freshly committed WAL frames.
/// Stateless against the directory (every poll re-lists and re-resolves the
/// resume position), which makes it robust to everything the primary does
/// concurrently: appends, torn in-flight tail frames, segment rotation at
/// snapshot boundaries, and pruning of segments the tailer has already
/// consumed. Injected FaultSite::kReplication faults model transient read
/// failures of the listing and scan steps.
///
/// Not thread-safe; the replica's single tail thread owns it.
class WalTailer {
 public:
  /// `applied_lsn` is the newest LSN the replica has already applied
  /// (0 = nothing); Poll() delivers frames strictly after it.
  WalTailer(std::string dir, uint64_t applied_lsn);

  /// One poll: returns every newly durable frame in LSN order (possibly
  /// none — caught up, or the tail frame is torn and will be retried).
  ///
  /// Status errors and how the caller should treat them:
  ///   - kNotFound: the frames after `applied_lsn` have been pruned (the
  ///     primary snapshotted past a replica that lagged by more than the
  ///     retained window). Terminal — the replica cannot catch up from the
  ///     log alone; restart it to re-bootstrap from the newest snapshot.
  ///   - anything else: transient I/O failure (injected or real); retry
  ///     with backoff.
  Result<std::vector<WalFrame>> Poll();

  /// Newest LSN delivered so far (== the constructor's applied_lsn until
  /// the first delivery).
  uint64_t delivered_lsn() const { return next_lsn_ - 1; }
  const TailerStats& stats() const { return stats_; }

 private:
  std::string dir_;
  uint64_t next_lsn_;            // next frame LSN to deliver
  uint64_t last_segment_ = 0;    // header LSN of the last segment read
  TailerStats stats_;
};

}  // namespace dvms

#endif  // DVMS_DURABILITY_TAILER_H_
