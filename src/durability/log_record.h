#ifndef DVMS_DURABILITY_LOG_RECORD_H_
#define DVMS_DURABILITY_LOG_RECORD_H_

#include <string>
#include <vector>

#include "durability/codec.h"
#include "events/event.h"
#include "expr/expr.h"
#include "parser/ast.h"

namespace dvms {

/// One committed mutation unit, recorded *logically*: the engine's executor
/// is deterministic, so replaying the public-API call that produced a state
/// change reproduces that change bit-for-bit. This keeps the log compact
/// (an event frame is ~60 bytes regardless of how many views it refreshed)
/// and makes replay exercise the exact production code paths.
struct WalRecord {
  enum class Op : uint8_t {
    kCreateTable = 1,  // CreateBaseTable(name, schema)
    kInsert,           // Insert(name, rows)
    kDelete,           // Delete(name, predicate)
    kCreateScale,      // CreateScale(name, d0, d1, r0, r1)
    kLoadProgram,      // LoadProgram(text)
    kStatement,        // Execute(statement)
    kEvent,            // PushEvent(event)
    kUndo,             // Undo()
    kRedo,             // Redo()
    kCompose,          // ComposeInteractions(first, second, name)
  };

  Op op = Op::kEvent;
  std::string name;                      // table / scale / merged-pattern name
  Schema schema;                         // kCreateTable
  std::vector<Row> rows;                 // kInsert
  ExprPtr predicate;                     // kDelete; null = delete all
  double scale_domain_min = 0, scale_domain_max = 0;  // kCreateScale
  double scale_range_min = 0, scale_range_max = 0;
  std::string text;                      // kLoadProgram source
  Statement statement;                   // kStatement
  InputEvent event;                      // kEvent
  std::string compose_first, compose_second;  // kCompose

  /// True for records that define catalog relations, views, patterns, or
  /// traces. Snapshots persist the definition subsequence of the log so a
  /// restore can rebuild compiled plans / NFAs (which are never serialized)
  /// by re-executing their DDL before overlaying physical table state.
  bool IsDefinition() const;
};

const char* WalOpToString(WalRecord::Op op);

std::string EncodeWalRecord(const WalRecord& record);
Result<WalRecord> DecodeWalRecord(const std::string& payload);

// ---- Sub-codecs (exposed for tests) ----

void EncodeExpr(const ExprPtr& e, BinaryWriter* w);  // e may be null
Result<ExprPtr> DecodeExpr(BinaryReader* r);

void EncodeInputEvent(const InputEvent& e, BinaryWriter* w);
Result<InputEvent> DecodeInputEvent(BinaryReader* r);

void EncodeStatement(const Statement& s, BinaryWriter* w);
Result<Statement> DecodeStatement(BinaryReader* r);

void EncodeSelectStmt(const SelectStmt& s, BinaryWriter* w);
Result<SelectStmt> DecodeSelectStmt(BinaryReader* r);

void EncodeEventStmt(const EventStmt& s, BinaryWriter* w);
Result<EventStmt> DecodeEventStmt(BinaryReader* r);

void EncodeTraceStmt(const TraceStmt& s, BinaryWriter* w);
Result<TraceStmt> DecodeTraceStmt(BinaryReader* r);

}  // namespace dvms

#endif  // DVMS_DURABILITY_LOG_RECORD_H_
