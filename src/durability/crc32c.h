#ifndef DVMS_DURABILITY_CRC32C_H_
#define DVMS_DURABILITY_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace dvms {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78): the
/// checksum guarding every interaction-log frame and snapshot file. The
/// software slice-by-4 implementation is plenty for frame sizes here and
/// has no ISA dependency.
uint32_t Crc32c(const void* data, size_t n);

/// Incremental form: extends `crc` (a previous Crc32c result) over `data`.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// Masked CRC (the LevelDB/RocksDB trick): storing a CRC of data that
/// itself contains CRCs is error-prone, so stored checksums are rotated and
/// offset. Verifiers unmask before comparing.
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace dvms

#endif  // DVMS_DURABILITY_CRC32C_H_
