#ifndef DVMS_DURABILITY_SNAPSHOT_H_
#define DVMS_DURABILITY_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "durability/codec.h"
#include "events/nfa.h"
#include "storage/versioned_table.h"
#include "streaming/scheduler.h"

namespace dvms {

/// A point-in-time image of the engine at `last_lsn`, from which recovery
/// resumes without replaying the whole interaction log.
///
/// Compiled artifacts (bound plans, NFAs, optimizer cubes, trace defs) are
/// never serialized: the snapshot carries the *definition subsequence* of
/// the log (encoded WalRecords, in log order) and restore re-executes it
/// through the normal DDL path, then overlays the physical state below —
/// so a snapshot stays valid across changes to planner internals, and
/// restore exercises exactly the production compilation code.
struct EngineSnapshot {
  uint64_t last_lsn = 0;

  /// Encoded definition WalRecords (WalRecord::IsDefinition()), log order.
  std::vector<std::string> definition_ops;

  /// Physical per-relation state, in catalog creation order. Overlaid after
  /// definition replay; every name must exist by then.
  struct RelationState {
    std::string name;
    VersionedTable::DurableState state;
  };
  std::vector<RelationState> relations;

  /// NFA runtime states in recognizer entry order (deterministic given the
  /// same definition sequence).
  std::vector<PatternMatcher::SavedState> matchers;

  /// Mirror of Dvms::Stats (not included directly to keep durability/
  /// independent of core/).
  struct Counters {
    uint64_t events_processed = 0;
    uint64_t transactions_started = 0;
    uint64_t transactions_committed = 0;
    uint64_t transactions_aborted = 0;
    uint64_t renders = 0;
    uint64_t trace_recomputes = 0;
    uint64_t interactions_rolled_back = 0;
  };
  Counters counters;

  /// Interaction-level undo history: one entry per committed interaction
  /// (oldest first), each a name-sorted set of base/event relation images.
  std::vector<std::vector<std::pair<std::string, Table>>> undo_history;
  uint64_t undo_cursor = 0;

  bool has_scheduler = false;
  StreamScheduler::DurableState scheduler;
};

std::string EncodeEngineSnapshot(const EngineSnapshot& snapshot);
Result<EngineSnapshot> DecodeEngineSnapshot(const std::string& payload);

// ---- Sub-codecs (exposed for tests) ----

void EncodeVersionedTableState(const VersionedTable::DurableState& s,
                               BinaryWriter* w);
Result<VersionedTable::DurableState> DecodeVersionedTableState(BinaryReader* r);

void EncodeMatcherState(const PatternMatcher::SavedState& s, BinaryWriter* w);
Result<PatternMatcher::SavedState> DecodeMatcherState(BinaryReader* r);

void EncodeSchedulerState(const StreamScheduler::DurableState& s,
                          BinaryWriter* w);
Result<StreamScheduler::DurableState> DecodeSchedulerState(BinaryReader* r);

}  // namespace dvms

#endif  // DVMS_DURABILITY_SNAPSHOT_H_
