#ifndef DVMS_DURABILITY_CODEC_H_
#define DVMS_DURABILITY_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"
#include "storage/table.h"

namespace dvms {

/// Append-only little-endian encoder for log-record and snapshot payloads.
/// Fixed-width integers keep the format trivially seekable; sizes here are
/// dominated by row data, not framing.
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutString(const std::string& s);
  void PutBytes(const void* data, size_t n);

  const std::string& data() const { return out_; }
  std::string Take() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  std::string out_;
};

/// Bounds-checked decoder over an immutable byte span. Every accessor
/// returns a Status/Result so a corrupted (but CRC-passing) payload can
/// never read out of bounds — decode failures surface as errors, not UB.
class BinaryReader {
 public:
  BinaryReader(const void* data, size_t n)
      : p_(static_cast<const uint8_t*>(data)), n_(n) {}
  explicit BinaryReader(const std::string& s) : BinaryReader(s.data(), s.size()) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<double> GetDouble();
  Result<bool> GetBool();
  Result<std::string> GetString();

  size_t remaining() const { return n_ - pos_; }
  bool AtEnd() const { return pos_ == n_; }

 private:
  Status Need(size_t n) const;

  const uint8_t* p_;
  size_t n_;
  size_t pos_ = 0;
};

// ---- Engine value-model codecs ----

void EncodeValue(const Value& v, BinaryWriter* w);
Result<Value> DecodeValue(BinaryReader* r);

void EncodeRow(const Row& row, BinaryWriter* w);
Result<Row> DecodeRow(BinaryReader* r);

void EncodeSchema(const Schema& schema, BinaryWriter* w);
Result<Schema> DecodeSchema(BinaryReader* r);

/// Encodes a table for snapshots. Non-ragged tables use the columnar v1
/// format (per-column typed payloads, validity bitmaps, and a local string
/// dictionary — ids are remapped to first-occurrence order so the bytes
/// are independent of the process's global dictionary history). Ragged
/// tables, and every table when DVMS_SNAPSHOT_LEGACY is set, use the
/// row-wise legacy format. DecodeTable reads both transparently.
void EncodeTable(const Table& table, BinaryWriter* w);

/// The pre-columnar row-wise format (schema, row count, tagged values).
/// Kept callable so tests can pin recovery from row-store-era snapshots.
void EncodeTableLegacy(const Table& table, BinaryWriter* w);

Result<Table> DecodeTable(BinaryReader* r);

}  // namespace dvms

#endif  // DVMS_DURABILITY_CODEC_H_
