#include "durability/manager.h"

#include <fcntl.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "common/env.h"
#include "common/fault.h"
#include "obs/trace.h"
#include "durability/crc32c.h"

namespace dvms {

namespace {

constexpr char kSnapshotMagic[8] = {'D', 'V', 'M', 'S', 'S', 'N', 'P', '1'};
constexpr size_t kSnapshotHeaderBytes = 28;  // magic + last_lsn + len + crc

/// mkdir -p. Treats an existing directory as success.
Status MakeDirs(const std::string& dir) {
  Env* env = env::Active();
  std::string partial;
  size_t pos = 0;
  while (pos <= dir.size()) {
    size_t slash = dir.find('/', pos);
    partial = dir.substr(0, slash == std::string::npos ? dir.size() : slash);
    if (!partial.empty() && partial != "/") {
      DVMS_RETURN_IF_ERROR(env->Mkdir(partial));
    }
    if (slash == std::string::npos) break;
    pos = slash + 1;
  }
  return Status::OK();
}

/// Parses "<prefix><20-digit lsn><suffix>" filenames; nullopt-style via ok.
bool ParseNumberedName(const std::string& name, const char* prefix,
                       const char* suffix, uint64_t* lsn) {
  size_t prefix_len = std::strlen(prefix);
  size_t suffix_len = std::strlen(suffix);
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, prefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, suffix) != 0) {
    return false;
  }
  std::string digits =
      name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  *lsn = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

/// LSN-tagged files of one kind in the directory, sorted ascending by LSN.
Result<std::vector<uint64_t>> ListNumbered(const std::string& dir,
                                           const char* prefix,
                                           const char* suffix) {
  DVMS_ASSIGN_OR_RETURN(std::vector<std::string> names,
                        env::Active()->ListDir(dir));
  std::vector<uint64_t> lsns;
  for (const std::string& name : names) {
    uint64_t lsn = 0;
    if (ParseNumberedName(name, prefix, suffix, &lsn)) {
      lsns.push_back(lsn);
    }
  }
  std::sort(lsns.begin(), lsns.end());
  return lsns;
}

void StoreU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }
void StoreU64(char* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint32_t LoadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

Result<std::pair<uint64_t, std::string>> ReadSnapshotFile(
    const std::string& path) {
  Env* env = env::Active();
  DVMS_ASSIGN_OR_RETURN(int fd, env->Open(path, O_RDONLY | O_CLOEXEC, 0));
  struct FdCloser {
    Env* env;
    int fd;
    ~FdCloser() { env->Close(fd); }
  } closer{env, fd};

  char header[kSnapshotHeaderBytes];
  size_t got = 0;
  DVMS_RETURN_IF_ERROR(
      env::ReadFully(env, fd, header, sizeof(header), path, &got));
  if (got < sizeof(header) ||
      std::memcmp(header, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::ExecutionError("durability: " + path +
                                  " has a short or invalid snapshot header");
  }
  uint64_t last_lsn = LoadU64(header + 8);
  uint64_t payload_len = LoadU64(header + 16);
  uint32_t stored_crc = LoadU32(header + 24);
  DVMS_ASSIGN_OR_RETURN(uint64_t file_size, env->FileSize(fd, path));
  if (payload_len != file_size - kSnapshotHeaderBytes) {
    return Status::ExecutionError("durability: " + path +
                                  " payload length disagrees with file size");
  }
  std::string payload(payload_len, '\0');
  DVMS_RETURN_IF_ERROR(
      env::ReadFully(env, fd, payload.data(), payload_len, path, &got));
  if (got < payload_len) {
    return Status::ExecutionError("durability: " + path +
                                  " truncated mid-payload");
  }
  // The checksum covers last_lsn as well as the payload: a flipped bit in
  // the header would otherwise silently shift the recovery resume point.
  if (stored_crc !=
      MaskCrc(Crc32cExtend(Crc32c(header + 8, 8), payload.data(),
                           payload.size()))) {
    return Status::ExecutionError("durability: " + path +
                                  " failed checksum validation");
  }
  return std::make_pair(last_lsn, std::move(payload));
}

std::string WalSegmentPath(const std::string& dir, uint64_t first_lsn) {
  char name[64];
  std::snprintf(name, sizeof(name), "wal-%020" PRIu64 ".log", first_lsn);
  return dir + "/" + name;
}

std::string WalSnapshotPath(const std::string& dir, uint64_t last_lsn) {
  char name[64];
  std::snprintf(name, sizeof(name), "snapshot-%020" PRIu64 ".snap", last_lsn);
  return dir + "/" + name;
}

Result<std::vector<uint64_t>> ListWalSegments(const std::string& dir) {
  return ListNumbered(dir, "wal-", ".log");
}

Result<std::vector<uint64_t>> ListWalSnapshots(const std::string& dir) {
  return ListNumbered(dir, "snapshot-", ".snap");
}

std::string DurabilityManager::SegmentPath(uint64_t first_lsn) const {
  return WalSegmentPath(dir_, first_lsn);
}

std::string DurabilityManager::SnapshotPath(uint64_t last_lsn) const {
  return WalSnapshotPath(dir_, last_lsn);
}

bool DurabilityManager::UnlinkCounted(const std::string& path) {
  Status st = env::Active()->Unlink(path);
  if (st.ok()) return true;
  ++stats_.unlink_failures;
  obs::Count("storage.unlink_failed");
  if (!unlink_warned_) {
    unlink_warned_ = true;
    std::fprintf(stderr, "dvms: failed to remove %s: %s\n", path.c_str(),
                 st.message().c_str());
  }
  return false;
}

Result<std::unique_ptr<DurabilityManager>> DurabilityManager::Open(
    std::string dir, WalFsyncMode mode) {
  while (dir.size() > 1 && dir.back() == '/') dir.pop_back();
  DVMS_RETURN_IF_ERROR(MakeDirs(dir));
  return std::unique_ptr<DurabilityManager>(
      new DurabilityManager(std::move(dir), mode));
}

Result<RecoveredLog> DurabilityManager::Recover() {
  if (recovered_) {
    return Status::Internal("durability: Recover() called twice");
  }
  recovered_ = true;
  RecoveredLog out;

  // Newest snapshot whose checksum validates wins; corrupt ones are skipped
  // (they can only arise from external damage — writes are atomic).
  DVMS_ASSIGN_OR_RETURN(std::vector<uint64_t> snaps,
                        ListNumbered(dir_, "snapshot-", ".snap"));
  for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
    Result<std::pair<uint64_t, std::string>> snap =
        ReadSnapshotFile(SnapshotPath(*it));
    if (!snap.ok()) {
      ++stats_.snapshots_discarded;
      std::fprintf(stderr, "dvms: ignoring corrupt snapshot %s: %s\n",
                   SnapshotPath(*it).c_str(),
                   snap.status().message().c_str());
      continue;
    }
    out.has_snapshot = true;
    out.snapshot_lsn = snap.value().first;
    out.snapshot_payload = std::move(snap.value().second);
    break;
  }

  // Scan segments in LSN order, keeping the contiguous valid frame run that
  // extends past the snapshot. The first *corrupt* frame (or inter-segment
  // gap) truncates the log there: the file is cut back to its valid prefix
  // and every later segment is deleted. An I/O error, by contrast, aborts
  // recovery with the directory untouched — the failure may be transient
  // (EMFILE, EACCES, a flaky read) and the frames behind it perfectly
  // valid, so pruning on that evidence would destroy acknowledged writes.
  DVMS_ASSIGN_OR_RETURN(std::vector<uint64_t> segments,
                        ListNumbered(dir_, "wal-", ".log"));
  uint64_t next_lsn =
      out.has_snapshot ? out.snapshot_lsn + 1 : (segments.empty() ? 1 : 0);
  std::string tail_path;      // last surviving segment
  uint64_t tail_valid = 0;    // its validated byte length
  uint64_t tail_next_lsn = 0; // one past its last valid frame
  size_t cut_from = segments.size();
  for (size_t i = 0; i < segments.size(); ++i) {
    const std::string path = SegmentPath(segments[i]);
    DVMS_ASSIGN_OR_RETURN(WalScan scan, ScanWalSegment(path));
    if (scan.bad_header) {
      // Checksum/format evidence: the file itself is garbage. Truncate the
      // log here, as for any corrupt tail.
      stats_.tail_truncations++;
      stats_.tail_error = scan.tail_error;
      cut_from = i;
      break;
    }
    if (next_lsn == 0) next_lsn = scan.first_lsn;  // no snapshot: start here
    // A segment must continue the run: its frames start at its header LSN,
    // and the run's next expected LSN must fall within [first_lsn, end].
    if (scan.first_lsn > next_lsn) {
      stats_.tail_truncations++;
      stats_.tail_error = "segment " + path + " starts at lsn " +
                          std::to_string(scan.first_lsn) + ", expected " +
                          std::to_string(next_lsn);
      cut_from = i;
      break;
    }
    for (WalFrame& frame : scan.frames) {
      if (frame.lsn < next_lsn) continue;  // predates the snapshot
      out.frames.push_back(std::move(frame));
      ++next_lsn;
    }
    tail_path = path;
    tail_valid = scan.valid_bytes;
    tail_next_lsn = scan.first_lsn + scan.frames.size();
    if (scan.tail_truncated) {
      stats_.tail_truncations++;
      stats_.tail_error = scan.tail_error;
      cut_from = i + 1;
      break;
    }
  }
  for (size_t i = cut_from; i < segments.size(); ++i) {
    if (SegmentPath(segments[i]) == tail_path) continue;
    if (UnlinkCounted(SegmentPath(segments[i]))) {
      ++stats_.segments_pruned;
    }
  }

  last_lsn_ = next_lsn == 0 ? 0 : next_lsn - 1;
  stats_.recovered_from_snapshot = out.has_snapshot;
  stats_.recovered_lsn = last_lsn_;
  stats_.frames_replayed = out.frames.size();

  if (!tail_path.empty() && last_lsn_ + 1 == tail_next_lsn) {
    DVMS_ASSIGN_OR_RETURN(writer_,
                          WalWriter::OpenForAppend(tail_path, tail_valid, mode_));
  } else {
    if (!tail_path.empty()) {
      // The resume point is past the tail's last frame: a snapshot covers
      // LSNs whose frames never reached this segment (possible when a crash
      // under DVMS_WAL_FSYNC=off loses unsynced frames that an fsynced
      // snapshot had already superseded). Appending here would leave an
      // in-segment LSN gap the next recovery must truncate as corruption,
      // so seal the tail at its valid prefix and rotate to a fresh segment
      // starting at the resume LSN.
      DVMS_RETURN_IF_ERROR(env::Active()->Truncate(tail_path, tail_valid));
    }
    DVMS_ASSIGN_OR_RETURN(
        writer_, WalWriter::Create(SegmentPath(last_lsn_ + 1), last_lsn_ + 1,
                                   mode_));
    DVMS_RETURN_IF_ERROR(env::Active()->SyncDir(dir_));
  }
  return out;
}

Status DurabilityManager::RotateAfterFsyncFailure() {
  // This *is* the recovery path for the failed fsync: it must not be
  // re-faulted while undoing the damage, and the crash harness's rollback
  // scopes expect the same exemption.
  FaultSuppressScope suppress;
  Env* env = env::Active();
  std::vector<WalFrame> retained = writer_->TakeUnsyncedFrames();
  const uint64_t synced = writer_->synced_offset();
  const std::string old_path = writer_->path();
  writer_.reset();  // fd already closed by the fsyncgate poison
  // The unsynced tail of the old segment may be garbage — the kernel was
  // free to drop those dirty pages when the fsync failed. Cut the file
  // back to the prefix the last successful fsync made durable.
  DVMS_RETURN_IF_ERROR(env->Truncate(old_path, synced));
  const uint64_t first =
      retained.empty() ? last_lsn_ + 1 : retained.front().lsn;
  DVMS_ASSIGN_OR_RETURN(std::unique_ptr<WalWriter> next,
                        WalWriter::Create(SegmentPath(first), first, mode_));
  for (const WalFrame& frame : retained) {
    DVMS_RETURN_IF_ERROR(next->Append(frame.lsn, frame.payload));
  }
  // Re-establish durability of the previously acknowledged frames by
  // rewriting and syncing them in the fresh segment — never by assuming a
  // retried fsync on the old fd would have covered them.
  DVMS_RETURN_IF_ERROR(next->Flush());
  DVMS_RETURN_IF_ERROR(env->SyncDir(dir_));
  writer_ = std::move(next);
  ++stats_.fsync_rotations;
  obs::Count("storage.fsync_rotations");
  return Status::OK();
}

Status DurabilityManager::HandleWriterFailure(Status st) {
  if (writer_ == nullptr || !writer_->sync_failed()) return st;
  Status rotated = RotateAfterFsyncFailure();
  if (!rotated.ok()) {
    // Rotation could not re-establish a durable log: terminal. Drop the
    // writer so every later append fails fast instead of appending after
    // an untrustworthy tail.
    writer_.reset();
    return Status::ExecutionError(
        "durability: fsync failed and segment rotation failed (" +
        rotated.message() + "); original failure: " + st.message());
  }
  return st;
}

Status DurabilityManager::Append(uint64_t lsn, const std::string& payload) {
  if (!recovered_ || writer_ == nullptr) {
    return Status::Internal("durability: Append() before successful Recover()");
  }
  if (lsn != last_lsn_ + 1) {
    return Status::Internal("durability: non-consecutive lsn " +
                            std::to_string(lsn) + " (log is at " +
                            std::to_string(last_lsn_) + ")");
  }
  Status st = writer_->Append(lsn, payload);
  if (!st.ok()) return HandleWriterFailure(std::move(st));
  last_lsn_ = lsn;
  ++stats_.frames_appended;
  return Status::OK();
}

Status DurabilityManager::Flush() {
  if (writer_ == nullptr) return Status::OK();
  Status st = writer_->Flush();
  if (!st.ok()) return HandleWriterFailure(std::move(st));
  return Status::OK();
}

Status DurabilityManager::WriteSnapshot(uint64_t last_lsn,
                                        const std::string& payload) {
  if (!recovered_) {
    return Status::Internal("durability: snapshot before Recover()");
  }
  obs::Span span("snapshot.write");
  obs::Count("snapshot.writes");
  obs::Count("snapshot.bytes", payload.size());
  DVMS_RETURN_IF_ERROR(fault::MaybeInject(FaultSite::kDurabilityIo));

  // Frames covered by the snapshot must be durable before the snapshot can
  // supersede them (it may cause their segment to be pruned).
  DVMS_RETURN_IF_ERROR(Flush());

  Env* env = env::Active();
  const std::string final_path = SnapshotPath(last_lsn);
  const std::string tmp_path = final_path + ".tmp";
  char header[kSnapshotHeaderBytes];
  std::memcpy(header, kSnapshotMagic, sizeof(kSnapshotMagic));
  StoreU64(header + 8, last_lsn);
  StoreU64(header + 16, payload.size());
  StoreU32(header + 24, MaskCrc(Crc32cExtend(Crc32c(header + 8, 8),
                                             payload.data(), payload.size())));

  DVMS_ASSIGN_OR_RETURN(
      int fd, env->Open(tmp_path, O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                        0644));
  Status st = env::WriteFully(env, fd, header, sizeof(header), tmp_path);
  if (st.ok()) {
    st = env::WriteFully(env, fd, payload.data(), payload.size(), tmp_path);
  }
  // A failed snapshot fsync needs no rotation dance: the tmp file is
  // simply abandoned before the rename, so the snapshot is never
  // acknowledged and the previous one stays authoritative.
  if (st.ok()) st = env::FsyncOrPoison(env, &fd, tmp_path);
  env->Close(fd);
  if (st.ok()) st = env->Rename(tmp_path, final_path);
  if (!st.ok()) {
    FaultSuppressScope suppress;  // cleanup of the failure, not new work
    UnlinkCounted(tmp_path);
    return st;
  }
  DVMS_RETURN_IF_ERROR(env->SyncDir(dir_));
  ++stats_.snapshots_written;

  // Rotate so the next interval's frames land in a fresh segment; failure
  // keeps appending to the current segment (recovery handles both layouts).
  Result<std::unique_ptr<WalWriter>> next =
      WalWriter::Create(SegmentPath(last_lsn + 1), last_lsn + 1, mode_);
  if (next.ok()) {
    writer_ = std::move(next).value();
    Status dir_st = env->SyncDir(dir_);
    if (!dir_st.ok()) return dir_st;
  }
  PruneObsoleteFiles();
  return Status::OK();
}

void DurabilityManager::PruneObsoleteFiles() {
  // Keep the two newest snapshots so a corrupt newest still leaves a
  // recoverable older one.
  Result<std::vector<uint64_t>> snaps = ListNumbered(dir_, "snapshot-", ".snap");
  if (!snaps.ok()) return;
  uint64_t oldest_retained_snap = 0;
  if (snaps.value().size() > 2) {
    for (size_t i = 0; i + 2 < snaps.value().size(); ++i) {
      UnlinkCounted(SnapshotPath(snaps.value()[i]));
    }
  }
  if (snaps.value().size() >= 2) {
    oldest_retained_snap = snaps.value()[snaps.value().size() - 2];
  } else if (!snaps.value().empty()) {
    oldest_retained_snap = snaps.value().back();
  } else {
    return;  // no snapshot: every segment is still needed
  }

  // A segment is obsolete once the *next* segment begins at or before the
  // oldest retained snapshot's successor — everything in it is at an LSN
  // some retained snapshot already covers.
  Result<std::vector<uint64_t>> segments = ListNumbered(dir_, "wal-", ".log");
  if (!segments.ok()) return;
  for (size_t i = 0; i + 1 < segments.value().size(); ++i) {
    if (segments.value()[i + 1] <= oldest_retained_snap + 1) {
      if (UnlinkCounted(SegmentPath(segments.value()[i]))) {
        ++stats_.segments_pruned;
      }
    }
  }
}

DurabilityStats DurabilityManager::stats() const {
  DurabilityStats s = stats_;
  if (writer_ != nullptr) s.fsyncs = writer_->fsyncs();
  return s;
}

}  // namespace dvms
