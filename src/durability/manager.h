#ifndef DVMS_DURABILITY_MANAGER_H_
#define DVMS_DURABILITY_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "durability/wal.h"

namespace dvms {

/// Counters describing what durability did — surfaced via
/// Dvms::durability_stats() and asserted on by the crash harness.
struct DurabilityStats {
  uint64_t frames_appended = 0;
  uint64_t frames_replayed = 0;
  uint64_t snapshots_written = 0;
  uint64_t snapshots_discarded = 0;  // corrupt snapshot files skipped
  uint64_t segments_pruned = 0;
  uint64_t tail_truncations = 0;     // torn/corrupt log tails dropped
  uint64_t fsyncs = 0;
  uint64_t unlink_failures = 0;      // cleanup unlinks that failed (logged)
  uint64_t fsync_rotations = 0;      // fsyncgate rotations after failed syncs
  bool recovered_from_snapshot = false;
  uint64_t recovered_lsn = 0;        // newest LSN visible after recovery
  std::string tail_error;            // why the tail was truncated, if it was
};

/// What a recovery scan found: the newest valid snapshot (if any) plus the
/// contiguous valid frame suffix to replay on top of it.
struct RecoveredLog {
  bool has_snapshot = false;
  uint64_t snapshot_lsn = 0;
  std::string snapshot_payload;   // EncodeEngineSnapshot output
  std::vector<WalFrame> frames;   // LSNs > snapshot_lsn, consecutive
};

/// Owns one durability directory:
///   wal-<first_lsn>.log        — log segments (one per snapshot interval)
///   snapshot-<last_lsn>.snap   — checksummed snapshots (newest two kept)
///
/// Snapshots are written atomically (temp file + fsync + rename + directory
/// fsync) so a crash mid-snapshot leaves the previous one intact. Recovery
/// picks the newest snapshot whose checksum validates — falling back to an
/// older one, or to pure log replay — then scans segments in order,
/// truncating at the first bad frame and discarding anything beyond it.
class DurabilityManager {
 public:
  /// Creates the directory (and parents) if needed. No files are touched
  /// until Recover().
  static Result<std::unique_ptr<DurabilityManager>> Open(std::string dir,
                                                         WalFsyncMode mode);

  /// Scans the directory, repairs torn tails on disk, opens the tail
  /// segment for appending, and returns what to restore/replay. Call
  /// exactly once, before the first Append().
  Result<RecoveredLog> Recover();

  /// Appends one committed-mutation frame. `lsn` must be exactly one past
  /// the newest LSN (recovered or appended).
  Status Append(uint64_t lsn, const std::string& payload);

  /// Forces batched frames to stable storage (group-commit flush).
  Status Flush();

  /// Writes a snapshot covering the log through `last_lsn`, then rotates to
  /// a fresh segment and prunes snapshots/segments no longer needed. A
  /// failure leaves the log fully intact — snapshotting is an optimization,
  /// never a durability requirement.
  Status WriteSnapshot(uint64_t last_lsn, const std::string& payload);

  uint64_t last_lsn() const { return last_lsn_; }
  const std::string& dir() const { return dir_; }
  WalFsyncMode fsync_mode() const { return mode_; }
  DurabilityStats stats() const;

  /// Path of the segment currently open for appends — empty after a
  /// terminal writer failure. The integrity scrubber skips it: its tail is
  /// legitimately in flight, so only sealed files are held to the
  /// every-byte-validates standard.
  std::string ActiveSegmentPath() const {
    return writer_ != nullptr ? writer_->path() : std::string();
  }

 private:
  DurabilityManager(std::string dir, WalFsyncMode mode)
      : dir_(std::move(dir)), mode_(mode) {}

  std::string SegmentPath(uint64_t first_lsn) const;
  std::string SnapshotPath(uint64_t last_lsn) const;
  void PruneObsoleteFiles();
  /// Removes `path`; a failure is logged to stderr (once per manager),
  /// counted in stats().unlink_failures and the storage.unlink_failed
  /// metric, and otherwise tolerated — retention just holds extra files
  /// until the next prune retries. Returns whether the unlink succeeded.
  bool UnlinkCounted(const std::string& path);
  /// fsyncgate recovery: after a failed WAL fsync the poisoned writer's
  /// unsynced tail is untrustworthy. Truncates the old segment back to its
  /// durable prefix, creates a fresh segment at the first unsynced LSN,
  /// rewrites the retained frames into it, and forces them to stable
  /// storage — re-establishing durability by rewrite, never by re-running
  /// fsync on the old fd. Any failure here is terminal for the log.
  Status RotateAfterFsyncFailure();
  /// Routes writer failures through the rotation above when the writer was
  /// poisoned by a failed fsync; returns the (possibly annotated) original
  /// failure.
  Status HandleWriterFailure(Status st);

  std::string dir_;
  WalFsyncMode mode_;
  std::unique_ptr<WalWriter> writer_;
  uint64_t last_lsn_ = 0;
  bool recovered_ = false;
  bool unlink_warned_ = false;
  DurabilityStats stats_;
};

/// Reads and validates a snapshot file; errors on any corruption (bad
/// magic, short file, checksum mismatch). Returns the decoded payload and
/// the last LSN it covers. Exposed for tests.
Result<std::pair<uint64_t, std::string>> ReadSnapshotFile(
    const std::string& path);

/// Directory-layout helpers shared with the replication tailer, which
/// watches another engine's durability directory read-only.
/// LSN-sorted (ascending) header LSNs of the wal-<lsn>.log segments in
/// `dir`; a Status error means the directory could not be listed.
Result<std::vector<uint64_t>> ListWalSegments(const std::string& dir);
/// LSN-sorted (ascending) covered LSNs of the snapshot-<lsn>.snap files.
Result<std::vector<uint64_t>> ListWalSnapshots(const std::string& dir);
std::string WalSegmentPath(const std::string& dir, uint64_t first_lsn);
std::string WalSnapshotPath(const std::string& dir, uint64_t last_lsn);

}  // namespace dvms

#endif  // DVMS_DURABILITY_MANAGER_H_
