#ifndef DVMS_DURABILITY_WAL_H_
#define DVMS_DURABILITY_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace dvms {

/// When interaction-log appends reach stable storage.
///   kAlways — fsync after every committed mutation unit (default; an
///             acknowledged interaction survives power loss).
///   kBatch  — group commit: fsyncs are batched across consecutive
///             mutation units and forced every kGroupCommitAppends frames,
///             at snapshots, and on clean shutdown. A crash can lose the
///             last unsynced batch, never corrupt the log.
///   kOff    — never fsync from the engine; the OS flushes lazily.
enum class WalFsyncMode { kAlways, kBatch, kOff };

/// Parses "always" / "batch" / "off" (case-insensitive; the DVMS_WAL_FSYNC
/// values).
Result<WalFsyncMode> ParseWalFsyncMode(const std::string& name);
const char* WalFsyncModeToString(WalFsyncMode mode);

/// Frames per fsync in kBatch mode.
inline constexpr size_t kGroupCommitAppends = 16;

/// One decoded log frame: a monotonic log sequence number plus the encoded
/// WalRecord payload.
struct WalFrame {
  uint64_t lsn = 0;
  std::string payload;
};

/// Segment layout: an 8-byte magic + u64 first-LSN header, then frames of
///   u32 payload_len | u32 masked-CRC32C(lsn || payload) | u64 lsn | payload
/// The CRC covers the LSN so a frame spliced from another position (or
/// segment) is rejected even if its payload is intact.
inline constexpr char kWalMagic[8] = {'D', 'V', 'M', 'S', 'W', 'A', 'L', '1'};
inline constexpr size_t kWalHeaderBytes = 16;   // magic + first_lsn
inline constexpr size_t kWalFrameOverhead = 16; // len + crc + lsn
inline constexpr uint32_t kMaxWalFramePayload = 1u << 26;  // 64 MiB

/// Appends frames to one segment file. All I/O goes through the injectable
/// Env captured at construction; I/O errors (and injected
/// FaultSite::kDurabilityIo / DVMS_IO_FAULTS faults) surface as Status. A
/// failed write truncates the file back to its pre-append length so the
/// on-disk log never acknowledges a frame the caller saw fail. A failed
/// fsync poisons the writer outright (fsyncgate: the kernel may have
/// dropped the dirty pages, so retrying the fsync and assuming durability
/// would silently lose acknowledged group-committed frames); the writer
/// retains copies of every unsynced frame so DurabilityManager can rotate
/// them into a fresh segment and re-establish durability by rewriting.
class WalWriter {
 public:
  /// Creates a fresh segment whose header names `first_lsn`.
  static Result<std::unique_ptr<WalWriter>> Create(const std::string& path,
                                                   uint64_t first_lsn,
                                                   WalFsyncMode mode);

  /// Reopens an existing segment for appending. `valid_bytes` is the
  /// validated frame prefix from recovery; anything after it (a torn tail)
  /// is truncated away first.
  static Result<std::unique_ptr<WalWriter>> OpenForAppend(
      const std::string& path, uint64_t valid_bytes, WalFsyncMode mode);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  Status Append(uint64_t lsn, const std::string& payload);

  /// Forces any batched frames to stable storage.
  Status Flush();

  const std::string& path() const { return path_; }
  uint64_t bytes_written() const { return offset_; }
  uint64_t fsyncs() const { return fsyncs_; }
  /// Frames appended since the last successful fsync (group-commit
  /// accounting; a rolled-back append does not count).
  size_t pending_appends() const { return pending_appends_; }

  /// True once an fsync failed and poisoned the writer. The on-disk bytes
  /// past synced_offset() are untrustworthy; the frames they held are
  /// available via TakeUnsyncedFrames() for rotation.
  bool sync_failed() const { return sync_failed_; }
  /// File length as of the last successful fsync — the prefix that is
  /// known durable even after a failed sync.
  uint64_t synced_offset() const { return synced_offset_; }
  /// Hands over the retained unsynced frames (excluding any frame whose
  /// append was reported failed). For DurabilityManager's fsync-failure
  /// rotation; leaves the retention list empty.
  std::vector<WalFrame> TakeUnsyncedFrames() { return std::move(unsynced_); }

 private:
  WalWriter(std::string path, int fd, uint64_t offset, WalFsyncMode mode)
      : path_(std::move(path)),
        fd_(fd),
        offset_(offset),
        synced_offset_(offset),
        mode_(mode) {}

  Status Sync();

  std::string path_;
  int fd_ = -1;
  uint64_t offset_ = 0;
  uint64_t synced_offset_ = 0;
  WalFsyncMode mode_;
  size_t pending_appends_ = 0;
  uint64_t fsyncs_ = 0;
  bool sync_failed_ = false;
  /// Copies of appended-but-unsynced frames (empty in kOff mode, where no
  /// fsync can fail; bounded by the group-commit threshold otherwise).
  std::vector<WalFrame> unsynced_;
};

/// Result of scanning one segment. Scanning never fails on corruption:
/// the scan stops at the first bad frame (bad CRC, implausible length,
/// short read, or non-consecutive LSN) and reports the valid prefix — the
/// paper-trail version of "truncate at the first bad frame" — while a
/// short or mangled segment header sets `bad_header` (the whole file is
/// garbage).
struct WalScan {
  uint64_t first_lsn = 0;        // from the segment header
  std::vector<WalFrame> frames;  // the valid prefix
  uint64_t valid_bytes = 0;      // offset just past the last valid frame
  bool tail_truncated = false;   // a bad/torn frame (or garbage) follows
  bool bad_header = false;       // the segment header itself is corrupt
  std::string tail_error;        // human-readable reason when truncated
};

/// Reads and validates a segment. A Status error means the file could not
/// be read at all (open/read I/O failure — possibly transient, the bytes
/// may be fine); every checksum/format violation, including a corrupt
/// segment header, is reported through the scan so the caller can
/// distinguish "retry later" from "truncate here".
Result<WalScan> ScanWalSegment(const std::string& path);

namespace durability_testing {

/// Crash-injection hook for the recovery harness: after `n` more bytes of
/// WAL file writes, the process writes a *partial* chunk (a torn frame)
/// and calls _exit — simulating SIGKILL mid-write. Negative disables.
/// Test-only; not thread-safe against concurrent writers.
void CrashAfterWalBytes(int64_t n);

}  // namespace durability_testing

}  // namespace dvms

#endif  // DVMS_DURABILITY_WAL_H_
