#include "durability/tailer.h"

#include <algorithm>
#include <utility>

#include "common/fault.h"

namespace dvms {

namespace {

/// Largest segment header LSN <= `lsn` in an ascending list — the segment
/// that contains `lsn` if any segment does. false when every segment starts
/// beyond `lsn` (or the list is empty).
bool ResumeSegment(const std::vector<uint64_t>& segments, uint64_t lsn,
                   uint64_t* out) {
  bool found = false;
  for (uint64_t first : segments) {
    if (first > lsn) break;
    *out = first;
    found = true;
  }
  return found;
}

}  // namespace

uint64_t PollCadence::NextWaitMs(uint64_t consecutive_failures) {
  const uint64_t backed_off = base_ms_
                              << std::min<uint64_t>(consecutive_failures, 6);
  const double jittered =
      static_cast<double>(backed_off) * rng_.Uniform(0.5, 1.5);
  return std::max<uint64_t>(1, static_cast<uint64_t>(jittered));
}

Result<RecoveredLog> ReadLogReadOnly(const std::string& dir) {
  RecoveredLog out;
  DVMS_ASSIGN_OR_RETURN(std::vector<uint64_t> snapshots,
                        ListWalSnapshots(dir));
  // Newest snapshot whose checksum validates; corrupt ones (e.g. a crash
  // mid-write on the primary before the rename) are simply skipped — the
  // primary will clean them up, we must not.
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    Result<std::pair<uint64_t, std::string>> snap =
        ReadSnapshotFile(WalSnapshotPath(dir, *it));
    if (!snap.ok()) continue;
    out.has_snapshot = true;
    out.snapshot_lsn = snap.value().first;
    out.snapshot_payload = std::move(snap.value().second);
    break;
  }
  DVMS_ASSIGN_OR_RETURN(std::vector<uint64_t> segments, ListWalSegments(dir));
  // 0 = adopt the first segment's header LSN (pure-log directory).
  uint64_t next_lsn =
      out.has_snapshot ? out.snapshot_lsn + 1 : (segments.empty() ? 1 : 0);
  for (uint64_t first : segments) {
    // A segment starting beyond the resume point is a gap: stop at the
    // contiguous prefix. Older segments are scanned and their stale frames
    // skipped (they may still hold the resume point mid-segment).
    if (next_lsn != 0 && first > next_lsn) break;
    DVMS_ASSIGN_OR_RETURN(WalScan scan,
                          ScanWalSegment(WalSegmentPath(dir, first)));
    if (scan.bad_header) break;
    if (next_lsn == 0) next_lsn = scan.first_lsn;
    if (scan.first_lsn > next_lsn) break;
    for (WalFrame& frame : scan.frames) {
      if (frame.lsn < next_lsn) continue;
      out.frames.push_back(std::move(frame));
      ++next_lsn;
    }
    if (scan.tail_truncated) break;  // in-flight tail: stop here
  }
  return out;
}

WalTailer::WalTailer(std::string dir, uint64_t applied_lsn)
    : dir_(std::move(dir)), next_lsn_(applied_lsn + 1) {}

Result<std::vector<WalFrame>> WalTailer::Poll() {
  ++stats_.polls;
  std::vector<WalFrame> out;
  // Drain segments until the tail is reached. Each iteration either crosses
  // a rotation boundary (strictly advancing next_lsn_) or breaks, so the
  // loop is bounded by the number of segments on disk.
  for (;;) {
    // An injected replication fault models any transient read failure of
    // the primary's directory (NFS hiccup, listing race); the tail loop
    // retries with backoff.
    DVMS_RETURN_IF_ERROR(fault::MaybeInject(FaultSite::kReplication));
    DVMS_ASSIGN_OR_RETURN(std::vector<uint64_t> segments,
                          ListWalSegments(dir_));
    // The newest snapshot also bounds the primary's LSN: after a
    // snapshot-ahead-of-tail crash the snapshot name, not a log frame,
    // carries the high-water mark.
    DVMS_ASSIGN_OR_RETURN(std::vector<uint64_t> snapshots,
                          ListWalSnapshots(dir_));
    uint64_t newest_snapshot = snapshots.empty() ? 0 : snapshots.back();
    stats_.primary_lsn = std::max(stats_.primary_lsn, newest_snapshot);
    uint64_t segment = 0;
    if (!ResumeSegment(segments, next_lsn_, &segment)) {
      if (segments.empty() && newest_snapshot < next_lsn_) {
        break;  // primary has not written anything (new) yet
      }
      // Every segment starts beyond our resume point: the frames we still
      // need were pruned out from under a replica that lagged past the
      // retained window. Unrecoverable from the log alone.
      return Status::NotFound(
          "replication: resume lsn " + std::to_string(next_lsn_) +
          " is no longer on disk in " + dir_ +
          " (replica lagged past the primary's pruning window); restart the "
          "replica to re-bootstrap from the newest snapshot");
    }
    if (segment != last_segment_) {
      if (last_segment_ != 0) ++stats_.segment_switches;
      last_segment_ = segment;
    }
    DVMS_RETURN_IF_ERROR(fault::MaybeInject(FaultSite::kReplication));
    Result<WalScan> scanned = ScanWalSegment(WalSegmentPath(dir_, segment));
    if (!scanned.ok()) {
      // Open/read failure. Includes "segment pruned between the listing and
      // the open" — the next poll re-lists and resolves the new layout.
      return scanned.status();
    }
    WalScan scan = std::move(scanned).value();
    if (scan.bad_header) {
      // A freshly rotated segment whose header write is still in flight is
      // indistinguishable, from a reader, from real corruption (which only
      // the owner may repair at recovery). Retry next poll.
      ++stats_.torn_tail_retries;
      break;
    }
    if (scan.first_lsn > next_lsn_) {
      return Status::NotFound(
          "replication: segment " + WalSegmentPath(dir_, segment) +
          " header names lsn " + std::to_string(scan.first_lsn) +
          " but the replica needs " + std::to_string(next_lsn_));
    }
    const uint64_t before = next_lsn_;
    for (WalFrame& frame : scan.frames) {
      if (frame.lsn < next_lsn_) continue;
      stats_.bytes_delivered += frame.payload.size() + kWalFrameOverhead;
      out.push_back(std::move(frame));
      ++next_lsn_;
    }
    uint64_t scan_end = scan.first_lsn + scan.frames.size();
    if (scan_end > 0) {
      stats_.primary_lsn = std::max(stats_.primary_lsn, scan_end - 1);
    }
    if (scan.tail_truncated) {
      // A torn tail frame is an append in flight on the primary, not
      // corruption (WalScan's truncate-vs-abort distinction): deliver the
      // valid prefix now and pick up the rest next poll.
      ++stats_.torn_tail_retries;
      break;
    }
    // Clean end of segment. If the primary rotated (snapshot boundary), a
    // newer segment begins exactly at next_lsn_ — keep draining into it.
    uint64_t next_segment = 0;
    bool rotated = ResumeSegment(segments, next_lsn_, &next_segment) &&
                   next_segment > segment;
    if (!rotated) break;  // caught up with the tail segment
    ++stats_.rotations;
    if (next_lsn_ == before && out.empty()) {
      // Defensive: a rotation that contributed no frames cannot recur
      // forever (segment lists are finite and ResumeSegment is monotone),
      // but bail rather than trust that under concurrent pruning.
      break;
    }
  }
  stats_.frames_delivered += out.size();
  return out;
}

}  // namespace dvms
