#include "durability/log_record.h"

namespace dvms {

namespace {

constexpr uint32_t kMaxListCount = 1u << 24;
/// Expression trees in DeVIL programs are shallow; a corrupt (yet
/// CRC-passing) payload must not be able to blow the decode stack.
constexpr int kMaxExprDepth = 512;

Status ListError(const char* what, uint32_t n) {
  return Status::ExecutionError("log-record decode: implausible " +
                                std::string(what) + " count " +
                                std::to_string(n));
}

Result<ExprPtr> DecodeExprDepth(BinaryReader* r, int depth);

}  // namespace

bool WalRecord::IsDefinition() const {
  switch (op) {
    case Op::kCreateTable:
    case Op::kCreateScale:
    case Op::kLoadProgram:
    case Op::kCompose:
      return true;
    case Op::kStatement:
      switch (statement.kind) {
        case Statement::Kind::kViewDef:
        case Statement::Kind::kEventDef:
        case Statement::Kind::kTraceDef:
        case Statement::Kind::kCreateTable:
          return true;
        default:
          return false;
      }
    default:
      return false;
  }
}

const char* WalOpToString(WalRecord::Op op) {
  switch (op) {
    case WalRecord::Op::kCreateTable: return "create-table";
    case WalRecord::Op::kInsert: return "insert";
    case WalRecord::Op::kDelete: return "delete";
    case WalRecord::Op::kCreateScale: return "create-scale";
    case WalRecord::Op::kLoadProgram: return "load-program";
    case WalRecord::Op::kStatement: return "statement";
    case WalRecord::Op::kEvent: return "event";
    case WalRecord::Op::kUndo: return "undo";
    case WalRecord::Op::kRedo: return "redo";
    case WalRecord::Op::kCompose: return "compose";
  }
  return "?";
}

// ---- Expr ----

void EncodeExpr(const ExprPtr& e, BinaryWriter* w) {
  if (e == nullptr) {
    w->PutU8(0);
    return;
  }
  w->PutU8(1);
  w->PutU8(static_cast<uint8_t>(e->kind));
  EncodeValue(e->literal, w);
  w->PutString(e->qualifier);
  w->PutString(e->column);
  w->PutU8(static_cast<uint8_t>(e->unary_op));
  w->PutU8(static_cast<uint8_t>(e->binary_op));
  w->PutString(e->function_name);
  w->PutU8(static_cast<uint8_t>(e->agg_func));
  w->PutBool(e->count_star);
  w->PutString(e->in_relation);
  w->PutBool(e->negated);
  w->PutU32(static_cast<uint32_t>(e->children.size()));
  for (const ExprPtr& child : e->children) EncodeExpr(child, w);
}

namespace {

Result<ExprPtr> DecodeExprDepth(BinaryReader* r, int depth) {
  if (depth > kMaxExprDepth) {
    return Status::ExecutionError("log-record decode: expression too deep");
  }
  DVMS_ASSIGN_OR_RETURN(uint8_t present, r->GetU8());
  if (present == 0) return ExprPtr(nullptr);
  auto e = std::make_shared<Expr>();
  DVMS_ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
  if (kind > static_cast<uint8_t>(ExprKind::kInRelation)) {
    return Status::ExecutionError("log-record decode: unknown expr kind " +
                                  std::to_string(kind));
  }
  e->kind = static_cast<ExprKind>(kind);
  DVMS_ASSIGN_OR_RETURN(e->literal, DecodeValue(r));
  DVMS_ASSIGN_OR_RETURN(e->qualifier, r->GetString());
  DVMS_ASSIGN_OR_RETURN(e->column, r->GetString());
  DVMS_ASSIGN_OR_RETURN(uint8_t unary, r->GetU8());
  e->unary_op = static_cast<UnaryOp>(unary);
  DVMS_ASSIGN_OR_RETURN(uint8_t binary, r->GetU8());
  e->binary_op = static_cast<BinaryOp>(binary);
  DVMS_ASSIGN_OR_RETURN(e->function_name, r->GetString());
  DVMS_ASSIGN_OR_RETURN(uint8_t agg, r->GetU8());
  e->agg_func = static_cast<AggFunc>(agg);
  DVMS_ASSIGN_OR_RETURN(e->count_star, r->GetBool());
  DVMS_ASSIGN_OR_RETURN(e->in_relation, r->GetString());
  DVMS_ASSIGN_OR_RETURN(e->negated, r->GetBool());
  DVMS_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  if (n > kMaxListCount) return ListError("expr child", n);
  e->children.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    DVMS_ASSIGN_OR_RETURN(ExprPtr child, DecodeExprDepth(r, depth + 1));
    e->children.push_back(std::move(child));
  }
  return e;
}

}  // namespace

Result<ExprPtr> DecodeExpr(BinaryReader* r) { return DecodeExprDepth(r, 0); }

// ---- InputEvent ----

void EncodeInputEvent(const InputEvent& e, BinaryWriter* w) {
  w->PutU8(static_cast<uint8_t>(e.type));
  w->PutI64(e.t);
  w->PutDouble(e.x);
  w->PutDouble(e.y);
  w->PutString(e.key);
  w->PutDouble(e.delta);
}

Result<InputEvent> DecodeInputEvent(BinaryReader* r) {
  InputEvent e;
  DVMS_ASSIGN_OR_RETURN(uint8_t type, r->GetU8());
  if (type > static_cast<uint8_t>(EventType::kWheel)) {
    return Status::ExecutionError("log-record decode: unknown event type " +
                                  std::to_string(type));
  }
  e.type = static_cast<EventType>(type);
  DVMS_ASSIGN_OR_RETURN(e.t, r->GetI64());
  DVMS_ASSIGN_OR_RETURN(e.x, r->GetDouble());
  DVMS_ASSIGN_OR_RETURN(e.y, r->GetDouble());
  DVMS_ASSIGN_OR_RETURN(e.key, r->GetString());
  DVMS_ASSIGN_OR_RETURN(e.delta, r->GetDouble());
  return e;
}

// ---- SELECT ----

namespace {

void EncodeVersionRef(const VersionRef& v, BinaryWriter* w) {
  w->PutU8(static_cast<uint8_t>(v.kind));
  w->PutU64(v.offset);
}

Result<VersionRef> DecodeVersionRef(BinaryReader* r) {
  VersionRef v;
  DVMS_ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
  if (kind > static_cast<uint8_t>(VersionRef::Kind::kTnow)) {
    return Status::ExecutionError("log-record decode: unknown version kind " +
                                  std::to_string(kind));
  }
  v.kind = static_cast<VersionRef::Kind>(kind);
  DVMS_ASSIGN_OR_RETURN(v.offset, r->GetU64());
  return v;
}

void EncodeTableRef(const TableRef& t, BinaryWriter* w) {
  w->PutString(t.name);
  EncodeVersionRef(t.version, w);
  w->PutString(t.alias);
  if (t.subquery != nullptr) {
    w->PutU8(1);
    EncodeSelectStmt(*t.subquery, w);
  } else {
    w->PutU8(0);
  }
}

Result<TableRef> DecodeTableRef(BinaryReader* r) {
  TableRef t;
  DVMS_ASSIGN_OR_RETURN(t.name, r->GetString());
  DVMS_ASSIGN_OR_RETURN(t.version, DecodeVersionRef(r));
  DVMS_ASSIGN_OR_RETURN(t.alias, r->GetString());
  DVMS_ASSIGN_OR_RETURN(uint8_t has_sub, r->GetU8());
  if (has_sub != 0) {
    DVMS_ASSIGN_OR_RETURN(SelectStmt sub, DecodeSelectStmt(r));
    t.subquery = std::make_shared<SelectStmt>(std::move(sub));
  }
  return t;
}

void EncodeSelectCore(const SelectCore& c, BinaryWriter* w) {
  w->PutBool(c.distinct);
  w->PutU32(static_cast<uint32_t>(c.items.size()));
  for (const SelectItem& item : c.items) {
    EncodeExpr(item.expr, w);
    w->PutString(item.alias);
    w->PutBool(item.star);
    w->PutString(item.star_qualifier);
  }
  w->PutU32(static_cast<uint32_t>(c.from.size()));
  for (const TableRef& t : c.from) EncodeTableRef(t, w);
  EncodeExpr(c.where, w);
  w->PutU32(static_cast<uint32_t>(c.group_by.size()));
  for (const ExprPtr& e : c.group_by) EncodeExpr(e, w);
  EncodeExpr(c.having, w);
  w->PutU32(static_cast<uint32_t>(c.order_by.size()));
  for (const OrderItem& o : c.order_by) {
    EncodeExpr(o.expr, w);
    w->PutBool(o.descending);
  }
  w->PutBool(c.limit.has_value());
  if (c.limit.has_value()) w->PutU64(*c.limit);
}

Result<SelectCore> DecodeSelectCore(BinaryReader* r) {
  SelectCore c;
  DVMS_ASSIGN_OR_RETURN(c.distinct, r->GetBool());
  DVMS_ASSIGN_OR_RETURN(uint32_t n_items, r->GetU32());
  if (n_items > kMaxListCount) return ListError("select item", n_items);
  for (uint32_t i = 0; i < n_items; ++i) {
    SelectItem item;
    DVMS_ASSIGN_OR_RETURN(item.expr, DecodeExpr(r));
    DVMS_ASSIGN_OR_RETURN(item.alias, r->GetString());
    DVMS_ASSIGN_OR_RETURN(item.star, r->GetBool());
    DVMS_ASSIGN_OR_RETURN(item.star_qualifier, r->GetString());
    c.items.push_back(std::move(item));
  }
  DVMS_ASSIGN_OR_RETURN(uint32_t n_from, r->GetU32());
  if (n_from > kMaxListCount) return ListError("table ref", n_from);
  for (uint32_t i = 0; i < n_from; ++i) {
    DVMS_ASSIGN_OR_RETURN(TableRef t, DecodeTableRef(r));
    c.from.push_back(std::move(t));
  }
  DVMS_ASSIGN_OR_RETURN(c.where, DecodeExpr(r));
  DVMS_ASSIGN_OR_RETURN(uint32_t n_group, r->GetU32());
  if (n_group > kMaxListCount) return ListError("group-by", n_group);
  for (uint32_t i = 0; i < n_group; ++i) {
    DVMS_ASSIGN_OR_RETURN(ExprPtr e, DecodeExpr(r));
    c.group_by.push_back(std::move(e));
  }
  DVMS_ASSIGN_OR_RETURN(c.having, DecodeExpr(r));
  DVMS_ASSIGN_OR_RETURN(uint32_t n_order, r->GetU32());
  if (n_order > kMaxListCount) return ListError("order-by", n_order);
  for (uint32_t i = 0; i < n_order; ++i) {
    OrderItem o;
    DVMS_ASSIGN_OR_RETURN(o.expr, DecodeExpr(r));
    DVMS_ASSIGN_OR_RETURN(o.descending, r->GetBool());
    c.order_by.push_back(std::move(o));
  }
  DVMS_ASSIGN_OR_RETURN(bool has_limit, r->GetBool());
  if (has_limit) {
    DVMS_ASSIGN_OR_RETURN(uint64_t limit, r->GetU64());
    c.limit = static_cast<size_t>(limit);
  }
  return c;
}

}  // namespace

void EncodeSelectStmt(const SelectStmt& s, BinaryWriter* w) {
  w->PutU32(static_cast<uint32_t>(s.cores.size()));
  for (const SelectCore& c : s.cores) EncodeSelectCore(c, w);
  w->PutU32(static_cast<uint32_t>(s.ops.size()));
  for (SetOp op : s.ops) w->PutU8(static_cast<uint8_t>(op));
}

Result<SelectStmt> DecodeSelectStmt(BinaryReader* r) {
  SelectStmt s;
  DVMS_ASSIGN_OR_RETURN(uint32_t n_cores, r->GetU32());
  if (n_cores > kMaxListCount) return ListError("select core", n_cores);
  for (uint32_t i = 0; i < n_cores; ++i) {
    DVMS_ASSIGN_OR_RETURN(SelectCore c, DecodeSelectCore(r));
    s.cores.push_back(std::move(c));
  }
  DVMS_ASSIGN_OR_RETURN(uint32_t n_ops, r->GetU32());
  if (n_ops > kMaxListCount) return ListError("set op", n_ops);
  for (uint32_t i = 0; i < n_ops; ++i) {
    DVMS_ASSIGN_OR_RETURN(uint8_t op, r->GetU8());
    if (op > static_cast<uint8_t>(SetOp::kMinus)) {
      return Status::ExecutionError("log-record decode: unknown set op " +
                                    std::to_string(op));
    }
    s.ops.push_back(static_cast<SetOp>(op));
  }
  return s;
}

// ---- EVENT ----

void EncodeEventStmt(const EventStmt& s, BinaryWriter* w) {
  w->PutU32(static_cast<uint32_t>(s.elems.size()));
  for (const EventElem& e : s.elems) {
    w->PutString(e.event_type);
    w->PutString(e.alias);
    w->PutBool(e.kleene);
  }
  w->PutU32(static_cast<uint32_t>(s.predicates.size()));
  for (const EventPredicate& p : s.predicates) {
    w->PutU8(static_cast<uint8_t>(p.kind));
    w->PutString(p.var);
    w->PutString(p.over_alias);
    EncodeExpr(p.expr, w);
  }
  w->PutU32(static_cast<uint32_t>(s.returns.size()));
  for (const ReturnTuple& t : s.returns) {
    w->PutU32(static_cast<uint32_t>(t.fields.size()));
    for (const ReturnField& f : t.fields) {
      EncodeExpr(f.expr, w);
      w->PutString(f.alias);
    }
  }
}

Result<EventStmt> DecodeEventStmt(BinaryReader* r) {
  EventStmt s;
  DVMS_ASSIGN_OR_RETURN(uint32_t n_elems, r->GetU32());
  if (n_elems > kMaxListCount) return ListError("event elem", n_elems);
  for (uint32_t i = 0; i < n_elems; ++i) {
    EventElem e;
    DVMS_ASSIGN_OR_RETURN(e.event_type, r->GetString());
    DVMS_ASSIGN_OR_RETURN(e.alias, r->GetString());
    DVMS_ASSIGN_OR_RETURN(e.kleene, r->GetBool());
    s.elems.push_back(std::move(e));
  }
  DVMS_ASSIGN_OR_RETURN(uint32_t n_preds, r->GetU32());
  if (n_preds > kMaxListCount) return ListError("event predicate", n_preds);
  for (uint32_t i = 0; i < n_preds; ++i) {
    EventPredicate p;
    DVMS_ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
    if (kind > static_cast<uint8_t>(EventPredicate::Kind::kExists)) {
      return Status::ExecutionError(
          "log-record decode: unknown event-predicate kind " +
          std::to_string(kind));
    }
    p.kind = static_cast<EventPredicate::Kind>(kind);
    DVMS_ASSIGN_OR_RETURN(p.var, r->GetString());
    DVMS_ASSIGN_OR_RETURN(p.over_alias, r->GetString());
    DVMS_ASSIGN_OR_RETURN(p.expr, DecodeExpr(r));
    s.predicates.push_back(std::move(p));
  }
  DVMS_ASSIGN_OR_RETURN(uint32_t n_returns, r->GetU32());
  if (n_returns > kMaxListCount) return ListError("return tuple", n_returns);
  for (uint32_t i = 0; i < n_returns; ++i) {
    ReturnTuple t;
    DVMS_ASSIGN_OR_RETURN(uint32_t n_fields, r->GetU32());
    if (n_fields > kMaxListCount) return ListError("return field", n_fields);
    for (uint32_t j = 0; j < n_fields; ++j) {
      ReturnField f;
      DVMS_ASSIGN_OR_RETURN(f.expr, DecodeExpr(r));
      DVMS_ASSIGN_OR_RETURN(f.alias, r->GetString());
      t.fields.push_back(std::move(f));
    }
    s.returns.push_back(std::move(t));
  }
  return s;
}

// ---- TRACE ----

void EncodeTraceStmt(const TraceStmt& s, BinaryWriter* w) {
  w->PutBool(s.backward);
  w->PutU32(static_cast<uint32_t>(s.from.size()));
  for (const TableRef& t : s.from) EncodeTableRef(t, w);
  EncodeExpr(s.where, w);
  w->PutString(s.target_relation);
}

Result<TraceStmt> DecodeTraceStmt(BinaryReader* r) {
  TraceStmt s;
  DVMS_ASSIGN_OR_RETURN(s.backward, r->GetBool());
  DVMS_ASSIGN_OR_RETURN(uint32_t n_from, r->GetU32());
  if (n_from > kMaxListCount) return ListError("trace table ref", n_from);
  for (uint32_t i = 0; i < n_from; ++i) {
    DVMS_ASSIGN_OR_RETURN(TableRef t, DecodeTableRef(r));
    s.from.push_back(std::move(t));
  }
  DVMS_ASSIGN_OR_RETURN(s.where, DecodeExpr(r));
  DVMS_ASSIGN_OR_RETURN(s.target_relation, r->GetString());
  return s;
}

// ---- Statement ----

void EncodeStatement(const Statement& s, BinaryWriter* w) {
  w->PutU8(static_cast<uint8_t>(s.kind));
  w->PutString(s.target_name);
  switch (s.kind) {
    case Statement::Kind::kViewDef:
      w->PutBool(s.render);
      w->PutString(s.table_udf);
      EncodeSelectStmt(s.select, w);
      break;
    case Statement::Kind::kEventDef:
      EncodeEventStmt(s.event, w);
      break;
    case Statement::Kind::kTraceDef:
      EncodeTraceStmt(s.trace, w);
      break;
    case Statement::Kind::kCreateTable:
      EncodeSchema(s.create_schema, w);
      break;
    case Statement::Kind::kInsert:
      w->PutU32(static_cast<uint32_t>(s.insert_rows.size()));
      for (const Row& row : s.insert_rows) EncodeRow(row, w);
      break;
    case Statement::Kind::kDelete:
      EncodeExpr(s.delete_where, w);
      break;
    case Statement::Kind::kExplain:
      w->PutBool(s.explain_analyze);
      EncodeSelectStmt(s.select, w);
      break;
  }
}

Result<Statement> DecodeStatement(BinaryReader* r) {
  Statement s;
  DVMS_ASSIGN_OR_RETURN(uint8_t kind, r->GetU8());
  if (kind > static_cast<uint8_t>(Statement::Kind::kExplain)) {
    return Status::ExecutionError("log-record decode: unknown statement kind " +
                                  std::to_string(kind));
  }
  s.kind = static_cast<Statement::Kind>(kind);
  DVMS_ASSIGN_OR_RETURN(s.target_name, r->GetString());
  switch (s.kind) {
    case Statement::Kind::kViewDef: {
      DVMS_ASSIGN_OR_RETURN(s.render, r->GetBool());
      DVMS_ASSIGN_OR_RETURN(s.table_udf, r->GetString());
      DVMS_ASSIGN_OR_RETURN(s.select, DecodeSelectStmt(r));
      break;
    }
    case Statement::Kind::kEventDef: {
      DVMS_ASSIGN_OR_RETURN(s.event, DecodeEventStmt(r));
      break;
    }
    case Statement::Kind::kTraceDef: {
      DVMS_ASSIGN_OR_RETURN(s.trace, DecodeTraceStmt(r));
      break;
    }
    case Statement::Kind::kCreateTable: {
      DVMS_ASSIGN_OR_RETURN(s.create_schema, DecodeSchema(r));
      break;
    }
    case Statement::Kind::kInsert: {
      DVMS_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
      if (n > kMaxListCount) return ListError("insert row", n);
      for (uint32_t i = 0; i < n; ++i) {
        DVMS_ASSIGN_OR_RETURN(Row row, DecodeRow(r));
        s.insert_rows.push_back(std::move(row));
      }
      break;
    }
    case Statement::Kind::kDelete: {
      DVMS_ASSIGN_OR_RETURN(s.delete_where, DecodeExpr(r));
      break;
    }
    case Statement::Kind::kExplain: {
      DVMS_ASSIGN_OR_RETURN(s.explain_analyze, r->GetBool());
      DVMS_ASSIGN_OR_RETURN(s.select, DecodeSelectStmt(r));
      break;
    }
  }
  return s;
}

// ---- WalRecord ----

std::string EncodeWalRecord(const WalRecord& record) {
  BinaryWriter w;
  w.PutU8(static_cast<uint8_t>(record.op));
  switch (record.op) {
    case WalRecord::Op::kCreateTable:
      w.PutString(record.name);
      EncodeSchema(record.schema, &w);
      break;
    case WalRecord::Op::kInsert:
      w.PutString(record.name);
      w.PutU32(static_cast<uint32_t>(record.rows.size()));
      for (const Row& row : record.rows) EncodeRow(row, &w);
      break;
    case WalRecord::Op::kDelete:
      w.PutString(record.name);
      EncodeExpr(record.predicate, &w);
      break;
    case WalRecord::Op::kCreateScale:
      w.PutString(record.name);
      w.PutDouble(record.scale_domain_min);
      w.PutDouble(record.scale_domain_max);
      w.PutDouble(record.scale_range_min);
      w.PutDouble(record.scale_range_max);
      break;
    case WalRecord::Op::kLoadProgram:
      w.PutString(record.text);
      break;
    case WalRecord::Op::kStatement:
      EncodeStatement(record.statement, &w);
      break;
    case WalRecord::Op::kEvent:
      EncodeInputEvent(record.event, &w);
      break;
    case WalRecord::Op::kUndo:
    case WalRecord::Op::kRedo:
      break;
    case WalRecord::Op::kCompose:
      w.PutString(record.compose_first);
      w.PutString(record.compose_second);
      w.PutString(record.name);
      break;
  }
  return w.Take();
}

Result<WalRecord> DecodeWalRecord(const std::string& payload) {
  BinaryReader r(payload);
  WalRecord record;
  DVMS_ASSIGN_OR_RETURN(uint8_t op, r.GetU8());
  if (op < static_cast<uint8_t>(WalRecord::Op::kCreateTable) ||
      op > static_cast<uint8_t>(WalRecord::Op::kCompose)) {
    return Status::ExecutionError("log-record decode: unknown op " +
                                  std::to_string(op));
  }
  record.op = static_cast<WalRecord::Op>(op);
  switch (record.op) {
    case WalRecord::Op::kCreateTable: {
      DVMS_ASSIGN_OR_RETURN(record.name, r.GetString());
      DVMS_ASSIGN_OR_RETURN(record.schema, DecodeSchema(&r));
      break;
    }
    case WalRecord::Op::kInsert: {
      DVMS_ASSIGN_OR_RETURN(record.name, r.GetString());
      DVMS_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
      if (n > kMaxListCount) return ListError("insert row", n);
      for (uint32_t i = 0; i < n; ++i) {
        DVMS_ASSIGN_OR_RETURN(Row row, DecodeRow(&r));
        record.rows.push_back(std::move(row));
      }
      break;
    }
    case WalRecord::Op::kDelete: {
      DVMS_ASSIGN_OR_RETURN(record.name, r.GetString());
      DVMS_ASSIGN_OR_RETURN(record.predicate, DecodeExpr(&r));
      break;
    }
    case WalRecord::Op::kCreateScale: {
      DVMS_ASSIGN_OR_RETURN(record.name, r.GetString());
      DVMS_ASSIGN_OR_RETURN(record.scale_domain_min, r.GetDouble());
      DVMS_ASSIGN_OR_RETURN(record.scale_domain_max, r.GetDouble());
      DVMS_ASSIGN_OR_RETURN(record.scale_range_min, r.GetDouble());
      DVMS_ASSIGN_OR_RETURN(record.scale_range_max, r.GetDouble());
      break;
    }
    case WalRecord::Op::kLoadProgram: {
      DVMS_ASSIGN_OR_RETURN(record.text, r.GetString());
      break;
    }
    case WalRecord::Op::kStatement: {
      DVMS_ASSIGN_OR_RETURN(record.statement, DecodeStatement(&r));
      break;
    }
    case WalRecord::Op::kEvent: {
      DVMS_ASSIGN_OR_RETURN(record.event, DecodeInputEvent(&r));
      break;
    }
    case WalRecord::Op::kUndo:
    case WalRecord::Op::kRedo:
      break;
    case WalRecord::Op::kCompose: {
      DVMS_ASSIGN_OR_RETURN(record.compose_first, r.GetString());
      DVMS_ASSIGN_OR_RETURN(record.compose_second, r.GetString());
      DVMS_ASSIGN_OR_RETURN(record.name, r.GetString());
      break;
    }
  }
  if (!r.AtEnd()) {
    return Status::ExecutionError("log-record decode: " +
                                  std::to_string(r.remaining()) +
                                  " trailing bytes after record");
  }
  return record;
}

}  // namespace dvms
