#include "durability/codec.h"

#include <cstdlib>
#include <limits>
#include <unordered_map>

#include "storage/dict.h"

namespace dvms {

namespace {

/// Caps any decoded element count so a corrupted length field cannot drive
/// a multi-gigabyte allocation before the per-element reads fail.
constexpr uint64_t kMaxDecodedCount = 1ull << 28;

/// First u32 of a columnar-format table. The legacy row-wise format leads
/// with its schema column count, which DecodeSchema rejects above
/// kMaxDecodedCount (1<<28) — this value sits far above that, so the two
/// formats are distinguishable from the first field.
constexpr uint32_t kColumnarMagic = 0xC0117A61u;
constexpr uint8_t kColumnarVersion = 1;

Status CountError(uint64_t n, const char* what) {
  return Status::ExecutionError("durability decode: implausible " +
                                std::string(what) + " count " +
                                std::to_string(n));
}

}  // namespace

void BinaryWriter::PutU32(uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out_.append(b, 4);
}

void BinaryWriter::PutU64(uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out_.append(b, 8);
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BinaryWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_.append(s);
}

void BinaryWriter::PutBytes(const void* data, size_t n) {
  out_.append(static_cast<const char*>(data), n);
}

Status BinaryReader::Need(size_t n) const {
  if (n_ - pos_ < n) {
    return Status::ExecutionError(
        "durability decode: truncated payload (need " + std::to_string(n) +
        " bytes, have " + std::to_string(n_ - pos_) + ")");
  }
  return Status::OK();
}

Result<uint8_t> BinaryReader::GetU8() {
  DVMS_RETURN_IF_ERROR(Need(1));
  return p_[pos_++];
}

Result<uint32_t> BinaryReader::GetU32() {
  DVMS_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> BinaryReader::GetU64() {
  DVMS_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<int64_t> BinaryReader::GetI64() {
  DVMS_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> BinaryReader::GetDouble() {
  DVMS_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<bool> BinaryReader::GetBool() {
  DVMS_ASSIGN_OR_RETURN(uint8_t v, GetU8());
  return v != 0;
}

Result<std::string> BinaryReader::GetString() {
  DVMS_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  DVMS_RETURN_IF_ERROR(Need(len));
  std::string s(reinterpret_cast<const char*>(p_ + pos_), len);
  pos_ += len;
  return s;
}

// ---- Value / Row / Schema / Table ----

void EncodeValue(const Value& v, BinaryWriter* w) {
  w->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      w->PutBool(v.bool_value());
      break;
    case ValueType::kInt64:
      w->PutI64(v.int_value());
      break;
    case ValueType::kDouble:
      w->PutDouble(v.double_value());
      break;
    case ValueType::kString:
      w->PutString(v.string_value());
      break;
  }
}

Result<Value> DecodeValue(BinaryReader* r) {
  DVMS_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      DVMS_ASSIGN_OR_RETURN(bool b, r->GetBool());
      return Value::Bool(b);
    }
    case ValueType::kInt64: {
      DVMS_ASSIGN_OR_RETURN(int64_t i, r->GetI64());
      return Value::Int(i);
    }
    case ValueType::kDouble: {
      DVMS_ASSIGN_OR_RETURN(double d, r->GetDouble());
      return Value::Double(d);
    }
    case ValueType::kString: {
      DVMS_ASSIGN_OR_RETURN(std::string s, r->GetString());
      return Value::String(std::move(s));
    }
  }
  return Status::ExecutionError("durability decode: unknown value tag " +
                                std::to_string(tag));
}

void EncodeRow(const Row& row, BinaryWriter* w) {
  w->PutU32(static_cast<uint32_t>(row.size()));
  for (const Value& v : row) EncodeValue(v, w);
}

Result<Row> DecodeRow(BinaryReader* r) {
  DVMS_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  if (n > kMaxDecodedCount) return CountError(n, "row value");
  Row row;
  row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    DVMS_ASSIGN_OR_RETURN(Value v, DecodeValue(r));
    row.push_back(std::move(v));
  }
  return row;
}

void EncodeSchema(const Schema& schema, BinaryWriter* w) {
  w->PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (const Column& col : schema.columns()) {
    w->PutString(col.name);
    w->PutU8(static_cast<uint8_t>(col.type));
  }
}

namespace {

Result<Schema> DecodeSchemaBody(uint32_t n, BinaryReader* r) {
  if (n > kMaxDecodedCount) return CountError(n, "column");
  std::vector<Column> columns;
  columns.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Column col;
    DVMS_ASSIGN_OR_RETURN(col.name, r->GetString());
    DVMS_ASSIGN_OR_RETURN(uint8_t type, r->GetU8());
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::ExecutionError("durability decode: unknown column type " +
                                    std::to_string(type));
    }
    col.type = static_cast<ValueType>(type);
    columns.push_back(std::move(col));
  }
  return Schema(std::move(columns));
}

}  // namespace

Result<Schema> DecodeSchema(BinaryReader* r) {
  DVMS_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  return DecodeSchemaBody(n, r);
}

void EncodeTableLegacy(const Table& table, BinaryWriter* w) {
  EncodeSchema(table.schema(), w);
  w->PutU64(table.num_rows());
  for (const Row& row : table.rows()) EncodeRow(row, w);
}

void EncodeTable(const Table& table, BinaryWriter* w) {
  const char* env = std::getenv("DVMS_SNAPSHOT_LEGACY");
  const bool force_legacy = env != nullptr && env[0] != '\0' && env[0] != '0';
  if (force_legacy || table.IsRagged()) {
    // Ragged tables carry per-row arity the columnar layout flattens away;
    // the row-wise format preserves them exactly.
    EncodeTableLegacy(table, w);
    return;
  }
  w->PutU32(kColumnarMagic);
  w->PutU8(kColumnarVersion);
  EncodeSchema(table.schema(), w);
  const size_t n = table.num_rows();
  w->PutU64(n);
  w->PutU32(static_cast<uint32_t>(table.num_columns()));
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const ColumnVec& col = table.col(c);
    w->PutU8(static_cast<uint8_t>(col.enc()));
    w->PutU8(col.all_valid() ? 0 : 1);
    if (!col.all_valid()) {
      for (uint64_t word : col.validity()) w->PutU64(word);
    }
    switch (col.enc()) {
      case ColumnVec::Enc::kEmpty:
        break;  // every cell is NULL; validity said so
      case ColumnVec::Enc::kInt64:
        for (int64_t v : col.ints()) w->PutI64(v);
        break;
      case ColumnVec::Enc::kDouble:
        for (double v : col.doubles()) w->PutDouble(v);
        break;
      case ColumnVec::Enc::kBool:
        for (uint8_t v : col.bools()) w->PutU8(v);
        break;
      case ColumnVec::Enc::kDict: {
        // Remap global dictionary ids to first-occurrence order so the
        // encoded bytes don't depend on what else this process interned.
        std::unordered_map<uint32_t, uint32_t> remap;
        std::vector<uint32_t> order;   // global ids, first occurrence
        std::vector<uint32_t> locals(n, 0);
        for (size_t i = 0; i < n; ++i) {
          if (col.IsNull(i)) continue;
          uint32_t gid = col.dict_ids()[i];
          auto it = remap.find(gid);
          if (it == remap.end()) {
            it = remap.emplace(gid, static_cast<uint32_t>(order.size())).first;
            order.push_back(gid);
          }
          locals[i] = it->second;
        }
        w->PutU32(static_cast<uint32_t>(order.size()));
        for (uint32_t gid : order) w->PutString(strdict::Lookup(gid));
        for (uint32_t local : locals) w->PutU32(local);
        break;
      }
      case ColumnVec::Enc::kVariant:
        for (size_t i = 0; i < n; ++i) {
          if (!col.IsNull(i)) EncodeValue(col.variants()[i], w);
        }
        break;
    }
  }
}

namespace {

Result<Table> DecodeColumnarTable(BinaryReader* r) {
  DVMS_ASSIGN_OR_RETURN(uint8_t version, r->GetU8());
  if (version != kColumnarVersion) {
    return Status::ExecutionError(
        "durability decode: unknown columnar table version " +
        std::to_string(version));
  }
  DVMS_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(r));
  DVMS_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
  if (n > kMaxDecodedCount) return CountError(n, "row");
  DVMS_ASSIGN_OR_RETURN(uint32_t ncols, r->GetU32());
  if (ncols > kMaxDecodedCount) return CountError(ncols, "data column");
  std::vector<ColumnVec> cols(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    DVMS_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
    if (tag > static_cast<uint8_t>(ColumnVec::Enc::kVariant)) {
      return Status::ExecutionError(
          "durability decode: unknown column encoding " + std::to_string(tag));
    }
    const ColumnVec::Enc enc = static_cast<ColumnVec::Enc>(tag);
    DVMS_ASSIGN_OR_RETURN(uint8_t has_nulls, r->GetU8());
    std::vector<uint64_t> validity;
    if (has_nulls != 0) {
      validity.resize((n + 63) / 64);
      for (uint64_t& word : validity) {
        DVMS_ASSIGN_OR_RETURN(word, r->GetU64());
      }
    }
    auto is_null = [&](uint64_t i) {
      return has_nulls != 0 && (validity[i >> 6] & (1ull << (i & 63))) == 0;
    };
    ColumnVec& col = cols[c];
    switch (enc) {
      case ColumnVec::Enc::kEmpty:
        col.AppendNulls(n);
        break;
      case ColumnVec::Enc::kInt64:
        for (uint64_t i = 0; i < n; ++i) {
          DVMS_ASSIGN_OR_RETURN(int64_t v, r->GetI64());
          if (is_null(i)) {
            col.AppendNull();
          } else {
            col.AppendInt64(v);
          }
        }
        break;
      case ColumnVec::Enc::kDouble:
        for (uint64_t i = 0; i < n; ++i) {
          DVMS_ASSIGN_OR_RETURN(double v, r->GetDouble());
          if (is_null(i)) {
            col.AppendNull();
          } else {
            col.AppendDouble(v);
          }
        }
        break;
      case ColumnVec::Enc::kBool:
        for (uint64_t i = 0; i < n; ++i) {
          DVMS_ASSIGN_OR_RETURN(uint8_t v, r->GetU8());
          if (is_null(i)) {
            col.AppendNull();
          } else {
            col.AppendBool(v != 0);
          }
        }
        break;
      case ColumnVec::Enc::kDict: {
        DVMS_ASSIGN_OR_RETURN(uint32_t dict_size, r->GetU32());
        if (dict_size > kMaxDecodedCount) {
          return CountError(dict_size, "dictionary entry");
        }
        // Re-intern into this process's global dictionary.
        std::vector<uint32_t> global(dict_size);
        for (uint32_t d = 0; d < dict_size; ++d) {
          DVMS_ASSIGN_OR_RETURN(std::string s, r->GetString());
          global[d] = strdict::Intern(s);
        }
        for (uint64_t i = 0; i < n; ++i) {
          DVMS_ASSIGN_OR_RETURN(uint32_t local, r->GetU32());
          if (is_null(i)) {
            col.AppendNull();
          } else if (local >= dict_size) {
            return Status::ExecutionError(
                "durability decode: dictionary id " + std::to_string(local) +
                " out of range");
          } else {
            col.AppendDictId(global[local]);
          }
        }
        break;
      }
      case ColumnVec::Enc::kVariant:
        for (uint64_t i = 0; i < n; ++i) {
          if (is_null(i)) {
            col.AppendNull();
          } else {
            DVMS_ASSIGN_OR_RETURN(Value v, DecodeValue(r));
            col.Append(v);
          }
        }
        break;
    }
  }
  Table table(std::move(schema));
  DVMS_RETURN_IF_ERROR(table.InstallColumns(std::move(cols), n));
  return table;
}

}  // namespace

Result<Table> DecodeTable(BinaryReader* r) {
  DVMS_ASSIGN_OR_RETURN(uint32_t first, r->GetU32());
  if (first == kColumnarMagic) return DecodeColumnarTable(r);
  // Legacy row-wise format: the first u32 was the schema column count.
  DVMS_ASSIGN_OR_RETURN(Schema schema, DecodeSchemaBody(first, r));
  DVMS_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
  if (n > kMaxDecodedCount) return CountError(n, "row");
  std::vector<Row> rows;
  rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    DVMS_ASSIGN_OR_RETURN(Row row, DecodeRow(r));
    rows.push_back(std::move(row));
  }
  return Table(std::move(schema), std::move(rows));
}

}  // namespace dvms
