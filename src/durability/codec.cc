#include "durability/codec.h"

#include <limits>

namespace dvms {

namespace {

/// Caps any decoded element count so a corrupted length field cannot drive
/// a multi-gigabyte allocation before the per-element reads fail.
constexpr uint64_t kMaxDecodedCount = 1ull << 28;

Status CountError(uint64_t n, const char* what) {
  return Status::ExecutionError("durability decode: implausible " +
                                std::string(what) + " count " +
                                std::to_string(n));
}

}  // namespace

void BinaryWriter::PutU32(uint32_t v) {
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out_.append(b, 4);
}

void BinaryWriter::PutU64(uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  out_.append(b, 8);
}

void BinaryWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void BinaryWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  out_.append(s);
}

void BinaryWriter::PutBytes(const void* data, size_t n) {
  out_.append(static_cast<const char*>(data), n);
}

Status BinaryReader::Need(size_t n) const {
  if (n_ - pos_ < n) {
    return Status::ExecutionError(
        "durability decode: truncated payload (need " + std::to_string(n) +
        " bytes, have " + std::to_string(n_ - pos_) + ")");
  }
  return Status::OK();
}

Result<uint8_t> BinaryReader::GetU8() {
  DVMS_RETURN_IF_ERROR(Need(1));
  return p_[pos_++];
}

Result<uint32_t> BinaryReader::GetU32() {
  DVMS_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> BinaryReader::GetU64() {
  DVMS_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<int64_t> BinaryReader::GetI64() {
  DVMS_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<double> BinaryReader::GetDouble() {
  DVMS_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<bool> BinaryReader::GetBool() {
  DVMS_ASSIGN_OR_RETURN(uint8_t v, GetU8());
  return v != 0;
}

Result<std::string> BinaryReader::GetString() {
  DVMS_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  DVMS_RETURN_IF_ERROR(Need(len));
  std::string s(reinterpret_cast<const char*>(p_ + pos_), len);
  pos_ += len;
  return s;
}

// ---- Value / Row / Schema / Table ----

void EncodeValue(const Value& v, BinaryWriter* w) {
  w->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kBool:
      w->PutBool(v.bool_value());
      break;
    case ValueType::kInt64:
      w->PutI64(v.int_value());
      break;
    case ValueType::kDouble:
      w->PutDouble(v.double_value());
      break;
    case ValueType::kString:
      w->PutString(v.string_value());
      break;
  }
}

Result<Value> DecodeValue(BinaryReader* r) {
  DVMS_ASSIGN_OR_RETURN(uint8_t tag, r->GetU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool: {
      DVMS_ASSIGN_OR_RETURN(bool b, r->GetBool());
      return Value::Bool(b);
    }
    case ValueType::kInt64: {
      DVMS_ASSIGN_OR_RETURN(int64_t i, r->GetI64());
      return Value::Int(i);
    }
    case ValueType::kDouble: {
      DVMS_ASSIGN_OR_RETURN(double d, r->GetDouble());
      return Value::Double(d);
    }
    case ValueType::kString: {
      DVMS_ASSIGN_OR_RETURN(std::string s, r->GetString());
      return Value::String(std::move(s));
    }
  }
  return Status::ExecutionError("durability decode: unknown value tag " +
                                std::to_string(tag));
}

void EncodeRow(const Row& row, BinaryWriter* w) {
  w->PutU32(static_cast<uint32_t>(row.size()));
  for (const Value& v : row) EncodeValue(v, w);
}

Result<Row> DecodeRow(BinaryReader* r) {
  DVMS_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  if (n > kMaxDecodedCount) return CountError(n, "row value");
  Row row;
  row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    DVMS_ASSIGN_OR_RETURN(Value v, DecodeValue(r));
    row.push_back(std::move(v));
  }
  return row;
}

void EncodeSchema(const Schema& schema, BinaryWriter* w) {
  w->PutU32(static_cast<uint32_t>(schema.num_columns()));
  for (const Column& col : schema.columns()) {
    w->PutString(col.name);
    w->PutU8(static_cast<uint8_t>(col.type));
  }
}

Result<Schema> DecodeSchema(BinaryReader* r) {
  DVMS_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  if (n > kMaxDecodedCount) return CountError(n, "column");
  std::vector<Column> columns;
  columns.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Column col;
    DVMS_ASSIGN_OR_RETURN(col.name, r->GetString());
    DVMS_ASSIGN_OR_RETURN(uint8_t type, r->GetU8());
    if (type > static_cast<uint8_t>(ValueType::kString)) {
      return Status::ExecutionError("durability decode: unknown column type " +
                                    std::to_string(type));
    }
    col.type = static_cast<ValueType>(type);
    columns.push_back(std::move(col));
  }
  return Schema(std::move(columns));
}

void EncodeTable(const Table& table, BinaryWriter* w) {
  EncodeSchema(table.schema(), w);
  w->PutU64(table.num_rows());
  for (const Row& row : table.rows()) EncodeRow(row, w);
}

Result<Table> DecodeTable(BinaryReader* r) {
  DVMS_ASSIGN_OR_RETURN(Schema schema, DecodeSchema(r));
  DVMS_ASSIGN_OR_RETURN(uint64_t n, r->GetU64());
  if (n > kMaxDecodedCount) return CountError(n, "row");
  std::vector<Row> rows;
  rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    DVMS_ASSIGN_OR_RETURN(Row row, DecodeRow(r));
    rows.push_back(std::move(row));
  }
  return Table(std::move(schema), std::move(rows));
}

}  // namespace dvms
