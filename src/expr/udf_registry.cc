#include "expr/udf_registry.h"

#include "common/schema.h"

namespace dvms {

Status UdfRegistry::RegisterScalar(ScalarUdf udf) {
  std::string key = IdentKey(udf.name);
  if (scalar_.count(key) > 0) {
    return Status::AlreadyExists("scalar UDF '" + udf.name +
                                 "' already registered");
  }
  scalar_.emplace(std::move(key), std::move(udf));
  return Status::OK();
}

Status UdfRegistry::RegisterTable(TableUdf udf) {
  std::string key = IdentKey(udf.name);
  if (table_.count(key) > 0) {
    return Status::AlreadyExists("table UDF '" + udf.name +
                                 "' already registered");
  }
  table_.emplace(std::move(key), std::move(udf));
  return Status::OK();
}

Result<const ScalarUdf*> UdfRegistry::FindScalar(const std::string& name) const {
  auto it = scalar_.find(IdentKey(name));
  if (it == scalar_.end()) {
    return Status::NotFound("no scalar UDF named '" + name + "'");
  }
  return &it->second;
}

Result<const TableUdf*> UdfRegistry::FindTable(const std::string& name) const {
  auto it = table_.find(IdentKey(name));
  if (it == table_.end()) {
    return Status::NotFound("no table UDF named '" + name + "'");
  }
  return &it->second;
}

bool UdfRegistry::HasScalar(const std::string& name) const {
  return scalar_.count(IdentKey(name)) > 0;
}

bool UdfRegistry::HasTable(const std::string& name) const {
  return table_.count(IdentKey(name)) > 0;
}

}  // namespace dvms
