#include "expr/eval.h"

#include <cmath>

#include "common/schema.h"

namespace dvms {

namespace {

bool BothInts(const Value& a, const Value& b) {
  return a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64;
}

}  // namespace

Result<Value> ApplyBinary(BinaryOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod: {
      if (lhs.is_null() || rhs.is_null()) return Value::Null();
      // String + string concatenates.
      if (op == BinaryOp::kAdd && lhs.type() == ValueType::kString &&
          rhs.type() == ValueType::kString) {
        return Value::String(lhs.string_value() + rhs.string_value());
      }
      if (BothInts(lhs, rhs)) {
        int64_t a = lhs.int_value(), b = rhs.int_value();
        switch (op) {
          case BinaryOp::kAdd:
            return Value::Int(a + b);
          case BinaryOp::kSub:
            return Value::Int(a - b);
          case BinaryOp::kMul:
            return Value::Int(a * b);
          case BinaryOp::kDiv:
            if (b == 0) return Status::ExecutionError("integer division by zero");
            return Value::Int(a / b);
          default:
            if (b == 0) return Status::ExecutionError("integer modulo by zero");
            return Value::Int(a % b);
        }
      }
      DVMS_ASSIGN_OR_RETURN(double a, lhs.AsDouble());
      DVMS_ASSIGN_OR_RETURN(double b, rhs.AsDouble());
      switch (op) {
        case BinaryOp::kAdd:
          return Value::Double(a + b);
        case BinaryOp::kSub:
          return Value::Double(a - b);
        case BinaryOp::kMul:
          return Value::Double(a * b);
        case BinaryOp::kDiv:
          if (b == 0.0) return Status::ExecutionError("division by zero");
          return Value::Double(a / b);
        default:
          if (b == 0.0) return Status::ExecutionError("modulo by zero");
          return Value::Double(std::fmod(a, b));
      }
    }
    case BinaryOp::kEq:
      if (lhs.is_null() || rhs.is_null()) return Value::Bool(false);
      return Value::Bool(lhs.Equals(rhs));
    case BinaryOp::kNe:
      if (lhs.is_null() || rhs.is_null()) return Value::Bool(false);
      return Value::Bool(!lhs.Equals(rhs));
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (lhs.is_null() || rhs.is_null()) return Value::Bool(false);
      int c = lhs.Compare(rhs);
      switch (op) {
        case BinaryOp::kLt:
          return Value::Bool(c < 0);
        case BinaryOp::kLe:
          return Value::Bool(c <= 0);
        case BinaryOp::kGt:
          return Value::Bool(c > 0);
        default:
          return Value::Bool(c >= 0);
      }
    }
    case BinaryOp::kAnd:
      return Value::Bool(lhs.IsTruthy() && rhs.IsTruthy());
    case BinaryOp::kOr:
      return Value::Bool(lhs.IsTruthy() || rhs.IsTruthy());
  }
  return Status::Internal("unknown binary operator");
}

Result<Value> EvalExpr(const Expr& expr, const Row& row,
                       const EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumnRef: {
      if (expr.resolved_index < 0) {
        return Status::BindError("unresolved column reference '" +
                                 expr.ToString() + "'");
      }
      size_t idx = static_cast<size_t>(expr.resolved_index);
      if (idx >= row.size()) {
        return Status::Internal("column index " + std::to_string(idx) +
                                " out of range for row of width " +
                                std::to_string(row.size()));
      }
      return row[idx];
    }
    case ExprKind::kUnary: {
      DVMS_ASSIGN_OR_RETURN(Value child, EvalExpr(*expr.children[0], row, ctx));
      if (expr.unary_op == UnaryOp::kNot) {
        return Value::Bool(!child.IsTruthy());
      }
      if (child.is_null()) return Value::Null();
      if (child.type() == ValueType::kInt64) {
        return Value::Int(-child.int_value());
      }
      DVMS_ASSIGN_OR_RETURN(double d, child.AsDouble());
      return Value::Double(-d);
    }
    case ExprKind::kBinary: {
      // Short-circuit AND/OR on the truthiness of the left side.
      if (expr.binary_op == BinaryOp::kAnd || expr.binary_op == BinaryOp::kOr) {
        DVMS_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.children[0], row, ctx));
        bool left = lhs.IsTruthy();
        if (expr.binary_op == BinaryOp::kAnd && !left) return Value::Bool(false);
        if (expr.binary_op == BinaryOp::kOr && left) return Value::Bool(true);
        DVMS_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.children[1], row, ctx));
        return Value::Bool(rhs.IsTruthy());
      }
      DVMS_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.children[0], row, ctx));
      DVMS_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.children[1], row, ctx));
      return ApplyBinary(expr.binary_op, lhs, rhs);
    }
    case ExprKind::kFunctionCall: {
      if (ctx.udfs == nullptr) {
        return Status::BindError("no UDF registry available for call to '" +
                                 expr.function_name + "'");
      }
      DVMS_ASSIGN_OR_RETURN(const ScalarUdf* udf,
                            ctx.udfs->FindScalar(expr.function_name));
      if (udf->arity >= 0 &&
          static_cast<size_t>(udf->arity) != expr.children.size()) {
        return Status::InvalidArgument(
            "UDF '" + expr.function_name + "' expects " +
            std::to_string(udf->arity) + " args, got " +
            std::to_string(expr.children.size()));
      }
      std::vector<Value> args;
      args.reserve(expr.children.size());
      for (const auto& c : expr.children) {
        DVMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*c, row, ctx));
        args.push_back(std::move(v));
      }
      return udf->fn(args);
    }
    case ExprKind::kAggregateCall:
      return Status::BindError(
          "aggregate '" + expr.ToString() +
          "' cannot be evaluated as a scalar expression (missing GROUP BY "
          "lowering?)");
    case ExprKind::kInRelation: {
      if (ctx.in_sets == nullptr) {
        return Status::Internal("IN-relation set for '" + expr.in_relation +
                                "' was not materialized");
      }
      auto it = ctx.in_sets->find(IdentKey(expr.in_relation));
      if (it == ctx.in_sets->end()) {
        return Status::Internal("IN-relation set for '" + expr.in_relation +
                                "' was not materialized");
      }
      DVMS_ASSIGN_OR_RETURN(Value needle, EvalExpr(*expr.children[0], row, ctx));
      if (needle.is_null()) return Value::Bool(false);
      bool found = it->second->count(needle) > 0;
      return Value::Bool(expr.negated ? !found : found);
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<bool> EvalPredicate(const Expr& expr, const Row& row,
                           const EvalContext& ctx) {
  DVMS_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, row, ctx));
  return v.IsTruthy();
}

}  // namespace dvms
