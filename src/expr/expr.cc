#include "expr/expr.h"

namespace dvms {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

const char* AggFuncToString(AggFunc func) {
  switch (func) {
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.type() == ValueType::kString) {
        return "'" + literal.ToString() + "'";
      }
      return literal.ToString();
    case ExprKind::kColumnRef:
      return qualifier.empty() ? column : qualifier + "." + column;
    case ExprKind::kUnary:
      return std::string(unary_op == UnaryOp::kNot ? "NOT " : "-") +
             children[0]->ToString();
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " +
             BinaryOpToString(binary_op) + " " + children[1]->ToString() + ")";
    case ExprKind::kFunctionCall: {
      std::string out = function_name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case ExprKind::kAggregateCall:
      if (count_star) return "COUNT(*)";
      return std::string(AggFuncToString(agg_func)) + "(" +
             children[0]->ToString() + ")";
    case ExprKind::kInRelation:
      return children[0]->ToString() + (negated ? " NOT IN " : " IN ") +
             in_relation;
  }
  return "?";
}

bool Expr::ContainsAggregate() const {
  if (kind == ExprKind::kAggregateCall) return true;
  for (const auto& c : children) {
    if (c->ContainsAggregate()) return true;
  }
  return false;
}

void Expr::CollectInRelations(std::vector<std::string>* out) const {
  if (kind == ExprKind::kInRelation) out->push_back(in_relation);
  for (const auto& c : children) c->CollectInRelations(out);
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string column) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr MakeColumnRef(std::string column) {
  return MakeColumnRef("", std::move(column));
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr child) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(child));
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeCall(std::string function, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kFunctionCall;
  e->function_name = std::move(function);
  e->children = std::move(args);
  return e;
}

ExprPtr MakeAggregate(AggFunc func, ExprPtr arg) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAggregateCall;
  e->agg_func = func;
  e->children.push_back(std::move(arg));
  return e;
}

ExprPtr MakeCountStar() {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kAggregateCall;
  e->agg_func = AggFunc::kCount;
  e->count_star = true;
  return e;
}

ExprPtr MakeInRelation(ExprPtr needle, std::string relation, bool negated) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kInRelation;
  e->in_relation = std::move(relation);
  e->negated = negated;
  e->children.push_back(std::move(needle));
  return e;
}

ExprPtr MakeConjunction(std::vector<ExprPtr> terms) {
  if (terms.empty()) return MakeLiteral(Value::Bool(true));
  ExprPtr out = terms[0];
  for (size_t i = 1; i < terms.size(); ++i) {
    out = MakeBinary(BinaryOp::kAnd, out, terms[i]);
  }
  return out;
}

ExprPtr CloneExpr(const ExprPtr& e) {
  auto out = std::make_shared<Expr>(*e);
  out->children.clear();
  for (const auto& c : e->children) out->children.push_back(CloneExpr(c));
  return out;
}

}  // namespace dvms
