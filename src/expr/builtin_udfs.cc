#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "expr/udf_registry.h"

namespace dvms {

namespace {

Status CheckArity(const std::string& name, const std::vector<Value>& args,
                  size_t n) {
  if (args.size() != n) {
    return Status::InvalidArgument(name + " expects " + std::to_string(n) +
                                   " arguments, got " +
                                   std::to_string(args.size()));
  }
  return Status::OK();
}

/// Any-NULL-in -> NULL-out convention for numeric builtins.
bool AnyNull(const std::vector<Value>& args) {
  for (const Value& v : args) {
    if (v.is_null()) return true;
  }
  return false;
}

Result<Value> LinearScale(const std::vector<Value>& args) {
  // linear_scale(v, domain_min, domain_max, range_min, range_max):
  // the paper's scale UDF; the scale_x/scale_y relations contribute the
  // domain/range bounds via a join.
  DVMS_RETURN_IF_ERROR(CheckArity("linear_scale", args, 5));
  if (AnyNull(args)) return Value::Null();
  double vals[5];
  for (int i = 0; i < 5; ++i) {
    DVMS_ASSIGN_OR_RETURN(vals[i], args[i].AsDouble());
  }
  double domain = vals[2] - vals[1];
  if (domain == 0.0) return Value::Double(vals[3]);
  double t = (vals[0] - vals[1]) / domain;
  return Value::Double(vals[3] + t * (vals[4] - vals[3]));
}

Result<Value> LogScale(const std::vector<Value>& args) {
  // log_scale(v, domain_min, domain_max, range_min, range_max): positions
  // v on a logarithmic axis. Domain must be positive.
  DVMS_RETURN_IF_ERROR(CheckArity("log_scale", args, 5));
  if (AnyNull(args)) return Value::Null();
  double vals[5];
  for (int i = 0; i < 5; ++i) {
    DVMS_ASSIGN_OR_RETURN(vals[i], args[i].AsDouble());
  }
  if (vals[0] <= 0 || vals[1] <= 0 || vals[2] <= 0) {
    return Status::InvalidArgument("log_scale requires a positive domain");
  }
  double span = std::log(vals[2]) - std::log(vals[1]);
  if (span == 0.0) return Value::Double(vals[3]);
  double t = (std::log(vals[0]) - std::log(vals[1])) / span;
  return Value::Double(vals[3] + t * (vals[4] - vals[3]));
}

Result<Value> SqrtScale(const std::vector<Value>& args) {
  // sqrt_scale(v, domain_min, domain_max, range_min, range_max): square
  // root axis (area-true circle sizing).
  DVMS_RETURN_IF_ERROR(CheckArity("sqrt_scale", args, 5));
  if (AnyNull(args)) return Value::Null();
  double vals[5];
  for (int i = 0; i < 5; ++i) {
    DVMS_ASSIGN_OR_RETURN(vals[i], args[i].AsDouble());
  }
  if (vals[0] < 0 || vals[1] < 0 || vals[2] < 0) {
    return Status::InvalidArgument("sqrt_scale requires a non-negative domain");
  }
  double span = std::sqrt(vals[2]) - std::sqrt(vals[1]);
  if (span == 0.0) return Value::Double(vals[3]);
  double t = (std::sqrt(vals[0]) - std::sqrt(vals[1])) / span;
  return Value::Double(vals[3] + t * (vals[4] - vals[3]));
}

Result<Value> LerpColor(const std::vector<Value>& args) {
  // lerp_color(t, '#rrggbb', '#rrggbb') -> '#rrggbb' interpolated; t
  // clamped to [0, 1]. Enables continuous visual encodings from queries.
  DVMS_RETURN_IF_ERROR(CheckArity("lerp_color", args, 3));
  if (AnyNull(args)) return Value::Null();
  DVMS_ASSIGN_OR_RETURN(double t, args[0].AsDouble());
  t = std::clamp(t, 0.0, 1.0);
  auto hex_digit = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  auto parse_hex = [&hex_digit](const std::string& s, int out[3]) -> Status {
    if (s.size() != 7 || s[0] != '#') {
      return Status::InvalidArgument("lerp_color expects '#rrggbb' colors");
    }
    for (int i = 0; i < 3; ++i) {
      int hi = hex_digit(s[1 + 2 * static_cast<size_t>(i)]);
      int lo = hex_digit(s[2 + 2 * static_cast<size_t>(i)]);
      if (hi < 0 || lo < 0) {
        return Status::InvalidArgument("lerp_color expects '#rrggbb' colors");
      }
      out[i] = hi * 16 + lo;
    }
    return Status::OK();
  };
  if (args[1].type() != ValueType::kString ||
      args[2].type() != ValueType::kString) {
    return Status::TypeError("lerp_color expects string colors");
  }
  int a[3], b[3];
  DVMS_RETURN_IF_ERROR(parse_hex(args[1].string_value(), a));
  DVMS_RETURN_IF_ERROR(parse_hex(args[2].string_value(), b));
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x",
                static_cast<int>(a[0] + t * (b[0] - a[0]) + 0.5),
                static_cast<int>(a[1] + t * (b[1] - a[1]) + 0.5),
                static_cast<int>(a[2] + t * (b[2] - a[2]) + 0.5));
  return Value::String(buf);
}

Result<Value> InvLinearScale(const std::vector<Value>& args) {
  // inv_linear_scale(pixel, domain_min, domain_max, range_min, range_max):
  // maps a pixel coordinate back into the data domain (hit testing).
  DVMS_RETURN_IF_ERROR(CheckArity("inv_linear_scale", args, 5));
  if (AnyNull(args)) return Value::Null();
  double vals[5];
  for (int i = 0; i < 5; ++i) {
    DVMS_ASSIGN_OR_RETURN(vals[i], args[i].AsDouble());
  }
  double range = vals[4] - vals[3];
  if (range == 0.0) return Value::Double(vals[1]);
  double t = (vals[0] - vals[3]) / range;
  return Value::Double(vals[1] + t * (vals[2] - vals[1]));
}

Result<Value> BandScale(const std::vector<Value>& args) {
  // band_scale(index, count, range_min, range_max, padding) -> left edge of
  // band `index` among `count` equal bands across [range_min, range_max).
  DVMS_RETURN_IF_ERROR(CheckArity("band_scale", args, 5));
  if (AnyNull(args)) return Value::Null();
  DVMS_ASSIGN_OR_RETURN(int64_t index, args[0].AsInt());
  DVMS_ASSIGN_OR_RETURN(int64_t count, args[1].AsInt());
  DVMS_ASSIGN_OR_RETURN(double lo, args[2].AsDouble());
  DVMS_ASSIGN_OR_RETURN(double hi, args[3].AsDouble());
  DVMS_ASSIGN_OR_RETURN(double padding, args[4].AsDouble());
  if (count <= 0) return Status::InvalidArgument("band_scale: count <= 0");
  double band = (hi - lo) / static_cast<double>(count);
  return Value::Double(lo + band * static_cast<double>(index) +
                       band * padding * 0.5);
}

Result<Value> BandWidth(const std::vector<Value>& args) {
  // band_width(count, range_min, range_max, padding) -> usable band width.
  DVMS_RETURN_IF_ERROR(CheckArity("band_width", args, 4));
  if (AnyNull(args)) return Value::Null();
  DVMS_ASSIGN_OR_RETURN(int64_t count, args[0].AsInt());
  DVMS_ASSIGN_OR_RETURN(double lo, args[1].AsDouble());
  DVMS_ASSIGN_OR_RETURN(double hi, args[2].AsDouble());
  DVMS_ASSIGN_OR_RETURN(double padding, args[3].AsDouble());
  if (count <= 0) return Status::InvalidArgument("band_width: count <= 0");
  double band = (hi - lo) / static_cast<double>(count);
  return Value::Double(band * (1.0 - padding));
}

Result<Value> InRectangle(const std::vector<Value>& args) {
  // in_rectangle(px, py, x0, y0, x1, y1): the paper's hit-test predicate.
  // The rectangle corners may arrive in any order (drag direction).
  DVMS_RETURN_IF_ERROR(CheckArity("in_rectangle", args, 6));
  if (AnyNull(args)) return Value::Bool(false);
  double v[6];
  for (int i = 0; i < 6; ++i) {
    DVMS_ASSIGN_OR_RETURN(v[i], args[i].AsDouble());
  }
  double x0 = std::min(v[2], v[4]);
  double x1 = std::max(v[2], v[4]);
  double y0 = std::min(v[3], v[5]);
  double y1 = std::max(v[3], v[5]);
  return Value::Bool(v[0] >= x0 && v[0] <= x1 && v[1] >= y0 && v[1] <= y1);
}

template <typename F>
Result<Value> Numeric1(const std::string& name, const std::vector<Value>& args,
                       F f) {
  DVMS_RETURN_IF_ERROR(CheckArity(name, args, 1));
  if (AnyNull(args)) return Value::Null();
  DVMS_ASSIGN_OR_RETURN(double x, args[0].AsDouble());
  return Value::Double(f(x));
}

template <typename F>
Result<Value> Numeric2(const std::string& name, const std::vector<Value>& args,
                       F f) {
  DVMS_RETURN_IF_ERROR(CheckArity(name, args, 2));
  if (AnyNull(args)) return Value::Null();
  DVMS_ASSIGN_OR_RETURN(double x, args[0].AsDouble());
  DVMS_ASSIGN_OR_RETURN(double y, args[1].AsDouble());
  return Value::Double(f(x, y));
}

Result<Value> If(const std::vector<Value>& args) {
  DVMS_RETURN_IF_ERROR(CheckArity("if", args, 3));
  return args[0].IsTruthy() ? args[1] : args[2];
}

Result<Value> Concat(const std::vector<Value>& args) {
  std::string out;
  for (const Value& v : args) {
    if (!v.is_null()) out += v.ToString();
  }
  return Value::String(std::move(out));
}

}  // namespace

UdfRegistry UdfRegistry::WithBuiltins() {
  UdfRegistry reg;
  auto add_typed =
      [&reg](const char* name, int arity, ValueType return_type,
             std::function<Result<Value>(const std::vector<Value>&)> fn) {
        ScalarUdf udf;
        udf.name = name;
        udf.arity = arity;
        udf.pure = true;
        udf.return_type = return_type;
        udf.fn = std::move(fn);
        // Builtins are registered once into a fresh registry; failure would
        // be a programming error, so the status is intentionally ignored.
        (void)reg.RegisterScalar(std::move(udf));
      };
  auto add = [&add_typed](
                 const char* name, int arity,
                 std::function<Result<Value>(const std::vector<Value>&)> fn) {
    add_typed(name, arity, ValueType::kDouble, std::move(fn));
  };

  add("linear_scale", 5, LinearScale);
  add("log_scale", 5, LogScale);
  add("sqrt_scale", 5, SqrtScale);
  add("inv_linear_scale", 5, InvLinearScale);
  add_typed("lerp_color", 3, ValueType::kString, LerpColor);
  add("band_scale", 5, BandScale);
  add("band_width", 4, BandWidth);
  add_typed("in_rectangle", 6, ValueType::kBool, InRectangle);
  add("abs", 1, [](const std::vector<Value>& a) {
    return Numeric1("abs", a, [](double x) { return std::abs(x); });
  });
  add("floor", 1, [](const std::vector<Value>& a) {
    return Numeric1("floor", a, [](double x) { return std::floor(x); });
  });
  add("ceil", 1, [](const std::vector<Value>& a) {
    return Numeric1("ceil", a, [](double x) { return std::ceil(x); });
  });
  add("round", 1, [](const std::vector<Value>& a) {
    return Numeric1("round", a, [](double x) { return std::round(x); });
  });
  add("sqrt", 1, [](const std::vector<Value>& a) {
    return Numeric1("sqrt", a, [](double x) { return std::sqrt(x); });
  });
  add("log", 1, [](const std::vector<Value>& a) {
    return Numeric1("log", a, [](double x) { return std::log(x); });
  });
  add("pow", 2, [](const std::vector<Value>& a) {
    return Numeric2("pow", a, [](double x, double y) { return std::pow(x, y); });
  });
  add("min2", 2, [](const std::vector<Value>& a) {
    return Numeric2("min2", a, [](double x, double y) { return std::min(x, y); });
  });
  add("max2", 2, [](const std::vector<Value>& a) {
    return Numeric2("max2", a, [](double x, double y) { return std::max(x, y); });
  });
  add("clamp", 3, [](const std::vector<Value>& a) -> Result<Value> {
    DVMS_RETURN_IF_ERROR(CheckArity("clamp", a, 3));
    if (AnyNull(a)) return Value::Null();
    DVMS_ASSIGN_OR_RETURN(double x, a[0].AsDouble());
    DVMS_ASSIGN_OR_RETURN(double lo, a[1].AsDouble());
    DVMS_ASSIGN_OR_RETURN(double hi, a[2].AsDouble());
    return Value::Double(std::clamp(x, lo, hi));
  });
  add("if", 3, If);
  add_typed("concat", -1, ValueType::kString, Concat);
  // ---- Builtin table UDFs (layout computations, per the paper's
  // ---- implementation section) ----

  // layout_stack: contract — column 0 is the stack key, column 1 is a
  // numeric value; appends running (y0, y1) extents per key, in row order.
  // Turns a (category, value, ...) relation into stacked-bar geometry.
  {
    TableUdf stack;
    stack.name = "layout_stack";
    stack.schema_fn = [](const Schema& in) -> Result<Schema> {
      if (in.num_columns() < 2) {
        return Status::InvalidArgument(
            "layout_stack needs at least (key, value) columns");
      }
      Schema out = in;
      out.AddColumn({"y0", ValueType::kDouble});
      out.AddColumn({"y1", ValueType::kDouble});
      return out;
    };
    stack.fn = [](const Table& in,
                  const std::vector<Value>&) -> Result<Table> {
      DVMS_ASSIGN_OR_RETURN(Schema schema, [&in]() -> Result<Schema> {
        if (in.schema().num_columns() < 2) {
          return Status::InvalidArgument(
              "layout_stack needs at least (key, value) columns");
        }
        Schema out = in.schema();
        out.AddColumn({"y0", ValueType::kDouble});
        out.AddColumn({"y1", ValueType::kDouble});
        return out;
      }());
      Table out(schema);
      std::unordered_map<std::string, double> offsets;
      for (const Row& row : in.rows()) {
        DVMS_ASSIGN_OR_RETURN(double v, row[1].is_null()
                                            ? Result<double>(0.0)
                                            : row[1].AsDouble());
        double& offset = offsets[row[0].ToString()];
        Row extended = row;
        extended.push_back(Value::Double(offset));
        extended.push_back(Value::Double(offset + v));
        offset += v;
        out.AppendUnchecked(std::move(extended));
      }
      return out;
    };
    (void)reg.RegisterTable(std::move(stack));
  }

  // layout_index: appends a 0-based row index column (`idx`), the bridge
  // from arbitrary relations to band_scale positioning.
  {
    TableUdf index;
    index.name = "layout_index";
    index.schema_fn = [](const Schema& in) -> Result<Schema> {
      Schema out = in;
      out.AddColumn({"idx", ValueType::kInt64});
      return out;
    };
    index.fn = [](const Table& in,
                  const std::vector<Value>&) -> Result<Table> {
      Schema schema = in.schema();
      schema.AddColumn({"idx", ValueType::kInt64});
      Table out(schema);
      for (size_t i = 0; i < in.num_rows(); ++i) {
        Row extended = in.row(i);
        extended.push_back(Value::Int(static_cast<int64_t>(i)));
        out.AppendUnchecked(std::move(extended));
      }
      return out;
    };
    (void)reg.RegisterTable(std::move(index));
  }

  add_typed("length", 1, ValueType::kInt64,
            [](const std::vector<Value>& a) -> Result<Value> {
              DVMS_RETURN_IF_ERROR(CheckArity("length", a, 1));
              if (a[0].is_null()) return Value::Null();
              return Value::Int(static_cast<int64_t>(a[0].ToString().size()));
            });
  return reg;
}

}  // namespace dvms
