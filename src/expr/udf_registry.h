#ifndef DVMS_EXPR_UDF_REGISTRY_H_
#define DVMS_EXPR_UDF_REGISTRY_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/table.h"

namespace dvms {

/// A scalar (record) UDF: values in, value out. DeVIL restricts UDFs to pure
/// functions without side effects; the registry records purity and the
/// binder rejects impure scalar UDFs inside view definitions.
struct ScalarUdf {
  std::string name;
  /// -1 means variadic.
  int arity = -1;
  bool pure = true;
  /// Static return type used by the binder for type inference.
  ValueType return_type = ValueType::kDouble;
  std::function<Result<Value>(const std::vector<Value>&)> fn;
};

/// A table UDF: relation in, relation out (e.g. layout computations). The
/// only side-effecting table UDF in DeVIL is `render`, which is handled
/// separately by the render subsystem, not through this registry.
struct TableUdf {
  std::string name;
  bool pure = true;
  /// Output schema given the input schema (needed at view-definition time,
  /// before any rows exist).
  std::function<Result<Schema>(const Schema&)> schema_fn;
  std::function<Result<Table>(const Table&, const std::vector<Value>&)> fn;
};

/// Case-insensitive registry of scalar and table UDFs.
class UdfRegistry {
 public:
  /// A registry pre-populated with the builtin scalar functions (see
  /// expr/builtin_udfs.cc): linear_scale, log_scale, sqrt_scale,
  /// in_rectangle, band_scale, lerp_color, abs, floor, ceil, round, sqrt,
  /// pow, log, min2, max2, clamp, concat, length, if, ... and the builtin
  /// table UDFs: layout_stack, layout_index.
  static UdfRegistry WithBuiltins();

  Status RegisterScalar(ScalarUdf udf);
  Status RegisterTable(TableUdf udf);

  Result<const ScalarUdf*> FindScalar(const std::string& name) const;
  Result<const TableUdf*> FindTable(const std::string& name) const;

  bool HasScalar(const std::string& name) const;
  bool HasTable(const std::string& name) const;

 private:
  std::unordered_map<std::string, ScalarUdf> scalar_;
  std::unordered_map<std::string, TableUdf> table_;
};

}  // namespace dvms

#endif  // DVMS_EXPR_UDF_REGISTRY_H_
