#ifndef DVMS_EXPR_EXPR_H_
#define DVMS_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace dvms {

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kUnary,
  kBinary,
  kFunctionCall,   // scalar UDF / builtin
  kAggregateCall,  // SUM/COUNT/AVG/MIN/MAX — only valid in projections
  kInRelation,     // <expr> [NOT] IN <relation-name>
};

enum class UnaryOp { kNot, kNegate };

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* BinaryOpToString(BinaryOp op);

enum class AggFunc { kSum, kCount, kAvg, kMin, kMax };

const char* AggFuncToString(AggFunc func);

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// A node in the (bound or unbound) scalar-expression tree.
///
/// Column references carry an optional qualifier (`Sales.revenue`). Binding
/// resolves them to a flat index into the executor's concatenated input row
/// (`resolved_index`).
struct Expr {
  ExprKind kind;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string qualifier;  // may be empty
  std::string column;
  int resolved_index = -1;  // set by the binder
  ValueType resolved_type = ValueType::kNull;

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNot;
  BinaryOp binary_op = BinaryOp::kAnd;

  // kFunctionCall
  std::string function_name;

  // kAggregateCall
  AggFunc agg_func = AggFunc::kCount;
  bool count_star = false;

  // kInRelation
  std::string in_relation;
  bool negated = false;

  std::vector<ExprPtr> children;

  /// Pretty-prints the expression (for error messages and plan dumps).
  std::string ToString() const;

  /// True if any node in this subtree is an aggregate call.
  bool ContainsAggregate() const;

  /// Collects the names of relations referenced via IN/NOT IN.
  void CollectInRelations(std::vector<std::string>* out) const;
};

// ---- Construction helpers (used by the parser, tests, and programmatic
// ---- plan building) ----

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string qualifier, std::string column);
ExprPtr MakeColumnRef(std::string column);
ExprPtr MakeUnary(UnaryOp op, ExprPtr child);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeCall(std::string function, std::vector<ExprPtr> args);
ExprPtr MakeAggregate(AggFunc func, ExprPtr arg);
ExprPtr MakeCountStar();
ExprPtr MakeInRelation(ExprPtr needle, std::string relation, bool negated);

/// Conjunction of `terms` (returns TRUE literal when empty).
ExprPtr MakeConjunction(std::vector<ExprPtr> terms);

/// Deep copy.
ExprPtr CloneExpr(const ExprPtr& e);

}  // namespace dvms

#endif  // DVMS_EXPR_EXPR_H_
