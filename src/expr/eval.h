#ifndef DVMS_EXPR_EVAL_H_
#define DVMS_EXPR_EVAL_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"
#include "common/value.h"
#include "expr/expr.h"
#include "expr/udf_registry.h"

namespace dvms {

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEq {
  bool operator()(const Value& a, const Value& b) const { return a.Equals(b); }
};

/// A hashed set of values, used to evaluate `IN <relation>` predicates
/// against a materialized single-column relation.
using ValueSet = std::unordered_set<Value, ValueHash, ValueEq>;

/// Everything an expression needs besides the input row. `in_sets` maps
/// IdentKey(relation-name) -> materialized first-column set for IN
/// predicates; callers populate it before evaluation (see
/// Executor::CollectInSets).
struct EvalContext {
  const UdfRegistry* udfs = nullptr;
  const std::unordered_map<std::string, std::shared_ptr<const ValueSet>>*
      in_sets = nullptr;
};

/// Evaluates a bound expression against `row`. Column references must have
/// resolved_index set (see Binder). Aggregate calls are a bind-time error
/// here; they are evaluated by the Aggregate operator.
Result<Value> EvalExpr(const Expr& expr, const Row& row,
                       const EvalContext& ctx);

/// Evaluates `expr` as a predicate: NULL and errors-of-type collapse to
/// false per DeVIL's predicate semantics.
Result<bool> EvalPredicate(const Expr& expr, const Row& row,
                           const EvalContext& ctx);

/// Applies a binary operator to two values (exposed for unit tests).
Result<Value> ApplyBinary(BinaryOp op, const Value& lhs, const Value& rhs);

}  // namespace dvms

#endif  // DVMS_EXPR_EVAL_H_
