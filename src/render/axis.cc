#include "render/axis.h"

namespace dvms {

std::vector<double> AxisTickValues(const AxisSpec& spec) {
  std::vector<double> values;
  if (spec.ticks == 0) return values;
  if (spec.ticks == 1) {
    values.push_back(spec.domain_min);
    return values;
  }
  for (size_t i = 0; i < spec.ticks; ++i) {
    double t = static_cast<double>(i) / static_cast<double>(spec.ticks - 1);
    values.push_back(spec.domain_min +
                     t * (spec.domain_max - spec.domain_min));
  }
  return values;
}

Table MakeAxisMarks(const AxisSpec& spec) {
  Table marks(Schema({{"x1", ValueType::kDouble},
                      {"y1", ValueType::kDouble},
                      {"x2", ValueType::kDouble},
                      {"y2", ValueType::kDouble},
                      {"stroke", ValueType::kString}}));
  const bool bottom = spec.orientation == AxisOrientation::kBottom;
  // Baseline.
  if (bottom) {
    marks.AppendUnchecked({Value::Double(spec.range_min),
                           Value::Double(spec.cross),
                           Value::Double(spec.range_max),
                           Value::Double(spec.cross),
                           Value::String(spec.stroke)});
  } else {
    marks.AppendUnchecked({Value::Double(spec.cross),
                           Value::Double(spec.range_min),
                           Value::Double(spec.cross),
                           Value::Double(spec.range_max),
                           Value::String(spec.stroke)});
  }
  // Ticks at evenly spaced pixel positions.
  for (double v : AxisTickValues(spec)) {
    double span = spec.domain_max - spec.domain_min;
    double t = span == 0 ? 0 : (v - spec.domain_min) / span;
    double p = spec.range_min + t * (spec.range_max - spec.range_min);
    if (bottom) {
      marks.AppendUnchecked({Value::Double(p), Value::Double(spec.cross),
                             Value::Double(p),
                             Value::Double(spec.cross + spec.tick_length),
                             Value::String(spec.stroke)});
    } else {
      marks.AppendUnchecked({Value::Double(spec.cross), Value::Double(p),
                             Value::Double(spec.cross - spec.tick_length),
                             Value::Double(p), Value::String(spec.stroke)});
    }
  }
  return marks;
}

}  // namespace dvms
