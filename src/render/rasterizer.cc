#include "render/rasterizer.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "common/fault.h"
#include "governor/governor.h"
#include "obs/trace.h"

namespace dvms {

const char* MarkTypeToString(MarkType type) {
  switch (type) {
    case MarkType::kCircle:
      return "circle";
    case MarkType::kRect:
      return "rect";
    case MarkType::kLine:
      return "line";
  }
  return "?";
}

Result<MarkType> InferMarkType(const Schema& schema) {
  auto has = [&schema](const char* name) {
    return schema.FindColumn(name).has_value();
  };
  if (has("center_x") && has("center_y") && has("radius")) {
    return MarkType::kCircle;
  }
  if (has("x") && has("y") && has("width") && has("height")) {
    return MarkType::kRect;
  }
  if (has("x1") && has("y1") && has("x2") && has("y2")) {
    return MarkType::kLine;
  }
  return Status::TypeError(
      "relation is not a marks relation: expected circle (center_x, "
      "center_y, radius), rect (x, y, width, height), or line (x1, y1, x2, "
      "y2) geometry columns; got [" +
      schema.ToString() + "]");
}

namespace {

/// The fill/outline routines are templated on a blend target so the exact
/// same pixel math runs for whole-buffer serial drawing and for
/// row-band-clipped parallel drawing: a band replays the op and the target
/// drops writes outside its rows.
struct FullTarget {
  PixelBuffer* buf;
  void Blend(int64_t x, int64_t y, RGBA color) const {
    buf->Blend(x, y, color);
  }
};

struct BandTarget {
  PixelBuffer* buf;
  int64_t y_begin;
  int64_t y_end;  // exclusive
  void Blend(int64_t x, int64_t y, RGBA color) const {
    if (y >= y_begin && y < y_end) buf->Blend(x, y, color);
  }
};

template <typename Target>
void FillCircleT(const Target& t, double cx, double cy, double radius,
                 RGBA color) {
  if (color.a == 0 || radius <= 0) return;
  int64_t y0 = static_cast<int64_t>(std::floor(cy - radius));
  int64_t y1 = static_cast<int64_t>(std::ceil(cy + radius));
  for (int64_t y = y0; y <= y1; ++y) {
    double dy = y - cy;
    double span = radius * radius - dy * dy;
    if (span < 0) continue;
    double dx = std::sqrt(span);
    int64_t x0 = static_cast<int64_t>(std::ceil(cx - dx));
    int64_t x1 = static_cast<int64_t>(std::floor(cx + dx));
    for (int64_t x = x0; x <= x1; ++x) t.Blend(x, y, color);
  }
}

template <typename Target>
void CircleOutlineT(const Target& t, double cx, double cy, double radius,
                    RGBA color) {
  if (color.a == 0 || radius <= 0) return;
  // Walk the circumference at sub-pixel steps.
  double circumference = 2 * M_PI * radius;
  int steps = std::max(8, static_cast<int>(circumference * 2));
  int64_t px = INT64_MIN, py = INT64_MIN;
  for (int i = 0; i <= steps; ++i) {
    double theta = 2 * M_PI * i / steps;
    int64_t x = static_cast<int64_t>(std::lround(cx + radius * std::cos(theta)));
    int64_t y = static_cast<int64_t>(std::lround(cy + radius * std::sin(theta)));
    if (x == px && y == py) continue;
    t.Blend(x, y, color);
    px = x;
    py = y;
  }
}

template <typename Target>
void FillRectT(const Target& t, double x, double y, double w, double h,
               RGBA color) {
  if (color.a == 0 || w <= 0 || h <= 0) return;
  int64_t x0 = static_cast<int64_t>(std::lround(x));
  int64_t y0 = static_cast<int64_t>(std::lround(y));
  int64_t x1 = static_cast<int64_t>(std::lround(x + w)) - 1;
  int64_t y1 = static_cast<int64_t>(std::lround(y + h)) - 1;
  for (int64_t yy = y0; yy <= y1; ++yy) {
    for (int64_t xx = x0; xx <= x1; ++xx) t.Blend(xx, yy, color);
  }
}

template <typename Target>
void RectOutlineT(const Target& t, double x, double y, double w, double h,
                  RGBA color) {
  if (color.a == 0 || w <= 0 || h <= 0) return;
  int64_t x0 = static_cast<int64_t>(std::lround(x));
  int64_t y0 = static_cast<int64_t>(std::lround(y));
  int64_t x1 = static_cast<int64_t>(std::lround(x + w)) - 1;
  int64_t y1 = static_cast<int64_t>(std::lround(y + h)) - 1;
  for (int64_t xx = x0; xx <= x1; ++xx) {
    t.Blend(xx, y0, color);
    t.Blend(xx, y1, color);
  }
  for (int64_t yy = y0 + 1; yy < y1; ++yy) {
    t.Blend(x0, yy, color);
    t.Blend(x1, yy, color);
  }
}

template <typename Target>
void LineT(const Target& t, double x1, double y1, double x2, double y2,
           RGBA color) {
  if (color.a == 0) return;
  double dx = x2 - x1;
  double dy = y2 - y1;
  int steps = static_cast<int>(std::max(std::abs(dx), std::abs(dy))) + 1;
  int64_t px = INT64_MIN, py = INT64_MIN;
  for (int i = 0; i <= steps; ++i) {
    double f = steps == 0 ? 0.0 : static_cast<double>(i) / steps;
    int64_t x = static_cast<int64_t>(std::lround(x1 + dx * f));
    int64_t y = static_cast<int64_t>(std::lround(y1 + dy * f));
    if (x == px && y == py) continue;
    t.Blend(x, y, color);
    px = x;
    py = y;
  }
}

}  // namespace

void DrawFilledCircle(PixelBuffer* buf, double cx, double cy, double radius,
                      RGBA color) {
  FillCircleT(FullTarget{buf}, cx, cy, radius, color);
}

void DrawCircleOutline(PixelBuffer* buf, double cx, double cy, double radius,
                       RGBA color) {
  CircleOutlineT(FullTarget{buf}, cx, cy, radius, color);
}

void DrawFilledRect(PixelBuffer* buf, double x, double y, double w, double h,
                    RGBA color) {
  FillRectT(FullTarget{buf}, x, y, w, h, color);
}

void DrawRectOutline(PixelBuffer* buf, double x, double y, double w, double h,
                     RGBA color) {
  RectOutlineT(FullTarget{buf}, x, y, w, h, color);
}

void DrawLine(PixelBuffer* buf, double x1, double y1, double x2, double y2,
              RGBA color) {
  LineT(FullTarget{buf}, x1, y1, x2, y2, color);
}

namespace {

/// Reads an optional color column for a row; `fallback` when the column is
/// absent or NULL.
Result<RGBA> ColorOf(const Table& marks, size_t row, const char* column,
                     RGBA fallback) {
  auto idx = marks.schema().FindColumn(column);
  if (!idx.has_value()) return fallback;
  const Value& v = marks.row(row)[*idx];
  if (v.is_null()) return fallback;
  if (v.type() != ValueType::kString) {
    return Status::TypeError(std::string(column) + " column must be a string");
  }
  return ParseColor(v.string_value());
}

/// Reads a required numeric column; returns NaN for NULL.
Result<double> NumOf(const Table& marks, size_t row, size_t col) {
  const Value& v = marks.row(row)[col];
  if (v.is_null()) return std::nan("");
  return v.AsDouble();
}

constexpr RGBA kDefaultFill = {127, 127, 127, 255};  // gray
constexpr RGBA kNoColor = {0, 0, 0, 0};

/// One mark row, decoded: geometry, colors, and a conservative framebuffer
/// row interval [y_min, y_max] so bands can skip ops that cannot touch
/// their rows.
struct MarkOp {
  MarkType kind;
  double a, b, c, d;  // circle: cx, cy, r; rect: x, y, w, h; line: x1..y2
  RGBA fill;
  RGBA stroke;
  double y_min, y_max;
};

/// Decodes marks rows in order, preserving serial error semantics: on a
/// bad row, the ops decoded so far still render (a serial loop would have
/// painted them before hitting the error) and the error is returned after.
Status DecodeMarkOps(const Table& marks, MarkType type,
                     std::vector<MarkOp>* ops) {
  const Schema& schema = marks.schema();
  switch (type) {
    case MarkType::kCircle: {
      DVMS_ASSIGN_OR_RETURN(size_t cx, schema.IndexOf("center_x"));
      DVMS_ASSIGN_OR_RETURN(size_t cy, schema.IndexOf("center_y"));
      DVMS_ASSIGN_OR_RETURN(size_t r, schema.IndexOf("radius"));
      for (size_t i = 0; i < marks.num_rows(); ++i) {
        DVMS_ASSIGN_OR_RETURN(double x, NumOf(marks, i, cx));
        DVMS_ASSIGN_OR_RETURN(double y, NumOf(marks, i, cy));
        DVMS_ASSIGN_OR_RETURN(double radius, NumOf(marks, i, r));
        if (std::isnan(x) || std::isnan(y) || std::isnan(radius)) continue;
        DVMS_ASSIGN_OR_RETURN(RGBA fill, ColorOf(marks, i, "fill", kDefaultFill));
        DVMS_ASSIGN_OR_RETURN(RGBA stroke, ColorOf(marks, i, "stroke", kNoColor));
        ops->push_back({type, x, y, radius, 0.0, fill, stroke,
                        y - radius - 2, y + radius + 2});
      }
      return Status::OK();
    }
    case MarkType::kRect: {
      DVMS_ASSIGN_OR_RETURN(size_t xc, schema.IndexOf("x"));
      DVMS_ASSIGN_OR_RETURN(size_t yc, schema.IndexOf("y"));
      DVMS_ASSIGN_OR_RETURN(size_t wc, schema.IndexOf("width"));
      DVMS_ASSIGN_OR_RETURN(size_t hc, schema.IndexOf("height"));
      for (size_t i = 0; i < marks.num_rows(); ++i) {
        DVMS_ASSIGN_OR_RETURN(double x, NumOf(marks, i, xc));
        DVMS_ASSIGN_OR_RETURN(double y, NumOf(marks, i, yc));
        DVMS_ASSIGN_OR_RETURN(double w, NumOf(marks, i, wc));
        DVMS_ASSIGN_OR_RETURN(double h, NumOf(marks, i, hc));
        if (std::isnan(x) || std::isnan(y) || std::isnan(w) || std::isnan(h)) {
          continue;
        }
        DVMS_ASSIGN_OR_RETURN(RGBA fill, ColorOf(marks, i, "fill", kDefaultFill));
        DVMS_ASSIGN_OR_RETURN(RGBA stroke, ColorOf(marks, i, "stroke", kNoColor));
        ops->push_back({type, x, y, w, h, fill, stroke,
                        std::min(y, y + h) - 2, std::max(y, y + h) + 2});
      }
      return Status::OK();
    }
    case MarkType::kLine: {
      DVMS_ASSIGN_OR_RETURN(size_t x1, schema.IndexOf("x1"));
      DVMS_ASSIGN_OR_RETURN(size_t y1, schema.IndexOf("y1"));
      DVMS_ASSIGN_OR_RETURN(size_t x2, schema.IndexOf("x2"));
      DVMS_ASSIGN_OR_RETURN(size_t y2, schema.IndexOf("y2"));
      for (size_t i = 0; i < marks.num_rows(); ++i) {
        DVMS_ASSIGN_OR_RETURN(double a, NumOf(marks, i, x1));
        DVMS_ASSIGN_OR_RETURN(double b, NumOf(marks, i, y1));
        DVMS_ASSIGN_OR_RETURN(double c, NumOf(marks, i, x2));
        DVMS_ASSIGN_OR_RETURN(double d, NumOf(marks, i, y2));
        if (std::isnan(a) || std::isnan(b) || std::isnan(c) || std::isnan(d)) {
          continue;
        }
        DVMS_ASSIGN_OR_RETURN(RGBA stroke,
                              ColorOf(marks, i, "stroke",
                                      RGBA{0, 0, 0, 255}));
        ops->push_back({type, a, b, c, d, kNoColor, stroke,
                        std::min(b, d) - 2, std::max(b, d) + 2});
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown mark type");
}

template <typename Target>
void ReplayOp(const MarkOp& op, const Target& t) {
  switch (op.kind) {
    case MarkType::kCircle:
      FillCircleT(t, op.a, op.b, op.c, op.fill);
      CircleOutlineT(t, op.a, op.b, op.c, op.stroke);
      break;
    case MarkType::kRect:
      FillRectT(t, op.a, op.b, op.c, op.d, op.fill);
      RectOutlineT(t, op.a, op.b, op.c, op.d, op.stroke);
      break;
    case MarkType::kLine:
      LineT(t, op.a, op.b, op.c, op.d, op.stroke);
      break;
  }
}

/// Replays `ops` in order against one blend target (the painter's
/// algorithm: per pixel, blend order equals relation row order).
template <typename Target>
void ReplayOps(const std::vector<MarkOp>& ops, const Target& t) {
  for (const MarkOp& op : ops) ReplayOp(op, t);
}

}  // namespace

Status RenderMarks(const Table& marks, MarkType type, PixelBuffer* out,
                   const RenderOptions& opts) {
  obs::Span span("raster.frame");
  obs::Count("raster.frames");
  obs::Count("raster.marks", marks.num_rows());
  std::vector<MarkOp> ops;
  ops.reserve(marks.num_rows());
  // The decoded op list is the rasterizer's transient footprint.
  DVMS_RETURN_IF_ERROR(governor::ChargeMemory(
      static_cast<int64_t>(marks.num_rows() * sizeof(MarkOp))));
  Status decoded = DecodeMarkOps(marks, type, &ops);

  ThreadPool* pool = opts.pool != nullptr ? opts.pool : ThreadPool::Global();
  size_t threads =
      opts.num_threads != 0 ? opts.num_threads : pool->num_threads();
  size_t band_rows = opts.band_rows == 0 ? 64 : opts.band_rows;
  if (threads <= 1 || out->height() == 0) {
    obs::Count("raster.bands");
    // Serial path: the whole frame is one band for fault purposes. A fired
    // fault (or expired deadline) leaves the frame partially drawn — the
    // caller's rollback restores it by re-rendering under suppression.
    DVMS_RETURN_IF_ERROR(fault::MaybeInject(FaultSite::kRasterBand));
    DVMS_RETURN_IF_ERROR(governor::CheckPoint());
    ReplayOps(ops, FullTarget{out});
    return decoded;
  }

  // Row-band parallel fill: bands own disjoint framebuffer rows, so no
  // pixel is written by two threads, and each band replays marks in
  // relation order — the result is bit-identical to the serial path.
  // A band whose fault fires skips its rows entirely and reports the
  // failure after the join; the frame is then corrupt and the error Status
  // tells the engine to roll back.
  const size_t bands = MorselCount(out->height(), band_rows);
  obs::Count("raster.bands", bands);
  std::atomic<size_t> failed_bands{0};
  // Per-band governor status: a band that sees the deadline expired skips
  // its rows (the frame is then corrupt and the engine rolls it back, same
  // contract as an injected band fault). The lowest-indexed band's status
  // is reported, keeping the error deterministic at any thread count.
  std::vector<Status> band_status(bands);
  pool->ParallelFor(
      out->height(), band_rows, threads, [&](const MorselRange& band) {
        if (fault::ShouldInject(FaultSite::kRasterBand)) {
          failed_bands.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        band_status[band.index] = governor::CheckPoint();
        if (!band_status[band.index].ok()) return;
        BandTarget t{out, static_cast<int64_t>(band.begin),
                     static_cast<int64_t>(band.end)};
        for (const MarkOp& op : ops) {
          if (op.y_max < static_cast<double>(band.begin) ||
              op.y_min >= static_cast<double>(band.end)) {
            continue;
          }
          ReplayOp(op, t);
        }
      });
  size_t failures = failed_bands.load(std::memory_order_relaxed);
  if (failures > 0) {
    return Status::ExecutionError(
        "injected fault at site 'raster': " + std::to_string(failures) +
        " band(s) dropped");
  }
  for (Status& st : band_status) {
    DVMS_RETURN_IF_ERROR(std::move(st));
  }
  return decoded;
}

Status RenderMarks(const Table& marks, PixelBuffer* out,
                   const RenderOptions& opts) {
  DVMS_ASSIGN_OR_RETURN(MarkType type, InferMarkType(marks.schema()));
  return RenderMarks(marks, type, out, opts);
}

}  // namespace dvms
