#include "render/scale.h"

namespace dvms {

Status CreateScaleRelation(Catalog* catalog, const std::string& name,
                           double domain_min, double domain_max,
                           double range_min, double range_max) {
  Schema schema({{"domain_min", ValueType::kDouble},
                 {"domain_max", ValueType::kDouble},
                 {"range_min", ValueType::kDouble},
                 {"range_max", ValueType::kDouble}});
  VersionedTable* table;
  if (catalog->Exists(name)) {
    DVMS_ASSIGN_OR_RETURN(table, catalog->Get(name));
    table->mutable_current().Clear();
  } else {
    DVMS_ASSIGN_OR_RETURN(
        table, catalog->CreateTable(name, schema, RelationKind::kBase));
  }
  return table->Append({Value::Double(domain_min), Value::Double(domain_max),
                        Value::Double(range_min), Value::Double(range_max)});
}

Result<std::pair<double, double>> ComputeDomain(const Table& table,
                                                const std::string& column) {
  DVMS_ASSIGN_OR_RETURN(size_t idx, table.schema().IndexOf(column));
  bool seen = false;
  double lo = 0, hi = 0;
  for (const Row& row : table.rows()) {
    const Value& v = row[idx];
    if (v.is_null()) continue;
    auto d = v.AsDouble();
    if (!d.ok()) continue;
    if (!seen) {
      lo = hi = d.value();
      seen = true;
    } else {
      lo = std::min(lo, d.value());
      hi = std::max(hi, d.value());
    }
  }
  if (!seen) {
    return Status::ExecutionError("column '" + column +
                                  "' has no numeric values to scale");
  }
  return std::make_pair(lo, hi);
}

Status CreateScaleFromColumn(Catalog* catalog, const std::string& name,
                             const Table& table, const std::string& column,
                             double range_min, double range_max,
                             double padding) {
  DVMS_ASSIGN_OR_RETURN(auto domain, ComputeDomain(table, column));
  double margin = (domain.second - domain.first) * padding;
  return CreateScaleRelation(catalog, name, domain.first - margin,
                             domain.second + margin, range_min, range_max);
}

}  // namespace dvms
