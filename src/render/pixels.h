#ifndef DVMS_RENDER_PIXELS_H_
#define DVMS_RENDER_PIXELS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace dvms {

/// An 8-bit RGBA color.
struct RGBA {
  uint8_t r = 0, g = 0, b = 0, a = 0;

  friend bool operator==(const RGBA& x, const RGBA& y) {
    return x.r == y.r && x.g == y.g && x.b == y.b && x.a == y.a;
  }
};

/// Parses a color: a CSS-style name from the builtin palette ("red",
/// "gray", "steelblue", ...) or "#rrggbb" / "#rrggbbaa".
Result<RGBA> ParseColor(const std::string& spec);

/// The pixels relation P(x, y, RGBA) of the paper's visual data model,
/// materialized as a framebuffer maintained by the rendering device.
class PixelBuffer {
 public:
  PixelBuffer(size_t width, size_t height);

  size_t width() const { return width_; }
  size_t height() const { return height_; }

  void Clear(RGBA color);

  /// Pixel access; out-of-bounds reads return transparent black, writes are
  /// clipped.
  RGBA At(int64_t x, int64_t y) const;
  void Set(int64_t x, int64_t y, RGBA color);

  /// Source-over alpha blend of `color` onto (x, y).
  void Blend(int64_t x, int64_t y, RGBA color);

  /// Materializes P as a relation with columns (x INT, y INT, r INT, g INT,
  /// b INT, a INT). `skip_transparent` drops fully transparent pixels.
  Table ToRelation(bool skip_transparent = true) const;

  /// Number of pixels exactly equal to `color`.
  size_t CountColor(RGBA color) const;

  /// Number of pixels with nonzero alpha.
  size_t CountPainted() const;

  /// Bitwise framebuffer equality (dimensions and every RGBA byte).
  bool Equals(const PixelBuffer& other) const {
    return width_ == other.width_ && height_ == other.height_ &&
           pixels_ == other.pixels_;
  }

  /// Writes a binary PPM (P6) image, alpha composited over white.
  Status WritePpm(const std::string& path) const;

 private:
  size_t width_;
  size_t height_;
  std::vector<RGBA> pixels_;
};

}  // namespace dvms

#endif  // DVMS_RENDER_PIXELS_H_
