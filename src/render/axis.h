#ifndef DVMS_RENDER_AXIS_H_
#define DVMS_RENDER_AXIS_H_

#include "storage/table.h"

namespace dvms {

/// Which side of the plot an axis sits on.
enum class AxisOrientation { kBottom, kLeft };

struct AxisSpec {
  AxisOrientation orientation = AxisOrientation::kBottom;
  double domain_min = 0;
  double domain_max = 1;
  /// Pixel extent of the axis line along its direction.
  double range_min = 0;
  double range_max = 100;
  /// Pixel position of the axis line on the perpendicular direction
  /// (y for bottom axes, x for left axes).
  double cross = 0;
  size_t ticks = 5;
  double tick_length = 4;
  std::string stroke = "black";
};

/// Generates a line-marks relation (x1, y1, x2, y2, stroke) for an axis:
/// the baseline plus `ticks` evenly spaced tick marks. The result is a
/// regular marks relation — render it like any other
/// (`AXIS = render(SELECT * FROM ...)` after loading it as a base table,
/// or pass it straight to RenderMarks).
Table MakeAxisMarks(const AxisSpec& spec);

/// The tick positions in data space (domain_min..domain_max inclusive).
std::vector<double> AxisTickValues(const AxisSpec& spec);

}  // namespace dvms

#endif  // DVMS_RENDER_AXIS_H_
