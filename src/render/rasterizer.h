#ifndef DVMS_RENDER_RASTERIZER_H_
#define DVMS_RENDER_RASTERIZER_H_

#include <string>

#include "common/thread_pool.h"
#include "render/pixels.h"
#include "storage/table.h"

namespace dvms {

/// The mark types DeVIL marks relations can describe. Each marks relation
/// corresponds to one mark type (§2.1.1); the rasterizer checks the
/// relation's schema for the type's required geometry columns.
enum class MarkType {
  kCircle,  // center_x, center_y, radius, [fill], [stroke]
  kRect,    // x, y, width, height, [fill], [stroke]
  kLine,    // x1, y1, x2, y2, [stroke]
};

const char* MarkTypeToString(MarkType type);

/// Infers the mark type of a relation from its geometry columns. Errors
/// when no mark type's required columns are present.
Result<MarkType> InferMarkType(const Schema& schema);

struct RenderOptions {
  /// Parallelism for scanline-band rasterization: 0 = the pool's full
  /// width, 1 = serial. Bands partition the framebuffer rows, each band
  /// replays every mark in relation order clipped to its rows, so writes
  /// are disjoint and the P(x, y, RGBA) relation is bit-identical at every
  /// thread count.
  size_t num_threads = 0;
  /// Framebuffer rows per band (one morsel of the parallel fill).
  size_t band_rows = 64;
  /// Pool to run on; nullptr = ThreadPool::Global().
  ThreadPool* pool = nullptr;
};

/// The render table UDF: rasterizes a marks relation onto the pixel buffer.
/// This is the only side-effecting UDF DeVIL permits, and it may only be
/// applied to marks relations — the schema is validated against the mark
/// type. Rows render in order (painter's algorithm). Missing fill/stroke
/// columns default to gray fill / no stroke; NULL geometry rows are skipped.
Status RenderMarks(const Table& marks, MarkType type, PixelBuffer* out,
                   const RenderOptions& opts = {});

/// Convenience: infers the mark type, then renders.
Status RenderMarks(const Table& marks, PixelBuffer* out,
                   const RenderOptions& opts = {});

// Low-level drawing primitives (exposed for tests).
void DrawFilledCircle(PixelBuffer* buf, double cx, double cy, double radius,
                      RGBA color);
void DrawCircleOutline(PixelBuffer* buf, double cx, double cy, double radius,
                       RGBA color);
void DrawFilledRect(PixelBuffer* buf, double x, double y, double w, double h,
                    RGBA color);
void DrawRectOutline(PixelBuffer* buf, double x, double y, double w, double h,
                     RGBA color);
void DrawLine(PixelBuffer* buf, double x1, double y1, double x2, double y2,
              RGBA color);

}  // namespace dvms

#endif  // DVMS_RENDER_RASTERIZER_H_
