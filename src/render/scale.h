#ifndef DVMS_RENDER_SCALE_H_
#define DVMS_RENDER_SCALE_H_

#include <string>

#include "storage/catalog.h"

namespace dvms {

/// Creates (or replaces the contents of) a single-row scale relation
/// `name(domain_min, domain_max, range_min, range_max)` — the shape the
/// paper's `scale_x` / `scale_y` relations take. DeVIL queries join with it
/// and feed its columns to the `linear_scale` UDF.
Status CreateScaleRelation(Catalog* catalog, const std::string& name,
                           double domain_min, double domain_max,
                           double range_min, double range_max);

/// Computes [min, max] of a numeric column; NULLs ignored. Errors when the
/// column has no non-NULL numeric values.
Result<std::pair<double, double>> ComputeDomain(const Table& table,
                                                const std::string& column);

/// Creates a scale relation whose domain is computed from `table.column`
/// (with a proportional `padding` margin on both ends).
Status CreateScaleFromColumn(Catalog* catalog, const std::string& name,
                             const Table& table, const std::string& column,
                             double range_min, double range_max,
                             double padding = 0.0);

}  // namespace dvms

#endif  // DVMS_RENDER_SCALE_H_
