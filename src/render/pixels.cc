#include "render/pixels.h"

#include <cctype>
#include <cstdio>

#include "common/schema.h"

namespace dvms {

namespace {

struct NamedColor {
  const char* name;
  RGBA color;
};

constexpr NamedColor kPalette[] = {
    {"black", {0, 0, 0, 255}},        {"white", {255, 255, 255, 255}},
    {"red", {214, 39, 40, 255}},      {"green", {44, 160, 44, 255}},
    {"blue", {31, 119, 180, 255}},    {"orange", {255, 127, 14, 255}},
    {"gray", {127, 127, 127, 255}},   {"grey", {127, 127, 127, 255}},
    {"lightgray", {199, 199, 199, 255}},
    {"darkgray", {80, 80, 80, 255}},  {"steelblue", {70, 130, 180, 255}},
    {"purple", {148, 103, 189, 255}}, {"brown", {140, 86, 75, 255}},
    {"pink", {227, 119, 194, 255}},   {"yellow", {219, 219, 64, 255}},
    {"cyan", {23, 190, 207, 255}},    {"none", {0, 0, 0, 0}},
    {"transparent", {0, 0, 0, 0}},
};

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (c >= 'a' && c <= 'f') return 10 + (c - 'a');
  return -1;
}

}  // namespace

Result<RGBA> ParseColor(const std::string& spec) {
  if (!spec.empty() && spec[0] == '#') {
    if (spec.size() != 7 && spec.size() != 9) {
      return Status::InvalidArgument("bad hex color '" + spec + "'");
    }
    uint8_t parts[4] = {0, 0, 0, 255};
    for (size_t i = 0; i + 1 < spec.size() - 1; i += 2) {
      int hi = HexNibble(spec[1 + i]);
      int lo = HexNibble(spec[2 + i]);
      if (hi < 0 || lo < 0) {
        return Status::InvalidArgument("bad hex color '" + spec + "'");
      }
      parts[i / 2] = static_cast<uint8_t>(hi * 16 + lo);
    }
    return RGBA{parts[0], parts[1], parts[2], parts[3]};
  }
  for (const NamedColor& named : kPalette) {
    if (IdentEquals(named.name, spec)) return named.color;
  }
  return Status::InvalidArgument("unknown color '" + spec + "'");
}

PixelBuffer::PixelBuffer(size_t width, size_t height)
    : width_(width), height_(height), pixels_(width * height) {}

void PixelBuffer::Clear(RGBA color) {
  for (RGBA& p : pixels_) p = color;
}

RGBA PixelBuffer::At(int64_t x, int64_t y) const {
  if (x < 0 || y < 0 || static_cast<size_t>(x) >= width_ ||
      static_cast<size_t>(y) >= height_) {
    return RGBA{};
  }
  return pixels_[static_cast<size_t>(y) * width_ + static_cast<size_t>(x)];
}

void PixelBuffer::Set(int64_t x, int64_t y, RGBA color) {
  if (x < 0 || y < 0 || static_cast<size_t>(x) >= width_ ||
      static_cast<size_t>(y) >= height_) {
    return;
  }
  pixels_[static_cast<size_t>(y) * width_ + static_cast<size_t>(x)] = color;
}

void PixelBuffer::Blend(int64_t x, int64_t y, RGBA color) {
  if (x < 0 || y < 0 || static_cast<size_t>(x) >= width_ ||
      static_cast<size_t>(y) >= height_) {
    return;
  }
  if (color.a == 255) {
    Set(x, y, color);
    return;
  }
  if (color.a == 0) return;
  RGBA dst = At(x, y);
  double sa = color.a / 255.0;
  double da = dst.a / 255.0;
  double out_a = sa + da * (1 - sa);
  auto mix = [sa, da, out_a](uint8_t s, uint8_t d) {
    if (out_a <= 0) return static_cast<uint8_t>(0);
    double v = (s * sa + d * da * (1 - sa)) / out_a;
    return static_cast<uint8_t>(v + 0.5);
  };
  Set(x, y,
      RGBA{mix(color.r, dst.r), mix(color.g, dst.g), mix(color.b, dst.b),
           static_cast<uint8_t>(out_a * 255 + 0.5)});
}

Table PixelBuffer::ToRelation(bool skip_transparent) const {
  Table t(Schema({{"x", ValueType::kInt64},
                  {"y", ValueType::kInt64},
                  {"r", ValueType::kInt64},
                  {"g", ValueType::kInt64},
                  {"b", ValueType::kInt64},
                  {"a", ValueType::kInt64}}));
  for (size_t y = 0; y < height_; ++y) {
    for (size_t x = 0; x < width_; ++x) {
      const RGBA& p = pixels_[y * width_ + x];
      if (skip_transparent && p.a == 0) continue;
      t.AppendUnchecked({Value::Int(static_cast<int64_t>(x)),
                         Value::Int(static_cast<int64_t>(y)),
                         Value::Int(p.r), Value::Int(p.g), Value::Int(p.b),
                         Value::Int(p.a)});
    }
  }
  return t;
}

size_t PixelBuffer::CountColor(RGBA color) const {
  size_t n = 0;
  for (const RGBA& p : pixels_) {
    if (p == color) ++n;
  }
  return n;
}

size_t PixelBuffer::CountPainted() const {
  size_t n = 0;
  for (const RGBA& p : pixels_) {
    if (p.a != 0) ++n;
  }
  return n;
}

Status PixelBuffer::WritePpm(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::ExecutionError("cannot open '" + path + "' for writing");
  }
  std::fprintf(f, "P6\n%zu %zu\n255\n", width_, height_);
  for (const RGBA& p : pixels_) {
    double a = p.a / 255.0;
    unsigned char rgb[3] = {
        static_cast<unsigned char>(p.r * a + 255 * (1 - a) + 0.5),
        static_cast<unsigned char>(p.g * a + 255 * (1 - a) + 0.5),
        static_cast<unsigned char>(p.b * a + 255 * (1 - a) + 0.5)};
    std::fwrite(rgb, 1, 3, f);
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace dvms
