#ifndef DVMS_CLUSTER_CLUSTER_CLIENT_H_
#define DVMS_CLUSTER_CLUSTER_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/dvms.h"
#include "core/session.h"
#include "expr/udf_registry.h"
#include "parser/parser.h"

namespace dvms {
namespace cluster {

/// Knobs for ClusterClient. Zero / negative sentinels resolve from the
/// DVMS_CLUSTER_* environment variables (then the documented default), the
/// same overlay convention Dvms::Options uses — see README § Configuration.
struct ClusterOptions {
  /// Bounded staleness for routed reads, in WAL frames behind the client's
  /// acknowledged LSN: a replica is eligible to serve a read iff
  /// acked_lsn - replica_lsn <= bound. The primary is always eligible
  /// (it IS the ack source). -1 = DVMS_CLUSTER_STALENESS_FRAMES, or 0
  /// (read-your-acknowledged-writes: replicas serve only when caught up).
  int64_t staleness_bound_frames = -1;
  /// Attempts per routed request before the last transient error is
  /// returned. 0 = DVMS_CLUSTER_RETRY_LIMIT, or 6.
  int max_attempts = 0;
  /// Exponential backoff between retries: floor << attempt, capped, then
  /// scaled by a seeded uniform draw in [0.5, 1.5) so concurrent retriers
  /// don't thunder in lockstep. 0 = DVMS_CLUSTER_BACKOFF_MS (floor, or 1)
  /// and DVMS_CLUSTER_BACKOFF_CAP_MS (cap, or 64).
  int64_t backoff_floor_ms = 0;
  int64_t backoff_cap_ms = 0;
  /// Hedged reads: once enough latency samples exist, a read still running
  /// after this percentile of recent read latency is raced against a second
  /// eligible endpoint; first success wins and the loser is cancelled.
  /// -1 = DVMS_CLUSTER_HEDGE_PCT, or 95. 0 disables hedging.
  double hedge_percentile = -1;
  /// Samples required before hedging arms. 0 = 32.
  size_t hedge_min_samples = 0;
  /// Circuit breaker: consecutive endpoint-attributable failures that trip
  /// an endpoint open (no traffic), and the cooldown after which one
  /// half-open probe is allowed through (success closes the breaker,
  /// failure re-opens it). 0 = DVMS_CLUSTER_BREAKER_FAILURES (or 3) /
  /// DVMS_CLUSTER_BREAKER_MS (or 50).
  int breaker_failures = 0;
  int64_t breaker_cooldown_ms = 0;
  /// Total per-request budget in ms shared across every retry, backoff
  /// sleep, and hedge of one routed call; attempts run under the remaining
  /// slice as their governor deadline. -1 = DVMS_CLUSTER_DEADLINE_MS, or
  /// 0 (no budget).
  int64_t deadline_ms = -1;
  /// Seed for retry/backoff jitter and routing tie-breaks. 0 = 0x5eed.
  uint64_t seed = 0;
  /// Injectable clock (microseconds, monotonic) for breaker cooldowns,
  /// budgets, and hedge cutoffs. nullptr = steady clock.
  std::function<int64_t()> clock;
};

/// Per-request routing context: an optional deadline override plus a cancel
/// token that propagates into whichever endpoint's attempt is in flight
/// (via Session::Options::cancel_flag), so cancelling the routed request
/// aborts work on any endpoint, not just the retry loop.
struct RequestContext {
  /// -1 inherits ClusterOptions::deadline_ms; 0 = no budget.
  int64_t deadline_ms = -1;
  std::shared_ptr<std::atomic<bool>> cancel =
      std::make_shared<std::atomic<bool>>(false);

  void RequestCancel() { cancel->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return cancel->load(std::memory_order_relaxed); }
};

/// Circuit-breaker state machine per endpoint: kClosed (traffic flows) →
/// kOpen after N consecutive failures (fail fast, no traffic) → kHalfOpen
/// after the cooldown (exactly one probe request) → kClosed on probe
/// success / back to kOpen on probe failure.
enum class BreakerState { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

/// Aggregate client counters, also queryable as the dvms_cluster system
/// relation through ClusterClient::Query.
struct ClusterStats {
  uint64_t reads_routed = 0;       // successful routed reads
  uint64_t reads_primary = 0;      // ... served by the primary
  uint64_t reads_replica = 0;      // ... served by a replica
  uint64_t read_retries = 0;       // transient read attempts retried
  uint64_t read_failures = 0;      // reads that exhausted retries/budget
  uint64_t writes_routed = 0;      // successful routed writes
  uint64_t write_retries = 0;
  uint64_t write_failures = 0;
  uint64_t readonly_races = 0;     // kReadOnlyReplica hit during failover
  uint64_t write_replays = 0;      // in-flight writes re-executed after failover
  uint64_t write_replays_suppressed = 0;  // proven committed by the acked LSN
  uint64_t hedges_launched = 0;
  uint64_t hedges_won = 0;         // backup finished first
  uint64_t hedges_lost = 0;        // primary attempt finished first
  uint64_t hedge_failures = 0;     // backup attempts that errored
  uint64_t failovers = 0;
  int64_t last_failover_us = 0;    // duration of the most recent failover
  uint64_t condemned_endpoints = 0;  // poisoned primaries taken out of rotation
  uint64_t staleness_checks = 0;
  uint64_t staleness_skips = 0;    // endpoints skipped as beyond the bound
  uint64_t staleness_violations = 0;  // reads served beyond the bound (0!)
  uint64_t breaker_trips = 0;
  uint64_t breaker_recoveries = 0;
  uint64_t breaker_half_open_probes = 0;
  uint64_t deadline_exhausted = 0;
  uint64_t cancelled = 0;
  uint64_t acked_lsn = 0;
};

/// Health snapshot of one endpoint, for stats() and dvms_cluster rows.
struct EndpointHealth {
  std::string name;
  bool attached = false;
  bool replica = false;
  bool stale = false;
  bool degraded = false;
  BreakerState breaker = BreakerState::kClosed;
  int consecutive_failures = 0;
  uint64_t lsn = 0;
  uint64_t lag_behind_acked = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t failures = 0;
  uint64_t staleness_skips = 0;
  uint64_t breaker_trips = 0;
  uint64_t half_open_probes = 0;
  uint64_t breaker_recoveries = 0;
};

/// Fronts one primary plus N replica Dvms instances and makes the ensemble
/// behave like a single robust engine:
///
///   - Reads route to healthy replicas under the bounded-staleness policy
///     (primary fallback when none qualifies), never taking the engines'
///     write mutexes — every attempt is a lock-free snapshot Session read.
///   - Transient failures (kStorageDegraded, injected env IO faults,
///     kReadOnlyReplica races during failover, detached endpoints) retry
///     with exponential backoff + seeded jitter under the caller's deadline
///     budget; terminal statement errors (parse/bind/type/...) return
///     immediately.
///   - Reads still running past a latency-percentile cutoff are hedged
///     against a second eligible endpoint; the winner's result is returned
///     and the loser is cancelled through its session's cancel token.
///   - Consecutive endpoint-attributable failures trip a per-endpoint
///     circuit breaker (half-open probes recover it).
///   - On primary loss, writes fail over automatically: the most
///     caught-up attached replica is Promote()d, write traffic re-points,
///     and the in-flight write is demoted to an idempotent replay checked
///     against the acknowledged LSN — if the promoted log already holds a
///     frame beyond the last acknowledged write, the in-flight op committed
///     before the crash and is NOT re-executed.
///
/// Writes are serialized through the client (mirroring the engines' own
/// serialized mutation units), which is what makes the acked-LSN replay
/// check exact: every durable frame maps to an acknowledged client write.
/// All writes to the fleet must go through one ClusterClient; reads are
/// thread-safe and lock-free against each other.
///
/// Endpoint engines are borrowed, not owned. DetachEndpoint marks an
/// endpoint dead (simulating process loss) and drains its in-flight calls,
/// after which the caller may safely destroy the engine.
class ClusterClient {
 public:
  explicit ClusterClient(ClusterOptions options = ClusterOptions());
  ~ClusterClient();
  ClusterClient(const ClusterClient&) = delete;
  ClusterClient& operator=(const ClusterClient&) = delete;

  /// Registers an endpoint. Role (primary/replica) is read live from the
  /// engine, so a later Promote() re-points traffic with no re-registration.
  Status AddEndpoint(std::string name, Dvms* engine);

  /// Marks the endpoint dead and blocks until its in-flight calls drain;
  /// afterwards the engine pointer is never touched again and the caller
  /// may destroy the engine. Subsequent traffic treats it as kUnavailable.
  Status DetachEndpoint(const std::string& name);

  /// Re-points a detached endpoint at a (new) engine and resets its
  /// breaker — a replacement replica joining the fleet.
  Status ReattachEndpoint(const std::string& name, Dvms* engine);

  /// Routed read. SELECTs referencing only the dvms_cluster system
  /// relation are served locally from client state; everything else routes
  /// to an eligible endpoint with retry / hedging / breaker policy.
  Result<Table> Query(const std::string& select_sql);
  Result<Table> Query(const std::string& select_sql, RequestContext* ctx);

  /// Routed write: `op` runs against the current primary with retry,
  /// failover, and idempotent-replay demotion. `what` labels errors.
  Status Write(const char* what, const std::function<Status(Dvms&)>& op);

  // Typed conveniences over Write().
  Status CreateBaseTable(const std::string& name, Schema schema);
  Status Insert(const std::string& name, std::vector<Row> rows);
  Status LoadProgram(const std::string& source);
  Status Execute(const Statement& statement);
  Status PushEvent(const InputEvent& event);
  Status CreateScale(const std::string& name, double domain_min,
                     double domain_max, double range_min, double range_max);

  /// Newest LSN acknowledged to a caller of this client (the staleness
  /// anchor and the idempotent-replay watermark).
  uint64_t acked_lsn() const {
    return acked_lsn_.load(std::memory_order_relaxed);
  }

  /// Name of the current attached primary, or kUnavailable.
  Result<std::string> PrimaryName() const;

  ClusterStats stats() const;
  std::vector<EndpointHealth> endpoint_health() const;

  /// The dvms_cluster system relation: one {endpoint, name, value} row per
  /// counter — global rows carry an empty endpoint.
  Table BuildClusterTable() const;

 private:
  struct Endpoint {
    std::string name;
    Dvms* engine = nullptr;  // null while detached
    int inflight = 0;        // calls outside mu_ holding this endpoint
    BreakerState breaker = BreakerState::kClosed;
    int consecutive_failures = 0;
    int64_t breaker_opened_us = 0;
    bool probe_inflight = false;  // the single half-open probe
    // Per-endpoint counters (guarded by mu_).
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t failures = 0;
    uint64_t staleness_skips = 0;
    uint64_t breaker_trips = 0;
    uint64_t half_open_probes = 0;
    uint64_t breaker_recoveries = 0;
  };

  /// One picked endpoint with its staleness witness, inflight-pinned until
  /// Release().
  struct Target {
    Endpoint* ep = nullptr;
    Dvms* engine = nullptr;
    bool is_primary = false;
    uint64_t serve_lsn = 0;   // endpoint LSN observed at pick time
    uint64_t acked_at_pick = 0;
  };

  /// Shared state of one hedged read: the inline (primary) attempt and the
  /// manager-thread backup race on it; first success wins, the loser is
  /// cancelled through its session token.
  struct HedgeState {
    std::mutex mu;
    std::condition_variable cv;
    std::string sql;
    int64_t attempt_deadline_ms = -1;
    Endpoint* exclude = nullptr;
    bool done = false;            // a winner result is set
    bool fired = false;           // the manager started (or skipped) backup
    bool backup_finished = false;
    int winner = -1;              // 0 = inline attempt, 1 = backup
    Result<Table> winner_result{Status::Internal("hedge: no winner")};
    std::shared_ptr<std::atomic<bool>> inline_cancel =
        std::make_shared<std::atomic<bool>>(false);
    std::shared_ptr<std::atomic<bool>> backup_cancel =
        std::make_shared<std::atomic<bool>>(false);
  };

  struct HedgeJob {
    int64_t fire_at_us = 0;
    std::shared_ptr<HedgeState> state;
  };

  int64_t NowUs() const;
  /// Remaining budget in ms; INT64_MAX when no deadline is configured.
  int64_t RemainingMs(int64_t start_us, int64_t deadline_ms) const;
  /// Seeded-jitter backoff sleep for `attempt`, truncated to the remaining
  /// budget. Returns false when the budget is already exhausted.
  bool BackoffSleep(Rng* rng, int attempt, int64_t start_us,
                    int64_t deadline_ms);

  /// Picks a read endpoint under the staleness + breaker policy: eligible
  /// replicas round-robin, primary fallback. Null `ep` when none is
  /// eligible right now. `exclude` skips the hedged read's first endpoint.
  Target PickReadEndpoint(const Endpoint* exclude);
  /// The attached primary (inflight-pinned), ignoring the breaker — writes
  /// have no alternative endpoint, retry/backoff is their gate.
  Target AcquirePrimary();
  void Release(Target* target);

  /// Breaker bookkeeping; both take mu_.
  void OnEndpointSuccess(Endpoint* ep);
  void OnEndpointFailure(Endpoint* ep);
  /// True when the breaker admits traffic now (may transition kOpen →
  /// kHalfOpen and claim the probe slot). mu_ held.
  bool BreakerAdmits(Endpoint* ep, int64_t now_us);

  /// One snapshot-read attempt on a pinned target. Releases the target.
  Result<Table> RunReadAttempt(Target target, const std::string& sql,
                               int64_t attempt_deadline_ms,
                               std::shared_ptr<std::atomic<bool>> cancel);
  /// Inline attempt + registered backup racing under the hedge cutoff.
  Result<Table> HedgedRead(Target target, const std::string& sql,
                           int64_t attempt_deadline_ms, int64_t cutoff_us,
                           int64_t start_us, int64_t deadline_ms);

  /// Promote the most caught-up attached replica; write_mu_ held.
  Status TryFailover(const std::string& reason);

  /// Take a durability-poisoned endpoint out of rotation entirely (its
  /// in-memory state is a fork the durable log never saw — neither writes
  /// nor reads may route to it). Drains in-flight calls like
  /// DetachEndpoint; write_mu_ held, mu_ NOT held.
  void CondemnEndpoint(Endpoint* ep);

  /// SELECT over the client-local dvms_cluster relation.
  Result<Table> LocalClusterQuery(const QueryRequest& req);

  void RecordReadLatency(int64_t us);
  /// Hedge cutoff from the recent-latency percentile; -1 when hedging is
  /// not armed (disabled or not enough samples).
  int64_t HedgeCutoffUs();

  void HedgeLoop();
  void StopHedgeThread();

  ClusterOptions options_;  // resolved (env overlays applied)
  UdfRegistry udfs_;

  /// Guards endpoints_ (vector + every field) and rr_. Engine calls are
  /// never made while holding it, except leaf-locked stats reads
  /// (replication_stats / storage_degraded) during routing decisions.
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  size_t rr_ = 0;  // round-robin cursor over eligible replicas
  std::condition_variable drain_cv_;

  /// Serializes routed writes (engines serialize mutations anyway); what
  /// makes the acked-LSN replay accounting exact and failover single-shot.
  std::mutex write_mu_;
  std::atomic<uint64_t> acked_lsn_{0};

  /// Leaf lock for counters + the latency ring + the jitter rng.
  mutable std::mutex stats_mu_;
  ClusterStats stats_;
  Rng rng_;
  std::vector<int64_t> latency_ring_;
  size_t latency_next_ = 0;
  size_t latency_count_ = 0;

  /// Hedge manager: one background thread runs backup attempts at their
  /// cutoff deadlines, so the healthy fast path never pays a thread spawn.
  std::mutex hedge_mu_;
  std::condition_variable hedge_cv_;
  std::deque<HedgeJob> hedge_jobs_;
  bool hedge_stop_ = false;
  std::thread hedge_thread_;
};

}  // namespace cluster
}  // namespace dvms

#endif  // DVMS_CLUSTER_CLUSTER_CLIENT_H_
