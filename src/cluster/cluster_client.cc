#include "cluster/cluster_client.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <utility>

#include "common/env.h"
#include "common/schema.h"
#include "parser/planner.h"
#include "query/binder.h"
#include "query/executor.h"
#include "query/plan.h"

namespace dvms {
namespace cluster {

namespace {

constexpr char kClusterRelation[] = "dvms_cluster";

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') return fallback;
  return static_cast<int64_t>(parsed);
}

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Case-insensitive substring scan; a false positive (the name inside a
/// string literal, say) only costs the parse it gates, never correctness.
bool ContainsCaseInsensitive(const std::string& haystack, const char* needle) {
  const size_t n = std::strlen(needle);
  if (n == 0 || haystack.size() < n) return false;
  auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  for (size_t i = 0; i + n <= haystack.size(); ++i) {
    size_t j = 0;
    while (j < n && lower(haystack[i + j]) == lower(needle[j])) ++j;
    if (j == n) return true;
  }
  return false;
}

void CollectFromNames(const SelectStmt& stmt, std::vector<std::string>* out) {
  for (const SelectCore& core : stmt.cores) {
    for (const TableRef& ref : core.from) {
      if (ref.subquery != nullptr) {
        CollectFromNames(*ref.subquery, out);
      } else {
        out->push_back(ref.name);
      }
    }
  }
}

/// How the routing layer treats a failed attempt. The taxonomy is the
/// design contract (DESIGN.md § Cluster routing & failover): an error is
/// either the statement's fault (terminal — retrying cannot change the
/// answer), the endpoint's fault (retry elsewhere AND count against that
/// endpoint's circuit breaker), or a routing race (retry, but say nothing
/// about endpoint health).
enum class ErrClass { kTerminal, kRetryEndpoint, kRetryRouting };

ErrClass Classify(const Status& st) {
  switch (st.code()) {
    case StatusCode::kStorageDegraded:
      // The endpoint's disk is sick but probes may recover it.
      return ErrClass::kRetryEndpoint;
    case StatusCode::kInternal:
      // "No snapshot epoch published yet" — a replica still bootstrapping.
      return ErrClass::kRetryEndpoint;
    case StatusCode::kUnavailable:
      // Detached / no eligible endpoint; produced by the router itself.
      return ErrClass::kRetryRouting;
    case StatusCode::kReadOnlyReplica:
      // A write raced a failover: the endpoint we thought was primary is
      // (still / again) a replica. Health is fine, the role map moved.
      return ErrClass::kRetryRouting;
    case StatusCode::kResourceExhausted:
      // Admission shed under load; backs off, not a health signal.
      return ErrClass::kRetryRouting;
    case StatusCode::kExecutionError:
      // Injected env faults (and real device errors) surface as execution
      // failures of the statement that tripped them; the statement itself
      // is fine — retry it, and hold the fault against the endpoint.
      if (env::IsInjectedIoFault(st) || env::IsOutOfSpace(st) ||
          env::IsEnvIoError(st)) {
        return ErrClass::kRetryEndpoint;
      }
      return ErrClass::kTerminal;
    default:
      // Parse/bind/type/not-found/unsupported/cancelled/deadline/...:
      // retrying cannot produce a different answer.
      return ErrClass::kTerminal;
  }
}

const EngineSnapshotView* EmptyBaseView() {
  static const EngineSnapshotView* empty = new EngineSnapshotView();
  return empty;
}

}  // namespace

ClusterClient::ClusterClient(ClusterOptions options)
    : options_(std::move(options)),
      udfs_(UdfRegistry::WithBuiltins()),
      rng_(options_.seed != 0
               ? options_.seed
               : static_cast<uint64_t>(EnvInt("DVMS_CLUSTER_SEED", 0x5eed))) {
  if (options_.staleness_bound_frames < 0) {
    options_.staleness_bound_frames = EnvInt("DVMS_CLUSTER_STALENESS_FRAMES", 0);
  }
  if (options_.max_attempts <= 0) {
    options_.max_attempts =
        static_cast<int>(EnvInt("DVMS_CLUSTER_RETRY_LIMIT", 6));
  }
  if (options_.backoff_floor_ms <= 0) {
    options_.backoff_floor_ms = EnvInt("DVMS_CLUSTER_BACKOFF_MS", 1);
  }
  if (options_.backoff_cap_ms <= 0) {
    options_.backoff_cap_ms = EnvInt("DVMS_CLUSTER_BACKOFF_CAP_MS", 64);
  }
  if (options_.hedge_percentile < 0) {
    options_.hedge_percentile =
        static_cast<double>(EnvInt("DVMS_CLUSTER_HEDGE_PCT", 95));
  }
  if (options_.hedge_min_samples == 0) options_.hedge_min_samples = 32;
  if (options_.breaker_failures <= 0) {
    options_.breaker_failures =
        static_cast<int>(EnvInt("DVMS_CLUSTER_BREAKER_FAILURES", 3));
  }
  if (options_.breaker_cooldown_ms <= 0) {
    options_.breaker_cooldown_ms = EnvInt("DVMS_CLUSTER_BREAKER_MS", 50);
  }
  if (options_.deadline_ms < 0) {
    options_.deadline_ms = EnvInt("DVMS_CLUSTER_DEADLINE_MS", 0);
  }
  latency_ring_.assign(256, 0);
  if (options_.hedge_percentile > 0) {
    hedge_thread_ = std::thread(&ClusterClient::HedgeLoop, this);
  }
}

ClusterClient::~ClusterClient() { StopHedgeThread(); }

int64_t ClusterClient::NowUs() const {
  return options_.clock != nullptr ? options_.clock() : SteadyNowUs();
}

int64_t ClusterClient::RemainingMs(int64_t start_us,
                                   int64_t deadline_ms) const {
  if (deadline_ms <= 0) return std::numeric_limits<int64_t>::max();
  return deadline_ms - (NowUs() - start_us) / 1000;
}

bool ClusterClient::BackoffSleep(Rng* rng, int attempt, int64_t start_us,
                                 int64_t deadline_ms) {
  const int shift = std::min(attempt, 20);
  int64_t base = options_.backoff_floor_ms << shift;
  base = std::min(base, options_.backoff_cap_ms);
  int64_t wait_ms = std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(base) *
                              rng->Uniform(0.5, 1.5)));
  if (deadline_ms > 0) {
    const int64_t remaining = RemainingMs(start_us, deadline_ms);
    if (remaining <= 0) return false;
    wait_ms = std::min(wait_ms, remaining);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
  return true;
}

// ---- endpoint registry ----

Status ClusterClient::AddEndpoint(std::string name, Dvms* engine) {
  if (engine == nullptr) {
    return Status::InvalidArgument("cluster: AddEndpoint with null engine");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ep : endpoints_) {
    if (ep->name == name) {
      return Status::AlreadyExists("cluster: endpoint '" + name +
                                   "' already registered");
    }
  }
  auto ep = std::make_unique<Endpoint>();
  ep->name = std::move(name);
  ep->engine = engine;
  endpoints_.push_back(std::move(ep));
  return Status::OK();
}

Status ClusterClient::DetachEndpoint(const std::string& name) {
  std::unique_lock<std::mutex> lock(mu_);
  for (auto& up : endpoints_) {
    if (up->name != name) continue;
    Endpoint* ep = up.get();
    ep->engine = nullptr;
    // Drain: once inflight calls complete, no code path touches the
    // engine pointer again, so the caller may destroy the engine.
    drain_cv_.wait(lock, [ep] { return ep->inflight == 0; });
    return Status::OK();
  }
  return Status::NotFound("cluster: unknown endpoint '" + name + "'");
}

void ClusterClient::CondemnEndpoint(Endpoint* ep) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (ep->engine == nullptr) return;  // already detached or condemned
    ep->engine = nullptr;
    drain_cv_.wait(lock, [ep] { return ep->inflight == 0; });
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.condemned_endpoints;
}

Status ClusterClient::ReattachEndpoint(const std::string& name, Dvms* engine) {
  if (engine == nullptr) {
    return Status::InvalidArgument("cluster: ReattachEndpoint with null engine");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& up : endpoints_) {
    if (up->name != name) continue;
    if (up->engine != nullptr) {
      return Status::InvalidArgument("cluster: endpoint '" + name +
                                     "' is still attached");
    }
    up->engine = engine;
    up->breaker = BreakerState::kClosed;
    up->consecutive_failures = 0;
    up->probe_inflight = false;
    return Status::OK();
  }
  return Status::NotFound("cluster: unknown endpoint '" + name + "'");
}

// ---- circuit breaker ----

bool ClusterClient::BreakerAdmits(Endpoint* ep, int64_t now_us) {
  switch (ep->breaker) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now_us - ep->breaker_opened_us <
          options_.breaker_cooldown_ms * 1000) {
        return false;
      }
      ep->breaker = BreakerState::kHalfOpen;
      ep->probe_inflight = false;
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      return !ep->probe_inflight;
  }
  return false;
}

void ClusterClient::OnEndpointSuccess(Endpoint* ep) {
  bool recovered = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ep->consecutive_failures = 0;
    ep->probe_inflight = false;
    if (ep->breaker != BreakerState::kClosed) {
      ep->breaker = BreakerState::kClosed;
      ++ep->breaker_recoveries;
      recovered = true;
    }
  }
  if (recovered) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.breaker_recoveries;
  }
}

void ClusterClient::OnEndpointFailure(Endpoint* ep) {
  bool tripped = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++ep->failures;
    ++ep->consecutive_failures;
    if (ep->breaker == BreakerState::kHalfOpen) {
      // The probe failed: straight back to open, fresh cooldown.
      ep->breaker = BreakerState::kOpen;
      ep->breaker_opened_us = NowUs();
      ep->probe_inflight = false;
    } else if (ep->breaker == BreakerState::kClosed &&
               ep->consecutive_failures >= options_.breaker_failures) {
      ep->breaker = BreakerState::kOpen;
      ep->breaker_opened_us = NowUs();
      ++ep->breaker_trips;
      tripped = true;
    }
  }
  if (tripped) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.breaker_trips;
  }
}

// ---- routing ----

ClusterClient::Target ClusterClient::PickReadEndpoint(const Endpoint* exclude) {
  Target out;
  const uint64_t acked = acked_lsn_.load(std::memory_order_relaxed);
  const uint64_t bound =
      static_cast<uint64_t>(options_.staleness_bound_frames);
  const int64_t now = NowUs();
  uint64_t skips = 0;
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Endpoint*> replicas;
  std::vector<uint64_t> replica_lsns;
  Endpoint* primary = nullptr;
  for (auto& up : endpoints_) {
    Endpoint* ep = up.get();
    if (ep == exclude || ep->engine == nullptr) continue;
    if (!BreakerAdmits(ep, now)) continue;
    if (ep->engine->is_replica()) {
      // replication_stats takes only the engine's leaf repl_mu_, safe
      // under our mu_. replica_lsn is a conservative lower bound on the
      // published snapshot (the apply path publishes before advancing it).
      const Dvms::ReplicationStats rs = ep->engine->replication_stats();
      if (rs.stale || acked > rs.replica_lsn + bound) {
        ++ep->staleness_skips;
        ++skips;
        continue;
      }
      replicas.push_back(ep);
      replica_lsns.push_back(rs.replica_lsn);
    } else {
      primary = ep;
    }
  }
  if (skips != 0) {
    std::lock_guard<std::mutex> slock(stats_mu_);
    stats_.staleness_skips += skips;
  }
  Endpoint* chosen = nullptr;
  if (!replicas.empty()) {
    const size_t idx = rr_++ % replicas.size();
    chosen = replicas[idx];
    out.serve_lsn = replica_lsns[idx];
    out.is_primary = false;
  } else if (primary != nullptr) {
    chosen = primary;
    out.serve_lsn = acked;  // the primary serves everything it acked
    out.is_primary = true;
  }
  if (chosen == nullptr) return out;
  if (chosen->breaker == BreakerState::kHalfOpen) {
    chosen->probe_inflight = true;
    ++chosen->half_open_probes;
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.breaker_half_open_probes;
  }
  ++chosen->inflight;
  out.ep = chosen;
  out.engine = chosen->engine;
  out.acked_at_pick = acked;
  return out;
}

ClusterClient::Target ClusterClient::AcquirePrimary() {
  Target out;
  const uint64_t acked = acked_lsn_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& up : endpoints_) {
    Endpoint* ep = up.get();
    if (ep->engine == nullptr || ep->engine->is_replica()) continue;
    ++ep->inflight;
    out.ep = ep;
    out.engine = ep->engine;
    out.is_primary = true;
    out.serve_lsn = acked;
    out.acked_at_pick = acked;
    return out;
  }
  return out;
}

void ClusterClient::Release(Target* target) {
  if (target->ep == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    --target->ep->inflight;
  }
  drain_cv_.notify_all();
  target->engine = nullptr;
}

// ---- reads ----

Result<Table> ClusterClient::RunReadAttempt(
    Target target, const std::string& sql, int64_t attempt_deadline_ms,
    std::shared_ptr<std::atomic<bool>> cancel) {
  const int64_t t0 = NowUs();
  Result<Table> r = [&]() -> Result<Table> {
    Session::Options sopts;
    sopts.deadline_ms = attempt_deadline_ms;
    sopts.cancel_flag = std::move(cancel);
    // The session must be destroyed (Close touches the engine) before the
    // inflight pin is released; the lambda scopes it.
    Session session(target.engine, sopts);
    return session.Query(sql);
  }();
  Release(&target);
  if (r.ok()) {
    RecordReadLatency(NowUs() - t0);
    OnEndpointSuccess(target.ep);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++target.ep->reads;
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.reads_routed;
    if (target.is_primary) {
      ++stats_.reads_primary;
    } else {
      ++stats_.reads_replica;
      // Post-read verification of the bounded-staleness contract: the
      // endpoint's LSN witnessed at pick time must be within the bound of
      // the acked LSN witnessed at the same instant. The pick already
      // enforced this, so violations stay zero unless routing has a bug —
      // which is exactly what the chaos harness asserts.
      ++stats_.staleness_checks;
      const uint64_t bound =
          static_cast<uint64_t>(options_.staleness_bound_frames);
      if (target.acked_at_pick > target.serve_lsn + bound) {
        ++stats_.staleness_violations;
      }
    }
  } else if (r.status().code() != StatusCode::kCancelled &&
             Classify(r.status()) == ErrClass::kRetryEndpoint) {
    OnEndpointFailure(target.ep);
  }
  return r;
}

Result<Table> ClusterClient::Query(const std::string& select_sql) {
  return Query(select_sql, nullptr);
}

Result<Table> ClusterClient::Query(const std::string& select_sql,
                                   RequestContext* ctx) {
  // The client-local dvms_cluster relation is served without touching any
  // endpoint. A cheap case-insensitive scan for the literal relation name
  // gates the parse: routed reads skip it entirely — the endpoint session
  // parses anyway, and a syntax error classifies as terminal there, so it
  // still never consumes retry budget — keeping the healthy-path router
  // overhead to the pick + stats, not a second parse per read.
  if (ContainsCaseInsensitive(select_sql, kClusterRelation)) {
    DVMS_ASSIGN_OR_RETURN(QueryRequest req, ParseQuery(select_sql));
    std::vector<std::string> from_names;
    CollectFromNames(req.select, &from_names);
    bool any_cluster = false;
    bool all_cluster = !from_names.empty();
    for (const std::string& name : from_names) {
      if (IdentEquals(name, kClusterRelation)) {
        any_cluster = true;
      } else {
        all_cluster = false;
      }
    }
    if (any_cluster) {
      if (!all_cluster) {
        return Status::Unsupported(
            "cluster: dvms_cluster is client-local and cannot be joined with "
            "engine relations; query it standalone");
      }
      return LocalClusterQuery(req);
    }
  }

  const int64_t deadline_ms = (ctx != nullptr && ctx->deadline_ms >= 0)
                                  ? ctx->deadline_ms
                                  : options_.deadline_ms;
  const int64_t start_us = NowUs();
  Rng rng = [this] {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return rng_.Fork();
  }();
  Status last = Status::Unavailable("cluster: no endpoint attempted");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (ctx != nullptr && ctx->cancelled()) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.cancelled;
      return Status::Cancelled("cluster: request cancelled");
    }
    const int64_t remaining = RemainingMs(start_us, deadline_ms);
    if (remaining <= 0) break;  // budget exhausted
    Target target = PickReadEndpoint(nullptr);
    if (target.ep == nullptr) {
      last = Status::Unavailable(
          "cluster: no endpoint eligible for reads (detached, breaker open, "
          "or beyond the staleness bound)");
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.read_retries;
      }
      if (!BackoffSleep(&rng, attempt, start_us, deadline_ms)) break;
      continue;
    }
    const int64_t attempt_deadline =
        deadline_ms > 0 ? std::max<int64_t>(remaining, 1) : -1;
    const int64_t cutoff_us = HedgeCutoffUs();
    Result<Table> r =
        cutoff_us >= 0
            ? HedgedRead(target, select_sql, attempt_deadline, cutoff_us,
                         start_us, deadline_ms)
            : RunReadAttempt(target, select_sql, attempt_deadline,
                             ctx != nullptr ? ctx->cancel : nullptr);
    if (r.ok()) return r;
    last = r.status();
    if (last.code() == StatusCode::kCancelled) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.cancelled;
      return last;
    }
    if (last.code() == StatusCode::kDeadlineExceeded) break;
    if (Classify(last) == ErrClass::kTerminal) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.read_failures;
      return last;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.read_retries;
    }
    if (!BackoffSleep(&rng, attempt, start_us, deadline_ms)) break;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.read_failures;
  if (RemainingMs(start_us, deadline_ms) <= 0 ||
      last.code() == StatusCode::kDeadlineExceeded) {
    ++stats_.deadline_exhausted;
    return Status::DeadlineExceeded("cluster: read budget exhausted; last: " +
                                    last.message());
  }
  return last;
}

// ---- hedging ----

void ClusterClient::RecordReadLatency(int64_t us) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  latency_ring_[latency_next_] = us;
  latency_next_ = (latency_next_ + 1) % latency_ring_.size();
  latency_count_ = std::min(latency_count_ + 1, latency_ring_.size());
}

int64_t ClusterClient::HedgeCutoffUs() {
  if (options_.hedge_percentile <= 0) return -1;
  std::vector<int64_t> window;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (latency_count_ < options_.hedge_min_samples) return -1;
    window.assign(latency_ring_.begin(),
                  latency_ring_.begin() + latency_count_);
  }
  size_t nth = static_cast<size_t>(static_cast<double>(window.size()) *
                                   options_.hedge_percentile / 100.0);
  nth = std::min(nth, window.size() - 1);
  std::nth_element(window.begin(), window.begin() + nth, window.end());
  // Floor the cutoff so microsecond-fast reads don't hedge pure noise.
  return std::max<int64_t>(window[nth], 100);
}

Result<Table> ClusterClient::HedgedRead(Target target, const std::string& sql,
                                        int64_t attempt_deadline_ms,
                                        int64_t cutoff_us, int64_t start_us,
                                        int64_t deadline_ms) {
  auto state = std::make_shared<HedgeState>();
  state->sql = sql;
  state->attempt_deadline_ms = attempt_deadline_ms;
  state->exclude = target.ep;
  {
    std::lock_guard<std::mutex> lock(hedge_mu_);
    hedge_jobs_.push_back(HedgeJob{NowUs() + cutoff_us, state});
  }
  hedge_cv_.notify_all();
  Result<Table> mine =
      RunReadAttempt(target, sql, attempt_deadline_ms, state->inline_cancel);
  std::unique_lock<std::mutex> slock(state->mu);
  if (mine.ok()) {
    if (!state->done) {
      state->done = true;
      state->winner = 0;
      state->backup_cancel->store(true, std::memory_order_relaxed);
      state->cv.notify_all();
    }
    return mine;
  }
  // The inline attempt failed (possibly cancelled BY a winning backup).
  if (state->done && state->winner == 1) return state->winner_result;
  if (!state->fired) {
    // Cutoff not reached yet: poison the job so the manager skips it, and
    // let the outer retry loop handle the failure.
    state->done = true;
    state->winner = 0;
    return mine;
  }
  // A backup is in flight — it may still save this attempt. Wait for it,
  // bounded by the remaining budget when one exists.
  if (deadline_ms > 0) {
    const int64_t remaining = RemainingMs(start_us, deadline_ms);
    if (remaining > 0) {
      state->cv.wait_for(slock, std::chrono::milliseconds(remaining), [&] {
        return state->backup_finished || state->done;
      });
    }
  } else {
    state->cv.wait(slock,
                   [&] { return state->backup_finished || state->done; });
  }
  if (state->done && state->winner == 1) return state->winner_result;
  state->done = true;  // nobody won; stop late arrivals from lingering
  state->winner = 0;
  return mine;
}

void ClusterClient::HedgeLoop() {
  for (;;) {
    std::shared_ptr<HedgeState> job;
    {
      std::unique_lock<std::mutex> lock(hedge_mu_);
      hedge_cv_.wait(lock,
                     [this] { return hedge_stop_ || !hedge_jobs_.empty(); });
      if (hedge_stop_) return;
      auto it = std::min_element(hedge_jobs_.begin(), hedge_jobs_.end(),
                                 [](const HedgeJob& a, const HedgeJob& b) {
                                   return a.fire_at_us < b.fire_at_us;
                                 });
      const int64_t now = NowUs();
      if (it->fire_at_us > now) {
        hedge_cv_.wait_for(
            lock, std::chrono::microseconds(it->fire_at_us - now));
        continue;  // re-evaluate: stop flag, newer jobs, clock
      }
      job = it->state;
      hedge_jobs_.erase(it);
    }
    {
      std::lock_guard<std::mutex> slock(job->mu);
      if (job->done) continue;  // inline attempt settled before the cutoff
      job->fired = true;
    }
    Target backup = PickReadEndpoint(job->exclude);
    if (backup.ep == nullptr) {
      std::lock_guard<std::mutex> slock(job->mu);
      job->backup_finished = true;
      job->cv.notify_all();
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.hedges_launched;
    }
    Result<Table> r = RunReadAttempt(backup, job->sql,
                                     job->attempt_deadline_ms,
                                     job->backup_cancel);
    bool won = false;
    {
      std::lock_guard<std::mutex> slock(job->mu);
      job->backup_finished = true;
      if (r.ok() && !job->done) {
        job->done = true;
        job->winner = 1;
        job->winner_result = std::move(r);
        job->inline_cancel->store(true, std::memory_order_relaxed);
        won = true;
      }
      job->cv.notify_all();
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (won) {
      ++stats_.hedges_won;
    } else {
      ++stats_.hedges_lost;
      if (!r.ok() && r.status().code() != StatusCode::kCancelled) {
        ++stats_.hedge_failures;
      }
    }
  }
}

void ClusterClient::StopHedgeThread() {
  {
    std::lock_guard<std::mutex> lock(hedge_mu_);
    hedge_stop_ = true;
  }
  hedge_cv_.notify_all();
  if (hedge_thread_.joinable()) hedge_thread_.join();
}

// ---- writes ----

Status ClusterClient::Write(const char* what,
                            const std::function<Status(Dvms&)>& op) {
  std::lock_guard<std::mutex> wlock(write_mu_);
  const int64_t deadline_ms = options_.deadline_ms;
  const int64_t start_us = NowUs();
  Rng rng = [this] {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return rng_.Fork();
  }();
  Status last = Status::Unavailable("cluster: no write attempted");
  // True once `op` has run on some primary: from then on a frame beyond
  // the acked LSN after a failover is THIS request's commit surviving the
  // primary's death, and must not be re-executed.
  bool attempted = false;
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    const int64_t remaining = RemainingMs(start_us, deadline_ms);
    if (remaining <= 0) break;
    Target target = AcquirePrimary();
    if (target.ep == nullptr) {
      // Primary lost: promote the most caught-up attached replica.
      Status fo = TryFailover(std::string("write '") + what +
                              "' found no attached primary");
      if (!fo.ok()) {
        last = fo;
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.write_retries;
        }
        if (!BackoffSleep(&rng, attempt, start_us, deadline_ms)) break;
        continue;
      }
      Target np = AcquirePrimary();
      if (np.ep != nullptr) {
        const uint64_t promoted_lsn = np.engine->wal_lsn();
        Release(&np);
        const uint64_t acked = acked_lsn_.load(std::memory_order_relaxed);
        if (promoted_lsn > acked) {
          // The promoted log holds frames never acknowledged to a caller.
          // Writes are serialized through this client, so with `attempted`
          // those frames end in this request's own commit: acknowledge it
          // instead of executing it twice (idempotent replay demotion).
          acked_lsn_.store(promoted_lsn, std::memory_order_relaxed);
          if (attempted) {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.write_replays_suppressed;
            ++stats_.writes_routed;
            return Status::OK();
          }
        } else if (attempted) {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.write_replays;
        }
      }
      continue;
    }
    attempted = true;
    Status st = op(*target.engine);
    if (st.ok()) {
      const uint64_t lsn = target.engine->wal_lsn();
      Release(&target);
      OnEndpointSuccess(target.ep);
      // max(): absorbs frames the client did not route (tests writing
      // out-of-band) so the staleness anchor only moves forward.
      uint64_t prev = acked_lsn_.load(std::memory_order_relaxed);
      if (lsn > prev) acked_lsn_.store(lsn, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++target.ep->writes;
      }
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.writes_routed;
      return Status::OK();
    }
    const Status endpoint_health = target.engine->recovery_status();
    Release(&target);
    last = st;
    // Poisoning: the op applied in memory but its frame never reached the
    // log (Dvms fail-stops durability — see PoisonDurability). The
    // engine's state is now a fork the durable log never saw: retrying
    // here would commit ops the fleet cannot replicate, and reads would
    // observe state that dies with the process. Condemn the endpoint and
    // fail over; the sealed log holds exactly the acked prefix, so the
    // promoted replica re-executes this attempt exactly once. `attempted`
    // is deliberately left alone — the poisoned frame was never appended,
    // so replay demotion cannot trigger on it, while a frame from an
    // earlier genuinely-appended attempt is still suppressed correctly.
    if (!endpoint_health.ok()) {
      CondemnEndpoint(target.ep);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.write_retries;
      }
      continue;
    }
    const ErrClass cls = Classify(st);
    if (cls == ErrClass::kTerminal) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.write_failures;
      return st;
    }
    if (cls == ErrClass::kRetryEndpoint) OnEndpointFailure(target.ep);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.write_retries;
      if (st.code() == StatusCode::kReadOnlyReplica) ++stats_.readonly_races;
    }
    if (!BackoffSleep(&rng, attempt, start_us, deadline_ms)) break;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.write_failures;
  if (RemainingMs(start_us, deadline_ms) <= 0) {
    ++stats_.deadline_exhausted;
    return Status::DeadlineExceeded(std::string("cluster: write '") + what +
                                    "' budget exhausted; last: " +
                                    last.message());
  }
  return last;
}

Status ClusterClient::TryFailover(const std::string& reason) {
  // write_mu_ is held: failover is single-shot, and no other write can
  // race the promotion or the acked-LSN reconciliation.
  struct Candidate {
    Endpoint* ep;
    uint64_t lsn;
    bool stale;
  };
  std::vector<Candidate> candidates;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& up : endpoints_) {
      Endpoint* ep = up.get();
      if (ep->engine == nullptr) continue;
      if (!ep->engine->is_replica()) return Status::OK();  // primary is back
      const Dvms::ReplicationStats rs = ep->engine->replication_stats();
      candidates.push_back(Candidate{ep, rs.replica_lsn, rs.stale});
    }
  }
  // Most caught-up first; a stale replica (tailing already failing) is the
  // last resort at equal LSN.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     if (a.lsn != b.lsn) return a.lsn > b.lsn;
                     return !a.stale && b.stale;
                   });
  if (candidates.empty()) {
    return Status::Unavailable("cluster failover (" + reason +
                               "): no attached replica to promote");
  }
  const int64_t t0 = NowUs();
  Status last = Status::Unavailable("cluster failover: no candidate tried");
  for (const Candidate& cand : candidates) {
    Dvms* engine = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (cand.ep->engine == nullptr) continue;  // detached meanwhile
      engine = cand.ep->engine;
      ++cand.ep->inflight;
    }
    Status st = engine->Promote();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --cand.ep->inflight;
    }
    drain_cv_.notify_all();
    if (st.ok()) {
      OnEndpointSuccess(cand.ep);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.failovers;
      stats_.last_failover_us = NowUs() - t0;
      return Status::OK();
    }
    last = st;
    OnEndpointFailure(cand.ep);
  }
  return Status::Unavailable("cluster failover (" + reason +
                             ") could not promote any replica; last: " +
                             last.message());
}

// ---- typed write conveniences ----

Status ClusterClient::CreateBaseTable(const std::string& name, Schema schema) {
  return Write("CreateBaseTable", [&](Dvms& engine) {
    return engine.CreateBaseTable(name, schema);
  });
}

Status ClusterClient::Insert(const std::string& name, std::vector<Row> rows) {
  return Write("Insert", [&](Dvms& engine) {
    return engine.Insert(name, rows);  // copied per attempt, retries intact
  });
}

Status ClusterClient::LoadProgram(const std::string& source) {
  return Write("LoadProgram",
               [&](Dvms& engine) { return engine.LoadProgram(source); });
}

Status ClusterClient::Execute(const Statement& statement) {
  return Write("Execute",
               [&](Dvms& engine) { return engine.Execute(statement); });
}

Status ClusterClient::PushEvent(const InputEvent& event) {
  return Write("PushEvent",
               [&](Dvms& engine) { return engine.PushEvent(event); });
}

Status ClusterClient::CreateScale(const std::string& name, double domain_min,
                                  double domain_max, double range_min,
                                  double range_max) {
  return Write("CreateScale", [&](Dvms& engine) {
    return engine.CreateScale(name, domain_min, domain_max, range_min,
                              range_max);
  });
}

// ---- observability ----

Result<std::string> ClusterClient::PrimaryName() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ep : endpoints_) {
    if (ep->engine != nullptr && !ep->engine->is_replica()) return ep->name;
  }
  return Status::Unavailable("cluster: no attached primary");
}

ClusterStats ClusterClient::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  ClusterStats out = stats_;
  out.acked_lsn = acked_lsn_.load(std::memory_order_relaxed);
  return out;
}

std::vector<EndpointHealth> ClusterClient::endpoint_health() const {
  const uint64_t acked = acked_lsn_.load(std::memory_order_relaxed);
  std::vector<EndpointHealth> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(endpoints_.size());
  for (const auto& up : endpoints_) {
    const Endpoint* ep = up.get();
    EndpointHealth h;
    h.name = ep->name;
    h.attached = ep->engine != nullptr;
    h.breaker = ep->breaker;
    h.consecutive_failures = ep->consecutive_failures;
    h.reads = ep->reads;
    h.writes = ep->writes;
    h.failures = ep->failures;
    h.staleness_skips = ep->staleness_skips;
    h.breaker_trips = ep->breaker_trips;
    h.half_open_probes = ep->half_open_probes;
    h.breaker_recoveries = ep->breaker_recoveries;
    if (ep->engine != nullptr) {
      h.replica = ep->engine->is_replica();
      h.degraded = ep->engine->storage_degraded();
      if (h.replica) {
        const Dvms::ReplicationStats rs = ep->engine->replication_stats();
        h.lsn = rs.replica_lsn;
        h.stale = rs.stale;
      } else {
        // The acked LSN IS the primary's position from the client's view;
        // wal_lsn() would contend with the engine write mutex.
        h.lsn = acked;
      }
      h.lag_behind_acked = acked > h.lsn ? acked - h.lsn : 0;
    }
    out.push_back(std::move(h));
  }
  return out;
}

Table ClusterClient::BuildClusterTable() const {
  Table out(Schema({{"endpoint", ValueType::kString},
                    {"name", ValueType::kString},
                    {"value", ValueType::kInt64}}));
  auto row = [&out](const std::string& endpoint, const char* name,
                    uint64_t value) {
    out.AppendUnchecked({Value::String(endpoint), Value::String(name),
                         Value::Int(static_cast<int64_t>(value))});
  };
  const ClusterStats s = stats();
  const std::vector<EndpointHealth> eps = endpoint_health();
  row("", "endpoints", eps.size());
  row("", "acked_lsn", s.acked_lsn);
  row("", "reads_routed", s.reads_routed);
  row("", "reads_primary", s.reads_primary);
  row("", "reads_replica", s.reads_replica);
  row("", "read_retries", s.read_retries);
  row("", "read_failures", s.read_failures);
  row("", "writes_routed", s.writes_routed);
  row("", "write_retries", s.write_retries);
  row("", "write_failures", s.write_failures);
  row("", "readonly_races", s.readonly_races);
  row("", "write_replays", s.write_replays);
  row("", "write_replays_suppressed", s.write_replays_suppressed);
  row("", "hedges_launched", s.hedges_launched);
  row("", "hedges_won", s.hedges_won);
  row("", "hedges_lost", s.hedges_lost);
  row("", "hedge_failures", s.hedge_failures);
  row("", "failovers", s.failovers);
  row("", "condemned_endpoints", s.condemned_endpoints);
  row("", "last_failover_us", static_cast<uint64_t>(s.last_failover_us));
  row("", "staleness_checks", s.staleness_checks);
  row("", "staleness_skips", s.staleness_skips);
  row("", "staleness_violations", s.staleness_violations);
  row("", "breaker_trips", s.breaker_trips);
  row("", "breaker_recoveries", s.breaker_recoveries);
  row("", "breaker_half_open_probes", s.breaker_half_open_probes);
  row("", "deadline_exhausted", s.deadline_exhausted);
  row("", "cancelled", s.cancelled);
  for (const EndpointHealth& h : eps) {
    row(h.name, "attached", h.attached ? 1 : 0);
    row(h.name, "replica", h.replica ? 1 : 0);
    row(h.name, "stale", h.stale ? 1 : 0);
    row(h.name, "degraded", h.degraded ? 1 : 0);
    row(h.name, "breaker_state", static_cast<uint64_t>(h.breaker));
    row(h.name, "consecutive_failures",
        static_cast<uint64_t>(h.consecutive_failures));
    row(h.name, "lsn", h.lsn);
    row(h.name, "lag_behind_acked", h.lag_behind_acked);
    row(h.name, "reads", h.reads);
    row(h.name, "writes", h.writes);
    row(h.name, "failures", h.failures);
    row(h.name, "staleness_skips", h.staleness_skips);
    row(h.name, "breaker_trips", h.breaker_trips);
    row(h.name, "half_open_probes", h.half_open_probes);
    row(h.name, "breaker_recoveries", h.breaker_recoveries);
  }
  return out;
}

Result<Table> ClusterClient::LocalClusterQuery(const QueryRequest& req) {
  if (req.explain) {
    return Status::Unsupported(
        "cluster: EXPLAIN over dvms_cluster is not supported");
  }
  // dvms_cluster is client-local state, not engine state: execute against
  // an empty base view with the freshly built table overlaid, reusing the
  // engine's own planner/binder/executor stack.
  OverlaySnapshotView overlay(EmptyBaseView());
  overlay.AddOverlay(kClusterRelation, BuildClusterTable());
  Planner planner(&overlay);
  DVMS_ASSIGN_OR_RETURN(PlanPtr plan, planner.PlanSelect(req.select));
  Binder binder(&overlay, &udfs_);
  DVMS_RETURN_IF_ERROR(binder.Bind(plan.get()));
  Executor exec(static_cast<const RelationSource*>(&overlay), &udfs_);
  DVMS_ASSIGN_OR_RETURN(std::unique_ptr<NodeResult> result,
                        exec.Execute(*plan));
  return std::move(result->table);
}

}  // namespace cluster
}  // namespace dvms
