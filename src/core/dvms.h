#ifndef DVMS_CORE_DVMS_H_
#define DVMS_CORE_DVMS_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/fault.h"
#include "common/thread_pool.h"
#include "concurrency/snapshot.h"
#include "durability/log_record.h"
#include "durability/manager.h"
#include "durability/tailer.h"
#include "durability/snapshot.h"
#include "events/interaction.h"
#include "events/recognizer.h"
#include "expr/udf_registry.h"
#include "governor/governor.h"
#include "obs/trace.h"
#include "parser/ast.h"
#include "provenance/trace.h"
#include "query/maintenance.h"
#include "query/optimizer.h"
#include "render/pixels.h"
#include "render/rasterizer.h"
#include "render/scale.h"
#include "storage/catalog.h"
#include "streaming/scheduler.h"

namespace dvms {

class Session;

/// The Data Visualization Management System engine of Figure 3.
///
/// The Interaction Management engine translates DeVIL programs into a
/// visualization workflow (views + event patterns + traces), the Event
/// Recognizer matches low-level input against the compiled state machines,
/// the Executor recomputes affected views in dependency order, and marks
/// relations are rasterized into the pixels relation P after every
/// maintenance round.
class Dvms {
 public:
  struct Options {
    size_t canvas_width = 400;
    size_t canvas_height = 300;
    /// Eager row-level lineage on every view recompute (§3.1). Enables
    /// TraceEngine::Mode::kEager; lazy traces work either way.
    bool capture_lineage = false;
    /// Re-render marks views automatically after each event / insert.
    bool auto_render = true;
    /// Enable the Online Optimizer: crossfilter-shaped views refresh from
    /// precomputed marginal cubes instead of fact-table rescans. Ignored
    /// (off) while capture_lineage is set.
    bool enable_online_optimizer = true;
    /// Intra-query parallelism for view recomputation and rasterization.
    /// 0 = process default (DVMS_THREADS env var, else hardware
    /// concurrency) on the shared global pool; k > 0 = a dedicated pool of
    /// k threads owned by this engine (1 = fully serial). Query results
    /// and rendered pixels are bit-identical at every setting.
    size_t num_threads = 0;
    /// All-or-nothing statement batches: every mutating entry point
    /// (PushEvent / Insert / Delete / CreateScale / Undo / Redo / Render)
    /// arms an undo log and rolls the engine back to a bit-identical
    /// pre-call state on any mid-batch error (including injected faults).
    /// Off reproduces the pre-rollback engine for overhead benchmarking.
    bool transactional_rollback = true;
    /// Fault-injection spec `<seed>:<rate>[:site,...]` installed as the
    /// process injector for this engine's lifetime. Empty = the DVMS_FAULTS
    /// environment variable (or no injection when that is unset). A
    /// malformed spec is rejected loudly (stderr warning, injection off).
    std::string fault_spec;
    /// Durability directory for the interaction log and snapshots. Empty =
    /// the DVMS_DATA_DIR environment variable, or no durability when that
    /// is also unset. On construction the engine recovers from whatever
    /// the directory holds (see recovery_status()); every committed
    /// mutation unit is then appended to the log. One engine per
    /// directory.
    std::string data_dir;
    /// When log appends reach disk: "always" (default), "batch" (group
    /// commit), or "off". Empty = the DVMS_WAL_FSYNC environment variable.
    std::string wal_fsync;
    /// Committed frames between automatic snapshots; 0 disables automatic
    /// snapshotting (Checkpoint() still works).
    size_t snapshot_interval = 64;
    /// Open as a read replica of the engine whose durability directory is
    /// this path: bootstrap from its newest snapshot + log suffix, then
    /// continuously tail its WAL, publishing a fresh snapshot epoch after
    /// each applied batch. All mutating entry points return
    /// kReadOnlyReplica; reads (Query / Session / GetTable / EXPLAIN) serve
    /// the last applied state. Empty = the DVMS_REPLICA_OF environment
    /// variable, or primary mode. A replica ignores data_dir (it never
    /// writes the log); Promote() takes ownership of this directory.
    std::string replica_of;
    /// Replica tail-poll cadence in milliseconds. 0 = the
    /// DVMS_REPLICA_POLL_MS environment variable, or 5.
    int64_t replica_poll_ms = 0;
    /// Consecutive failed polls before the replica reports itself stale in
    /// dvms_replication. Staleness is a degraded mode, not a stop: the
    /// replica keeps serving its last applied epoch and keeps retrying with
    /// capped exponential backoff. 0 = DVMS_REPLICA_RETRY_BUDGET, or 8.
    int64_t replica_retry_budget = 0;
    /// Seed for the tail-poll jitter (see durability/tailer.h PollCadence):
    /// each wait is the poll cadence scaled by a seeded uniform draw in
    /// [0.5, 1.5) so N replicas of one primary don't poll in lockstep.
    /// 0 = a per-engine derived seed (distinct per replica in a process);
    /// set explicitly for deterministic schedules in tests.
    uint64_t replica_jitter_seed = 0;
    /// Background integrity-scrub cadence in milliseconds: a low-priority
    /// thread periodically re-reads the sealed WAL segments and snapshots,
    /// re-validating every checksum, so latent disk corruption is found
    /// while an intact snapshot still covers it — not at the next restart.
    /// 0 = the DVMS_SCRUB_MS environment variable, or no background
    /// scrubbing (ScrubNow() works either way).
    int64_t scrub_ms = 0;
    /// Enables the process-wide observability layer (src/obs): tracing
    /// spans + named counters/histograms across executor, IVM, raster,
    /// events, streaming, durability, and the thread pool, queryable as
    /// the system relations dvms_metrics / dvms_spans. The DVMS_TRACE
    /// environment variable also enables it; with both unset the
    /// instrumentation sites cost one relaxed atomic load each.
    bool trace = false;
    /// Per-request deadline in milliseconds; a request still running after
    /// this aborts cooperatively (within one morsel of work), rolls back
    /// via the mutation-unit undo, and returns kDeadlineExceeded. 0 = the
    /// DVMS_DEADLINE_MS environment variable, or no deadline.
    int64_t deadline_ms = 0;
    /// Per-request transient-memory budget in bytes (scan/join/sort/hash
    /// scratch, IVM marginals, decoded mark ops, matcher slots). A request
    /// whose charges exceed it aborts with kResourceExhausted instead of
    /// growing toward an OOM kill. 0 = DVMS_MEM_BUDGET, or no budget.
    int64_t mem_budget = 0;
    /// Admission control: at most this many requests execute at once;
    /// excess arrivals wait up to queue_ms and are then shed with
    /// kResourceExhausted. 0 = DVMS_MAX_INFLIGHT, or unbounded.
    int max_inflight = 0;
    /// How long an arrival may wait for an in-flight slot before being
    /// shed. 0 = DVMS_QUEUE_MS, or shed immediately at capacity.
    int64_t queue_ms = 0;
    /// Concurrent snapshot-read slots (Session queries and read-only
    /// Query/EXPLAIN calls). Readers are accounted separately from the
    /// max_inflight mutation slots so dashboards polling dvms_metrics can
    /// never starve interactions. 0 = DVMS_MAX_READERS, or unbounded.
    int max_readers = 0;
    /// Injectable governor clock (microseconds, monotonic) so deadline
    /// tests are deterministic. nullptr = steady clock.
    QueryContext::Clock governor_clock;
  };

  Dvms() : Dvms(Options()) {}
  explicit Dvms(Options options);
  ~Dvms();
  Dvms(const Dvms&) = delete;
  Dvms& operator=(const Dvms&) = delete;

  // ---- Data loading ----

  Status CreateBaseTable(const std::string& name, Schema schema);

  /// Appends rows and propagates the change through dependent views.
  Status Insert(const std::string& name, std::vector<Row> rows);

  /// Deletes rows matching `predicate` (all rows when null) from a base
  /// relation and propagates — §2.1.3's "removing marks is natively
  /// supported by removing data". Returns the number of rows removed.
  Result<size_t> Delete(const std::string& name, const ExprPtr& predicate);

  /// Creates/updates a single-row scale relation (see render/scale.h).
  Status CreateScale(const std::string& name, double domain_min,
                     double domain_max, double range_min, double range_max);

  /// Current contents of any relation.
  Result<const Table*> GetTable(const std::string& name) const;

  // ---- Programs ----

  /// Parses and executes a DeVIL program, then recomputes all views,
  /// commits the initial visualization state, and renders.
  Status LoadProgram(const std::string& source);

  /// Executes one pre-parsed statement.
  Status Execute(const Statement& statement);

  /// Ad-hoc query evaluation (not registered as a view). Accepts
  /// `SELECT ...` as well as `EXPLAIN [ANALYZE] SELECT ...`; the EXPLAIN
  /// forms return the plan report table (per-operator rows/time/morsels
  /// under ANALYZE) instead of the query result. Queries over the system
  /// relations dvms_metrics / dvms_spans see a snapshot refreshed at the
  /// start of this call.
  Result<Table> Query(const std::string& select_sql);

  // ---- Interaction loop ----

  /// Feeds one low-level input event through the Event Recognizer, runs
  /// view maintenance, manages transaction boundaries, and re-renders.
  Status PushEvent(const InputEvent& event);

  Status PushEvents(const std::vector<InputEvent>& events);

  // ---- Rendering ----

  /// Rasterizes every marks view (in definition order) into the pixel
  /// buffer.
  Status Render();

  const PixelBuffer& pixels() const { return pixels_; }

  // ---- Introspection / subsystem access ----

  Catalog* catalog() { return &catalog_; }
  const Catalog& catalog() const { return catalog_; }
  UdfRegistry* udfs() { return &udfs_; }
  ViewMaintainer* maintainer() { return &maintainer_; }
  TraceEngine* traces() { return &traces_; }
  EventRecognizer* recognizer() { return &recognizer_; }
  const CrossfilterOptimizer& optimizer() const { return optimizer_; }

  /// Static-analysis warnings over all defined interactions (ambiguity
  /// detection, Figure 3's Static Analysis box).
  std::vector<std::string> AnalyzeInteractions() const;

  /// The paper's merge(I1, I2): sequentially composes two defined event
  /// patterns into a new one named `merged_name` (with alias renaming on
  /// collision), creating its compound-event table. The developer then
  /// writes views over the merged stream, optionally reading I1's
  /// relations (its merge-function contract).
  Status ComposeInteractions(const std::string& first,
                             const std::string& second,
                             const std::string& merged_name);

  // ---- Undo / redo (§2.1.3: supported by the versioning semantics) ----

  /// Steps the visualization back one committed interaction: base and
  /// event relations are restored to the previous committed version and
  /// all views recompute. Fails when history is exhausted.
  Status Undo();

  /// Steps forward again after Undo(). Fails at the newest state.
  Status Redo();

  bool CanUndo() const;
  bool CanRedo() const;

  // ---- Debugging (§3.1: expose workflow state for inspection) ----

  /// Human-readable listing of every relation: kind, cardinality, version
  /// depth, open transactions — plus defined patterns and trace relations.
  std::string DumpState() const;

  /// The bound plan and dependency lists of a view (the workflow's
  /// input-output dependencies).
  Result<std::string> ExplainView(const std::string& name) const;

  // ---- Durability ----

  /// Outcome of crash recovery run by the constructor when a data
  /// directory is configured. OK when durability is off, the directory was
  /// empty, or recovery restored and replayed cleanly. On failure the
  /// engine stays usable in memory but further logging is disabled
  /// (fail-stop — silent divergence between memory and disk is worse).
  /// Also reports a later runtime fail-stop: when a WAL append fails after
  /// the statement already mutated memory (and the entry point cannot roll
  /// that mutation back), logging shuts down the same way and the cause is
  /// recorded here.
  Status recovery_status() const;

  /// Log/snapshot/recovery counters; zero-valued when durability is off.
  DurabilityStats durability_stats() const;

  /// Flushes the log and writes a snapshot now. Errors when durability is
  /// off or the snapshot cannot be written (the log remains intact).
  Status Checkpoint();

  /// Forces batched group-commit frames to stable storage.
  Status FlushWal();

  /// Registers a stream scheduler whose delivery state rides along in
  /// snapshots. If recovery restored scheduler state, it is applied to
  /// `scheduler` here. Pass nullptr to detach. Not owned.
  void AttachScheduler(StreamScheduler* scheduler);

  /// Newest LSN acknowledged by the log (0 when durability is off). On a
  /// replica this is the newest LSN applied from the primary's log.
  uint64_t wal_lsn() const;

  // ---- Storage health (see DESIGN.md § Storage fault model) ----

  /// True while the engine is in degraded read-only mode: an out-of-space
  /// WAL append or snapshot write was observed, mutations are rejected
  /// with kStorageDegraded, snapshot reads keep serving the last published
  /// epoch, and a bounded-backoff space probe exits the mode once the disk
  /// frees up.
  bool storage_degraded() const {
    return storage_degraded_.load(std::memory_order_relaxed);
  }

  /// Degraded-mode and integrity-scrub counters, also exported as the
  /// dvms_storage system relation. All-zero when durability is off.
  struct StorageStats {
    bool degraded = false;
    uint64_t degraded_entries = 0;  // times degraded mode was entered
    uint64_t degraded_exits = 0;    // successful probe recoveries
    uint64_t space_probes = 0;      // probe attempts (incl. failures)
    uint64_t scrub_passes = 0;
    uint64_t scrub_segments_scanned = 0;
    uint64_t scrub_snapshots_scanned = 0;
    uint64_t scrub_corruptions = 0;   // checksum/format failures found
    uint64_t scrub_quarantined = 0;   // corrupt files set aside (renamed)
    uint64_t scrub_io_errors = 0;     // transient read failures (skipped)
    std::string degraded_reason;      // empty unless degraded
    std::string last_corruption;      // most recent scrub finding, if any
  };
  StorageStats storage_stats() const;

  /// Runs one synchronous integrity-scrub pass over the sealed WAL
  /// segments and snapshots (the same pass the DVMS_SCRUB_MS thread runs
  /// on a cadence). Errors when durability is off; corruption findings are
  /// reported through storage_stats(), not the return status.
  Status ScrubNow();

  // ---- Replication (see DESIGN.md § Replication & failover) ----

  /// True while this engine is a read replica (Options::replica_of).
  bool is_replica() const {
    return role_.load(std::memory_order_relaxed) == Role::kReplica;
  }

  /// Replica-side lag and tailing counters, also exported as the
  /// dvms_replication system relation. All-zero on a plain primary.
  struct ReplicationStats {
    bool replica = false;        // current role
    bool promoted = false;       // became primary via Promote()
    bool stale = false;          // poll failures exceeded the retry budget
    uint64_t replica_lsn = 0;    // newest LSN applied here
    uint64_t primary_lsn = 0;    // newest LSN observed on the primary's disk
    uint64_t lag_frames = 0;     // max(primary_lsn - replica_lsn, 0)
    uint64_t lag_bytes = 0;      // delivered-but-not-yet-applied bytes
    uint64_t batches_applied = 0;
    uint64_t frames_applied = 0;
    uint64_t polls = 0;
    uint64_t poll_errors = 0;    // transient tailing failures (retried)
    uint64_t torn_tail_retries = 0;
    uint64_t rotations = 0;      // segment boundaries drained across
    std::string last_error;      // most recent poll/apply failure, if any
  };
  ReplicationStats replication_stats() const;

  /// Failover: stops the tailer, runs standard crash recovery on the
  /// primary's directory (sealing any torn tail and taking ownership of
  /// it), applies whatever sealed suffix this replica had not yet seen,
  /// and re-opens writable. After OK the engine is a primary whose state
  /// is bit-identical to the clean committed prefix of the dead primary's
  /// log. Fails (and stays a read-only replica) when the engine is not a
  /// replica, the directory cannot be recovered, or the sealed log
  /// contradicts what was already applied here.
  Status Promote();

  /// Blocks until the replica has applied at least `lsn` or `timeout_ms`
  /// elapses; returns the newest applied LSN. For tests and benchmarks; a
  /// primary returns its wal_lsn() immediately.
  uint64_t WaitForReplicaLsn(uint64_t lsn, int64_t timeout_ms);

  // ---- Resource governance ----

  /// Raises the cancel flag observed by the in-flight request's next
  /// governor checkpoint (callable from any thread; takes no lock). The
  /// cancelled request rolls back all-or-nothing and returns kCancelled; a
  /// cancel raised while no request is running aborts the next one at its
  /// first checkpoint. No-op unless the governor is armed (a deadline or
  /// memory budget is configured).
  void RequestCancel();

  /// Abort / admission counters, also exported as the dvms_governor system
  /// relation and governor.* obs counters.
  struct GovernorStats {
    size_t deadline_aborts = 0;
    size_t cancel_aborts = 0;
    size_t mem_aborts = 0;      // memory-budget aborts
    uint64_t checkpoints = 0;   // cooperative checks across all requests
    int64_t peak_mem_bytes = 0; // largest per-request transient footprint
    int64_t admitted = 0;       // mutation slots granted
    int64_t rejected = 0;       // shed with kResourceExhausted at the gate
    // Reader-side accounting (snapshot reads never take mutation slots).
    int64_t readers_admitted = 0;
    int64_t readers_rejected = 0;
    // Snapshot-epoch lifecycle, for pinned-epoch leak checks.
    int64_t snapshot_epoch = 0;    // latest published epoch (0 = none yet)
    int64_t epochs_published = 0;
    int64_t epochs_retired = 0;    // published views since destroyed
    int64_t pinned_snapshots = 0;  // live pins (sessions + in-flight reads)
  };
  GovernorStats governor_stats() const;

  // ---- Concurrent snapshot reads ----

  /// Monotone epoch of the latest published engine snapshot: bumped at the
  /// end of every mutation unit that changed any relation, after the WAL
  /// append — readers can never observe an unpublished (or rolled-back)
  /// state. 0 before the first publish.
  uint64_t published_epoch() const { return snapshots_.current_epoch(); }

  struct Stats {
    size_t events_processed = 0;
    size_t transactions_started = 0;
    size_t transactions_committed = 0;
    size_t transactions_aborted = 0;
    size_t renders = 0;
    size_t trace_recomputes = 0;
    /// Statement batches that failed mid-flight and were rolled back to
    /// the pre-batch state (not restored by the rollback itself).
    size_t interactions_rolled_back = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  friend class Session;

  struct TraceDefEntry {
    std::string name;
    TraceStmt stmt;
    std::vector<std::string> deps;  // current-version trigger relations
  };

  /// Snapshot backing one mutation unit (an all-or-nothing statement
  /// batch). Everything here is cheap to capture: matcher states are small
  /// structs, the undo history holds shared_ptrs, and per-table data
  /// capture is lazy inside VersionedTable.
  struct UnitState {
    std::vector<std::string> relations;  // armed tables (names at begin)
    std::vector<PatternMatcher::SavedState> matchers;
    Stats stats;
    std::vector<std::unordered_map<std::string, TablePtr>> undo_history;
    size_t undo_cursor = 0;
    ViewMaintainer::LineageSnapshot lineage;
    bool render_entered = false;  // the framebuffer may have been touched
    /// Observability checkpoint: counters/spans recorded inside a unit
    /// that rolls back must not leak into dvms_metrics (mirrors `stats`).
    obs::SavedState obs_state;
  };

  /// Opens (or joins) a mutation unit; only the outermost call arms the
  /// undo log.
  void BeginMutationUnit();

  /// Closes the unit: on the outermost call, a non-OK `st` triggers a full
  /// rollback to the pre-unit state; OK disarms the undo log. Returns `st`.
  Status EndMutationUnit(Status st);

  /// Restores tables, matcher states, stats, undo history, view caches,
  /// and (by deterministic re-render) the framebuffer. Runs under
  /// FaultSuppressScope so injected faults cannot cascade into recovery.
  void RollbackMutationUnit();

  /// The Execute() statement switch, sans logging (Execute() logs the
  /// statement as one frame around it).
  Status ExecuteDispatch(const Statement& statement);

  // Bodies of the public mutating entry points, called with the lock held
  // and a mutation unit open.
  Status InsertLocked(const std::string& name, std::vector<Row> rows);
  Result<size_t> DeleteLocked(const std::string& name,
                              const ExprPtr& predicate);
  Status CreateScaleLocked(const std::string& name, double domain_min,
                           double domain_max, double range_min,
                           double range_max);
  Status PushEventLocked(const InputEvent& event);
  Status RenderLocked();
  Status UndoLocked();
  Status RedoLocked();

  /// Propagates relation changes: view maintenance, then trace relations,
  /// iterating until quiescent (bounded rounds).
  Status ProcessChanges(std::vector<std::string> changed);

  Status RecomputeTrace(const TraceDefEntry& entry);

  /// Commits every view relation (interaction boundary) and snapshots
  /// lineage for @vnow-1 provenance.
  Status CommitViews();

  // ---- Observability plumbing ----

  /// Refreshes the system relations referenced by `select` (dvms_metrics /
  /// dvms_spans), creating them lazily with RelationKind::kSystem. System
  /// relations are excluded from mutation-unit arming, interaction
  /// commits, and durability snapshots.
  Status SyncSystemRelationsLocked(const SelectStmt& select);

  /// EXPLAIN [ANALYZE]: plans (and under `analyze` executes) the select,
  /// returning the per-operator report table.
  Result<Table> ExplainLocked(const SelectStmt& select, bool analyze);

  /// Restores base/event relations from the undo history at the current
  /// cursor and recomputes everything downstream.
  Status RestoreToCursor();

  // ---- Resource-governance plumbing ----

  /// RAII admission at the front door, constructed BEFORE taking mu_ so a
  /// full engine sheds load instead of growing an unbounded mutex queue.
  /// Nested entry points (Execute -> Insert, recovery replay, rollback)
  /// skip the gate.
  class AdmissionTicket {
   public:
    /// Which accounting pool the request draws from: mutations take
    /// max_inflight slots, snapshot reads take max_readers slots.
    enum class Gate { kWriter, kReader };

    explicit AdmissionTicket(Dvms* dvms, Gate gate = Gate::kWriter);
    ~AdmissionTicket();
    AdmissionTicket(const AdmissionTicket&) = delete;
    AdmissionTicket& operator=(const AdmissionTicket&) = delete;
    /// kResourceExhausted when the request was shed; the caller returns it
    /// without touching engine state.
    const Status& status() const { return status_; }

   private:
    Dvms* dvms_;
    AdmissionGate* gate_ = nullptr;
    bool admitted_ = false;
    Status status_;
  };

  /// RAII request governance, constructed with mu_ held just after the
  /// lock: the outermost call on a thread arms a QueryContext (deadline /
  /// cancel flag / memory budget) process-wide. The destructor — which
  /// runs after EndMutationUnit's rollback but before the lock releases —
  /// folds the context's abort/checkpoint/peak-memory accounting into
  /// engine counters. Nested public calls join the outer request.
  class GovernedRequest {
   public:
    explicit GovernedRequest(Dvms* dvms);
    ~GovernedRequest();
    GovernedRequest(const GovernedRequest&) = delete;
    GovernedRequest& operator=(const GovernedRequest&) = delete;

   private:
    Dvms* dvms_;
    bool outermost_ = false;
    bool armed_ = false;
    QueryContext ctx_;
    QueryContext* prev_ = nullptr;
  };

  /// Resolves GovernorConfig from Options + environment and builds the
  /// admission gate.
  void InitGovernor();

  /// Snapshot of knobs + counters for the dvms_governor system relation.
  /// Safe without mu_ (immutable config, gate atomics, gov_mu_ for the
  /// fold counters) so concurrent session reads can build it too.
  Table BuildGovernorTable() const;

  // ---- Snapshot-read plumbing ----

  /// Publishes the catalog as an immutable snapshot epoch. Requires mu_;
  /// incremental (relations whose mutation epoch did not move are shared
  /// with the previous epoch) and a no-op when nothing changed — a rolled
  /// back unit restores every epoch, so aborts publish nothing.
  void PublishSnapshotLocked();

  /// RAII publish at the close of a public mutating entry point: the
  /// destructor runs after EndMutationUnit / LogCommitted but while mu_ is
  /// still held, on success and error paths alike. Only the outermost
  /// entry point publishes (nested calls see log_depth_ > 1), and replay
  /// publishes once at the end of recovery instead of per record.
  class SnapshotPublisher {
   public:
    explicit SnapshotPublisher(Dvms* dvms)
        : dvms_(dvms),
          active_(dvms->log_depth_ == 1 && !dvms->replaying_) {}
    ~SnapshotPublisher() {
      if (active_) dvms_->PublishSnapshotLocked();
    }
    SnapshotPublisher(const SnapshotPublisher&) = delete;
    SnapshotPublisher& operator=(const SnapshotPublisher&) = delete;

   private:
    Dvms* dvms_;
    bool active_;
  };

  /// The lock-free read path behind Session::Query: parse, admit through
  /// the reader gate, pin a snapshot epoch (the session-pinned epoch if
  /// set), overlay freshly built system relations, then plan/bind/execute
  /// entirely against immutable state. Never acquires mu_.
  Result<Table> SnapshotRead(Session* session, const std::string& select_sql);

  /// EXPLAIN [ANALYZE] report over an arbitrary resolver/source pair —
  /// shared by the locked path (live catalog) and snapshot reads.
  Result<Table> ExplainWith(const SchemaResolver& resolver,
                            const RelationSource& source,
                            const SelectStmt& select, bool analyze);

  // ---- Durability plumbing ----

  /// RAII depth marker for the public logged entry points. Public calls
  /// nest (Execute -> Insert, LoadProgram -> Execute), and only the
  /// outermost logged call appends a frame — the nested calls are implied
  /// by replaying it.
  class LogScope {
   public:
    explicit LogScope(Dvms* dvms) : dvms_(dvms) { ++dvms_->log_depth_; }
    ~LogScope() { --dvms_->log_depth_; }
    LogScope(const LogScope&) = delete;
    LogScope& operator=(const LogScope&) = delete;

   private:
    Dvms* dvms_;
  };

  /// Opens the durability directory and runs crash recovery: restore the
  /// newest valid snapshot, replay the log suffix through the normal
  /// executor, re-render. Sets recovery_status_; never throws or crashes.
  void InitDurability();

  /// Options::wal_fsync overlaid with DVMS_WAL_FSYNC; kAlways when unset.
  Result<WalFsyncMode> ResolveFsyncMode() const;

  // ---- Replication plumbing ----

  enum class Role { kPrimary, kReplica };

  /// kReadOnlyReplica unless this engine is a primary or the calling
  /// thread is the replica's own apply path. Checked at the top of every
  /// mutating entry point, before admission.
  Status CheckWritable(const char* op) const;

  /// Replica-mode constructor leg: bootstraps from the primary's newest
  /// snapshot + sealed log suffix (read-only — a missing or torn directory
  /// degrades to an empty start, never an error) and builds the tailer.
  /// The tail thread itself starts after the first snapshot publish.
  void InitReplica();

  /// The tail thread: poll → apply → publish, with capped exponential
  /// backoff on transient failures. Sustained failure marks the replica
  /// stale (still serving its last applied epoch); a pruned-away resume
  /// LSN or an apply failure is terminal for the thread.
  void TailLoop();

  /// Applies one polled batch under mu_ (suppressed like recovery replay),
  /// advances replica_lsn, and publishes a fresh epoch. False on an apply
  /// failure — the replica must not skip a frame, so the tailer stops.
  bool ApplyReplicaBatch(std::vector<WalFrame> frames);

  /// Signals and joins the tail thread. Safe to call twice; never holds
  /// mu_ (the tail thread takes mu_ to apply).
  void StopTailer();

  /// Copies tailer counters into repl_ and recomputes lag. repl_mu_ held.
  void SyncTailerStatsLocked();

  /// Snapshot of repl_ for the dvms_replication system relation. Takes
  /// only repl_mu_ (a leaf lock) so concurrent session reads can build it.
  Table BuildReplicationTable() const;

  Status RestoreAndReplay(RecoveredLog log);
  Status RestoreSnapshot(EngineSnapshot snapshot);

  /// Re-executes one logged operation through its public entry point.
  Status ApplyWalRecord(const WalRecord& record);

  /// True when the current call is the outermost logged entry point of a
  /// durable, non-replaying engine — i.e. LogCommitted() would append.
  /// Lets entry points skip building (copying) the record otherwise.
  bool ShouldLog() const {
    return durability_ != nullptr && !durability_poisoned_ && !replaying_ &&
           log_depth_ == 1;
  }

  /// Appends `record` to the interaction log if ShouldLog(). Entry points
  /// that can undo their mutation call it inside the mutation unit (or
  /// with a manual undo) so an append failure rolls the state back —
  /// memory never acknowledges a mutation the log lost. Entry points that
  /// cannot fully undo (Execute / LoadProgram / ComposeInteractions, whose
  /// DDL effects outlive a unit rollback) must PoisonDurability() on
  /// failure instead. May also write an automatic snapshot (soft-fail).
  Status LogCommitted(const WalRecord& record);

  /// Runtime fail-stop: memory holds a mutation the log lost and cannot be
  /// rolled back, so further logging is disabled and the cause recorded in
  /// recovery_status(). The in-memory engine stays usable; a restart
  /// recovers the last logged state.
  void PoisonDurability(const char* what, const Status& cause);

  EngineSnapshot BuildSnapshotLocked() const;
  Status WriteSnapshotLocked();

  // ---- Storage-health plumbing ----

  /// Enters degraded read-only mode (idempotent): records the reason,
  /// resets the probe backoff, and logs once per entry. Out-of-space is
  /// transient — unlike PoisonDurability, nothing was acknowledged and
  /// then lost, so the engine keeps its log and waits for space.
  void EnterDegraded(const char* what, const Status& cause);

  /// The degraded-mode gate: true when storage is writable (not degraded,
  /// or a space probe just succeeded and cleared the mode). Probes are
  /// rate-limited with bounded exponential backoff (1ms doubling to 1s) so
  /// a rejected-mutation storm cannot hammer a full disk. Const because
  /// CheckWritable is; all state lives behind storage_mu_ / atomics.
  bool StorageWritableOrProbe() const;

  /// One probe: write + fsync + unlink a small file in the durability
  /// directory through the active Env. storage_mu_ must be held.
  Status ProbeStorage() const;

  /// The DVMS_SCRUB_MS thread body: cv-waits the cadence, runs ScrubPass.
  void ScrubLoop();

  /// One integrity pass: briefly takes mu_ to capture the directory layout
  /// and active segment, then re-reads every sealed segment and snapshot
  /// without the lock. Corrupt sealed segments are quarantined (renamed
  /// *.quarantined) only when a valid snapshot already covers every LSN
  /// they hold; uncovered corruption fails loud (stderr + fail-stop via
  /// PoisonDurability — acknowledged history would not survive a restart).
  Status ScrubPass();

  /// Signals and joins the scrub thread. Safe to call twice.
  void StopScrubber();

  /// Snapshot of storage health for the dvms_storage system relation.
  /// Takes only storage_mu_ + atomics (no mu_) so concurrent session reads
  /// can build it too.
  Table BuildStorageTable() const;

  Options options_;
  /// Engine-owned pool when options_.num_threads > 0; otherwise the
  /// process-global pool is used.
  std::unique_ptr<ThreadPool> owned_pool_;
  /// Serializes the public mutating entry points (PushEvent / Insert /
  /// Delete / Query / ...) so concurrent interaction streams from multiple
  /// threads are safe. Recursive because statements execute through the
  /// same public surface. Note: pointers returned by GetTable()/pixels()
  /// are only stable while no other thread mutates the engine.
  mutable std::recursive_mutex mu_;
  UdfRegistry udfs_;
  Catalog catalog_;
  CrossfilterOptimizer optimizer_;
  ViewMaintainer maintainer_;
  EventRecognizer recognizer_;
  TraceEngine traces_;
  PixelBuffer pixels_;
  std::vector<TraceDefEntry> trace_defs_;
  std::vector<std::string> render_views_;
  Stats stats_;
  /// Committed snapshots of base/event relations, oldest first; the engine
  /// pushes one per interaction commit (capped).
  std::vector<std::unordered_map<std::string, TablePtr>> undo_history_;
  /// 0 = at the newest committed state; k = k interactions undone.
  size_t undo_cursor_ = 0;
  /// Mutation-unit nesting depth; unit_ is valid while > 0.
  size_t unit_depth_ = 0;
  UnitState unit_;
  /// Resolved governor knobs (Options overlaid with DVMS_DEADLINE_MS /
  /// DVMS_MEM_BUDGET / DVMS_MAX_INFLIGHT / DVMS_QUEUE_MS); immutable after
  /// construction.
  GovernorConfig governor_config_;
  /// True when requests run under a QueryContext (deadline or memory
  /// budget configured).
  bool governor_armed_ = false;
  /// Admission gate; null when max_inflight is unbounded.
  std::unique_ptr<AdmissionGate> admission_;
  /// Reader gate: always constructed (effectively unbounded when
  /// max_readers is 0) so reader admission/rejection accounting is exact.
  std::unique_ptr<AdmissionGate> read_admission_;
  /// Cancel flag shared into each request's QueryContext so
  /// RequestCancel() works lock-free from any thread.
  std::shared_ptr<std::atomic<bool>> cancel_flag_;
  /// Guards governor_stats_ alone (a leaf lock): the serialized writer
  /// folds request accounting under mu_ + gov_mu_, concurrent readers fold
  /// theirs under gov_mu_ only.
  mutable std::mutex gov_mu_;
  GovernorStats governor_stats_;
  /// Published immutable snapshot epochs for lock-free readers.
  SnapshotManager snapshots_;
  /// Times mu_ was taken, surfaced as the synthetic engine.write_lock row
  /// of dvms_metrics. A plain atomic (not an obs counter) so rollback's
  /// obs Save/Restore cannot rewind it and it works with obs disabled.
  mutable std::atomic<uint64_t> write_lock_acquisitions_{0};
  /// Injector built from Options::fault_spec (installed process-wide for
  /// this engine's lifetime).
  std::unique_ptr<FaultInjector> owned_injector_;
  FaultInjector* previous_injector_ = nullptr;
  /// Interaction log + snapshots; null when durability is off.
  std::unique_ptr<DurabilityManager> durability_;
  /// Set when recovery failed partway: the engine stays usable but no
  /// further frames are logged (fail-stop beats silent divergence).
  bool durability_poisoned_ = false;
  Status recovery_status_;
  /// Nesting depth of the logged public entry points (see LogScope).
  size_t log_depth_ = 0;
  /// True while recovery (or a replica batch) replays the log: replayed
  /// calls must not re-log. Atomic because AdmissionTicket reads it before
  /// taking mu_ while the replica's tail thread writes it under mu_.
  std::atomic<bool> replaying_{false};
  /// Encoded definition frames, in log order — the snapshot's recipe for
  /// rebuilding compiled plans/NFAs/trace defs.
  std::vector<std::string> def_records_;
  uint64_t frames_since_snapshot_ = 0;
  /// Optional stream scheduler included in snapshots (not owned).
  StreamScheduler* scheduler_ = nullptr;
  /// Scheduler state recovered before any scheduler was attached; applied
  /// by AttachScheduler() and carried forward into new snapshots.
  bool pending_scheduler_state_ = false;
  StreamScheduler::DurableState scheduler_state_;
  // ---- Replication state ----
  /// Atomic so CheckWritable runs before taking mu_ (like admission) and
  /// Promote() can flip it while readers look on.
  std::atomic<Role> role_{Role::kPrimary};
  /// Guards repl_ alone (a leaf lock, like gov_mu_): the tail thread folds
  /// apply progress under it, concurrent session reads snapshot it.
  mutable std::mutex repl_mu_;
  ReplicationStats repl_;
  /// Resolved replica knobs (Options overlaid with DVMS_REPLICA_POLL_MS /
  /// DVMS_REPLICA_RETRY_BUDGET); immutable after construction.
  uint64_t replica_poll_ms_ = 5;
  uint64_t replica_retry_budget_ = 8;
  uint64_t replica_jitter_seed_ = 0;
  /// Owned by the tail thread while it runs; touched elsewhere only after
  /// StopTailer() joins.
  std::unique_ptr<WalTailer> tailer_;
  std::thread tail_thread_;
  std::mutex tail_mu_;
  std::condition_variable tail_cv_;
  bool tail_stop_ = false;
  // ---- Storage-health state ----
  /// Lock-free fast path for CheckWritable / storage_degraded(); all
  /// transitions happen under storage_mu_.
  mutable std::atomic<bool> storage_degraded_{false};
  /// Guards storage_stats_ + the probe backoff (a leaf lock, like gov_mu_):
  /// mutators probe under it before taking mu_, the scrub thread folds its
  /// counters under it, session reads snapshot it.
  mutable std::mutex storage_mu_;
  mutable StorageStats storage_stats_;
  /// Copy of the durability directory for the (mu_-free) space probe; set
  /// while single-threaded in the constructor and under mu_ by Promote().
  std::string storage_dir_;
  mutable uint64_t probe_backoff_us_ = 0;
  mutable int64_t next_probe_us_ = 0;
  /// Resolved scrub cadence (Options overlaid with DVMS_SCRUB_MS); 0 = no
  /// background thread.
  uint64_t scrub_ms_ = 0;
  std::thread scrub_thread_;
  std::mutex scrub_mu_;
  std::condition_variable scrub_cv_;
  bool scrub_stop_ = false;
};

}  // namespace dvms

#endif  // DVMS_CORE_DVMS_H_
