#ifndef DVMS_CORE_SESSION_H_
#define DVMS_CORE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/dvms.h"

namespace dvms {

/// A lightweight client handle for concurrent snapshot-isolated reads —
/// the thin session layer in front of the multi-session server.
///
/// Each session carries its own governor envelope (cancel flag plus
/// optional deadline/memory overrides), its own event-stream cursors, and
/// an optional pinned snapshot epoch. Session::Query never acquires the
/// engine write mutex: it executes against an immutable published epoch,
/// concurrently and lock-free with respect to every other session, while
/// mutation units on the engine keep their serialized commit order.
///
/// Reads are snapshot-isolated: an unpinned query sees the latest epoch
/// published before it started (and never a mid-mutation or rolled-back
/// state); after Pin(), every query sees the pinned epoch until Unpin(),
/// regardless of concurrent commits. The epoch of each read is recorded
/// (last_read_epoch) as the prefix-consistency witness the linearizability
/// harness checks against a serial replay.
///
/// One session serves one client: its methods are not themselves
/// thread-safe (use one Session per thread), except RequestCancel, which
/// any thread may call. Mutations still go through the engine's public
/// entry points. The engine must outlive its sessions.
class Session {
 public:
  struct Options {
    /// Per-query deadline in ms; -1 inherits the engine's governor
    /// deadline, 0 disables it for this session.
    int64_t deadline_ms = -1;
    /// Per-query transient-memory budget in bytes; -1 inherits, 0 disables.
    int64_t mem_budget = -1;
    /// External cancel token adopted by this session instead of allocating
    /// a private flag — the cluster router's per-request context shares one
    /// token into every attempt session it opens, so cancelling the routed
    /// request aborts whichever endpoint's read is currently in flight.
    /// Raising the token behaves exactly like RequestCancel(); an abort
    /// consumes (lowers) it. nullptr = private flag.
    std::shared_ptr<std::atomic<bool>> cancel_flag;
  };

  explicit Session(Dvms* engine);
  Session(Dvms* engine, Options options);
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Snapshot-isolated read (SELECT / EXPLAIN [ANALYZE], including
  /// dvms_metrics / dvms_spans / dvms_governor scans — those are built
  /// fresh from thread-safe state, not from the catalog). Runs against the
  /// pinned epoch if one is set, else the latest published epoch.
  Result<Table> Query(const std::string& select_sql);

  /// Pins the latest published epoch: until Unpin(), every Query executes
  /// against it and the epoch cannot be garbage-collected. Re-pinning
  /// moves the pin to the latest epoch.
  Status Pin();
  void Unpin();
  bool pinned() const { return pinned_ != nullptr; }
  uint64_t pinned_epoch() const {
    return pinned_ == nullptr ? 0 : pinned_->epoch();
  }

  /// Epoch the most recent Query executed against (the linearizability
  /// witness); 0 before the first read.
  uint64_t last_read_epoch() const { return last_read_epoch_; }

  /// Aborts this session's in-flight (or next) query at its next governor
  /// checkpoint with kCancelled. Callable from any thread; other sessions
  /// and engine mutations are unaffected.
  void RequestCancel() {
    cancel_->store(true, std::memory_order_relaxed);
  }

  /// Event-stream cursor: rows of `relation` appended since this session's
  /// previous PollEvents(relation) call, at the epoch a Query would see
  /// (pinned or latest). If the relation shrank (undo / rollback), the
  /// cursor resets to its new end and an empty batch is returned.
  Result<Table> PollEvents(const std::string& relation);

  /// Releases the pinned epoch (making it GC-eligible) and the session's
  /// governor state. Idempotent; later calls on the session error.
  void Close();
  bool closed() const { return closed_; }

 private:
  friend class Dvms;

  Dvms* engine_;
  Options options_;
  std::shared_ptr<std::atomic<bool>> cancel_;
  SnapshotPtr pinned_;
  uint64_t last_read_epoch_ = 0;
  std::unordered_map<std::string, size_t> event_cursors_;  // IdentKey -> rows
  bool closed_ = false;
};

}  // namespace dvms

#endif  // DVMS_CORE_SESSION_H_
