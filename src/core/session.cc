#include "core/session.h"

namespace dvms {

Session::Session(Dvms* engine) : Session(engine, Options()) {}

Session::Session(Dvms* engine, Options options)
    : engine_(engine),
      options_(options),
      cancel_(options.cancel_flag != nullptr
                  ? options.cancel_flag
                  : std::make_shared<std::atomic<bool>>(false)) {}

Session::~Session() { Close(); }

Result<Table> Session::Query(const std::string& select_sql) {
  if (closed_) return Status::InvalidArgument("session is closed");
  return engine_->SnapshotRead(this, select_sql);
}

Status Session::Pin() {
  if (closed_) return Status::InvalidArgument("session is closed");
  SnapshotPtr latest = engine_->snapshots_.Acquire();
  if (latest == nullptr) {
    return Status::Internal("no snapshot epoch published yet");
  }
  if (pinned_ == nullptr) engine_->snapshots_.NotePin();
  pinned_ = std::move(latest);
  return Status::OK();
}

void Session::Unpin() {
  if (pinned_ == nullptr) return;
  pinned_.reset();
  engine_->snapshots_.NoteUnpin();
}

Result<Table> Session::PollEvents(const std::string& relation) {
  if (closed_) return Status::InvalidArgument("session is closed");
  SnapshotPtr view = pinned_ != nullptr ? pinned_ : engine_->snapshots_.Acquire();
  if (view == nullptr) {
    return Status::Internal("no snapshot epoch published yet");
  }
  DVMS_ASSIGN_OR_RETURN(TablePtr table,
                        view->Read(relation, VersionRef::Current()));
  last_read_epoch_ = view->epoch();
  size_t& cursor = event_cursors_[IdentKey(relation)];
  const std::vector<Row>& rows = table->rows();
  Table out(table->schema());
  if (cursor > rows.size()) {
    // The stream rewound (undo / rollback published a shorter state):
    // resynchronize at the new end rather than re-deliver old rows.
    cursor = rows.size();
    return out;
  }
  for (size_t i = cursor; i < rows.size(); ++i) out.AppendUnchecked(rows[i]);
  cursor = rows.size();
  return out;
}

void Session::Close() {
  if (closed_) return;
  Unpin();
  closed_ = true;
}

}  // namespace dvms
