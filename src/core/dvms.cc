#include "core/dvms.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>

#include "common/env.h"
#include "core/session.h"
#include "parser/parser.h"
#include "parser/planner.h"

namespace dvms {

namespace {

constexpr char kMetricsRelation[] = "dvms_metrics";
constexpr char kSpansRelation[] = "dvms_spans";
constexpr char kGovernorRelation[] = "dvms_governor";
constexpr char kReplicationRelation[] = "dvms_replication";
constexpr char kStorageRelation[] = "dvms_storage";

/// Space-probe backoff bounds: 1ms doubling to a 1s cap, so a mutation
/// storm against a full disk costs at most one probe per second while
/// recovery after the disk frees is still prompt.
constexpr uint64_t kProbeBackoffFloorUs = 1000;
constexpr uint64_t kProbeBackoffCapUs = 1000 * 1000;

int64_t SteadyMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Nesting depth of governed public entry points on this thread. Nested
/// calls (Execute -> Insert, PushEvents -> PushEvent, auto_render ->
/// Render) happen on the thread that already holds mu_, so a thread-local
/// counter is enough to tell an outermost request from a joined one.
thread_local int t_governed_depth = 0;

/// True while the calling thread is the replica's own apply path (batch
/// apply, bootstrap replay, promotion suffix replay): the one caller
/// allowed through CheckWritable on a replica. Thread-local, not engine
/// state, so an external writer racing a batch can never slip through the
/// writability check while the tail thread happens to be applying.
thread_local bool t_replica_apply = false;

struct ReplicaApplyScope {
  ReplicaApplyScope() { t_replica_apply = true; }
  ~ReplicaApplyScope() { t_replica_apply = false; }
  ReplicaApplyScope(const ReplicaApplyScope&) = delete;
  ReplicaApplyScope& operator=(const ReplicaApplyScope&) = delete;
};

/// Replication knobs are tuning, not safety: a malformed value warns and
/// falls back (unlike the governor's fail-loud knobs, nothing is silently
/// un-protected by a typo here).
uint64_t EnvU64Or(const char* name, uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') {
    std::fprintf(stderr, "dvms: ignoring malformed %s=\"%s\"\n", name, raw);
    return fallback;
  }
  return static_cast<uint64_t>(v);
}

void CollectFromNames(const SelectStmt& stmt, std::vector<std::string>* out);

void CollectFromNames(const SelectCore& core, std::vector<std::string>* out) {
  for (const TableRef& ref : core.from) {
    if (ref.subquery != nullptr) {
      CollectFromNames(*ref.subquery, out);
    } else {
      out->push_back(ref.name);
    }
  }
}

void CollectFromNames(const SelectStmt& stmt, std::vector<std::string>* out) {
  for (const SelectCore& core : stmt.cores) CollectFromNames(core, out);
}

Value DoubleOrNull(double v) {
  return std::isnan(v) ? Value::Null() : Value::Double(v);
}

Table BuildMetricsTable(uint64_t write_lock_acquisitions) {
  Table out(Schema({{"name", ValueType::kString},
                    {"kind", ValueType::kString},
                    {"count", ValueType::kInt64},
                    {"sum", ValueType::kDouble},
                    {"min", ValueType::kDouble},
                    {"max", ValueType::kDouble},
                    {"p50", ValueType::kDouble},
                    {"p95", ValueType::kDouble},
                    {"p99", ValueType::kDouble}}));
  for (const obs::MetricRow& m : obs::SnapshotMetrics()) {
    out.AppendUnchecked({Value::String(m.name), Value::String(m.kind),
                         Value::Int(static_cast<int64_t>(m.count)),
                         Value::Double(m.sum), DoubleOrNull(m.min),
                         DoubleOrNull(m.max), DoubleOrNull(m.p50),
                         DoubleOrNull(m.p95), DoubleOrNull(m.p99)});
  }
  // Synthetic row, not an obs counter: it must survive the rollback
  // Save/Restore that wipes everything a failed unit recorded, and it must
  // be visible with observability disabled — it is the witness that
  // concurrent snapshot reads never touched the write path.
  double locks = static_cast<double>(write_lock_acquisitions);
  out.AppendUnchecked(
      {Value::String("engine.write_lock"), Value::String("counter"),
       Value::Int(static_cast<int64_t>(write_lock_acquisitions)),
       Value::Double(locks), DoubleOrNull(locks), DoubleOrNull(locks),
       DoubleOrNull(locks), DoubleOrNull(locks), DoubleOrNull(locks)});
  return out;
}

Table BuildSpansTable() {
  Table out(Schema({{"id", ValueType::kInt64},
                    {"parent", ValueType::kInt64},
                    {"name", ValueType::kString},
                    {"thread", ValueType::kInt64},
                    {"start_us", ValueType::kInt64},
                    {"dur_us", ValueType::kInt64}}));
  for (const obs::SpanRow& s : obs::SnapshotSpans()) {
    out.AppendUnchecked({Value::Int(static_cast<int64_t>(s.id)),
                         Value::Int(static_cast<int64_t>(s.parent)),
                         Value::String(s.name),
                         Value::Int(static_cast<int64_t>(s.thread)),
                         Value::Int(s.start_us), Value::Int(s.dur_us)});
  }
  return out;
}

/// Counting acquisition of the engine write mutex: every public entry
/// point takes mu_ through this guard, so the engine.write_lock counter in
/// dvms_metrics is an observable witness that concurrent snapshot reads
/// never touched the write path.
struct MuLock {
  MuLock(std::recursive_mutex& mu, std::atomic<uint64_t>& acquisitions)
      : lock(mu) {
    acquisitions.fetch_add(1, std::memory_order_relaxed);
  }
  std::lock_guard<std::recursive_mutex> lock;
};

/// One-line operator annotation for the EXPLAIN report.
std::string PlanNodeDetail(const PlanNode& node) {
  switch (node.kind) {
    case PlanKind::kScan:
      return node.relation + node.version.ToString();
    case PlanKind::kLimit:
      return std::to_string(node.limit);
    case PlanKind::kAlias:
      return node.alias;
    default:
      return "";
  }
}

}  // namespace

Dvms::Dvms(Options options)
    : options_(options),
      owned_pool_(options.num_threads > 0
                      ? std::make_unique<ThreadPool>(options.num_threads)
                      : nullptr),
      udfs_(UdfRegistry::WithBuiltins()),
      optimizer_(&catalog_),
      maintainer_(&catalog_, &udfs_),
      recognizer_(&catalog_, &udfs_),
      traces_(&catalog_, &udfs_, &maintainer_),
      pixels_(options.canvas_width, options.canvas_height) {
  maintainer_.set_capture_lineage(options_.capture_lineage);
  maintainer_.set_parallelism(owned_pool_.get(), options_.num_threads);
  if (options_.enable_online_optimizer && !options_.capture_lineage) {
    maintainer_.set_optimizer(&optimizer_);
  }
  if (!options_.fault_spec.empty()) {
    Result<FaultConfig> config = ParseFaultSpec(options_.fault_spec);
    if (config.ok()) {
      owned_injector_ = std::make_unique<FaultInjector>(config.value());
      previous_injector_ =
          fault::InstallProcessInjector(owned_injector_.get());
    } else {
      // A typo'd spec must not silently run the engine without the faults
      // the caller asked for.
      std::fprintf(stderr, "dvms: ignoring malformed fault_spec '%s': %s\n",
                   options_.fault_spec.c_str(),
                   config.status().message().c_str());
    }
  }
  pixels_.Clear(RGBA{255, 255, 255, 255});
  obs::InitFromEnv();
  if (options_.trace) obs::SetEnabled(true);
  InitGovernor();
  if (options_.replica_of.empty()) {
    if (const char* env = std::getenv("DVMS_REPLICA_OF")) {
      options_.replica_of = env;
    }
  }
  if (!options_.replica_of.empty()) {
    InitReplica();
  } else {
    InitDurability();
  }
  // First publish: whatever state recovery (or the replica bootstrap)
  // restored — or an empty catalog — becomes epoch 1, so sessions always
  // have a snapshot to read.
  PublishSnapshotLocked();
  // The tail thread starts only after that first publish: every epoch it
  // replaces was complete.
  if (tailer_ != nullptr) {
    tail_thread_ = std::thread([this] { TailLoop(); });
  }
  // Background integrity scrubber. Started even on a replica (where passes
  // no-op until a Promote() hands it a durability directory).
  scrub_ms_ = options_.scrub_ms > 0 ? static_cast<uint64_t>(options_.scrub_ms)
                                    : EnvU64Or("DVMS_SCRUB_MS", 0);
  if (scrub_ms_ > 0) {
    scrub_thread_ = std::thread([this] { ScrubLoop(); });
  }
}

Dvms::~Dvms() {
  StopScrubber();
  StopTailer();
  if (durability_ != nullptr) {
    // Push any batched group-commit frames out before the process forgets
    // about them. Best-effort: there is no caller to report to.
    FaultSuppressScope suppress;
    GovernorSuppressScope governor_suppress;
    (void)durability_->Flush();
  }
  if (owned_injector_ != nullptr) {
    fault::InstallProcessInjector(previous_injector_);
  }
}

// ---- Resource governance ----

void Dvms::InitGovernor() {
  governor_config_.deadline_ms = options_.deadline_ms;
  governor_config_.mem_budget = options_.mem_budget;
  governor_config_.max_inflight = options_.max_inflight;
  governor_config_.queue_ms = options_.queue_ms;
  governor_config_.max_readers = options_.max_readers;
  governor_config_.clock = options_.governor_clock;
  governor_config_.FromEnv();
  governor_armed_ =
      governor_config_.deadline_ms > 0 || governor_config_.mem_budget > 0;
  cancel_flag_ = std::make_shared<std::atomic<bool>>(false);
  if (governor_config_.max_inflight > 0) {
    admission_ = std::make_unique<AdmissionGate>(
        governor_config_.max_inflight, governor_config_.queue_ms * 1000);
  }
  // Always built (effectively unbounded at max_readers == 0) so reader
  // admission accounting is exact even without a configured cap.
  int reader_slots = governor_config_.max_readers > 0
                         ? governor_config_.max_readers
                         : std::numeric_limits<int>::max();
  read_admission_ = std::make_unique<AdmissionGate>(
      reader_slots, governor_config_.queue_ms * 1000);
}

Dvms::AdmissionTicket::AdmissionTicket(Dvms* dvms, Gate gate) : dvms_(dvms) {
  // Nested entry points already hold an admission slot (and hold mu_ — a
  // blocking wait here would deadlock against the slot holder queued on
  // that mutex). Recovery replay and rollback are engine-internal work,
  // never client traffic.
  if (t_governed_depth > 0 || dvms_->replaying_ || governor::Suppressed()) {
    return;
  }
  gate_ = gate == Gate::kReader ? dvms_->read_admission_.get()
                                : dvms_->admission_.get();
  if (gate_ == nullptr) return;
  status_ = gate_->Enter();
  admitted_ = status_.ok();
}

Dvms::AdmissionTicket::~AdmissionTicket() {
  if (admitted_) gate_->Leave();
}

Dvms::GovernedRequest::GovernedRequest(Dvms* dvms) : dvms_(dvms) {
  outermost_ = (t_governed_depth++ == 0);
  if (!outermost_ || !dvms_->governor_armed_ || dvms_->replaying_ ||
      governor::Suppressed()) {
    return;
  }
  const GovernorConfig& cfg = dvms_->governor_config_;
  ctx_.ArmDeadline(cfg.deadline_ms, cfg.clock);
  ctx_.ArmMemoryBudget(cfg.mem_budget);
  ctx_.ShareCancelFlag(dvms_->cancel_flag_);
  prev_ = governor::InstallContext(&ctx_);
  armed_ = true;
}

Dvms::GovernedRequest::~GovernedRequest() {
  if (armed_) {
    governor::InstallContext(prev_);
    // This runs after EndMutationUnit (rollback + obs::Restore) and while
    // mu_ is still held, so abort counters survive the rollback's metric
    // rewind. gov_mu_ (a leaf lock) serializes the fold against concurrent
    // snapshot readers folding theirs.
    std::lock_guard<std::mutex> gov_lock(dvms_->gov_mu_);
    GovernorStats& gs = dvms_->governor_stats_;
    gs.checkpoints += ctx_.checkpoints();
    if (ctx_.peak_bytes() > gs.peak_mem_bytes) {
      gs.peak_mem_bytes = ctx_.peak_bytes();
    }
    switch (ctx_.abort_code()) {
      case StatusCode::kDeadlineExceeded:
        ++gs.deadline_aborts;
        obs::Count("governor.deadline_aborts");
        break;
      case StatusCode::kCancelled:
        ++gs.cancel_aborts;
        // One cancel aborts one request.
        dvms_->cancel_flag_->store(false, std::memory_order_relaxed);
        obs::Count("governor.cancel_aborts");
        break;
      case StatusCode::kResourceExhausted:
        ++gs.mem_aborts;
        obs::Count("governor.mem_aborts");
        break;
      default:
        break;
    }
  }
  --t_governed_depth;
}

void Dvms::RequestCancel() {
  // Lock-free on purpose: the whole point is cancelling a request that is
  // holding mu_.
  if (governor_armed_) {
    cancel_flag_->store(true, std::memory_order_relaxed);
  }
}

Dvms::GovernorStats Dvms::governor_stats() const {
  // gov_mu_ + gate atomics + the snapshot manager's own lock: callable
  // while a writer holds mu_ (e.g. from a concurrent monitoring thread).
  GovernorStats gs;
  {
    std::lock_guard<std::mutex> lock(gov_mu_);
    gs = governor_stats_;
  }
  if (admission_ != nullptr) {
    gs.admitted = admission_->admitted();
    gs.rejected = admission_->rejected();
  }
  gs.readers_admitted = read_admission_->admitted();
  gs.readers_rejected = read_admission_->rejected();
  gs.snapshot_epoch = static_cast<int64_t>(snapshots_.current_epoch());
  gs.epochs_published = static_cast<int64_t>(snapshots_.epochs_published());
  gs.epochs_retired = static_cast<int64_t>(snapshots_.epochs_retired());
  gs.pinned_snapshots = snapshots_.pinned();
  return gs;
}

Table Dvms::BuildGovernorTable() const {
  Table out(Schema({{"name", ValueType::kString},
                    {"value", ValueType::kInt64}}));
  auto row = [&out](const char* name, int64_t value) {
    out.AppendUnchecked({Value::String(name), Value::Int(value)});
  };
  row("armed", governor_armed_ ? 1 : 0);
  row("deadline_ms", governor_config_.deadline_ms);
  row("mem_budget", governor_config_.mem_budget);
  row("max_inflight", governor_config_.max_inflight);
  row("queue_ms", governor_config_.queue_ms);
  row("max_readers", governor_config_.max_readers);
  row("in_flight", admission_ != nullptr ? admission_->in_flight() : 0);
  row("admitted", admission_ != nullptr ? admission_->admitted() : 0);
  row("rejected", admission_ != nullptr ? admission_->rejected() : 0);
  row("readers_in_flight", read_admission_->in_flight());
  row("readers_admitted", read_admission_->admitted());
  row("readers_rejected", read_admission_->rejected());
  {
    std::lock_guard<std::mutex> lock(gov_mu_);
    row("deadline_aborts",
        static_cast<int64_t>(governor_stats_.deadline_aborts));
    row("cancel_aborts", static_cast<int64_t>(governor_stats_.cancel_aborts));
    row("mem_aborts", static_cast<int64_t>(governor_stats_.mem_aborts));
    row("checkpoints", static_cast<int64_t>(governor_stats_.checkpoints));
    row("peak_mem_bytes", governor_stats_.peak_mem_bytes);
  }
  row("snapshot_epoch", static_cast<int64_t>(snapshots_.current_epoch()));
  row("epochs_published",
      static_cast<int64_t>(snapshots_.epochs_published()));
  row("epochs_retired", static_cast<int64_t>(snapshots_.epochs_retired()));
  row("pinned_snapshots", snapshots_.pinned());
  return out;
}

void Dvms::BeginMutationUnit() {
  if (!options_.transactional_rollback) return;
  if (++unit_depth_ > 1) return;
  unit_.relations.clear();
  for (const std::string& name : catalog_.Names()) {
    // System relations (dvms_metrics, ...) are engine-maintained diagnostics;
    // they are refreshed on read, never rolled back.
    auto kind = catalog_.KindOf(name);
    if (kind.ok() && kind.value() == RelationKind::kSystem) continue;
    unit_.relations.push_back(name);
    auto table = catalog_.Get(name);
    if (table.ok()) table.value()->ArmUndo();
  }
  unit_.matchers = recognizer_.SaveMatcherStates();
  unit_.stats = stats_;
  unit_.obs_state = obs::Save();
  unit_.undo_history = undo_history_;
  unit_.undo_cursor = undo_cursor_;
  if (options_.capture_lineage) unit_.lineage = maintainer_.SaveLineage();
  unit_.render_entered = false;
}

Status Dvms::EndMutationUnit(Status st) {
  if (!options_.transactional_rollback || unit_depth_ == 0) return st;
  if (--unit_depth_ > 0) return st;
  if (st.ok()) {
    for (const std::string& name : unit_.relations) {
      auto table = catalog_.Get(name);
      if (table.ok()) table.value()->DisarmUndo();
    }
    unit_ = UnitState{};
    return st;
  }
  RollbackMutationUnit();
  return st;
}

void Dvms::RollbackMutationUnit() {
  // Injected faults must not cascade into the code undoing their damage,
  // and an expired deadline / raised cancel flag must not abort its own
  // rollback (the restoring re-render runs to completion regardless).
  FaultSuppressScope suppress;
  GovernorSuppressScope governor_suppress;
  std::vector<std::string> restored;
  for (const std::string& name : unit_.relations) {
    auto table = catalog_.Get(name);
    if (table.ok() && table.value()->RollbackUndo()) {
      restored.push_back(name);
    }
  }
  recognizer_.RestoreMatcherStates(std::move(unit_.matchers));
  size_t prior_rollbacks = stats_.interactions_rolled_back;
  stats_ = unit_.stats;
  stats_.interactions_rolled_back = prior_rollbacks + 1;
  undo_history_ = std::move(unit_.undo_history);
  undo_cursor_ = unit_.undo_cursor;
  if (options_.capture_lineage) {
    maintainer_.RestoreLineage(std::move(unit_.lineage));
  }
  // Derived caches (crossfilter cubes) may have refreshed against the
  // now-rolled-back data; mark them dirty so the next refresh rebuilds
  // from the restored relations.
  for (const std::string& name : restored) {
    optimizer_.OnRelationChanged(name);
  }
  bool rerender = unit_.render_entered;
  obs::SavedState saved_obs = std::move(unit_.obs_state);
  unit_ = UnitState{};
  if (rerender) {
    // The framebuffer may hold a partial frame. Rendering is a
    // deterministic function of the (restored) marks views, so a
    // suppressed re-render reproduces the pre-unit pixels bit-for-bit —
    // including reproducing any pre-existing render error's partial state.
    size_t renders = stats_.renders;
    (void)RenderLocked();
    stats_.renders = renders;
  }
  // Observability state is restored last, after the re-render's worker
  // threads have joined, so counters/spans recorded anywhere inside the
  // failed unit (pool workers included) do not leak into dvms_metrics.
  obs::Restore(saved_obs);
  obs::Count("dvms.rollbacks");
}

Status Dvms::CreateBaseTable(const std::string& name, Schema schema) {
  DVMS_RETURN_IF_ERROR(CheckWritable("CreateBaseTable"));
  AdmissionTicket ticket(this);
  DVMS_RETURN_IF_ERROR(ticket.status());
  MuLock lock(mu_, write_lock_acquisitions_);
  GovernedRequest request(this);
  LogScope log_scope(this);
  SnapshotPublisher publish(this);
  DVMS_RETURN_IF_ERROR(
      catalog_.CreateTable(name, schema, RelationKind::kBase).status());
  WalRecord record;
  record.op = WalRecord::Op::kCreateTable;
  record.name = name;
  record.schema = std::move(schema);
  Status logged = LogCommitted(record);
  if (!logged.ok()) {
    // Not in a mutation unit — undo by hand so memory and log agree.
    (void)catalog_.Drop(name);
    return logged;
  }
  return Status::OK();
}

Status Dvms::Insert(const std::string& name, std::vector<Row> rows) {
  DVMS_RETURN_IF_ERROR(CheckWritable("Insert"));
  AdmissionTicket ticket(this);
  DVMS_RETURN_IF_ERROR(ticket.status());
  MuLock lock(mu_, write_lock_acquisitions_);
  GovernedRequest request(this);
  LogScope log_scope(this);
  SnapshotPublisher publish(this);
  WalRecord record;
  if (ShouldLog()) {
    record.op = WalRecord::Op::kInsert;
    record.name = name;
    record.rows = rows;
  }
  BeginMutationUnit();
  Status st = InsertLocked(name, std::move(rows));
  if (st.ok()) st = LogCommitted(record);
  return EndMutationUnit(st);
}

Status Dvms::InsertLocked(const std::string& name, std::vector<Row> rows) {
  DVMS_ASSIGN_OR_RETURN(VersionedTable * table, catalog_.Get(name));
  for (Row& row : rows) {
    DVMS_RETURN_IF_ERROR(table->Append(std::move(row)));
  }
  DVMS_RETURN_IF_ERROR(ProcessChanges({name}));
  if (options_.auto_render) return Render();
  return Status::OK();
}

Status Dvms::CreateScale(const std::string& name, double domain_min,
                         double domain_max, double range_min,
                         double range_max) {
  DVMS_RETURN_IF_ERROR(CheckWritable("CreateScale"));
  AdmissionTicket ticket(this);
  DVMS_RETURN_IF_ERROR(ticket.status());
  MuLock lock(mu_, write_lock_acquisitions_);
  GovernedRequest request(this);
  LogScope log_scope(this);
  SnapshotPublisher publish(this);
  WalRecord record;
  record.op = WalRecord::Op::kCreateScale;
  record.name = name;
  record.scale_domain_min = domain_min;
  record.scale_domain_max = domain_max;
  record.scale_range_min = range_min;
  record.scale_range_max = range_max;
  const bool existed = catalog_.Exists(name);
  BeginMutationUnit();
  Status st =
      CreateScaleLocked(name, domain_min, domain_max, range_min, range_max);
  if (st.ok()) st = LogCommitted(record);
  st = EndMutationUnit(st);
  if (!st.ok() && !existed) {
    // The unit rollback restores pre-existing relations but cannot remove
    // one created inside the unit; drop the fresh scale relation by hand
    // so memory and log agree.
    (void)catalog_.Drop(name);
  }
  return st;
}

Status Dvms::CreateScaleLocked(const std::string& name, double domain_min,
                               double domain_max, double range_min,
                               double range_max) {
  DVMS_RETURN_IF_ERROR(CreateScaleRelation(&catalog_, name, domain_min,
                                           domain_max, range_min, range_max));
  return ProcessChanges({name});
}

Result<const Table*> Dvms::GetTable(const std::string& name) const {
  MuLock lock(mu_, write_lock_acquisitions_);
  DVMS_ASSIGN_OR_RETURN(VersionedTable * table, catalog_.Get(name));
  return &table->current();
}

Status Dvms::Execute(const Statement& statement) {
  // Plan-level classification (never string matching): a bare EXPLAIN is
  // the one read-only Statement form — it stays allowed on a replica and
  // draws a reader slot.
  if (!StatementIsReadOnly(statement)) {
    DVMS_RETURN_IF_ERROR(CheckWritable("Execute"));
  }
  AdmissionTicket ticket(this, StatementIsReadOnly(statement)
                                   ? AdmissionTicket::Gate::kReader
                                   : AdmissionTicket::Gate::kWriter);
  DVMS_RETURN_IF_ERROR(ticket.status());
  MuLock lock(mu_, write_lock_acquisitions_);
  GovernedRequest request(this);
  LogScope log_scope(this);
  SnapshotPublisher publish(this);
  DVMS_RETURN_IF_ERROR(ExecuteDispatch(statement));
  WalRecord record;
  if (ShouldLog()) {
    record.op = WalRecord::Op::kStatement;
    record.statement = statement;
  }
  Status logged = LogCommitted(record);
  if (!logged.ok()) {
    // The dispatch already committed (the nested entry points saw a no-op
    // depth-2 LogCommitted and disarmed their undo), and DDL effects such
    // as view/pattern definitions outlive a mutation-unit rollback. Memory
    // holds a mutation the log lost: fail-stop instead of letting later
    // frames replay against a diverged state.
    PoisonDurability("statement executed but not logged", logged);
  }
  return logged;
}

Status Dvms::ExecuteDispatch(const Statement& statement) {
  switch (statement.kind) {
    case Statement::Kind::kCreateTable:
      return CreateBaseTable(statement.target_name, statement.create_schema);
    case Statement::Kind::kInsert:
      return Insert(statement.target_name, statement.insert_rows);
    case Statement::Kind::kDelete:
      return Delete(statement.target_name, statement.delete_where).status();
    case Statement::Kind::kViewDef: {
      CatalogSchemaResolver resolver(&catalog_);
      Planner planner(&resolver);
      DVMS_ASSIGN_OR_RETURN(PlanPtr plan, planner.PlanSelect(statement.select));
      RelationKind kind =
          statement.render ? RelationKind::kMarks : RelationKind::kView;
      DVMS_RETURN_IF_ERROR(maintainer_.DefineView(statement.target_name, plan,
                                                  kind, statement.table_udf));
      if (statement.render) {
        bool known = false;
        for (const std::string& v : render_views_) {
          if (IdentEquals(v, statement.target_name)) known = true;
        }
        if (!known) render_views_.push_back(statement.target_name);
      }
      DVMS_RETURN_IF_ERROR(maintainer_.RecomputeView(statement.target_name));
      return maintainer_.OnChanged({statement.target_name});
    }
    case Statement::Kind::kEventDef:
      return recognizer_.DefinePattern(statement.target_name, statement.event);
    case Statement::Kind::kTraceDef: {
      TraceDefEntry entry;
      entry.name = statement.target_name;
      entry.stmt = statement.trace;
      for (const TableRef& ref : entry.stmt.from) {
        if (ref.version.is_current() || ref.version.offset == 0) {
          entry.deps.push_back(ref.name);
        }
      }
      entry.deps.push_back(entry.stmt.target_relation);
      // The trace relation materializes as a view-kind table with the shape
      // of the traced relation (backward: TO's schema; forward: the target
      // view's schema).
      DVMS_ASSIGN_OR_RETURN(VersionedTable * target,
                            catalog_.Get(entry.stmt.target_relation));
      if (!catalog_.Exists(entry.name)) {
        DVMS_RETURN_IF_ERROR(catalog_
                                 .CreateTable(entry.name, target->schema(),
                                              RelationKind::kView)
                                 .status());
      }
      DVMS_RETURN_IF_ERROR(RecomputeTrace(entry));
      trace_defs_.push_back(std::move(entry));
      return Status::OK();
    }
    case Statement::Kind::kExplain: {
      DVMS_RETURN_IF_ERROR(SyncSystemRelationsLocked(statement.select));
      DVMS_ASSIGN_OR_RETURN(
          Table report,
          ExplainLocked(statement.select, statement.explain_analyze));
      if (statement.target_name.empty()) return Status::OK();
      // Named form materializes the report as a system relation so later
      // DeVIL queries can join/filter it.
      if (catalog_.Exists(statement.target_name)) {
        DVMS_ASSIGN_OR_RETURN(RelationKind kind,
                              catalog_.KindOf(statement.target_name));
        if (kind != RelationKind::kSystem) {
          return Status::InvalidArgument(
              "EXPLAIN target '" + statement.target_name + "' already names a " +
              std::string(RelationKindToString(kind)) + " relation");
        }
      } else {
        DVMS_RETURN_IF_ERROR(catalog_
                                 .CreateTable(statement.target_name,
                                              report.schema(),
                                              RelationKind::kSystem,
                                              /*max_history=*/2)
                                 .status());
      }
      DVMS_ASSIGN_OR_RETURN(VersionedTable * table,
                            catalog_.Get(statement.target_name));
      return table->SetCurrent(std::move(report));
    }
  }
  return Status::Internal("unknown statement kind");
}

Status Dvms::LoadProgram(const std::string& source) {
  DVMS_RETURN_IF_ERROR(CheckWritable("LoadProgram"));
  AdmissionTicket ticket(this);
  DVMS_RETURN_IF_ERROR(ticket.status());
  MuLock lock(mu_, write_lock_acquisitions_);
  GovernedRequest request(this);
  LogScope log_scope(this);
  SnapshotPublisher publish(this);
  // Parsing touches nothing, so a typo'd program fails cleanly with the
  // log and memory still in agreement.
  DVMS_ASSIGN_OR_RETURN(Program program, ParseProgram(source));
  size_t applied = 0;
  Status st = Status::OK();
  for (const Statement& stmt : program.statements) {
    st = Execute(stmt);
    if (!st.ok()) break;
    ++applied;
  }
  if (st.ok()) st = ProcessChanges(catalog_.Names());
  // Commit the initial visualization state so @vnow-1 is addressable from
  // the first interaction.
  if (st.ok()) st = CommitViews();
  if (st.ok()) st = Render();
  if (st.ok()) {
    WalRecord record;
    record.op = WalRecord::Op::kLoadProgram;
    record.text = source;
    st = LogCommitted(record);
    if (!st.ok()) {
      PoisonDurability("program applied but not logged", st);
    }
  } else if (applied > 0 && ShouldLog()) {
    // A mid-program failure leaves the already-executed statements applied
    // in memory — their DDL cannot be rolled back — but nothing was logged
    // for them (a program commits as one frame). Fail-stop rather than log
    // later frames against state the log never saw.
    PoisonDurability("program partially applied but not logged", st);
  }
  return st;
}

Result<Table> Dvms::Query(const std::string& select_sql) {
  // Read-only by construction (ParseQuery only accepts SELECT / EXPLAIN):
  // draws a reader slot, never a mutation slot. Still serialized under mu_
  // — the lock-free concurrent path is Session::Query.
  AdmissionTicket ticket(this, AdmissionTicket::Gate::kReader);
  DVMS_RETURN_IF_ERROR(ticket.status());
  MuLock lock(mu_, write_lock_acquisitions_);
  GovernedRequest request(this);
  obs::Span span("engine.query");
  DVMS_ASSIGN_OR_RETURN(QueryRequest req, ParseQuery(select_sql));
  DVMS_RETURN_IF_ERROR(SyncSystemRelationsLocked(req.select));
  if (req.explain) return ExplainLocked(req.select, req.analyze);
  CatalogSchemaResolver resolver(&catalog_);
  Planner planner(&resolver);
  DVMS_ASSIGN_OR_RETURN(PlanPtr plan, planner.PlanSelect(req.select));
  Binder binder(&resolver, &udfs_);
  DVMS_RETURN_IF_ERROR(binder.Bind(plan.get()));
  Executor exec(&catalog_, &udfs_);
  ExecOptions exec_opts;
  exec_opts.pool = owned_pool_.get();
  exec_opts.num_threads = options_.num_threads;
  DVMS_ASSIGN_OR_RETURN(std::unique_ptr<NodeResult> result,
                        exec.Execute(*plan, exec_opts));
  return std::move(result->table);
}

Status Dvms::SyncSystemRelationsLocked(const SelectStmt& select) {
  std::vector<std::string> names;
  CollectFromNames(select, &names);
  for (const std::string& name : names) {
    Table refreshed(Schema{});
    const char* canonical = nullptr;
    if (IdentEquals(name, kMetricsRelation)) {
      refreshed = BuildMetricsTable(
          write_lock_acquisitions_.load(std::memory_order_relaxed));
      canonical = kMetricsRelation;
    } else if (IdentEquals(name, kSpansRelation)) {
      refreshed = BuildSpansTable();
      canonical = kSpansRelation;
    } else if (IdentEquals(name, kGovernorRelation)) {
      refreshed = BuildGovernorTable();
      canonical = kGovernorRelation;
    } else if (IdentEquals(name, kReplicationRelation)) {
      refreshed = BuildReplicationTable();
      canonical = kReplicationRelation;
    } else if (IdentEquals(name, kStorageRelation)) {
      refreshed = BuildStorageTable();
      canonical = kStorageRelation;
    } else {
      continue;
    }
    if (!catalog_.Exists(canonical)) {
      DVMS_RETURN_IF_ERROR(catalog_
                               .CreateTable(canonical, refreshed.schema(),
                                            RelationKind::kSystem,
                                            /*max_history=*/2)
                               .status());
    }
    DVMS_ASSIGN_OR_RETURN(VersionedTable * table, catalog_.Get(canonical));
    DVMS_RETURN_IF_ERROR(table->SetCurrent(std::move(refreshed)));
  }
  return Status::OK();
}

Result<Table> Dvms::ExplainLocked(const SelectStmt& select, bool analyze) {
  CatalogSchemaResolver resolver(&catalog_);
  CatalogRelationSource source(&catalog_);
  return ExplainWith(resolver, source, select, analyze);
}

Result<Table> Dvms::ExplainWith(const SchemaResolver& resolver,
                                const RelationSource& source,
                                const SelectStmt& select, bool analyze) {
  Planner planner(&resolver);
  DVMS_ASSIGN_OR_RETURN(PlanPtr plan, planner.PlanSelect(select));
  Binder binder(&resolver, &udfs_);
  DVMS_RETURN_IF_ERROR(binder.Bind(plan.get()));
  Table report(Schema({{"operator", ValueType::kString},
                       {"detail", ValueType::kString},
                       {"depth", ValueType::kInt64},
                       {"rows", ValueType::kInt64},
                       {"morsels", ValueType::kInt64},
                       {"self_us", ValueType::kInt64},
                       {"total_us", ValueType::kInt64}}));
  if (!analyze) {
    // Plan-only: pre-order walk with NULL runtime columns.
    std::function<void(const PlanNode&, int64_t)> walk =
        [&](const PlanNode& node, int64_t depth) {
          report.AppendUnchecked(
              {Value::String(PlanKindToString(node.kind)),
               Value::String(PlanNodeDetail(node)), Value::Int(depth),
               Value::Null(), Value::Null(), Value::Null(), Value::Null()});
          for (const PlanPtr& child : node.children) walk(*child, depth + 1);
        };
    walk(*plan, 0);
    return report;
  }
  Executor exec(&source, &udfs_);
  ExecOptions exec_opts;
  exec_opts.pool = owned_pool_.get();
  exec_opts.num_threads = options_.num_threads;
  exec_opts.analyze = true;
  DVMS_ASSIGN_OR_RETURN(std::unique_ptr<NodeResult> result,
                        exec.Execute(*plan, exec_opts));
  std::function<void(const NodeResult&, int64_t)> walk =
      [&](const NodeResult& node, int64_t depth) {
        int64_t children_us = 0;
        for (const auto& child : node.children) children_us += child->exec_us;
        int64_t self_us = node.exec_us - children_us;
        if (self_us < 0) self_us = 0;
        report.AppendUnchecked(
            {Value::String(PlanKindToString(node.node->kind)),
             Value::String(PlanNodeDetail(*node.node)), Value::Int(depth),
             Value::Int(static_cast<int64_t>(node.table.num_rows())),
             Value::Int(static_cast<int64_t>(node.morsels_used)),
             Value::Int(self_us), Value::Int(node.exec_us)});
        for (const auto& child : node.children) walk(*child, depth + 1);
      };
  walk(*result, 0);
  return report;
}

Status Dvms::RecomputeTrace(const TraceDefEntry& entry) {
  TraceEngine::Mode mode = options_.capture_lineage
                               ? TraceEngine::Mode::kEager
                               : TraceEngine::Mode::kLazy;
  Table result(Schema{});
  if (entry.stmt.backward) {
    DVMS_ASSIGN_OR_RETURN(result, traces_.Backward(entry.stmt, mode));
  } else {
    DVMS_ASSIGN_OR_RETURN(result, traces_.Forward(entry.stmt, mode));
  }
  DVMS_ASSIGN_OR_RETURN(VersionedTable * table, catalog_.Get(entry.name));
  DVMS_RETURN_IF_ERROR(table->SetCurrent(std::move(result)));
  ++stats_.trace_recomputes;
  return Status::OK();
}

Status Dvms::ProcessChanges(std::vector<std::string> changed) {
  constexpr int kMaxRounds = 4;
  for (int round = 0; round < kMaxRounds && !changed.empty(); ++round) {
    DVMS_ASSIGN_OR_RETURN(std::vector<std::string> affected,
                          maintainer_.registry().AffectedBy(changed));
    DVMS_RETURN_IF_ERROR(maintainer_.OnChanged(changed));

    std::unordered_set<std::string> dirty;
    for (const std::string& name : changed) dirty.insert(IdentKey(name));
    for (const std::string& name : affected) dirty.insert(IdentKey(name));

    std::vector<std::string> next;
    for (const TraceDefEntry& entry : trace_defs_) {
      bool hit = false;
      for (const std::string& dep : entry.deps) {
        if (dirty.count(IdentKey(dep)) > 0) {
          hit = true;
          break;
        }
      }
      if (hit) {
        DVMS_RETURN_IF_ERROR(RecomputeTrace(entry));
        next.push_back(entry.name);
      }
    }
    changed = std::move(next);
  }
  return Status::OK();
}

Status Dvms::CommitViews() {
  // Commit every relation so @vnow-k addresses a consistent interaction
  // boundary across base data, event tables, views, and traces — this is
  // also what Undo()/Redo() step through.
  std::unordered_map<std::string, TablePtr> snapshot;
  for (const std::string& name : catalog_.Names()) {
    DVMS_ASSIGN_OR_RETURN(RelationKind kind, catalog_.KindOf(name));
    if (kind == RelationKind::kSystem) continue;
    DVMS_ASSIGN_OR_RETURN(VersionedTable * table, catalog_.Get(name));
    table->Commit();
    if (kind == RelationKind::kBase || kind == RelationKind::kEvent) {
      snapshot.emplace(IdentKey(name), MakeTablePtr(table->current()));
    }
  }
  if (options_.capture_lineage) maintainer_.SnapshotCommitted();
  // Committing truncates any redo future and extends the undo history.
  if (undo_cursor_ > 0 && undo_cursor_ < undo_history_.size()) {
    undo_history_.resize(undo_history_.size() - undo_cursor_);
  }
  undo_cursor_ = 0;
  undo_history_.push_back(std::move(snapshot));
  constexpr size_t kMaxUndoDepth = 32;
  if (undo_history_.size() > kMaxUndoDepth) {
    undo_history_.erase(undo_history_.begin());
  }
  return Status::OK();
}

Result<size_t> Dvms::Delete(const std::string& name,
                            const ExprPtr& predicate) {
  DVMS_RETURN_IF_ERROR(CheckWritable("Delete"));
  AdmissionTicket ticket(this);
  DVMS_RETURN_IF_ERROR(ticket.status());
  MuLock lock(mu_, write_lock_acquisitions_);
  GovernedRequest request(this);
  LogScope log_scope(this);
  SnapshotPublisher publish(this);
  WalRecord record;
  if (ShouldLog()) {
    record.op = WalRecord::Op::kDelete;
    record.name = name;
    record.predicate = predicate;  // shared, immutable once logged
  }
  BeginMutationUnit();
  Result<size_t> removed = DeleteLocked(name, predicate);
  Status st = removed.status();
  if (st.ok()) st = LogCommitted(record);
  st = EndMutationUnit(st);
  if (!st.ok()) return st;
  return removed;
}

Result<size_t> Dvms::DeleteLocked(const std::string& name,
                                  const ExprPtr& predicate) {
  DVMS_ASSIGN_OR_RETURN(RelationKind kind, catalog_.KindOf(name));
  if (kind != RelationKind::kBase) {
    return Status::InvalidArgument(
        "DELETE targets base relations; '" + name + "' is " +
        RelationKindToString(kind));
  }
  DVMS_ASSIGN_OR_RETURN(VersionedTable * table, catalog_.Get(name));
  Table& current = table->mutable_current();
  size_t removed = 0;
  if (predicate == nullptr) {
    removed = current.num_rows();
    current.Clear();
  } else {
    // Bind the predicate against the relation's schema.
    ExprPtr bound = CloneExpr(predicate);
    std::vector<BoundField> scope;
    for (const Column& col : table->schema().columns()) {
      scope.push_back({name, col.name, col.type});
    }
    CatalogSchemaResolver resolver(&catalog_);
    Binder binder(&resolver, &udfs_);
    DVMS_RETURN_IF_ERROR(binder.BindExpr(bound.get(), scope));
    EvalContext ctx;
    ctx.udfs = &udfs_;
    std::vector<Row> kept;
    for (const Row& row : current.rows()) {
      DVMS_ASSIGN_OR_RETURN(bool match, EvalPredicate(*bound, row, ctx));
      if (match) {
        ++removed;
      } else {
        kept.push_back(row);
      }
    }
    current.ReplaceRows(std::move(kept));
  }
  DVMS_RETURN_IF_ERROR(ProcessChanges({name}));
  if (options_.auto_render) {
    DVMS_RETURN_IF_ERROR(Render());
  }
  return removed;
}

Status Dvms::RestoreToCursor() {
  const auto& snapshot = undo_history_[undo_history_.size() - 1 - undo_cursor_];
  std::vector<std::string> changed;
  for (const auto& [key, table_ptr] : snapshot) {
    DVMS_ASSIGN_OR_RETURN(VersionedTable * table, catalog_.Get(key));
    DVMS_RETURN_IF_ERROR(table->SetCurrent(Table(*table_ptr)));
    changed.push_back(key);
  }
  DVMS_RETURN_IF_ERROR(ProcessChanges(std::move(changed)));
  if (options_.auto_render) return Render();
  return Status::OK();
}

bool Dvms::CanUndo() const {
  MuLock lock(mu_, write_lock_acquisitions_);
  return undo_cursor_ + 1 < undo_history_.size();
}

bool Dvms::CanRedo() const {
  MuLock lock(mu_, write_lock_acquisitions_);
  return undo_cursor_ > 0;
}

Status Dvms::Undo() {
  DVMS_RETURN_IF_ERROR(CheckWritable("Undo"));
  AdmissionTicket ticket(this);
  DVMS_RETURN_IF_ERROR(ticket.status());
  MuLock lock(mu_, write_lock_acquisitions_);
  GovernedRequest request(this);
  LogScope log_scope(this);
  SnapshotPublisher publish(this);
  WalRecord record;
  record.op = WalRecord::Op::kUndo;
  BeginMutationUnit();
  Status st = UndoLocked();
  if (st.ok()) st = LogCommitted(record);
  return EndMutationUnit(st);
}

Status Dvms::UndoLocked() {
  if (!CanUndo()) {
    return Status::InvalidArgument("nothing to undo (history exhausted)");
  }
  ++undo_cursor_;
  return RestoreToCursor();
}

Status Dvms::Redo() {
  DVMS_RETURN_IF_ERROR(CheckWritable("Redo"));
  AdmissionTicket ticket(this);
  DVMS_RETURN_IF_ERROR(ticket.status());
  MuLock lock(mu_, write_lock_acquisitions_);
  GovernedRequest request(this);
  LogScope log_scope(this);
  SnapshotPublisher publish(this);
  WalRecord record;
  record.op = WalRecord::Op::kRedo;
  BeginMutationUnit();
  Status st = RedoLocked();
  if (st.ok()) st = LogCommitted(record);
  return EndMutationUnit(st);
}

Status Dvms::RedoLocked() {
  if (!CanRedo()) {
    return Status::InvalidArgument("nothing to redo");
  }
  --undo_cursor_;
  return RestoreToCursor();
}

std::string Dvms::DumpState() const {
  MuLock lock(mu_, write_lock_acquisitions_);
  std::string out = "relations:\n";
  for (const std::string& name : catalog_.Names()) {
    auto table = catalog_.Get(name);
    auto kind = catalog_.KindOf(name);
    if (!table.ok() || !kind.ok()) continue;
    const VersionedTable* t = table.value();
    out += "  " + name + " [" + RelationKindToString(kind.value()) + "] " +
           std::to_string(t->current().num_rows()) + " rows, " +
           std::to_string(t->num_committed_versions()) + " versions" +
           (t->in_transaction() ? ", in transaction" : "") + "\n";
  }
  out += "patterns:\n";
  for (const std::string& name : recognizer_.PatternNames()) {
    out += "  " + name + "\n";
  }
  out += "trace relations:\n";
  for (const TraceDefEntry& entry : trace_defs_) {
    out += "  " + entry.name + " -> " + entry.stmt.target_relation +
           (entry.stmt.backward ? " (backward)" : " (forward)") + "\n";
  }
  out += "stats:\n";
  out += "  events_processed: " + std::to_string(stats_.events_processed) +
         "\n";
  out += "  transactions_started: " +
         std::to_string(stats_.transactions_started) + "\n";
  out += "  transactions_committed: " +
         std::to_string(stats_.transactions_committed) + "\n";
  out += "  transactions_aborted: " +
         std::to_string(stats_.transactions_aborted) + "\n";
  out += "  renders: " + std::to_string(stats_.renders) + "\n";
  out += "  trace_recomputes: " + std::to_string(stats_.trace_recomputes) +
         "\n";
  out += "rollbacks: " + std::to_string(stats_.interactions_rolled_back) + "\n";
  if (FaultInjector* injector = fault::Active()) {
    out += "fault injection (seed " + std::to_string(injector->config().seed) +
           ", rate " + std::to_string(injector->config().rate) + "):\n";
    for (size_t i = 0; i < kNumFaultSites; ++i) {
      FaultSite site = static_cast<FaultSite>(i);
      out += std::string("  ") + FaultSiteToString(site) + ": " +
             std::to_string(injector->injections(site)) + "/" +
             std::to_string(injector->checks(site)) + " checks fired\n";
    }
  }
  return out;
}

Result<std::string> Dvms::ExplainView(const std::string& name) const {
  MuLock lock(mu_, write_lock_acquisitions_);
  DVMS_ASSIGN_OR_RETURN(const ViewDef* def, maintainer_.registry().Get(name));
  std::string out = "view " + def->name +
                    (def->renders ? " (marks, rendered)" : "") + "\n";
  out += "plan:\n" + def->plan->ToString(1);
  out += "reads (current): ";
  for (size_t i = 0; i < def->current_deps.size(); ++i) {
    if (i > 0) out += ", ";
    out += def->current_deps[i];
  }
  out += "\nreads (versioned): ";
  for (size_t i = 0; i < def->versioned_deps.size(); ++i) {
    if (i > 0) out += ", ";
    out += def->versioned_deps[i];
  }
  out += "\n";
  return out;
}

Status Dvms::PushEvent(const InputEvent& event) {
  DVMS_RETURN_IF_ERROR(CheckWritable("PushEvent"));
  AdmissionTicket ticket(this);
  DVMS_RETURN_IF_ERROR(ticket.status());
  MuLock lock(mu_, write_lock_acquisitions_);
  GovernedRequest request(this);
  LogScope log_scope(this);
  SnapshotPublisher publish(this);
  WalRecord record;
  if (ShouldLog()) {
    record.op = WalRecord::Op::kEvent;
    record.event = event;
  }
  BeginMutationUnit();
  Status st = PushEventLocked(event);
  if (st.ok()) st = LogCommitted(record);
  return EndMutationUnit(st);
}

Status Dvms::PushEventLocked(const InputEvent& event) {
  obs::Span span("engine.push_event");
  ++stats_.events_processed;
  DVMS_ASSIGN_OR_RETURN(std::vector<EventRecognizer::FeedOutcome> outcomes,
                        recognizer_.Feed(event));
  if (outcomes.empty()) return Status::OK();

  std::vector<std::string> changed;
  bool committed = false;
  for (const EventRecognizer::FeedOutcome& outcome : outcomes) {
    switch (outcome.action) {
      case MatchAction::kStarted:
        ++stats_.transactions_started;
        break;
      case MatchAction::kCommitted:
        ++stats_.transactions_committed;
        committed = true;
        break;
      case MatchAction::kAborted:
        ++stats_.transactions_aborted;
        break;
      default:
        break;
    }
    if (outcome.rows_inserted > 0 || outcome.action == MatchAction::kAborted ||
        outcome.action == MatchAction::kCommitted) {
      changed.push_back(outcome.table);
    }
  }
  if (!changed.empty()) {
    DVMS_RETURN_IF_ERROR(ProcessChanges(std::move(changed)));
  }
  if (committed) {
    // The accept state persists the new visualization state.
    DVMS_RETURN_IF_ERROR(CommitViews());
  }
  if (options_.auto_render) return Render();
  return Status::OK();
}

Status Dvms::PushEvents(const std::vector<InputEvent>& events) {
  DVMS_RETURN_IF_ERROR(CheckWritable("PushEvents"));
  AdmissionTicket ticket(this);
  DVMS_RETURN_IF_ERROR(ticket.status());
  MuLock lock(mu_, write_lock_acquisitions_);
  GovernedRequest request(this);
  for (const InputEvent& event : events) {
    DVMS_RETURN_IF_ERROR(PushEvent(event));
  }
  return Status::OK();
}

Status Dvms::Render() {
  AdmissionTicket ticket(this);
  DVMS_RETURN_IF_ERROR(ticket.status());
  MuLock lock(mu_, write_lock_acquisitions_);
  GovernedRequest request(this);
  BeginMutationUnit();
  return EndMutationUnit(RenderLocked());
}

Status Dvms::RenderLocked() {
  obs::Span span("engine.render");
  if (unit_depth_ > 0) unit_.render_entered = true;
  pixels_.Clear(RGBA{255, 255, 255, 255});
  RenderOptions render_opts;
  render_opts.pool = owned_pool_.get();
  render_opts.num_threads = options_.num_threads;
  for (const std::string& name : render_views_) {
    DVMS_ASSIGN_OR_RETURN(VersionedTable * table, catalog_.Get(name));
    DVMS_RETURN_IF_ERROR(RenderMarks(table->current(), &pixels_, render_opts));
  }
  ++stats_.renders;
  return Status::OK();
}

Status Dvms::ComposeInteractions(const std::string& first,
                                 const std::string& second,
                                 const std::string& merged_name) {
  DVMS_RETURN_IF_ERROR(CheckWritable("ComposeInteractions"));
  AdmissionTicket ticket(this);
  DVMS_RETURN_IF_ERROR(ticket.status());
  MuLock lock(mu_, write_lock_acquisitions_);
  GovernedRequest request(this);
  LogScope log_scope(this);
  SnapshotPublisher publish(this);
  DVMS_ASSIGN_OR_RETURN(const EventStmt* a, recognizer_.GetStatement(first));
  DVMS_ASSIGN_OR_RETURN(const EventStmt* b, recognizer_.GetStatement(second));
  DVMS_ASSIGN_OR_RETURN(EventStmt merged, MergeSequential(*a, *b));
  DVMS_RETURN_IF_ERROR(recognizer_.DefinePattern(merged_name, merged));
  WalRecord record;
  record.op = WalRecord::Op::kCompose;
  record.name = merged_name;
  record.compose_first = first;
  record.compose_second = second;
  Status logged = LogCommitted(record);
  if (!logged.ok()) {
    // The merged pattern (and its compound-event table) is already defined
    // and cannot be rolled back here.
    PoisonDurability("composed pattern defined but not logged", logged);
  }
  return logged;
}

std::vector<std::string> Dvms::AnalyzeInteractions() const {
  MuLock lock(mu_, write_lock_acquisitions_);
  std::vector<std::pair<std::string, const CompiledPattern*>> patterns;
  for (const std::string& name : recognizer_.PatternNames()) {
    auto pattern = recognizer_.GetPattern(name);
    if (pattern.ok()) patterns.emplace_back(name, pattern.value());
  }
  return AnalyzeAmbiguity(patterns);
}

// ---- Durability ----

Status Dvms::recovery_status() const {
  MuLock lock(mu_, write_lock_acquisitions_);
  return recovery_status_;
}

DurabilityStats Dvms::durability_stats() const {
  MuLock lock(mu_, write_lock_acquisitions_);
  if (durability_ == nullptr) return DurabilityStats{};
  return durability_->stats();
}

Status Dvms::FlushWal() {
  MuLock lock(mu_, write_lock_acquisitions_);
  if (durability_ == nullptr || durability_poisoned_) return Status::OK();
  Status st = durability_->Flush();
  if (!st.ok() && env::IsOutOfSpace(st)) EnterDegraded("wal flush", st);
  return st;
}

Status Dvms::Checkpoint() {
  DVMS_RETURN_IF_ERROR(CheckWritable("Checkpoint"));
  MuLock lock(mu_, write_lock_acquisitions_);
  if (durability_ == nullptr) {
    return Status::InvalidArgument("durability is not enabled (no data_dir)");
  }
  if (durability_poisoned_) {
    return Status::ExecutionError("durability disabled (fail-stop): " +
                                  recovery_status_.message());
  }
  Status st = WriteSnapshotLocked();
  if (!st.ok() && env::IsOutOfSpace(st)) {
    // The log is intact and nothing was acknowledged, but the disk is
    // full: degrade to read-only until the space probe clears.
    EnterDegraded("checkpoint snapshot", st);
    return Status::StorageDegraded("checkpoint not written: " + st.message());
  }
  return st;
}

void Dvms::AttachScheduler(StreamScheduler* scheduler) {
  MuLock lock(mu_, write_lock_acquisitions_);
  scheduler_ = scheduler;
  if (scheduler_ != nullptr && pending_scheduler_state_) {
    scheduler_->RestoreDurableState(std::move(scheduler_state_));
    pending_scheduler_state_ = false;
    scheduler_state_ = StreamScheduler::DurableState{};
  }
}

void Dvms::PoisonDurability(const char* what, const Status& cause) {
  durability_poisoned_ = true;
  recovery_status_ = Status::ExecutionError(
      std::string("durability fail-stop (") + what + "): " + cause.message());
  std::fprintf(stderr, "dvms: %s\n", recovery_status_.message().c_str());
}

Status Dvms::LogCommitted(const WalRecord& record) {
  if (!ShouldLog()) return Status::OK();
  std::string payload = EncodeWalRecord(record);
  Status appended = durability_->Append(durability_->last_lsn() + 1, payload);
  if (!appended.ok()) {
    if (env::IsOutOfSpace(appended)) {
      // Out of space is transient and the frame was never acknowledged:
      // degrade to read-only (the caller rolls the mutation back, reads
      // keep serving, a bounded-backoff space probe auto-recovers) instead
      // of the unconditional fail-stop a lost acknowledged frame forces.
      EnterDegraded("wal append", appended);
      return Status::StorageDegraded("mutation not logged: " +
                                     appended.message());
    }
    return appended;
  }
  if (record.IsDefinition()) def_records_.push_back(std::move(payload));
  ++frames_since_snapshot_;
  if (options_.snapshot_interval > 0 &&
      frames_since_snapshot_ >= options_.snapshot_interval) {
    // Snapshots are an optimization: a failed one (e.g. an injected
    // durability fault) must not fail the interaction that triggered it.
    Status snap = WriteSnapshotLocked();
    if (!snap.ok()) {
      std::fprintf(stderr, "dvms: automatic snapshot failed: %s\n",
                   snap.message().c_str());
      frames_since_snapshot_ = 0;  // retry an interval later, not every op
      // A full disk at snapshot time predicts the next append failing the
      // same way; enter degraded mode now. The triggering interaction was
      // logged durably and stays acknowledged.
      if (env::IsOutOfSpace(snap)) EnterDegraded("automatic snapshot", snap);
    }
  }
  return Status::OK();
}

EngineSnapshot Dvms::BuildSnapshotLocked() const {
  EngineSnapshot snapshot;
  snapshot.last_lsn = durability_->last_lsn();
  snapshot.definition_ops = def_records_;
  for (const std::string& name : catalog_.Names()) {
    // System relations hold nondeterministic timing content; excluding them
    // keeps snapshot payloads replay-stable.
    auto kind = catalog_.KindOf(name);
    if (kind.ok() && kind.value() == RelationKind::kSystem) continue;
    auto table = catalog_.Get(name);
    if (!table.ok()) continue;
    snapshot.relations.push_back(
        EngineSnapshot::RelationState{name, table.value()->SaveDurableState()});
  }
  snapshot.matchers = recognizer_.SaveMatcherStates();
  snapshot.counters.events_processed = stats_.events_processed;
  snapshot.counters.transactions_started = stats_.transactions_started;
  snapshot.counters.transactions_committed = stats_.transactions_committed;
  snapshot.counters.transactions_aborted = stats_.transactions_aborted;
  snapshot.counters.renders = stats_.renders;
  snapshot.counters.trace_recomputes = stats_.trace_recomputes;
  snapshot.counters.interactions_rolled_back = stats_.interactions_rolled_back;
  for (const auto& commit : undo_history_) {
    std::vector<std::pair<std::string, Table>> entry;
    entry.reserve(commit.size());
    for (const auto& [name, table_ptr] : commit) {
      entry.emplace_back(name, Table(*table_ptr));
    }
    std::sort(entry.begin(), entry.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    snapshot.undo_history.push_back(std::move(entry));
  }
  snapshot.undo_cursor = undo_cursor_;
  if (scheduler_ != nullptr) {
    snapshot.has_scheduler = true;
    snapshot.scheduler = scheduler_->SaveDurableState();
  } else if (pending_scheduler_state_) {
    // Recovered scheduler state that nothing reclaimed yet still belongs
    // to the durable image — don't drop it on the next snapshot.
    snapshot.has_scheduler = true;
    snapshot.scheduler = scheduler_state_;
  }
  return snapshot;
}

Status Dvms::WriteSnapshotLocked() {
  EngineSnapshot snapshot = BuildSnapshotLocked();
  std::string payload = EncodeEngineSnapshot(snapshot);
  DVMS_RETURN_IF_ERROR(durability_->WriteSnapshot(snapshot.last_lsn, payload));
  frames_since_snapshot_ = 0;
  return Status::OK();
}

Status Dvms::ApplyWalRecord(const WalRecord& record) {
  switch (record.op) {
    case WalRecord::Op::kCreateTable:
      return CreateBaseTable(record.name, record.schema);
    case WalRecord::Op::kInsert:
      return Insert(record.name, record.rows);
    case WalRecord::Op::kDelete:
      return Delete(record.name, record.predicate).status();
    case WalRecord::Op::kCreateScale:
      return CreateScale(record.name, record.scale_domain_min,
                         record.scale_domain_max, record.scale_range_min,
                         record.scale_range_max);
    case WalRecord::Op::kLoadProgram:
      return LoadProgram(record.text);
    case WalRecord::Op::kStatement:
      return Execute(record.statement);
    case WalRecord::Op::kEvent:
      return PushEvent(record.event);
    case WalRecord::Op::kUndo:
      return Undo();
    case WalRecord::Op::kRedo:
      return Redo();
    case WalRecord::Op::kCompose:
      return ComposeInteractions(record.compose_first, record.compose_second,
                                 record.name);
  }
  return Status::Internal("unknown wal record op");
}

Status Dvms::RestoreSnapshot(EngineSnapshot snapshot) {
  // 1. Re-execute the definition ops through the normal DDL paths: this
  //    rebuilds compiled plans, NFAs, trace defs, and render-view order.
  //    Their DML side effects (inserts inside programs, commits) are
  //    irrelevant — the physical overlay below replaces all table state.
  def_records_ = snapshot.definition_ops;
  for (const std::string& payload : def_records_) {
    DVMS_ASSIGN_OR_RETURN(WalRecord record, DecodeWalRecord(payload));
    DVMS_RETURN_IF_ERROR(ApplyWalRecord(record));
  }
  // 2. Overlay the physical relation state bit-identically.
  for (EngineSnapshot::RelationState& rel : snapshot.relations) {
    DVMS_ASSIGN_OR_RETURN(VersionedTable * table, catalog_.Get(rel.name));
    table->RestoreDurableState(std::move(rel.state));
    optimizer_.OnRelationChanged(rel.name);
  }
  // 3. NFA runtime states (entry order is deterministic given the same
  //    definition sequence).
  recognizer_.RestoreMatcherStates(std::move(snapshot.matchers));
  // 4. Counters.
  stats_.events_processed = snapshot.counters.events_processed;
  stats_.transactions_started = snapshot.counters.transactions_started;
  stats_.transactions_committed = snapshot.counters.transactions_committed;
  stats_.transactions_aborted = snapshot.counters.transactions_aborted;
  stats_.renders = snapshot.counters.renders;
  stats_.trace_recomputes = snapshot.counters.trace_recomputes;
  stats_.interactions_rolled_back =
      snapshot.counters.interactions_rolled_back;
  // 5. Interaction-level undo history.
  undo_history_.clear();
  for (auto& commit : snapshot.undo_history) {
    std::unordered_map<std::string, TablePtr> entry;
    for (auto& [name, table] : commit) {
      entry.emplace(name, MakeTablePtr(std::move(table)));
    }
    undo_history_.push_back(std::move(entry));
  }
  undo_cursor_ = snapshot.undo_cursor;
  // 6. Stream-scheduler delivery state, held until AttachScheduler().
  if (snapshot.has_scheduler) {
    scheduler_state_ = std::move(snapshot.scheduler);
    pending_scheduler_state_ = true;
  }
  return Status::OK();
}

Status Dvms::RestoreAndReplay(RecoveredLog log) {
  if (log.has_snapshot) {
    DVMS_ASSIGN_OR_RETURN(EngineSnapshot snapshot,
                          DecodeEngineSnapshot(log.snapshot_payload));
    DVMS_RETURN_IF_ERROR(RestoreSnapshot(std::move(snapshot)));
  }
  for (const WalFrame& frame : log.frames) {
    Result<WalRecord> record = DecodeWalRecord(frame.payload);
    if (!record.ok()) {
      return Status::ExecutionError("replay of lsn " +
                                    std::to_string(frame.lsn) + ": " +
                                    record.status().message());
    }
    Status applied = ApplyWalRecord(record.value());
    if (!applied.ok()) {
      return Status::ExecutionError("replay of lsn " +
                                    std::to_string(frame.lsn) + " (" +
                                    WalOpToString(record.value().op) + "): " +
                                    applied.message());
    }
    if (record.value().IsDefinition()) def_records_.push_back(frame.payload);
  }
  return Status::OK();
}

Result<WalFsyncMode> Dvms::ResolveFsyncMode() const {
  std::string mode_text = options_.wal_fsync;
  if (mode_text.empty()) {
    if (const char* env = std::getenv("DVMS_WAL_FSYNC")) mode_text = env;
  }
  if (mode_text.empty()) return WalFsyncMode::kAlways;
  return ParseWalFsyncMode(mode_text);
}

void Dvms::InitDurability() {
  std::string dir = options_.data_dir;
  if (dir.empty()) {
    if (const char* env = std::getenv("DVMS_DATA_DIR")) dir = env;
  }
  if (dir.empty()) return;

  Result<WalFsyncMode> parsed = ResolveFsyncMode();
  if (!parsed.ok()) {
    recovery_status_ = parsed.status();
    std::fprintf(stderr, "dvms: durability disabled: %s\n",
                 recovery_status_.message().c_str());
    return;
  }
  WalFsyncMode mode = parsed.value();

  // Recovery (including the replayed interactions) must never be
  // fault-injected or governed: it is itself the error-handling path, and
  // replay must reproduce logged history regardless of current deadlines.
  FaultSuppressScope suppress;
  GovernorSuppressScope governor_suppress;
  Result<std::unique_ptr<DurabilityManager>> manager =
      DurabilityManager::Open(dir, mode);
  if (!manager.ok()) {
    recovery_status_ = manager.status();
    std::fprintf(stderr, "dvms: durability disabled: %s\n",
                 recovery_status_.message().c_str());
    return;
  }
  durability_ = std::move(manager).value();
  storage_dir_ = durability_->dir();  // constructor: still single-threaded
  Result<RecoveredLog> recovered = durability_->Recover();
  if (!recovered.ok()) {
    recovery_status_ = recovered.status();
    durability_poisoned_ = true;
    std::fprintf(stderr, "dvms: recovery failed, logging disabled: %s\n",
                 recovery_status_.message().c_str());
    return;
  }

  replaying_ = true;
  Status replayed = RestoreAndReplay(std::move(recovered).value());
  replaying_ = false;
  if (!replayed.ok()) {
    recovery_status_ = replayed;
    durability_poisoned_ = true;
    std::fprintf(stderr, "dvms: recovery failed, logging disabled: %s\n",
                 recovery_status_.message().c_str());
    return;
  }
  // The framebuffer is not persisted — it is a deterministic function of
  // the (restored) marks views. Re-render without disturbing the counters.
  size_t renders = stats_.renders;
  (void)RenderLocked();
  stats_.renders = renders;
}

// ---- Replication ----

Status Dvms::CheckWritable(const char* op) const {
  // Rejections are counted as dvms_metrics counters so operators can see
  // the rejection *rate*, not just individual statuses. CheckWritable runs
  // at the top of every mutating entry point, before the mutation unit
  // arms, so these counts are never rewound by a rollback's obs restore.
  if (role_.load(std::memory_order_relaxed) == Role::kReplica &&
      !t_replica_apply) {
    obs::Count("engine.rejected_readonly_replica");
    return Status::ReadOnlyReplica(
        std::string(op) + " rejected: this engine is a read replica of " +
        options_.replica_of +
        " (reads stay available; Promote() fails over to writable)");
  }
  if (storage_degraded_.load(std::memory_order_relaxed) &&
      !StorageWritableOrProbe()) {
    std::string reason;
    {
      std::lock_guard<std::mutex> lock(storage_mu_);
      reason = storage_stats_.degraded_reason;
    }
    obs::Count("engine.rejected_storage_degraded");
    return Status::StorageDegraded(
        std::string(op) + " rejected: storage is degraded read-only (" +
        reason +
        "); snapshot reads stay available and a bounded-backoff space probe "
        "re-enables writes when the disk frees");
  }
  return Status::OK();
}

void Dvms::InitReplica() {
  role_.store(Role::kReplica, std::memory_order_relaxed);
  replica_poll_ms_ = options_.replica_poll_ms > 0
                         ? static_cast<uint64_t>(options_.replica_poll_ms)
                         : EnvU64Or("DVMS_REPLICA_POLL_MS", 5);
  if (replica_poll_ms_ == 0) replica_poll_ms_ = 1;
  replica_retry_budget_ =
      options_.replica_retry_budget > 0
          ? static_cast<uint64_t>(options_.replica_retry_budget)
          : EnvU64Or("DVMS_REPLICA_RETRY_BUDGET", 8);
  if (options_.replica_jitter_seed != 0) {
    replica_jitter_seed_ = options_.replica_jitter_seed;
  } else {
    // Derive a per-replica seed: a process-wide counter decorrelates
    // replicas of the same process, the pid decorrelates processes started
    // together (the lockstep case the jitter exists to break).
    static std::atomic<uint64_t> counter{0};
    replica_jitter_seed_ =
        (static_cast<uint64_t>(::getpid()) << 32) ^
        (counter.fetch_add(1, std::memory_order_relaxed) * 0x9e3779b97f4a7c15ULL ^
         0x5eedULL);
    if (replica_jitter_seed_ == 0) replica_jitter_seed_ = 0x5eedULL;
  }
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    repl_.replica = true;
  }
  // Bootstrap read-only from whatever the primary's directory holds right
  // now. Like recovery, the bootstrap replay must never be fault-injected
  // or governed.
  FaultSuppressScope suppress;
  GovernorSuppressScope governor_suppress;
  uint64_t applied = 0;
  Result<RecoveredLog> log = ReadLogReadOnly(options_.replica_of);
  if (log.ok()) {
    RecoveredLog recovered = std::move(log).value();
    if (recovered.has_snapshot) applied = recovered.snapshot_lsn;
    if (!recovered.frames.empty()) applied = recovered.frames.back().lsn;
    ReplicaApplyScope apply_scope;
    replaying_.store(true, std::memory_order_relaxed);
    Status st = RestoreAndReplay(std::move(recovered));
    replaying_.store(false, std::memory_order_relaxed);
    if (!st.ok()) {
      // A half-applied bootstrap cannot be retried in place (replaying from
      // lsn 0 onto a populated catalog would double-apply): fail-stop into
      // permanently-stale, like a primary whose recovery failed.
      recovery_status_ =
          Status::ExecutionError("replica bootstrap failed: " + st.message());
      std::fprintf(stderr, "dvms: %s\n", recovery_status_.message().c_str());
      std::lock_guard<std::mutex> lock(repl_mu_);
      repl_.stale = true;
      repl_.last_error = recovery_status_.message();
      return;  // no tailer: the replica serves whatever state it reached
    }
    size_t renders = stats_.renders;
    (void)RenderLocked();
    stats_.renders = renders;
  } else {
    // Missing or unreadable directory — a replica may start before its
    // primary. Start empty; the tailer catches up once frames appear.
    std::lock_guard<std::mutex> lock(repl_mu_);
    repl_.last_error = log.status().message();
  }
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    repl_.replica_lsn = applied;
    if (applied > repl_.primary_lsn) repl_.primary_lsn = applied;
  }
  tailer_ = std::make_unique<WalTailer>(options_.replica_of, applied);
}

void Dvms::TailLoop() {
  uint64_t consecutive_failures = 0;
  // Exponential backoff under sustained failure (capped at 64x the poll
  // cadence) with seeded per-replica jitter so a fleet of replicas spreads
  // its polls instead of hitting the primary's directory in lockstep.
  PollCadence cadence(replica_poll_ms_, replica_jitter_seed_);
  for (;;) {
    // A cv wait so StopTailer() interrupts the sleep promptly.
    uint64_t wait_ms = cadence.NextWaitMs(consecutive_failures);
    {
      std::unique_lock<std::mutex> lock(tail_mu_);
      tail_cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                        [this] { return tail_stop_; });
      if (tail_stop_) return;
    }
    Result<std::vector<WalFrame>> polled = tailer_->Poll();
    if (!polled.ok()) {
      ++consecutive_failures;
      const bool terminal = polled.status().code() == StatusCode::kNotFound;
      {
        std::lock_guard<std::mutex> lock(repl_mu_);
        ++repl_.poll_errors;
        repl_.last_error = polled.status().message();
        SyncTailerStatsLocked();
        if (terminal || consecutive_failures > replica_retry_budget_) {
          // Degraded, not dead: the last applied epoch stays served and
          // (unless terminal) polling continues.
          repl_.stale = true;
        }
      }
      obs::Count("replication.poll_errors");
      if (terminal) {
        std::fprintf(stderr, "dvms: replica tailing stopped: %s\n",
                     polled.status().message().c_str());
        return;
      }
      continue;
    }
    consecutive_failures = 0;
    std::vector<WalFrame> frames = std::move(polled).value();
    if (frames.empty()) {
      std::lock_guard<std::mutex> lock(repl_mu_);
      repl_.stale = false;
      repl_.last_error.clear();
      SyncTailerStatsLocked();
      continue;
    }
    if (!ApplyReplicaBatch(std::move(frames))) return;
  }
}

bool Dvms::ApplyReplicaBatch(std::vector<WalFrame> frames) {
  const auto start = std::chrono::steady_clock::now();
  uint64_t batch_bytes = 0;
  for (const WalFrame& frame : frames) {
    batch_bytes += frame.payload.size() + kWalFrameOverhead;
  }
  {
    std::lock_guard<std::mutex> lock(repl_mu_);
    repl_.lag_bytes = batch_bytes;
    SyncTailerStatsLocked();
  }
  MuLock lock(mu_, write_lock_acquisitions_);
  // Replaying the primary's history must reproduce it exactly: suppressed
  // like recovery so injected faults and governor aborts cannot make the
  // pair diverge.
  FaultSuppressScope suppress;
  GovernorSuppressScope governor_suppress;
  ReplicaApplyScope apply_scope;
  replaying_.store(true, std::memory_order_relaxed);
  Status st = Status::OK();
  uint64_t applied = 0;
  uint64_t applied_count = 0;
  for (const WalFrame& frame : frames) {
    Result<WalRecord> record = DecodeWalRecord(frame.payload);
    if (!record.ok()) {
      st = Status::ExecutionError("replica apply of lsn " +
                                  std::to_string(frame.lsn) + ": " +
                                  record.status().message());
      break;
    }
    st = ApplyWalRecord(record.value());
    if (!st.ok()) {
      st = Status::ExecutionError(
          "replica apply of lsn " + std::to_string(frame.lsn) + " (" +
          WalOpToString(record.value().op) + "): " + st.message());
      break;
    }
    if (record.value().IsDefinition()) def_records_.push_back(frame.payload);
    applied = frame.lsn;
    ++applied_count;
  }
  replaying_.store(false, std::memory_order_relaxed);
  // Publish even a partial batch: each frame applied all-or-nothing
  // through its entry point, so the catalog is the primary's state at
  // `applied` — a consistent committed prefix.
  PublishSnapshotLocked();
  if (obs::Enabled()) {
    obs::Observe("replication.apply_batch_us",
                 static_cast<double>(
                     std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count()));
    obs::Count("replication.frames_applied", applied_count);
  }
  {
    std::lock_guard<std::mutex> repl_lock(repl_mu_);
    if (applied_count > 0) repl_.replica_lsn = applied;
    repl_.frames_applied += applied_count;
    ++repl_.batches_applied;
    repl_.lag_bytes = 0;
    SyncTailerStatsLocked();
    if (st.ok()) {
      repl_.stale = false;
      repl_.last_error.clear();
    } else {
      // The replica must not skip a frame; applying past a failure would
      // diverge from the primary. Terminal for the tailer.
      repl_.stale = true;
      repl_.last_error = st.message();
    }
  }
  if (!st.ok()) {
    std::fprintf(stderr, "dvms: replica tailing stopped: %s\n",
                 st.message().c_str());
    return false;
  }
  return true;
}

void Dvms::StopTailer() {
  {
    std::lock_guard<std::mutex> lock(tail_mu_);
    tail_stop_ = true;
  }
  tail_cv_.notify_all();
  if (tail_thread_.joinable()) tail_thread_.join();
}

void Dvms::SyncTailerStatsLocked() {
  // Tail thread only (tailer_ is not otherwise synchronized), repl_mu_
  // held by the caller.
  if (tailer_ == nullptr) return;
  const TailerStats& ts = tailer_->stats();
  repl_.polls = ts.polls;
  repl_.torn_tail_retries = ts.torn_tail_retries;
  repl_.rotations = ts.rotations;
  if (ts.primary_lsn > repl_.primary_lsn) repl_.primary_lsn = ts.primary_lsn;
  if (repl_.replica_lsn > repl_.primary_lsn) {
    repl_.primary_lsn = repl_.replica_lsn;
  }
}

Dvms::ReplicationStats Dvms::replication_stats() const {
  std::lock_guard<std::mutex> lock(repl_mu_);
  ReplicationStats rs = repl_;
  rs.lag_frames = rs.primary_lsn > rs.replica_lsn
                      ? rs.primary_lsn - rs.replica_lsn
                      : 0;
  return rs;
}

Table Dvms::BuildReplicationTable() const {
  Table out(Schema({{"name", ValueType::kString},
                    {"value", ValueType::kInt64}}));
  auto row = [&out](const char* name, int64_t value) {
    out.AppendUnchecked({Value::String(name), Value::Int(value)});
  };
  ReplicationStats rs = replication_stats();
  row("replica", rs.replica ? 1 : 0);
  row("promoted", rs.promoted ? 1 : 0);
  row("stale", rs.stale ? 1 : 0);
  row("replica_lsn", static_cast<int64_t>(rs.replica_lsn));
  row("primary_lsn", static_cast<int64_t>(rs.primary_lsn));
  row("lag_frames", static_cast<int64_t>(rs.lag_frames));
  row("lag_bytes", static_cast<int64_t>(rs.lag_bytes));
  row("batches_applied", static_cast<int64_t>(rs.batches_applied));
  row("frames_applied", static_cast<int64_t>(rs.frames_applied));
  row("polls", static_cast<int64_t>(rs.polls));
  row("poll_errors", static_cast<int64_t>(rs.poll_errors));
  row("torn_tail_retries", static_cast<int64_t>(rs.torn_tail_retries));
  row("rotations", static_cast<int64_t>(rs.rotations));
  return out;
}

uint64_t Dvms::wal_lsn() const {
  if (is_replica()) {
    std::lock_guard<std::mutex> lock(repl_mu_);
    return repl_.replica_lsn;
  }
  MuLock lock(mu_, write_lock_acquisitions_);
  return durability_ != nullptr ? durability_->last_lsn() : 0;
}

uint64_t Dvms::WaitForReplicaLsn(uint64_t lsn, int64_t timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (!is_replica()) return wal_lsn();
    uint64_t at;
    {
      std::lock_guard<std::mutex> lock(repl_mu_);
      at = repl_.replica_lsn;
    }
    if (at >= lsn || std::chrono::steady_clock::now() >= deadline) return at;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

Status Dvms::Promote() {
  if (role_.load(std::memory_order_relaxed) != Role::kReplica) {
    return Status::InvalidArgument("Promote: engine is not a replica");
  }
  // Stop the tailer first, without mu_ (the tail thread takes mu_ to
  // apply). After the join this thread is the only mutator.
  StopTailer();
  MuLock lock(mu_, write_lock_acquisitions_);
  // Promotion is the error-handling path; like recovery it must never be
  // fault-injected or governed.
  FaultSuppressScope suppress;
  GovernorSuppressScope governor_suppress;
  DVMS_ASSIGN_OR_RETURN(WalFsyncMode mode, ResolveFsyncMode());
  // Standard crash recovery on the primary's directory: seals any torn
  // tail and opens the log for append — from here on this engine owns it.
  DVMS_ASSIGN_OR_RETURN(std::unique_ptr<DurabilityManager> manager,
                        DurabilityManager::Open(options_.replica_of, mode));
  DVMS_ASSIGN_OR_RETURN(RecoveredLog sealed, manager->Recover());
  uint64_t applied;
  {
    std::lock_guard<std::mutex> repl_lock(repl_mu_);
    applied = repl_.replica_lsn;
  }
  const uint64_t sealed_lsn = manager->last_lsn();
  if (sealed_lsn < applied) {
    // The tailer only ever delivered CRC-valid frames, which recovery
    // never truncates — so this means the directory lost acknowledged
    // frames (or is not the directory we were tailing). Divergence risk:
    // stay a read-only replica.
    return Status::ExecutionError(
        "promote: replica applied lsn " + std::to_string(applied) +
        " but the sealed log ends at " + std::to_string(sealed_lsn) +
        "; refusing to promote a replica ahead of the surviving log");
  }
  if (sealed.has_snapshot && sealed.snapshot_lsn > applied) {
    // The sealed image resumes from a snapshot ahead of everything this
    // replica applied; the intervening frames are no longer on disk, so
    // the suffix cannot be replayed onto our state.
    return Status::ExecutionError(
        "promote: sealed log resumes at snapshot lsn " +
        std::to_string(sealed.snapshot_lsn) + " but this replica applied " +
        std::to_string(applied) +
        "; it lagged past the pruning window — start a fresh engine on the "
        "directory instead");
  }
  {
    // Catch up on the sealed suffix this replica had not applied yet.
    ReplicaApplyScope apply_scope;
    replaying_.store(true, std::memory_order_relaxed);
    Status st = Status::OK();
    for (const WalFrame& frame : sealed.frames) {
      if (frame.lsn <= applied) continue;
      Result<WalRecord> record = DecodeWalRecord(frame.payload);
      st = record.ok() ? ApplyWalRecord(record.value()) : record.status();
      if (!st.ok()) {
        replaying_.store(false, std::memory_order_relaxed);
        return Status::ExecutionError(
            "promote: replay of sealed lsn " + std::to_string(frame.lsn) +
            ": " + st.message());
      }
      if (record.value().IsDefinition()) {
        def_records_.push_back(frame.payload);
      }
      applied = frame.lsn;
    }
    replaying_.store(false, std::memory_order_relaxed);
  }
  durability_ = std::move(manager);
  durability_poisoned_ = false;
  recovery_status_ = Status::OK();
  frames_since_snapshot_ = 0;
  {
    std::lock_guard<std::mutex> storage_lock(storage_mu_);
    storage_dir_ = durability_->dir();
  }
  role_.store(Role::kPrimary, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> repl_lock(repl_mu_);
    repl_.replica = false;
    repl_.promoted = true;
    repl_.stale = false;
    repl_.last_error.clear();
    repl_.replica_lsn = sealed_lsn;
    repl_.primary_lsn = sealed_lsn;
    repl_.lag_bytes = 0;
  }
  size_t renders = stats_.renders;
  (void)RenderLocked();
  stats_.renders = renders;
  PublishSnapshotLocked();
  obs::Count("replication.promotions");
  return Status::OK();
}

// ---- Storage health: degraded mode + integrity scrubber ----

void Dvms::EnterDegraded(const char* what, const Status& cause) {
  bool entered = false;
  {
    std::lock_guard<std::mutex> lock(storage_mu_);
    entered = !storage_degraded_.exchange(true, std::memory_order_relaxed);
    storage_stats_.degraded_reason =
        std::string(what) + ": " + cause.message();
    if (entered) {
      ++storage_stats_.degraded_entries;
      probe_backoff_us_ = kProbeBackoffFloorUs;
      next_probe_us_ = SteadyMicros() + static_cast<int64_t>(probe_backoff_us_);
    }
  }
  if (entered) {
    // Counted in storage_stats_, not obs: entry often happens inside a
    // mutation unit whose rollback rewinds obs counters (like the
    // engine.write_lock witness, the degraded trail must survive that).
    std::fprintf(stderr, "dvms: entering degraded read-only mode (%s): %s\n",
                 what, cause.message().c_str());
  }
}

bool Dvms::StorageWritableOrProbe() const {
  std::lock_guard<std::mutex> lock(storage_mu_);
  if (!storage_degraded_.load(std::memory_order_relaxed)) {
    return true;  // another caller's probe already cleared the mode
  }
  const int64_t now = SteadyMicros();
  if (now < next_probe_us_) return false;  // inside the backoff window
  ++storage_stats_.space_probes;
  Status probed = ProbeStorage();
  if (!probed.ok()) {
    probe_backoff_us_ =
        std::min<uint64_t>(probe_backoff_us_ * 2, kProbeBackoffCapUs);
    if (probe_backoff_us_ < kProbeBackoffFloorUs) {
      probe_backoff_us_ = kProbeBackoffFloorUs;
    }
    next_probe_us_ = now + static_cast<int64_t>(probe_backoff_us_);
    return false;
  }
  storage_degraded_.store(false, std::memory_order_relaxed);
  ++storage_stats_.degraded_exits;
  storage_stats_.degraded_reason.clear();
  std::fprintf(stderr,
               "dvms: space probe succeeded; leaving degraded read-only "
               "mode\n");
  return true;
}

Status Dvms::ProbeStorage() const {
  if (storage_dir_.empty()) return Status::OK();
  // Deliberately NOT fault-suppressed: under a FaultEnv that simulates a
  // full disk the probe must keep failing until the test disarms it, just
  // as a real probe keeps failing until the disk frees.
  Env* env = env::Active();
  const std::string path = storage_dir_ + "/.space-probe";
  DVMS_ASSIGN_OR_RETURN(
      int fd, env->Open(path, O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644));
  char block[4096];
  std::memset(block, 0, sizeof(block));
  Status st = env::WriteFully(env, fd, block, sizeof(block), path);
  if (st.ok()) st = env::FsyncOrPoison(env, &fd, path);
  if (fd >= 0) env->Close(fd);
  {
    // Cleanup of the probe artifact, not part of the verdict.
    FaultSuppressScope suppress;
    (void)env->Unlink(path);
  }
  return st;
}

Dvms::StorageStats Dvms::storage_stats() const {
  std::lock_guard<std::mutex> lock(storage_mu_);
  StorageStats ss = storage_stats_;
  ss.degraded = storage_degraded_.load(std::memory_order_relaxed);
  return ss;
}

Status Dvms::ScrubNow() { return ScrubPass(); }

void Dvms::StopScrubber() {
  {
    std::lock_guard<std::mutex> lock(scrub_mu_);
    scrub_stop_ = true;
  }
  scrub_cv_.notify_all();
  if (scrub_thread_.joinable()) scrub_thread_.join();
}

void Dvms::ScrubLoop() {
  std::unique_lock<std::mutex> lock(scrub_mu_);
  while (!scrub_stop_) {
    if (scrub_cv_.wait_for(lock, std::chrono::milliseconds(scrub_ms_),
                           [this] { return scrub_stop_; })) {
      return;
    }
    lock.unlock();
    // Failures (durability off on a not-yet-promoted replica, a transient
    // listing error) are reflected in storage_stats_; the thread itself
    // never stops until shutdown.
    (void)ScrubPass();
    lock.lock();
  }
}

Status Dvms::ScrubPass() {
  std::string dir;
  std::string active;
  {
    MuLock lock(mu_, write_lock_acquisitions_);
    if (durability_ == nullptr) {
      return Status::InvalidArgument("durability is not enabled (no data_dir)");
    }
    dir = durability_->dir();
    active = durability_->ActiveSegmentPath();
  }
  obs::Span span("scrub.pass");
  StorageStats found;  // this pass's deltas
  std::string uncovered;  // corruption no snapshot makes redundant

  Result<std::vector<uint64_t>> snaps = ListWalSnapshots(dir);
  Result<std::vector<uint64_t>> segs = ListWalSegments(dir);
  if (!snaps.ok() || !segs.ok()) {
    std::lock_guard<std::mutex> lock(storage_mu_);
    ++storage_stats_.scrub_passes;
    ++storage_stats_.scrub_io_errors;
    return snaps.ok() ? segs.status() : snaps.status();
  }

  // Snapshots first: segment quarantine decisions depend on which snapshot
  // LSNs actually validate, not on file names alone.
  uint64_t newest_valid_snap = 0;
  std::vector<uint64_t> corrupt_snaps;
  for (uint64_t lsn : snaps.value()) {
    const std::string path = WalSnapshotPath(dir, lsn);
    Result<std::pair<uint64_t, std::string>> snap = ReadSnapshotFile(path);
    if (snap.ok()) {
      ++found.scrub_snapshots_scanned;
      newest_valid_snap = std::max(newest_valid_snap, lsn);
      continue;
    }
    if (env::IsNotFound(snap.status())) continue;  // pruned mid-pass
    ++found.scrub_snapshots_scanned;
    if (env::IsEnvIoError(snap.status())) {
      ++found.scrub_io_errors;  // device error — maybe transient, retry later
      continue;
    }
    ++found.scrub_corruptions;
    found.last_corruption = path + ": " + snap.status().message();
    corrupt_snaps.push_back(lsn);
  }
  // A corrupt snapshot is quarantined only when some valid snapshot still
  // exists (recovery never chooses a corrupt one, so setting it aside can
  // only silence re-detection, never change the recovery outcome — but
  // with NO valid peer we keep the evidence in place and stay loud).
  for (uint64_t lsn : corrupt_snaps) {
    const std::string path = WalSnapshotPath(dir, lsn);
    if (newest_valid_snap == 0) {
      std::fprintf(stderr,
                   "dvms: scrub found corrupt snapshot %s with no valid "
                   "replacement; leaving it in place\n",
                   path.c_str());
      continue;
    }
    MuLock lock(mu_, write_lock_acquisitions_);  // vs. concurrent pruning
    Status q = env::Active()->Rename(path, path + ".quarantined");
    if (q.ok()) {
      ++found.scrub_quarantined;
      std::fprintf(stderr, "dvms: scrub quarantined corrupt snapshot %s\n",
                   path.c_str());
    } else if (!env::IsNotFound(q)) {
      ++found.scrub_io_errors;
    }
  }

  // Sealed segments were cut to a clean frame boundary when sealed, so any
  // scan violation now — bad header, bad CRC, torn tail — is bit rot.
  const std::vector<uint64_t>& seg_lsns = segs.value();
  for (size_t i = 0; i < seg_lsns.size(); ++i) {
    const std::string path = WalSegmentPath(dir, seg_lsns[i]);
    if (path == active) continue;  // in flight; validated once sealed
    Result<WalScan> scan = ScanWalSegment(path);
    if (!scan.ok()) {
      if (!env::IsNotFound(scan.status())) {
        ++found.scrub_segments_scanned;
        ++found.scrub_io_errors;
      }
      continue;
    }
    ++found.scrub_segments_scanned;
    if (!scan.value().bad_header && !scan.value().tail_truncated) continue;
    ++found.scrub_corruptions;
    const std::string why =
        path + ": " +
        (scan.value().tail_error.empty() ? "corrupt sealed segment"
                                         : scan.value().tail_error);
    found.last_corruption = why;
    // The segment's frames end just before the next segment's first LSN;
    // it is redundant only when a valid snapshot covers that whole range.
    const bool covered = i + 1 < seg_lsns.size() &&
                         newest_valid_snap + 1 >= seg_lsns[i + 1];
    if (covered) {
      MuLock lock(mu_, write_lock_acquisitions_);
      Status q = env::Active()->Rename(path, path + ".quarantined");
      if (q.ok()) {
        ++found.scrub_quarantined;
        std::fprintf(stderr,
                     "dvms: scrub quarantined corrupt sealed segment %s "
                     "(covered by snapshot %llu)\n",
                     path.c_str(),
                     static_cast<unsigned long long>(newest_valid_snap));
      } else if (!env::IsNotFound(q)) {
        ++found.scrub_io_errors;
      }
    } else {
      // Acknowledged commits live only in this segment; a restart would
      // truncate the log at the corruption and silently lose them.
      uncovered = "scrub: " + why + " and no snapshot covers it";
    }
  }

  if (!uncovered.empty()) {
    // Fail loud: stop acknowledging new frames against a log whose durable
    // history is already damaged. Reads keep serving, exactly like any
    // other fail-stop.
    MuLock lock(mu_, write_lock_acquisitions_);
    if (!durability_poisoned_) {
      PoisonDurability("scrub found unrecoverable corruption",
                       Status::ExecutionError(uncovered));
    }
  }

  {
    std::lock_guard<std::mutex> lock(storage_mu_);
    ++storage_stats_.scrub_passes;
    storage_stats_.scrub_segments_scanned += found.scrub_segments_scanned;
    storage_stats_.scrub_snapshots_scanned += found.scrub_snapshots_scanned;
    storage_stats_.scrub_corruptions += found.scrub_corruptions;
    storage_stats_.scrub_quarantined += found.scrub_quarantined;
    storage_stats_.scrub_io_errors += found.scrub_io_errors;
    if (!found.last_corruption.empty()) {
      storage_stats_.last_corruption = found.last_corruption;
    }
  }
  obs::Count("scrub.passes");
  if (found.scrub_corruptions > 0) {
    obs::Count("scrub.corruptions", found.scrub_corruptions);
  }
  if (found.scrub_quarantined > 0) {
    obs::Count("scrub.quarantined", found.scrub_quarantined);
  }
  if (found.scrub_io_errors > 0) {
    obs::Count("scrub.io_errors", found.scrub_io_errors);
  }
  return Status::OK();
}

Table Dvms::BuildStorageTable() const {
  Table out(Schema({{"name", ValueType::kString},
                    {"value", ValueType::kInt64}}));
  auto row = [&out](const char* name, int64_t value) {
    out.AppendUnchecked({Value::String(name), Value::Int(value)});
  };
  StorageStats ss = storage_stats();
  row("degraded", ss.degraded ? 1 : 0);
  row("degraded_entries", static_cast<int64_t>(ss.degraded_entries));
  row("degraded_exits", static_cast<int64_t>(ss.degraded_exits));
  row("space_probes", static_cast<int64_t>(ss.space_probes));
  row("scrub_ms", static_cast<int64_t>(scrub_ms_));
  row("scrub_passes", static_cast<int64_t>(ss.scrub_passes));
  row("scrub_segments_scanned",
      static_cast<int64_t>(ss.scrub_segments_scanned));
  row("scrub_snapshots_scanned",
      static_cast<int64_t>(ss.scrub_snapshots_scanned));
  row("scrub_corruptions", static_cast<int64_t>(ss.scrub_corruptions));
  row("scrub_quarantined", static_cast<int64_t>(ss.scrub_quarantined));
  row("scrub_io_errors", static_cast<int64_t>(ss.scrub_io_errors));
  FaultEnv* injector = env::ActiveFault();
  row("io_fault_checks",
      injector != nullptr ? static_cast<int64_t>(injector->checks()) : 0);
  row("io_faults_injected",
      injector != nullptr ? static_cast<int64_t>(injector->injections()) : 0);
  return out;
}

// ---- Concurrent snapshot reads ----

void Dvms::PublishSnapshotLocked() {
  uint64_t before = snapshots_.current_epoch();
  uint64_t after = snapshots_.Publish(catalog_);
  if (obs::Enabled() && after != before) {
    obs::Count("engine.snapshot_publishes");
  }
}

Result<Table> Dvms::SnapshotRead(Session* session,
                                 const std::string& select_sql) {
  // Parse before admission: a syntax error should not consume a slot.
  DVMS_ASSIGN_OR_RETURN(QueryRequest req, ParseQuery(select_sql));
  AdmissionTicket ticket(this, AdmissionTicket::Gate::kReader);
  DVMS_RETURN_IF_ERROR(ticket.status());
  obs::Span span("session.query");

  // Pin the epoch for the duration of the read: the session-pinned epoch
  // if set, else the latest published one. shared_ptr ownership is the GC
  // barrier; NotePin/NoteUnpin is pure accounting for leak checks.
  const bool transient_pin = session->pinned_ == nullptr;
  SnapshotPtr view =
      transient_pin ? snapshots_.Acquire() : session->pinned_;
  if (view == nullptr) {
    return Status::Internal("no snapshot epoch published yet");
  }
  if (transient_pin) snapshots_.NotePin();
  session->last_read_epoch_ = view->epoch();

  // The session's own governor envelope: engine deadline/budget unless the
  // session overrides them, plus the session-private cancel flag — so
  // cancelling one session can never abort another's query.
  QueryContext ctx;
  int64_t deadline_ms = session->options_.deadline_ms >= 0
                            ? session->options_.deadline_ms
                            : governor_config_.deadline_ms;
  int64_t mem_budget = session->options_.mem_budget >= 0
                           ? session->options_.mem_budget
                           : governor_config_.mem_budget;
  ctx.ArmDeadline(deadline_ms, governor_config_.clock);
  ctx.ArmMemoryBudget(mem_budget);
  ctx.ShareCancelFlag(session->cancel_);

  Result<Table> out = [&]() -> Result<Table> {
    GovernorRequestScope scope(&ctx);
    // System relations are rebuilt fresh from thread-safe obs/governor
    // state and overlaid on the snapshot — never read from (or written
    // to) the live catalog.
    OverlaySnapshotView overlay(view.get());
    std::vector<std::string> names;
    CollectFromNames(req.select, &names);
    for (const std::string& name : names) {
      if (IdentEquals(name, kMetricsRelation)) {
        overlay.AddOverlay(
            kMetricsRelation,
            BuildMetricsTable(
                write_lock_acquisitions_.load(std::memory_order_relaxed)));
      } else if (IdentEquals(name, kSpansRelation)) {
        overlay.AddOverlay(kSpansRelation, BuildSpansTable());
      } else if (IdentEquals(name, kGovernorRelation)) {
        overlay.AddOverlay(kGovernorRelation, BuildGovernorTable());
      } else if (IdentEquals(name, kReplicationRelation)) {
        overlay.AddOverlay(kReplicationRelation, BuildReplicationTable());
      } else if (IdentEquals(name, kStorageRelation)) {
        overlay.AddOverlay(kStorageRelation, BuildStorageTable());
      }
    }
    if (req.explain) {
      return ExplainWith(overlay, overlay, req.select, req.analyze);
    }
    Planner planner(&overlay);
    DVMS_ASSIGN_OR_RETURN(PlanPtr plan, planner.PlanSelect(req.select));
    Binder binder(&overlay, &udfs_);
    DVMS_RETURN_IF_ERROR(binder.Bind(plan.get()));
    Executor exec(static_cast<const RelationSource*>(&overlay), &udfs_);
    ExecOptions exec_opts;
    exec_opts.pool = owned_pool_.get();
    exec_opts.num_threads = options_.num_threads;
    DVMS_ASSIGN_OR_RETURN(std::unique_ptr<NodeResult> result,
                          exec.Execute(*plan, exec_opts));
    return std::move(result->table);
  }();

  // Fold the read's governor accounting; reader aborts land in the same
  // counters the serialized writer uses, under the gov_mu_ leaf lock.
  {
    std::lock_guard<std::mutex> gov_lock(gov_mu_);
    GovernorStats& gs = governor_stats_;
    gs.checkpoints += ctx.checkpoints();
    if (ctx.peak_bytes() > gs.peak_mem_bytes) {
      gs.peak_mem_bytes = ctx.peak_bytes();
    }
    switch (ctx.abort_code()) {
      case StatusCode::kDeadlineExceeded:
        ++gs.deadline_aborts;
        obs::Count("governor.deadline_aborts");
        break;
      case StatusCode::kCancelled:
        ++gs.cancel_aborts;
        // One cancel aborts one query of this session.
        session->cancel_->store(false, std::memory_order_relaxed);
        obs::Count("governor.cancel_aborts");
        break;
      case StatusCode::kResourceExhausted:
        ++gs.mem_aborts;
        obs::Count("governor.mem_aborts");
        break;
      default:
        break;
    }
  }
  if (transient_pin) snapshots_.NoteUnpin();
  return out;
}

}  // namespace dvms
