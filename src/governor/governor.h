#ifndef DVMS_GOVERNOR_GOVERNOR_H_
#define DVMS_GOVERNOR_GOVERNOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"

namespace dvms {

/// Per-request resource envelope: an absolute deadline on an injectable
/// clock, a cancel flag another thread may raise, and a transient-memory
/// budget. One QueryContext is installed per thread for the duration of a
/// request on that thread (concurrent snapshot readers each govern their
/// own request); work that fans out onto pool threads inherits the
/// submitting thread's context through ThreadPool::ParallelFor and reads
/// it through governor::CheckPoint() / ChargeMemory().
///
/// All hot-path members are relaxed atomics: a check is one atomic load of
/// the installed-context pointer (nullptr when unarmed) plus, when armed,
/// a cancel-flag load and a clock read.
class QueryContext {
 public:
  using Clock = std::function<int64_t()>;  // microseconds, monotonic

  QueryContext();

  /// Arms the deadline `deadline_ms` milliseconds from now on `clock`
  /// (nullptr = steady clock). 0 disables the deadline.
  void ArmDeadline(int64_t deadline_ms, Clock clock);
  /// Arms the transient-memory budget in bytes. 0 disables it.
  void ArmMemoryBudget(int64_t budget_bytes);
  /// Shares `flag` as the cancel flag (raised by Dvms::RequestCancel from
  /// any thread; observed by the next CheckPoint).
  void ShareCancelFlag(std::shared_ptr<std::atomic<bool>> flag);

  /// The cooperative check, called at bounded-work intervals (once per
  /// morsel / band / batch / ~1k inner-loop rows). Returns Cancelled,
  /// DeadlineExceeded, or ResourceExhausted on the first violated limit;
  /// the same terminal status on every later call (aborts are sticky so a
  /// request unwinds once, not per-morsel).
  Status Check();

  /// Charges `bytes` of request-transient memory against the budget.
  /// Returns ResourceExhausted once the running total would exceed it; the
  /// charge is still recorded so peak accounting matches allocation order.
  Status Charge(int64_t bytes);
  /// Returns previously charged bytes (scratch freed mid-request).
  void Release(int64_t bytes);

  int64_t charged_bytes() const {
    return charged_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  uint64_t checkpoints() const {
    return checks_.load(std::memory_order_relaxed);
  }
  int64_t deadline_us() const { return deadline_us_; }
  int64_t budget_bytes() const { return budget_bytes_; }
  bool aborted() const {
    return abort_code_.load(std::memory_order_relaxed) !=
           static_cast<int>(StatusCode::kOk);
  }
  /// kOk when not aborted, else the sticky terminal code.
  StatusCode abort_code() const {
    return static_cast<StatusCode>(abort_code_.load(std::memory_order_relaxed));
  }

 private:
  Status Abort(StatusCode code, const char* what);

  Clock clock_;                       // set iff deadline armed
  int64_t deadline_us_ = INT64_MAX;   // absolute, on clock_
  int64_t budget_bytes_ = INT64_MAX;  // INT64_MAX = unlimited
  std::shared_ptr<std::atomic<bool>> cancel_;
  std::atomic<int64_t> charged_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<uint64_t> checks_{0};
  std::atomic<int> abort_code_{static_cast<int>(StatusCode::kOk)};
};

namespace governor {

/// The context governing this thread's in-flight request, or nullptr when
/// unarmed. Thread-local so concurrent snapshot readers and the serialized
/// writer each observe their own envelope; ThreadPool::ParallelFor
/// propagates the submitter's context onto pool workers.
QueryContext* Current();

/// Installs `ctx` on the calling thread (nullptr disarms). Returns the
/// previous context so scopes nest.
QueryContext* InstallContext(QueryContext* ctx);

/// Null-safe, suppression-aware cooperative check: one relaxed load when
/// no context is installed. This is the call sites thread through inner
/// loops.
Status CheckPoint();

/// Null-safe memory accounting against the installed context. Unarmed or
/// suppressed charges are free.
Status ChargeMemory(int64_t bytes);
void ReleaseMemory(int64_t bytes);

/// True while a GovernorSuppressScope is alive on the calling thread.
/// ThreadPool captures this at submission and re-establishes it on each
/// participant, alongside the submitter's context.
bool Suppressed();

}  // namespace governor

/// RAII: installs a QueryContext for the lifetime of a request.
class GovernorRequestScope {
 public:
  explicit GovernorRequestScope(QueryContext* ctx)
      : prev_(governor::InstallContext(ctx)) {}
  ~GovernorRequestScope() { governor::InstallContext(prev_); }
  GovernorRequestScope(const GovernorRequestScope&) = delete;
  GovernorRequestScope& operator=(const GovernorRequestScope&) = delete;

 private:
  QueryContext* prev_;
};

/// RAII: suppresses governor checks and charges on the owning thread while
/// alive. Rollback, recovery replay, replica batch apply, and destructor
/// flushes run under this — the code undoing an aborted request must not
/// itself be aborted. Thread-local, like FaultSuppressScope, so a writer's
/// rollback never suppresses a concurrent reader's deadline/budget checks;
/// pool participants inherit the submitter's suppression.
class GovernorSuppressScope {
 public:
  GovernorSuppressScope();
  ~GovernorSuppressScope();
  GovernorSuppressScope(const GovernorSuppressScope&) = delete;
  GovernorSuppressScope& operator=(const GovernorSuppressScope&) = delete;
};

/// Bounded in-flight admission: at most `max_inflight` requests execute at
/// once; excess arrivals wait up to `queue_us` and are then shed with
/// ResourceExhausted. Sheds load at the front door instead of letting the
/// engine mutex queue grow without bound.
class AdmissionGate {
 public:
  AdmissionGate(int max_inflight, int64_t queue_us)
      : max_inflight_(max_inflight), queue_us_(queue_us) {}

  /// Blocks until admitted or the queue wait expires. OK admits (caller
  /// must Leave()); ResourceExhausted sheds.
  Status Enter();
  void Leave();

  int64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  int64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  int in_flight() const { return in_flight_.load(std::memory_order_relaxed); }
  int max_inflight() const { return max_inflight_; }
  int64_t queue_us() const { return queue_us_; }

 private:
  const int max_inflight_;
  const int64_t queue_us_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<int> in_flight_{0};
  std::atomic<int64_t> admitted_{0};
  std::atomic<int64_t> rejected_{0};
};

/// Engine-level governor configuration, resolved from Dvms::Options with
/// DVMS_DEADLINE_MS / DVMS_MEM_BUDGET / DVMS_MAX_INFLIGHT / DVMS_QUEUE_MS /
/// DVMS_MAX_READERS environment fallbacks (see GovernorConfig::FromEnv).
struct GovernorConfig {
  int64_t deadline_ms = 0;   // 0 = no deadline
  int64_t mem_budget = 0;    // bytes; 0 = no budget
  int max_inflight = 0;      // mutation slots; 0 = no admission control
  int64_t queue_ms = 0;      // wait before shedding when at capacity
  int max_readers = 0;       // concurrent read slots; 0 = unlimited
  QueryContext::Clock clock; // injectable for tests; nullptr = steady clock

  bool armed() const {
    return deadline_ms > 0 || mem_budget > 0 || max_inflight > 0;
  }

  /// Overlays unset (zero) fields from the environment. A malformed value
  /// prints a diagnostic to stderr and aborts, mirroring DVMS_FAULTS: a
  /// typo silently disarming the governor would un-protect the process.
  void FromEnv();
};

}  // namespace dvms

#endif  // DVMS_GOVERNOR_GOVERNOR_H_
