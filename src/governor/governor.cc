#include "governor/governor.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dvms {
namespace {

int64_t SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread installed context: concurrent readers each govern their own
// request, so the context can no longer be process-wide. Pool workers
// inherit the submitting thread's context via ThreadPool::ParallelFor
// (which captures Current() at submission and installs it around each
// participant). Suppression is per-thread for the same reason: a writer's
// rollback must not silence a concurrent reader's checks; ParallelFor
// re-establishes the submitter's suppression on participants.
thread_local QueryContext* t_context = nullptr;
thread_local int t_suppress_depth = 0;

// Fail-loud env parsing (same rationale as DVMS_FAULTS): a governor knob
// that silently parses to zero would leave the process unprotected while
// the operator believes it is governed.
int64_t EnvInt64OrDie(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return 0;
  char* end = nullptr;
  long long v = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || v < 0) {
    std::fprintf(stderr, "dvms: invalid %s=\"%s\" (expected a non-negative integer)\n",
                 name, raw);
    std::abort();
  }
  return static_cast<int64_t>(v);
}

}  // namespace

QueryContext::QueryContext() = default;

void QueryContext::ArmDeadline(int64_t deadline_ms, Clock clock) {
  if (deadline_ms <= 0) return;
  clock_ = clock ? std::move(clock) : Clock(&SteadyNowMicros);
  deadline_us_ = clock_() + deadline_ms * 1000;
}

void QueryContext::ArmMemoryBudget(int64_t budget_bytes) {
  if (budget_bytes <= 0) return;
  budget_bytes_ = budget_bytes;
}

void QueryContext::ShareCancelFlag(std::shared_ptr<std::atomic<bool>> flag) {
  cancel_ = std::move(flag);
}

Status QueryContext::Abort(StatusCode code, const char* what) {
  // First violation wins; later checks re-report it so every morsel on
  // every worker unwinds with the same terminal status.
  int expected = static_cast<int>(StatusCode::kOk);
  abort_code_.compare_exchange_strong(expected, static_cast<int>(code),
                                      std::memory_order_relaxed);
  return Status(abort_code(), what);
}

Status QueryContext::Check() {
  checks_.fetch_add(1, std::memory_order_relaxed);
  int aborted = abort_code_.load(std::memory_order_relaxed);
  if (aborted != static_cast<int>(StatusCode::kOk)) {
    return Status(static_cast<StatusCode>(aborted), "request aborted");
  }
  if (cancel_ && cancel_->load(std::memory_order_relaxed)) {
    return Abort(StatusCode::kCancelled, "request cancelled");
  }
  if (deadline_us_ != INT64_MAX && clock_() >= deadline_us_) {
    return Abort(StatusCode::kDeadlineExceeded, "deadline exceeded");
  }
  return Status::OK();
}

Status QueryContext::Charge(int64_t bytes) {
  if (bytes <= 0) return Status::OK();
  int64_t now =
      charged_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  // Sticky abort first (the charge above is still recorded so peak
  // accounting matches allocation order while workers unwind).
  int aborted = abort_code_.load(std::memory_order_relaxed);
  if (aborted != static_cast<int>(StatusCode::kOk)) {
    return Status(static_cast<StatusCode>(aborted), "request aborted");
  }
  if (now > budget_bytes_) {
    return Abort(StatusCode::kResourceExhausted, "memory budget exceeded");
  }
  return Status::OK();
}

void QueryContext::Release(int64_t bytes) {
  if (bytes <= 0) return;
  charged_.fetch_sub(bytes, std::memory_order_relaxed);
}

namespace governor {

QueryContext* Current() { return t_context; }

QueryContext* InstallContext(QueryContext* ctx) {
  QueryContext* prev = t_context;
  t_context = ctx;
  return prev;
}

bool Suppressed() { return t_suppress_depth > 0; }

Status CheckPoint() {
  QueryContext* ctx = t_context;
  if (ctx == nullptr) return Status::OK();
  if (Suppressed()) return Status::OK();
  return ctx->Check();
}

Status ChargeMemory(int64_t bytes) {
  QueryContext* ctx = t_context;
  if (ctx == nullptr) return Status::OK();
  if (Suppressed()) return Status::OK();
  return ctx->Charge(bytes);
}

void ReleaseMemory(int64_t bytes) {
  QueryContext* ctx = t_context;
  if (ctx == nullptr) return;
  if (Suppressed()) return;
  ctx->Release(bytes);
}

}  // namespace governor

GovernorSuppressScope::GovernorSuppressScope() { ++t_suppress_depth; }

GovernorSuppressScope::~GovernorSuppressScope() { --t_suppress_depth; }

Status AdmissionGate::Enter() {
  std::unique_lock<std::mutex> lock(mu_);
  auto has_slot = [this] {
    return in_flight_.load(std::memory_order_relaxed) < max_inflight_;
  };
  if (!has_slot()) {
    if (queue_us_ <= 0 ||
        !cv_.wait_for(lock, std::chrono::microseconds(queue_us_), has_slot)) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "admission rejected: " + std::to_string(max_inflight_) +
          " requests already in flight");
    }
  }
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void AdmissionGate::Leave() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
}

void GovernorConfig::FromEnv() {
  if (deadline_ms == 0) deadline_ms = EnvInt64OrDie("DVMS_DEADLINE_MS");
  if (mem_budget == 0) mem_budget = EnvInt64OrDie("DVMS_MEM_BUDGET");
  if (max_inflight == 0) {
    max_inflight = static_cast<int>(EnvInt64OrDie("DVMS_MAX_INFLIGHT"));
  }
  if (queue_ms == 0) queue_ms = EnvInt64OrDie("DVMS_QUEUE_MS");
  if (max_readers == 0) {
    max_readers = static_cast<int>(EnvInt64OrDie("DVMS_MAX_READERS"));
  }
}

}  // namespace dvms
