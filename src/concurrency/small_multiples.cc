#include "concurrency/small_multiples.h"

#include <algorithm>

namespace dvms {

std::pair<double, double> SmallMultipleCellOrigin(
    size_t index, const SmallMultiplesConfig& config) {
  size_t col = index % config.columns;
  size_t row = index / config.columns;
  return {config.origin_x +
              static_cast<double>(col) * (config.cell_width + config.gap),
          config.origin_y +
              static_cast<double>(row) * (config.cell_height + config.gap)};
}

Table LayoutSmallMultiples(const std::vector<ChartCopy>& copies,
                           const SmallMultiplesConfig& config) {
  Table marks(Schema({{"x", ValueType::kDouble},
                      {"y", ValueType::kDouble},
                      {"width", ValueType::kDouble},
                      {"height", ValueType::kDouble},
                      {"fill", ValueType::kString}}));
  double global_max = 0;
  for (const ChartCopy& copy : copies) {
    for (double v : copy.values) global_max = std::max(global_max, v);
  }
  if (global_max <= 0) global_max = 1;

  for (size_t i = 0; i < copies.size(); ++i) {
    const ChartCopy& copy = copies[i];
    auto [cx, cy] = SmallMultipleCellOrigin(i, config);
    size_t n = copy.values.size();
    if (n == 0) continue;
    double band = config.cell_width / static_cast<double>(n);
    double bar_width = band * (1.0 - config.bar_padding);
    for (size_t b = 0; b < n; ++b) {
      double h = config.cell_height * (copy.values[b] / global_max);
      if (h <= 0) continue;
      marks.AppendUnchecked(
          {Value::Double(cx + static_cast<double>(b) * band +
                         band * config.bar_padding * 0.5),
           Value::Double(cy + config.cell_height - h),
           Value::Double(bar_width), Value::Double(h),
           Value::String(config.fill)});
    }
  }
  return marks;
}

}  // namespace dvms
