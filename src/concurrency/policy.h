#ifndef DVMS_CONCURRENCY_POLICY_H_
#define DVMS_CONCURRENCY_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dvms {

/// The reordering (concurrency-control) policies of §3.2: how a
/// visualization handles responses to user interactions arriving with
/// unpredictable latency.
enum class CcPolicy {
  kNoCC,        // render every response on arrival, any order
  kSerial,      // buffer; render strictly in request order
  kDiscard,     // render in order; drop responses that arrive out of order
  kMostRecent,  // render only the response to the latest request
  kMvcc,        // multi-visual CC: each request renders its own chart copy
};

const char* CcPolicyToString(CcPolicy policy);

/// All five policies, in the paper's presentation order.
const std::vector<CcPolicy>& AllCcPolicies();

/// Implements the render decision each policy makes as responses arrive.
/// Drives both the simulated-user study and the unit tests; time is only
/// used for bookkeeping, ordering decisions depend on request ids.
class ResponseCoordinator {
 public:
  explicit ResponseCoordinator(CcPolicy policy) : policy_(policy) {}

  /// Notes that request `id` was issued. Ids must be strictly increasing.
  void OnRequest(size_t id);

  /// A response to request `id` arrived. Returns the ids whose results are
  /// rendered *now*, in render order (Serial may release several buffered
  /// responses at once; a drop returns an empty list).
  std::vector<size_t> OnResponse(size_t id);

  size_t rendered_count() const { return rendered_; }
  size_t dropped_count() const { return dropped_; }

  /// MVCC only: number of chart copies created (== rendered responses).
  size_t chart_copies() const { return policy_ == CcPolicy::kMvcc ? rendered_ : 0; }

 private:
  CcPolicy policy_;
  size_t latest_request_ = 0;
  bool any_request_ = false;
  size_t next_to_render_ = 0;      // Serial
  size_t high_water_ = 0;          // Discard: first id NOT yet superseded
  bool high_water_set_ = false;
  std::vector<size_t> buffered_;   // Serial: out-of-order responses held back
  size_t rendered_ = 0;
  size_t dropped_ = 0;
};

}  // namespace dvms

#endif  // DVMS_CONCURRENCY_POLICY_H_
