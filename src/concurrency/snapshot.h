#ifndef DVMS_CONCURRENCY_SNAPSHOT_H_
#define DVMS_CONCURRENCY_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/binder.h"
#include "query/executor.h"
#include "storage/catalog.h"

namespace dvms {

/// An immutable freeze of one relation's full version surface at a publish
/// point: working state, committed `@vnow-k` history, per-event `@tnow-j`
/// steps, and the open-transaction base. Readers resolve every VersionRef
/// against this struct with the exact semantics of
/// VersionedTable::Version/StepVersion — no lock, no live storage.
struct RelationSnapshot {
  std::string name;        // display name (original casing)
  RelationKind kind = RelationKind::kBase;
  Schema declared_schema;  // for empty @tnow reads outside a transaction
  uint64_t table_epoch = 0;  // VersionedTable::epoch() at publish

  TablePtr current;                 // never null once published
  std::vector<TablePtr> committed;  // oldest first
  std::vector<TablePtr> steps;      // oldest first, within transaction
  TablePtr txn_base;                // null when no transaction was open
  bool in_transaction = false;

  /// Mirrors VersionedTable::Version (kVnow / kCurrent) and
  /// ::StepVersion (kTnow), including the out-of-range error texts.
  Result<TablePtr> Read(const VersionRef& version) const;
};

using RelationSnapshotPtr = std::shared_ptr<const RelationSnapshot>;

/// A consistent engine-wide snapshot: every relation frozen at the same
/// publish epoch. Immutable once published; shared_ptr ownership means a
/// pinned epoch cannot be reclaimed while any reader still holds it.
/// Serves both planner schema resolution and executor scans.
class EngineSnapshotView : public SchemaResolver, public RelationSource {
 public:
  /// Monotone publish epoch (1 = first publish after engine construction).
  uint64_t epoch() const { return epoch_; }

  const RelationSnapshotPtr* Find(const std::string& name) const;
  std::vector<std::string> Names() const { return names_; }

  // SchemaResolver: schema of the working state at the snapshot.
  Result<Schema> ResolveRelation(const std::string& name) const override;

  // RelationSource: versioned read against the frozen histories.
  Result<TablePtr> Read(const std::string& relation,
                        const VersionRef& version) const override;

 private:
  friend class SnapshotManager;

  uint64_t epoch_ = 0;
  std::unordered_map<std::string, RelationSnapshotPtr> relations_;  // IdentKey
  std::vector<std::string> names_;  // creation order, original casing
};

using SnapshotPtr = std::shared_ptr<const EngineSnapshotView>;

/// Read view layered over a base snapshot: per-read overlays (fresh system
/// relations like dvms_metrics, built from thread-safe obs counters at read
/// time) shadow the published snapshot without mutating it.
class OverlaySnapshotView : public SchemaResolver, public RelationSource {
 public:
  explicit OverlaySnapshotView(const EngineSnapshotView* base) : base_(base) {}

  /// Shadows `name` with a freshly built table for this read only.
  void AddOverlay(const std::string& name, Table table);

  bool HasOverlay(const std::string& name) const;

  Result<Schema> ResolveRelation(const std::string& name) const override;
  Result<TablePtr> Read(const std::string& relation,
                        const VersionRef& version) const override;

 private:
  const EngineSnapshotView* base_;
  std::unordered_map<std::string, TablePtr> overlays_;  // IdentKey
};

/// Publishes and hands out engine snapshots.
///
/// Publish() runs under the engine write lock at the end of every mutation
/// unit; it is incremental — relations whose VersionedTable::epoch() did
/// not move since the last publish share the previous RelationSnapshot
/// (O(1) per unchanged relation), and if nothing moved at all the previous
/// EngineSnapshotView stays current and no new epoch is minted.
///
/// Acquire() is what readers call; it takes a brief internal mutex (never
/// the engine lock) and returns a shared_ptr that keeps the whole epoch
/// alive. GC is reference counting: an epoch is reclaimed when the last
/// reader (and the manager's own latest-pointer) releases it — a pinned
/// epoch can therefore never be reclaimed early, which ASan verifies for
/// free in the snapshot-invariant tests.
class SnapshotManager {
 public:
  /// Freezes `catalog` (skipping kSystem relations — those are rebuilt per
  /// read from thread-safe obs state). Returns the now-current epoch.
  uint64_t Publish(const Catalog& catalog);

  /// The latest published snapshot; null before the first Publish.
  SnapshotPtr Acquire() const;

  /// Explicit pin accounting (session Pin/Unpin and per-read guards):
  /// purely for leak-checking via GovernorStats — lifetime itself is the
  /// shared_ptr.
  void NotePin();
  void NoteUnpin();

  uint64_t current_epoch() const;
  int64_t pinned() const;
  uint64_t epochs_published() const;
  /// Published epochs whose EngineSnapshotView has been destroyed.
  uint64_t epochs_retired() const;

 private:
  mutable std::mutex mu_;
  SnapshotPtr latest_;
  uint64_t next_epoch_ = 1;
  uint64_t epochs_published_ = 0;
  uint64_t retired_compacted_ = 0;  // retired views dropped from history_
  int64_t pinned_ = 0;
  /// Every published view, weakly held: retired = published - still alive.
  mutable std::vector<std::weak_ptr<const EngineSnapshotView>> history_;
};

}  // namespace dvms

#endif  // DVMS_CONCURRENCY_SNAPSHOT_H_
