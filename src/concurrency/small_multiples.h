#ifndef DVMS_CONCURRENCY_SMALL_MULTIPLES_H_
#define DVMS_CONCURRENCY_SMALL_MULTIPLES_H_

#include <string>
#include <vector>

#include "storage/table.h"

namespace dvms {

/// The multi-visual concurrency-control design of Figure 4(b): instead of
/// updating one chart in place, each in-flight request renders into its
/// own copy, laid out as small multiples so updates never conflict on
/// pixels.
struct SmallMultiplesConfig {
  size_t columns = 4;
  double cell_width = 120;
  double cell_height = 90;
  double origin_x = 10;
  double origin_y = 10;
  double gap = 10;
  double bar_padding = 0.2;
  std::string fill = "steelblue";
};

/// One chart copy: a label (e.g. the hovered facet) and its bar values.
struct ChartCopy {
  std::string label;
  std::vector<double> values;
};

/// Lays the chart copies out in reading order and returns one rect-marks
/// relation (x, y, width, height, fill) for all of them: copy i occupies
/// grid cell (i % columns, i / columns); bars are scaled to the cell
/// height by the global maximum so copies are visually comparable.
Table LayoutSmallMultiples(const std::vector<ChartCopy>& copies,
                           const SmallMultiplesConfig& config);

/// Pixel origin of copy `index`'s cell (exposed for tests and hit testing).
std::pair<double, double> SmallMultipleCellOrigin(
    size_t index, const SmallMultiplesConfig& config);

}  // namespace dvms

#endif  // DVMS_CONCURRENCY_SMALL_MULTIPLES_H_
