#include "concurrency/policy.h"

#include <algorithm>

namespace dvms {

const char* CcPolicyToString(CcPolicy policy) {
  switch (policy) {
    case CcPolicy::kNoCC:
      return "No CC";
    case CcPolicy::kSerial:
      return "Serial";
    case CcPolicy::kDiscard:
      return "Discard";
    case CcPolicy::kMostRecent:
      return "Most Recent";
    case CcPolicy::kMvcc:
      return "MVCC";
  }
  return "?";
}

const std::vector<CcPolicy>& AllCcPolicies() {
  static const std::vector<CcPolicy>* kAll = new std::vector<CcPolicy>{
      CcPolicy::kNoCC, CcPolicy::kSerial, CcPolicy::kDiscard,
      CcPolicy::kMostRecent, CcPolicy::kMvcc};
  return *kAll;
}

void ResponseCoordinator::OnRequest(size_t id) {
  latest_request_ = id;
  any_request_ = true;
}

std::vector<size_t> ResponseCoordinator::OnResponse(size_t id) {
  switch (policy_) {
    case CcPolicy::kNoCC:
    case CcPolicy::kMvcc: {
      ++rendered_;
      return {id};
    }
    case CcPolicy::kSerial: {
      buffered_.push_back(id);
      std::sort(buffered_.begin(), buffered_.end());
      std::vector<size_t> released;
      while (!buffered_.empty() && buffered_.front() == next_to_render_) {
        released.push_back(buffered_.front());
        buffered_.erase(buffered_.begin());
        ++next_to_render_;
        ++rendered_;
      }
      return released;
    }
    case CcPolicy::kDiscard: {
      if (!high_water_set_ || id >= high_water_) {
        high_water_ = id + 1;
        high_water_set_ = true;
        ++rendered_;
        return {id};
      }
      ++dropped_;
      return {};
    }
    case CcPolicy::kMostRecent: {
      if (any_request_ && id == latest_request_) {
        ++rendered_;
        return {id};
      }
      ++dropped_;
      return {};
    }
  }
  return {};
}

}  // namespace dvms
