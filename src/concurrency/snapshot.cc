#include "concurrency/snapshot.h"

#include <algorithm>
#include <utility>

namespace dvms {

Result<TablePtr> RelationSnapshot::Read(const VersionRef& version) const {
  switch (version.kind) {
    case VersionRef::Kind::kCurrent:
      return current;
    case VersionRef::Kind::kVnow: {
      size_t k = version.offset;
      if (k == 0) return current;
      if (k > committed.size()) {
        return Status::NotFound("table '" + name + "' has no version @vnow-" +
                                std::to_string(k) + " (history depth " +
                                std::to_string(committed.size()) + ")");
      }
      return committed[committed.size() - k];
    }
    case VersionRef::Kind::kTnow: {
      size_t j = version.offset;
      if (j == 0) return current;
      if (!in_transaction) return MakeTablePtr(Table(declared_schema));
      if (j > steps.size()) {
        if (txn_base != nullptr) return txn_base;
        return MakeTablePtr(Table(declared_schema));
      }
      return steps[steps.size() - j];
    }
  }
  return Status::Internal("bad version ref");
}

const RelationSnapshotPtr* EngineSnapshotView::Find(
    const std::string& name) const {
  auto it = relations_.find(IdentKey(name));
  if (it == relations_.end()) return nullptr;
  return &it->second;
}

Result<Schema> EngineSnapshotView::ResolveRelation(
    const std::string& name) const {
  const RelationSnapshotPtr* rel = Find(name);
  if (rel == nullptr) {
    return Status::NotFound("unknown relation '" + name + "'");
  }
  return (*rel)->current->schema();
}

Result<TablePtr> EngineSnapshotView::Read(const std::string& relation,
                                          const VersionRef& version) const {
  const RelationSnapshotPtr* rel = Find(relation);
  if (rel == nullptr) {
    return Status::NotFound("unknown relation '" + relation + "'");
  }
  return (*rel)->Read(version);
}

void OverlaySnapshotView::AddOverlay(const std::string& name, Table table) {
  overlays_[IdentKey(name)] = MakeTablePtr(std::move(table));
}

bool OverlaySnapshotView::HasOverlay(const std::string& name) const {
  return overlays_.count(IdentKey(name)) > 0;
}

Result<Schema> OverlaySnapshotView::ResolveRelation(
    const std::string& name) const {
  auto it = overlays_.find(IdentKey(name));
  if (it != overlays_.end()) return it->second->schema();
  return base_->ResolveRelation(name);
}

Result<TablePtr> OverlaySnapshotView::Read(const std::string& relation,
                                           const VersionRef& version) const {
  auto it = overlays_.find(IdentKey(relation));
  if (it != overlays_.end()) {
    // System relations have no history: every version ref resolves to the
    // freshly built table (they are excluded from commits and snapshots).
    return it->second;
  }
  return base_->Read(relation, version);
}

uint64_t SnapshotManager::Publish(const Catalog& catalog) {
  std::lock_guard<std::mutex> lock(mu_);
  const EngineSnapshotView* prev = latest_.get();
  auto next = std::make_shared<EngineSnapshotView>();
  bool changed = prev == nullptr;
  for (const std::string& name : catalog.Names()) {
    auto table_or = catalog.Get(name);
    if (!table_or.ok()) continue;  // racing Drop cannot happen (write lock)
    const VersionedTable* table = table_or.value();
    auto kind_or = catalog.KindOf(name);
    RelationKind kind = kind_or.ok() ? kind_or.value() : RelationKind::kBase;
    if (kind == RelationKind::kSystem) continue;  // rebuilt per read
    std::string key = IdentKey(table->name());

    // Incremental reuse: an unchanged mutation epoch certifies the whole
    // version surface is bit-identical to the previous publish.
    if (prev != nullptr) {
      auto it = prev->relations_.find(key);
      if (it != prev->relations_.end() &&
          it->second->table_epoch == table->epoch()) {
        next->relations_.emplace(key, it->second);
        next->names_.push_back(it->second->name);
        continue;
      }
    }
    changed = true;
    auto rel = std::make_shared<RelationSnapshot>();
    rel->name = table->name();
    rel->kind = kind;
    rel->declared_schema = table->declared_schema();
    rel->table_epoch = table->epoch();
    rel->current = MakeTablePtr(table->current());
    rel->committed = table->committed_versions();
    rel->steps = table->step_versions();
    rel->txn_base = table->transaction_base();
    rel->in_transaction = table->in_transaction();
    next->relations_.emplace(std::move(key), std::move(rel));
    next->names_.push_back(table->name());
  }
  if (prev != nullptr && !changed &&
      next->relations_.size() == prev->relations_.size()) {
    // Nothing moved (e.g. a rolled-back unit restored every epoch): the
    // previous view stays current and no epoch is minted.
    return prev->epoch_;
  }
  next->epoch_ = next_epoch_++;
  ++epochs_published_;
  history_.push_back(next);
  // Bound the weak history (retired entries are counted then dropped).
  if (history_.size() > 4096) {
    uint64_t retired = 0;
    history_.erase(std::remove_if(history_.begin(), history_.end(),
                                  [&retired](const auto& w) {
                                    if (w.expired()) {
                                      ++retired;
                                      return true;
                                    }
                                    return false;
                                  }),
                   history_.end());
    retired_compacted_ += retired;
  }
  latest_ = std::move(next);
  return latest_->epoch();
}

SnapshotPtr SnapshotManager::Acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_;
}

void SnapshotManager::NotePin() {
  std::lock_guard<std::mutex> lock(mu_);
  ++pinned_;
}

void SnapshotManager::NoteUnpin() {
  std::lock_guard<std::mutex> lock(mu_);
  --pinned_;
}

uint64_t SnapshotManager::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_ == nullptr ? 0 : latest_->epoch();
}

int64_t SnapshotManager::pinned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pinned_;
}

uint64_t SnapshotManager::epochs_published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epochs_published_;
}

uint64_t SnapshotManager::epochs_retired() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t retired = retired_compacted_;
  for (const auto& w : history_) {
    if (w.expired()) ++retired;
  }
  return retired;
}

}  // namespace dvms
