#include "concurrency/study.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace dvms {

const char* JudgmentTaskToString(JudgmentTask task) {
  switch (task) {
    case JudgmentTask::kThreshold:
      return "threshold";
    case JudgmentTask::kTrend:
      return "trend";
  }
  return "?";
}

namespace {

double Delay(const StudyConfig& config, Rng* rng) {
  if (config.mean_delay_ms <= 0) return 0.0;
  return rng->Exponential(config.mean_delay_ms);
}

/// Strategy observed in the paper for concurrency-unfriendly policies:
/// participants serialize their own input — hover, wait for the update,
/// read it, move on.
ParticipantResult SimulateSerialized(const StudyConfig& config, Rng* rng,
                                     bool with_confusion) {
  ParticipantResult result;
  double t = 0;
  for (size_t f = 0; f < config.num_facets; ++f) {
    t += config.hover_ms;
    ++result.requests_issued;
    double arrival = t + Delay(config, rng);
    t = std::max(t, arrival);
    t += config.observe_ms;
    if (with_confusion && config.mean_delay_ms > 0 &&
        rng->Bernoulli(config.nocc_confusion_prob)) {
      // An out-of-order render earlier in the session made the participant
      // double-check which facet the chart shows.
      t += config.observe_ms;
    }
  }
  result.completion_ms = t;
  return result;
}

struct PipelineOutcome {
  std::vector<double> issue;
  std::vector<double> arrival;
  double issue_end = 0;
};

/// Issues one request per facet with a bounded number in flight. Responses
/// under Serial render in request order.
PipelineOutcome IssuePipelined(const StudyConfig& config, Rng* rng) {
  PipelineOutcome out;
  const size_t n = config.num_facets;
  out.issue.resize(n);
  out.arrival.resize(n);
  std::vector<double> applied(n);
  double user = 0;
  for (size_t f = 0; f < n; ++f) {
    double earliest = user + config.hover_ms;
    if (f >= config.pipeline_window) {
      // Wait until an older request has rendered before issuing another.
      earliest = std::max(earliest, applied[f - config.pipeline_window]);
    }
    out.issue[f] = earliest;
    user = earliest;
    out.arrival[f] = earliest + Delay(config, rng);
    applied[f] = std::max(out.arrival[f], f > 0 ? applied[f - 1] : 0.0);
  }
  out.issue_end = user;
  return out;
}

ParticipantResult SimulateSerialPolicy(const StudyConfig& config, Rng* rng) {
  ParticipantResult result;
  PipelineOutcome pipe = IssuePipelined(config, rng);
  result.requests_issued = config.num_facets;
  // In-order rendering; the participant reads each update as it lands.
  double applied = 0;
  double observed = pipe.issue_end;
  for (size_t f = 0; f < config.num_facets; ++f) {
    applied = std::max(applied, pipe.arrival[f]);
    observed = std::max(observed, applied) + config.observe_ms;
  }
  result.completion_ms = observed;
  return result;
}

ParticipantResult SimulateDiscard(const StudyConfig& config, Rng* rng) {
  ParticipantResult result;
  PipelineOutcome pipe = IssuePipelined(config, rng);
  result.requests_issued = config.num_facets;

  // Process responses in arrival order through the Discard coordinator.
  std::vector<size_t> order(config.num_facets);
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&pipe](size_t a, size_t b) {
    return pipe.arrival[a] < pipe.arrival[b];
  });
  ResponseCoordinator coordinator(CcPolicy::kDiscard);
  for (size_t f = 0; f < config.num_facets; ++f) coordinator.OnRequest(f);
  std::vector<bool> rendered(config.num_facets, false);
  double observed = pipe.issue_end;
  for (size_t f : order) {
    auto released = coordinator.OnResponse(f);
    for (size_t id : released) {
      rendered[id] = true;
      observed = std::max(observed, pipe.arrival[id]) + config.observe_ms;
    }
  }
  result.responses_dropped = coordinator.dropped_count();

  // Facets whose responses were discarded must be re-hovered; the
  // participant serializes the second pass to avoid another drop.
  double t = observed;
  for (size_t f = 0; f < config.num_facets; ++f) {
    if (rendered[f]) continue;
    ++result.rehovers;
    ++result.requests_issued;
    t += config.hover_ms;
    double arrival = t + Delay(config, rng);
    t = std::max(t, arrival) + config.observe_ms;
  }
  result.completion_ms = t;
  return result;
}

ParticipantResult SimulateMvcc(const StudyConfig& config, Rng* rng) {
  ParticipantResult result;
  result.requests_issued = config.num_facets;
  // Fan out: hover every facet back to back; each response renders its own
  // chart copy.
  double t = 0;
  std::vector<double> arrival(config.num_facets);
  for (size_t f = 0; f < config.num_facets; ++f) {
    t += config.hover_ms;
    arrival[f] = t + Delay(config, rng);
  }
  double observed = t;
  if (config.task == JudgmentTask::kTrend) {
    // Trend needs facet order; the small multiples are labeled, so the
    // participant reads them in facet order as they become available.
    for (size_t f = 0; f < config.num_facets; ++f) {
      observed = std::max(observed, arrival[f]) + config.mvcc_read_ms;
    }
  } else {
    // Threshold is order-free: read charts in arrival order.
    std::sort(arrival.begin(), arrival.end());
    for (double a : arrival) {
      observed = std::max(observed, a) + config.mvcc_read_ms;
    }
  }
  result.completion_ms = observed;
  return result;
}

}  // namespace

ParticipantResult SimulateParticipant(const StudyConfig& config) {
  Rng rng(config.seed);
  const bool trend = config.task == JudgmentTask::kTrend;
  switch (config.policy) {
    case CcPolicy::kNoCC:
      // Unordered updates force self-serialization, with occasional
      // double-checks when an update is ambiguous.
      return SimulateSerialized(config, &rng, /*with_confusion=*/true);
    case CcPolicy::kMostRecent:
      // Only the latest response renders, so pipelining would lose data:
      // participants serialize.
      return SimulateSerialized(config, &rng, /*with_confusion=*/false);
    case CcPolicy::kSerial:
      return SimulateSerialPolicy(config, &rng);
    case CcPolicy::kDiscard:
      if (trend) {
        // Out-of-order responses are dropped and order matters: the safe
        // strategy is full serialization.
        return SimulateSerialized(config, &rng, /*with_confusion=*/false);
      }
      return SimulateDiscard(config, &rng);
    case CcPolicy::kMvcc:
      return SimulateMvcc(config, &rng);
  }
  return {};
}

StudyAggregate RunStudy(StudyConfig config, size_t participants) {
  StudyAggregate aggregate;
  std::vector<double> times;
  times.reserve(participants);
  double sum_requests = 0, sum_dropped = 0;
  Rng seeder(config.seed);
  for (size_t p = 0; p < participants; ++p) {
    config.seed = seeder.NextUint64();
    ParticipantResult r = SimulateParticipant(config);
    times.push_back(r.completion_ms);
    sum_requests += static_cast<double>(r.requests_issued);
    sum_dropped += static_cast<double>(r.responses_dropped);
  }
  double sum = 0;
  for (double t : times) sum += t;
  aggregate.mean_completion_ms = sum / static_cast<double>(participants);
  double sq = 0;
  for (double t : times) {
    double d = t - aggregate.mean_completion_ms;
    sq += d * d;
  }
  aggregate.stddev_ms = std::sqrt(sq / static_cast<double>(participants));
  aggregate.mean_requests = sum_requests / static_cast<double>(participants);
  aggregate.mean_dropped = sum_dropped / static_cast<double>(participants);
  return aggregate;
}

}  // namespace dvms
