#ifndef DVMS_CONCURRENCY_STUDY_H_
#define DVMS_CONCURRENCY_STUDY_H_

#include "common/rng.h"
#include "concurrency/policy.h"

namespace dvms {

/// The judgment tasks of the §3.2 user study. The threshold task is
/// order-insensitive (does any facet's bar exceed a threshold?); the trend
/// task requires the user to integrate facets *in order*, so update order
/// matters.
enum class JudgmentTask { kThreshold, kTrend };

const char* JudgmentTaskToString(JudgmentTask task);

/// One simulated participant session: a faceted bar chart driven by an
/// interaction widget; hovering a facet issues a request whose response
/// updates the chart after a stochastic delay.
struct StudyConfig {
  CcPolicy policy = CcPolicy::kNoCC;
  JudgmentTask task = JudgmentTask::kThreshold;
  /// Mean response delay in ms (exponential); 0 disables delay.
  double mean_delay_ms = 0.0;
  size_t num_facets = 12;

  // Behavioural constants of the simulated user, calibrated to typical
  // HCI values: time to move to and hover a facet, time to read a chart
  // update, and the (higher) time to locate and read one small multiple in
  // a cluttered MVCC grid.
  double hover_ms = 250.0;
  double observe_ms = 400.0;
  double mvcc_read_ms = 550.0;
  /// Probability a NoCC participant re-reads a chart because an
  /// out-of-order update made attribution ambiguous (only under delay).
  double nocc_confusion_prob = 0.3;
  /// Pipelining window participants use under order-preserving policies.
  size_t pipeline_window = 3;

  uint64_t seed = 1;
};

struct ParticipantResult {
  double completion_ms = 0;
  size_t requests_issued = 0;
  size_t responses_dropped = 0;
  size_t rehovers = 0;
};

/// Simulates one participant completing the task under the config's policy
/// (discrete-event, virtual clock).
ParticipantResult SimulateParticipant(const StudyConfig& config);

struct StudyAggregate {
  double mean_completion_ms = 0;
  double stddev_ms = 0;
  double mean_requests = 0;
  double mean_dropped = 0;
};

/// Averages over `participants` seeded participants.
StudyAggregate RunStudy(StudyConfig config, size_t participants);

}  // namespace dvms

#endif  // DVMS_CONCURRENCY_STUDY_H_
