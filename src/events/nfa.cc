#include "events/nfa.h"

#include "expr/eval.h"
#include "governor/governor.h"
#include "obs/trace.h"

namespace dvms {

const char* MatchActionToString(MatchAction action) {
  switch (action) {
    case MatchAction::kNone:
      return "none";
    case MatchAction::kStarted:
      return "started";
    case MatchAction::kProgress:
      return "progress";
    case MatchAction::kCommitted:
      return "committed";
    case MatchAction::kAborted:
      return "aborted";
  }
  return "?";
}

PatternMatcher::PatternMatcher(CompiledPattern pattern, const UdfRegistry* udfs)
    : pattern_(std::move(pattern)), udfs_(udfs) {
  Reset();
}

void PatternMatcher::Reset() {
  active_ = false;
  pos_ = 0;
  slots_.assign((pattern_.NumElems() + 1) * EventAttributeCount(), Value());
  exists_satisfied_.assign(pattern_.quantifiers.size(), false);
}

size_t PatternMatcher::FindBindable(size_t from_pos, EventType type) const {
  for (size_t q = from_pos; q < pattern_.NumElems(); ++q) {
    if (pattern_.elems[q].type == type) return q;
    if (!pattern_.elems[q].kleene) return kNpos;  // mandatory element blocks
  }
  return kNpos;
}

Result<MatchAction> PatternMatcher::BindAt(size_t elem, const InputEvent& event,
                                           bool starting,
                                           std::vector<Row>* out_rows) {
  const size_t attrs = EventAttributeCount();
  EvalContext ctx;
  ctx.udfs = udfs_;

  // Tentatively bind into a scratch copy so a filtered event leaves no trace.
  Row scratch = slots_;
  Row event_row = EventToRow(event);
  for (size_t a = 0; a < attrs; ++a) scratch[elem * attrs + a] = event_row[a];

  // Plain predicates gated on this element: failure filters the event.
  for (const GatedPredicate& gate : pattern_.gates) {
    if (gate.gate != elem) continue;
    DVMS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*gate.expr, scratch, ctx));
    if (!pass) return MatchAction::kNone;
  }

  // Quantifiers over this element's occurrences. The variable occupies the
  // last slot.
  for (size_t qi = 0; qi < pattern_.quantifiers.size(); ++qi) {
    const QuantifiedPredicate& q = pattern_.quantifiers[qi];
    if (q.over_elem != elem) continue;
    Row with_var = scratch;
    for (size_t a = 0; a < attrs; ++a) {
      with_var[pattern_.NumElems() * attrs + a] = event_row[a];
    }
    DVMS_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*q.expr, with_var, ctx));
    if (q.forall && !pass) {
      Reset();
      return MatchAction::kAborted;
    }
    if (!q.forall && pass) exists_satisfied_[qi] = true;
  }

  // Commit the binding.
  slots_ = std::move(scratch);
  pos_ = elem;
  active_ = true;

  // Emissions: every RETURN statement whose latest referenced alias is the
  // element that just bound.
  for (const CompiledReturn& ret : pattern_.returns) {
    if (ret.emit_on != elem) continue;
    Row out;
    out.reserve(ret.exprs.size());
    for (const ExprPtr& e : ret.exprs) {
      DVMS_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, slots_, ctx));
      out.push_back(std::move(v));
    }
    out_rows->push_back(std::move(out));
  }

  // Accept?
  if (elem == pattern_.NumElems() - 1) {
    bool all_exists = true;
    for (size_t qi = 0; qi < pattern_.quantifiers.size(); ++qi) {
      if (!pattern_.quantifiers[qi].forall && !exists_satisfied_[qi]) {
        all_exists = false;
      }
    }
    Reset();
    return all_exists ? MatchAction::kCommitted : MatchAction::kAborted;
  }
  return starting ? MatchAction::kStarted : MatchAction::kProgress;
}

Result<MatchAction> PatternMatcher::Feed(const InputEvent& event,
                                         std::vector<Row>* out_rows) {
  Result<MatchAction> result = FeedImpl(event, out_rows);
  if (obs::Enabled() && result.ok()) {
    obs::Count("events.transitions");
    switch (result.value()) {
      case MatchAction::kCommitted:
        obs::Count("events.commits");
        break;
      case MatchAction::kAborted:
        obs::Count("events.aborts");
        break;
      case MatchAction::kNone:
        obs::Count("events.filtered");
        break;
      default:
        break;
    }
  }
  return result;
}

Result<MatchAction> PatternMatcher::FeedImpl(const InputEvent& event,
                                             std::vector<Row>* out_rows) {
  // Governor checkpoint per transition: event streams are unbounded, so a
  // deadline or cancel must be able to abort between any two events.
  DVMS_RETURN_IF_ERROR(governor::CheckPoint());
  // Non-alphabet event types are filtered from the input stream.
  if (!pattern_.InAlphabet(event.type)) return MatchAction::kNone;

  if (!active_) {
    size_t q = FindBindable(0, event.type);
    if (q == kNpos) return MatchAction::kNone;  // nothing to abort yet
    DVMS_ASSIGN_OR_RETURN(MatchAction action,
                          BindAt(q, event, /*starting=*/true, out_rows));
    // A reject before the match begins is a no-op: there is no transaction
    // to abort yet.
    if (action == MatchAction::kAborted) return MatchAction::kNone;
    return action;
  }

  // Prefer repeating the current kleene element (greedy), otherwise advance.
  if (pattern_.elems[pos_].kleene && pattern_.elems[pos_].type == event.type) {
    return BindAt(pos_, event, /*starting=*/false, out_rows);
  }
  size_t q = FindBindable(pos_ + 1, event.type);
  if (q != kNpos) {
    return BindAt(q, event, /*starting=*/false, out_rows);
  }
  // An alphabet event that cannot extend the match: reject state.
  Reset();
  return MatchAction::kAborted;
}

}  // namespace dvms
