#ifndef DVMS_EVENTS_PATTERN_H_
#define DVMS_EVENTS_PATTERN_H_

#include <string>
#include <vector>

#include "events/event.h"
#include "expr/udf_registry.h"
#include "parser/ast.h"

namespace dvms {

/// One element of a compiled sequence pattern.
struct PatternElem {
  EventType type;
  std::string alias;
  bool kleene = false;
};

/// A plain WHERE predicate, gated on the latest pattern element it
/// references: it is checked when an event is about to bind that element,
/// and a failing event is filtered from the input stream (not a reject).
struct GatedPredicate {
  ExprPtr expr;     // bound against the slot layout (see CompiledPattern)
  size_t gate = 0;  // element index at which to evaluate
};

/// A FORALL/EXISTS predicate over the occurrences of one (typically kleene)
/// element. FORALL failure triggers the NFA's reject state (transaction
/// abort); EXISTS must be satisfied by some occurrence before commit.
struct QuantifiedPredicate {
  bool forall = true;
  size_t over_elem = 0;  // which element's occurrences it ranges over
  ExprPtr expr;          // bound; the variable occupies the extra var slot
};

/// One RETURN projection statement, emitted whenever its latest referenced
/// element binds (per occurrence for kleene elements).
struct CompiledReturn {
  std::vector<ExprPtr> exprs;  // bound
  size_t emit_on = 0;          // latest element index referenced
};

/// An EVENT statement compiled against the event-attribute schema.
///
/// Expression slot layout: element i's attributes occupy flat row indexes
/// [i*A, (i+1)*A) where A = EventAttributeCount(); the quantifier variable
/// occupies [n*A, (n+1)*A).
struct CompiledPattern {
  std::vector<PatternElem> elems;
  std::vector<GatedPredicate> gates;
  std::vector<QuantifiedPredicate> quantifiers;
  std::vector<CompiledReturn> returns;
  Schema output_schema;

  /// True if `type` appears anywhere in the pattern (the NFA's alphabet).
  bool InAlphabet(EventType type) const;

  size_t NumElems() const { return elems.size(); }
};

/// Compiles and validates an EVENT statement:
///  * event types must be known, aliases unique,
///  * the last element must be non-repeating (the paper's termination rule),
///  * all expressions bind against the alias slots,
///  * all RETURN tuples must be union-compatible (they feed one table).
Result<CompiledPattern> CompilePattern(const EventStmt& stmt,
                                       const UdfRegistry* udfs);

}  // namespace dvms

#endif  // DVMS_EVENTS_PATTERN_H_
