#include "events/pattern.h"

#include <unordered_map>

#include "query/binder.h"

namespace dvms {

namespace {

/// Finds the largest element index referenced by a bound expression, using
/// the slot layout documented on CompiledPattern. Returns 0 when the
/// expression references no element at all (literals only).
size_t LatestElemReferenced(const Expr& e, size_t attr_count) {
  size_t latest = 0;
  if (e.kind == ExprKind::kColumnRef && e.resolved_index >= 0) {
    latest = static_cast<size_t>(e.resolved_index) / attr_count;
  }
  for (const auto& c : e.children) {
    latest = std::max(latest, LatestElemReferenced(*c, attr_count));
  }
  return latest;
}

}  // namespace

bool CompiledPattern::InAlphabet(EventType type) const {
  for (const PatternElem& elem : elems) {
    if (elem.type == type) return true;
  }
  return false;
}

Result<CompiledPattern> CompilePattern(const EventStmt& stmt,
                                       const UdfRegistry* udfs) {
  CompiledPattern out;
  if (stmt.elems.empty()) {
    return Status::ParseError("EVENT statement has no pattern elements");
  }
  if (stmt.elems.back().kleene) {
    return Status::ParseError(
        "EVENT patterns must end with a non-repeating event so the "
        "transaction can commit exactly once");
  }
  if (stmt.returns.empty()) {
    return Status::ParseError("EVENT statement has no RETURN clause");
  }

  // Elements and aliases.
  std::unordered_map<std::string, size_t> alias_to_elem;
  for (const EventElem& elem : stmt.elems) {
    PatternElem compiled;
    DVMS_ASSIGN_OR_RETURN(compiled.type, EventTypeFromName(elem.event_type));
    compiled.alias = elem.alias.empty() ? elem.event_type : elem.alias;
    compiled.kleene = elem.kleene;
    std::string key = IdentKey(compiled.alias);
    if (alias_to_elem.count(key) > 0) {
      return Status::ParseError("duplicate pattern alias '" + compiled.alias +
                                "'");
    }
    alias_to_elem.emplace(std::move(key), out.elems.size());
    out.elems.push_back(std::move(compiled));
  }

  // Binding scope: one slot of event attributes per element, plus one var
  // slot for quantifiers.
  const Schema& attrs = EventAttributeSchema();
  const size_t attr_count = attrs.num_columns();
  auto scope_with_var = [&](const std::string& var) {
    std::vector<BoundField> scope;
    for (const PatternElem& elem : out.elems) {
      // A quantifier variable shadows a same-named pattern alias (the paper
      // writes `FORALL m IN M ...` where identifiers are case-insensitive).
      std::string qualifier = elem.alias;
      if (!var.empty() && IdentEquals(qualifier, var)) {
        qualifier = "__shadowed__";
      }
      for (const Column& col : attrs.columns()) {
        scope.push_back({qualifier, col.name, col.type});
      }
    }
    for (const Column& col : attrs.columns()) {
      // The var slot: invisible unless a quantifier names it.
      scope.push_back({var.empty() ? std::string("__var__") : var, col.name,
                       col.type});
    }
    return scope;
  };

  // A binder with no relation resolution (event predicates cannot reference
  // relations; IN predicates would need one).
  class NoRelations : public SchemaResolver {
   public:
    Result<Schema> ResolveRelation(const std::string& name) const override {
      return Status::BindError("EVENT predicates cannot reference relation '" +
                               name + "'");
    }
  };
  NoRelations no_relations;
  Binder binder(&no_relations, udfs);

  // Predicates.
  for (const EventPredicate& pred : stmt.predicates) {
    if (pred.kind == EventPredicate::Kind::kPlain) {
      GatedPredicate gated;
      gated.expr = CloneExpr(pred.expr);
      DVMS_RETURN_IF_ERROR(binder.BindExpr(gated.expr.get(), scope_with_var("")));
      gated.gate = LatestElemReferenced(*gated.expr, attr_count);
      out.gates.push_back(std::move(gated));
    } else {
      QuantifiedPredicate q;
      q.forall = pred.kind == EventPredicate::Kind::kForall;
      auto it = alias_to_elem.find(IdentKey(pred.over_alias));
      if (it == alias_to_elem.end()) {
        return Status::BindError("quantifier ranges over unknown alias '" +
                                 pred.over_alias + "'");
      }
      q.over_elem = it->second;
      q.expr = CloneExpr(pred.expr);
      DVMS_RETURN_IF_ERROR(
          binder.BindExpr(q.expr.get(), scope_with_var(pred.var)));
      out.quantifiers.push_back(std::move(q));
    }
  }

  // RETURN tuples.
  Schema first_schema;
  for (size_t ti = 0; ti < stmt.returns.size(); ++ti) {
    const ReturnTuple& tuple = stmt.returns[ti];
    CompiledReturn compiled;
    Schema schema;
    for (size_t fi = 0; fi < tuple.fields.size(); ++fi) {
      const ReturnField& field = tuple.fields[fi];
      ExprPtr e = CloneExpr(field.expr);
      DVMS_RETURN_IF_ERROR(binder.BindExpr(e.get(), scope_with_var("")));
      compiled.emit_on =
          std::max(compiled.emit_on, LatestElemReferenced(*e, attr_count));
      std::string name = field.alias;
      if (name.empty()) {
        if (e->kind == ExprKind::kColumnRef) {
          name = e->column;
        } else {
          name = "col" + std::to_string(fi);
        }
      }
      schema.AddColumn({name, e->resolved_type});
      compiled.exprs.push_back(std::move(e));
    }
    if (ti == 0) {
      first_schema = schema;
    } else if (!first_schema.UnionCompatible(schema)) {
      return Status::BindError(
          "RETURN projection statements must be union-compatible: [" +
          first_schema.ToString() + "] vs [" + schema.ToString() + "]");
    }
    out.returns.push_back(std::move(compiled));
  }
  out.output_schema = std::move(first_schema);
  return out;
}

}  // namespace dvms
