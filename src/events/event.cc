#include "events/event.h"

#include "common/string_util.h"

namespace dvms {

const char* EventTypeToString(EventType type) {
  switch (type) {
    case EventType::kMouseDown:
      return "MOUSE_DOWN";
    case EventType::kMouseMove:
      return "MOUSE_MOVE";
    case EventType::kMouseUp:
      return "MOUSE_UP";
    case EventType::kKeyPress:
      return "KEY_PRESS";
    case EventType::kWheel:
      return "WHEEL";
  }
  return "UNKNOWN";
}

Result<EventType> EventTypeFromName(const std::string& name) {
  if (IdentEquals(name, "MOUSE_DOWN")) return EventType::kMouseDown;
  if (IdentEquals(name, "MOUSE_MOVE")) return EventType::kMouseMove;
  if (IdentEquals(name, "MOUSE_UP")) return EventType::kMouseUp;
  if (IdentEquals(name, "KEY_PRESS")) return EventType::kKeyPress;
  if (IdentEquals(name, "WHEEL")) return EventType::kWheel;
  return Status::InvalidArgument("unknown event type '" + name + "'");
}

InputEvent InputEvent::MouseDown(int64_t t, double x, double y) {
  InputEvent e;
  e.type = EventType::kMouseDown;
  e.t = t;
  e.x = x;
  e.y = y;
  return e;
}

InputEvent InputEvent::MouseMove(int64_t t, double x, double y) {
  InputEvent e;
  e.type = EventType::kMouseMove;
  e.t = t;
  e.x = x;
  e.y = y;
  return e;
}

InputEvent InputEvent::MouseUp(int64_t t, double x, double y) {
  InputEvent e;
  e.type = EventType::kMouseUp;
  e.t = t;
  e.x = x;
  e.y = y;
  return e;
}

InputEvent InputEvent::KeyPress(int64_t t, std::string key) {
  InputEvent e;
  e.type = EventType::kKeyPress;
  e.t = t;
  e.key = std::move(key);
  return e;
}

InputEvent InputEvent::Wheel(int64_t t, double x, double y, double delta) {
  InputEvent e;
  e.type = EventType::kWheel;
  e.t = t;
  e.x = x;
  e.y = y;
  e.delta = delta;
  return e;
}

std::string InputEvent::ToString() const {
  std::string out = EventTypeToString(type);
  out += StrFormat("(t=%lld, x=%g, y=%g", static_cast<long long>(t), x, y);
  if (type == EventType::kKeyPress) out += ", key=" + key;
  if (type == EventType::kWheel) out += StrFormat(", delta=%g", delta);
  return out + ")";
}

const Schema& EventAttributeSchema() {
  static const Schema* kSchema = new Schema({{"t", ValueType::kInt64},
                                             {"x", ValueType::kDouble},
                                             {"y", ValueType::kDouble},
                                             {"key", ValueType::kString},
                                             {"delta", ValueType::kDouble}});
  return *kSchema;
}

size_t EventAttributeCount() { return EventAttributeSchema().num_columns(); }

Row EventToRow(const InputEvent& event) {
  return {Value::Int(event.t), Value::Double(event.x), Value::Double(event.y),
          Value::String(event.key), Value::Double(event.delta)};
}

}  // namespace dvms
