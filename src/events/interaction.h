#ifndef DVMS_EVENTS_INTERACTION_H_
#define DVMS_EVENTS_INTERACTION_H_

#include <string>
#include <vector>

#include "events/pattern.h"
#include "parser/ast.h"

namespace dvms {

/// An interaction, per the paper's definition: an object encapsulating an
/// event stream together with the view statements that involve the stream.
struct Interaction {
  std::string name;
  std::string event_table;
  std::vector<std::string> views;
};

/// Sequentially composes two EVENT statements (the paper's
/// merge(I1, I2) -> Icombined for "brush then drag" style multi-step
/// interactions): the composed pattern matches I1's sequence followed by
/// I2's. Aliases from `second` that collide with `first` are renamed with
/// the given suffix, and all expressions referencing them are rewritten.
/// The caller may further rewrite `second`'s view statements with read-only
/// access to `first`'s relations, per the paper's merge contract.
Result<EventStmt> MergeSequential(const EventStmt& first,
                                  const EventStmt& second,
                                  const std::string& rename_suffix = "_2");

/// Static analysis of potential interaction conflicts (the paper's Static
/// Analysis box in Figure 3): reports pairs of patterns that can both
/// consume the same input events — both startable by the same event type,
/// or sharing alphabet symbols mid-pattern. The warnings are advisory; the
/// developer resolves them by editing event statements, partitioning by
/// time/space, or assigning priorities.
std::vector<std::string> AnalyzeAmbiguity(
    const std::vector<std::pair<std::string, const CompiledPattern*>>&
        patterns);

/// The set of event types that can bind a pattern's first transition
/// (its first element, plus subsequent elements reachable by skipping
/// leading kleene elements).
std::vector<EventType> StartableTypes(const CompiledPattern& pattern);

}  // namespace dvms

#endif  // DVMS_EVENTS_INTERACTION_H_
