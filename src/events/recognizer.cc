#include "events/recognizer.h"

#include <algorithm>

namespace dvms {

Status EventRecognizer::DefinePattern(const std::string& name,
                                      const EventStmt& stmt, int priority) {
  DVMS_ASSIGN_OR_RETURN(CompiledPattern pattern, CompilePattern(stmt, udfs_));
  DVMS_RETURN_IF_ERROR(catalog_
                           ->CreateTable(name, pattern.output_schema,
                                         RelationKind::kEvent)
                           .status());
  Entry entry;
  entry.name = name;
  entry.matcher =
      std::make_unique<PatternMatcher>(std::move(pattern), udfs_);
  entry.statement = stmt;
  entry.priority = priority;
  entry.definition_order = entries_.size();
  entries_.push_back(std::move(entry));
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.priority != b.priority) {
                       return a.priority > b.priority;
                     }
                     return a.definition_order < b.definition_order;
                   });
  return Status::OK();
}

Result<std::vector<EventRecognizer::FeedOutcome>> EventRecognizer::Feed(
    const InputEvent& event) {
  std::vector<FeedOutcome> outcomes;
  for (Entry& entry : entries_) {
    std::vector<Row> rows;
    DVMS_ASSIGN_OR_RETURN(MatchAction action,
                          entry.matcher->Feed(event, &rows));
    if (action == MatchAction::kNone && rows.empty()) continue;
    // Exclusive mode: this pattern consumed the event; lower-priority
    // patterns (later entries) do not see it.
    const bool consumed = exclusive_;

    DVMS_ASSIGN_OR_RETURN(VersionedTable * table, catalog_->Get(entry.name));
    if (action == MatchAction::kStarted) {
      // A fresh interaction: clear the compound-event table, then open the
      // transaction so @vnow-1 refers to the pre-interaction state.
      table->ClearCurrent();
      table->BeginTransaction();
    }
    // Snapshot the pre-event state so `@tnow-j` addresses the table as it
    // was j events ago within this interaction.
    if (!rows.empty()) table->RecordStep();
    for (Row& row : rows) {
      DVMS_RETURN_IF_ERROR(table->Append(std::move(row)));
    }
    if (action == MatchAction::kCommitted) {
      table->Commit();
    } else if (action == MatchAction::kAborted) {
      table->Abort();
      table->ClearCurrent();
    }
    FeedOutcome outcome;
    outcome.table = entry.name;
    outcome.action = action;
    outcome.rows_inserted = rows.size();
    outcomes.push_back(std::move(outcome));
    if (consumed) break;
  }
  return outcomes;
}

std::vector<PatternMatcher::SavedState> EventRecognizer::SaveMatcherStates()
    const {
  std::vector<PatternMatcher::SavedState> states;
  states.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    states.push_back(entry.matcher->SaveState());
  }
  return states;
}

void EventRecognizer::RestoreMatcherStates(
    std::vector<PatternMatcher::SavedState> states) {
  size_t n = std::min(states.size(), entries_.size());
  for (size_t i = 0; i < n; ++i) {
    entries_[i].matcher->RestoreState(std::move(states[i]));
  }
}

std::vector<std::string> EventRecognizer::PatternNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& entry : entries_) names.push_back(entry.name);
  return names;
}

Result<const CompiledPattern*> EventRecognizer::GetPattern(
    const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (IdentEquals(entry.name, name)) return &entry.matcher->pattern();
  }
  return Status::NotFound("no pattern named '" + name + "'");
}

Result<const EventStmt*> EventRecognizer::GetStatement(
    const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (IdentEquals(entry.name, name)) return &entry.statement;
  }
  return Status::NotFound("no pattern named '" + name + "'");
}

}  // namespace dvms
