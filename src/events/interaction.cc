#include "events/interaction.h"

#include <unordered_map>
#include <unordered_set>

namespace dvms {

namespace {

void RenameQualifiers(Expr* e,
                      const std::unordered_map<std::string, std::string>& map) {
  if (e->kind == ExprKind::kColumnRef && !e->qualifier.empty()) {
    auto it = map.find(IdentKey(e->qualifier));
    if (it != map.end()) e->qualifier = it->second;
  }
  for (auto& c : e->children) RenameQualifiers(c.get(), map);
}

std::string EffectiveAlias(const EventElem& elem) {
  return elem.alias.empty() ? elem.event_type : elem.alias;
}

}  // namespace

Result<EventStmt> MergeSequential(const EventStmt& first,
                                  const EventStmt& second,
                                  const std::string& rename_suffix) {
  if (first.elems.empty() || second.elems.empty()) {
    return Status::InvalidArgument("cannot merge an empty event statement");
  }
  EventStmt merged = first;

  // Collect first's aliases; rename second's colliding aliases.
  std::unordered_set<std::string> taken;
  for (const EventElem& elem : first.elems) {
    taken.insert(IdentKey(EffectiveAlias(elem)));
  }
  std::unordered_map<std::string, std::string> renames;
  for (const EventElem& elem : second.elems) {
    std::string alias = EffectiveAlias(elem);
    std::string key = IdentKey(alias);
    if (taken.count(key) > 0) {
      std::string renamed = alias + rename_suffix;
      while (taken.count(IdentKey(renamed)) > 0) renamed += rename_suffix;
      renames[key] = renamed;
      taken.insert(IdentKey(renamed));
    } else {
      taken.insert(key);
    }
  }

  for (const EventElem& elem : second.elems) {
    EventElem copy = elem;
    std::string key = IdentKey(EffectiveAlias(elem));
    auto it = renames.find(key);
    if (it != renames.end()) {
      copy.alias = it->second;
    } else if (copy.alias.empty()) {
      copy.alias = EffectiveAlias(elem);
    }
    merged.elems.push_back(std::move(copy));
  }
  for (const EventPredicate& pred : second.predicates) {
    EventPredicate copy = pred;
    copy.expr = CloneExpr(pred.expr);
    RenameQualifiers(copy.expr.get(), renames);
    auto it = renames.find(IdentKey(copy.over_alias));
    if (it != renames.end()) copy.over_alias = it->second;
    merged.predicates.push_back(std::move(copy));
  }
  for (const ReturnTuple& tuple : second.returns) {
    ReturnTuple copy;
    for (const ReturnField& field : tuple.fields) {
      ReturnField f;
      f.alias = field.alias;
      f.expr = CloneExpr(field.expr);
      RenameQualifiers(f.expr.get(), renames);
      copy.fields.push_back(std::move(f));
    }
    merged.returns.push_back(std::move(copy));
  }
  return merged;
}

std::vector<EventType> StartableTypes(const CompiledPattern& pattern) {
  std::vector<EventType> out;
  for (const PatternElem& elem : pattern.elems) {
    out.push_back(elem.type);
    if (!elem.kleene) break;
  }
  return out;
}

std::vector<std::string> AnalyzeAmbiguity(
    const std::vector<std::pair<std::string, const CompiledPattern*>>&
        patterns) {
  std::vector<std::string> warnings;
  for (size_t i = 0; i < patterns.size(); ++i) {
    for (size_t j = i + 1; j < patterns.size(); ++j) {
      const auto& [name_a, pat_a] = patterns[i];
      const auto& [name_b, pat_b] = patterns[j];
      // Both startable by the same event type?
      for (EventType ta : StartableTypes(*pat_a)) {
        bool reported = false;
        for (EventType tb : StartableTypes(*pat_b)) {
          if (ta == tb) {
            warnings.push_back(
                "interactions '" + name_a + "' and '" + name_b +
                "' can both begin on " + EventTypeToString(ta) +
                "; consider partitioning by space/time or assigning "
                "priorities");
            reported = true;
            break;
          }
        }
        if (reported) break;
      }
      // Shared alphabet symbols mid-pattern?
      for (const PatternElem& elem : pat_a->elems) {
        if (pat_b->InAlphabet(elem.type)) {
          bool both_start = false;
          for (EventType t : StartableTypes(*pat_a)) {
            if (t == elem.type) both_start = true;
          }
          if (both_start) continue;  // already covered above
          warnings.push_back("interactions '" + name_a + "' and '" + name_b +
                             "' both consume " +
                             EventTypeToString(elem.type) +
                             " events mid-pattern; an in-flight match in one "
                             "may be rejected by input meant for the other");
          break;
        }
      }
    }
  }
  return warnings;
}

}  // namespace dvms
