#ifndef DVMS_EVENTS_EVENT_H_
#define DVMS_EVENTS_EVENT_H_

#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace dvms {

/// Low-level input events, the alphabet Σ of DeVIL's event streams.
enum class EventType {
  kMouseDown,
  kMouseMove,
  kMouseUp,
  kKeyPress,
  kWheel,
};

const char* EventTypeToString(EventType type);

/// Parses "MOUSE_DOWN", "KEY_PRESS", etc. (case-insensitive).
Result<EventType> EventTypeFromName(const std::string& name);

/// A single low-level event ⟨s, t⟩: an alphabet symbol plus the time the
/// user performed it, with the symbol's payload attributes.
struct InputEvent {
  EventType type = EventType::kMouseMove;
  int64_t t = 0;  // milliseconds
  double x = 0.0;
  double y = 0.0;
  std::string key;    // KEY_PRESS payload
  double delta = 0.0; // WHEEL payload

  static InputEvent MouseDown(int64_t t, double x, double y);
  static InputEvent MouseMove(int64_t t, double x, double y);
  static InputEvent MouseUp(int64_t t, double x, double y);
  static InputEvent KeyPress(int64_t t, std::string key);
  static InputEvent Wheel(int64_t t, double x, double y, double delta);

  std::string ToString() const;
};

/// Attributes every event exposes to EVENT-statement expressions
/// (t, x, y, key, delta). Each pattern alias binds one slot of this shape.
const Schema& EventAttributeSchema();

/// Number of columns in EventAttributeSchema().
size_t EventAttributeCount();

/// Converts an event into a row laid out per EventAttributeSchema().
Row EventToRow(const InputEvent& event);

}  // namespace dvms

#endif  // DVMS_EVENTS_EVENT_H_
