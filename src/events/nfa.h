#ifndef DVMS_EVENTS_NFA_H_
#define DVMS_EVENTS_NFA_H_

#include <vector>

#include "events/pattern.h"

namespace dvms {

/// What happened inside the matcher when an event was fed. These map onto
/// interaction-transaction boundaries: kStarted begins a transaction,
/// kCommitted commits it, kAborted rolls it back.
enum class MatchAction {
  kNone,       // event filtered / ignored
  kStarted,    // first element bound: transaction begins
  kProgress,   // an element bound mid-pattern
  kCommitted,  // final element bound: the NFA accepted
  kAborted,    // reject state reached: the transaction aborts
};

const char* MatchActionToString(MatchAction action);

/// Runs one compiled pattern as a finite-state matcher over the low-level
/// event stream.
///
/// Semantics (following §2.1.2 of the paper):
///  * events whose type is not in the pattern alphabet are filtered,
///  * events failing a plain WHERE predicate are filtered,
///  * events of an alphabet type that cannot extend the current match
///    transition the NFA to its reject state (abort),
///  * FORALL failure on a binding occurrence rejects immediately,
///  * EXISTS must be satisfied by the time the final element binds,
///  * binding an element emits every RETURN statement whose latest
///    referenced alias just became bound (per occurrence for kleene).
class PatternMatcher {
 public:
  PatternMatcher(CompiledPattern pattern, const UdfRegistry* udfs);

  /// Feeds one event. Emitted compound-event rows (laid out per
  /// pattern().output_schema) are appended to `out_rows`.
  Result<MatchAction> Feed(const InputEvent& event, std::vector<Row>* out_rows);

  /// Abandons any in-flight match.
  void Reset();

  /// The matcher's full runtime state, snapshotable so an engine-level
  /// rollback can rewind the NFA to exactly where it was before a faulted
  /// event was fed (a retried event then replays identically).
  struct SavedState {
    bool active = false;
    size_t pos = 0;
    Row slots;
    std::vector<bool> exists_satisfied;
  };

  SavedState SaveState() const { return {active_, pos_, slots_, exists_satisfied_}; }
  void RestoreState(SavedState state) {
    active_ = state.active;
    pos_ = state.pos;
    slots_ = std::move(state.slots);
    exists_satisfied_ = std::move(state.exists_satisfied);
  }

  bool active() const { return active_; }
  const CompiledPattern& pattern() const { return pattern_; }

 private:
  /// Finds the element index `event` would bind from state `from_pos`
  /// (exclusive), skipping optional kleene elements; returns npos if none.
  size_t FindBindable(size_t from_pos, EventType type) const;

  /// Feed() minus the obs counters.
  Result<MatchAction> FeedImpl(const InputEvent& event,
                               std::vector<Row>* out_rows);

  /// Binds the event into element `elem`; evaluates gates/quantifiers.
  /// Appends emissions. Returns the resulting action.
  Result<MatchAction> BindAt(size_t elem, const InputEvent& event,
                             bool starting, std::vector<Row>* out_rows);

  static constexpr size_t kNpos = static_cast<size_t>(-1);

  CompiledPattern pattern_;
  const UdfRegistry* udfs_;
  bool active_ = false;
  size_t pos_ = 0;  // index of the last bound element
  Row slots_;       // (n+1) * EventAttributeCount() values
  std::vector<bool> exists_satisfied_;
};

}  // namespace dvms

#endif  // DVMS_EVENTS_NFA_H_
