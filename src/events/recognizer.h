#ifndef DVMS_EVENTS_RECOGNIZER_H_
#define DVMS_EVENTS_RECOGNIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "events/nfa.h"
#include "storage/catalog.h"

namespace dvms {

/// The Event Recognizer of Figure 3: compiles EVENT statements into state
/// machines, matches them against the low-level input stream, and inserts
/// matches into the corresponding compound-event tables in the storage
/// manager.
///
/// Transaction mapping per pattern:
///   kStarted   -> the event table is cleared (a fresh interaction) and a
///                 transaction is opened on it,
///   kProgress  -> emitted rows are appended; a step version is recorded,
///   kCommitted -> the event table commits,
///   kAborted   -> the event table is cleared and the transaction aborts
///                 (the paper's rollback: clearing C).
class EventRecognizer {
 public:
  EventRecognizer(Catalog* catalog, const UdfRegistry* udfs)
      : catalog_(catalog), udfs_(udfs) {}

  /// Compiles `stmt` and creates the compound-event table `name`.
  /// `priority` orders delivery when exclusive mode is on (higher first;
  /// ties broken by definition order).
  Status DefinePattern(const std::string& name, const EventStmt& stmt,
                       int priority = 0);

  /// One of the paper's ambiguity-resolution rules: with exclusive mode
  /// on, an event consumed by a higher-priority pattern (any transition —
  /// start, progress, commit, or abort) is not offered to lower-priority
  /// patterns. Default off: every pattern sees every event.
  void set_exclusive(bool exclusive) { exclusive_ = exclusive; }
  bool exclusive() const { return exclusive_; }

  /// What one pattern did in response to an event.
  struct FeedOutcome {
    std::string table;
    MatchAction action = MatchAction::kNone;
    size_t rows_inserted = 0;
  };

  /// Feeds one low-level event to every pattern. Outcomes with
  /// action == kNone and no insertions are omitted.
  Result<std::vector<FeedOutcome>> Feed(const InputEvent& event);

  /// Snapshots every matcher's NFA runtime state (in entry order). Paired
  /// with RestoreMatcherStates by the engine's interaction rollback.
  std::vector<PatternMatcher::SavedState> SaveMatcherStates() const;

  /// Restores a snapshot taken by SaveMatcherStates(). The pattern set must
  /// not have changed in between.
  void RestoreMatcherStates(std::vector<PatternMatcher::SavedState> states);

  /// Names of all defined patterns (in definition order).
  std::vector<std::string> PatternNames() const;

  Result<const CompiledPattern*> GetPattern(const std::string& name) const;

  /// The source EVENT statement a pattern was defined from (used for
  /// composition).
  Result<const EventStmt*> GetStatement(const std::string& name) const;

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<PatternMatcher> matcher;
    EventStmt statement;
    int priority = 0;
    size_t definition_order = 0;
  };

  Catalog* catalog_;
  const UdfRegistry* udfs_;
  std::vector<Entry> entries_;  // kept sorted: priority desc, then order
  bool exclusive_ = false;
};

}  // namespace dvms

#endif  // DVMS_EVENTS_RECOGNIZER_H_
