#include "storage/table.h"

#include <algorithm>
#include <map>

namespace dvms {

Status Table::Append(Row row) {
  if (!schema_.RowMatches(row)) {
    return Status::TypeError("row does not match schema [" +
                             schema_.ToString() + "]");
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<Value> Table::At(RowId row, const std::string& column) const {
  if (row >= rows_.size()) {
    return Status::InvalidArgument("row index out of range");
  }
  DVMS_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(column));
  return rows_[row][idx];
}

void Table::SortByColumns(const std::vector<size_t>& cols) {
  std::stable_sort(rows_.begin(), rows_.end(),
                   [&cols](const Row& a, const Row& b) {
                     for (size_t c : cols) {
                       int cmp = a[c].Compare(b[c]);
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
}

bool Table::SameContents(const Table& other) const {
  if (!schema_.UnionCompatible(other.schema_)) return false;
  if (rows_.size() != other.rows_.size()) return false;
  std::vector<Row> a = rows_;
  std::vector<Row> b = other.rows_;
  auto less = [](const Row& x, const Row& y) { return CompareRows(x, y) < 0; };
  std::sort(a.begin(), a.end(), less);
  std::sort(b.begin(), b.end(), less);
  for (size_t i = 0; i < a.size(); ++i) {
    if (!RowsEqual(a[i], b[i])) return false;
  }
  return true;
}

std::string Table::ToString(size_t max_rows) const {
  std::vector<size_t> widths(schema_.num_columns());
  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> header;
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    header.push_back(schema_.column(c).name);
    widths[c] = header.back().size();
  }
  size_t shown = std::min(max_rows, rows_.size());
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> line;
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      line.push_back(rows_[r][c].ToString());
      widths[c] = std::max(widths[c], line.back().size());
    }
    cells.push_back(std::move(line));
  }
  auto emit_line = [&widths](const std::vector<std::string>& line) {
    std::string out = "|";
    for (size_t c = 0; c < line.size(); ++c) {
      out += " " + line[c];
      out += std::string(widths[c] - line[c].size() + 1, ' ');
      out += "|";
    }
    return out + "\n";
  };
  std::string out = emit_line(header);
  std::string rule = "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c] + 2, '-') + "|";
  }
  out += rule + "\n";
  for (const auto& line : cells) out += emit_line(line);
  if (shown < rows_.size()) {
    out += "... (" + std::to_string(rows_.size() - shown) + " more rows)\n";
  }
  return out;
}

TablePtr MakeTablePtr(Table table) {
  return std::make_shared<const Table>(std::move(table));
}

}  // namespace dvms
