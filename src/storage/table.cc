#include "storage/table.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace dvms {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  cols_.resize(schema_.num_columns());
}

Table::Table(Schema schema, std::vector<Row> rows) : schema_(std::move(schema)) {
  cols_.resize(schema_.num_columns());
  Reserve(rows.size());
  for (Row& row : rows) AppendUnchecked(std::move(row));
}

Table::Table(const Table& other)
    : schema_(other.schema_),
      num_rows_(other.num_rows_),
      cols_(other.cols_),
      row_widths_(other.row_widths_) {}

Table& Table::operator=(const Table& other) {
  if (this == &other) return *this;
  schema_ = other.schema_;
  num_rows_ = other.num_rows_;
  cols_ = other.cols_;
  row_widths_ = other.row_widths_;
  InvalidateRowCache();
  return *this;
}

Table::Table(Table&& other) noexcept
    : schema_(std::move(other.schema_)),
      num_rows_(other.num_rows_),
      cols_(std::move(other.cols_)),
      row_widths_(std::move(other.row_widths_)) {
  row_cache_.store(other.row_cache_.exchange(nullptr, std::memory_order_acq_rel),
                   std::memory_order_release);
  other.num_rows_ = 0;
}

Table& Table::operator=(Table&& other) noexcept {
  if (this == &other) return *this;
  schema_ = std::move(other.schema_);
  num_rows_ = other.num_rows_;
  cols_ = std::move(other.cols_);
  row_widths_ = std::move(other.row_widths_);
  delete row_cache_.exchange(
      other.row_cache_.exchange(nullptr, std::memory_order_acq_rel),
      std::memory_order_acq_rel);
  other.num_rows_ = 0;
  return *this;
}

Table::~Table() { delete row_cache_.load(std::memory_order_acquire); }

void Table::InvalidateRowCache() {
  delete row_cache_.exchange(nullptr, std::memory_order_acq_rel);
}

Table::RowCache* Table::EnsureCache() const {
  RowCache* cache = row_cache_.load(std::memory_order_acquire);
  if (cache == nullptr) {
    auto* fresh = new RowCache();
    RowCache* expected = nullptr;
    if (row_cache_.compare_exchange_strong(expected, fresh,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
      cache = fresh;
    } else {
      delete fresh;
      cache = expected;
    }
  }
  return cache;
}

std::vector<Row> Table::MaterializeRows() const {
  std::vector<Row> rows;
  rows.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) {
    size_t width = RowWidth(r);
    Row row;
    row.reserve(width);
    for (size_t c = 0; c < width; ++c) row.push_back(cols_[c].Get(r));
    rows.push_back(std::move(row));
  }
  return rows;
}

const std::vector<Row>& Table::rows() const {
  RowCache* cache = EnsureCache();
  std::call_once(cache->once, [&] { cache->rows = MaterializeRows(); });
  return cache->rows;
}

void Table::NoteRowWidth(size_t width) {
  if (row_widths_.empty()) {
    // All prior rows (if any) have the current full column width.
    row_widths_.assign(num_rows_, static_cast<uint32_t>(cols_.size()));
  }
  row_widths_.push_back(static_cast<uint32_t>(width));
}

void Table::AppendCells(const Row& row) {
  size_t width = row.size();
  for (size_t c = 0; c < width; ++c) cols_[c].Append(row[c]);
  for (size_t c = width; c < cols_.size(); ++c) cols_[c].AppendNull();
}

void Table::AppendUnchecked(Row row) {
  size_t width = row.size();
  if (width > cols_.size()) {
    // Widen: prior rows keep their original arity via the ragged widths.
    if (num_rows_ > 0 && row_widths_.empty()) {
      row_widths_.assign(num_rows_, static_cast<uint32_t>(cols_.size()));
    }
    size_t old = cols_.size();
    cols_.resize(width);
    for (size_t c = old; c < width; ++c) cols_[c].AppendNulls(num_rows_);
  }
  if (!row_widths_.empty()) {
    row_widths_.push_back(static_cast<uint32_t>(width));
  } else if (width != cols_.size()) {
    NoteRowWidth(width);
  }
  AppendCells(row);
  ++num_rows_;
  InvalidateRowCache();
}

Status Table::Append(Row row) {
  if (!schema_.RowMatches(row)) {
    return Status::TypeError("row does not match schema [" +
                             schema_.ToString() + "]");
  }
  AppendUnchecked(std::move(row));
  return Status::OK();
}

void Table::AppendRange(const Table& src, size_t begin, size_t end) {
  if (begin >= end) return;
  if (!src.row_widths_.empty() || cols_.size() != src.cols_.size() ||
      !row_widths_.empty()) {
    for (size_t r = begin; r < end; ++r) {
      size_t width = src.RowWidth(r);
      Row row;
      row.reserve(width);
      for (size_t c = 0; c < width; ++c) row.push_back(src.cols_[c].Get(r));
      AppendUnchecked(std::move(row));
    }
    return;
  }
  for (size_t c = 0; c < cols_.size(); ++c) {
    cols_[c].AppendRange(src.cols_[c], begin, end);
  }
  num_rows_ += end - begin;
  InvalidateRowCache();
}

void Table::AppendGather(const Table& src, const std::vector<size_t>& idx) {
  if (idx.empty()) return;
  if (!src.row_widths_.empty() || cols_.size() != src.cols_.size() ||
      !row_widths_.empty()) {
    for (size_t r : idx) {
      size_t width = src.RowWidth(r);
      Row row;
      row.reserve(width);
      for (size_t c = 0; c < width; ++c) row.push_back(src.cols_[c].Get(r));
      AppendUnchecked(std::move(row));
    }
    return;
  }
  for (size_t c = 0; c < cols_.size(); ++c) {
    cols_[c].AppendGather(src.cols_[c], idx);
  }
  num_rows_ += idx.size();
  InvalidateRowCache();
}

void Table::AppendProjected(const Table& src,
                            const std::vector<size_t>& col_idx) {
  bool fast = src.row_widths_.empty() && row_widths_.empty() &&
              cols_.size() == col_idx.size();
  for (size_t k = 0; fast && k < col_idx.size(); ++k) {
    fast = col_idx[k] < src.cols_.size();
  }
  if (!fast) {
    for (size_t r = 0; r < src.num_rows_; ++r) {
      Row row;
      row.reserve(col_idx.size());
      for (size_t c : col_idx) {
        row.push_back(c < src.RowWidth(r) ? src.cols_[c].Get(r)
                                          : Value::Null());
      }
      AppendUnchecked(std::move(row));
    }
    return;
  }
  for (size_t k = 0; k < col_idx.size(); ++k) {
    cols_[k].AppendRange(src.cols_[col_idx[k]], 0, src.num_rows_);
  }
  num_rows_ += src.num_rows_;
  InvalidateRowCache();
}

void Table::ReplaceRows(std::vector<Row> rows) {
  Clear();
  Reserve(rows.size());
  for (Row& row : rows) AppendUnchecked(std::move(row));
}

Status Table::InstallColumns(std::vector<ColumnVec> cols, size_t n) {
  for (const ColumnVec& col : cols) {
    if (col.size() != n) {
      return Status::ExecutionError(
          "column size " + std::to_string(col.size()) +
          " does not match table row count " + std::to_string(n));
    }
  }
  cols_ = std::move(cols);
  num_rows_ = n;
  row_widths_.clear();
  InvalidateRowCache();
  return Status::OK();
}

void Table::ReplaceSchema(Schema schema) {
  schema_ = std::move(schema);
  if (schema_.num_columns() > cols_.size()) {
    if (num_rows_ > 0 && row_widths_.empty()) {
      row_widths_.assign(num_rows_, static_cast<uint32_t>(cols_.size()));
    }
    size_t old = cols_.size();
    cols_.resize(schema_.num_columns());
    for (size_t c = old; c < cols_.size(); ++c) {
      cols_[c].AppendNulls(num_rows_);
    }
    InvalidateRowCache();
  }
}

void Table::Clear() {
  for (ColumnVec& col : cols_) col.Clear();
  // Keep the column slots themselves: the schema still declares them.
  cols_.resize(schema_.num_columns());
  num_rows_ = 0;
  row_widths_.clear();
  InvalidateRowCache();
}

void Table::Reserve(size_t n) {
  for (ColumnVec& col : cols_) col.Reserve(n);
}

Result<Value> Table::At(RowId row, const std::string& column) const {
  if (row >= num_rows_) {
    return Status::InvalidArgument("row index out of range");
  }
  DVMS_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(column));
  if (idx >= cols_.size()) return Value::Null();
  return cols_[idx].Get(row);
}

void Table::SortByColumns(const std::vector<size_t>& cols) {
  std::vector<size_t> perm(num_rows_);
  std::iota(perm.begin(), perm.end(), 0);
  std::stable_sort(perm.begin(), perm.end(), [this, &cols](size_t a, size_t b) {
    for (size_t c : cols) {
      int cmp = cols_[c].CompareCells(a, cols_[c], b);
      if (cmp != 0) return cmp < 0;
    }
    return false;
  });
  Table sorted(schema_);
  sorted.Reserve(num_rows_);
  sorted.AppendGather(*this, perm);
  *this = std::move(sorted);
}

bool Table::SameContents(const Table& other) const {
  if (!schema_.UnionCompatible(other.schema_)) return false;
  if (num_rows_ != other.num_rows_) return false;
  if (!row_widths_.empty() || !other.row_widths_.empty() ||
      cols_.size() != other.cols_.size()) {
    // Ragged/mismatched layouts: fall back to row-view comparison.
    std::vector<Row> a = rows();
    std::vector<Row> b = other.rows();
    auto less = [](const Row& x, const Row& y) { return CompareRows(x, y) < 0; };
    std::sort(a.begin(), a.end(), less);
    std::sort(b.begin(), b.end(), less);
    for (size_t i = 0; i < a.size(); ++i) {
      if (!RowsEqual(a[i], b[i])) return false;
    }
    return true;
  }
  // Columnar path: sort both sides' row indexes by the shared total order
  // (dictionary ids short-circuit string equality), then compare the
  // sorted sequences cell-wise. No row materialization, no deep copies.
  auto sorted_perm = [](const Table& t) {
    std::vector<size_t> perm(t.num_rows_);
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end(), [&t](size_t a, size_t b) {
      for (size_t c = 0; c < t.cols_.size(); ++c) {
        int cmp = t.cols_[c].CompareCells(a, t.cols_[c], b);
        if (cmp != 0) return cmp < 0;
      }
      return false;
    });
    return perm;
  };
  std::vector<size_t> pa = sorted_perm(*this);
  std::vector<size_t> pb = sorted_perm(other);
  for (size_t k = 0; k < pa.size(); ++k) {
    for (size_t c = 0; c < cols_.size(); ++c) {
      if (cols_[c].CompareCells(pa[k], other.cols_[c], pb[k]) != 0) {
        return false;
      }
    }
  }
  return true;
}

std::string Table::ToString(size_t max_rows) const {
  std::vector<size_t> widths(schema_.num_columns());
  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> header;
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    header.push_back(schema_.column(c).name);
    widths[c] = header.back().size();
  }
  size_t shown = std::min(max_rows, num_rows_);
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> line;
    size_t row_width = std::min(RowWidth(r), schema_.num_columns());
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      line.push_back(c < row_width ? cols_[c].Get(r).ToString() : "");
      widths[c] = std::max(widths[c], line.back().size());
    }
    cells.push_back(std::move(line));
  }
  auto emit_line = [&widths](const std::vector<std::string>& line) {
    std::string out = "|";
    for (size_t c = 0; c < line.size(); ++c) {
      out += " " + line[c];
      out += std::string(widths[c] - line[c].size() + 1, ' ');
      out += "|";
    }
    return out + "\n";
  };
  std::string out = emit_line(header);
  std::string rule = "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c] + 2, '-') + "|";
  }
  out += rule + "\n";
  for (const auto& line : cells) out += emit_line(line);
  if (shown < num_rows_) {
    out += "... (" + std::to_string(num_rows_ - shown) + " more rows)\n";
  }
  return out;
}

TablePtr MakeTablePtr(Table table) {
  return std::make_shared<const Table>(std::move(table));
}

}  // namespace dvms
