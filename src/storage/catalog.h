#ifndef DVMS_STORAGE_CATALOG_H_
#define DVMS_STORAGE_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/versioned_table.h"

namespace dvms {

/// How a relation came to exist; affects what the engine is allowed to do
/// with it (e.g. only views are recomputed by the executor, only event
/// tables are written by the event recognizer).
enum class RelationKind {
  kBase,   // user data loaded into the system
  kView,   // materialized result of a DeVIL view statement
  kEvent,  // compound-event table fed by the event recognizer
  kMarks,   // marks relation (a view whose output is renderable)
  kSystem,  // engine-maintained introspection relation (dvms_metrics, ...);
            // excluded from commits, undo, snapshots, and the WAL
};

const char* RelationKindToString(RelationKind kind);

/// Name -> relation registry. Names are case-insensitive (SQL identifiers).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty relation. Errors if the name is taken.
  Result<VersionedTable*> CreateTable(const std::string& name, Schema schema,
                                      RelationKind kind,
                                      size_t max_history = 16);

  /// Looks up a relation; NotFound if absent.
  Result<VersionedTable*> Get(const std::string& name) const;

  /// Relation kind; NotFound if absent.
  Result<RelationKind> KindOf(const std::string& name) const;

  bool Exists(const std::string& name) const;

  Status Drop(const std::string& name);

  /// All relation names in creation order.
  std::vector<std::string> Names() const;

 private:
  struct Entry {
    std::unique_ptr<VersionedTable> table;
    RelationKind kind;
  };
  std::unordered_map<std::string, Entry> entries_;
  std::vector<std::string> creation_order_;  // IdentKeys
};

}  // namespace dvms

#endif  // DVMS_STORAGE_CATALOG_H_
