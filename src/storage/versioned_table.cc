#include "storage/versioned_table.h"

namespace dvms {

VersionedTable::VersionedTable(std::string name, Schema schema,
                               size_t max_history)
    : name_(std::move(name)),
      declared_schema_(schema),
      current_(std::move(schema)),
      max_history_(max_history) {
  // Seed history with the empty initial version so @vnow-1 is always
  // addressable.
  committed_.push_back(MakeTablePtr(current_));
}

Status VersionedTable::SetCurrent(Table t) {
  if (!declared_schema_.UnionCompatible(t.schema())) {
    return Status::TypeError("table '" + name_ +
                             "': assigned contents are not union-compatible "
                             "with declared schema [" +
                             declared_schema_.ToString() + "]");
  }
  // Keep the declared column names/types; adopt the rows.
  Table replacement(declared_schema_, std::move(t.mutable_rows()));
  current_ = std::move(replacement);
  return Status::OK();
}

Status VersionedTable::Append(Row row) { return current_.Append(std::move(row)); }

void VersionedTable::BeginTransaction() {
  if (in_transaction_) return;
  in_transaction_ = true;
  txn_base_ = MakeTablePtr(current_);
  steps_.clear();
}

void VersionedTable::RecordStep() {
  if (!in_transaction_) BeginTransaction();
  steps_.push_back(MakeTablePtr(current_));
}

void VersionedTable::Commit() {
  committed_.push_back(MakeTablePtr(current_));
  if (committed_.size() > max_history_) {
    committed_.erase(committed_.begin());
  }
  steps_.clear();
  txn_base_.reset();
  in_transaction_ = false;
}

void VersionedTable::Abort() {
  if (in_transaction_ && txn_base_ != nullptr) {
    current_ = *txn_base_;
  } else if (!committed_.empty()) {
    current_ = *committed_.back();
  }
  steps_.clear();
  txn_base_.reset();
  in_transaction_ = false;
}

Result<TablePtr> VersionedTable::Version(size_t k) const {
  if (k == 0) return MakeTablePtr(current_);
  if (k > committed_.size()) {
    return Status::NotFound("table '" + name_ + "' has no version @vnow-" +
                            std::to_string(k) + " (history depth " +
                            std::to_string(committed_.size()) + ")");
  }
  return committed_[committed_.size() - k];
}

Result<TablePtr> VersionedTable::StepVersion(size_t j) const {
  if (j == 0) return MakeTablePtr(current_);
  if (!in_transaction_) {
    return MakeTablePtr(Table(declared_schema_));
  }
  if (j > steps_.size()) {
    // Further back than any recorded event: the interaction-start state.
    if (txn_base_ != nullptr) return txn_base_;
    return MakeTablePtr(Table(declared_schema_));
  }
  return steps_[steps_.size() - j];
}

}  // namespace dvms
