#include "storage/versioned_table.h"

#include "common/fault.h"

namespace dvms {

VersionedTable::VersionedTable(std::string name, Schema schema,
                               size_t max_history)
    : name_(std::move(name)),
      declared_schema_(schema),
      current_(std::move(schema)),
      max_history_(max_history) {
  // Seed history with the empty initial version so @vnow-1 is always
  // addressable.
  committed_.push_back(MakeTablePtr(current_));
}

void VersionedTable::CaptureCurrentForUndo() {
  if (!undo_armed_ || undo_current_.has_value()) return;
  if (!undo_meta_.has_value()) undo_epoch_ = epoch_;
  undo_current_ = current_;  // copy: the caller mutates current_ in place
}

void VersionedTable::CaptureMetaForUndo() {
  if (!undo_armed_ || undo_meta_.has_value()) return;
  if (!undo_current_.has_value()) undo_epoch_ = epoch_;
  UndoMeta meta;
  meta.committed = committed_;  // shared_ptr copies — cheap
  meta.steps = steps_;
  meta.txn_base = txn_base_;
  meta.in_transaction = in_transaction_;
  undo_meta_ = std::move(meta);
}

void VersionedTable::ArmUndo() {
  undo_armed_ = true;
  undo_current_.reset();
  undo_meta_.reset();
}

void VersionedTable::DisarmUndo() {
  undo_armed_ = false;
  undo_current_.reset();
  undo_meta_.reset();
}

bool VersionedTable::RollbackUndo() {
  bool restored = undo_current_.has_value() || undo_meta_.has_value();
  if (undo_current_.has_value()) {
    current_ = std::move(*undo_current_);
  }
  if (undo_meta_.has_value()) {
    committed_ = std::move(undo_meta_->committed);
    steps_ = std::move(undo_meta_->steps);
    txn_base_ = std::move(undo_meta_->txn_base);
    in_transaction_ = undo_meta_->in_transaction;
  }
  if (restored) epoch_ = undo_epoch_;
  DisarmUndo();
  return restored;
}

Status VersionedTable::SetCurrent(Table t) {
  if (!declared_schema_.UnionCompatible(t.schema())) {
    return Status::TypeError("table '" + name_ +
                             "': assigned contents are not union-compatible "
                             "with declared schema [" +
                             declared_schema_.ToString() + "]");
  }
  // Keep the declared column names/types; adopt the columns in place.
  Table replacement = std::move(t);
  replacement.ReplaceSchema(declared_schema_);
  if (undo_armed_ && !undo_current_.has_value()) {
    // Capture by displacement: the outgoing working state becomes the undo
    // snapshot instead of being destroyed — zero-copy on the view path.
    if (!undo_meta_.has_value()) undo_epoch_ = epoch_;
    undo_current_ = std::move(current_);
  }
  current_ = std::move(replacement);
  ++epoch_;
  return Status::OK();
}

Status VersionedTable::Append(Row row) {
  DVMS_RETURN_IF_ERROR(fault::MaybeInject(FaultSite::kStorageAppend));
  CaptureCurrentForUndo();
  ++epoch_;
  return current_.Append(std::move(row));
}

void VersionedTable::ClearCurrent() {
  CaptureCurrentForUndo();
  ++epoch_;
  current_.Clear();
}

void VersionedTable::BeginTransaction() {
  if (in_transaction_) return;
  CaptureMetaForUndo();
  ++epoch_;
  in_transaction_ = true;
  txn_base_ = MakeTablePtr(current_);
  steps_.clear();
}

void VersionedTable::RecordStep() {
  if (!in_transaction_) BeginTransaction();
  CaptureMetaForUndo();
  ++epoch_;
  steps_.push_back(MakeTablePtr(current_));
}

void VersionedTable::Commit() {
  CaptureMetaForUndo();
  ++epoch_;
  committed_.push_back(MakeTablePtr(current_));
  if (committed_.size() > max_history_) {
    committed_.erase(committed_.begin());
  }
  steps_.clear();
  txn_base_.reset();
  in_transaction_ = false;
}

void VersionedTable::Abort() {
  CaptureMetaForUndo();
  CaptureCurrentForUndo();
  ++epoch_;
  if (in_transaction_ && txn_base_ != nullptr) {
    current_ = *txn_base_;
  } else if (!committed_.empty()) {
    current_ = *committed_.back();
  }
  steps_.clear();
  txn_base_.reset();
  in_transaction_ = false;
}

VersionedTable::DurableState VersionedTable::SaveDurableState() const {
  DurableState state;
  state.current = current_;
  state.committed = committed_;  // shared_ptr copies; versions are immutable
  state.steps = steps_;
  state.txn_base = txn_base_;
  state.in_transaction = in_transaction_;
  state.epoch = epoch_;
  return state;
}

void VersionedTable::RestoreDurableState(DurableState state) {
  current_ = std::move(state.current);
  committed_ = std::move(state.committed);
  steps_ = std::move(state.steps);
  txn_base_ = std::move(state.txn_base);
  in_transaction_ = state.in_transaction;
  epoch_ = state.epoch;
  undo_armed_ = false;
  undo_current_.reset();
  undo_meta_.reset();
}

Result<TablePtr> VersionedTable::Version(size_t k) const {
  if (k == 0) return MakeTablePtr(current_);
  if (k > committed_.size()) {
    return Status::NotFound("table '" + name_ + "' has no version @vnow-" +
                            std::to_string(k) + " (history depth " +
                            std::to_string(committed_.size()) + ")");
  }
  return committed_[committed_.size() - k];
}

Result<TablePtr> VersionedTable::StepVersion(size_t j) const {
  if (j == 0) return MakeTablePtr(current_);
  if (!in_transaction_) {
    return MakeTablePtr(Table(declared_schema_));
  }
  if (j > steps_.size()) {
    // Further back than any recorded event: the interaction-start state.
    if (txn_base_ != nullptr) return txn_base_;
    return MakeTablePtr(Table(declared_schema_));
  }
  return steps_[steps_.size() - j];
}

}  // namespace dvms
