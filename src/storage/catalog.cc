#include "storage/catalog.h"

#include <algorithm>

#include "common/schema.h"

namespace dvms {

const char* RelationKindToString(RelationKind kind) {
  switch (kind) {
    case RelationKind::kBase:
      return "BASE";
    case RelationKind::kView:
      return "VIEW";
    case RelationKind::kEvent:
      return "EVENT";
    case RelationKind::kMarks:
      return "MARKS";
    case RelationKind::kSystem:
      return "SYSTEM";
  }
  return "UNKNOWN";
}

Result<VersionedTable*> Catalog::CreateTable(const std::string& name,
                                             Schema schema, RelationKind kind,
                                             size_t max_history) {
  std::string key = IdentKey(name);
  if (entries_.count(key) > 0) {
    return Status::AlreadyExists("relation '" + name + "' already exists");
  }
  Entry entry;
  entry.table =
      std::make_unique<VersionedTable>(name, std::move(schema), max_history);
  entry.kind = kind;
  VersionedTable* ptr = entry.table.get();
  entries_.emplace(key, std::move(entry));
  creation_order_.push_back(key);
  return ptr;
}

Result<VersionedTable*> Catalog::Get(const std::string& name) const {
  auto it = entries_.find(IdentKey(name));
  if (it == entries_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return it->second.table.get();
}

Result<RelationKind> Catalog::KindOf(const std::string& name) const {
  auto it = entries_.find(IdentKey(name));
  if (it == entries_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  return it->second.kind;
}

bool Catalog::Exists(const std::string& name) const {
  return entries_.count(IdentKey(name)) > 0;
}

Status Catalog::Drop(const std::string& name) {
  std::string key = IdentKey(name);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("no relation named '" + name + "'");
  }
  entries_.erase(it);
  creation_order_.erase(
      std::remove(creation_order_.begin(), creation_order_.end(), key),
      creation_order_.end());
  return Status::OK();
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> out;
  for (const std::string& key : creation_order_) {
    auto it = entries_.find(key);
    if (it != entries_.end()) out.push_back(it->second.table->name());
  }
  return out;
}

}  // namespace dvms
