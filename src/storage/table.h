#ifndef DVMS_STORAGE_TABLE_H_
#define DVMS_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace dvms {

/// Row identifier within one table version: the row's index.
using RowId = size_t;

/// An in-memory row-store relation. Tables are value types; VersionedTable
/// layers snapshot semantics on top via shared immutable versions.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const Row& row(RowId i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }

  /// Appends after validating arity/types against the schema.
  Status Append(Row row);

  /// Appends without validation; for internal operators that construct
  /// schema-correct rows by construction.
  void AppendUnchecked(Row row) { rows_.push_back(std::move(row)); }

  void Clear() { rows_.clear(); }

  /// Value at (row, column-name); error if the column is absent.
  Result<Value> At(RowId row, const std::string& column) const;

  /// Stable-sorts rows lexicographically by the given column indexes.
  void SortByColumns(const std::vector<size_t>& cols);

  /// True iff same schema arity/types and same multiset of rows.
  bool SameContents(const Table& other) const;

  /// ASCII rendering with a header row; for debugging and bench output.
  std::string ToString(size_t max_rows = 50) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

using TablePtr = std::shared_ptr<const Table>;

/// Convenience: wraps a Table in a shared immutable pointer.
TablePtr MakeTablePtr(Table table);

}  // namespace dvms

#endif  // DVMS_STORAGE_TABLE_H_
