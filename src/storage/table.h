#ifndef DVMS_STORAGE_TABLE_H_
#define DVMS_STORAGE_TABLE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"
#include "storage/column.h"

namespace dvms {

/// Row identifier within one table version: the row's index.
using RowId = size_t;

/// An in-memory columnar relation: one typed ColumnVec per column (with
/// dictionary-interned strings and validity bitmaps), plus a lazily
/// materialized row view for code that still thinks in rows. Tables are
/// value types; VersionedTable layers snapshot semantics on top via shared
/// immutable versions.
///
/// The row view (`rows()` / `row(i)`) is a cache built from the columns on
/// first use and dropped on mutation. Materialization is thread-safe on
/// shared `const Table`s (snapshot readers), so legacy row-oriented code
/// keeps working unchanged; vectorized code reads columns directly via
/// `col(c)` and never pays for the view.
///
/// Rows whose arity differs from the column count (legacy "ragged" tables
/// built with AppendUnchecked) are preserved exactly: per-row widths are
/// tracked lazily and the row view reproduces each row at its original
/// arity.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);
  Table(Schema schema, std::vector<Row> rows);

  Table(const Table& other);
  Table& operator=(const Table& other);
  Table(Table&& other) noexcept;
  Table& operator=(Table&& other) noexcept;
  ~Table();

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Row view (compat): materialized from columns on first use.
  const Row& row(RowId i) const { return rows()[i]; }
  const std::vector<Row>& rows() const;

  // ---- Columnar access (the vectorized hot path) ----
  size_t num_columns() const { return cols_.size(); }
  const ColumnVec& col(size_t c) const { return cols_[c]; }
  /// True if some row's arity differs from the column count; vectorized
  /// operators fall back to the row view for such (legacy-built) tables.
  bool IsRagged() const { return !row_widths_.empty(); }
  /// Cell (r, c) as a Value, straight from the column (no row view).
  Value ValueAt(RowId r, size_t c) const { return cols_[c].Get(r); }

  /// Appends after validating arity/types against the schema.
  Status Append(Row row);

  /// Appends without validation; for internal operators that construct
  /// schema-correct rows by construction.
  void AppendUnchecked(Row row);

  /// Appends src's rows [begin, end) (bulk column copy). Schemas must be
  /// layout-compatible; cells are copied positionally.
  void AppendRange(const Table& src, size_t begin, size_t end);

  /// Appends src's rows at the given indexes, in order (typed gather).
  void AppendGather(const Table& src, const std::vector<size_t>& idx);

  /// Appends src's rows [0, num_rows) projected to the given column
  /// indexes, in order (pure column copies, no row materialization).
  void AppendProjected(const Table& src, const std::vector<size_t>& col_idx);

  /// Replaces this table's contents with the given rows (schema kept).
  void ReplaceRows(std::vector<Row> rows);

  /// Decoder path: replaces the contents with pre-built columns, all of
  /// size `n`. Fails (leaving the table unchanged) on size mismatches.
  Status InstallColumns(std::vector<ColumnVec> cols, size_t n);

  /// Replaces the schema without touching the data; the new schema's arity
  /// must be layout-compatible with the stored columns (callers validate
  /// union compatibility).
  void ReplaceSchema(Schema schema);

  void Clear();
  void Reserve(size_t n);

  /// Value at (row, column-name); error if the column is absent.
  Result<Value> At(RowId row, const std::string& column) const;

  /// Stable-sorts rows lexicographically by the given column indexes.
  void SortByColumns(const std::vector<size_t>& cols);

  /// True iff same schema arity/types and same multiset of rows. Compares
  /// on columns (dictionary ids for strings) without materializing rows.
  bool SameContents(const Table& other) const;

  /// ASCII rendering with a header row; for debugging and bench output.
  std::string ToString(size_t max_rows = 50) const;

 private:
  struct RowCache {
    std::once_flag once;
    std::vector<Row> rows;
  };

  size_t RowWidth(RowId i) const {
    return row_widths_.empty() ? cols_.size() : row_widths_[i];
  }
  /// Marks the table ragged from this point if `width` deviates.
  void NoteRowWidth(size_t width);
  void AppendCells(const Row& row);
  RowCache* EnsureCache() const;
  void InvalidateRowCache();
  std::vector<Row> MaterializeRows() const;

  Schema schema_;
  size_t num_rows_ = 0;
  std::vector<ColumnVec> cols_;
  /// Non-empty only for ragged tables: per-row original arity.
  std::vector<uint32_t> row_widths_;
  /// Lazily created, mutation-invalidated row view. Owned; atomic so
  /// concurrent readers of a shared const table can race to create it.
  mutable std::atomic<RowCache*> row_cache_{nullptr};
};

using TablePtr = std::shared_ptr<const Table>;

/// Convenience: wraps a Table in a shared immutable pointer.
TablePtr MakeTablePtr(Table table);

}  // namespace dvms

#endif  // DVMS_STORAGE_TABLE_H_
