#ifndef DVMS_STORAGE_COLUMN_H_
#define DVMS_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"

namespace dvms {

/// One typed column of a columnar Table: a dense vector of the column's
/// native representation plus a validity bitmap for NULLs. Strings are
/// stored as dense dictionary ids (see storage/dict.h); equality and
/// grouping compare ids, string bytes are touched only for ordering
/// between distinct ids and at output.
///
/// The encoding is decided by the first non-NULL value appended, not by
/// the declared schema type, so the exact per-cell Value type round-trips
/// bit-identically (a DOUBLE-declared column that received an INT64 keeps
/// producing Value::Int). A column that sees a second value type demotes
/// itself to a per-cell Value fallback (kVariant) — correctness never
/// depends on type homogeneity, only speed does.
class ColumnVec {
 public:
  enum class Enc : uint8_t {
    kEmpty = 0,  // no non-NULL value seen yet; every cell is NULL
    kInt64,
    kDouble,
    kBool,
    kDict,    // interned string ids
    kVariant  // mixed types: per-cell Value storage
  };

  ColumnVec() = default;

  size_t size() const { return size_; }
  Enc enc() const { return enc_; }
  bool IsNull(size_t i) const {
    return (valid_[i >> 6] & (1ull << (i & 63))) == 0;
  }
  size_t null_count() const { return null_count_; }
  bool all_valid() const { return null_count_ == 0; }

  /// Materializes cell `i` as a Value (exact type round-trip).
  Value Get(size_t i) const;

  void Append(const Value& v);
  void AppendNull();

  // Typed appends for bulk decode paths: fix the encoding on first use and
  // skip per-cell Value construction. The column must be empty-encoded or
  // already match (mixing typed appends across encodings is a programming
  // error and demotes to kVariant like Append would).
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendBool(bool v);
  void AppendDictId(uint32_t id);

  /// Appends src's cells [begin, end). Bulk-copies when encodings allow.
  void AppendRange(const ColumnVec& src, size_t begin, size_t end);

  /// Appends src's cells at the given row indexes, in order.
  void AppendGather(const ColumnVec& src, const std::vector<size_t>& idx);

  void Clear();
  void Reserve(size_t n);

  /// Appends `n` NULL cells (used to pad columns added after rows exist).
  void AppendNulls(size_t n);

  // ---- Typed access (valid only for the matching enc()) ----
  const std::vector<int64_t>& ints() const { return i64_; }
  const std::vector<double>& doubles() const { return f64_; }
  const std::vector<uint8_t>& bools() const { return b8_; }
  const std::vector<uint32_t>& dict_ids() const { return ids_; }
  const std::vector<Value>& variants() const { return var_; }
  const std::vector<uint64_t>& validity() const { return valid_; }

  // ---- Cell operations, exactly mirroring Value semantics ----
  // CompareCells mirrors Value::Compare (total order, NaN-last, exact
  // int64/double), CellEquals mirrors Value::Equals, HashCell is any hash
  // consistent with CellEquals (NOT necessarily Value::Hash — dict cells
  // hash their id, which is cheaper and equality-consistent because the
  // dictionary dedups).
  int CompareCells(size_t i, const ColumnVec& other, size_t j) const;
  bool CellEquals(size_t i, const ColumnVec& other, size_t j) const;
  size_t HashCell(size_t i) const;

 private:
  void PushValidity(bool valid);
  /// Converts dense storage to per-cell Values (first mixed-type append).
  void Demote();
  /// Fixes enc_ from kEmpty on the first non-NULL append, backfilling
  /// placeholder slots for any NULLs appended before it.
  void Decide(ValueType t);

  Enc enc_ = Enc::kEmpty;
  size_t size_ = 0;
  size_t null_count_ = 0;
  std::vector<uint64_t> valid_;  // bit i set = cell i is non-NULL
  std::vector<int64_t> i64_;
  std::vector<double> f64_;
  std::vector<uint8_t> b8_;
  std::vector<uint32_t> ids_;
  std::vector<Value> var_;
};

}  // namespace dvms

#endif  // DVMS_STORAGE_COLUMN_H_
