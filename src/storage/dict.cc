#include "storage/dict.h"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

namespace dvms {
namespace strdict {

namespace {

// Chunked stable storage: ids index into fixed-capacity chunks that are
// allocated once and never moved, so readers can dereference without a
// lock. A chunk pointer is published with release ordering after
// allocation; `size` is published with release ordering after the string
// at the new id is fully constructed.
constexpr size_t kChunkBits = 12;  // 4096 strings per chunk
constexpr size_t kChunkSize = 1u << kChunkBits;
constexpr size_t kMaxChunks = 1u << 16;  // 256M strings

struct Store {
  std::mutex mu;  // serializes interning only
  std::unordered_map<std::string, uint32_t> ids;
  std::atomic<std::string*> chunks[kMaxChunks] = {};
  std::atomic<size_t> size{0};
  std::atomic<size_t> payload_bytes{0};
};

Store* TheStore() {
  // Leaked: interned strings must outlive every table, including statics
  // destroyed after main().
  static Store* store = [] {
    std::atexit(MaybeReportStats);
    return new Store();
  }();
  return store;
}

}  // namespace

uint32_t Intern(const std::string& s) {
  Store* st = TheStore();
  std::lock_guard<std::mutex> lock(st->mu);
  auto it = st->ids.find(s);
  if (it != st->ids.end()) return it->second;
  size_t id = st->size.load(std::memory_order_relaxed);
  assert(id < kInvalidId);
  size_t chunk = id >> kChunkBits;
  std::string* storage = st->chunks[chunk].load(std::memory_order_relaxed);
  if (storage == nullptr) {
    storage = new std::string[kChunkSize];
    st->chunks[chunk].store(storage, std::memory_order_release);
  }
  storage[id & (kChunkSize - 1)] = s;
  st->ids.emplace(s, static_cast<uint32_t>(id));
  st->payload_bytes.fetch_add(s.size(), std::memory_order_relaxed);
  // Publish the id only after the string is in place.
  st->size.store(id + 1, std::memory_order_release);
  return static_cast<uint32_t>(id);
}

const std::string& Lookup(uint32_t id) {
  Store* st = TheStore();
  assert(id < st->size.load(std::memory_order_acquire));
  std::string* storage =
      st->chunks[id >> kChunkBits].load(std::memory_order_acquire);
  return storage[id & (kChunkSize - 1)];
}

size_t Size() { return TheStore()->size.load(std::memory_order_acquire); }

size_t PayloadBytes() {
  return TheStore()->payload_bytes.load(std::memory_order_relaxed);
}

void MaybeReportStats() {
  const char* env = std::getenv("DVMS_DICT_STATS");
  if (env == nullptr || env[0] == '\0') return;
  std::fprintf(stderr, "dvms dict: %zu strings, %zu bytes\n", Size(),
               PayloadBytes());
}

}  // namespace strdict
}  // namespace dvms
