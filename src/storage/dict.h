#ifndef DVMS_STORAGE_DICT_H_
#define DVMS_STORAGE_DICT_H_

#include <cstdint>
#include <string>

namespace dvms {

/// Process-global append-only string dictionary (the cdec `FD::Convert`
/// idiom): every distinct string the storage layer ever sees is interned
/// exactly once and addressed by a dense uint32 id thereafter. Columnar
/// string storage holds ids, so equality/grouping/joins compare 4-byte
/// integers and string bytes are touched only at output (or for ordering,
/// where ids are insertion-ordered, not collated).
///
/// The table is append-only and leaked at process exit. Interning takes a
/// mutex; id -> string lookup is lock-free (ids are published with release
/// ordering after the string is fully constructed, and chunk storage never
/// moves). Durability does NOT persist ids: snapshots/WAL carry string
/// bytes and re-intern on decode, so ids are stable within a process but
/// never cross a restart — which keeps recovery byte-streams deterministic
/// regardless of what else this process interned first.
namespace strdict {

/// Sentinel id used by columnar storage for NULL slots; never returned by
/// Intern().
constexpr uint32_t kInvalidId = 0xFFFFFFFFu;

/// Returns the dense id for `s`, interning it on first sight.
uint32_t Intern(const std::string& s);

/// The string for a previously returned id. Lock-free; `id` must have come
/// from Intern() in this process.
const std::string& Lookup(uint32_t id);

/// Number of distinct strings interned so far.
size_t Size();

/// Total bytes of interned string payload (excludes container overhead).
size_t PayloadBytes();

/// If the DVMS_DICT_STATS env var is set (to anything non-empty), prints
/// "dvms dict: N strings, B bytes" to stderr. Called at engine shutdown;
/// safe to call any number of times.
void MaybeReportStats();

}  // namespace strdict

}  // namespace dvms

#endif  // DVMS_STORAGE_DICT_H_
