#ifndef DVMS_STORAGE_VERSIONED_TABLE_H_
#define DVMS_STORAGE_VERSIONED_TABLE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/table.h"

namespace dvms {

/// A relation with DeVIL's two-level version history.
///
/// DeVIL maps interactions to transactions: an EVENT pattern's start state
/// begins a transaction, accept commits, reject aborts. Queries may address
///   * `@vnow-k` — the committed state k transactions ago (k >= 1); during an
///     in-flight interaction `@vnow-1` is the state at the beginning of the
///     interaction (used by DeVIL 3 to break recursion). `@vnow-0` is the
///     current working state.
///   * `@tnow-j` — the state j events ago *within* the current transaction
///     (used for interactions like mouse trails).
///
/// Committed history is capped; old versions are discarded FIFO.
///
/// Undo capture (interaction rollback): between ArmUndo() and
/// DisarmUndo()/RollbackUndo(), the first mutation of the working state and
/// the first mutation of the version metadata each snapshot the
/// pre-mutation state lazily, so an engine-level statement batch can be
/// rolled back to a bit-identical pre-batch state on any mid-batch error.
/// The fault-free cost is near zero: unmutated tables snapshot nothing, and
/// SetCurrent captures by *moving* the displaced working state.
class VersionedTable {
 public:
  VersionedTable(std::string name, Schema schema, size_t max_history = 16);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return current_.schema(); }

  /// The current working state (uncommitted if a transaction is open).
  const Table& current() const { return current_; }

  /// Mutable working-state access. Counts as a mutation for undo capture
  /// (the pre-mutation state is snapshotted if capture is armed).
  Table& mutable_current() {
    CaptureCurrentForUndo();
    ++epoch_;
    return current_;
  }

  /// Replaces the working state. The schema of `t` must be union-compatible
  /// with the declared schema.
  Status SetCurrent(Table t);

  /// Appends a row to the working state (validated). Subject to
  /// FaultSite::kStorageAppend injection.
  Status Append(Row row);

  /// Clears the working state's rows (undo-capture aware).
  void ClearCurrent();

  /// Begins an interaction transaction: snapshots the working state as the
  /// transaction base and clears per-event step history. Idempotent if a
  /// transaction is already open (nested interactions share the outer
  /// boundary).
  void BeginTransaction();

  /// Records a per-event snapshot (`@tnow` granularity) of the working state.
  void RecordStep();

  /// Commits: pushes the working state onto committed history and closes the
  /// transaction. Also usable outside a transaction to checkpoint.
  void Commit();

  /// Aborts: restores the working state to the transaction base (or the last
  /// committed version if no transaction is open) and closes the transaction.
  void Abort();

  bool in_transaction() const { return in_transaction_; }

  /// Number of committed versions retained.
  size_t num_committed_versions() const { return committed_.size(); }

  /// Number of per-event snapshots recorded in the open transaction.
  size_t num_steps() const { return steps_.size(); }

  /// Monotone mutation counter: bumps on every working-state or version
  /// mutation, and is restored by RollbackUndo() — equal epochs before and
  /// after a rolled-back batch certify untouched state.
  uint64_t epoch() const { return epoch_; }

  // ---- Undo capture (engine statement-batch rollback) ----

  /// Arms lazy pre-mutation capture. Any capture from a previous arm cycle
  /// is discarded.
  void ArmUndo();

  /// Disarms capture and discards any snapshot (the batch committed).
  void DisarmUndo();

  /// Restores every captured piece of state (working state and/or version
  /// metadata) and disarms. Returns true if anything was restored — i.e.
  /// the table was mutated since ArmUndo().
  bool RollbackUndo();

  bool undo_armed() const { return undo_armed_; }

  // ---- Durability (snapshot serialization) ----

  /// Everything a snapshot must persist to reproduce this relation
  /// bit-identically: working state, committed/step version history, the
  /// open-transaction base, and the mutation epoch. Undo-capture state is
  /// deliberately excluded — snapshots are taken between mutation units,
  /// when capture is disarmed.
  struct DurableState {
    Table current;
    std::vector<TablePtr> committed;  // oldest first
    std::vector<TablePtr> steps;      // oldest first
    TablePtr txn_base;                // null when no transaction is open
    bool in_transaction = false;
    uint64_t epoch = 0;
  };

  DurableState SaveDurableState() const;

  /// Installs `state` wholesale (row contents are trusted; callers decode
  /// through the validating snapshot codec). The declared schema keeps the
  /// value it was constructed with — recovery recreates the table from its
  /// DDL before overlaying state.
  void RestoreDurableState(DurableState state);

  size_t max_history() const { return max_history_; }

  /// `@vnow-k`. k == 0 returns the working state; k >= 1 returns the k-th
  /// most recent committed version. Errors if history does not reach back
  /// that far.
  Result<TablePtr> Version(size_t k) const;

  /// `@tnow-j`. j == 0 returns the working state; j >= 1 returns the state
  /// j recorded events ago within the open transaction. Addressing past
  /// the recorded steps returns the transaction-start snapshot; with no
  /// open transaction, an empty relation (no events have happened "within
  /// the current transaction").
  Result<TablePtr> StepVersion(size_t j) const;

  // ---- Snapshot publishing (concurrent readers) ----
  // Cheap structural access for SnapshotManager::Publish, which freezes a
  // relation's full version history into an immutable RelationSnapshot at
  // the end of a mutation unit (under the engine write lock). The shared
  // TablePtr histories make this O(history length), not O(rows); only the
  // working state is deep-copied, and only for relations whose epoch moved.

  const Schema& declared_schema() const { return declared_schema_; }
  const std::vector<TablePtr>& committed_versions() const { return committed_; }
  const std::vector<TablePtr>& step_versions() const { return steps_; }
  const TablePtr& transaction_base() const { return txn_base_; }

 private:
  /// Version metadata snapshot: cheap (vectors of shared_ptr + flags).
  struct UndoMeta {
    std::vector<TablePtr> committed;
    std::vector<TablePtr> steps;
    TablePtr txn_base;
    bool in_transaction = false;
  };

  void CaptureCurrentForUndo();
  void CaptureMetaForUndo();

  std::string name_;
  Schema declared_schema_;
  Table current_;
  std::vector<TablePtr> committed_;  // oldest first
  std::vector<TablePtr> steps_;      // oldest first, within transaction
  TablePtr txn_base_;
  bool in_transaction_ = false;
  size_t max_history_;
  uint64_t epoch_ = 0;
  bool undo_armed_ = false;
  uint64_t undo_epoch_ = 0;  // epoch at first capture of this arm cycle
  std::optional<Table> undo_current_;
  std::optional<UndoMeta> undo_meta_;
};

}  // namespace dvms

#endif  // DVMS_STORAGE_VERSIONED_TABLE_H_
