#include "storage/column.h"

#include <cassert>
#include <functional>

#include "storage/dict.h"

namespace dvms {

namespace {

constexpr size_t kNoisePrime = 0x9e3779b97f4a7c15ULL;

}  // namespace

Value ColumnVec::Get(size_t i) const {
  assert(i < size_);
  if (IsNull(i)) return Value::Null();
  switch (enc_) {
    case Enc::kEmpty:
      return Value::Null();
    case Enc::kInt64:
      return Value::Int(i64_[i]);
    case Enc::kDouble:
      return Value::Double(f64_[i]);
    case Enc::kBool:
      return Value::Bool(b8_[i] != 0);
    case Enc::kDict:
      return Value::String(strdict::Lookup(ids_[i]));
    case Enc::kVariant:
      return var_[i];
  }
  return Value::Null();
}

void ColumnVec::PushValidity(bool valid) {
  if ((size_ & 63) == 0) valid_.push_back(0);
  if (valid) {
    valid_.back() |= 1ull << (size_ & 63);
  } else {
    ++null_count_;
  }
  ++size_;
}

void ColumnVec::Decide(ValueType t) {
  assert(enc_ == Enc::kEmpty);
  switch (t) {
    case ValueType::kInt64:
      enc_ = Enc::kInt64;
      i64_.assign(size_, 0);
      break;
    case ValueType::kDouble:
      enc_ = Enc::kDouble;
      f64_.assign(size_, 0.0);
      break;
    case ValueType::kBool:
      enc_ = Enc::kBool;
      b8_.assign(size_, 0);
      break;
    case ValueType::kString:
      enc_ = Enc::kDict;
      ids_.assign(size_, strdict::kInvalidId);
      break;
    case ValueType::kNull:
      break;
  }
}

void ColumnVec::Demote() {
  std::vector<Value> values;
  values.reserve(size_);
  for (size_t i = 0; i < size_; ++i) values.push_back(Get(i));
  var_ = std::move(values);
  i64_.clear();
  i64_.shrink_to_fit();
  f64_.clear();
  f64_.shrink_to_fit();
  b8_.clear();
  b8_.shrink_to_fit();
  ids_.clear();
  ids_.shrink_to_fit();
  enc_ = Enc::kVariant;
}

void ColumnVec::AppendNull() {
  switch (enc_) {
    case Enc::kEmpty:
      break;
    case Enc::kInt64:
      i64_.push_back(0);
      break;
    case Enc::kDouble:
      f64_.push_back(0.0);
      break;
    case Enc::kBool:
      b8_.push_back(0);
      break;
    case Enc::kDict:
      ids_.push_back(strdict::kInvalidId);
      break;
    case Enc::kVariant:
      var_.push_back(Value::Null());
      break;
  }
  PushValidity(false);
}

void ColumnVec::AppendNulls(size_t n) {
  for (size_t i = 0; i < n; ++i) AppendNull();
}

void ColumnVec::Append(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  if (enc_ == Enc::kEmpty) Decide(v.type());
  switch (enc_) {
    case Enc::kInt64:
      if (v.type() != ValueType::kInt64) break;
      i64_.push_back(v.int_value());
      PushValidity(true);
      return;
    case Enc::kDouble:
      if (v.type() != ValueType::kDouble) break;
      f64_.push_back(v.double_value());
      PushValidity(true);
      return;
    case Enc::kBool:
      if (v.type() != ValueType::kBool) break;
      b8_.push_back(v.bool_value() ? 1 : 0);
      PushValidity(true);
      return;
    case Enc::kDict:
      if (v.type() != ValueType::kString) break;
      ids_.push_back(strdict::Intern(v.string_value()));
      PushValidity(true);
      return;
    case Enc::kVariant:
      var_.push_back(v);
      PushValidity(true);
      return;
    case Enc::kEmpty:
      break;
  }
  // Mixed-type append: fall back to per-cell Values.
  Demote();
  var_.push_back(v);
  PushValidity(true);
}

void ColumnVec::AppendInt64(int64_t v) {
  if (enc_ == Enc::kEmpty) Decide(ValueType::kInt64);
  if (enc_ != Enc::kInt64) {
    Append(Value::Int(v));
    return;
  }
  i64_.push_back(v);
  PushValidity(true);
}

void ColumnVec::AppendDouble(double v) {
  if (enc_ == Enc::kEmpty) Decide(ValueType::kDouble);
  if (enc_ != Enc::kDouble) {
    Append(Value::Double(v));
    return;
  }
  f64_.push_back(v);
  PushValidity(true);
}

void ColumnVec::AppendBool(bool v) {
  if (enc_ == Enc::kEmpty) Decide(ValueType::kBool);
  if (enc_ != Enc::kBool) {
    Append(Value::Bool(v));
    return;
  }
  b8_.push_back(v ? 1 : 0);
  PushValidity(true);
}

void ColumnVec::AppendDictId(uint32_t id) {
  if (enc_ == Enc::kEmpty) Decide(ValueType::kString);
  if (enc_ != Enc::kDict) {
    Append(Value::String(strdict::Lookup(id)));
    return;
  }
  ids_.push_back(id);
  PushValidity(true);
}

void ColumnVec::Clear() {
  enc_ = Enc::kEmpty;
  size_ = 0;
  null_count_ = 0;
  valid_.clear();
  i64_.clear();
  f64_.clear();
  b8_.clear();
  ids_.clear();
  var_.clear();
}

void ColumnVec::Reserve(size_t n) {
  valid_.reserve((n + 63) / 64);
  switch (enc_) {
    case Enc::kInt64:
      i64_.reserve(n);
      break;
    case Enc::kDouble:
      f64_.reserve(n);
      break;
    case Enc::kBool:
      b8_.reserve(n);
      break;
    case Enc::kDict:
      ids_.reserve(n);
      break;
    case Enc::kVariant:
      var_.reserve(n);
      break;
    case Enc::kEmpty:
      break;
  }
}

void ColumnVec::AppendRange(const ColumnVec& src, size_t begin, size_t end) {
  assert(end <= src.size_);
  if (begin >= end) return;
  // Bulk path: both sides agree on the dense encoding (or this column has
  // not decided yet and can adopt src's).
  if (enc_ == Enc::kEmpty && src.enc_ != Enc::kEmpty &&
      src.enc_ != Enc::kVariant) {
    Decide(src.enc_ == Enc::kInt64    ? ValueType::kInt64
           : src.enc_ == Enc::kDouble ? ValueType::kDouble
           : src.enc_ == Enc::kBool   ? ValueType::kBool
                                      : ValueType::kString);
  }
  if (enc_ == src.enc_ && enc_ != Enc::kVariant) {
    switch (enc_) {
      case Enc::kInt64:
        i64_.insert(i64_.end(), src.i64_.begin() + begin,
                    src.i64_.begin() + end);
        break;
      case Enc::kDouble:
        f64_.insert(f64_.end(), src.f64_.begin() + begin,
                    src.f64_.begin() + end);
        break;
      case Enc::kBool:
        b8_.insert(b8_.end(), src.b8_.begin() + begin, src.b8_.begin() + end);
        break;
      case Enc::kDict:
        ids_.insert(ids_.end(), src.ids_.begin() + begin,
                    src.ids_.begin() + end);
        break;
      default:
        break;
    }
    if (src.all_valid()) {
      for (size_t i = begin; i < end; ++i) PushValidity(true);
    } else {
      for (size_t i = begin; i < end; ++i) PushValidity(!src.IsNull(i));
    }
    return;
  }
  for (size_t i = begin; i < end; ++i) {
    if (src.IsNull(i)) {
      AppendNull();
    } else {
      Append(src.Get(i));
    }
  }
}

void ColumnVec::AppendGather(const ColumnVec& src,
                             const std::vector<size_t>& idx) {
  if (enc_ == Enc::kEmpty && src.enc_ != Enc::kEmpty &&
      src.enc_ != Enc::kVariant && !idx.empty()) {
    Decide(src.enc_ == Enc::kInt64    ? ValueType::kInt64
           : src.enc_ == Enc::kDouble ? ValueType::kDouble
           : src.enc_ == Enc::kBool   ? ValueType::kBool
                                      : ValueType::kString);
  }
  if (enc_ == src.enc_ && enc_ != Enc::kVariant && enc_ != Enc::kEmpty) {
    switch (enc_) {
      case Enc::kInt64:
        for (size_t i : idx) i64_.push_back(src.i64_[i]);
        break;
      case Enc::kDouble:
        for (size_t i : idx) f64_.push_back(src.f64_[i]);
        break;
      case Enc::kBool:
        for (size_t i : idx) b8_.push_back(src.b8_[i]);
        break;
      case Enc::kDict:
        for (size_t i : idx) ids_.push_back(src.ids_[i]);
        break;
      default:
        break;
    }
    if (src.all_valid()) {
      for (size_t n = 0; n < idx.size(); ++n) PushValidity(true);
    } else {
      for (size_t i : idx) PushValidity(!src.IsNull(i));
    }
    return;
  }
  for (size_t i : idx) {
    if (src.IsNull(i)) {
      AppendNull();
    } else {
      Append(src.Get(i));
    }
  }
}

int ColumnVec::CompareCells(size_t i, const ColumnVec& other, size_t j) const {
  bool an = IsNull(i), bn = other.IsNull(j);
  if (an || bn) return an == bn ? 0 : (an ? -1 : 1);  // NULL sorts first
  if (enc_ == other.enc_) {
    switch (enc_) {
      case Enc::kInt64: {
        int64_t a = i64_[i], b = other.i64_[j];
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      case Enc::kDouble:
        return CompareDoublesTotal(f64_[i], other.f64_[j]);
      case Enc::kBool: {
        int a = b8_[i] != 0, b = other.b8_[j] != 0;
        return a - b;
      }
      case Enc::kDict: {
        uint32_t a = ids_[i], b = other.ids_[j];
        if (a == b) return 0;  // interned: equal ids iff equal strings
        const std::string& sa = strdict::Lookup(a);
        const std::string& sb = strdict::Lookup(b);
        return sa < sb ? -1 : (sa > sb ? 1 : 0);
      }
      default:
        break;
    }
  } else if (enc_ == Enc::kInt64 && other.enc_ == Enc::kDouble) {
    return CompareInt64Double(i64_[i], other.f64_[j]);
  } else if (enc_ == Enc::kDouble && other.enc_ == Enc::kInt64) {
    return -CompareInt64Double(other.i64_[j], f64_[i]);
  }
  return Get(i).Compare(other.Get(j));
}

bool ColumnVec::CellEquals(size_t i, const ColumnVec& other, size_t j) const {
  bool an = IsNull(i), bn = other.IsNull(j);
  if (an || bn) return an && bn;  // Value::Equals: NULL == NULL
  if (enc_ == other.enc_) {
    switch (enc_) {
      case Enc::kInt64:
        return i64_[i] == other.i64_[j];
      case Enc::kDouble:
        return CompareDoublesTotal(f64_[i], other.f64_[j]) == 0;
      case Enc::kBool:
        return b8_[i] == other.b8_[j];
      case Enc::kDict:
        return ids_[i] == other.ids_[j];
      default:
        break;
    }
  }
  return Get(i).Equals(other.Get(j));
}

size_t ColumnVec::HashCell(size_t i) const {
  if (IsNull(i)) return kNoisePrime;
  switch (enc_) {
    case Enc::kInt64:
      return std::hash<int64_t>()(i64_[i]);
    case Enc::kDouble: {
      double d = f64_[i];
      if (d == 0.0) d = 0.0;
      if (d != d) return 0x7ff8dead5eedf00dULL;
      // Int-valued doubles must hash like the int cell they Equal when a
      // sibling column mixes encodings; hashing the double image of both
      // (as Value::Hash does) keeps that consistent — but int64 cells hash
      // their exact value above, so only use this hash within homogeneous
      // columns (vectorized group-bys never mix cells across columns).
      return std::hash<double>()(d);
    }
    case Enc::kBool:
      return std::hash<int64_t>()(b8_[i] != 0 ? 1 : 0);
    case Enc::kDict:
      return std::hash<uint32_t>()(ids_[i]);
    case Enc::kVariant:
      return var_[i].Hash();
    case Enc::kEmpty:
      break;
  }
  return kNoisePrime;
}

}  // namespace dvms
