#include "parser/parser.h"

#include "common/schema.h"
#include "parser/lexer.h"

namespace dvms {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> ParseProgram();
  Result<SelectStmt> ParseSelectOnly();
  Result<QueryRequest> ParseQueryOnly();
  Result<ExprPtr> ParseExprOnly();

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Check(TokenType type) const { return Peek().type == type; }
  bool CheckKeyword(const char* kw) const { return Peek().IsKeyword(kw); }
  bool MatchToken(TokenType type) {
    if (!Check(type)) return false;
    Advance();
    return true;
  }
  bool MatchKeyword(const char* kw) {
    if (!CheckKeyword(kw)) return false;
    Advance();
    return true;
  }
  Status ExpectToken(TokenType type, const char* what) {
    if (MatchToken(type)) return Status::OK();
    return Error(std::string("expected ") + what);
  }
  Status ExpectKeyword(const char* kw) {
    if (MatchKeyword(kw)) return Status::OK();
    return Error(std::string("expected keyword '") + kw + "'");
  }
  Status Error(const std::string& message) const {
    const Token& t = Peek();
    return Status::ParseError(message + ", found " + t.Describe() +
                              " at line " + std::to_string(t.line) +
                              ", column " + std::to_string(t.column));
  }
  Result<std::string> ExpectIdent(const char* what) {
    if (!Check(TokenType::kIdent)) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  Result<Statement> ParseStatement();
  Result<Statement> ParseExplain();
  Result<Statement> ParseCreateTable();
  Result<Statement> ParseInsert();
  Result<Statement> ParseDelete();
  Result<SelectStmt> ParseSelectStmt();
  Result<SelectCore> ParseSelectCore();
  Result<TableRef> ParseTableRef();
  Result<VersionRef> ParseVersionSuffix();
  Result<EventStmt> ParseEventStmt();
  Result<TraceStmt> ParseTraceStmt(bool backward);
  Result<Value> ParseLiteralValue();

  // Expression grammar, loosest binding first.
  Result<ExprPtr> ParseExpr() { return ParseOr(); }
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Result<Value> Parser::ParseLiteralValue() {
  bool negative = false;
  if (MatchToken(TokenType::kMinus)) negative = true;
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kInt: {
      Advance();
      return Value::Int(negative ? -t.int_value : t.int_value);
    }
    case TokenType::kDouble: {
      Advance();
      return Value::Double(negative ? -t.double_value : t.double_value);
    }
    case TokenType::kString:
      if (negative) return Error("cannot negate a string literal");
      Advance();
      return Value::String(t.text);
    case TokenType::kIdent:
      if (negative) return Error("cannot negate this literal");
      if (MatchKeyword("NULL")) return Value::Null();
      if (MatchKeyword("TRUE")) return Value::Bool(true);
      if (MatchKeyword("FALSE")) return Value::Bool(false);
      return Error("expected literal value");
    default:
      return Error("expected literal value");
  }
}

Result<ExprPtr> Parser::ParseOr() {
  DVMS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (MatchKeyword("OR")) {
    DVMS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = MakeBinary(BinaryOp::kOr, lhs, rhs);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  DVMS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (MatchKeyword("AND")) {
    DVMS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = MakeBinary(BinaryOp::kAnd, lhs, rhs);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    DVMS_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
    return MakeUnary(UnaryOp::kNot, child);
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  DVMS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  // [NOT] IN relation
  if (CheckKeyword("NOT") && Peek(1).IsKeyword("IN")) {
    Advance();
    Advance();
    DVMS_ASSIGN_OR_RETURN(std::string rel, ExpectIdent("relation name"));
    return MakeInRelation(lhs, rel, /*negated=*/true);
  }
  if (MatchKeyword("IN")) {
    DVMS_ASSIGN_OR_RETURN(std::string rel, ExpectIdent("relation name"));
    return MakeInRelation(lhs, rel, /*negated=*/false);
  }
  auto op = [this]() -> std::optional<BinaryOp> {
    switch (Peek().type) {
      case TokenType::kEq:
        return BinaryOp::kEq;
      case TokenType::kNe:
        return BinaryOp::kNe;
      case TokenType::kLt:
        return BinaryOp::kLt;
      case TokenType::kLe:
        return BinaryOp::kLe;
      case TokenType::kGt:
        return BinaryOp::kGt;
      case TokenType::kGe:
        return BinaryOp::kGe;
      default:
        return std::nullopt;
    }
  }();
  if (op.has_value()) {
    Advance();
    DVMS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return MakeBinary(*op, lhs, rhs);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAdditive() {
  DVMS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
    BinaryOp op =
        Check(TokenType::kPlus) ? BinaryOp::kAdd : BinaryOp::kSub;
    Advance();
    DVMS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
    lhs = MakeBinary(op, lhs, rhs);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  DVMS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  while (Check(TokenType::kStar) || Check(TokenType::kSlash) ||
         Check(TokenType::kPercent)) {
    BinaryOp op = Check(TokenType::kStar)    ? BinaryOp::kMul
                  : Check(TokenType::kSlash) ? BinaryOp::kDiv
                                             : BinaryOp::kMod;
    Advance();
    DVMS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
    lhs = MakeBinary(op, lhs, rhs);
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (MatchToken(TokenType::kMinus)) {
    DVMS_ASSIGN_OR_RETURN(ExprPtr child, ParseUnary());
    return MakeUnary(UnaryOp::kNegate, child);
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kInt:
      Advance();
      return MakeLiteral(Value::Int(t.int_value));
    case TokenType::kDouble:
      Advance();
      return MakeLiteral(Value::Double(t.double_value));
    case TokenType::kString:
      Advance();
      return MakeLiteral(Value::String(t.text));
    case TokenType::kLParen: {
      Advance();
      DVMS_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      DVMS_RETURN_IF_ERROR(ExpectToken(TokenType::kRParen, "')'"));
      return inner;
    }
    case TokenType::kIdent:
      break;
    default:
      return Error("expected expression");
  }
  // NULL / TRUE / FALSE literals.
  if (t.IsKeyword("NULL")) {
    Advance();
    return MakeLiteral(Value::Null());
  }
  if (t.IsKeyword("TRUE")) {
    Advance();
    return MakeLiteral(Value::Bool(true));
  }
  if (t.IsKeyword("FALSE")) {
    Advance();
    return MakeLiteral(Value::Bool(false));
  }

  std::string name = Advance().text;
  // Function or aggregate call.
  if (Check(TokenType::kLParen)) {
    Advance();
    auto agg = [&name]() -> std::optional<AggFunc> {
      if (IdentEquals(name, "SUM")) return AggFunc::kSum;
      if (IdentEquals(name, "COUNT")) return AggFunc::kCount;
      if (IdentEquals(name, "AVG")) return AggFunc::kAvg;
      if (IdentEquals(name, "MIN")) return AggFunc::kMin;
      if (IdentEquals(name, "MAX")) return AggFunc::kMax;
      return std::nullopt;
    }();
    if (agg.has_value()) {
      if (*agg == AggFunc::kCount && Check(TokenType::kStar)) {
        Advance();
        DVMS_RETURN_IF_ERROR(ExpectToken(TokenType::kRParen, "')'"));
        return MakeCountStar();
      }
      DVMS_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
      DVMS_RETURN_IF_ERROR(ExpectToken(TokenType::kRParen, "')'"));
      return MakeAggregate(*agg, arg);
    }
    std::vector<ExprPtr> args;
    if (!Check(TokenType::kRParen)) {
      do {
        DVMS_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        args.push_back(arg);
      } while (MatchToken(TokenType::kComma));
    }
    DVMS_RETURN_IF_ERROR(ExpectToken(TokenType::kRParen, "')'"));
    return MakeCall(name, std::move(args));
  }
  // Qualified column reference.
  if (Check(TokenType::kDot) && Peek(1).type == TokenType::kIdent) {
    Advance();
    std::string column = Advance().text;
    return MakeColumnRef(name, column);
  }
  return MakeColumnRef(name);
}

Result<VersionRef> Parser::ParseVersionSuffix() {
  // Already consumed '@'. Accept `vnow-k`, `{vnow-k}`, `tnow-j`, `{tnow-j}`.
  bool braced = MatchToken(TokenType::kLBrace);
  DVMS_ASSIGN_OR_RETURN(std::string kind, ExpectIdent("'vnow' or 'tnow'"));
  bool vnow;
  if (IdentEquals(kind, "vnow")) {
    vnow = true;
  } else if (IdentEquals(kind, "tnow")) {
    vnow = false;
  } else {
    return Error("expected 'vnow' or 'tnow' after '@'");
  }
  size_t offset = 0;
  if (MatchToken(TokenType::kMinus)) {
    if (!Check(TokenType::kInt)) return Error("expected version offset");
    offset = static_cast<size_t>(Advance().int_value);
  }
  if (braced) {
    DVMS_RETURN_IF_ERROR(ExpectToken(TokenType::kRBrace, "'}'"));
  }
  return vnow ? VersionRef::Vnow(offset) : VersionRef::Tnow(offset);
}

Result<TableRef> Parser::ParseTableRef() {
  TableRef ref;
  if (MatchToken(TokenType::kLParen)) {
    // Derived table: either a full subselect or the paper's relational
    // shorthand `(Sales MINUS B)` desugared to SELECT * cores.
    auto subquery = std::make_shared<SelectStmt>();
    if (CheckKeyword("SELECT")) {
      DVMS_ASSIGN_OR_RETURN(*subquery, ParseSelectStmt());
    } else {
      auto star_core = [this]() -> Result<SelectCore> {
        SelectCore core;
        SelectItem star;
        star.star = true;
        core.items.push_back(std::move(star));
        DVMS_ASSIGN_OR_RETURN(TableRef inner, ParseTableRef());
        core.from.push_back(std::move(inner));
        return core;
      };
      DVMS_ASSIGN_OR_RETURN(SelectCore first, star_core());
      subquery->cores.push_back(std::move(first));
      while (true) {
        if (MatchKeyword("MINUS") || MatchKeyword("EXCEPT")) {
          subquery->ops.push_back(SetOp::kMinus);
        } else if (MatchKeyword("UNION")) {
          subquery->ops.push_back(MatchKeyword("ALL") ? SetOp::kUnionAll
                                                      : SetOp::kUnion);
        } else {
          break;
        }
        DVMS_ASSIGN_OR_RETURN(SelectCore next, star_core());
        subquery->cores.push_back(std::move(next));
      }
    }
    DVMS_RETURN_IF_ERROR(ExpectToken(TokenType::kRParen, "')'"));
    ref.subquery = std::move(subquery);
    if (MatchKeyword("AS")) {
      DVMS_ASSIGN_OR_RETURN(ref.alias, ExpectIdent("alias"));
    } else if (Check(TokenType::kIdent) && !CheckKeyword("WHERE") &&
               !CheckKeyword("GROUP") && !CheckKeyword("ORDER") &&
               !CheckKeyword("LIMIT") && !CheckKeyword("UNION") &&
               !CheckKeyword("MINUS") && !CheckKeyword("TO")) {
      ref.alias = Advance().text;
    }
    return ref;
  }
  DVMS_ASSIGN_OR_RETURN(ref.name, ExpectIdent("relation name"));
  if (MatchToken(TokenType::kAt)) {
    DVMS_ASSIGN_OR_RETURN(ref.version, ParseVersionSuffix());
  }
  if (MatchKeyword("AS")) {
    DVMS_ASSIGN_OR_RETURN(ref.alias, ExpectIdent("alias"));
  } else if (Check(TokenType::kIdent) && !CheckKeyword("WHERE") &&
             !CheckKeyword("GROUP") && !CheckKeyword("ORDER") &&
             !CheckKeyword("LIMIT") && !CheckKeyword("UNION") &&
             !CheckKeyword("MINUS") && !CheckKeyword("TO")) {
    ref.alias = Advance().text;
  }
  return ref;
}

Result<SelectCore> Parser::ParseSelectCore() {
  SelectCore core;
  DVMS_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  if (MatchKeyword("DISTINCT")) core.distinct = true;
  do {
    SelectItem item;
    if (Check(TokenType::kStar)) {
      Advance();
      item.star = true;
    } else if (Check(TokenType::kIdent) && Peek(1).type == TokenType::kDot &&
               Peek(2).type == TokenType::kStar) {
      item.star = true;
      item.star_qualifier = Advance().text;
      Advance();  // '.'
      Advance();  // '*'
    } else {
      DVMS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("AS")) {
        DVMS_ASSIGN_OR_RETURN(item.alias, ExpectIdent("projection alias"));
      }
    }
    core.items.push_back(std::move(item));
  } while (MatchToken(TokenType::kComma));

  DVMS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  do {
    DVMS_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
    core.from.push_back(std::move(ref));
  } while (MatchToken(TokenType::kComma));

  if (MatchKeyword("WHERE")) {
    DVMS_ASSIGN_OR_RETURN(core.where, ParseExpr());
  }
  if (CheckKeyword("GROUP")) {
    Advance();
    DVMS_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      DVMS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      core.group_by.push_back(e);
    } while (MatchToken(TokenType::kComma));
  }
  if (MatchKeyword("HAVING")) {
    DVMS_ASSIGN_OR_RETURN(core.having, ParseExpr());
  }
  if (CheckKeyword("ORDER")) {
    Advance();
    DVMS_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      OrderItem item;
      DVMS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("DESC")) {
        item.descending = true;
      } else {
        MatchKeyword("ASC");
      }
      core.order_by.push_back(std::move(item));
    } while (MatchToken(TokenType::kComma));
  }
  if (MatchKeyword("LIMIT")) {
    if (!Check(TokenType::kInt)) return Error("expected LIMIT count");
    core.limit = static_cast<size_t>(Advance().int_value);
  }
  return core;
}

Result<SelectStmt> Parser::ParseSelectStmt() {
  SelectStmt stmt;
  DVMS_ASSIGN_OR_RETURN(SelectCore core, ParseSelectCore());
  stmt.cores.push_back(std::move(core));
  while (true) {
    if (MatchKeyword("UNION")) {
      bool all = MatchKeyword("ALL");
      stmt.ops.push_back(all ? SetOp::kUnionAll : SetOp::kUnion);
    } else if (MatchKeyword("MINUS") || MatchKeyword("EXCEPT")) {
      stmt.ops.push_back(SetOp::kMinus);
    } else {
      break;
    }
    DVMS_ASSIGN_OR_RETURN(SelectCore next, ParseSelectCore());
    stmt.cores.push_back(std::move(next));
  }
  return stmt;
}

Result<EventStmt> Parser::ParseEventStmt() {
  EventStmt stmt;
  // Pattern elements until WHERE or RETURN.
  do {
    EventElem elem;
    DVMS_ASSIGN_OR_RETURN(elem.event_type, ExpectIdent("event type"));
    if (MatchToken(TokenType::kStar)) elem.kleene = true;
    if (MatchKeyword("AS")) {
      DVMS_ASSIGN_OR_RETURN(elem.alias, ExpectIdent("event alias"));
      // The paper writes `MOUSE_MOVE* AS M*`; a trailing star on the alias
      // also marks the element as kleene.
      if (MatchToken(TokenType::kStar)) elem.kleene = true;
    }
    stmt.elems.push_back(std::move(elem));
  } while (MatchToken(TokenType::kComma));

  if (MatchKeyword("WHERE")) {
    do {
      EventPredicate pred;
      if (MatchKeyword("FORALL") ) {
        pred.kind = EventPredicate::Kind::kForall;
      } else if (MatchKeyword("EXISTS")) {
        pred.kind = EventPredicate::Kind::kExists;
      }
      if (pred.kind != EventPredicate::Kind::kPlain) {
        DVMS_ASSIGN_OR_RETURN(pred.var, ExpectIdent("quantifier variable"));
        DVMS_RETURN_IF_ERROR(ExpectKeyword("IN"));
        DVMS_ASSIGN_OR_RETURN(pred.over_alias, ExpectIdent("pattern alias"));
      }
      DVMS_ASSIGN_OR_RETURN(pred.expr, ParseExpr());
      stmt.predicates.push_back(std::move(pred));
    } while (MatchKeyword("AND"));
  }

  DVMS_RETURN_IF_ERROR(ExpectKeyword("RETURN"));
  do {
    DVMS_RETURN_IF_ERROR(ExpectToken(TokenType::kLParen, "'('"));
    ReturnTuple tuple;
    do {
      ReturnField field;
      DVMS_ASSIGN_OR_RETURN(field.expr, ParseExpr());
      if (MatchKeyword("AS")) {
        DVMS_ASSIGN_OR_RETURN(field.alias, ExpectIdent("return alias"));
      }
      tuple.fields.push_back(std::move(field));
    } while (MatchToken(TokenType::kComma));
    DVMS_RETURN_IF_ERROR(ExpectToken(TokenType::kRParen, "')'"));
    stmt.returns.push_back(std::move(tuple));
  } while (MatchToken(TokenType::kComma));
  return stmt;
}

Result<TraceStmt> Parser::ParseTraceStmt(bool backward) {
  TraceStmt stmt;
  stmt.backward = backward;
  DVMS_RETURN_IF_ERROR(ExpectKeyword("TRACE"));
  DVMS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  do {
    DVMS_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
    stmt.from.push_back(std::move(ref));
  } while (MatchToken(TokenType::kComma));
  if (MatchKeyword("WHERE")) {
    DVMS_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
  }
  DVMS_RETURN_IF_ERROR(ExpectKeyword("TO"));
  DVMS_ASSIGN_OR_RETURN(stmt.target_relation, ExpectIdent("target relation"));
  return stmt;
}

Result<Statement> Parser::ParseCreateTable() {
  // CREATE TABLE name (col TYPE, ...)
  Statement stmt;
  stmt.kind = Statement::Kind::kCreateTable;
  DVMS_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
  DVMS_ASSIGN_OR_RETURN(stmt.target_name, ExpectIdent("table name"));
  DVMS_RETURN_IF_ERROR(ExpectToken(TokenType::kLParen, "'('"));
  do {
    DVMS_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
    DVMS_ASSIGN_OR_RETURN(std::string type_name, ExpectIdent("column type"));
    ValueType type;
    if (IdentEquals(type_name, "INT") || IdentEquals(type_name, "INTEGER") ||
        IdentEquals(type_name, "BIGINT")) {
      type = ValueType::kInt64;
    } else if (IdentEquals(type_name, "DOUBLE") ||
               IdentEquals(type_name, "FLOAT") ||
               IdentEquals(type_name, "REAL")) {
      type = ValueType::kDouble;
    } else if (IdentEquals(type_name, "TEXT") ||
               IdentEquals(type_name, "STRING") ||
               IdentEquals(type_name, "VARCHAR")) {
      type = ValueType::kString;
    } else if (IdentEquals(type_name, "BOOL") ||
               IdentEquals(type_name, "BOOLEAN")) {
      type = ValueType::kBool;
    } else {
      return Error("unknown column type '" + type_name + "'");
    }
    stmt.create_schema.AddColumn({std::move(col), type});
  } while (MatchToken(TokenType::kComma));
  DVMS_RETURN_IF_ERROR(ExpectToken(TokenType::kRParen, "')'"));
  return stmt;
}

Result<Statement> Parser::ParseInsert() {
  // INSERT INTO name VALUES (v, ...), (v, ...)
  Statement stmt;
  stmt.kind = Statement::Kind::kInsert;
  DVMS_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  DVMS_ASSIGN_OR_RETURN(stmt.target_name, ExpectIdent("table name"));
  DVMS_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
  do {
    DVMS_RETURN_IF_ERROR(ExpectToken(TokenType::kLParen, "'('"));
    Row row;
    do {
      DVMS_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      row.push_back(std::move(v));
    } while (MatchToken(TokenType::kComma));
    DVMS_RETURN_IF_ERROR(ExpectToken(TokenType::kRParen, "')'"));
    stmt.insert_rows.push_back(std::move(row));
  } while (MatchToken(TokenType::kComma));
  return stmt;
}

Result<Statement> Parser::ParseDelete() {
  // DELETE FROM name [WHERE expr]
  Statement stmt;
  stmt.kind = Statement::Kind::kDelete;
  DVMS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  DVMS_ASSIGN_OR_RETURN(stmt.target_name, ExpectIdent("table name"));
  if (MatchKeyword("WHERE")) {
    DVMS_ASSIGN_OR_RETURN(stmt.delete_where, ParseExpr());
  }
  return stmt;
}

Result<Statement> Parser::ParseExplain() {
  // EXPLAIN [ANALYZE] SELECT ... — `EXPLAIN` itself was already consumed.
  Statement stmt;
  stmt.kind = Statement::Kind::kExplain;
  stmt.explain_analyze = MatchKeyword("ANALYZE");
  if (!CheckKeyword("SELECT")) {
    return Error("expected SELECT after EXPLAIN");
  }
  DVMS_ASSIGN_OR_RETURN(stmt.select, ParseSelectStmt());
  return stmt;
}

Result<Statement> Parser::ParseStatement() {
  if (MatchKeyword("CREATE")) return ParseCreateTable();
  if (MatchKeyword("INSERT")) return ParseInsert();
  if (MatchKeyword("DELETE")) return ParseDelete();
  // Bare EXPLAIN statement. `EXPLAIN = SELECT ...` (a view actually named
  // EXPLAIN) still parses as a view definition via the lookahead.
  if (CheckKeyword("EXPLAIN") && Peek(1).type != TokenType::kEq) {
    Advance();
    return ParseExplain();
  }

  Statement stmt;
  DVMS_ASSIGN_OR_RETURN(stmt.target_name, ExpectIdent("statement target name"));
  DVMS_RETURN_IF_ERROR(ExpectToken(TokenType::kEq, "'='"));

  if (CheckKeyword("SELECT")) {
    stmt.kind = Statement::Kind::kViewDef;
    DVMS_ASSIGN_OR_RETURN(stmt.select, ParseSelectStmt());
    return stmt;
  }
  // `NAME = fn(SELECT ...)`: render() marks the view for rasterization;
  // any other name is a table UDF applied to the select's result.
  if (Check(TokenType::kIdent) && Peek(1).type == TokenType::kLParen &&
      Peek(2).IsKeyword("SELECT")) {
    std::string fn = Advance().text;
    Advance();  // '('
    stmt.kind = Statement::Kind::kViewDef;
    if (IdentEquals(fn, "render")) {
      stmt.render = true;
    } else {
      stmt.table_udf = fn;
    }
    DVMS_ASSIGN_OR_RETURN(stmt.select, ParseSelectStmt());
    DVMS_RETURN_IF_ERROR(ExpectToken(TokenType::kRParen, "')'"));
    return stmt;
  }
  // `NAME = EXPLAIN [ANALYZE] SELECT ...` materializes the report as a
  // relation named NAME (queryable/renderable like any other view source).
  if (MatchKeyword("EXPLAIN")) {
    DVMS_ASSIGN_OR_RETURN(Statement explain, ParseExplain());
    explain.target_name = std::move(stmt.target_name);
    return explain;
  }
  if (MatchKeyword("EVENT")) {
    stmt.kind = Statement::Kind::kEventDef;
    DVMS_ASSIGN_OR_RETURN(stmt.event, ParseEventStmt());
    return stmt;
  }
  if (MatchKeyword("BACKWARD")) {
    stmt.kind = Statement::Kind::kTraceDef;
    DVMS_ASSIGN_OR_RETURN(stmt.trace, ParseTraceStmt(/*backward=*/true));
    return stmt;
  }
  if (MatchKeyword("FORWARD")) {
    stmt.kind = Statement::Kind::kTraceDef;
    DVMS_ASSIGN_OR_RETURN(stmt.trace, ParseTraceStmt(/*backward=*/false));
    return stmt;
  }
  return Error(
      "expected SELECT, render(, EXPLAIN, EVENT, BACKWARD TRACE, or FORWARD "
      "TRACE after '='");
}

Result<Program> Parser::ParseProgram() {
  Program program;
  while (!Check(TokenType::kEof)) {
    if (MatchToken(TokenType::kSemicolon)) continue;
    DVMS_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
    program.statements.push_back(std::move(stmt));
    if (!Check(TokenType::kEof)) {
      DVMS_RETURN_IF_ERROR(ExpectToken(TokenType::kSemicolon, "';'"));
    }
  }
  return program;
}

Result<SelectStmt> Parser::ParseSelectOnly() {
  DVMS_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelectStmt());
  MatchToken(TokenType::kSemicolon);
  if (!Check(TokenType::kEof)) {
    return Error("unexpected trailing input after SELECT statement");
  }
  return stmt;
}

Result<QueryRequest> Parser::ParseQueryOnly() {
  QueryRequest req;
  if (MatchKeyword("EXPLAIN")) {
    req.explain = true;
    req.analyze = MatchKeyword("ANALYZE");
  }
  DVMS_ASSIGN_OR_RETURN(req.select, ParseSelectStmt());
  MatchToken(TokenType::kSemicolon);
  if (!Check(TokenType::kEof)) {
    return Error("unexpected trailing input after query");
  }
  return req;
}

Result<ExprPtr> Parser::ParseExprOnly() {
  DVMS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
  if (!Check(TokenType::kEof)) {
    return Error("unexpected trailing input after expression");
  }
  return e;
}

}  // namespace

Result<Program> ParseProgram(const std::string& source) {
  DVMS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseProgram();
}

Result<SelectStmt> ParseSelect(const std::string& source) {
  DVMS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseSelectOnly();
}

Result<QueryRequest> ParseQuery(const std::string& source) {
  DVMS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseQueryOnly();
}

Result<ExprPtr> ParseExpression(const std::string& source) {
  DVMS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.ParseExprOnly();
}

}  // namespace dvms
