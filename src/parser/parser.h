#ifndef DVMS_PARSER_PARSER_H_
#define DVMS_PARSER_PARSER_H_

#include <string>

#include "common/status.h"
#include "parser/ast.h"

namespace dvms {

/// Parses a full DeVIL program (a semicolon-separated statement list).
///
/// Supported statements:
///   CREATE TABLE name (col TYPE, ...);
///   INSERT INTO name VALUES (...), (...);
///   NAME = SELECT ... [UNION [ALL] ... | MINUS ...];
///   NAME = render(SELECT ...);
///   NAME = EVENT E1 [AS a][*], ... [WHERE preds] RETURN (...), (...);
///   NAME = BACKWARD|FORWARD TRACE FROM refs [WHERE pred] TO relation;
Result<Program> ParseProgram(const std::string& source);

/// Parses a single SELECT statement (no trailing semicolon required).
/// Used by tests and by Precision Interfaces (§3.4) to turn query-log
/// entries into ASTs.
Result<SelectStmt> ParseSelect(const std::string& source);

/// An ad-hoc query: a SELECT optionally wrapped in EXPLAIN [ANALYZE].
struct QueryRequest {
  bool explain = false;
  bool analyze = false;  // implies explain
  SelectStmt select;
};

/// Parses `[EXPLAIN [ANALYZE]] SELECT ...` — the Dvms::Query entry point,
/// a superset of ParseSelect.
Result<QueryRequest> ParseQuery(const std::string& source);

/// Parses a standalone scalar expression.
Result<ExprPtr> ParseExpression(const std::string& source);

}  // namespace dvms

#endif  // DVMS_PARSER_PARSER_H_
