#ifndef DVMS_PARSER_LEXER_H_
#define DVMS_PARSER_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace dvms {

enum class TokenType {
  kIdent,
  kInt,
  kDouble,
  kString,
  // punctuation / operators
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kSemicolon,
  kDot,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAt,
  kEof,
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;    // identifier / string contents
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t line = 1;
  size_t column = 1;

  /// Case-insensitive keyword test for identifier tokens.
  bool IsKeyword(const char* kw) const;

  std::string Describe() const;
};

/// Tokenizes DeVIL source. Comments: `--` to end of line and `▷` to end of
/// line (the paper's comment marker). String literals use single quotes with
/// '' as the escape for a quote.
Result<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace dvms

#endif  // DVMS_PARSER_LEXER_H_
