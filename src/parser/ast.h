#ifndef DVMS_PARSER_AST_H_
#define DVMS_PARSER_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/schema.h"
#include "expr/expr.h"
#include "query/plan.h"

namespace dvms {

struct SelectStmt;

/// A relation in a FROM clause, e.g. `SPLOT_POINTS@vnow-1 AS SP`, or a
/// derived table `(SELECT ... MINUS ...) AS S`.
struct TableRef {
  std::string name;
  VersionRef version;
  std::string alias;  // defaults to name
  /// Non-null for a derived table; `name` is empty then.
  std::shared_ptr<SelectStmt> subquery;

  const std::string& effective_alias() const {
    return alias.empty() ? name : alias;
  }
};

/// One projection in a SELECT list. Either an expression with an optional
/// alias, `*`, or `alias.*`.
struct SelectItem {
  ExprPtr expr;
  std::string alias;
  bool star = false;
  std::string star_qualifier;  // for `alias.*`
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

/// One SELECT ... FROM ... block.
struct SelectCore {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // may be null
  std::vector<OrderItem> order_by;
  std::optional<size_t> limit;
};

enum class SetOp { kUnion, kUnionAll, kMinus };

/// A full select statement: cores combined with UNION / UNION ALL / MINUS.
struct SelectStmt {
  std::vector<SelectCore> cores;
  std::vector<SetOp> ops;  // ops[i] combines cores[i] and cores[i+1]
};

// ---- EVENT statements (DeVIL 2) ----

/// One element of an event-sequence pattern, e.g. `MOUSE_MOVE* AS M`.
struct EventElem {
  std::string event_type;
  std::string alias;  // may be empty
  bool kleene = false;
};

/// A predicate in an EVENT ... WHERE clause. Plain predicates filter events
/// out of the input stream; FORALL/EXISTS trigger a reject (transaction
/// abort) when they fail.
struct EventPredicate {
  enum class Kind { kPlain, kForall, kExists };
  Kind kind = Kind::kPlain;
  std::string var;         // bound variable for FORALL/EXISTS
  std::string over_alias;  // the (kleene) element the quantifier ranges over
  ExprPtr expr;
};

/// One projection inside a RETURN tuple.
struct ReturnField {
  ExprPtr expr;
  std::string alias;
};

/// One parenthesized projection statement in a RETURN clause.
struct ReturnTuple {
  std::vector<ReturnField> fields;
};

struct EventStmt {
  std::vector<EventElem> elems;
  std::vector<EventPredicate> predicates;
  std::vector<ReturnTuple> returns;
};

// ---- TRACE statements (DeVIL 4) ----

struct TraceStmt {
  bool backward = true;
  std::vector<TableRef> from;
  ExprPtr where;  // may be null
  std::string target_relation;
};

// ---- Top-level statements ----

struct Statement {
  enum class Kind {
    kViewDef,      // NAME = SELECT ...           (render flag optional)
    kEventDef,     // NAME = EVENT ...
    kTraceDef,     // NAME = BACKWARD/FORWARD TRACE ...
    kCreateTable,  // CREATE TABLE name (col TYPE, ...)
    kInsert,       // INSERT INTO name VALUES (...), (...)
    kDelete,       // DELETE FROM name [WHERE expr]
    kExplain,      // [NAME =] EXPLAIN [ANALYZE] SELECT ...
  };
  Kind kind = Kind::kViewDef;
  std::string target_name;

  /// True for `NAME = render(SELECT ...)`: the view is a marks relation and
  /// its updates are pushed to the rasterizer.
  bool render = false;

  /// Non-empty for `NAME = some_table_udf(SELECT ...)`: the named table
  /// UDF post-processes the select's result (layout computations).
  std::string table_udf;

  /// kExplain only: EXPLAIN ANALYZE executes the select and reports
  /// per-operator rows/time/morsels; plain EXPLAIN only prints the plan.
  /// For the bare form `EXPLAIN ... SELECT ...`, target_name is empty and
  /// the report is returned instead of materialized as a relation.
  bool explain_analyze = false;

  SelectStmt select;
  EventStmt event;
  TraceStmt trace;

  // kCreateTable
  Schema create_schema;

  // kInsert
  std::vector<Row> insert_rows;

  // kDelete
  ExprPtr delete_where;  // may be null (delete all rows)
};

struct Program {
  std::vector<Statement> statements;
};

}  // namespace dvms

#endif  // DVMS_PARSER_AST_H_
