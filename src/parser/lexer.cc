#include "parser/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/schema.h"

namespace dvms {

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kIdent && IdentEquals(text, kw);
}

std::string Token::Describe() const {
  switch (type) {
    case TokenType::kIdent:
      return "identifier '" + text + "'";
    case TokenType::kInt:
      return "integer " + std::to_string(int_value);
    case TokenType::kDouble:
      return "number";
    case TokenType::kString:
      return "string '" + text + "'";
    case TokenType::kEof:
      return "end of input";
    default:
      return "'" + text + "'";
  }
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  size_t i = 0;
  size_t line = 1;
  size_t col = 1;
  auto make = [&line, &col](TokenType type, std::string text) {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.line = line;
    t.column = col;
    return t;
  };
  auto advance = [&](size_t n) {
    for (size_t k = 0; k < n && i < source.size(); ++k) {
      if (source[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };

  while (i < source.size()) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    // Line comments: `--` or the paper's `▷` (UTF-8 0xE2 0x96 0xB7).
    if (c == '-' && i + 1 < source.size() && source[i + 1] == '-') {
      while (i < source.size() && source[i] != '\n') advance(1);
      continue;
    }
    if (static_cast<unsigned char>(c) == 0xE2 && i + 2 < source.size() &&
        static_cast<unsigned char>(source[i + 1]) == 0x96 &&
        static_cast<unsigned char>(source[i + 2]) == 0xB7) {
      while (i < source.size() && source[i] != '\n') advance(1);
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      size_t start_col = col;
      while (i < source.size() && IsIdentChar(source[i])) advance(1);
      Token t = make(TokenType::kIdent, source.substr(start, i - start));
      t.column = start_col;
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < source.size() &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[i]))) {
        advance(1);
      }
      if (i < source.size() && source[i] == '.' && i + 1 < source.size() &&
          std::isdigit(static_cast<unsigned char>(source[i + 1]))) {
        is_double = true;
        advance(1);
        while (i < source.size() &&
               std::isdigit(static_cast<unsigned char>(source[i]))) {
          advance(1);
        }
      }
      if (i < source.size() && (source[i] == 'e' || source[i] == 'E')) {
        size_t save = i;
        advance(1);
        if (i < source.size() && (source[i] == '+' || source[i] == '-')) {
          advance(1);
        }
        if (i < source.size() &&
            std::isdigit(static_cast<unsigned char>(source[i]))) {
          is_double = true;
          while (i < source.size() &&
                 std::isdigit(static_cast<unsigned char>(source[i]))) {
            advance(1);
          }
        } else {
          i = save;  // 'e' belongs to a following identifier
        }
      }
      std::string text = source.substr(start, i - start);
      Token t = make(is_double ? TokenType::kDouble : TokenType::kInt, text);
      // Non-throwing conversion: fuzzed or adversarial literals (e.g.
      // "1e999999", 40-digit integers) must produce a Status, not an
      // exception escaping the module boundary (see status.h convention).
      errno = 0;
      if (is_double) {
        t.double_value = std::strtod(text.c_str(), nullptr);
        // Overflow saturates to +/-HUGE_VAL, which evaluates fine.
      } else {
        char* end = nullptr;
        t.int_value = std::strtoll(text.c_str(), &end, 10);
        if (errno == ERANGE) {
          return Status::ParseError("integer literal '" + text +
                                    "' is out of range");
        }
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      advance(1);
      std::string text;
      bool closed = false;
      while (i < source.size()) {
        if (source[i] == '\'') {
          if (i + 1 < source.size() && source[i + 1] == '\'') {
            text += '\'';
            advance(2);
            continue;
          }
          advance(1);
          closed = true;
          break;
        }
        text += source[i];
        advance(1);
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at line " +
                                  std::to_string(line));
      }
      tokens.push_back(make(TokenType::kString, std::move(text)));
      continue;
    }
    // Multi-char operators.
    auto two = [&](char a, char b) {
      return c == a && i + 1 < source.size() && source[i + 1] == b;
    };
    if (two('<', '=')) {
      tokens.push_back(make(TokenType::kLe, "<="));
      advance(2);
      continue;
    }
    if (two('>', '=')) {
      tokens.push_back(make(TokenType::kGe, ">="));
      advance(2);
      continue;
    }
    if (two('<', '>')) {
      tokens.push_back(make(TokenType::kNe, "<>"));
      advance(2);
      continue;
    }
    if (two('!', '=')) {
      tokens.push_back(make(TokenType::kNe, "!="));
      advance(2);
      continue;
    }
    TokenType type;
    switch (c) {
      case '(':
        type = TokenType::kLParen;
        break;
      case ')':
        type = TokenType::kRParen;
        break;
      case '{':
        type = TokenType::kLBrace;
        break;
      case '}':
        type = TokenType::kRBrace;
        break;
      case ',':
        type = TokenType::kComma;
        break;
      case ';':
        type = TokenType::kSemicolon;
        break;
      case '.':
        type = TokenType::kDot;
        break;
      case '*':
        type = TokenType::kStar;
        break;
      case '+':
        type = TokenType::kPlus;
        break;
      case '-':
        type = TokenType::kMinus;
        break;
      case '/':
        type = TokenType::kSlash;
        break;
      case '%':
        type = TokenType::kPercent;
        break;
      case '=':
        type = TokenType::kEq;
        break;
      case '<':
        type = TokenType::kLt;
        break;
      case '>':
        type = TokenType::kGt;
        break;
      case '@':
        type = TokenType::kAt;
        break;
      default:
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at line " +
                                  std::to_string(line) + ", column " +
                                  std::to_string(col));
    }
    tokens.push_back(make(type, std::string(1, c)));
    advance(1);
  }
  tokens.push_back(make(TokenType::kEof, ""));
  return tokens;
}

}  // namespace dvms
