#ifndef DVMS_PARSER_PLANNER_H_
#define DVMS_PARSER_PLANNER_H_

#include "common/status.h"
#include "parser/ast.h"
#include "query/binder.h"
#include "query/plan.h"

namespace dvms {

/// Plan-level read/write classification for the engine's admission split.
/// A statement is read-only iff executing it cannot mutate catalog state:
/// today that is exactly the bare `EXPLAIN [ANALYZE] SELECT ...` form
/// (empty target_name — a named EXPLAIN materializes its report as a
/// relation). Standalone SELECTs arrive via ParseQuery, not Statement, and
/// are read-only by construction. Derived from the parsed AST, never from
/// string matching.
bool StatementIsReadOnly(const Statement& stmt);

/// Lowers SELECT ASTs into logical plans. Performs the rule-based
/// optimizations the DVMS Interaction Manager applies offline:
///   * extraction of equi-join conjuncts from WHERE into hash-join keys,
///   * lifting aggregate calls into an Aggregate operator,
///   * `*` / `alias.*` expansion (via the schema resolver).
class Planner {
 public:
  explicit Planner(const SchemaResolver* resolver) : resolver_(resolver) {}

  /// Plans a full select statement (cores joined by UNION/MINUS).
  /// The returned plan is unbound; pass it to Binder::Bind.
  Result<PlanPtr> PlanSelect(const SelectStmt& stmt) const;

 private:
  Result<PlanPtr> PlanCore(const SelectCore& core) const;

  const SchemaResolver* resolver_;
};

}  // namespace dvms

#endif  // DVMS_PARSER_PLANNER_H_
