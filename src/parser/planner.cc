#include "parser/planner.h"

#include <unordered_set>

#include "common/string_util.h"

namespace dvms {

namespace {

/// Flattens a conjunction into its AND-ed terms.
void CollectConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
    CollectConjuncts(e->children[0], out);
    CollectConjuncts(e->children[1], out);
    return;
  }
  out->push_back(e);
}

/// True if `e` is `A.x = B.y` with A in `left_aliases` and B == right_alias
/// (or mirrored). On success fills (left_key, right_key).
bool IsEquiJoinConjunct(const ExprPtr& e,
                        const std::unordered_set<std::string>& left_aliases,
                        const std::string& right_alias, ExprPtr* left_key,
                        ExprPtr* right_key) {
  if (e->kind != ExprKind::kBinary || e->binary_op != BinaryOp::kEq) {
    return false;
  }
  const ExprPtr& a = e->children[0];
  const ExprPtr& b = e->children[1];
  if (a->kind != ExprKind::kColumnRef || b->kind != ExprKind::kColumnRef) {
    return false;
  }
  if (a->qualifier.empty() || b->qualifier.empty()) return false;
  std::string qa = IdentKey(a->qualifier);
  std::string qb = IdentKey(b->qualifier);
  std::string right = IdentKey(right_alias);
  if (left_aliases.count(qa) > 0 && qb == right) {
    *left_key = a;
    *right_key = b;
    return true;
  }
  if (left_aliases.count(qb) > 0 && qa == right) {
    *left_key = b;
    *right_key = a;
    return true;
  }
  return false;
}

/// Collects the alias qualifiers a conjunct references. Returns false when
/// any column reference is unqualified (the conjunct cannot be placed
/// safely before binding resolves it).
bool CollectQualifiers(const ExprPtr& e,
                       std::unordered_set<std::string>* qualifiers) {
  if (e->kind == ExprKind::kColumnRef) {
    if (e->qualifier.empty()) return false;
    qualifiers->insert(IdentKey(e->qualifier));
  }
  for (const ExprPtr& c : e->children) {
    if (!CollectQualifiers(c, qualifiers)) return false;
  }
  return true;
}

/// Derives an output column name for a projection without an alias.
std::string DeriveName(const ExprPtr& e, size_t index) {
  if (e->kind == ExprKind::kColumnRef) return e->column;
  if (e->kind == ExprKind::kAggregateCall) {
    std::string base = ToLower(AggFuncToString(e->agg_func));
    if (!e->count_star && e->children[0]->kind == ExprKind::kColumnRef) {
      return base + "_" + e->children[0]->column;
    }
    return base;
  }
  return "col" + std::to_string(index);
}

std::string ExprKeyOf(const ExprPtr& e) { return ToLower(e->ToString()); }

/// Canonical key of an aggregate spec, for matching HAVING aggregates to
/// select-list aggregates.
std::string AggSpecKey(const AggSpec& spec) {
  std::string out = AggFuncToString(spec.func);
  out += "(";
  out += spec.count_star ? "*" : spec.arg->ToString();
  out += ")";
  return ToLower(out);
}

/// Rewrites a HAVING expression so it can run as a Filter above the
/// Aggregate: every aggregate call becomes a column reference to the
/// matching aggregate output (adding hidden aggregate specs for calls not
/// already in the select list), and group expressions become references to
/// their output names.
ExprPtr RewriteHavingExpr(const ExprPtr& e,
                          const std::vector<std::string>& group_keys,
                          const std::vector<std::string>& group_names,
                          std::vector<AggSpec>* aggs, size_t* hidden_count) {
  if (e->kind == ExprKind::kAggregateCall) {
    std::string key = ExprKeyOf(e);
    for (const AggSpec& spec : *aggs) {
      if (AggSpecKey(spec) == key) return MakeColumnRef(spec.output_name);
    }
    AggSpec spec;
    spec.func = e->agg_func;
    spec.count_star = e->count_star;
    if (!spec.count_star) spec.arg = e->children[0];
    spec.output_name = "__having" + std::to_string((*hidden_count)++);
    std::string name = spec.output_name;
    aggs->push_back(std::move(spec));
    return MakeColumnRef(name);
  }
  // A whole subexpression matching a GROUP BY expression becomes a
  // reference to the group output column.
  std::string key = ExprKeyOf(e);
  for (size_t g = 0; g < group_keys.size(); ++g) {
    if (group_keys[g] == key) return MakeColumnRef(group_names[g]);
  }
  ExprPtr out = std::make_shared<Expr>(*e);
  out->children.clear();
  for (const ExprPtr& c : e->children) {
    out->children.push_back(
        RewriteHavingExpr(c, group_keys, group_names, aggs, hidden_count));
  }
  return out;
}

}  // namespace

Result<PlanPtr> Planner::PlanCore(const SelectCore& core) const {
  if (core.from.empty()) {
    return Status::ParseError("SELECT requires a FROM clause");
  }

  // 1. Conjuncts of the WHERE clause.
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(core.where, &conjuncts);
  std::vector<bool> consumed(conjuncts.size(), false);

  // 2. Left-deep join tree, pulling equi conjuncts into hash-join keys.
  auto plan_ref = [this](const TableRef& ref) -> Result<PlanPtr> {
    if (ref.subquery != nullptr) {
      DVMS_ASSIGN_OR_RETURN(PlanPtr sub, PlanSelect(*ref.subquery));
      if (!ref.effective_alias().empty()) {
        return MakeAlias(sub, ref.effective_alias());
      }
      return sub;
    }
    return MakeScan(ref.name, ref.version, ref.effective_alias());
  };
  // Filter pushdown (the Interaction Manager's rule-based optimization): a
  // conjunct whose qualified references are all available at some point in
  // the left-deep tree is applied there instead of in one big top filter.
  auto take_pushable =
      [&conjuncts, &consumed](
          const std::unordered_set<std::string>& available) {
        std::vector<ExprPtr> taken;
        for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
          if (consumed[ci]) continue;
          std::unordered_set<std::string> quals;
          if (!CollectQualifiers(conjuncts[ci], &quals)) continue;
          bool subset = !quals.empty();
          for (const std::string& q : quals) {
            if (available.count(q) == 0) subset = false;
          }
          if (subset) {
            taken.push_back(conjuncts[ci]);
            consumed[ci] = true;
          }
        }
        return taken;
      };

  DVMS_ASSIGN_OR_RETURN(PlanPtr plan, plan_ref(core.from[0]));
  std::unordered_set<std::string> joined_aliases = {
      IdentKey(core.from[0].effective_alias())};
  {
    std::vector<ExprPtr> pushed = take_pushable(joined_aliases);
    if (!pushed.empty()) {
      plan = MakeFilter(plan, MakeConjunction(std::move(pushed)));
    }
  }
  for (size_t t = 1; t < core.from.size(); ++t) {
    const TableRef& ref = core.from[t];
    DVMS_ASSIGN_OR_RETURN(PlanPtr right, plan_ref(ref));
    // Push single-side conjuncts below the join on the build side.
    std::unordered_set<std::string> right_alias = {
        IdentKey(ref.effective_alias())};
    std::vector<ExprPtr> right_pushed = take_pushable(right_alias);
    if (!right_pushed.empty()) {
      right = MakeFilter(right, MakeConjunction(std::move(right_pushed)));
    }
    std::vector<std::pair<ExprPtr, ExprPtr>> keys;
    for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
      if (consumed[ci]) continue;
      ExprPtr lk, rk;
      if (IsEquiJoinConjunct(conjuncts[ci], joined_aliases,
                             ref.effective_alias(), &lk, &rk)) {
        keys.emplace_back(lk, rk);
        consumed[ci] = true;
      }
    }
    plan = MakeJoin(plan, right, std::move(keys));
    joined_aliases.insert(IdentKey(ref.effective_alias()));
    // Conjuncts spanning the aliases joined so far sit right above this
    // join rather than at the top of the tree.
    std::vector<ExprPtr> spanning = take_pushable(joined_aliases);
    if (!spanning.empty()) {
      plan = MakeFilter(plan, MakeConjunction(std::move(spanning)));
    }
  }

  // 3. Residual predicate (unqualified references land here).
  std::vector<ExprPtr> residual;
  for (size_t ci = 0; ci < conjuncts.size(); ++ci) {
    if (!consumed[ci]) residual.push_back(conjuncts[ci]);
  }
  if (!residual.empty()) {
    plan = MakeFilter(plan, MakeConjunction(std::move(residual)));
  }

  // 4. Star expansion needs relation schemas.
  bool has_star = false;
  bool has_aggregate = !core.group_by.empty();
  for (const SelectItem& item : core.items) {
    if (item.star) has_star = true;
    if (item.expr != nullptr && item.expr->ContainsAggregate()) {
      has_aggregate = true;
    }
  }
  if (core.having != nullptr) has_aggregate = true;
  if (has_star && has_aggregate) {
    return Status::Unsupported("'*' cannot be combined with aggregates");
  }

  std::vector<ExprPtr> out_exprs;
  std::vector<std::string> out_names;
  if (has_star) {
    for (const SelectItem& item : core.items) {
      if (!item.star) {
        out_exprs.push_back(item.expr);
        out_names.push_back(item.alias.empty()
                                ? DeriveName(item.expr, out_names.size())
                                : item.alias);
        continue;
      }
      for (const TableRef& ref : core.from) {
        if (!item.star_qualifier.empty() &&
            !IdentEquals(item.star_qualifier, ref.effective_alias())) {
          continue;
        }
        if (ref.subquery != nullptr) {
          return Status::Unsupported(
              "'*' expansion over a derived table is not supported; name "
              "the columns explicitly");
        }
        DVMS_ASSIGN_OR_RETURN(Schema schema,
                              resolver_->ResolveRelation(ref.name));
        for (const Column& col : schema.columns()) {
          out_exprs.push_back(
              MakeColumnRef(ref.effective_alias(), col.name));
          out_names.push_back(col.name);
        }
      }
    }
    return MakeProject(plan, std::move(out_exprs), std::move(out_names));
  }

  PlanPtr result;
  if (has_aggregate) {
    // 5a. Aggregate path. Non-aggregate select items must match a GROUP BY
    // expression; aggregate items must be top-level aggregate calls.
    std::vector<std::string> group_names;
    std::vector<std::string> group_keys;
    for (size_t gi = 0; gi < core.group_by.size(); ++gi) {
      group_keys.push_back(ExprKeyOf(core.group_by[gi]));
      group_names.push_back("group" + std::to_string(gi));
    }
    std::vector<AggSpec> aggs;
    struct OutputRef {
      bool is_group;
      size_t index;
      std::string name;
    };
    std::vector<OutputRef> outputs;
    for (size_t i = 0; i < core.items.size(); ++i) {
      const SelectItem& item = core.items[i];
      if (item.expr->ContainsAggregate()) {
        if (item.expr->kind != ExprKind::kAggregateCall) {
          return Status::Unsupported(
              "aggregate expressions must be top-level aggregate calls "
              "(e.g. SUM(x)); found '" +
              item.expr->ToString() + "'");
        }
        AggSpec spec;
        spec.func = item.expr->agg_func;
        spec.count_star = item.expr->count_star;
        if (!spec.count_star) spec.arg = item.expr->children[0];
        spec.output_name =
            item.alias.empty() ? DeriveName(item.expr, i) : item.alias;
        outputs.push_back({false, aggs.size(), spec.output_name});
        aggs.push_back(std::move(spec));
      } else {
        std::string key = ExprKeyOf(item.expr);
        size_t gi = group_keys.size();
        for (size_t g = 0; g < group_keys.size(); ++g) {
          if (group_keys[g] == key) {
            gi = g;
            break;
          }
        }
        if (gi == group_keys.size()) {
          return Status::BindError("select item '" + item.expr->ToString() +
                                   "' must appear in GROUP BY");
        }
        std::string name =
            item.alias.empty() ? DeriveName(item.expr, i) : item.alias;
        group_names[gi] = name;
        outputs.push_back({true, gi, name});
      }
    }
    // HAVING runs as a Filter above the Aggregate; its aggregate calls are
    // rewritten to references (adding hidden aggregates as needed).
    ExprPtr having;
    if (core.having != nullptr) {
      size_t hidden_count = 0;
      having = RewriteHavingExpr(core.having, group_keys, group_names, &aggs,
                                 &hidden_count);
    }
    PlanPtr agg = MakeAggregate(plan, core.group_by, group_names, aggs);
    if (having != nullptr) agg = MakeFilter(agg, having);
    // Reorder/rename to the select-list order via a Project of column refs.
    std::vector<ExprPtr> proj;
    std::vector<std::string> names;
    for (const OutputRef& ref : outputs) {
      proj.push_back(MakeColumnRef(ref.name));
      names.push_back(ref.name);
    }
    result = MakeProject(agg, std::move(proj), std::move(names));
    if (core.distinct) result = MakeDistinct(result);
  } else {
    // 5b. Plain projection.
    for (size_t i = 0; i < core.items.size(); ++i) {
      const SelectItem& item = core.items[i];
      out_exprs.push_back(item.expr);
      out_names.push_back(item.alias.empty() ? DeriveName(item.expr, i)
                                             : item.alias);
    }

    if (core.distinct && !core.order_by.empty()) {
      // SQL requires ORDER BY keys of a DISTINCT select to be output
      // columns, so no helper columns can be needed below.
      for (const OrderItem& item : core.order_by) {
        bool is_output = item.expr->kind == ExprKind::kColumnRef;
        if (!is_output) {
          return Status::Unsupported(
              "ORDER BY expressions of a SELECT DISTINCT must be output "
              "columns");
        }
      }
    }
    if (!core.order_by.empty()) {
      // ORDER BY may reference projection aliases or pre-projection input
      // columns. Keys that are not bare references to an output column are
      // carried through hidden helper columns and projected away afterwards.
      auto matches_output = [&out_names](const ExprPtr& e) {
        if (e->kind != ExprKind::kColumnRef || !e->qualifier.empty()) {
          return false;
        }
        for (const std::string& name : out_names) {
          if (IdentEquals(name, e->column)) return true;
        }
        return false;
      };
      std::vector<ExprPtr> extended_exprs = out_exprs;
      std::vector<std::string> extended_names = out_names;
      std::vector<ExprPtr> sort_refs;
      std::vector<bool> desc;
      bool need_helpers = false;
      for (size_t oi = 0; oi < core.order_by.size(); ++oi) {
        const OrderItem& item = core.order_by[oi];
        desc.push_back(item.descending);
        if (matches_output(item.expr)) {
          sort_refs.push_back(item.expr);
        } else {
          std::string helper = "__ord" + std::to_string(oi);
          extended_exprs.push_back(item.expr);
          extended_names.push_back(helper);
          sort_refs.push_back(MakeColumnRef(helper));
          need_helpers = true;
        }
      }
      if (need_helpers) {
        PlanPtr extended =
            MakeProject(plan, std::move(extended_exprs),
                        std::move(extended_names));
        PlanPtr ordered =
            MakeOrderBy(extended, std::move(sort_refs), std::move(desc));
        if (core.limit.has_value()) ordered = MakeLimit(ordered, *core.limit);
        std::vector<ExprPtr> final_refs;
        for (const std::string& name : out_names) {
          final_refs.push_back(MakeColumnRef(name));
        }
        std::vector<std::string> final_names = out_names;
        return MakeProject(ordered, std::move(final_refs),
                           std::move(final_names));
      }
      result = MakeProject(plan, std::move(out_exprs), std::move(out_names));
      if (core.distinct) result = MakeDistinct(result);
      result = MakeOrderBy(result, std::move(sort_refs), std::move(desc));
      if (core.limit.has_value()) result = MakeLimit(result, *core.limit);
      return result;
    }
    result = MakeProject(plan, std::move(out_exprs), std::move(out_names));
    if (core.distinct) result = MakeDistinct(result);
  }

  // 6. ORDER BY / LIMIT for the aggregate path (bound against the
  // projected schema, so keys must be select-list aliases).
  if (!core.order_by.empty()) {
    std::vector<ExprPtr> exprs;
    std::vector<bool> desc;
    for (const OrderItem& item : core.order_by) {
      exprs.push_back(item.expr);
      desc.push_back(item.descending);
    }
    result = MakeOrderBy(result, std::move(exprs), std::move(desc));
  }
  if (core.limit.has_value()) {
    result = MakeLimit(result, *core.limit);
  }
  return result;
}

bool StatementIsReadOnly(const Statement& stmt) {
  return stmt.kind == Statement::Kind::kExplain && stmt.target_name.empty();
}

Result<PlanPtr> Planner::PlanSelect(const SelectStmt& stmt) const {
  if (stmt.cores.empty()) {
    return Status::ParseError("empty select statement");
  }
  DVMS_ASSIGN_OR_RETURN(PlanPtr plan, PlanCore(stmt.cores[0]));
  for (size_t i = 0; i < stmt.ops.size(); ++i) {
    DVMS_ASSIGN_OR_RETURN(PlanPtr next, PlanCore(stmt.cores[i + 1]));
    switch (stmt.ops[i]) {
      case SetOp::kUnion:
        // Merge into an existing union node when chaining.
        if (plan->kind == PlanKind::kUnion && plan->union_distinct) {
          plan->children.push_back(next);
        } else {
          plan = MakeUnion({plan, next}, /*distinct=*/true);
        }
        break;
      case SetOp::kUnionAll:
        if (plan->kind == PlanKind::kUnion && !plan->union_distinct) {
          plan->children.push_back(next);
        } else {
          plan = MakeUnion({plan, next}, /*distinct=*/false);
        }
        break;
      case SetOp::kMinus:
        plan = MakeMinus(plan, next);
        break;
    }
  }
  return plan;
}

}  // namespace dvms
