#ifndef DVMS_STREAMING_SCHEDULER_H_
#define DVMS_STREAMING_SCHEDULER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace dvms {

/// One data tile the server can stream: its concave utility curve (quality
/// as a function of coefficients delivered, from ProgressiveEncoding) and
/// how much has been delivered so far.
struct StreamTile {
  std::string id;
  std::vector<double> utility;  // utility[k] after k coefficients
  size_t sent_coeffs = 0;

  size_t total_coeffs() const {
    return utility.empty() ? 0 : utility.size() - 1;
  }
  bool complete() const { return sent_coeffs >= total_coeffs(); }
  double current_utility() const {
    return utility.empty() ? 0.0 : utility[sent_coeffs];
  }
};

/// The bandwidth-bounded speculative scheduler of §3.3, modeled on partial
/// task execution (Zeta): each 50 ms tick it allocates the tick's
/// coefficient budget greedily by marginal expected utility
/// p(tile) * Δu(tile) — optimal for concave per-tile utilities. Tiles
/// whose deadline passes are simply rescheduled on the next tick, and
/// probability updates from the intent model re-weight every tick.
class StreamScheduler {
 public:
  /// `coeffs_per_tick`: bandwidth expressed in coefficients per 50 ms tick.
  explicit StreamScheduler(size_t coeffs_per_tick)
      : coeffs_per_tick_(coeffs_per_tick) {}

  /// Registers a tile with its utility curve. Replaces an existing tile of
  /// the same id (resetting progress).
  void AddTile(StreamTile tile);

  /// Updates P(a_i, t) from the intent model; ids absent from the map keep
  /// their previous probability.
  void SetProbabilities(const std::map<std::string, double>& probabilities);

  /// Runs one 50 ms scheduling round. Returns (tile id -> coefficients
  /// sent this tick).
  std::map<std::string, size_t> Tick();

  /// Delivered fraction state of a tile.
  Result<const StreamTile*> GetTile(const std::string& id) const;

  /// Expected utility across tiles, weighted by probability.
  double ExpectedUtility() const;

  size_t total_sent() const { return total_sent_; }

 private:
  struct Entry {
    StreamTile tile;
    double probability = 0.0;
  };
  size_t coeffs_per_tick_;
  std::vector<Entry> entries_;
  size_t total_sent_ = 0;
};

}  // namespace dvms

#endif  // DVMS_STREAMING_SCHEDULER_H_
