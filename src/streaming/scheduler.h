#ifndef DVMS_STREAMING_SCHEDULER_H_
#define DVMS_STREAMING_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace dvms {

/// One data tile the server can stream: its concave utility curve (quality
/// as a function of coefficients delivered, from ProgressiveEncoding) and
/// how much has been delivered so far.
struct StreamTile {
  std::string id;
  std::vector<double> utility;  // utility[k] after k coefficients
  size_t sent_coeffs = 0;

  size_t total_coeffs() const {
    return utility.empty() ? 0 : utility.size() - 1;
  }
  bool complete() const { return sent_coeffs >= total_coeffs(); }
  double current_utility() const {
    return utility.empty() ? 0.0 : utility[sent_coeffs];
  }
};

/// Failure-model knobs for one scheduling tick (§3.3 under load): the tick
/// must return by its deadline no matter what — a missed deadline or a
/// persistent injected fault degrades a tile to the coarser wavelet prefix
/// that is already resident client-side instead of stalling the stream.
struct TickPolicy {
  /// Wall-clock budget per tick in microseconds (the paper's 50 ms tick).
  int64_t budget_us = 50000;
  /// Bounded retry for transient send faults, per coefficient.
  size_t max_retries = 3;
  /// Simulated backoff charged against the tick budget per retry, so
  /// retry storms run the watchdog down instead of blocking real time.
  int64_t retry_backoff_us = 500;
};

/// What one tick did — consumed by tests, benches, and the intent loop.
struct TickReport {
  std::map<std::string, size_t> sent;  // tile id -> coefficients this tick
  /// Incomplete tiles that received nothing this tick because of a
  /// deadline miss or exhausted retries; the client keeps rendering their
  /// resident coarse prefix (DecodePrefix(sent_coeffs)).
  std::vector<std::string> degraded;
  bool deadline_missed = false;
  size_t faults = 0;   // injected send faults observed this tick
  size_t retries = 0;  // bounded-retry attempts consumed this tick
};

/// The bandwidth-bounded speculative scheduler of §3.3, modeled on partial
/// task execution (Zeta): each 50 ms tick it allocates the tick's
/// coefficient budget greedily by marginal expected utility
/// p(tile) * Δu(tile) — optimal for concave per-tile utilities. Tiles
/// whose deadline passes are simply rescheduled on the next tick, and
/// probability updates from the intent model re-weight every tick.
///
/// Robustness: a per-tick watchdog guarantees TickDetailed() never runs past its
/// deadline — on budget exhaustion or injected stream faults
/// (FaultSite::kStreamTick) it degrades gracefully to the coarse resident
/// prefix and reports the miss, rather than blocking the interaction loop.
class StreamScheduler {
 public:
  /// `coeffs_per_tick`: bandwidth expressed in coefficients per 50 ms tick.
  explicit StreamScheduler(size_t coeffs_per_tick)
      : coeffs_per_tick_(coeffs_per_tick) {}

  /// Registers a tile with its utility curve. Replaces an existing tile of
  /// the same id (resetting progress).
  void AddTile(StreamTile tile);

  /// Updates P(a_i, t) from the intent model; ids absent from the map keep
  /// their previous probability.
  void SetProbabilities(const std::map<std::string, double>& probabilities);

  /// Runs one scheduling round under the tick policy's deadline watchdog.
  /// The returned report carries everything the tick did — including
  /// deadline_missed / degraded / faults / retries — so callers can always
  /// observe that a tick served a coarse wavelet prefix.
  TickReport TickDetailed();

  void set_tick_policy(TickPolicy policy) { policy_ = policy; }
  const TickPolicy& tick_policy() const { return policy_; }

  /// Clock override for deterministic tests: returns microseconds on a
  /// monotone scale. Default is std::chrono::steady_clock.
  void set_clock(std::function<int64_t()> clock) { clock_ = std::move(clock); }

  /// Delivered fraction state of a tile.
  Result<const StreamTile*> GetTile(const std::string& id) const;

  /// Expected utility across tiles, weighted by probability.
  double ExpectedUtility() const;

  size_t total_sent() const { return total_sent_; }

  /// Lifetime failure-handling counters.
  struct SchedulerStats {
    size_t ticks = 0;
    size_t deadline_misses = 0;
    size_t faults_injected = 0;
    size_t retries = 0;
    size_t degraded_serves = 0;  // tile-ticks served from a coarse prefix
  };
  const SchedulerStats& stats() const { return stats_; }

  // ---- Durability (snapshot serialization) ----

  /// Streaming progress persisted across restarts: tiles with their
  /// delivery positions and probabilities, bandwidth/policy knobs, and the
  /// lifetime counters. The clock override is process state, not durable
  /// state.
  struct DurableState {
    size_t coeffs_per_tick = 0;
    TickPolicy policy;
    struct TileEntry {
      StreamTile tile;
      double probability = 0.0;
    };
    std::vector<TileEntry> tiles;  // in scheduling (registration) order
    size_t total_sent = 0;
    SchedulerStats stats;
  };

  DurableState SaveDurableState() const;
  void RestoreDurableState(DurableState state);

 private:
  struct Entry {
    StreamTile tile;
    double probability = 0.0;
  };

  int64_t Now() const;

  size_t coeffs_per_tick_;
  TickPolicy policy_;
  std::function<int64_t()> clock_;
  std::vector<Entry> entries_;
  size_t total_sent_ = 0;
  SchedulerStats stats_;
};

}  // namespace dvms

#endif  // DVMS_STREAMING_SCHEDULER_H_
