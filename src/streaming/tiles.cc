#include "streaming/tiles.h"

#include <algorithm>

namespace dvms {

Result<std::vector<DataTile>> MakeTilesFromCube(const CrossfilterCube& cube,
                                                const std::string& group_dim,
                                                const std::string& filter_dim) {
  // The filter domain comes from the filter dimension's own totals; the
  // group domain fixes each tile's slot order.
  DVMS_ASSIGN_OR_RETURN(Table filter_totals, cube.GroupTotals(filter_dim));
  DVMS_ASSIGN_OR_RETURN(Table group_totals, cube.GroupTotals(group_dim));

  std::vector<Value> group_domain;
  for (const Row& row : group_totals.rows()) group_domain.push_back(row[0]);

  std::vector<DataTile> tiles;
  for (const Row& frow : filter_totals.rows()) {
    ValueSet one;
    one.insert(frow[0]);
    DVMS_ASSIGN_OR_RETURN(Table sums,
                          cube.FilteredGroupSums(group_dim, filter_dim, one));
    DataTile tile;
    tile.id = filter_dim + "=" + frow[0].ToString();
    tile.payload.assign(group_domain.size(), 0.0);
    for (const Row& row : sums.rows()) {
      for (size_t g = 0; g < group_domain.size(); ++g) {
        if (row[0].Equals(group_domain[g])) {
          tile.payload[g] = row[1].double_value();
          break;
        }
      }
    }
    tiles.push_back(std::move(tile));
  }
  return tiles;
}

ProgressiveEncoding EncodeTile(const DataTile& tile) {
  return ProgressiveEncoding(tile.payload);
}

}  // namespace dvms
