#ifndef DVMS_STREAMING_SIMULATION_H_
#define DVMS_STREAMING_SIMULATION_H_

#include <vector>

#include "common/rng.h"
#include "streaming/intent_model.h"
#include "streaming/scheduler.h"
#include "workload/mouse.h"

namespace dvms {

/// Client/server simulation comparing the request–response model against
/// §3.3's speculative streaming framework on a grid of chart facets, each
/// backed by a progressively encoded data tile.
struct StreamingSimConfig {
  size_t grid_cols = 4;
  size_t grid_rows = 4;
  size_t tile_values = 256;  // payload length per tile
  /// Bandwidth in coefficients per millisecond (a coefficient is 8 bytes).
  double bandwidth_coeffs_per_ms = 0.6;
  double rtt_ms = 40.0;
  /// Scheduler period (the paper re-runs the scheduler every 50 ms).
  double tick_ms = 50.0;
  /// A tile render is "usable" at this reconstruction quality.
  double usable_quality = 0.9;
  /// Horizon for the widget predictor (the paper reports 82% at 200 ms).
  double predict_horizon_ms = 200.0;
  size_t num_interactions = 200;
  uint64_t seed = 7;
};

struct InteractionMeasurement {
  /// Full-download latency under request–response.
  double request_response_ms = 0;
  /// Time from click until a usable render under speculative streaming
  /// (0 when the prefetched prefix is already usable at click time).
  double speculative_ms = 0;
  /// Delivered quality of the clicked tile at the moment of the click.
  double quality_at_click = 0;
  /// Did the intent model's top-1 prediction 200 ms before the click name
  /// the clicked widget?
  bool predicted_correctly = false;
};

struct StreamingSimResult {
  std::vector<InteractionMeasurement> interactions;

  double mean_request_response_ms = 0;
  double mean_speculative_ms = 0;
  double frac_rr_under_100ms = 0;
  double frac_speculative_under_100ms = 0;
  double mean_quality_at_click = 0;
  double top1_accuracy = 0;
};

/// Runs the simulation: for each interaction a synthetic mouse gesture
/// moves to a random facet; during the gesture the server streams tile
/// prefixes per the intent model every tick; at the click we measure time
/// to a usable render, against a baseline that fetches the full tile after
/// the click.
StreamingSimResult SimulateStreaming(const StreamingSimConfig& config);

}  // namespace dvms

#endif  // DVMS_STREAMING_SIMULATION_H_
