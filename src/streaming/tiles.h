#ifndef DVMS_STREAMING_TILES_H_
#define DVMS_STREAMING_TILES_H_

#include <string>
#include <vector>

#include "query/ivm.h"
#include "streaming/wavelet.h"

namespace dvms {

/// A data tile: one precomputed slice of the datacube (the offline
/// structures of §3.3 / [8, 33]), progressively encoded so any prefix
/// renders an approximation.
struct DataTile {
  std::string id;
  std::vector<double> payload;
};

/// Builds one tile per distinct value of `filter_dim`: the tile's payload
/// is the dense vector of `group_dim` sums restricted to that filter value
/// — exactly what the corresponding chart facet renders when the user
/// hovers that widget. Group slots follow the sorted group domain, so all
/// tiles of a store are positionally comparable.
Result<std::vector<DataTile>> MakeTilesFromCube(const CrossfilterCube& cube,
                                                const std::string& group_dim,
                                                const std::string& filter_dim);

/// Encodes a tile progressively (convenience wrapper).
ProgressiveEncoding EncodeTile(const DataTile& tile);

}  // namespace dvms

#endif  // DVMS_STREAMING_TILES_H_
