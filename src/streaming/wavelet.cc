#include "streaming/wavelet.h"

#include <cmath>

namespace dvms {

namespace {

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

constexpr double kSqrt2 = 1.4142135623730951;

}  // namespace

std::vector<double> HaarForward(std::vector<double> data) {
  size_t n = NextPow2(data.size() == 0 ? 1 : data.size());
  data.resize(n, 0.0);
  // Standard lifting: repeatedly average/difference the low band.
  std::vector<double> scratch(n);
  size_t len = n;
  while (len > 1) {
    size_t half = len / 2;
    for (size_t i = 0; i < half; ++i) {
      scratch[i] = (data[2 * i] + data[2 * i + 1]) / kSqrt2;
      scratch[half + i] = (data[2 * i] - data[2 * i + 1]) / kSqrt2;
    }
    for (size_t i = 0; i < len; ++i) data[i] = scratch[i];
    len = half;
  }
  // data is already in coarse-to-fine layout: [average, d1, d2 d3, ...].
  return data;
}

std::vector<double> HaarInverse(std::vector<double> coeffs) {
  size_t n = NextPow2(coeffs.size() == 0 ? 1 : coeffs.size());
  coeffs.resize(n, 0.0);
  std::vector<double> scratch(n);
  size_t len = 2;
  while (len <= n) {
    size_t half = len / 2;
    for (size_t i = 0; i < half; ++i) {
      scratch[2 * i] = (coeffs[i] + coeffs[half + i]) / kSqrt2;
      scratch[2 * i + 1] = (coeffs[i] - coeffs[half + i]) / kSqrt2;
    }
    for (size_t i = 0; i < len; ++i) coeffs[i] = scratch[i];
    len *= 2;
  }
  return coeffs;
}

ProgressiveEncoding::ProgressiveEncoding(const std::vector<double>& data)
    : original_size_(data.size()), original_(data) {
  coeffs_ = HaarForward(data);
}

std::vector<double> ProgressiveEncoding::DecodePrefix(size_t k) const {
  std::vector<double> prefix(coeffs_.size(), 0.0);
  for (size_t i = 0; i < k && i < coeffs_.size(); ++i) prefix[i] = coeffs_[i];
  std::vector<double> decoded = HaarInverse(std::move(prefix));
  decoded.resize(original_size_);
  return decoded;
}

double ProgressiveEncoding::PrefixQuality(size_t k) const {
  double norm = 0;
  for (double v : original_) norm += v * v;
  if (norm == 0) return 1.0;
  std::vector<double> decoded = DecodePrefix(k);
  double err = 0;
  for (size_t i = 0; i < original_.size(); ++i) {
    double d = decoded[i] - original_[i];
    err += d * d;
  }
  double q = 1.0 - std::sqrt(err / norm);
  return q < 0 ? 0 : (q > 1 ? 1 : q);
}

std::vector<double> ProgressiveEncoding::UtilityCurve() const {
  // Computed incrementally: the residual energy after k coefficients is
  // ||data||^2 - sum of the first k squared coefficients (orthonormality),
  // up to the padding truncation, so quality is monotone in k.
  std::vector<double> curve(coeffs_.size() + 1);
  double norm = 0;
  for (double v : original_) norm += v * v;
  if (norm == 0) {
    for (double& v : curve) v = 1.0;
    return curve;
  }
  double captured = 0;
  curve[0] = 0.0;
  for (size_t k = 1; k <= coeffs_.size(); ++k) {
    captured += coeffs_[k - 1] * coeffs_[k - 1];
    double residual = norm - captured;
    if (residual < 0) residual = 0;
    double q = 1.0 - std::sqrt(residual / norm);
    curve[k] = q < 0 ? 0 : (q > 1 ? 1 : q);
  }
  curve[coeffs_.size()] = 1.0;
  return curve;
}

}  // namespace dvms
