#ifndef DVMS_STREAMING_INTENT_MODEL_H_
#define DVMS_STREAMING_INTENT_MODEL_H_

#include <string>
#include <vector>

namespace dvms {

/// A screen region the user can interact with (a widget or a chart facet).
struct WidgetRegion {
  std::string id;
  double x = 0, y = 0, width = 0, height = 0;

  double center_x() const { return x + width / 2; }
  double center_y() const { return y + height / 2; }
  bool Contains(double px, double py) const {
    return px >= x && px < x + width && py >= y && py < y + height;
  }
};

struct MouseSample {
  double t_ms = 0;
  double x = 0, y = 0;
};

/// The user intent model of §3.3: estimates P(a_i, t) — the probability
/// that the user will interact with widget i within time t — from the
/// constrained input modality (mouse kinematics). Constant-velocity
/// extrapolation of the recent samples plus heading/distance scoring; no
/// training data from the specific visualization is needed, matching the
/// paper's observation that simple models over mouse traces work well.
class IntentModel {
 public:
  explicit IntentModel(std::vector<WidgetRegion> widgets);

  /// Feeds the latest cursor sample (call in time order).
  void Observe(const MouseSample& sample);

  /// Drops kinematic state (e.g. after a click).
  void Reset();

  /// P(widget i within `horizon_ms`), in widget order; sums to 1.
  std::vector<double> PredictWithin(double horizon_ms) const;

  /// Index of the most likely widget within the horizon.
  size_t Top1(double horizon_ms) const;

  const std::vector<WidgetRegion>& widgets() const { return widgets_; }

 private:
  std::vector<WidgetRegion> widgets_;
  std::vector<MouseSample> recent_;  // bounded window
};

}  // namespace dvms

#endif  // DVMS_STREAMING_INTENT_MODEL_H_
