#ifndef DVMS_STREAMING_WAVELET_H_
#define DVMS_STREAMING_WAVELET_H_

#include <cstddef>
#include <vector>

namespace dvms {

/// 1-D Haar wavelet transform (orthonormal). Input is zero-padded to the
/// next power of two. Coefficients are returned coarse-to-fine: overall
/// average first, then detail coefficients by level.
std::vector<double> HaarForward(std::vector<double> data);

/// Inverse of HaarForward (returns the padded length).
std::vector<double> HaarInverse(std::vector<double> coeffs);

/// A progressively decodable encoding of a data vector — the paper's
/// wavelet-compressed data tile (§3.3): the client can render a usable
/// approximation from any prefix of the coefficient stream.
class ProgressiveEncoding {
 public:
  explicit ProgressiveEncoding(const std::vector<double>& data);

  size_t original_size() const { return original_size_; }
  size_t num_coefficients() const { return coeffs_.size(); }

  /// Total encoded size (8 bytes per coefficient).
  size_t total_bytes() const { return coeffs_.size() * sizeof(double); }

  /// Reconstructs using only the first `k` coefficients (rest zero),
  /// truncated back to the original length.
  std::vector<double> DecodePrefix(size_t k) const;

  /// Relative L2 reconstruction quality of the k-coefficient prefix in
  /// [0, 1]: 1 - ||decode(k) - data|| / ||data||. Non-decreasing in k and
  /// exactly 1 at k = num_coefficients(). For all-zero data, 1 everywhere.
  double PrefixQuality(size_t k) const;

  /// The full quality curve: utility[k] = PrefixQuality(k) for k = 0..n.
  /// This is the concave utility the partial-execution scheduler consumes.
  std::vector<double> UtilityCurve() const;

 private:
  size_t original_size_;
  std::vector<double> coeffs_;
  std::vector<double> original_;
};

}  // namespace dvms

#endif  // DVMS_STREAMING_WAVELET_H_
