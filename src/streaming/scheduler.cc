#include "streaming/scheduler.h"

#include <chrono>
#include <queue>
#include <set>

#include "common/fault.h"
#include "governor/governor.h"
#include "obs/trace.h"

namespace dvms {

void StreamScheduler::AddTile(StreamTile tile) {
  for (Entry& entry : entries_) {
    if (entry.tile.id == tile.id) {
      entry.tile = std::move(tile);
      return;
    }
  }
  Entry entry;
  entry.tile = std::move(tile);
  entry.probability = 1.0 / static_cast<double>(entries_.size() + 1);
  entries_.push_back(std::move(entry));
}

void StreamScheduler::SetProbabilities(
    const std::map<std::string, double>& probabilities) {
  for (Entry& entry : entries_) {
    auto it = probabilities.find(entry.tile.id);
    if (it != probabilities.end()) entry.probability = it->second;
  }
}

int64_t StreamScheduler::Now() const {
  if (clock_) return clock_();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TickReport StreamScheduler::TickDetailed() {
  // Greedy marginal-gain allocation: a max-heap of (expected gain of the
  // next coefficient, entry index), guarded by the deadline watchdog.
  obs::Span span("stream.tick");
  const int64_t obs_start = obs::Enabled() ? obs::NowMicros() : 0;
  TickReport report;
  ++stats_.ticks;
  const int64_t start = Now();
  // Simulated backoff time charged by retries; counted against the budget
  // so retry storms run the watchdog down instead of sleeping.
  int64_t penalty_us = 0;
  auto elapsed = [&]() { return (Now() - start) + penalty_us; };

  auto gain = [this](size_t idx) {
    const Entry& e = entries_[idx];
    const StreamTile& t = e.tile;
    if (t.complete()) return -1.0;
    return e.probability * (t.utility[t.sent_coeffs + 1] - t.utility[t.sent_coeffs]);
  };
  std::priority_queue<std::pair<double, size_t>> heap;
  for (size_t i = 0; i < entries_.size(); ++i) {
    double g = gain(i);
    if (g >= 0) heap.push({g, i});
  }
  // Tiles that hit exhausted retries are parked for the rest of the tick:
  // the client keeps rendering their resident coarse prefix.
  std::set<size_t> parked;
  size_t budget = coeffs_per_tick_;
  while (budget > 0 && !heap.empty()) {
    // Both deadlines end the tick the same way: the scheduler's own
    // watchdog and the per-request governor deadline degrade to the
    // resident coarse prefix rather than stalling (the governor abort
    // itself surfaces at the enclosing entry point's next checkpoint).
    if (elapsed() >= policy_.budget_us || !governor::CheckPoint().ok()) {
      report.deadline_missed = true;
      ++stats_.deadline_misses;
      break;
    }
    auto [g, idx] = heap.top();
    heap.pop();
    // Lazy re-evaluation: the stored gain may be stale.
    double fresh = gain(idx);
    if (fresh < 0) continue;
    if (fresh < g - 1e-12 && !heap.empty() && heap.top().first > fresh) {
      heap.push({fresh, idx});
      continue;
    }
    // Transient send fault: bounded retry with (simulated) backoff. The
    // coefficient is only counted as sent after a clean attempt.
    size_t attempts = 0;
    bool sent_ok = true;
    while (fault::ShouldInject(FaultSite::kStreamTick)) {
      ++report.faults;
      ++stats_.faults_injected;
      if (attempts >= policy_.max_retries ||
          elapsed() >= policy_.budget_us) {
        sent_ok = false;
        break;
      }
      ++attempts;
      ++report.retries;
      ++stats_.retries;
      penalty_us += policy_.retry_backoff_us;
    }
    if (!sent_ok) {
      // Exhausted retries (or the watchdog fired mid-retry): park the tile
      // for this tick; it reschedules next tick.
      parked.insert(idx);
      continue;
    }
    entries_[idx].tile.sent_coeffs += 1;
    ++total_sent_;
    --budget;
    ++report.sent[entries_[idx].tile.id];
    double next = gain(idx);
    if (next >= 0) heap.push({next, idx});
  }
  // Every incomplete tile that received nothing this tick is being served
  // from its resident coarse prefix — record the degradation.
  for (size_t i = 0; i < entries_.size(); ++i) {
    const StreamTile& t = entries_[i].tile;
    if (t.complete()) continue;
    if (report.sent.count(t.id) > 0) continue;
    if (!report.deadline_missed && parked.count(i) == 0) continue;
    report.degraded.push_back(t.id);
    ++stats_.degraded_serves;
  }
  // Every TickReport field also feeds the metrics relations, so deadline
  // misses and coarse-prefix serves stay queryable even through code
  // paths that only look at `sent`.
  if (obs::Enabled()) {
    size_t coeffs = 0;
    for (const auto& [id, n] : report.sent) coeffs += n;
    obs::Count("stream.ticks");
    obs::Count("stream.sent_coeffs", coeffs);
    if (report.deadline_missed) obs::Count("stream.deadline_misses");
    if (!report.degraded.empty()) {
      obs::Count("stream.degraded", report.degraded.size());
    }
    if (report.faults > 0) obs::Count("stream.faults", report.faults);
    if (report.retries > 0) obs::Count("stream.retries", report.retries);
    obs::Observe("stream.tick_us",
                 static_cast<double>(obs::NowMicros() - obs_start));
  }
  return report;
}

Result<const StreamTile*> StreamScheduler::GetTile(
    const std::string& id) const {
  for (const Entry& entry : entries_) {
    if (entry.tile.id == id) return &entry.tile;
  }
  return Status::NotFound("no tile named '" + id + "'");
}

double StreamScheduler::ExpectedUtility() const {
  double u = 0;
  for (const Entry& entry : entries_) {
    u += entry.probability * entry.tile.current_utility();
  }
  return u;
}

StreamScheduler::DurableState StreamScheduler::SaveDurableState() const {
  DurableState state;
  state.coeffs_per_tick = coeffs_per_tick_;
  state.policy = policy_;
  state.tiles.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    state.tiles.push_back(DurableState::TileEntry{entry.tile,
                                                  entry.probability});
  }
  state.total_sent = total_sent_;
  state.stats = stats_;
  return state;
}

void StreamScheduler::RestoreDurableState(DurableState state) {
  coeffs_per_tick_ = state.coeffs_per_tick;
  policy_ = state.policy;
  entries_.clear();
  entries_.reserve(state.tiles.size());
  for (DurableState::TileEntry& t : state.tiles) {
    entries_.push_back(Entry{std::move(t.tile), t.probability});
  }
  total_sent_ = state.total_sent;
  stats_ = state.stats;
}

}  // namespace dvms
