#include "streaming/scheduler.h"

#include <queue>

namespace dvms {

void StreamScheduler::AddTile(StreamTile tile) {
  for (Entry& entry : entries_) {
    if (entry.tile.id == tile.id) {
      entry.tile = std::move(tile);
      return;
    }
  }
  Entry entry;
  entry.tile = std::move(tile);
  entry.probability = 1.0 / static_cast<double>(entries_.size() + 1);
  entries_.push_back(std::move(entry));
}

void StreamScheduler::SetProbabilities(
    const std::map<std::string, double>& probabilities) {
  for (Entry& entry : entries_) {
    auto it = probabilities.find(entry.tile.id);
    if (it != probabilities.end()) entry.probability = it->second;
  }
}

std::map<std::string, size_t> StreamScheduler::Tick() {
  // Greedy marginal-gain allocation: a max-heap of (expected gain of the
  // next coefficient, entry index).
  std::map<std::string, size_t> sent;
  auto gain = [this](size_t idx) {
    const Entry& e = entries_[idx];
    const StreamTile& t = e.tile;
    if (t.complete()) return -1.0;
    return e.probability * (t.utility[t.sent_coeffs + 1] - t.utility[t.sent_coeffs]);
  };
  std::priority_queue<std::pair<double, size_t>> heap;
  for (size_t i = 0; i < entries_.size(); ++i) {
    double g = gain(i);
    if (g >= 0) heap.push({g, i});
  }
  size_t budget = coeffs_per_tick_;
  while (budget > 0 && !heap.empty()) {
    auto [g, idx] = heap.top();
    heap.pop();
    // Lazy re-evaluation: the stored gain may be stale.
    double fresh = gain(idx);
    if (fresh < 0) continue;
    if (fresh < g - 1e-12 && !heap.empty() && heap.top().first > fresh) {
      heap.push({fresh, idx});
      continue;
    }
    entries_[idx].tile.sent_coeffs += 1;
    ++total_sent_;
    --budget;
    ++sent[entries_[idx].tile.id];
    double next = gain(idx);
    if (next >= 0) heap.push({next, idx});
  }
  return sent;
}

Result<const StreamTile*> StreamScheduler::GetTile(
    const std::string& id) const {
  for (const Entry& entry : entries_) {
    if (entry.tile.id == id) return &entry.tile;
  }
  return Status::NotFound("no tile named '" + id + "'");
}

double StreamScheduler::ExpectedUtility() const {
  double u = 0;
  for (const Entry& entry : entries_) {
    u += entry.probability * entry.tile.current_utility();
  }
  return u;
}

}  // namespace dvms
