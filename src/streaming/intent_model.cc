#include "streaming/intent_model.h"

#include <algorithm>
#include <cmath>

namespace dvms {

namespace {

constexpr size_t kWindow = 6;  // recent samples used for kinematics

}  // namespace

IntentModel::IntentModel(std::vector<WidgetRegion> widgets)
    : widgets_(std::move(widgets)) {}

void IntentModel::Observe(const MouseSample& sample) {
  recent_.push_back(sample);
  if (recent_.size() > kWindow) recent_.erase(recent_.begin());
}

void IntentModel::Reset() { recent_.clear(); }

std::vector<double> IntentModel::PredictWithin(double horizon_ms) const {
  std::vector<double> scores(widgets_.size(), 1.0);  // uniform prior
  if (!recent_.empty()) {
    const MouseSample& last = recent_.back();
    // Velocity from the window endpoints.
    double vx = 0, vy = 0;
    if (recent_.size() >= 2) {
      const MouseSample& first = recent_.front();
      double dt = last.t_ms - first.t_ms;
      if (dt > 1e-6) {
        vx = (last.x - first.x) / dt;
        vy = (last.y - first.y) / dt;
      }
    }
    // Pointing gestures decelerate toward the target (minimum-jerk), so a
    // constant-velocity extrapolation overshoots; damp it.
    constexpr double kDeceleration = 0.75;
    double px = last.x + kDeceleration * vx * horizon_ms;
    double py = last.y + kDeceleration * vy * horizon_ms;
    double speed = std::sqrt(vx * vx + vy * vy);

    for (size_t i = 0; i < widgets_.size(); ++i) {
      const WidgetRegion& w = widgets_[i];
      // Distance of the extrapolated point from the widget, normalized by
      // widget size so big targets are easier (Fitts-like).
      double dx = std::max({w.x - px, 0.0, px - (w.x + w.width)});
      double dy = std::max({w.y - py, 0.0, py - (w.y + w.height)});
      double dist = std::sqrt(dx * dx + dy * dy);
      double sigma = 0.6 * std::max(w.width, w.height) + 8.0;
      double score = std::exp(-0.5 * (dist / sigma) * (dist / sigma));

      // Heading agreement: moving toward the widget raises the score.
      if (speed > 0.02) {
        double tx = w.center_x() - last.x;
        double ty = w.center_y() - last.y;
        double tn = std::sqrt(tx * tx + ty * ty);
        if (tn > 1e-6) {
          double cosine = (vx * tx + vy * ty) / (speed * tn);
          score *= 0.5 * (1.0 + cosine);  // [0, 1]
        }
      }
      scores[i] = score + 1e-9;
    }
  }
  double total = 0;
  for (double s : scores) total += s;
  for (double& s : scores) s /= total;
  return scores;
}

size_t IntentModel::Top1(double horizon_ms) const {
  std::vector<double> p = PredictWithin(horizon_ms);
  size_t best = 0;
  for (size_t i = 1; i < p.size(); ++i) {
    if (p[i] > p[best]) best = i;
  }
  return best;
}

}  // namespace dvms
