#include "streaming/simulation.h"

#include <cmath>
#include <map>

#include "streaming/wavelet.h"

namespace dvms {

namespace {

/// Synthesizes a smooth, wavelet-compressible tile payload (an aggregate
/// vector, e.g. one chart's bar heights at fine granularity).
std::vector<double> MakeTilePayload(size_t n, Rng* rng) {
  std::vector<double> payload(n);
  double phase = rng->Uniform(0, 2 * M_PI);
  double freq = rng->Uniform(1.0, 4.0);
  double trend = rng->Uniform(-0.5, 0.5);
  double level = rng->Uniform(10.0, 100.0);
  for (size_t i = 0; i < n; ++i) {
    double x = static_cast<double>(i) / static_cast<double>(n);
    payload[i] = level * (1.0 + 0.4 * std::sin(2 * M_PI * freq * x + phase) +
                          trend * x) +
                 rng->Normal(0, 0.8);
  }
  return payload;
}

/// First prefix length reaching the usable-quality threshold.
size_t UsablePrefix(const std::vector<double>& utility, double threshold) {
  for (size_t k = 0; k < utility.size(); ++k) {
    if (utility[k] >= threshold) return k;
  }
  return utility.empty() ? 0 : utility.size() - 1;
}

}  // namespace

StreamingSimResult SimulateStreaming(const StreamingSimConfig& config) {
  Rng rng(config.seed);
  StreamingSimResult result;

  std::vector<WidgetRegion> widgets =
      MakeWidgetGrid(config.grid_cols, config.grid_rows, 20, 20, 140, 100, 16);
  const size_t num_widgets = widgets.size();

  // Per-widget tiles with their utility curves.
  std::vector<std::vector<double>> utilities(num_widgets);
  for (size_t i = 0; i < num_widgets; ++i) {
    ProgressiveEncoding enc(MakeTilePayload(config.tile_values, &rng));
    utilities[i] = enc.UtilityCurve();
  }
  const size_t full_coeffs = utilities[0].size() - 1;
  const double rr_latency =
      config.rtt_ms +
      static_cast<double>(full_coeffs) / config.bandwidth_coeffs_per_ms;

  MouseTraceConfig trace_config;
  double cursor_x = 10, cursor_y = 10;
  const size_t coeffs_per_tick = static_cast<size_t>(
      config.bandwidth_coeffs_per_ms * config.tick_ms + 0.5);

  for (size_t it = 0; it < config.num_interactions; ++it) {
    size_t target = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(num_widgets) - 1));
    MouseTrace trace = GenerateMouseTrace(widgets, target, cursor_x, cursor_y,
                                          trace_config, &rng);

    // Fresh scheduler per interaction: each interaction invalidates the
    // previous tiles (the selection changed), the hardest case for
    // speculation.
    StreamScheduler scheduler(coeffs_per_tick);
    for (size_t i = 0; i < num_widgets; ++i) {
      StreamTile tile;
      tile.id = widgets[i].id;
      tile.utility = utilities[i];
      scheduler.AddTile(std::move(tile));
    }
    IntentModel model(widgets);

    InteractionMeasurement m;
    m.request_response_ms = rr_latency;

    // Replay the gesture; every tick the client ships the intent estimate
    // and the server streams one bandwidth quantum.
    double next_tick = config.tick_ms;
    size_t prediction_sample = 0;
    bool predicted_checked = false;
    for (size_t s = 0; s < trace.samples.size(); ++s) {
      const MouseSample& sample = trace.samples[s];
      model.Observe(sample);
      // Evaluate the 200 ms-ahead prediction at click - horizon.
      if (!predicted_checked &&
          sample.t_ms >= trace.click_t_ms - config.predict_horizon_ms) {
        prediction_sample = model.Top1(config.predict_horizon_ms);
        m.predicted_correctly = prediction_sample == target;
        predicted_checked = true;
      }
      while (sample.t_ms >= next_tick) {
        std::vector<double> p = model.PredictWithin(config.predict_horizon_ms);
        std::map<std::string, double> probs;
        for (size_t i = 0; i < num_widgets; ++i) probs[widgets[i].id] = p[i];
        scheduler.SetProbabilities(probs);
        (void)scheduler.TickDetailed();
        next_tick += config.tick_ms;
      }
    }
    if (!predicted_checked && !trace.samples.empty()) {
      prediction_sample = model.Top1(config.predict_horizon_ms);
      m.predicted_correctly = prediction_sample == target;
    }

    // Click: how good is the prefetched prefix, and how long until usable?
    const StreamTile* tile = scheduler.GetTile(widgets[target].id).value();
    m.quality_at_click = tile->current_utility();
    size_t usable = UsablePrefix(utilities[target], config.usable_quality);
    if (tile->sent_coeffs >= usable) {
      m.speculative_ms = 0.0;  // render immediately from the local prefix
    } else {
      // Fetch the remaining prefix with the stream now dedicated to it.
      m.speculative_ms =
          config.rtt_ms + static_cast<double>(usable - tile->sent_coeffs) /
                              config.bandwidth_coeffs_per_ms;
    }
    result.interactions.push_back(m);

    const MouseSample& end = trace.samples.back();
    cursor_x = end.x;
    cursor_y = end.y;
  }

  // Aggregates.
  double sum_rr = 0, sum_spec = 0, sum_quality = 0;
  size_t rr_fast = 0, spec_fast = 0, correct = 0;
  for (const InteractionMeasurement& m : result.interactions) {
    sum_rr += m.request_response_ms;
    sum_spec += m.speculative_ms;
    sum_quality += m.quality_at_click;
    if (m.request_response_ms < 100.0) ++rr_fast;
    if (m.speculative_ms < 100.0) ++spec_fast;
    if (m.predicted_correctly) ++correct;
  }
  double n = static_cast<double>(result.interactions.size());
  result.mean_request_response_ms = sum_rr / n;
  result.mean_speculative_ms = sum_spec / n;
  result.frac_rr_under_100ms = static_cast<double>(rr_fast) / n;
  result.frac_speculative_under_100ms = static_cast<double>(spec_fast) / n;
  result.mean_quality_at_click = sum_quality / n;
  result.top1_accuracy = static_cast<double>(correct) / n;
  return result;
}

}  // namespace dvms
