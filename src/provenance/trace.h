#ifndef DVMS_PROVENANCE_TRACE_H_
#define DVMS_PROVENANCE_TRACE_H_

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "parser/ast.h"
#include "query/maintenance.h"

namespace dvms {

/// Executes DeVIL's BACKWARD TRACE / FORWARD TRACE statements (§3.1) by
/// composing row-level lineage through the view dataflow.
///
/// Two strategies, matching the paper's discussion of materialization cost
/// vs. query cost:
///  * kEager — reuse the operator-result trees the ViewMaintainer captured
///    during normal view maintenance (requires capture_lineage).
///  * kLazy  — re-execute view plans with lineage capture only when a trace
///    is evaluated; nothing is stored between traces.
class TraceEngine {
 public:
  enum class Mode { kEager, kLazy };

  TraceEngine(Catalog* catalog, const UdfRegistry* udfs,
              ViewMaintainer* maintainer)
      : catalog_(catalog), udfs_(udfs), maintainer_(maintainer) {}

  /// Evaluates a BACKWARD TRACE: joins the FROM relations under WHERE, then
  /// traces every joined row back to the TO relation. Returns the subset of
  /// the TO relation's rows (its full schema) that contributed.
  Result<Table> Backward(const TraceStmt& stmt, Mode mode);

  /// Evaluates a FORWARD TRACE: the FROM clause (single relation plus
  /// optional WHERE) selects source rows; returns the subset of the TO
  /// view's rows that depend on any source row.
  Result<Table> Forward(const TraceStmt& stmt, Mode mode);

  /// Low-level primitive: maps rows of `view` to contributing rows of
  /// `target` (a base relation or any relation reachable through views).
  Result<std::set<RowId>> TraceViewRows(const std::string& view,
                                        const VersionRef& version,
                                        const std::set<RowId>& rows,
                                        const std::string& target, Mode mode);

  /// Bulk form: the contributing `target` rows for every output row of
  /// `view`, computed in one pass over the lineage tree.
  Result<std::vector<std::set<RowId>>> TraceViewAllRows(
      const std::string& view, const VersionRef& version,
      const std::string& target, Mode mode);

 private:
  /// Per-root-output-row sets of contributing `target` rows, walking the
  /// operator tree and recursing through scanned views.
  Result<std::vector<std::set<RowId>>> ComputeLeafSets(const NodeResult& root,
                                                       const std::string& target,
                                                       Mode mode, int depth);

  /// The lineage tree for a view: stored (eager) or recomputed (lazy).
  /// The returned pointer is owned by `owner` in lazy mode.
  Result<const NodeResult*> ViewTree(const std::string& view,
                                     const VersionRef& version, Mode mode,
                                     std::unique_ptr<NodeResult>* owner);

  Catalog* catalog_;
  const UdfRegistry* udfs_;
  ViewMaintainer* maintainer_;
};

/// A materialized backward index from one view's output rows to one base
/// relation's rows — the paper's "materialize and index the lineage"
/// strategy, whose cost bench_sec31_provenance measures against lazy traces.
class BackwardLineageIndex {
 public:
  /// Builds the index for every output row of `view`.
  static Result<BackwardLineageIndex> Build(TraceEngine* engine,
                                            const std::string& view,
                                            size_t view_rows,
                                            const std::string& target,
                                            TraceEngine::Mode mode);

  /// Base-relation rows contributing to view output row `row`.
  const std::set<RowId>& Lookup(RowId row) const;

  /// Total number of (view row, base row) index entries.
  size_t SizeEntries() const;

 private:
  std::vector<std::set<RowId>> entries_;
  std::set<RowId> empty_;
};

}  // namespace dvms

#endif  // DVMS_PROVENANCE_TRACE_H_
