#include "provenance/trace.h"

#include "parser/planner.h"
#include "query/binder.h"
#include "query/executor.h"

namespace dvms {

namespace {

constexpr int kMaxViewDepth = 16;

/// Builds the join-under-predicate plan for a trace's FROM/WHERE clause as
/// a SELECT * over the refs.
Result<PlanPtr> BuildFromPlan(const std::vector<TableRef>& from,
                              const ExprPtr& where,
                              const SchemaResolver& resolver) {
  SelectCore core;
  SelectItem star;
  star.star = true;
  core.items.push_back(star);
  core.from = from;
  core.where = where == nullptr ? nullptr : CloneExpr(where);
  Planner planner(&resolver);
  SelectStmt stmt;
  stmt.cores.push_back(std::move(core));
  return planner.PlanSelect(stmt);
}

}  // namespace

Result<const NodeResult*> TraceEngine::ViewTree(
    const std::string& view, const VersionRef& version, Mode mode,
    std::unique_ptr<NodeResult>* owner) {
  if (mode == Mode::kEager) {
    // A versioned reference (@vnow-k, k >= 1) reads the committed snapshot
    // taken at the last interaction boundary; the current reference reads
    // the latest maintenance result.
    if (!version.is_current() && version.offset >= 1) {
      auto committed = maintainer_->CommittedResult(view);
      if (committed.ok()) return committed.value();
    }
    return maintainer_->LastResult(view);
  }
  // Lazy: re-execute the view's plan with lineage capture. Scans inside the
  // plan already address the versions the view definition names.
  DVMS_ASSIGN_OR_RETURN(const ViewDef* def,
                        maintainer_->registry().Get(view));
  Executor exec(catalog_, udfs_);
  ExecOptions opts;
  opts.capture_lineage = true;
  DVMS_ASSIGN_OR_RETURN(*owner, exec.Execute(*def->plan, opts));
  return owner->get();
}

Result<std::vector<std::set<RowId>>> TraceEngine::ComputeLeafSets(
    const NodeResult& root, const std::string& target, Mode mode, int depth) {
  if (depth > kMaxViewDepth) {
    return Status::ExecutionError("view nesting too deep during trace");
  }
  if (!root.has_lineage) {
    return Status::ExecutionError(
        "lineage was not captured for an operator during trace");
  }
  const size_t n = root.table.num_rows();
  std::vector<std::set<RowId>> out(n);

  if (root.node->kind == PlanKind::kScan) {
    const std::string& rel = root.node->relation;
    if (IdentEquals(rel, target)) {
      for (size_t i = 0; i < n; ++i) out[i].insert(i);
      return out;
    }
    // Recurse through views; base/event relations other than the target
    // contribute nothing.
    if (maintainer_->registry().Has(rel)) {
      std::unique_ptr<NodeResult> owned;
      DVMS_ASSIGN_OR_RETURN(const NodeResult* tree,
                            ViewTree(rel, root.node->version, mode, &owned));
      DVMS_ASSIGN_OR_RETURN(std::vector<std::set<RowId>> inner,
                            ComputeLeafSets(*tree, target, mode, depth + 1));
      for (size_t i = 0; i < n; ++i) {
        // Scan row i corresponds to view output row i; guard against the
        // scanned version differing in cardinality from the lineage tree.
        if (i < inner.size()) out[i] = inner[i];
      }
    }
    return out;
  }

  // Interior operator: union child contributions per output row.
  std::vector<std::vector<std::set<RowId>>> child_sets;
  child_sets.reserve(root.children.size());
  for (const auto& child : root.children) {
    DVMS_ASSIGN_OR_RETURN(std::vector<std::set<RowId>> sets,
                          ComputeLeafSets(*child, target, mode, depth));
    child_sets.push_back(std::move(sets));
  }
  for (size_t i = 0; i < n; ++i) {
    for (const LineageEntry& entry : root.lineage[i]) {
      if (entry.child >= child_sets.size()) continue;
      const auto& sets = child_sets[entry.child];
      if (entry.row >= sets.size()) continue;
      out[i].insert(sets[entry.row].begin(), sets[entry.row].end());
    }
  }
  return out;
}

Result<std::set<RowId>> TraceEngine::TraceViewRows(const std::string& view,
                                                   const VersionRef& version,
                                                   const std::set<RowId>& rows,
                                                   const std::string& target,
                                                   Mode mode) {
  std::unique_ptr<NodeResult> owned;
  DVMS_ASSIGN_OR_RETURN(const NodeResult* tree,
                        ViewTree(view, version, mode, &owned));
  DVMS_ASSIGN_OR_RETURN(std::vector<std::set<RowId>> sets,
                        ComputeLeafSets(*tree, target, mode, 0));
  std::set<RowId> out;
  for (RowId row : rows) {
    if (row < sets.size()) out.insert(sets[row].begin(), sets[row].end());
  }
  return out;
}

Result<std::vector<std::set<RowId>>> TraceEngine::TraceViewAllRows(
    const std::string& view, const VersionRef& version,
    const std::string& target, Mode mode) {
  std::unique_ptr<NodeResult> owned;
  DVMS_ASSIGN_OR_RETURN(const NodeResult* tree,
                        ViewTree(view, version, mode, &owned));
  return ComputeLeafSets(*tree, target, mode, 0);
}

Result<Table> TraceEngine::Backward(const TraceStmt& stmt, Mode mode) {
  if (!stmt.backward) {
    return Status::InvalidArgument("Backward() requires a BACKWARD TRACE");
  }
  CatalogSchemaResolver resolver(catalog_);
  DVMS_ASSIGN_OR_RETURN(PlanPtr plan,
                        BuildFromPlan(stmt.from, stmt.where, resolver));
  Binder binder(&resolver, udfs_);
  DVMS_RETURN_IF_ERROR(binder.Bind(plan.get()));
  Executor exec(catalog_, udfs_);
  ExecOptions opts;
  opts.capture_lineage = true;
  DVMS_ASSIGN_OR_RETURN(std::unique_ptr<NodeResult> joined,
                        exec.Execute(*plan, opts));

  DVMS_ASSIGN_OR_RETURN(std::vector<std::set<RowId>> sets,
                        ComputeLeafSets(*joined, stmt.target_relation, mode, 0));
  std::set<RowId> target_rows;
  for (const std::set<RowId>& s : sets) target_rows.insert(s.begin(), s.end());

  DVMS_ASSIGN_OR_RETURN(VersionedTable * target,
                        catalog_->Get(stmt.target_relation));
  const Table& src = target->current();
  Table out(src.schema());
  for (RowId row : target_rows) {
    if (row < src.num_rows()) out.AppendUnchecked(src.row(row));
  }
  return out;
}

Result<Table> TraceEngine::Forward(const TraceStmt& stmt, Mode mode) {
  if (stmt.backward) {
    return Status::InvalidArgument("Forward() requires a FORWARD TRACE");
  }
  if (stmt.from.size() != 1) {
    return Status::Unsupported(
        "FORWARD TRACE currently supports a single FROM relation");
  }
  const TableRef& source_ref = stmt.from[0];

  // Select source rows of the FROM relation under WHERE.
  CatalogSchemaResolver resolver(catalog_);
  DVMS_ASSIGN_OR_RETURN(PlanPtr plan,
                        BuildFromPlan(stmt.from, stmt.where, resolver));
  Binder binder(&resolver, udfs_);
  DVMS_RETURN_IF_ERROR(binder.Bind(plan.get()));
  Executor exec(catalog_, udfs_);
  ExecOptions opts;
  opts.capture_lineage = true;
  DVMS_ASSIGN_OR_RETURN(std::unique_ptr<NodeResult> selected,
                        exec.Execute(*plan, opts));
  DVMS_ASSIGN_OR_RETURN(
      std::vector<std::set<RowId>> src_sets,
      ComputeLeafSets(*selected, source_ref.name, mode, 0));
  std::set<RowId> source_rows;
  for (const auto& s : src_sets) source_rows.insert(s.begin(), s.end());

  // The TO relation must be a view; keep its rows whose backward closure to
  // the FROM relation intersects the source set.
  if (!maintainer_->registry().Has(stmt.target_relation)) {
    return Status::InvalidArgument("FORWARD TRACE target '" +
                                   stmt.target_relation +
                                   "' is not a view");
  }
  std::unique_ptr<NodeResult> owned;
  DVMS_ASSIGN_OR_RETURN(
      const NodeResult* tree,
      ViewTree(stmt.target_relation, VersionRef::Current(), mode, &owned));
  DVMS_ASSIGN_OR_RETURN(std::vector<std::set<RowId>> closures,
                        ComputeLeafSets(*tree, source_ref.name, mode, 0));

  DVMS_ASSIGN_OR_RETURN(VersionedTable * target,
                        catalog_->Get(stmt.target_relation));
  const Table& view_table = target->current();
  Table out(view_table.schema());
  for (size_t i = 0; i < view_table.num_rows() && i < closures.size(); ++i) {
    bool hit = false;
    for (RowId r : closures[i]) {
      if (source_rows.count(r) > 0) {
        hit = true;
        break;
      }
    }
    if (hit) out.AppendUnchecked(view_table.row(i));
  }
  return out;
}

Result<BackwardLineageIndex> BackwardLineageIndex::Build(
    TraceEngine* engine, const std::string& view, size_t view_rows,
    const std::string& target, TraceEngine::Mode mode) {
  BackwardLineageIndex index;
  // One pass computes all closures; per-row results are then O(1) lookups.
  DVMS_ASSIGN_OR_RETURN(
      index.entries_,
      engine->TraceViewAllRows(view, VersionRef::Current(), target, mode));
  index.entries_.resize(view_rows);
  return index;
}

const std::set<RowId>& BackwardLineageIndex::Lookup(RowId row) const {
  if (row >= entries_.size()) return empty_;
  return entries_[row];
}

size_t BackwardLineageIndex::SizeEntries() const {
  size_t n = 0;
  for (const auto& s : entries_) n += s.size();
  return n;
}

}  // namespace dvms
