#ifndef DVMS_WORKLOAD_MOUSE_H_
#define DVMS_WORKLOAD_MOUSE_H_

#include <vector>

#include "common/rng.h"
#include "streaming/intent_model.h"

namespace dvms {

/// A synthetic pointing gesture toward one widget, standing in for the
/// human mouse traces §3.3's predictor is trained/evaluated on.
struct MouseTrace {
  std::vector<MouseSample> samples;  // 10 ms apart by default
  size_t target_widget = 0;
  double click_t_ms = 0;  // time of the click ending the gesture
};

struct MouseTraceConfig {
  double sample_interval_ms = 10.0;
  /// Positional jitter (motor noise), px.
  double noise_px = 3.0;
  /// Reaction-time floor and Fitts-law slope for movement duration.
  double base_duration_ms = 260.0;
  double fitts_slope_ms = 170.0;
};

/// A cols x rows grid of widgets (chart facets), the layout Figure 4's
/// faceted bar chart uses.
std::vector<WidgetRegion> MakeWidgetGrid(size_t cols, size_t rows, double x0,
                                         double y0, double cell_w,
                                         double cell_h, double gap);

/// Generates a minimum-jerk trajectory from `start` to the center of
/// `widgets[target]` with motor noise, sampled every sample_interval_ms.
/// Movement time follows Fitts' law in the distance/width ratio.
MouseTrace GenerateMouseTrace(const std::vector<WidgetRegion>& widgets,
                              size_t target, double start_x, double start_y,
                              const MouseTraceConfig& config, Rng* rng);

}  // namespace dvms

#endif  // DVMS_WORKLOAD_MOUSE_H_
