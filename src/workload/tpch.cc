#include "workload/tpch.h"

namespace dvms {

const std::vector<std::string>& TpchRegions() {
  static const std::vector<std::string>* kRegions = new std::vector<std::string>{
      "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};
  return *kRegions;
}

Schema TpchSalesSchema() {
  return Schema({{"orderkey", ValueType::kInt64},
                 {"region", ValueType::kString},
                 {"year", ValueType::kInt64},
                 {"month", ValueType::kInt64},
                 {"dow", ValueType::kInt64},
                 {"quantity", ValueType::kDouble},
                 {"revenue", ValueType::kDouble}});
}

Table GenerateTpchSales(const TpchConfig& config) {
  Rng rng(config.seed);
  Table table(TpchSalesSchema());
  const auto& regions = TpchRegions();
  // Region weights: mildly skewed, like order volume differences.
  const double weights[] = {0.15, 0.25, 0.25, 0.22, 0.13};
  for (size_t i = 0; i < config.num_rows; ++i) {
    double u = rng.NextDouble();
    size_t region = 0;
    double acc = 0;
    for (size_t r = 0; r < regions.size(); ++r) {
      acc += weights[r];
      if (u < acc) {
        region = r;
        break;
      }
    }
    int64_t year =
        config.first_year + rng.UniformInt(0, config.num_years - 1);
    int64_t month = rng.UniformInt(1, 12);
    int64_t dow = rng.UniformInt(0, 6);
    // TPC-H: quantity in [1, 50], price ~ quantity * part price, discount
    // up to 10%.
    double quantity = static_cast<double>(rng.UniformInt(1, 50));
    double unit_price = rng.Uniform(900.0, 105000.0 / 50.0);
    double discount = rng.Uniform(0.0, 0.10);
    double revenue = quantity * unit_price * (1.0 - discount);
    // Seasonal trend: slightly more revenue late in the year and in later
    // years, so the crossfilter bars have visible structure.
    revenue *= 1.0 + 0.02 * static_cast<double>(month) +
               0.05 * static_cast<double>(year - config.first_year);
    table.AppendUnchecked({Value::Int(static_cast<int64_t>(i) + 1),
                           Value::String(regions[region]), Value::Int(year),
                           Value::Int(month), Value::Int(dow),
                           Value::Double(quantity), Value::Double(revenue)});
  }
  return table;
}

}  // namespace dvms
