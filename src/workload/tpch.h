#ifndef DVMS_WORKLOAD_TPCH_H_
#define DVMS_WORKLOAD_TPCH_H_

#include <cstdint>

#include "common/rng.h"
#include "storage/table.h"

namespace dvms {

/// TPC-H-shaped synthetic fact data for the Figure 1 crossfilter example.
///
/// The paper runs the revenue-breakdown crossfilter over TPC-H. We
/// generate a denormalized lineitem-like `Sales` relation with the
/// dimensions Figure 1 groups by — region, year, month, day-of-week — plus
/// a revenue measure. Cardinalities and correlations mirror TPC-H shapes:
/// 5 regions, order dates spread over 1992-1998, revenue as
/// extendedprice * (1 - discount).
struct TpchConfig {
  size_t num_rows = 10000;
  uint64_t seed = 42;
  int first_year = 1992;
  int num_years = 7;  // 1992..1998 like TPC-H order dates
};

/// Schema: orderkey INT, region TEXT, year INT, month INT, dow INT,
/// quantity DOUBLE, revenue DOUBLE.
Schema TpchSalesSchema();

/// Generates the fact table deterministically from the config seed.
Table GenerateTpchSales(const TpchConfig& config);

/// Region dimension values used by the generator (R_NAME values of TPC-H).
const std::vector<std::string>& TpchRegions();

}  // namespace dvms

#endif  // DVMS_WORKLOAD_TPCH_H_
