#include "workload/sdss.h"

#include <cmath>

#include "common/string_util.h"

namespace dvms {

namespace {

/// The kinds of structured tweaks analysts apply between consecutive
/// queries. Weights are chosen per template so that, across the mixture,
/// numeric parameter changes dominate (~70%) followed by projection
/// changes (~12%) — the coverage statistics Figure 6 reports.
enum class Tweak {
  kNumeric,
  kProjectionAdd,
  kProjectionRemove,
  kCategorical,
  kLimit,
  kOrder,
  kGroup,
};

/// Mutable state of one templated query; Render() emits SQL in the DeVIL
/// dialect.
struct QueryState {
  std::vector<std::string> column_pool;
  std::vector<bool> selected;

  struct NumParam {
    std::string column;
    const char* op;
    double value;
    double step;
  };
  std::vector<NumParam> numeric_params;

  struct CatParam {
    std::string column;
    std::vector<std::string> domain;
    size_t index = 0;
  };
  std::vector<CatParam> cat_params;

  std::string table;
  std::string join_clause;  // raw SQL fragment after the table, or empty

  bool has_limit = false;
  size_t limit = 10;
  bool has_order = false;
  std::string order_column;
  bool order_desc = false;
  bool group_mode = false;  // SELECT <group_col>, COUNT(*) ... GROUP BY
  std::string group_column;
  std::vector<std::string> group_domain;

  std::string Render() const {
    std::string sql = "SELECT ";
    if (group_mode) {
      sql += group_column + ", COUNT(*) AS n";
    } else {
      std::vector<std::string> cols;
      for (size_t i = 0; i < column_pool.size(); ++i) {
        if (selected[i]) cols.push_back(column_pool[i]);
      }
      sql += Join(cols, ", ");
    }
    sql += " FROM " + table;
    if (!join_clause.empty()) sql += join_clause;
    std::vector<std::string> preds;
    for (const NumParam& p : numeric_params) {
      preds.push_back(p.column + " " + p.op + " " +
                      StrFormat("%.4f", p.value));
    }
    for (const CatParam& p : cat_params) {
      preds.push_back(p.column + " = '" + p.domain[p.index] + "'");
    }
    if (!preds.empty()) sql += " WHERE " + Join(preds, " AND ");
    if (group_mode) sql += " GROUP BY " + group_column;
    if (has_order) {
      sql += " ORDER BY " + order_column + (order_desc ? " DESC" : "");
    }
    if (has_limit) sql += " LIMIT " + std::to_string(limit);
    return sql;
  }

  void Apply(Tweak tweak, Rng* rng) {
    switch (tweak) {
      case Tweak::kNumeric: {
        if (numeric_params.empty()) return;
        NumParam& p = numeric_params[static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(numeric_params.size()) - 1))];
        double delta = p.step * rng->Uniform(0.2, 2.0) *
                       (rng->Bernoulli(0.5) ? 1.0 : -1.0);
        p.value += delta;
        break;
      }
      case Tweak::kProjectionAdd: {
        std::vector<size_t> off;
        for (size_t i = 0; i < column_pool.size(); ++i) {
          if (!selected[i]) off.push_back(i);
        }
        if (off.empty()) return;
        selected[off[static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(off.size()) - 1))]] = true;
        break;
      }
      case Tweak::kProjectionRemove: {
        std::vector<size_t> on;
        for (size_t i = 0; i < column_pool.size(); ++i) {
          if (selected[i]) on.push_back(i);
        }
        if (on.size() <= 1) return;  // keep at least one column
        selected[on[static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(on.size()) - 1))]] = false;
        break;
      }
      case Tweak::kCategorical: {
        if (cat_params.empty()) return;
        CatParam& p = cat_params[static_cast<size_t>(rng->UniformInt(
            0, static_cast<int64_t>(cat_params.size()) - 1))];
        p.index = (p.index + 1 +
                   static_cast<size_t>(rng->UniformInt(
                       0, static_cast<int64_t>(p.domain.size()) - 2))) %
                  p.domain.size();
        break;
      }
      case Tweak::kLimit:
        if (!has_limit) return;
        limit = static_cast<size_t>(rng->UniformInt(5, 500));
        break;
      case Tweak::kOrder:
        if (!has_order) return;
        order_desc = !order_desc;
        break;
      case Tweak::kGroup: {
        if (!group_mode || group_domain.size() < 2) return;
        std::string next = group_column;
        while (next == group_column) {
          next = group_domain[static_cast<size_t>(rng->UniformInt(
              0, static_cast<int64_t>(group_domain.size()) - 1))];
        }
        group_column = next;
        break;
      }
    }
  }
};

struct TweakWeights {
  double numeric, proj_add, proj_remove, categorical, limit, order, group;
};

struct TemplateSpec {
  double weight;  // template mixture probability
  TweakWeights tweaks;
};

QueryState MakeTemplate(size_t which, Rng* rng) {
  QueryState q;
  switch (which) {
    case 0: {  // Box cone search on photoobj.
      q.column_pool = {"objid", "ra", "dec", "u", "g", "r", "i", "z"};
      q.selected = {true, true, true, false, false, false, false, false};
      q.table = "photoobj";
      double ra = rng->Uniform(0, 340);
      double dec = rng->Uniform(-20, 60);
      q.numeric_params = {{"ra", ">", ra, 0.5},
                          {"ra", "<", ra + rng->Uniform(0.5, 5.0), 0.5},
                          {"dec", ">", dec, 0.5},
                          {"dec", "<", dec + rng->Uniform(0.5, 5.0), 0.5}};
      break;
    }
    case 1: {  // Magnitude cut with LIMIT.
      q.column_pool = {"objid", "u", "g", "r", "i", "z", "ra", "dec"};
      q.selected = {true, true, true, true, false, false, false, false};
      q.table = "photoobj";
      q.numeric_params = {{"r", "<", rng->Uniform(16.0, 22.0), 0.25}};
      q.has_limit = true;
      q.limit = static_cast<size_t>(rng->UniformInt(10, 200));
      break;
    }
    case 2: {  // Spectral class + redshift window.
      q.column_pool = {"specobjid", "z", "ra", "dec", "mjd"};
      q.selected = {true, true, false, false, false};
      q.table = "specobj";
      q.cat_params = {{"class", {"GALAXY", "QSO", "STAR"}, 0}};
      double z0 = rng->Uniform(0.0, 1.5);
      q.numeric_params = {{"z", ">", z0, 0.05},
                          {"z", "<", z0 + rng->Uniform(0.05, 0.5), 0.05}};
      break;
    }
    case 3: {  // Top-z objects, ordered.
      q.column_pool = {"specobjid", "z", "ra", "dec"};
      q.selected = {true, true, false, false};
      q.table = "specobj";
      q.cat_params = {{"specclass", {"GALAXY", "QSO", "STAR", "UNKNOWN"}, 1}};
      q.has_order = true;
      q.order_column = "z";
      q.order_desc = true;
      q.has_limit = true;
      q.limit = static_cast<size_t>(rng->UniformInt(10, 100));
      break;
    }
    case 4: {  // Photo/spec join with redshift cut.
      q.column_pool = {"p.objid", "p.r", "p.g", "s.z", "s.mjd"};
      q.selected = {true, true, false, true, false};
      q.table = "photoobj AS p";
      q.join_clause = ", specobj AS s";
      q.numeric_params = {{"s.z", "<", rng->Uniform(0.1, 2.0), 0.05},
                          {"p.r", "<", rng->Uniform(17.0, 23.0), 0.25}};
      break;
    }
    default: {  // Field histogram for a given run.
      q.group_mode = true;
      q.group_column = "field";
      q.group_domain = {"field", "camcol", "rerun"};
      q.column_pool = {"field"};
      q.selected = {true};
      q.table = "photoobj";
      q.numeric_params = {
          {"run", "=", static_cast<double>(rng->UniformInt(94, 8000)), 1.0}};
      break;
    }
  }
  return q;
}

const TemplateSpec kTemplates[] = {
    // weight, {numeric, +proj, -proj, cat, limit, order, group}
    {0.40, {0.84, 0.12, 0.04, 0.0, 0.0, 0.0, 0.0}},
    {0.18, {0.55, 0.18, 0.05, 0.0, 0.22, 0.0, 0.0}},
    {0.14, {0.62, 0.10, 0.03, 0.25, 0.0, 0.0, 0.0}},
    {0.10, {0.35, 0.06, 0.04, 0.25, 0.15, 0.15, 0.0}},
    {0.10, {0.72, 0.18, 0.10, 0.0, 0.0, 0.0, 0.0}},
    {0.08, {0.55, 0.0, 0.0, 0.0, 0.0, 0.0, 0.45}},
};

Tweak PickTweak(const TweakWeights& w, Rng* rng) {
  double u = rng->NextDouble();
  double acc = 0;
  struct {
    Tweak tweak;
    double weight;
  } options[] = {
      {Tweak::kNumeric, w.numeric},        {Tweak::kProjectionAdd, w.proj_add},
      {Tweak::kProjectionRemove, w.proj_remove},
      {Tweak::kCategorical, w.categorical}, {Tweak::kLimit, w.limit},
      {Tweak::kOrder, w.order},            {Tweak::kGroup, w.group},
  };
  for (const auto& option : options) {
    acc += option.weight;
    if (u < acc) return option.tweak;
  }
  return Tweak::kNumeric;
}

std::string GarbageQuery(Rng* rng) {
  // Stored-procedure calls from the real SkyServer log — outside any
  // SELECT template.
  switch (rng->UniformInt(0, 2)) {
    case 0:
      return StrFormat("EXEC dbo.fGetNearbyObjEq %.2f, %.2f, %.1f",
                       rng->Uniform(0, 360), rng->Uniform(-90, 90),
                       rng->Uniform(0.5, 5.0));
    case 1:
      return "DECLARE @id BIGINT SET @id = 587722981742084144";
    default:
      return StrFormat("EXEC spGetSDSSImage %d", (int)rng->UniformInt(1, 99999));
  }
}

}  // namespace

size_t SdssTemplateCount() { return 6; }

SdssLog GenerateSdssLog(const SdssLogConfig& config) {
  Rng rng(config.seed);
  SdssLog log;
  for (size_t s = 0; s < config.num_sessions; ++s) {
    // Pick a template by mixture weight.
    double u = rng.NextDouble();
    size_t which = 0;
    double acc = 0;
    for (size_t t = 0; t < 6; ++t) {
      acc += kTemplates[t].weight;
      if (u < acc) {
        which = t;
        break;
      }
    }
    QueryState state = MakeTemplate(which, &rng);
    size_t length = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(config.min_session_length),
                       static_cast<int64_t>(config.max_session_length)));
    std::vector<std::string> session;
    for (size_t i = 0; i < length; ++i) {
      if (rng.Bernoulli(config.unmappable_prob)) {
        session.push_back(GarbageQuery(&rng));
        ++log.total_queries;
        continue;
      }
      if (i > 0) state.Apply(PickTweak(kTemplates[which].tweaks, &rng), &rng);
      session.push_back(state.Render());
      ++log.total_queries;
    }
    log.sessions.push_back(std::move(session));
  }
  return log;
}

}  // namespace dvms
