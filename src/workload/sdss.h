#ifndef DVMS_WORKLOAD_SDSS_H_
#define DVMS_WORKLOAD_SDSS_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace dvms {

/// Synthetic stand-in for the SDSS SkyServer query log of §3.4 (125,600
/// queries, November 28-30, 2004). The paper reports that >99.1% of those
/// statements map to only 6 query templates, and that analysts tweak
/// queries in structured, incremental ways. The generator emits sessions
/// drawn from 6 SkyServer-shaped templates where consecutive queries
/// differ by one structured tweak (numeric parameter, projection list,
/// categorical value, LIMIT, ORDER BY, GROUP BY), plus a ~0.9% residue of
/// stored-procedure calls outside the dialect.
struct SdssLogConfig {
  size_t num_sessions = 600;
  size_t min_session_length = 3;
  size_t max_session_length = 40;
  /// Fraction of queries that do not map to any template.
  double unmappable_prob = 0.008;
  uint64_t seed = 2004;
};

struct SdssLog {
  std::vector<std::vector<std::string>> sessions;
  size_t total_queries = 0;
};

SdssLog GenerateSdssLog(const SdssLogConfig& config);

/// Number of query templates the generator draws from (6, per the paper).
size_t SdssTemplateCount();

}  // namespace dvms

#endif  // DVMS_WORKLOAD_SDSS_H_
