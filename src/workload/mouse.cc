#include "workload/mouse.h"

#include <cmath>

namespace dvms {

std::vector<WidgetRegion> MakeWidgetGrid(size_t cols, size_t rows, double x0,
                                         double y0, double cell_w,
                                         double cell_h, double gap) {
  std::vector<WidgetRegion> widgets;
  widgets.reserve(cols * rows);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      WidgetRegion w;
      w.id = "w" + std::to_string(r * cols + c);
      w.x = x0 + static_cast<double>(c) * (cell_w + gap);
      w.y = y0 + static_cast<double>(r) * (cell_h + gap);
      w.width = cell_w;
      w.height = cell_h;
      widgets.push_back(std::move(w));
    }
  }
  return widgets;
}

MouseTrace GenerateMouseTrace(const std::vector<WidgetRegion>& widgets,
                              size_t target, double start_x, double start_y,
                              const MouseTraceConfig& config, Rng* rng) {
  MouseTrace trace;
  trace.target_widget = target;
  const WidgetRegion& w = widgets[target];
  // Land slightly off-center (endpoint scatter).
  double end_x = w.center_x() + rng->Normal(0, w.width / 8);
  double end_y = w.center_y() + rng->Normal(0, w.height / 8);

  double dist = std::hypot(end_x - start_x, end_y - start_y);
  double width = std::max(1.0, std::min(w.width, w.height));
  double duration =
      config.base_duration_ms +
      config.fitts_slope_ms * std::log2(dist / width + 1.0) +
      rng->Normal(0, 30.0);
  if (duration < 120.0) duration = 120.0;

  for (double t = 0; t <= duration; t += config.sample_interval_ms) {
    double tau = t / duration;
    // Minimum-jerk profile: 10t^3 - 15t^4 + 6t^5.
    double s = tau * tau * tau * (10.0 - 15.0 * tau + 6.0 * tau * tau);
    MouseSample sample;
    sample.t_ms = t;
    sample.x = start_x + (end_x - start_x) * s + rng->Normal(0, config.noise_px);
    sample.y = start_y + (end_y - start_y) * s + rng->Normal(0, config.noise_px);
    trace.samples.push_back(sample);
  }
  // Final sample lands on the endpoint; the click happens there.
  MouseSample last;
  last.t_ms = duration;
  last.x = end_x;
  last.y = end_y;
  trace.samples.push_back(last);
  trace.click_t_ms = duration;
  return trace;
}

}  // namespace dvms
