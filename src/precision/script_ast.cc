#include "precision/script_ast.h"

#include <cctype>

#include "common/string_util.h"

namespace dvms {

namespace {

struct Cursor {
  const std::string& text;
  size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool Eat(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool AtEnd() {
    SkipSpace();
    return pos >= text.size();
  }
};

Result<std::string> ParseIdent(Cursor* cur) {
  cur->SkipSpace();
  size_t start = cur->pos;
  while (cur->pos < cur->text.size() &&
         (std::isalnum(static_cast<unsigned char>(cur->text[cur->pos])) ||
          cur->text[cur->pos] == '_' || cur->text[cur->pos] == '.')) {
    ++cur->pos;
  }
  if (cur->pos == start) {
    return Status::ParseError("script: expected identifier at position " +
                              std::to_string(start));
  }
  return cur->text.substr(start, cur->pos - start);
}

Result<std::string> ParseScriptValue(Cursor* cur) {
  cur->SkipSpace();
  if (cur->pos >= cur->text.size()) {
    return Status::ParseError("script: expected value");
  }
  char c = cur->text[cur->pos];
  if (c == '\'' || c == '"') {
    char quote = c;
    ++cur->pos;
    std::string out;
    while (cur->pos < cur->text.size() && cur->text[cur->pos] != quote) {
      out += cur->text[cur->pos++];
    }
    if (cur->pos >= cur->text.size()) {
      return Status::ParseError("script: unterminated string");
    }
    ++cur->pos;
    return out;
  }
  // Bare token: number / true / false / identifier-like.
  size_t start = cur->pos;
  while (cur->pos < cur->text.size() && cur->text[cur->pos] != ',' &&
         cur->text[cur->pos] != ')' &&
         !std::isspace(static_cast<unsigned char>(cur->text[cur->pos]))) {
    ++cur->pos;
  }
  if (cur->pos == start) {
    return Status::ParseError("script: expected value");
  }
  return cur->text.substr(start, cur->pos - start);
}

}  // namespace

Result<AstNodePtr> ParseScriptToAst(const std::string& line) {
  Cursor cur{line};
  DVMS_ASSIGN_OR_RETURN(std::string fn, ParseIdent(&cur));
  if (!cur.Eat('(')) {
    return Status::ParseError("script: expected '(' after function name");
  }
  AstNodePtr call = MakeAstNode("Call", fn);
  if (!cur.Eat(')')) {
    while (true) {
      DVMS_ASSIGN_OR_RETURN(std::string name, ParseIdent(&cur));
      if (!cur.Eat('=')) {
        return Status::ParseError("script: expected '=' after argument '" +
                                  name + "'");
      }
      DVMS_ASSIGN_OR_RETURN(std::string value, ParseScriptValue(&cur));
      AstNodePtr kwarg = MakeAstNode("Kwarg", name);
      kwarg->children.push_back(MakeAstNode("Literal", value));
      call->children.push_back(std::move(kwarg));
      if (cur.Eat(')')) break;
      if (!cur.Eat(',')) {
        return Status::ParseError("script: expected ',' or ')'");
      }
    }
  }
  if (!cur.AtEnd()) {
    return Status::ParseError("script: trailing input after call");
  }
  return call;
}

std::vector<TransformRule> DefaultScriptRules() {
  const char* kRuleTexts[] = {
      "FROM Call//Kwarg AS a WHERE numeric_changed(a) "
      "MATCH: numeric-param-change;",
      "FROM Call//Kwarg AS a WHERE string_changed(a) "
      "MATCH: categorical-change;",
      "FROM Call AS a WHERE a@old subset a@new MATCH: projection-add;",
      "FROM Call AS a WHERE a@old superset a@new MATCH: projection-remove;",
      "FROM Call AS a WHERE struct_changed(a) MATCH: call-restructure;",
  };
  std::vector<TransformRule> rules;
  for (const char* text : kRuleTexts) {
    auto rule = ParseTransformRule(text);
    if (rule.ok()) rules.push_back(std::move(rule).value());
  }
  return rules;
}

}  // namespace dvms
