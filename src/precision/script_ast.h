#ifndef DVMS_PRECISION_SCRIPT_AST_H_
#define DVMS_PRECISION_SCRIPT_AST_H_

#include <string>
#include <vector>

#include "precision/rules.h"
#include "precision/sql_ast.h"

namespace dvms {

/// §3.4's generality claim: "all programs are parsed into abstract syntax
/// trees before execution, and tweaks amount to subtree differences at the
/// AST level. Thus, an AST-based approach can generalize to nearly any
/// language."
///
/// This is a second front-end language that demonstrates it: a
/// plotting-script call in the style of python/ggplot one-liners,
///
///   plot(table='photoobj', x='ra', y='dec', bins=20, color='red')
///
/// parsed into the same generic AstNode trees the SQL front-end produces —
/// so the transformation rules, transformation graph, and interface
/// synthesis run unchanged over script logs.
///
/// AST shape: Call(fn)[ Kwarg(name)[Literal(value)], ... ].
Result<AstNodePtr> ParseScriptToAst(const std::string& line);

/// Transformation rules for the script language, written in the same rule
/// language as the SQL rules: numeric argument changes (sliders), string
/// argument changes (dropdowns), and argument addition/removal
/// (checkboxes).
std::vector<TransformRule> DefaultScriptRules();

}  // namespace dvms

#endif  // DVMS_PRECISION_SCRIPT_AST_H_
