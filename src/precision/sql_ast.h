#ifndef DVMS_PRECISION_SQL_AST_H_
#define DVMS_PRECISION_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "parser/ast.h"

namespace dvms {

/// A generic labeled AST used by Precision Interfaces (§3.4). The paper's
/// key observation: tweaks and incremental program changes amount to
/// subtree differences at the AST level, so the pipeline is
/// parser-agnostic — this is the one tree shape rules match against.
struct AstNode;
using AstNodePtr = std::shared_ptr<AstNode>;

struct AstNode {
  /// Node type, e.g. "Select", "ProjectClauses", "WhereClause",
  /// "Comparison", "Column", "Literal", "Function", "FromClause".
  std::string type;
  /// Leaf payload (column name, literal text, operator, function name).
  std::string value;
  std::vector<AstNodePtr> children;

  /// Canonical serialization: type(value)[child, child, ...].
  std::string Serialize() const;
};

AstNodePtr MakeAstNode(std::string type, std::string value = "");

/// Lowers a parsed SELECT statement into the generic AST.
AstNodePtr BuildAst(const SelectStmt& stmt);

/// Parses SQL text and lowers it; ParseError for queries outside the
/// supported dialect (the "unmappable" fraction of a real query log).
Result<AstNodePtr> ParseToAst(const std::string& sql);

/// Structural equality via serialization.
bool AstEquals(const AstNode& a, const AstNode& b);

/// Collects every node of the given type in pre-order.
void FindNodesByType(const AstNodePtr& root, const std::string& type,
                     std::vector<AstNodePtr>* out);

}  // namespace dvms

#endif  // DVMS_PRECISION_SQL_AST_H_
