#include "precision/interface_synth.h"

#include <limits>

namespace dvms {

bool WidgetSpec::Covers(const std::string& interaction) const {
  for (const std::string& c : covers) {
    if (c == interaction) return true;
  }
  return false;
}

const std::vector<WidgetSpec>& DefaultWidgetLibrary() {
  static const std::vector<WidgetSpec>* kLibrary = new std::vector<WidgetSpec>{
      {"range-slider", 2.0, 1.0, {"numeric-param-change"}},
      {"text-box", 1.0, 3.0, {"numeric-param-change", "categorical-change"}},
      {"dropdown", 1.5, 1.5, {"categorical-change"}},
      {"checkbox-group", 2.0, 1.0, {"projection-add", "projection-remove"}},
      {"sort-selector", 1.0, 1.0, {"orderby-change"}},
      {"limit-stepper", 1.0, 1.0, {"limit-change"}},
      {"table-selector", 2.0, 2.0, {"table-change"}},
      {"groupby-selector", 1.5, 1.5, {"groupby-change"}},
      {"query-editor",
       8.0,
       8.0,
       {"numeric-param-change", "categorical-change", "projection-add",
        "projection-remove", "orderby-change", "limit-change", "table-change",
        "groupby-change"}},
  };
  return *kLibrary;
}

double EvaluateInterface(const TransformGraph& graph,
                         const std::vector<WidgetSpec>& widgets,
                         const SynthesisConfig& config) {
  if (graph.edges.empty()) return 0.0;
  double total = 0;
  for (const TransformGraph::Edge& edge : graph.edges) {
    double best = config.penalty;
    for (const WidgetSpec& w : widgets) {
      if (w.Covers(edge.interaction)) best = std::min(best, w.activation_cost);
    }
    total += best;
  }
  return total / static_cast<double>(graph.edges.size());
}

SynthesizedInterface SynthesizeInterface(const TransformGraph& graph,
                                         const std::vector<WidgetSpec>& library,
                                         const SynthesisConfig& config) {
  SynthesizedInterface result;
  std::vector<bool> chosen(library.size(), false);
  double budget_used = 0;
  double current = EvaluateInterface(graph, result.widgets, config);

  while (true) {
    double best_gain_rate = 0;
    size_t best_index = library.size();
    double best_objective = current;
    for (size_t i = 0; i < library.size(); ++i) {
      if (chosen[i]) continue;
      const WidgetSpec& w = library[i];
      if (budget_used + w.visual_complexity > config.max_visual_complexity) {
        continue;
      }
      std::vector<WidgetSpec> candidate = result.widgets;
      candidate.push_back(w);
      double objective = EvaluateInterface(graph, candidate, config);
      double gain = current - objective;
      if (gain <= 1e-12) continue;
      double rate = gain / w.visual_complexity;
      if (rate > best_gain_rate) {
        best_gain_rate = rate;
        best_index = i;
        best_objective = objective;
      }
    }
    if (best_index == library.size()) break;
    chosen[best_index] = true;
    result.widgets.push_back(library[best_index]);
    budget_used += library[best_index].visual_complexity;
    current = best_objective;
  }

  result.objective = current;
  result.total_visual_complexity = budget_used;
  if (!graph.edges.empty()) {
    size_t covered = 0;
    for (const TransformGraph::Edge& edge : graph.edges) {
      for (const WidgetSpec& w : result.widgets) {
        if (w.Covers(edge.interaction)) {
          ++covered;
          break;
        }
      }
    }
    result.coverage =
        static_cast<double>(covered) / static_cast<double>(graph.edges.size());
  }
  return result;
}

}  // namespace dvms
