#include "precision/rules.h"

#include <cstdlib>

#include "common/schema.h"
#include "common/string_util.h"

namespace dvms {

namespace {

/// Serialization with the subtrees rooted at `masked` replaced by a
/// placeholder, used to check that a pair differs only inside the match.
std::string SerializeMasked(const AstNodePtr& node,
                            const std::vector<AstNodePtr>& masked) {
  for (const AstNodePtr& m : masked) {
    if (m == node) return "<match>";
  }
  std::string out = node->type;
  if (!node->value.empty()) out += "(" + node->value + ")";
  if (!node->children.empty()) {
    out += "[";
    for (size_t i = 0; i < node->children.size(); ++i) {
      if (i > 0) out += ",";
      out += SerializeMasked(node->children[i], masked);
    }
    out += "]";
  }
  return out;
}

/// Serialization with Literal payloads masked: the tree's "shape".
std::string SerializeShape(const AstNodePtr& node) {
  std::string out = node->type;
  if (!node->value.empty() && node->type != "Literal") {
    out += "(" + node->value + ")";
  }
  if (!node->children.empty()) {
    out += "[";
    for (size_t i = 0; i < node->children.size(); ++i) {
      if (i > 0) out += ",";
      out += SerializeShape(node->children[i]);
    }
    out += "]";
  }
  return out;
}

/// Collects (old, new) literal value pairs that differ, walking two trees
/// of identical shape in lockstep.
void CollectLiteralDiffs(const AstNodePtr& a, const AstNodePtr& b,
                         std::vector<std::pair<std::string, std::string>>* out) {
  if (a->type == "Literal" && b->type == "Literal" && a->value != b->value) {
    out->emplace_back(a->value, b->value);
  }
  for (size_t i = 0; i < a->children.size() && i < b->children.size(); ++i) {
    CollectLiteralDiffs(a->children[i], b->children[i], out);
  }
}

bool IsNumericText(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Finds nodes whose type is path.back() and whose ancestor chain contains
/// the earlier path types in order (descendant axis).
void FindByPath(const AstNodePtr& node, const std::vector<std::string>& path,
                size_t matched, std::vector<AstNodePtr>* out) {
  size_t next = matched;
  if (next < path.size() && node->type == path[next]) {
    ++next;
    if (next == path.size()) {
      out->push_back(node);
      // Do not search for nested occurrences inside a full match.
      return;
    }
  }
  for (const AstNodePtr& c : node->children) {
    FindByPath(c, path, next, out);
  }
}

bool PredHolds(RulePred pred, const AstNodePtr& old_node,
               const AstNodePtr& new_node) {
  std::string old_ser = old_node->Serialize();
  std::string new_ser = new_node->Serialize();
  switch (pred) {
    case RulePred::kChanged:
      return old_ser != new_ser;
    case RulePred::kStructChanged:
      return SerializeShape(old_node) != SerializeShape(new_node);
    case RulePred::kValueChanged:
    case RulePred::kNumericChanged:
    case RulePred::kStringChanged: {
      if (SerializeShape(old_node) != SerializeShape(new_node)) return false;
      if (old_ser == new_ser) return false;
      std::vector<std::pair<std::string, std::string>> diffs;
      CollectLiteralDiffs(old_node, new_node, &diffs);
      if (diffs.empty()) return false;
      if (pred == RulePred::kValueChanged) return true;
      bool all_numeric = true;
      for (const auto& [a, b] : diffs) {
        if (!IsNumericText(a) || !IsNumericText(b)) all_numeric = false;
      }
      return pred == RulePred::kNumericChanged ? all_numeric : !all_numeric;
    }
    case RulePred::kSubset:
    case RulePred::kSuperset: {
      const AstNodePtr& small =
          pred == RulePred::kSubset ? old_node : new_node;
      const AstNodePtr& large =
          pred == RulePred::kSubset ? new_node : old_node;
      if (small->children.size() >= large->children.size()) return false;
      // Every child of the smaller side appears among the larger side's.
      std::vector<std::string> pool;
      for (const AstNodePtr& c : large->children) {
        pool.push_back(c->Serialize());
      }
      for (const AstNodePtr& c : small->children) {
        std::string ser = c->Serialize();
        bool found = false;
        for (std::string& p : pool) {
          if (p == ser) {
            p.clear();  // consume
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace

bool RuleMatches(const TransformRule& rule, const AstNodePtr& old_ast,
                 const AstNodePtr& new_ast) {
  std::vector<AstNodePtr> old_nodes, new_nodes;
  FindByPath(old_ast, rule.path, 0, &old_nodes);
  FindByPath(new_ast, rule.path, 0, &new_nodes);
  // Clause addition/removal (e.g. a LIMIT appearing) binds zero nodes on
  // one side; treat the whole-query pair as matching only when exactly one
  // side is empty and the trees otherwise agree.
  if (old_nodes.size() != new_nodes.size()) {
    if (rule.pred != RulePred::kChanged &&
        rule.pred != RulePred::kStructChanged) {
      return false;
    }
    std::vector<AstNodePtr> masked = old_nodes;
    masked.insert(masked.end(), new_nodes.begin(), new_nodes.end());
    // Outside the clause, everything must be identical. Masking each
    // side's own matches and comparing catches "clause added/removed".
    std::string old_masked = SerializeMasked(old_ast, masked);
    std::string new_masked = SerializeMasked(new_ast, masked);
    // The placeholder count differs; normalize by removing them.
    auto strip = [](std::string s) {
      std::string out;
      size_t pos = 0;
      while (pos < s.size()) {
        if (s.compare(pos, 8, ",<match>") == 0) {
          pos += 8;
          continue;
        }
        if (s.compare(pos, 8, "<match>,") == 0) {
          pos += 8;
          continue;
        }
        if (s.compare(pos, 7, "<match>") == 0) {
          pos += 7;
          continue;
        }
        out += s[pos++];
      }
      return out;
    };
    return strip(old_masked) == strip(new_masked);
  }
  if (old_nodes.empty()) return false;

  // The trees must agree outside the bound subtrees.
  if (SerializeMasked(old_ast, old_nodes) !=
      SerializeMasked(new_ast, new_nodes)) {
    return false;
  }
  // At least one bound pair differs, and every differing pair satisfies
  // the predicate.
  bool any = false;
  for (size_t i = 0; i < old_nodes.size(); ++i) {
    if (AstEquals(*old_nodes[i], *new_nodes[i])) continue;
    if (!PredHolds(rule.pred, old_nodes[i], new_nodes[i])) return false;
    any = true;
  }
  return any;
}

Result<TransformRule> ParseTransformRule(const std::string& source) {
  // Tiny hand parser over whitespace-insensitive tokens.
  std::string text = source;
  for (char& c : text) {
    if (c == '\n' || c == '\t' || c == ';') c = ' ';
  }
  std::vector<std::string> words;
  for (const std::string& w : Split(text, ' ')) {
    if (!Trim(w).empty()) words.push_back(Trim(w));
  }
  size_t i = 0;
  auto expect = [&](const char* kw) -> Status {
    if (i >= words.size() || !IdentEquals(words[i], kw)) {
      return Status::ParseError(std::string("transformation rule: expected '") +
                                kw + "'");
    }
    ++i;
    return Status::OK();
  };
  TransformRule rule;
  DVMS_RETURN_IF_ERROR(expect("FROM"));
  if (i >= words.size()) return Status::ParseError("rule: missing path");
  for (const std::string& seg : Split(words[i], '/')) {
    if (!seg.empty()) rule.path.push_back(seg);
  }
  if (rule.path.empty()) return Status::ParseError("rule: empty path");
  ++i;
  DVMS_RETURN_IF_ERROR(expect("AS"));
  if (i >= words.size()) return Status::ParseError("rule: missing variable");
  rule.var = words[i++];
  DVMS_RETURN_IF_ERROR(expect("WHERE"));
  if (i >= words.size()) return Status::ParseError("rule: missing predicate");
  // Either `var@old subset var@new` or `predname(var)`.
  std::string tok = words[i];
  if (tok.find("@old") != std::string::npos) {
    ++i;
    if (i >= words.size()) return Status::ParseError("rule: missing operator");
    std::string op = words[i++];
    if (IdentEquals(op, "subset")) {
      rule.pred = RulePred::kSubset;
    } else if (IdentEquals(op, "superset")) {
      rule.pred = RulePred::kSuperset;
    } else {
      return Status::ParseError("rule: unknown operator '" + op + "'");
    }
    if (i >= words.size() || words[i].find("@new") == std::string::npos) {
      return Status::ParseError("rule: expected <var>@new");
    }
    ++i;
  } else {
    size_t open = tok.find('(');
    size_t close = tok.find(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      return Status::ParseError("rule: expected predicate(var)");
    }
    std::string name = tok.substr(0, open);
    if (IdentEquals(name, "changed")) {
      rule.pred = RulePred::kChanged;
    } else if (IdentEquals(name, "value_changed")) {
      rule.pred = RulePred::kValueChanged;
    } else if (IdentEquals(name, "numeric_changed")) {
      rule.pred = RulePred::kNumericChanged;
    } else if (IdentEquals(name, "string_changed")) {
      rule.pred = RulePred::kStringChanged;
    } else if (IdentEquals(name, "struct_changed")) {
      rule.pred = RulePred::kStructChanged;
    } else {
      return Status::ParseError("rule: unknown predicate '" + name + "'");
    }
    ++i;
  }
  if (i >= words.size() || !IdentEquals(words[i], "MATCH:")) {
    // Allow "MATCH :" or "MATCH" followed by name.
    DVMS_RETURN_IF_ERROR(expect("MATCH"));
  } else {
    ++i;
  }
  if (i >= words.size()) return Status::ParseError("rule: missing interaction");
  rule.interaction = words[i];
  return rule;
}

std::vector<TransformRule> DefaultSdssRules() {
  // The 8 hand-coded rules, first match wins. Clause-level rules come
  // first so a LIMIT tweak is not reported as a numeric parameter change.
  const char* kRuleTexts[] = {
      "FROM Select//LimitClause AS a WHERE changed(a) MATCH: limit-change;",
      "FROM Select//OrderByClause AS a WHERE changed(a) MATCH: orderby-change;",
      "FROM Select//GroupByClause AS a WHERE changed(a) MATCH: groupby-change;",
      "FROM Select//ProjectClauses AS a WHERE a@old subset a@new "
      "MATCH: projection-add;",
      "FROM Select//ProjectClauses AS a WHERE a@old superset a@new "
      "MATCH: projection-remove;",
      "FROM Select//FromClause AS a WHERE changed(a) MATCH: table-change;",
      "FROM Select//WhereClause AS a WHERE numeric_changed(a) "
      "MATCH: numeric-param-change;",
      "FROM Select//WhereClause AS a WHERE string_changed(a) "
      "MATCH: categorical-change;",
  };
  std::vector<TransformRule> rules;
  for (const char* text : kRuleTexts) {
    auto rule = ParseTransformRule(text);
    if (rule.ok()) rules.push_back(std::move(rule).value());
  }
  return rules;
}

}  // namespace dvms
