#ifndef DVMS_PRECISION_RULES_H_
#define DVMS_PRECISION_RULES_H_

#include <string>
#include <vector>

#include "precision/sql_ast.h"

namespace dvms {

/// Predicates the transformation-matching language supports between the
/// old and new bindings of a path variable.
enum class RulePred {
  kSubset,          // a@old subset a@new      (children grew)
  kSuperset,        // a@old superset a@new    (children shrank)
  kNumericChanged,  // numeric_changed(a)      (only numeric literals differ)
  kStringChanged,   // string_changed(a)       (a string literal differs)
  kValueChanged,    // value_changed(a)        (only literal values differ)
  kStructChanged,   // struct_changed(a)       (tree shape differs)
  kChanged,         // changed(a)              (any difference)
};

/// One rule of the paper's SQL/XPath-like transformation language:
///
///   FROM Select//WhereClause AS a
///   WHERE numeric_changed(a)
///   MATCH: numeric-param-change;
///
/// A rule matches a query pair (q_old, q_new) when (1) the trees are
/// identical outside the subtrees bound by the path, and (2) the bound
/// subtrees differ as the predicate describes.
struct TransformRule {
  std::string interaction;        // MATCH target (edge label)
  std::vector<std::string> path;  // descendant-axis node types
  std::string var;                // bound variable name (cosmetic)
  RulePred pred = RulePred::kChanged;
};

/// Parses one rule. Grammar:
///   FROM <Type>(//<Type>)* AS <ident>
///   WHERE <pred-expr>
///   MATCH: <interaction-name> ;
/// where <pred-expr> is `<var>@old <subset|superset> <var>@new` or
/// `<predname>(<var>)` for the unary predicates.
Result<TransformRule> ParseTransformRule(const std::string& source);

/// True iff the rule matches the ordered pair (old_ast, new_ast).
bool RuleMatches(const TransformRule& rule, const AstNodePtr& old_ast,
                 const AstNodePtr& new_ast);

/// The 8 hand-coded transformation rules used for the SDSS analysis
/// (Figure 6), expressed in the rule language and parsed at startup.
std::vector<TransformRule> DefaultSdssRules();

}  // namespace dvms

#endif  // DVMS_PRECISION_RULES_H_
