#include "precision/transform_graph.h"

#include <algorithm>
#include <unordered_map>

namespace dvms {

double TransformGraph::ParsedFraction() const {
  if (total_queries == 0) return 0.0;
  return static_cast<double>(total_queries - unparsed_queries) /
         static_cast<double>(total_queries);
}

std::vector<std::pair<std::string, size_t>> TransformGraph::InteractionCounts()
    const {
  std::map<std::string, size_t> counts;
  for (const Edge& edge : edges) ++counts[edge.interaction];
  std::vector<std::pair<std::string, size_t>> out(counts.begin(), counts.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

double TransformGraph::CoverageOf(const std::string& interaction) const {
  if (matched_pairs == 0) return 0.0;
  size_t n = 0;
  for (const Edge& edge : edges) {
    if (edge.interaction == interaction) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(matched_pairs);
}

std::string TransformGraph::ToDot(size_t max_edges) const {
  // A stable palette per interaction label (Figure 6 colors edges by
  // interaction type).
  const char* kColors[] = {"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e",
                           "#9467bd", "#8c564b", "#e377c2", "#7f7f7f"};
  std::map<std::string, const char*> color_of;
  for (const auto& [name, count] : InteractionCounts()) {
    color_of[name] = kColors[color_of.size() % std::size(kColors)];
  }
  std::string out = "digraph transformations {\n  node [shape=point];\n";
  std::map<size_t, bool> used;
  size_t emitted = 0;
  for (const Edge& edge : edges) {
    if (emitted >= max_edges) break;
    ++emitted;
    used[edge.from] = true;
    used[edge.to] = true;
    out += "  q" + std::to_string(edge.from) + " -> q" +
           std::to_string(edge.to) + " [color=\"" +
           color_of[edge.interaction] + "\"];\n";
  }
  if (edges.size() > emitted) {
    // Make the cut visible in the rendered artifact itself: a reader of a
    // capped dump should never mistake it for the whole graph.
    out += "  // truncated " + std::to_string(edges.size() - emitted) +
           " of " + std::to_string(edges.size()) + " edges\n";
  }
  out += "}\n";
  return out;
}

TransformGraph BuildTransformGraph(
    const std::vector<std::vector<std::string>>& sessions,
    const std::vector<TransformRule>& rules) {
  return BuildTransformGraph(sessions, rules, [](const std::string& sql) {
    return ParseToAst(sql);
  });
}

TransformGraph BuildTransformGraph(
    const std::vector<std::vector<std::string>>& sessions,
    const std::vector<TransformRule>& rules, const LogParser& parser) {
  TransformGraph graph;
  std::unordered_map<std::string, size_t> vertex_of;

  auto intern = [&graph, &vertex_of](const std::string& serialized) {
    auto it = vertex_of.find(serialized);
    if (it != vertex_of.end()) return it->second;
    size_t id = graph.queries.size();
    graph.queries.push_back(serialized);
    vertex_of.emplace(serialized, id);
    return id;
  };

  for (const std::vector<std::string>& session : sessions) {
    AstNodePtr prev_ast;
    size_t prev_vertex = 0;
    for (const std::string& sql : session) {
      ++graph.total_queries;
      auto ast = parser(sql);
      if (!ast.ok()) {
        ++graph.unparsed_queries;
        prev_ast = nullptr;  // unparsable query breaks adjacency
        continue;
      }
      AstNodePtr current = std::move(ast).value();
      size_t vertex = intern(current->Serialize());
      if (prev_ast != nullptr && !AstEquals(*prev_ast, *current)) {
        bool matched = false;
        for (const TransformRule& rule : rules) {
          if (RuleMatches(rule, prev_ast, current)) {
            graph.edges.push_back({prev_vertex, vertex, rule.interaction});
            ++graph.matched_pairs;
            matched = true;
            break;
          }
        }
        if (!matched) ++graph.unmatched_pairs;
      }
      prev_ast = std::move(current);
      prev_vertex = vertex;
    }
  }
  return graph;
}

}  // namespace dvms
