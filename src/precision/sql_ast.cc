#include "precision/sql_ast.h"

#include "parser/parser.h"

namespace dvms {

std::string AstNode::Serialize() const {
  std::string out = type;
  if (!value.empty()) out += "(" + value + ")";
  if (!children.empty()) {
    out += "[";
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) out += ",";
      out += children[i]->Serialize();
    }
    out += "]";
  }
  return out;
}

AstNodePtr MakeAstNode(std::string type, std::string value) {
  auto node = std::make_shared<AstNode>();
  node->type = std::move(type);
  node->value = std::move(value);
  return node;
}

namespace {

AstNodePtr ExprToAst(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return MakeAstNode("Literal", e.literal.ToString());
    case ExprKind::kColumnRef:
      return MakeAstNode(
          "Column", e.qualifier.empty() ? e.column : e.qualifier + "." + e.column);
    case ExprKind::kUnary: {
      AstNodePtr node = MakeAstNode(
          "Unary", e.unary_op == UnaryOp::kNot ? "NOT" : "-");
      node->children.push_back(ExprToAst(*e.children[0]));
      return node;
    }
    case ExprKind::kBinary: {
      bool comparison = e.binary_op == BinaryOp::kEq ||
                        e.binary_op == BinaryOp::kNe ||
                        e.binary_op == BinaryOp::kLt ||
                        e.binary_op == BinaryOp::kLe ||
                        e.binary_op == BinaryOp::kGt ||
                        e.binary_op == BinaryOp::kGe;
      AstNodePtr node = MakeAstNode(comparison ? "Comparison" : "BinaryOp",
                                    BinaryOpToString(e.binary_op));
      node->children.push_back(ExprToAst(*e.children[0]));
      node->children.push_back(ExprToAst(*e.children[1]));
      return node;
    }
    case ExprKind::kFunctionCall: {
      AstNodePtr node = MakeAstNode("Function", e.function_name);
      for (const auto& c : e.children) node->children.push_back(ExprToAst(*c));
      return node;
    }
    case ExprKind::kAggregateCall: {
      AstNodePtr node = MakeAstNode("Aggregate", AggFuncToString(e.agg_func));
      if (e.count_star) {
        node->children.push_back(MakeAstNode("Star"));
      } else {
        node->children.push_back(ExprToAst(*e.children[0]));
      }
      return node;
    }
    case ExprKind::kInRelation: {
      AstNodePtr node = MakeAstNode("In", e.negated ? "NOT IN" : "IN");
      node->children.push_back(ExprToAst(*e.children[0]));
      node->children.push_back(MakeAstNode("Relation", e.in_relation));
      return node;
    }
  }
  return MakeAstNode("Unknown");
}

AstNodePtr CoreToAst(const SelectCore& core) {
  AstNodePtr select = MakeAstNode("Select");

  AstNodePtr project = MakeAstNode("ProjectClauses");
  for (const SelectItem& item : core.items) {
    if (item.star) {
      project->children.push_back(
          MakeAstNode("Star", item.star_qualifier));
    } else {
      AstNodePtr clause = MakeAstNode("ProjectClause", item.alias);
      clause->children.push_back(ExprToAst(*item.expr));
      project->children.push_back(std::move(clause));
    }
  }
  select->children.push_back(std::move(project));

  AstNodePtr from = MakeAstNode("FromClause");
  for (const TableRef& ref : core.from) {
    if (ref.subquery != nullptr) {
      AstNodePtr sub = MakeAstNode("DerivedTable", ref.alias);
      sub->children.push_back(BuildAst(*ref.subquery));
      from->children.push_back(std::move(sub));
    } else {
      from->children.push_back(MakeAstNode("Table", ref.name));
    }
  }
  select->children.push_back(std::move(from));

  if (core.where != nullptr) {
    AstNodePtr where = MakeAstNode("WhereClause");
    where->children.push_back(ExprToAst(*core.where));
    select->children.push_back(std::move(where));
  }
  if (!core.group_by.empty()) {
    AstNodePtr group = MakeAstNode("GroupByClause");
    for (const ExprPtr& e : core.group_by) {
      group->children.push_back(ExprToAst(*e));
    }
    select->children.push_back(std::move(group));
  }
  if (!core.order_by.empty()) {
    AstNodePtr order = MakeAstNode("OrderByClause");
    for (const OrderItem& item : core.order_by) {
      AstNodePtr key = MakeAstNode("OrderKey", item.descending ? "DESC" : "ASC");
      key->children.push_back(ExprToAst(*item.expr));
      order->children.push_back(std::move(key));
    }
    select->children.push_back(std::move(order));
  }
  if (core.limit.has_value()) {
    AstNodePtr limit = MakeAstNode("LimitClause");
    limit->children.push_back(
        MakeAstNode("Literal", std::to_string(*core.limit)));
    select->children.push_back(std::move(limit));
  }
  return select;
}

}  // namespace

AstNodePtr BuildAst(const SelectStmt& stmt) {
  if (stmt.cores.size() == 1) return CoreToAst(stmt.cores[0]);
  AstNodePtr root = MakeAstNode("SetOp");
  for (size_t i = 0; i < stmt.cores.size(); ++i) {
    root->children.push_back(CoreToAst(stmt.cores[i]));
    if (i < stmt.ops.size()) {
      const char* name = stmt.ops[i] == SetOp::kMinus      ? "MINUS"
                         : stmt.ops[i] == SetOp::kUnionAll ? "UNION ALL"
                                                           : "UNION";
      root->children.push_back(MakeAstNode("SetOperator", name));
    }
  }
  return root;
}

Result<AstNodePtr> ParseToAst(const std::string& sql) {
  DVMS_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect(sql));
  return BuildAst(stmt);
}

bool AstEquals(const AstNode& a, const AstNode& b) {
  return a.Serialize() == b.Serialize();
}

void FindNodesByType(const AstNodePtr& root, const std::string& type,
                     std::vector<AstNodePtr>* out) {
  if (root == nullptr) return;
  if (root->type == type) out->push_back(root);
  for (const AstNodePtr& c : root->children) FindNodesByType(c, type, out);
}

}  // namespace dvms
