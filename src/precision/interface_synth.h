#ifndef DVMS_PRECISION_INTERFACE_SYNTH_H_
#define DVMS_PRECISION_INTERFACE_SYNTH_H_

#include <string>
#include <vector>

#include "precision/transform_graph.h"

namespace dvms {

/// A widget the generated interface can include, with the paper's
/// cost model: a visual complexity C_vis (it consumes interface budget)
/// and an activation cost C_act (user effort to express one transformation
/// through it), plus the set of interaction labels it covers.
struct WidgetSpec {
  std::string name;
  double visual_complexity = 1.0;
  double activation_cost = 1.0;
  std::vector<std::string> covers;

  bool Covers(const std::string& interaction) const;
};

/// The default widget library used for Figure 7: sliders, text boxes,
/// dropdowns, checkbox groups, sort/limit controls, a table selector, and
/// a full query editor as the expensive catch-all.
const std::vector<WidgetSpec>& DefaultWidgetLibrary();

struct SynthesisConfig {
  /// Cost charged when no chosen widget covers a transformation.
  double penalty = 25.0;
  /// Budget on the summed visual complexity of the interface.
  double max_visual_complexity = 10.0;
};

struct SynthesizedInterface {
  std::vector<WidgetSpec> widgets;
  /// The paper's objective: average over observed transformations of the
  /// cheapest covering widget's activation cost (penalty if uncovered).
  double objective = 0.0;
  /// Fraction of observed transformations covered by some chosen widget.
  double coverage = 0.0;
  double total_visual_complexity = 0.0;
};

/// Greedy solver for the paper's knapsack formulation: repeatedly adds the
/// widget with the best objective improvement per unit of visual
/// complexity while the budget allows, starting from the empty interface.
SynthesizedInterface SynthesizeInterface(const TransformGraph& graph,
                                         const std::vector<WidgetSpec>& library,
                                         const SynthesisConfig& config);

/// Evaluates the objective for a fixed widget set (exposed for tests and
/// for comparing against exhaustive search on small instances).
double EvaluateInterface(const TransformGraph& graph,
                         const std::vector<WidgetSpec>& widgets,
                         const SynthesisConfig& config);

}  // namespace dvms

#endif  // DVMS_PRECISION_INTERFACE_SYNTH_H_
