#ifndef DVMS_PRECISION_TRANSFORM_GRAPH_H_
#define DVMS_PRECISION_TRANSFORM_GRAPH_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "precision/rules.h"

namespace dvms {

/// The transformation graph of §3.4 / Figure 6: one vertex per distinct
/// query, one edge per observed transformation, labeled by the interaction
/// the matching rule names.
struct TransformGraph {
  struct Edge {
    size_t from = 0;
    size_t to = 0;
    std::string interaction;
  };

  std::vector<std::string> queries;  // canonical serializations
  std::vector<Edge> edges;

  size_t total_queries = 0;    // including duplicates and unparsable ones
  size_t unparsed_queries = 0; // did not map to a supported template
  size_t matched_pairs = 0;    // adjacent pairs some rule matched
  size_t unmatched_pairs = 0;  // adjacent pairs no rule matched

  /// Fraction of the log that parsed into ASTs (the paper maps >99.1% of
  /// the SDSS log to 6 templates).
  double ParsedFraction() const;

  /// Edge count per interaction label, descending.
  std::vector<std::pair<std::string, size_t>> InteractionCounts() const;

  /// Fraction of matched pairs labeled with `interaction`.
  double CoverageOf(const std::string& interaction) const;

  /// Graphviz DOT rendering (vertices elided to ids; edges colored per
  /// interaction type, like Figure 6). `max_edges` caps output size.
  std::string ToDot(size_t max_edges = 500) const;
};

/// Parses one log entry into a generic AST. The default (ParseToAst)
/// handles the SQL dialect; other languages (e.g. the plotting-script
/// front-end in script_ast.h) plug in their own parser — the rest of the
/// pipeline is language-agnostic.
using LogParser = std::function<Result<AstNodePtr>(const std::string&)>;

/// Builds the graph from per-session query logs: within each session,
/// every adjacent query pair is diffed against the rules (first match
/// wins). Unparsable queries break adjacency.
TransformGraph BuildTransformGraph(
    const std::vector<std::vector<std::string>>& sessions,
    const std::vector<TransformRule>& rules);

/// Language-agnostic form with an explicit parser.
TransformGraph BuildTransformGraph(
    const std::vector<std::vector<std::string>>& sessions,
    const std::vector<TransformRule>& rules, const LogParser& parser);

}  // namespace dvms

#endif  // DVMS_PRECISION_TRANSFORM_GRAPH_H_
