#include "concurrency/policy.h"
#include "concurrency/study.h"
#include "gtest/gtest.h"

namespace dvms {
namespace {

TEST(ResponseCoordinatorTest, NoCcRendersEverythingInArrivalOrder) {
  ResponseCoordinator c(CcPolicy::kNoCC);
  for (size_t i = 0; i < 3; ++i) c.OnRequest(i);
  EXPECT_EQ(c.OnResponse(2), std::vector<size_t>{2});
  EXPECT_EQ(c.OnResponse(0), std::vector<size_t>{0});
  EXPECT_EQ(c.OnResponse(1), std::vector<size_t>{1});
  EXPECT_EQ(c.rendered_count(), 3u);
  EXPECT_EQ(c.dropped_count(), 0u);
}

TEST(ResponseCoordinatorTest, SerialBuffersUntilInOrder) {
  ResponseCoordinator c(CcPolicy::kSerial);
  for (size_t i = 0; i < 3; ++i) c.OnRequest(i);
  EXPECT_TRUE(c.OnResponse(2).empty());   // buffered
  EXPECT_TRUE(c.OnResponse(1).empty());   // buffered
  auto released = c.OnResponse(0);        // releases 0, 1, 2
  EXPECT_EQ(released, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(c.rendered_count(), 3u);
}

TEST(ResponseCoordinatorTest, DiscardDropsStaleResponses) {
  ResponseCoordinator c(CcPolicy::kDiscard);
  for (size_t i = 0; i < 3; ++i) c.OnRequest(i);
  EXPECT_EQ(c.OnResponse(1), std::vector<size_t>{1});
  EXPECT_TRUE(c.OnResponse(0).empty());  // stale: dropped
  EXPECT_EQ(c.OnResponse(2), std::vector<size_t>{2});
  EXPECT_EQ(c.rendered_count(), 2u);
  EXPECT_EQ(c.dropped_count(), 1u);
}

TEST(ResponseCoordinatorTest, MostRecentRendersOnlyLatestRequest) {
  ResponseCoordinator c(CcPolicy::kMostRecent);
  c.OnRequest(0);
  c.OnRequest(1);
  c.OnRequest(2);
  EXPECT_TRUE(c.OnResponse(0).empty());
  EXPECT_TRUE(c.OnResponse(1).empty());
  EXPECT_EQ(c.OnResponse(2), std::vector<size_t>{2});
  EXPECT_EQ(c.dropped_count(), 2u);
}

TEST(ResponseCoordinatorTest, MvccRendersEverythingIntoCopies) {
  ResponseCoordinator c(CcPolicy::kMvcc);
  for (size_t i = 0; i < 4; ++i) c.OnRequest(i);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(c.OnResponse(3 - i).size(), 1u);
  }
  EXPECT_EQ(c.chart_copies(), 4u);
  EXPECT_EQ(c.dropped_count(), 0u);
}

TEST(StudyTest, ParticipantSimulationIsDeterministic) {
  StudyConfig config;
  config.policy = CcPolicy::kSerial;
  config.mean_delay_ms = 2500;
  config.seed = 42;
  ParticipantResult a = SimulateParticipant(config);
  ParticipantResult b = SimulateParticipant(config);
  EXPECT_DOUBLE_EQ(a.completion_ms, b.completion_ms);
}

TEST(StudyTest, NoDelayPoliciesNearlyEqualWithMvccSlightlySlower) {
  // The paper: "each of the above policies have little difference when
  // there is no response delay (in fact, MVCC is slightly slower)".
  StudyConfig config;
  config.mean_delay_ms = 0;
  double mvcc = 0, others_max = 0;
  for (CcPolicy p : AllCcPolicies()) {
    config.policy = p;
    double t = RunStudy(config, 50).mean_completion_ms;
    if (p == CcPolicy::kMvcc) {
      mvcc = t;
    } else {
      others_max = std::max(others_max, t);
    }
  }
  EXPECT_GT(mvcc, others_max);          // slightly slower...
  EXPECT_LT(mvcc, others_max * 1.5);    // ...but only slightly
}

TEST(StudyTest, Figure5OrderingUnderDelay) {
  // Under random delay (mean 2.5 s): MVCC fastest; Serial and Discard
  // beat No CC and Most Recent, which are slowest.
  StudyConfig config;
  config.mean_delay_ms = 2500;
  std::map<CcPolicy, double> mean;
  for (CcPolicy p : AllCcPolicies()) {
    config.policy = p;
    mean[p] = RunStudy(config, 100).mean_completion_ms;
  }
  EXPECT_LT(mean[CcPolicy::kMvcc], mean[CcPolicy::kSerial]);
  EXPECT_LT(mean[CcPolicy::kSerial], mean[CcPolicy::kNoCC]);
  EXPECT_LT(mean[CcPolicy::kDiscard], mean[CcPolicy::kNoCC]);
  EXPECT_LT(mean[CcPolicy::kMvcc], 0.5 * mean[CcPolicy::kNoCC]);
  // No CC and Most Recent are close: both self-serialize.
  EXPECT_NEAR(mean[CcPolicy::kMostRecent] / mean[CcPolicy::kNoCC], 1.0, 0.15);
}

TEST(StudyTest, TrendTaskAmplifiesTheGap) {
  // The harder, order-sensitive task makes the effects more pronounced.
  StudyConfig config;
  config.mean_delay_ms = 2500;

  auto gap = [&config](JudgmentTask task) {
    config.task = task;
    config.policy = CcPolicy::kMvcc;
    double mvcc = RunStudy(config, 100).mean_completion_ms;
    config.policy = CcPolicy::kDiscard;
    double discard = RunStudy(config, 100).mean_completion_ms;
    return discard / mvcc;
  };
  EXPECT_GT(gap(JudgmentTask::kTrend), gap(JudgmentTask::kThreshold));
}

TEST(StudyTest, DiscardIssuesRehovers) {
  StudyConfig config;
  config.policy = CcPolicy::kDiscard;
  config.mean_delay_ms = 2500;
  StudyAggregate a = RunStudy(config, 100);
  EXPECT_GT(a.mean_requests, static_cast<double>(config.num_facets));
  EXPECT_GT(a.mean_dropped, 0.0);
}

TEST(StudyTest, DelayIncreasesCompletionForEveryPolicy) {
  for (CcPolicy p : AllCcPolicies()) {
    StudyConfig config;
    config.policy = p;
    config.mean_delay_ms = 0;
    double fast = RunStudy(config, 50).mean_completion_ms;
    config.mean_delay_ms = 2500;
    double slow = RunStudy(config, 50).mean_completion_ms;
    EXPECT_GT(slow, fast) << CcPolicyToString(p);
  }
}

TEST(StudyTest, PolicyNamesAreDistinct) {
  std::set<std::string> names;
  for (CcPolicy p : AllCcPolicies()) names.insert(CcPolicyToString(p));
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
}  // namespace dvms
